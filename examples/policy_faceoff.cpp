// policy_faceoff: sweep one paper trace across array sizes and report, for
// every size, which policy wins and by how much — the crossover analysis of
// section 4.3 as a tool.
//
//   ./build/examples/policy_faceoff [trace] [max_disks]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "pfc/pfc.h"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "ld";
  const int max_disks = argc > 2 ? std::atoi(argv[2]) : 8;

  if (pfc::FindTraceSpec(name) == nullptr) {
    std::fprintf(stderr, "unknown trace '%s'\n", name.c_str());
    return 1;
  }
  pfc::Trace trace = pfc::MakeTrace(name);
  std::printf("%s\n\n", pfc::ToString(pfc::ComputeTraceStats(trace)).c_str());

  struct Contender {
    pfc::PolicyKind kind;
    const char* label;
  };
  const std::vector<Contender> contenders = {
      {pfc::PolicyKind::kFixedHorizon, "fixed-horizon"},
      {pfc::PolicyKind::kAggressive, "aggressive"},
      {pfc::PolicyKind::kForestall, "forestall"},
  };

  std::printf("%-6s", "disks");
  for (const Contender& c : contenders) {
    std::printf(" %14s", c.label);
  }
  std::printf(" %16s %10s\n", "winner", "margin");

  int crossover = -1;
  const char* previous_winner = nullptr;
  for (int d = 1; d <= max_disks; ++d) {
    pfc::SimConfig config = pfc::BaselineConfig(name, d);
    std::vector<pfc::RunResult> results;
    for (const Contender& c : contenders) {
      results.push_back(pfc::RunOne(trace, config, c.kind));
    }
    size_t best = 0;
    size_t second = 1;
    for (size_t i = 1; i < results.size(); ++i) {
      if (results[i].elapsed_time < results[best].elapsed_time) {
        second = best;
        best = i;
      } else if (results[i].elapsed_time < results[second].elapsed_time || second == best) {
        second = i;
      }
    }
    double margin = 100.0 *
                    (static_cast<double>(results[second].elapsed_time.ns()) -
                     static_cast<double>(results[best].elapsed_time.ns())) /
                    static_cast<double>(results[best].elapsed_time.ns());

    std::printf("%-6d", d);
    for (const pfc::RunResult& r : results) {
      std::printf(" %14.3f", r.elapsed_sec());
    }
    std::printf(" %16s %9.2f%%\n", contenders[best].label, margin);

    if (previous_winner != nullptr && previous_winner != contenders[best].label &&
        crossover < 0) {
      crossover = d;
    }
    previous_winner = contenders[best].label;
  }

  if (crossover > 0) {
    std::printf("\nThe winning policy changes at %d disk(s): the trace crosses from\n"
                "I/O-bound (aggressive prefetching pays) to compute-bound (lazy\n"
                "replacement pays).\n",
                crossover);
  } else {
    std::printf("\nOne policy dominates across the sweep; try a different trace or a\n"
                "wider disk range to see a crossover.\n");
  }
  return 0;
}
