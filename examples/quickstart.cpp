// Quickstart: run one workload against every policy on a 4-disk array and
// print the paper-style breakdown.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [trace-name] [disks]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pfc/pfc.h"

int main(int argc, char** argv) {
  const std::string trace_name = argc > 1 ? argv[1] : "postgres-select";
  const int disks = argc > 2 ? std::atoi(argv[2]) : 4;

  if (pfc::FindTraceSpec(trace_name) == nullptr) {
    std::fprintf(stderr, "unknown trace '%s'; available:\n", trace_name.c_str());
    for (const pfc::TraceSpec& spec : pfc::AllTraceSpecs()) {
      std::fprintf(stderr, "  %-16s %s\n", spec.name.c_str(), spec.description.c_str());
    }
    return 1;
  }

  // 1. Synthesize (or load) a trace.
  pfc::Trace trace = pfc::MakeTrace(trace_name);
  std::printf("%s\n\n", pfc::ToString(pfc::ComputeTraceStats(trace)).c_str());

  // 2. Configure the simulated machine: cache size per the paper, CSCAN
  //    scheduling, data striped over `disks` HP 97560-class drives.
  pfc::SimConfig config = pfc::BaselineConfig(trace_name, disks);

  // 3. Run each policy and print the elapsed-time breakdown.
  std::printf("%-20s %10s %10s %10s %10s %8s %6s\n", "policy", "elapsed(s)", "cpu(s)",
              "driver(s)", "stall(s)", "fetches", "util");
  for (pfc::PolicyKind kind :
       {pfc::PolicyKind::kDemand, pfc::PolicyKind::kFixedHorizon, pfc::PolicyKind::kAggressive,
        pfc::PolicyKind::kReverseAggressive, pfc::PolicyKind::kForestall}) {
    pfc::RunResult r = pfc::RunOne(trace, config, kind);
    std::printf("%-20s %10.3f %10.3f %10.3f %10.3f %8lld %6.2f\n", r.policy_name.c_str(),
                r.elapsed_sec(), r.compute_sec(), r.driver_sec(), r.stall_sec(),
                static_cast<long long>(r.fetches), r.avg_disk_util);
  }
  return 0;
}
