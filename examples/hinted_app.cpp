// hinted_app: build your own hinted workload and see what integrated
// prefetching buys you.
//
// This example plays the role of an application that discloses its future
// reads (the paper's "hints"): a toy multimedia server that streams three
// clips while periodically consulting a small hot index. It constructs the
// trace programmatically, saves it to disk in pfc's text format (so you can
// inspect or edit it), reloads it, and compares demand fetching against
// forestall on 1, 2 and 4 disks.
//
//   ./build/examples/hinted_app [output.trace]

#include <cstdio>
#include <string>

#include "pfc/pfc.h"

namespace {

pfc::Trace BuildMediaServerTrace() {
  pfc::Rng rng(2026);
  pfc::FileLayout layout(&rng);

  // A 64-block index consulted between segments, plus three ~1200-block
  // media files streamed in interleaved bursts.
  const int index_file = 0;
  layout.AddFile(64);
  int clips[3];
  for (int& clip : clips) {
    clip = layout.num_files();
    layout.AddFile(1200);
  }

  pfc::Trace trace("media-server");
  int64_t offset[3] = {0, 0, 0};
  bool live[3] = {true, true, true};
  int live_count = 3;
  while (live_count > 0) {
    for (int c = 0; c < 3; ++c) {
      if (!live[c]) {
        continue;
      }
      // Consult a random index block (hot, cached after warmup), then
      // stream a burst of the clip.
      trace.Append(layout.BlockAddress(index_file, rng.UniformInt(0, 63)), pfc::MsToNs(2));
      int64_t burst = 24 + rng.UniformInt(0, 16);
      for (int64_t i = 0; i < burst && live[c]; ++i) {
        trace.Append(layout.BlockAddress(clips[c], offset[c]), pfc::MsToNs(1.5));
        if (++offset[c] == layout.FileBlocks(clips[c])) {
          live[c] = false;
          --live_count;
        }
      }
    }
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "media-server.trace";

  pfc::Trace trace = BuildMediaServerTrace();
  std::printf("built:   %s\n", pfc::ToString(pfc::ComputeTraceStats(trace)).c_str());

  if (!pfc::SaveTraceText(trace, path)) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return 1;
  }
  auto reloaded = pfc::LoadTraceText(path);
  if (!reloaded.has_value()) {
    std::fprintf(stderr, "could not reload %s\n", path.c_str());
    return 1;
  }
  std::printf("reloaded %lld references from %s\n\n",
              static_cast<long long>(reloaded->size()), path.c_str());

  std::printf("%-6s %-10s %12s %12s %10s\n", "disks", "policy", "elapsed(s)", "stall(s)",
              "fetches");
  for (int disks : {1, 2, 4}) {
    pfc::SimConfig config;
    config.cache_blocks = 512;
    config.num_disks = disks;
    for (pfc::PolicyKind kind : {pfc::PolicyKind::kDemand, pfc::PolicyKind::kForestall}) {
      pfc::RunResult r = pfc::RunOne(*reloaded, config, kind);
      std::printf("%-6d %-10s %12.3f %12.3f %10lld\n", disks, r.policy_name.c_str(),
                  r.elapsed_sec(), r.stall_sec(), static_cast<long long>(r.fetches));
    }
  }
  std::printf("\nHints + forestall turn the streaming stalls into overlapped prefetches.\n");
  return 0;
}
