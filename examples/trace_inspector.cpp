// trace_inspector: examine a workload's access pattern and its interaction
// with the disk model — summary statistics, a compute-time histogram, the
// disk-response distribution, and the miss profile under MIN replacement.
//
//   ./build/examples/trace_inspector [trace-name-or-file]
//
// The argument is either one of the built-in paper traces or a path to a
// trace saved with pfc::SaveTraceText.

#include <cstdio>
#include <string>

#include "pfc/pfc.h"

int main(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : "glimpse";

  pfc::Trace trace;
  if (pfc::FindTraceSpec(arg) != nullptr) {
    trace = pfc::MakeTrace(arg);
  } else {
    auto loaded = pfc::LoadTraceText(arg);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "'%s' is neither a built-in trace nor a readable trace file\n",
                   arg.c_str());
      return 1;
    }
    trace = std::move(*loaded);
  }

  std::printf("%s\n\n", pfc::ToString(pfc::ComputeTraceStats(trace)).c_str());

  // Inter-reference compute-time distribution.
  {
    pfc::Histogram h(0.0, 20.0, 40);
    for (int64_t i = 0; i < trace.size(); ++i) {
      h.Add(pfc::NsToMs(trace.compute(pfc::TracePos{i})));
    }
    std::printf("inter-reference compute time (ms): p50=%.2f p90=%.2f p99=%.2f\n%s\n",
                h.Percentile(0.5), h.Percentile(0.9), h.Percentile(0.99),
                h.ToString(10).c_str());
  }

  // Miss profile under optimal (MIN) demand replacement, and the disk
  // response-time distribution those misses see on one disk.
  pfc::SimConfig config = pfc::BaselineConfig(trace.name(), 1);
  pfc::RunResult demand = pfc::RunOne(trace, config, pfc::PolicyKind::kDemand);
  std::printf("MIN demand misses: %lld of %lld reads (%.1f%%), avg disk service %.2f ms\n",
              static_cast<long long>(demand.fetches), static_cast<long long>(trace.size()),
              100.0 * static_cast<double>(demand.fetches) / static_cast<double>(trace.size()),
              demand.avg_fetch_ms);

  // How much of the elapsed time is recoverable by prefetching?
  pfc::RunResult forestall = pfc::RunOne(trace, config, pfc::PolicyKind::kForestall);
  std::printf("demand elapsed %.2fs -> forestall elapsed %.2fs on one disk "
              "(%.1f%% of the stall recovered)\n",
              demand.elapsed_sec(), forestall.elapsed_sec(),
              demand.stall_time > pfc::DurNs{0}
                  ? 100.0 *
                        static_cast<double>((demand.stall_time - forestall.stall_time).ns()) /
                        static_cast<double>(demand.stall_time.ns())
                  : 0.0);
  return 0;
}
