#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "core/policies/aggressive.h"
#include "core/policies/demand.h"
#include "core/policies/fixed_horizon.h"
#include "core/simulator.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace pfc {
namespace {

Trace LoopTrace(int64_t blocks, int64_t reads, DurNs compute) {
  Trace t("loop");
  for (int64_t i = 0; i < reads; ++i) {
    t.Append(BlockId{i % blocks}, compute);
  }
  return t;
}

Trace RandomTrace(int64_t blocks, int64_t reads, DurNs compute, uint64_t seed) {
  Trace t("random");
  Rng rng(seed);
  for (int64_t i = 0; i < reads; ++i) {
    t.Append(BlockId{rng.UniformInt(0, blocks - 1)}, compute);
  }
  return t;
}

SimConfig Cfg(int cache, int disks) {
  SimConfig c;
  c.cache_blocks = cache;
  c.num_disks = disks;
  return c;
}

// Reference implementation of Belady's MIN for demand fetching: on a miss,
// evict the cached block whose next reference is furthest in the future.
int64_t BeladyMisses(const Trace& t, int cache_blocks) {
  NextRefIndex idx(t);
  std::set<std::pair<int64_t, int64_t>> cached;  // (next_use, block)
  std::unordered_map<int64_t, int64_t> key;
  int64_t misses = 0;
  for (int64_t i = 0; i < t.size(); ++i) {
    const int64_t b = t.block(TracePos{i}).v();
    auto it = key.find(b);
    if (it == key.end()) {
      ++misses;
      if (static_cast<int>(key.size()) == cache_blocks) {
        auto victim = *cached.rbegin();
        cached.erase(victim);
        key.erase(victim.second);
      }
    } else {
      cached.erase({it->second, b});
      key.erase(it);
    }
    const int64_t next = idx.NextUseAfterPosition(TracePos{i}).v();
    cached.insert({next, b});
    key[b] = next;
  }
  return misses;
}

TEST(DemandPolicy, MatchesBeladyMinExactly) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Trace t = RandomTrace(50, 2000, MsToNs(1), seed);
    SimConfig c = Cfg(20, 1);
    DemandPolicy p;
    RunResult r = Simulator(t, c, &p).Run();
    EXPECT_EQ(r.fetches, BeladyMisses(t, 20)) << "seed " << seed;
  }
}

TEST(DemandPolicy, LoopMissesAreMinimal) {
  // MIN on a cyclic scan of N blocks with K buffers misses N-K times per
  // pass after the cold pass.
  const int64_t n = 30;
  const int k = 10;
  Trace t = LoopTrace(n, n * 5, MsToNs(1));
  DemandPolicy p;
  SimConfig c = Cfg(k, 1);
  RunResult r = Simulator(t, c, &p).Run();
  EXPECT_EQ(r.fetches, n + 4 * (n - k));
}

TEST(FixedHorizon, NeverFetchesBeyondHorizonWindow) {
  // With an enormous compute time and H=4, at most H+1 fetches can be
  // outstanding-or-complete beyond what was consumed.
  Trace t = LoopTrace(100, 100, MsToNs(50));
  SimConfig c = Cfg(50, 1);
  FixedHorizonPolicy p(4);
  RunResult r = Simulator(t, c, &p).Run();
  // All 100 distinct blocks get fetched eventually, no extra refetches.
  EXPECT_EQ(r.fetches, 100);
  // Compute-bound: prefetching 4 ahead at 50 ms per step hides everything
  // after the cold start.
  EXPECT_LT(r.stall_sec(), 0.2);
}

TEST(FixedHorizon, LargerHorizonHelpsIoBoundTrace) {
  Trace t = RandomTrace(4000, 3000, MsToNs(2), 7);
  SimConfig c = Cfg(1280, 4);
  RunResult small_h;
  RunResult big_h;
  {
    FixedHorizonPolicy p(8);
    small_h = Simulator(t, c, &p).Run();
  }
  {
    FixedHorizonPolicy p(128);
    big_h = Simulator(t, c, &p).Run();
  }
  EXPECT_LT(big_h.stall_time, small_h.stall_time);
}

TEST(FixedHorizon, EvictionRespectsHorizonGuard) {
  // A hot set equal to the cache size plus a stream of cold blocks: the
  // eviction guard (victim's next use beyond H) must defer fetches rather
  // than evict hot blocks, so the hot set stays resident.
  Trace t("hot");
  const int hot = 8;
  int64_t cold = 100;
  for (int rep = 0; rep < 50; ++rep) {
    for (int64_t h = 0; h < hot; ++h) {
      t.Append(BlockId{h}, MsToNs(1));
    }
    t.Append(BlockId{cold++}, MsToNs(1));
  }
  SimConfig c = Cfg(hot + 1, 1);
  FixedHorizonPolicy p(32);
  RunResult r = Simulator(t, c, &p).Run();
  // Hot blocks fetched once each; every cold block once.
  EXPECT_EQ(r.fetches, hot + 50);
}

TEST(Aggressive, DoNoHarmKeepsFetchCountMinimalOnComputeBoundLoop) {
  // In a compute-bound loop with enough buffers, aggressive must not evict
  // blocks it will need before the fetched block (do-no-harm), so its fetch
  // count matches demand's miss count.
  Trace t = LoopTrace(30, 300, MsToNs(30));
  SimConfig c = Cfg(40, 1);  // whole loop fits: fetch each block once
  AggressivePolicy p;
  RunResult r = Simulator(t, c, &p).Run();
  EXPECT_EQ(r.fetches, 30);
  EXPECT_LT(r.stall_sec(), 0.2);
}

TEST(Aggressive, UsesIdleDisksToEliminateStall) {
  Trace t = RandomTrace(4000, 2000, MsToNs(3), 11);
  SimConfig c = Cfg(1280, 8);
  AggressivePolicy agg;
  RunResult r = Simulator(t, c, &agg).Run();
  DemandPolicy dem;
  RunResult d = Simulator(t, c, &dem).Run();
  EXPECT_LT(r.stall_time, d.stall_time / 5);
}

TEST(Aggressive, BatchSizeChangesFetchSchedule) {
  Trace t = LoopTrace(2000, 10000, MsToNs(1));
  SimConfig c = Cfg(1280, 1);
  RunResult small_batch;
  RunResult big_batch;
  {
    AggressivePolicy p(4);
    small_batch = Simulator(t, c, &p).Run();
  }
  {
    AggressivePolicy p(160);
    big_batch = Simulator(t, c, &p).Run();
  }
  // Batching trades scheduling latitude against early replacement, so the
  // knob must change the schedule, and neither setting may regress far
  // beyond optimal-replacement demand fetching.
  EXPECT_NE(small_batch.elapsed_time, big_batch.elapsed_time);
  DemandPolicy dp;
  RunResult d = Simulator(t, c, &dp).Run();
  EXPECT_LT(static_cast<double>(small_batch.elapsed_time.ns()),
            1.1 * static_cast<double>(d.elapsed_time.ns()));
  EXPECT_LT(static_cast<double>(big_batch.elapsed_time.ns()),
            1.1 * static_cast<double>(d.elapsed_time.ns()));
}

TEST(Policies, NamesAreStable) {
  EXPECT_EQ(DemandPolicy().name(), "demand");
  EXPECT_EQ(FixedHorizonPolicy().name(), "fixed-horizon");
  EXPECT_EQ(AggressivePolicy().name(), "aggressive");
}

TEST(Policies, DefaultBatchSizesMatchTable6) {
  EXPECT_EQ(DefaultBatchSize(1), 80);
  EXPECT_EQ(DefaultBatchSize(2), 40);
  EXPECT_EQ(DefaultBatchSize(3), 40);
  EXPECT_EQ(DefaultBatchSize(4), 16);
  EXPECT_EQ(DefaultBatchSize(5), 16);
  EXPECT_EQ(DefaultBatchSize(6), 8);
  EXPECT_EQ(DefaultBatchSize(7), 8);
  EXPECT_EQ(DefaultBatchSize(8), 4);
  EXPECT_EQ(DefaultBatchSize(16), 4);
}

}  // namespace
}  // namespace pfc
