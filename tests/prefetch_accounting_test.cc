// Tests for the prefetch-quality accounting taxonomy (issued / filled /
// failed / useful / useless / late): the exact-balance invariants must hold
// for every (policy x predictor x fault) cell, in both engines, and the
// observability event stream must agree with the engine's ledger.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diff.h"
#include "core/run_result.h"
#include "core/sim_error.h"
#include "core/simulator.h"
#include "harness/experiment.h"
#include "obs/obs_report.h"

namespace pfc {
namespace {

Trace MixedTrace(int64_t blocks, int64_t refs) {
  // Loop with a write sprinkled in every 16th reference: the write path
  // (EvictClean reclaiming a pending prefetch) is part of the lifecycle.
  Trace t("mixed");
  for (int64_t i = 0; i < refs; ++i) {
    if (i % 16 == 15) {
      t.AppendWrite(BlockId{i % blocks}, MsToNs(1));
    } else {
      t.Append(BlockId{i % blocks}, MsToNs(1));
    }
  }
  return t;
}

struct FaultCell {
  const char* name;
  FaultConfig faults;
  HintFault hint_fault;
};

std::vector<FaultCell> FaultCells() {
  std::vector<FaultCell> cells;
  cells.push_back({"clean", {}, {}});
  {
    FaultCell c{"media", {}, {}};
    c.faults.media_error_rate = 0.05;
    cells.push_back(c);
  }
  {
    FaultCell c{"stale-hints", {}, {}};
    c.hint_fault.stale_lookahead = 12;
    cells.push_back(c);
  }
  {
    FaultCell c{"wrong-hints", {}, {}};
    c.hint_fault.wrong_block_rate = 0.15;
    cells.push_back(c);
  }
  return cells;
}

void ExpectBalanced(const RunResult& r, const std::string& label) {
  // End-of-run reconcile folds still-in-flight fetches into failed and
  // still-pending blocks into useless, so after Run() both balances are
  // exact with no residue terms.
  EXPECT_EQ(r.prefetch_issued, r.prefetch_filled + r.prefetch_failed) << label;
  EXPECT_EQ(r.prefetch_filled, r.prefetch_useful + r.prefetch_useless + r.prefetch_late)
      << label;
  EXPECT_GE(r.prefetch_issued, 0) << label;
  EXPECT_GE(r.prefetch_useful, 0) << label;
}

TEST(PrefetchAccounting, BalancesHoldForEveryCellInBothEngines) {
  Trace t = MixedTrace(120, 900);
  const PolicyKind kPolicies[] = {PolicyKind::kDemand, PolicyKind::kDemandLru,
                                  PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                                  PolicyKind::kForestall};
  const PredictorKind kPredictors[] = {PredictorKind::kOracle, PredictorKind::kNone,
                                       PredictorKind::kSequential, PredictorKind::kMarkov,
                                       PredictorKind::kTemporal};
  for (const FaultCell& fc : FaultCells()) {
    for (PredictorKind pk : kPredictors) {
      if (pk != PredictorKind::kOracle && fc.hint_fault.enabled()) {
        continue;  // ValidateSimConfig rejects mixing the degradation axes
      }
      for (PolicyKind kind : kPolicies) {
        SimConfig c;
        c.cache_blocks = 64;
        c.num_disks = 2;
        c.faults = fc.faults;
        c.hint_fault = fc.hint_fault;
        c.predictor.kind = pk;
        c.predictor.lookahead =
            (pk == PredictorKind::kOracle || pk == PredictorKind::kNone) ? 0 : 8;
        // The paranoid auditor re-checks the running balances (with the
        // inflight/pending residues) after every event.
        c.paranoid = true;
        const std::string label = std::string(fc.name) + "/" + ToString(pk) + "/" +
                                  ToString(kind);
        ExpectBalanced(RunOne(t, c, kind), label + " [sim]");
        ExpectBalanced(RunRefSim(t, c, kind), label + " [ref]");
      }
    }
  }
}

TEST(PrefetchAccounting, PrefetchersActuallyPrefetchUnderTheOracle) {
  // Guard against the balance holding vacuously (0 == 0 + 0): the oracle
  // cells for the prefetching policies must issue real prefetches and
  // consume most of them.
  Trace t = MixedTrace(120, 900);
  for (PolicyKind kind : {PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                          PolicyKind::kForestall}) {
    SimConfig c;
    c.cache_blocks = 64;
    c.num_disks = 2;
    RunResult r = RunOne(t, c, kind);
    EXPECT_GT(r.prefetch_issued, 0) << ToString(kind);
    EXPECT_GT(r.prefetch_useful, 0) << ToString(kind);
  }
}

TEST(PrefetchAccounting, EventStreamAgreesWithLedger) {
  // With the collector installed, ObsCollector::Finish cross-checks the
  // event stream against the ledger (aborting on disagreement); here we
  // additionally pin the report's counters to the result's.
  Trace t = MixedTrace(100, 700);
  for (PredictorKind pk : {PredictorKind::kOracle, PredictorKind::kSequential}) {
    SimConfig c;
    c.cache_blocks = 48;
    c.num_disks = 2;
    c.predictor.kind = pk;
    c.predictor.lookahead = pk == PredictorKind::kOracle ? 0 : 8;
    c.obs.collect = true;
    RunResult r = RunOne(t, c, PolicyKind::kForestall);
    ASSERT_NE(r.obs, nullptr);
    EXPECT_EQ(r.obs->prefetch_issues, r.prefetch_issued);
    EXPECT_EQ(r.obs->prefetch_lands, r.prefetch_filled);
    EXPECT_EQ(r.obs->prefetch_useful, r.prefetch_useful);
    EXPECT_LE(r.obs->prefetch_cancels, r.prefetch_failed);
    EXPECT_LE(r.obs->prefetch_unused, r.prefetch_useless);
  }
}

TEST(PrefetchAccounting, LateBucketFillsWhenDisksAreSlow) {
  // One slow disk makes prefetches land after their reference is already
  // waiting: the late bucket must see traffic somewhere in the sweep, and
  // every cell must still balance.
  Trace t = MixedTrace(200, 1200);
  int64_t total_late = 0;
  for (PolicyKind kind : {PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                          PolicyKind::kForestall}) {
    SimConfig c;
    c.cache_blocks = 64;
    c.num_disks = 2;
    c.faults.slow_disk = DiskId{0};
    c.faults.slow_factor = 20.0;
    c.paranoid = true;
    RunResult r = RunOne(t, c, kind);
    ExpectBalanced(r, ToString(kind));
    total_late += r.prefetch_late;
  }
  EXPECT_GT(total_late, 0);
}

TEST(PrefetchAccounting, HintlessCellsIssueNoPrefetches) {
  Trace t = MixedTrace(80, 500);
  for (PolicyKind kind : {PolicyKind::kDemand, PolicyKind::kFixedHorizon,
                          PolicyKind::kAggressive, PolicyKind::kForestall}) {
    SimConfig c;
    c.cache_blocks = 32;
    c.num_disks = 2;
    c.predictor.kind = PredictorKind::kNone;
    RunResult r = RunOne(t, c, kind);
    EXPECT_EQ(r.prefetch_issued, 0) << ToString(kind);
    EXPECT_EQ(r.fetches, r.demand_fetches) << ToString(kind);
  }
}

}  // namespace
}  // namespace pfc
