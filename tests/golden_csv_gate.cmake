# Runs a bench binary with --csv=<CSV> and byte-compares the output against
# the committed golden. Invoked by the golden_*_csv ctest entries.
#
#   cmake -DBENCH=<bench-exe> -DCSV=<out.csv> -DGOLDEN=<golden.csv> -P golden_csv_gate.cmake

execute_process(COMMAND "${BENCH}" "--csv=${CSV}" RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench failed with exit code ${rc}: ${BENCH}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${CSV}" "${GOLDEN}"
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "CSV drifted from golden ${GOLDEN}; regenerated copy is at ${CSV}. "
          "If the change is intentional, copy it over the golden.")
endif()
