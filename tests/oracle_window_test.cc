// Boundary behavior of the bounded-knowledge oracle (core/ref_oracle.h):
//
//   W >= trace length  ==  full advance knowledge, bit-for-bit
//   W == 0             ==  the hintless predictor (kNone), bit-for-bit
//   intermediate W     ==  differential-consistent between both engines,
//                          and never better than full knowledge
//
// plus reverse aggressive's refusal: it is an offline algorithm and cannot
// run with truncated future knowledge.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diff.h"
#include "core/sim_config.h"
#include "core/sim_error.h"
#include "harness/experiment.h"
#include "trace/generators.h"

namespace pfc {
namespace {

constexpr PolicyKind kOnlinePolicies[] = {
    PolicyKind::kDemand, PolicyKind::kDemandLru, PolicyKind::kFixedHorizon,
    PolicyKind::kAggressive, PolicyKind::kForestall,
};

TEST(OracleWindow, WindowCoveringTraceEqualsUnbounded) {
  const Trace trace = MakeTrace("cscope1");
  const SimConfig base = BaselineConfig(trace.name(), 2);
  for (PolicyKind kind : kOnlinePolicies) {
    const RunResult unbounded = RunOne(trace, base, kind);
    SimConfig windowed = base;
    windowed.oracle_window = trace.size();  // horizon always past the end
    const RunResult covered = RunOne(trace, windowed, kind);
    std::vector<std::string> why;
    EXPECT_TRUE(ResultsExactlyEqual(unbounded, covered, &why))
        << ToString(kind) << ": " << (why.empty() ? "?" : why.front());
  }
}

TEST(OracleWindow, ZeroWindowEqualsHintlessPredictor) {
  // W = 0 discloses nothing: every policy must degenerate to exactly the
  // state the hintless predictor (kNone) produces — same fetches, same
  // stalls, same replacement decisions, bit-for-bit.
  const Trace trace = MakeTrace("postgres-select");
  const SimConfig base = BaselineConfig(trace.name(), 2);
  for (PolicyKind kind : kOnlinePolicies) {
    SimConfig hintless = base;
    hintless.predictor.kind = PredictorKind::kNone;
    const RunResult via_predictor = RunOne(trace, hintless, kind);
    SimConfig windowed = base;
    windowed.oracle_window = 0;
    const RunResult via_window = RunOne(trace, windowed, kind);
    std::vector<std::string> why;
    EXPECT_TRUE(ResultsExactlyEqual(via_predictor, via_window, &why))
        << ToString(kind) << ": " << (why.empty() ? "?" : why.front());
  }
}

TEST(OracleWindow, ReverseAggressiveRefusesBoundedWindow) {
  const Trace trace = MakeTrace("ld");
  SimConfig config = BaselineConfig(trace.name(), 2);
  config.oracle_window = 1000;
  EXPECT_THROW(RunOne(trace, config, PolicyKind::kReverseAggressive), SimError);
}

TEST(OracleWindow, DifferentialAcrossWindowSizes) {
  // Intermediate windows exercise a code path the full-knowledge corpus
  // never reaches (oracle clamping, hint-horizon gating, missing-tracker
  // truncation). Both engines must still agree exactly.
  const Trace trace = MakeTrace("glimpse");
  const SimConfig base = BaselineConfig(trace.name(), 3);
  for (PolicyKind kind :
       {PolicyKind::kFixedHorizon, PolicyKind::kAggressive, PolicyKind::kForestall}) {
    for (int64_t window : {1, 10, 100}) {
      SimConfig config = base;
      config.oracle_window = window;
      const DiffReport report = RunDifferential(trace, config, kind);
      EXPECT_TRUE(report.consistent)
          << ToString(kind) << " W=" << window << ": " << report.ToString();
    }
  }
}

TEST(OracleWindow, MoreKnowledgeNeverHurtsAtTheEndpoints) {
  // Sweep W over powers of four. The pinned properties: zero knowledge is
  // the worst case (every window beats or ties W = 0), and for the
  // conservative prefetchers every window is also no better than full
  // knowledge. Aggressive is deliberately excluded from that second bound —
  // it over-prefetches (section 5 of the paper), so throttling its horizon
  // with a small window can *reduce* disk contention and beat the
  // full-knowledge run; the sweep only pins that it never falls below the
  // full-knowledge elapsed's policy-family floor, i.e. stays within
  // [demand-free best, hintless worst].
  const Trace trace = MakeTrace("cscope1");
  const SimConfig base = BaselineConfig(trace.name(), 4);
  for (PolicyKind kind : {PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                          PolicyKind::kForestall}) {
    SimConfig zero = base;
    zero.oracle_window = 0;
    const RunResult none = RunOne(trace, zero, kind);
    const RunResult full = RunOne(trace, base, kind);
    EXPECT_GE(none.elapsed_time, full.elapsed_time) << ToString(kind);
    EXPECT_GE(none.stall_time, full.stall_time) << ToString(kind);
    for (int64_t window = 1; window <= trace.size(); window *= 4) {
      SimConfig mid = base;
      mid.oracle_window = window;
      const RunResult part = RunOne(trace, mid, kind);
      EXPECT_LE(part.elapsed_time, none.elapsed_time)
          << ToString(kind) << " W=" << window;
      if (kind != PolicyKind::kAggressive) {
        EXPECT_GE(part.elapsed_time, full.elapsed_time)
            << ToString(kind) << " W=" << window;
      }
    }
  }
}

TEST(OracleWindow, RejectsInvalidCombinations) {
  const Trace trace = MakeTrace("ld");
  SimConfig config = BaselineConfig(trace.name(), 2);
  config.oracle_window = -2;
  EXPECT_THROW(RunOne(trace, config, PolicyKind::kDemand), SimError);
  config = BaselineConfig(trace.name(), 2);
  config.oracle_window = 50;
  config.hint_coverage = 0.5;
  EXPECT_THROW(RunOne(trace, config, PolicyKind::kAggressive), SimError);
  config = BaselineConfig(trace.name(), 2);
  config.oracle_window = 50;
  config.predictor.kind = PredictorKind::kSequential;
  config.predictor.lookahead = 8;
  EXPECT_THROW(RunOne(trace, config, PolicyKind::kAggressive), SimError);
}

}  // namespace
}  // namespace pfc
