#include <gtest/gtest.h>

#include <cmath>

#include "trace/generators.h"
#include "trace/trace_stats.h"

namespace pfc {
namespace {

// Every generator must hit its Table 3 read count exactly, its distinct
// count exactly or within a small band, and its compute total exactly
// (up to nanosecond rounding pushed into the last entry).
class GeneratorSpecTest : public testing::TestWithParam<TraceSpec> {};

TEST_P(GeneratorSpecTest, MatchesTable3) {
  const TraceSpec& spec = GetParam();
  Trace trace = MakeTrace(spec.name);
  EXPECT_EQ(trace.size(), spec.paper_reads) << spec.name;
  EXPECT_NEAR(NsToSec(trace.TotalCompute()), spec.paper_compute_sec, 1e-6) << spec.name;

  int64_t distinct = trace.DistinctBlocks();
  // xds's distinct count is emergent (random plane geometry); the rest are
  // constructed exactly or near-exactly.
  double tolerance = spec.name == "xds" ? 0.12 : 0.01;
  EXPECT_NEAR(static_cast<double>(distinct), static_cast<double>(spec.paper_distinct),
              tolerance * static_cast<double>(spec.paper_distinct))
      << spec.name;
}

TEST_P(GeneratorSpecTest, DeterministicForSeed) {
  const TraceSpec& spec = GetParam();
  Trace a = MakeTrace(spec.name, 12345);
  Trace b = MakeTrace(spec.name, 12345);
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); i += 97) {
    ASSERT_EQ(a.block(TracePos{i}), b.block(TracePos{i})) << spec.name << " @" << i;
    ASSERT_EQ(a.compute(TracePos{i}), b.compute(TracePos{i})) << spec.name << " @" << i;
  }
}

TEST_P(GeneratorSpecTest, NonNegativeEntries) {
  const TraceSpec& spec = GetParam();
  Trace t = MakeTrace(spec.name);
  for (int64_t i = 0; i < t.size(); ++i) {
    ASSERT_GE(t.block(TracePos{i}), BlockId{0});
    ASSERT_GE(t.compute(TracePos{i}), DurNs{0});
  }
}

INSTANTIATE_TEST_SUITE_P(AllTraces, GeneratorSpecTest, testing::ValuesIn(AllTraceSpecs()),
                         [](const testing::TestParamInfo<TraceSpec>& param_info) {
                           std::string name = param_info.param.name;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Generators, DifferentSeedsGiveDifferentLayouts) {
  Trace a = MakeTrace("cscope2", 1);
  Trace b = MakeTrace("cscope2", 2);
  int64_t diffs = 0;
  for (int64_t i = 0; i < a.size(); i += 10) {
    if (a.block(TracePos{i}) != b.block(TracePos{i})) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, a.size() / 40);
}

TEST(Generators, SynthIsSequentialLoop) {
  Trace t = MakeTrace("synth");
  for (int64_t i = 0; i < 6000; ++i) {
    ASSERT_EQ(t.block(TracePos{i}), BlockId{i % 2000});
  }
}

TEST(Generators, DineroIsOneSequentialFile) {
  Trace t = MakeTrace("dinero");
  TraceStats s = ComputeTraceStats(t);
  EXPECT_GT(s.sequential_fraction, 0.99);
  // Sequential within the pass, and passes repeat the same 986 blocks.
  EXPECT_EQ(t.block(TracePos{0}), t.block(TracePos{986}));
}

TEST(Generators, Cscope3ComputeIsBursty) {
  // Section 4.3: runs near 1 ms interspersed with runs around 7 ms.
  Trace t = MakeTrace("cscope3");
  int64_t low = 0;
  int64_t high = 0;
  int64_t transitions = 0;
  bool prev_high = false;
  for (int64_t i = 0; i < t.size(); ++i) {
    bool is_high = t.compute(TracePos{i}) > MsToNs(3.5);
    (is_high ? high : low) += 1;
    if (i > 0 && is_high != prev_high) {
      ++transitions;
    }
    prev_high = is_high;
  }
  EXPECT_GT(low, t.size() / 2);        // mostly ~1 ms
  EXPECT_GT(high, t.size() / 10);      // substantial ~7 ms mass
  // Bursty: far fewer transitions than a random mix would produce.
  EXPECT_LT(transitions, t.size() / 20);
}

TEST(Generators, GlimpseIndexIsHotDataIsCold) {
  Trace t = MakeTrace("glimpse");
  // The most popular blocks (the index) are read ~16x; data blocks a couple
  // of times at most.
  std::unordered_map<int64_t, int> counts;
  for (int64_t i = 0; i < t.size(); ++i) {
    ++counts[t.block(TracePos{i}).v()];
  }
  int64_t hot = 0;
  int64_t cold = 0;
  for (const auto& [block, n] : counts) {
    (void)block;
    if (n >= 10) {
      ++hot;
    } else if (n <= 8) {
      ++cold;
    }
  }
  EXPECT_NEAR(static_cast<double>(hot), 1340, 20);    // the index region
  EXPECT_NEAR(static_cast<double>(cold), 3907, 40);   // the data blocks
}

TEST(Generators, PostgresSelectWalksIndexLeavesInOrder) {
  Trace t = MakeTrace("postgres-select");
  // Index leaf reads (hot blocks) appear in nondecreasing leaf order.
  std::unordered_map<int64_t, int> counts;
  for (int64_t i = 0; i < t.size(); ++i) {
    ++counts[t.block(TracePos{i}).v()];
  }
  int64_t prev_leaf = -1;
  bool monotone = true;
  for (int64_t i = 0; i < t.size(); ++i) {
    if (counts[t.block(TracePos{i}).v()] >= 5) {  // leaf blocks are re-read many times
      if (t.block(TracePos{i}).v() < prev_leaf) {
        monotone = false;
      }
      prev_leaf = t.block(TracePos{i}).v();
    }
  }
  EXPECT_TRUE(monotone);
}

TEST(Generators, LdReadsEachFileTwiceBackToBack) {
  Trace t = MakeTrace("ld");
  // The second read of each file follows the first within a short distance,
  // so nearly all re-reads hit a 1280-block cache. Verify reuse distance.
  std::unordered_map<int64_t, int64_t> last_seen;
  int64_t reuses = 0;
  int64_t near_reuses = 0;
  for (int64_t i = 0; i < t.size(); ++i) {
    auto it = last_seen.find(t.block(TracePos{i}).v());
    if (it != last_seen.end()) {
      ++reuses;
      if (i - it->second <= 1280) {
        ++near_reuses;
      }
    }
    last_seen[t.block(TracePos{i}).v()] = i;
  }
  EXPECT_GT(reuses, 2800);
  EXPECT_GT(static_cast<double>(near_reuses), 0.95 * static_cast<double>(reuses));
}

TEST(Generators, UnknownTraceNameIsNull) {
  EXPECT_EQ(FindTraceSpec("no-such-trace"), nullptr);
  EXPECT_NE(FindTraceSpec("dinero"), nullptr);
}

}  // namespace
}  // namespace pfc
