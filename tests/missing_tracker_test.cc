#include <gtest/gtest.h>

#include "core/missing_tracker.h"
#include "core/policies/demand.h"
#include "core/simulator.h"
#include "trace/trace.h"

namespace pfc {
namespace {

// A policy wrapper that owns a MissingTracker and cross-checks it against
// the ground truth (a full scan of the cache) at every reference.
class TrackerCheckPolicy : public DemandPolicy {
 public:
  explicit TrackerCheckPolicy(int64_t window) : window_(window) {}

  void Init(Engine& sim) override {
    tracker_ = std::make_unique<MissingTracker>(sim, window_);
  }

  void OnReference(Engine& sim, TracePos pos) override {
    tracker_->AdvanceTo(pos);
    // Ground truth: positions in [pos, pos+window) whose block is absent.
    const TracePos end{std::min(pos.v() + window_, sim.trace().size())};
    for (TracePos p = pos; p < end; ++p) {
      bool absent =
          sim.cache().GetState(sim.trace().block(p)) == CacheView::State::kAbsent;
      bool tracked = tracker_->Contains(p);
      if (absent && !tracked) {
        ++missing_entries_;  // must never happen (one-sided staleness)
      }
      if (!absent && tracked) {
        ++stale_entries_;  // allowed, cleaned lazily
      }
      if (absent && tracked) {
        const DiskId disk = sim.Location(sim.trace().block(p)).disk;
        EXPECT_TRUE(tracker_->ContainsOnDisk(disk, p));
      }
    }
    ++checks_;
  }

  BlockId ChooseDemandEviction(Engine& sim, BlockId block) override {
    const BlockId victim = DemandPolicy::ChooseDemandEviction(sim, block);
    tracker_->OnEvict(victim);
    return victim;
  }

  void OnDemandFetch(Engine& sim, BlockId block) override {
    (void)sim;
    tracker_->OnIssue(block);
  }

  int64_t missing_entries() const { return missing_entries_; }
  int64_t stale_entries() const { return stale_entries_; }
  int64_t checks() const { return checks_; }

 private:
  int64_t window_;
  std::unique_ptr<MissingTracker> tracker_;
  int64_t missing_entries_ = 0;
  int64_t stale_entries_ = 0;
  int64_t checks_ = 0;
};

TEST(MissingTracker, NeverMissesAnAbsentBlock) {
  // Cyclic trace with evictions galore: the tracker must always contain
  // every truly absent in-window position.
  Trace t("loop");
  for (int64_t i = 0; i < 2000; ++i) {
    t.Append(BlockId{i % 90}, MsToNs(1));
  }
  SimConfig c;
  c.cache_blocks = 30;
  c.num_disks = 2;
  TrackerCheckPolicy policy(64);
  Simulator sim(t, c, &policy);
  sim.Run();
  EXPECT_GT(policy.checks(), 0);
  EXPECT_EQ(policy.missing_entries(), 0);
}

TEST(MissingTracker, WindowSlidesAndRetires) {
  Trace t("seq");
  for (int64_t i = 0; i < 100; ++i) {
    t.Append(BlockId{i}, MsToNs(1));
  }
  SimConfig c;
  c.cache_blocks = 16;
  c.num_disks = 1;
  DemandPolicy demand;
  Simulator sim(t, c, &demand);
  MissingTracker tracker(sim, 10);
  tracker.AdvanceTo(TracePos{0});
  // All of [0, 10) absent initially.
  EXPECT_EQ(tracker.size(), 10);
  EXPECT_EQ(tracker.FirstGlobalAtOrAfter(TracePos{0}), TracePos{0});
  tracker.AdvanceTo(TracePos{5});
  EXPECT_EQ(tracker.FirstGlobalAtOrAfter(TracePos{0}), TracePos{5});
  EXPECT_EQ(tracker.size(), 10);  // [5, 15)
}

TEST(MissingTracker, IssueAndEvictUpdateEntries) {
  Trace t("rep");
  for (int64_t i = 0; i < 60; ++i) {
    t.Append(BlockId{i % 3}, MsToNs(1));  // blocks 0,1,2 repeating
  }
  SimConfig c;
  c.cache_blocks = 8;
  c.num_disks = 1;
  DemandPolicy demand;
  Simulator sim(t, c, &demand);
  MissingTracker tracker(sim, 12);
  tracker.AdvanceTo(TracePos{0});
  EXPECT_EQ(tracker.size(), 12);  // all absent
  tracker.OnIssue(BlockId{0});              // block 0's positions vanish
  EXPECT_EQ(tracker.size(), 8);
  tracker.OnEvict(BlockId{0});  // back again
  EXPECT_EQ(tracker.size(), 12);
}

}  // namespace
}  // namespace pfc
