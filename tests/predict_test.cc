// Tests for the online prediction subsystem (src/predict): the three
// predictor implementations, the materialized claim stream, the
// claims-vs-truth wiring through TraceContext, config validation, and the
// engine identity that hintless prefetchers are bit-for-bit demand.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diff.h"
#include "core/sim_error.h"
#include "core/simulator.h"
#include "core/trace_context.h"
#include "harness/experiment.h"
#include "predict/hint_stream.h"
#include "predict/predictor.h"

namespace pfc {
namespace {

Trace SequentialTrace(int64_t n) {
  Trace t("seq");
  for (int64_t i = 0; i < n; ++i) {
    t.Append(BlockId{i}, MsToNs(1));
  }
  return t;
}

Trace LoopTrace(int64_t blocks, int64_t reads) {
  Trace t("loop");
  for (int64_t i = 0; i < reads; ++i) {
    t.Append(BlockId{i % blocks}, MsToNs(1));
  }
  return t;
}

TEST(Predictor, SequentialPredictsNextBlock) {
  auto p = MakePredictor(PredictorKind::kSequential);
  EXPECT_EQ(p->PredictAfter(kNoBlock, BlockId{7}), BlockId{8});
  EXPECT_EQ(p->PredictAfter(BlockId{3}, BlockId{41}), BlockId{42});
  EXPECT_EQ(p->PredictAfter(kNoBlock, kNoBlock), kNoBlock);
}

TEST(Predictor, MarkovPredictsMostFrequentSuccessor) {
  auto p = MakePredictor(PredictorKind::kMarkov);
  // 1->2 twice, 1->3 once: the majority successor wins.
  for (int64_t b : {1, 2, 1, 3, 1, 2}) {
    p->Observe(BlockId{b});
  }
  EXPECT_EQ(p->PredictAfter(kNoBlock, BlockId{1}), BlockId{2});
  // Unseen context: no basis for a claim.
  EXPECT_EQ(p->PredictAfter(kNoBlock, BlockId{99}), kNoBlock);
}

TEST(Predictor, MarkovTieBreaksTowardSmallerBlock) {
  auto p = MakePredictor(PredictorKind::kMarkov);
  // 5->9 once and 5->6 once, observed in that order: the tie must go to
  // block 6 regardless of insertion or hash order.
  for (int64_t b : {5, 9, 5, 6}) {
    p->Observe(BlockId{b});
  }
  EXPECT_EQ(p->PredictAfter(kNoBlock, BlockId{5}), BlockId{6});
}

TEST(Predictor, TemporalPairContextBeatsFirstOrder) {
  auto p = MakePredictor(PredictorKind::kTemporal);
  // Two interleaved streams share block 2 but diverge after it depending
  // on what preceded: (1,2)->3 and (9,2)->8.
  for (int64_t b : {1, 2, 3, 9, 2, 8}) {
    p->Observe(BlockId{b});
  }
  EXPECT_EQ(p->PredictAfter(BlockId{1}, BlockId{2}), BlockId{3});
  EXPECT_EQ(p->PredictAfter(BlockId{9}, BlockId{2}), BlockId{8});
  // Novel pair falls back to the last successor of cur alone.
  EXPECT_EQ(p->PredictAfter(BlockId{77}, BlockId{2}), BlockId{8});
  EXPECT_EQ(p->PredictAfter(BlockId{77}, BlockId{55}), kNoBlock);
}

TEST(HintStream, SequentialClaimsAreExactOnSequentialScan) {
  Trace t = SequentialTrace(64);
  PredictorConfig config;
  config.kind = PredictorKind::kSequential;
  config.lookahead = 8;
  PredictedHints h = BuildPredictedHints(t, config);
  ASSERT_EQ(h.hinted.size(), 64u);
  ASSERT_EQ(h.claims.size(), 64u);
  for (int64_t p = 0; p < 64; ++p) {
    if (p < config.lookahead) {
      // Nothing was observed early enough to claim these.
      EXPECT_FALSE(h.hinted[static_cast<size_t>(p)]) << p;
    } else {
      EXPECT_TRUE(h.hinted[static_cast<size_t>(p)]) << p;
    }
    // Claims are total: readahead is exact here, and even unhinted
    // positions carry the true block (HintedBlock() totality contract).
    EXPECT_EQ(h.claims[static_cast<size_t>(p)], t.block(TracePos{p})) << p;
  }
}

TEST(HintStream, UnhintedPositionsStillCarryTheTrueBlock) {
  // A pointer-chasing trace the sequential predictor gets entirely wrong:
  // every claim chain is "cur + lookahead", which never matches, but the
  // unhinted/wrong positions must never hold kNoBlock.
  Trace t("jump");
  for (int64_t b : {10, 50, 20, 60, 30, 70, 40, 80}) {
    t.Append(BlockId{b}, MsToNs(1));
  }
  PredictorConfig config;
  config.kind = PredictorKind::kMarkov;
  config.lookahead = 3;
  PredictedHints h = BuildPredictedHints(t, config);
  for (size_t p = 0; p < h.claims.size(); ++p) {
    EXPECT_NE(h.claims[p], kNoBlock) << p;
    if (!h.hinted[p]) {
      EXPECT_EQ(h.claims[p], t.block(TracePos{static_cast<int64_t>(p)})) << p;
    }
  }
}

TEST(TraceContext, HintlessModeDisclosesNothing) {
  Trace t = LoopTrace(32, 200);
  PredictorConfig none;
  none.kind = PredictorKind::kNone;
  TraceContext context(t, 1.0, uint64_t{1}, HintFault{}, none);
  ASSERT_EQ(context.hinted().size(), static_cast<size_t>(t.size()));
  for (bool h : context.hinted()) {
    EXPECT_FALSE(h);
  }
  EXPECT_TRUE(context.claims().empty());
}

TEST(TraceContext, LearningPredictorKeepsTruthfulIndex) {
  // The claims-vs-truth split: prefetch planning sees the predictor's
  // stream, but the next-reference index (replacement's knowledge) stays
  // built from the full truthful trace.
  Trace t = LoopTrace(16, 100);
  PredictorConfig markov;
  markov.kind = PredictorKind::kMarkov;
  markov.lookahead = 4;
  TraceContext predicted(t, 1.0, uint64_t{1}, HintFault{}, markov);
  TraceContext truthful(t, 1.0, uint64_t{1}, HintFault{}, PredictorConfig{});
  for (TracePos p{0}; p.v() < t.size(); ++p) {
    EXPECT_EQ(predicted.index().NextUseAfterPosition(p), truthful.index().NextUseAfterPosition(p))
        << p.v();
  }
}

TEST(Validation, RejectsContradictoryHintSetups) {
  SimConfig base;
  base.cache_blocks = 64;
  base.num_disks = 2;
  ASSERT_NO_THROW(ValidateSimConfig(base));

  SimConfig both = base;
  both.predictor.kind = PredictorKind::kMarkov;
  both.predictor.lookahead = 8;
  both.hint_fault.wrong_block_rate = 0.1;
  EXPECT_THROW(ValidateSimConfig(both), SimError);

  SimConfig thinned = base;
  thinned.predictor.kind = PredictorKind::kSequential;
  thinned.predictor.lookahead = 8;
  thinned.hint_coverage = 0.5;
  EXPECT_THROW(ValidateSimConfig(thinned), SimError);

  SimConfig no_lookahead = base;
  no_lookahead.predictor.kind = PredictorKind::kTemporal;
  no_lookahead.predictor.lookahead = 0;
  EXPECT_THROW(ValidateSimConfig(no_lookahead), SimError);

  SimConfig hintless_lookahead = base;
  hintless_lookahead.predictor.kind = PredictorKind::kNone;
  hintless_lookahead.predictor.lookahead = 5;
  EXPECT_THROW(ValidateSimConfig(hintless_lookahead), SimError);

  SimConfig negative = base;
  negative.predictor.kind = PredictorKind::kMarkov;
  negative.predictor.lookahead = -1;
  EXPECT_THROW(ValidateSimConfig(negative), SimError);
}

TEST(Validation, ReverseAggressiveRefusesPredictors) {
  Trace t = LoopTrace(50, 300);
  SimConfig c;
  c.cache_blocks = 32;
  c.num_disks = 2;
  c.predictor.kind = PredictorKind::kMarkov;
  c.predictor.lookahead = 8;
  try {
    RunOne(t, c, PolicyKind::kReverseAggressive);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("offline"), std::string::npos) << e.what();
  }
}

TEST(HintlessIdentity, PrefetchersDegradeToDemandBitForBit) {
  // With no hints at all, every furthest-next-use policy must be the demand
  // policy under another name — same fetches, same clock, bit for bit.
  Trace t = LoopTrace(300, 2000);
  SimConfig c;
  c.cache_blocks = 128;
  c.num_disks = 2;
  c.predictor.kind = PredictorKind::kNone;
  const RunResult demand = RunOne(t, c, PolicyKind::kDemand);
  EXPECT_EQ(demand.fetches, demand.demand_fetches);
  EXPECT_EQ(demand.prefetch_issued, 0);
  for (PolicyKind kind : {PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                          PolicyKind::kForestall}) {
    RunResult r = RunOne(t, c, kind);
    std::vector<std::string> why;
    EXPECT_TRUE(ResultsExactlyEqual(r, demand, &why)) << ToString(kind);
    for (const std::string& w : why) {
      ADD_FAILURE() << ToString(kind) << ": " << w;
    }
  }
}

TEST(Differential, PredictorCellsMatchBetweenEngines) {
  Trace t = LoopTrace(200, 1200);
  for (PredictorKind pk : {PredictorKind::kNone, PredictorKind::kSequential,
                           PredictorKind::kMarkov, PredictorKind::kTemporal}) {
    for (PolicyKind kind : {PolicyKind::kDemand, PolicyKind::kFixedHorizon,
                            PolicyKind::kAggressive, PolicyKind::kForestall}) {
      SimConfig c;
      c.cache_blocks = 96;
      c.num_disks = 3;
      c.predictor.kind = pk;
      c.predictor.lookahead = pk == PredictorKind::kNone ? 0 : 6;
      DiffReport report = RunDifferential(t, c, kind);
      EXPECT_TRUE(report.consistent)
          << ToString(pk) << "/" << ToString(kind) << "\n"
          << report.ToString();
    }
  }
}

TEST(Differential, PredictorRunsAreDeterministic) {
  Trace t = LoopTrace(150, 900);
  SimConfig c;
  c.cache_blocks = 64;
  c.num_disks = 2;
  c.predictor.kind = PredictorKind::kTemporal;
  c.predictor.lookahead = 5;
  RunResult a = RunOne(t, c, PolicyKind::kForestall);
  RunResult b = RunOne(t, c, PolicyKind::kForestall);
  std::vector<std::string> why;
  EXPECT_TRUE(ResultsExactlyEqual(a, b, &why));
}

}  // namespace
}  // namespace pfc
