#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/paper_tables.h"
#include "harness/study.h"

namespace pfc {
namespace {

TEST(Harness, PolicyKindNamesRoundTrip) {
  EXPECT_EQ(ToString(PolicyKind::kDemand), "demand");
  EXPECT_EQ(ToString(PolicyKind::kFixedHorizon), "fixed-horizon");
  EXPECT_EQ(ToString(PolicyKind::kAggressive), "aggressive");
  EXPECT_EQ(ToString(PolicyKind::kReverseAggressive), "reverse-aggressive");
  EXPECT_EQ(ToString(PolicyKind::kForestall), "forestall");
}

TEST(Harness, MakePolicyHonorsOptions) {
  PolicyOptions options;
  options.horizon = 99;
  auto p = MakePolicy(PolicyKind::kFixedHorizon, options);
  auto* fh = dynamic_cast<FixedHorizonPolicy*>(p.get());
  ASSERT_NE(fh, nullptr);
  EXPECT_EQ(fh->horizon(), 99);

  options.aggressive_batch = 7;
  auto a = MakePolicy(PolicyKind::kAggressive, options);
  ASSERT_NE(dynamic_cast<AggressivePolicy*>(a.get()), nullptr);
}

TEST(Harness, BaselineConfigUsesPerTraceCacheSize) {
  EXPECT_EQ(BaselineConfig("dinero", 2).cache_blocks, 512);
  EXPECT_EQ(BaselineConfig("cscope1", 2).cache_blocks, 512);
  EXPECT_EQ(BaselineConfig("glimpse", 2).cache_blocks, 1280);
  EXPECT_EQ(BaselineConfig("unknown-trace", 3).cache_blocks, 1280);
  EXPECT_EQ(BaselineConfig("glimpse", 5).num_disks, 5);
}

TEST(Harness, PaperDiskCountsMatchSection3) {
  const std::vector<int>& d = PaperDiskCounts();
  EXPECT_EQ(d, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16}));
}

TEST(Harness, PercentImprovementSign) {
  RunResult fast;
  fast.elapsed_time = SecToNs(8);
  RunResult slow;
  slow.elapsed_time = SecToNs(10);
  EXPECT_NEAR(PercentImprovement(fast, slow), 20.0, 1e-9);
  EXPECT_NEAR(PercentImprovement(slow, fast), -25.0, 1e-9);
}

TEST(Harness, ResultsCsvEmitsEveryCollectedMetric) {
  RunResult r;
  r.trace_name = "t";
  r.policy_name = "p";
  r.num_disks = 2;
  r.fetches = 10;
  r.demand_fetches = 3;
  r.write_refs = 7;
  r.flushes = 5;
  r.dirty_at_end = 2;
  r.elapsed_time = SecToNs(1);
  std::string csv = ResultsCsvString({r});
  // Header names every RunResult metric, write-extension counters included.
  EXPECT_NE(csv.find("write_refs,flushes,dirty_at_end"), std::string::npos);
  // The row carries their values (fetches=10,demand=3,writes=7,flushes=5,dirty=2).
  EXPECT_NE(csv.find("t,p,2,10,3,7,5,2,"), std::string::npos);
}

TEST(Study, RunStudyProducesOneSeriesPerPolicy) {
  Trace t = MakeTrace("cscope1").Prefix(600);
  t.set_name("cscope1");
  StudySpec spec;
  spec.trace_name = "cscope1";
  spec.disks = {1, 2};
  spec.policies = {PolicyKind::kDemand, PolicyKind::kFixedHorizon};
  std::vector<PolicySeries> series = RunStudy(t, spec);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].label, "Demand (opt. repl.)");
  ASSERT_EQ(series[0].results.size(), 2u);
  EXPECT_EQ(series[0].results[0].num_disks, 1);
  EXPECT_EQ(series[0].results[1].num_disks, 2);
  // Both policies fetched every distinct block at least once.
  EXPECT_GE(series[1].results[0].fetches, t.DistinctBlocks());
}

TEST(Study, ConfigOverridesApply) {
  StudySpec spec;
  spec.trace_name = "glimpse";
  spec.discipline = SchedDiscipline::kFcfs;
  spec.placement = PlacementKind::kContiguous;
  spec.cpu_scale = 0.5;
  spec.cache_blocks_override = 777;
  SimConfig c = StudyConfig(spec, 6);
  EXPECT_EQ(c.num_disks, 6);
  EXPECT_EQ(c.discipline, SchedDiscipline::kFcfs);
  EXPECT_EQ(c.placement, PlacementKind::kContiguous);
  EXPECT_DOUBLE_EQ(c.cpu_scale, 0.5);
  EXPECT_EQ(c.cache_blocks, 777);
}

TEST(Study, TuningGridsNonEmpty) {
  EXPECT_FALSE(RevAggTuningFetchTimes().empty());
  EXPECT_FALSE(RevAggTuningBatches(1).empty());
  EXPECT_FALSE(RevAggTuningBatches(8).empty());
}

}  // namespace
}  // namespace pfc
