// Tests for the write extension: write-behind vs write-through semantics,
// dirty-buffer pinning, and the workload builders.

#include <gtest/gtest.h>

#include <string>

#include "core/sim_error.h"
#include "harness/experiment.h"
#include "trace/trace_io.h"
#include "util/rng.h"

namespace pfc {
namespace {

SimConfig Cfg(int cache, int disks) {
  SimConfig c;
  c.cache_blocks = cache;
  c.num_disks = disks;
  return c;
}

TEST(Writes, TraceBookkeeping) {
  Trace t("w");
  t.Append(BlockId{1}, MsToNs(1));
  t.AppendWrite(BlockId{2}, MsToNs(1));
  t.AppendWrite(BlockId{1}, MsToNs(1));
  EXPECT_EQ(t.WriteCount(), 2);
  EXPECT_FALSE(t.is_write(TracePos{0}));
  EXPECT_TRUE(t.is_write(TracePos{1}));
  Trace r = t.Reversed();
  EXPECT_TRUE(r.is_write(TracePos{0}));
  EXPECT_FALSE(r.is_write(TracePos{2}));
  EXPECT_EQ(t.Prefix(2).WriteCount(), 1);
}

TEST(Writes, TraceIoRoundTripsWrites) {
  Trace t("w");
  t.Append(BlockId{5}, MsToNs(1));
  t.AppendWrite(BlockId{6}, MsToNs(2));
  std::string path = testing::TempDir() + "/pfc_writes.trace";
  ASSERT_TRUE(SaveTraceText(t, path));
  auto loaded = LoadTraceText(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2);
  EXPECT_FALSE(loaded->is_write(TracePos{0}));
  EXPECT_TRUE(loaded->is_write(TracePos{1}));
  EXPECT_EQ(loaded->block(TracePos{1}), BlockId{6});
  std::remove(path.c_str());
}

TEST(Writes, PureWriteWorkloadNeverFetches) {
  // Whole-block writes need no data from disk: zero fetches, zero stall
  // under write-behind (flushes happen in the background).
  Trace t("wr");
  for (int64_t i = 0; i < 200; ++i) {
    t.AppendWrite(BlockId{i}, MsToNs(2));
  }
  SimConfig c = Cfg(64, 2);
  RunResult r = RunOne(t, c, PolicyKind::kForestall);
  EXPECT_EQ(r.fetches, 0);
  EXPECT_EQ(r.write_refs, 200);
  EXPECT_EQ(r.stall_time, DurNs{0});
  // The background flusher kept up: most blocks already clean.
  EXPECT_GT(r.flushes, 150);
  EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time);
}

TEST(Writes, WriteThroughStallsWriteBehindDoesNot) {
  Trace t = MakeCopyTrace(400, 1.0, 7);
  SimConfig behind = Cfg(256, 2);
  SimConfig through = behind;
  through.write_through = true;
  RunResult rb = RunOne(t, behind, PolicyKind::kForestall);
  RunResult rt = RunOne(t, through, PolicyKind::kForestall);
  // Section 1.1: "write behind strategies can mask update latency."
  EXPECT_LT(rb.stall_time, rt.stall_time);
  EXPECT_LT(rb.elapsed_time, rt.elapsed_time);
  EXPECT_EQ(rt.dirty_at_end, 0);  // write-through leaves nothing dirty
}

TEST(Writes, DirtyBlocksAreNeverEvictionVictims) {
  // A working set of dirty blocks plus a stream of cold reads: the reads
  // must not evict dirty data (it is pinned until flushed), so the run
  // completes with every write intact and the decomposition exact.
  Trace t("pin");
  for (int64_t i = 0; i < 16; ++i) {
    t.AppendWrite(BlockId{1000 + i}, MsToNs(1));
  }
  for (int64_t i = 0; i < 300; ++i) {
    t.Append(BlockId{i}, MsToNs(1));
    if (i % 10 == 0) {
      t.AppendWrite(BlockId{1000 + i % 16}, MsToNs(1));  // keep re-dirtying
    }
  }
  SimConfig c = Cfg(32, 1);
  RunResult r = RunOne(t, c, PolicyKind::kAggressive);
  EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time);
  EXPECT_GE(r.fetches, 300);
}

TEST(Writes, UpdatesWorkloadBuilder) {
  Trace base = MakeTrace("cscope1").Prefix(1000);
  Trace updates = WithUpdates(base, 0.3, 1);
  EXPECT_GT(updates.WriteCount(), 200);
  EXPECT_LT(updates.WriteCount(), 400);
  EXPECT_EQ(updates.TotalCompute(), base.TotalCompute());
  // Deterministic.
  Trace again = WithUpdates(base, 0.3, 1);
  EXPECT_EQ(again.size(), updates.size());
  EXPECT_EQ(again.WriteCount(), updates.WriteCount());
}

TEST(Writes, CopyWorkloadShape) {
  Trace t = MakeCopyTrace(100, 1.0, 3);
  EXPECT_EQ(t.size(), 200);
  EXPECT_EQ(t.WriteCount(), 100);
  EXPECT_EQ(t.DistinctBlocks(), 200);
  // Alternating read/write.
  EXPECT_FALSE(t.is_write(TracePos{0}));
  EXPECT_TRUE(t.is_write(TracePos{1}));
}

TEST(Writes, FlushesContendWithPrefetches) {
  // An update-heavy read trace: flushes consume disk time, so elapsed grows
  // versus the pure-read baseline, but prefetching still beats demand.
  Trace base = MakeTrace("cscope1").Prefix(3000);
  base.set_name("cscope1-prefix");
  Trace updates = WithUpdates(base, 0.5, 11);
  SimConfig c = Cfg(512, 1);
  RunResult reads_only = RunOne(base, c, PolicyKind::kForestall);
  RunResult with_writes = RunOne(updates, c, PolicyKind::kForestall);
  RunResult demand = RunOne(updates, c, PolicyKind::kDemand);
  EXPECT_GT(with_writes.flushes, 0);
  EXPECT_GE(with_writes.elapsed_time, reads_only.elapsed_time);
  EXPECT_LT(with_writes.elapsed_time, demand.elapsed_time);
}

TEST(Writes, ReverseAggressiveRejectsWriteTraces) {
  Trace t = MakeCopyTrace(50, 1.0, 5);
  SimConfig c = Cfg(64, 2);
  try {
    RunOne(t, c, PolicyKind::kReverseAggressive);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("read-only"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace pfc
