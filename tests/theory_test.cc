// Tests of the theoretical-model simulator and brute-force optimal,
// including an exact reproduction of the paper's Figure 1 example.

#include <gtest/gtest.h>

#include "theory/theory_optimal.h"
#include "theory/theory_sim.h"
#include "util/rng.h"

namespace pfc {
namespace {

// The paper's Figure 1: cache K=4 holding {A,b,d,F}; disk 0 holds
// {A,C,E,F}, disk 1 holds {b,d}; F(etch) = 2; sequence A,b,C,d,E,F.
enum Block : int64_t { A = 0, b = 1, C = 2, d = 3, E = 4, F = 5 };

TheorySimulator Figure1() {
  TheoryConfig config;
  config.cache_blocks = 4;
  config.num_disks = 2;
  config.fetch_time = 2;
  TheorySimulator sim({A, b, C, d, E, F},
                      {{A, 0}, {C, 0}, {E, 0}, {F, 0}, {b, 1}, {d, 1}}, config);
  sim.SetInitialCache({A, b, d, F});
  return sim;
}

TEST(TheoryFigure1, GreedyScheduleTakesSevenSteps) {
  // Figure 1(a): fetch the soonest missing block, evict the furthest —
  // C evicts F, E evicts a dead block, then F must be fetched back; the
  // application stalls one step on F. Total elapsed: 7.
  TheorySimulator sim = Figure1();
  TheoryResult greedy = sim.RunAggressive();
  EXPECT_EQ(greedy.elapsed, 7);
  EXPECT_EQ(greedy.stall, 1);
  EXPECT_EQ(greedy.fetches, 3);
}

TEST(TheoryFigure1, BetterScheduleTakesSixSteps) {
  // Figure 1(b): evict d instead of F when fetching C — moving one fetch to
  // the idle disk — then re-fetch d in parallel. No stalls. Total: 6.
  TheorySimulator sim = Figure1();
  std::vector<TheoryFetch> schedule = {
      {0, C, d},  // offload: evict d (needed sooner!) rather than F
      {1, d, A},  // re-fetch d on the otherwise idle disk 1
      {2, E, b},
  };
  TheoryResult better = sim.RunSchedule(schedule);
  EXPECT_EQ(better.elapsed, 6);
  EXPECT_EQ(better.stall, 0);
  EXPECT_EQ(better.fetches, 3);
}

TEST(TheoryFigure1, OptimalIsSix) {
  TheorySimulator sim = Figure1();
  EXPECT_EQ(TheoryOptimalElapsed(sim), 6);
}

TEST(TheoryModel, DemandOptimalStallsFPerMiss) {
  // Single disk, no prefetching: every miss stalls exactly F steps.
  TheoryConfig config;
  config.cache_blocks = 2;
  config.num_disks = 1;
  config.fetch_time = 3;
  TheorySimulator sim({10, 11, 12}, {{10, 0}, {11, 0}, {12, 0}}, config);
  TheoryResult r = sim.RunDemandOptimal();
  EXPECT_EQ(r.fetches, 3);
  EXPECT_EQ(r.stall, 3 * 3);
  EXPECT_EQ(r.elapsed, 3 + 9);
}

TEST(TheoryModel, FixedHorizonEliminatesStallWithEnoughLookahead) {
  // One disk, F=2, alternating hits/misses: with H >= F the fetch starts F
  // steps early and completes just in time (after the cold start).
  TheoryConfig config;
  config.cache_blocks = 4;
  config.num_disks = 1;
  config.fetch_time = 2;
  std::vector<int64_t> refs;
  std::unordered_map<int64_t, int> disks;
  for (int64_t i = 0; i < 12; ++i) {
    refs.push_back(i % 2 == 0 ? 100 : 200 + i);  // hot block 100 + cold stream
    disks[refs.back()] = 0;
  }
  TheorySimulator sim(refs, disks, config);
  sim.SetInitialCache({100});
  TheoryResult h0 = sim.RunFixedHorizon(0);
  TheoryResult h4 = sim.RunFixedHorizon(4);
  EXPECT_GT(h0.stall, h4.stall);
  EXPECT_EQ(h4.stall, 1);  // only the very first cold block can stall
}

TEST(TheoryModel, AggressiveMatchesOptimalOnSingleDisk) {
  // Cao et al.: aggressive is near-optimal for one disk. On tiny instances
  // it should be within one fetch-time of the brute-force optimum.
  Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    TheoryConfig config;
    config.cache_blocks = 3;
    config.num_disks = 1;
    config.fetch_time = 2;
    std::vector<int64_t> refs;
    std::unordered_map<int64_t, int> disks;
    for (int i = 0; i < 8; ++i) {
      refs.push_back(rng.UniformInt(0, 4));
      disks[refs.back()] = 0;
    }
    TheorySimulator sim(refs, disks, config);
    TheoryResult agg = sim.RunAggressive();
    int64_t opt = TheoryOptimalElapsed(sim);
    EXPECT_GE(agg.elapsed, opt);
    EXPECT_LE(agg.elapsed, opt + config.fetch_time) << "trial " << trial;
  }
}

TEST(TheoryModel, TheoremOneBoundHolds) {
  // Theorem 1: aggressive's elapsed time <= d(1+e) x optimal. Verify the
  // (loose) d x optimal + constant bound on random 2-disk instances.
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    TheoryConfig config;
    config.cache_blocks = 3;
    config.num_disks = 2;
    config.fetch_time = 2;
    std::vector<int64_t> refs;
    std::unordered_map<int64_t, int> disks;
    for (int i = 0; i < 7; ++i) {
      int64_t block = rng.UniformInt(0, 5);
      refs.push_back(block);
      disks[block] = static_cast<int>(block % 2);
    }
    TheorySimulator sim(refs, disks, config);
    TheoryResult agg = sim.RunAggressive();
    int64_t opt = TheoryOptimalElapsed(sim);
    EXPECT_GE(agg.elapsed, opt);
    EXPECT_LE(agg.elapsed, 2 * opt + config.fetch_time) << "trial " << trial;
  }
}

TEST(TheoryModel, OptimalNeverBeatenByAnyPolicy) {
  Rng rng(123);
  for (int trial = 0; trial < 8; ++trial) {
    TheoryConfig config;
    config.cache_blocks = 2 + static_cast<int>(rng.UniformInt(0, 2));
    config.num_disks = 1 + static_cast<int>(rng.UniformInt(0, 1));
    config.fetch_time = 1 + rng.UniformInt(0, 2);
    std::vector<int64_t> refs;
    std::unordered_map<int64_t, int> disks;
    for (int i = 0; i < 7; ++i) {
      int64_t block = rng.UniformInt(0, 4);
      refs.push_back(block);
      disks[block] = static_cast<int>(block) % config.num_disks;
    }
    TheorySimulator sim(refs, disks, config);
    int64_t opt = TheoryOptimalElapsed(sim);
    EXPECT_LE(opt, sim.RunDemandOptimal().elapsed);
    EXPECT_LE(opt, sim.RunAggressive().elapsed);
    EXPECT_LE(opt, sim.RunFixedHorizon(config.fetch_time).elapsed);
    EXPECT_GE(opt, static_cast<int64_t>(refs.size()));  // can't beat n
  }
}

}  // namespace
}  // namespace pfc
