// The strong-type contract, spelled out as a matrix: every operation a unit
// legitimately supports must work (checked at compile time where possible,
// at runtime otherwise), and every operation that would be a unit confusion
// must not compile. The negative half lives in two places: `requires`-based
// static_asserts here (expression-level, exhaustive) and the
// tests/compile_fail/ corpus driven by ctest (whole-TU, proves the gate
// fires outside this file's include context too).
//
// Also pinned here: the zero-overhead guarantees the refactor rests on —
// layout identity with the raw representation, hash identity with the raw
// int64 hash (unordered_map iteration order feeds simulation determinism),
// overflow-adjacent sentinel arithmetic, and byte-identical RunResult CSV
// serialization.

#include <gtest/gtest.h>

#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "core/run_result.h"
#include "harness/experiment.h"
#include "util/strong_types.h"
#include "util/time_util.h"

namespace pfc {
namespace {

// --------------------------------------------------------------------------
// Forbidden-operation matrix. Each alias asks "does this expression
// compile?"; the asserts pin the answer to NO. A future overload that
// accidentally legalizes a unit confusion fails this test at compile time.
// --------------------------------------------------------------------------

template <typename A, typename B>
concept Addable = requires(A a, B b) { a + b; };
template <typename A, typename B>
concept Subtractable = requires(A a, B b) { a - b; };
template <typename A, typename B>
concept Multipliable = requires(A a, B b) { a * b; };
template <typename A, typename B>
concept Comparable = requires(A a, B b) { a < b; };
template <typename A, typename B>
concept Assignable = requires(A a, B b) { a = b; };
template <typename To, typename From>
concept ImplicitlyConvertible = std::is_convertible_v<From, To>;

// Two instants cannot be added (a point plus a point is meaningless).
static_assert(!Addable<TimeNs, TimeNs>);
// Time and block/position spaces never mix.
static_assert(!Addable<TimeNs, BlockId>);
static_assert(!Addable<DurNs, BlockId>);
static_assert(!Addable<TimeNs, TracePos>);
static_assert(!Subtractable<TimeNs, BlockId>);
static_assert(!Subtractable<DurNs, TracePos>);
// Distinct ordinal spaces never mix: the (block, pos) argument-swap bug
// class this PR exists to kill.
static_assert(!Addable<BlockId, TracePos>);
static_assert(!Subtractable<BlockId, TracePos>);
static_assert(!Comparable<BlockId, TracePos>);
static_assert(!Assignable<BlockId&, TracePos>);
static_assert(!Assignable<DiskId&, BlockId>);
static_assert(!Comparable<SectorAddr, Cylinder>);
// No implicit raw-integer bridges in either direction.
static_assert(!ImplicitlyConvertible<BlockId, int64_t>);
static_assert(!ImplicitlyConvertible<int64_t, BlockId>);
static_assert(!ImplicitlyConvertible<TimeNs, int64_t>);
static_assert(!ImplicitlyConvertible<int64_t, TimeNs>);
static_assert(!ImplicitlyConvertible<DurNs, int64_t>);
static_assert(!ImplicitlyConvertible<int64_t, DurNs>);
static_assert(!ImplicitlyConvertible<DiskId, int>);
static_assert(!ImplicitlyConvertible<int, DiskId>);
// Points do not scale; spans do not divide points.
static_assert(!Multipliable<TimeNs, int64_t>);
static_assert(!Multipliable<TimeNs, TimeNs>);
// Time and duration are distinct: comparing or assigning across is an error.
static_assert(!Comparable<TimeNs, DurNs>);
static_assert(!Assignable<TimeNs&, DurNs>);
static_assert(!Assignable<DurNs&, TimeNs>);

// --------------------------------------------------------------------------
// Allowed-operation matrix.
// --------------------------------------------------------------------------

TEST(StrongTypes, TimePointAndSpanArithmetic) {
  const TimeNs t0{1'000};
  const DurNs d{250};
  EXPECT_EQ(t0 + d, TimeNs{1'250});
  EXPECT_EQ(d + t0, TimeNs{1'250});
  EXPECT_EQ(t0 - d, TimeNs{750});
  EXPECT_EQ(t0 + d - t0, d);  // TimeNs - TimeNs -> DurNs
  TimeNs t = t0;
  t += d;
  t -= DurNs{50};
  EXPECT_EQ(t, TimeNs{1'200});
  EXPECT_LT(t0, t);
  EXPECT_EQ(TimeNs{}, TimeNs{0});  // default is the epoch
}

TEST(StrongTypes, DurationGroupAndScaling) {
  const DurNs a{600};
  const DurNs b{150};
  EXPECT_EQ(a + b, DurNs{750});
  EXPECT_EQ(a - b, DurNs{450});
  EXPECT_EQ(-b, DurNs{-150});
  EXPECT_EQ(a * 3, DurNs{1'800});
  EXPECT_EQ(3 * a, DurNs{1'800});
  EXPECT_EQ(a / 2, DurNs{300});
  EXPECT_EQ(a / b, 4);  // ratio is dimensionless
  EXPECT_EQ(a % DurNs{250}, DurNs{100});
  DurNs c = a;
  c += b;
  c -= DurNs{50};
  EXPECT_EQ(c, DurNs{700});
  EXPECT_GT(a, b);
}

TEST(StrongTypes, OrdinalOffsetsAndDistances) {
  BlockId b{40};
  EXPECT_EQ(b + 2, BlockId{42});
  EXPECT_EQ(b - 5, BlockId{35});
  EXPECT_EQ((b + 2) - b, 2);  // distance is a raw count
  b += 10;
  b -= 3;
  EXPECT_EQ(b, BlockId{47});
  EXPECT_EQ(++b, BlockId{48});
  EXPECT_EQ(b++, BlockId{48});
  EXPECT_EQ(b, BlockId{49});
  EXPECT_EQ(--b, BlockId{48});
  TracePos p{7};
  EXPECT_EQ(p + 1, TracePos{8});
  DiskId d{3};
  EXPECT_EQ(d - 1, DiskId{2});
  EXPECT_LT(kNoBlock, BlockId{0});  // sentinel orders before every real id
  EXPECT_LT(kNoDisk, DiskId{0});
}

TEST(StrongTypes, OverflowAdjacentSentinelArithmetic) {
  // The infinity sentinels sit at INT64_MAX/4 precisely so that the
  // arithmetic the engine performs on them (adding service times, taking
  // differences against the epoch) cannot wrap.
  EXPECT_EQ(kTimeInfinity.ns(), INT64_MAX / 4);
  EXPECT_EQ(kDurInfinity.ns(), INT64_MAX / 4);
  const TimeNs far = kTimeInfinity + kDurInfinity;
  EXPECT_GT(far, kTimeInfinity);              // no wrap to negative
  EXPECT_EQ(far - kTimeInfinity, kDurInfinity);
  EXPECT_EQ(kTimeInfinity - TimeNs{0}, kDurInfinity);
  // Subtraction at the negative extreme likewise stays exact.
  const DurNs neg = TimeNs{0} - (TimeNs{0} + kDurInfinity);
  EXPECT_EQ(neg, -kDurInfinity);
}

// --------------------------------------------------------------------------
// Zero-overhead guarantees.
// --------------------------------------------------------------------------

TEST(StrongTypes, LayoutIsIdenticalToRepresentation) {
  // static_asserts in the header already pin sizeof and triviality; this
  // checks the bytes: a wrapper and its raw value are memcmp-identical, so
  // any struct that swapped int64_t -> wrapper serializes unchanged.
  const int64_t raw = 0x1122334455667788;
  TimeNs t{raw};
  int64_t out = 0;
  std::memcpy(&out, &t, sizeof(out));
  EXPECT_EQ(out, raw);
  BlockId b{raw};
  std::memcpy(&out, &b, sizeof(out));
  EXPECT_EQ(out, raw);
  const int32_t raw32 = 0x11223344;
  DiskId d{raw32};
  int32_t out32 = 0;
  std::memcpy(&out32, &d, sizeof(out32));
  EXPECT_EQ(out32, raw32);
}

TEST(StrongTypes, HashMatchesRawRepresentationHash) {
  // unordered_map bucket placement drives iteration order, and iteration
  // order feeds simulation determinism: the wrapper hash must equal the
  // raw hash so the refactor could not reshuffle any container.
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{123456789},
                    INT64_MAX / 4}) {
    EXPECT_EQ(std::hash<BlockId>{}(BlockId{v}), std::hash<int64_t>{}(v));
    EXPECT_EQ(std::hash<TracePos>{}(TracePos{v}), std::hash<int64_t>{}(v));
  }
  std::unordered_map<BlockId, int> retry_counts;
  retry_counts[BlockId{5}] = 2;
  EXPECT_EQ(retry_counts.count(BlockId{5}), 1u);
  std::unordered_set<TracePos> positions{TracePos{1}, TracePos{2}};
  EXPECT_TRUE(positions.contains(TracePos{2}));
}

TEST(StrongTypes, RunResultCsvBytesArePinned) {
  // The CSV serialization path (ResultsCsvString) must produce exactly the
  // bytes the pre-wrapper code produced; the golden table4/table8 gates
  // check this end to end, this pins it at the unit level with hand-set
  // fields.
  RunResult r;
  r.trace_name = "unit";
  r.policy_name = "probe";
  r.num_disks = 3;
  r.fetches = 101;
  r.demand_fetches = 7;
  r.compute_time = DurNs{1'500'000'000};   // 1.5 s
  r.driver_time = DurNs{24'000'000};       // 0.024 s
  r.stall_time = DurNs{476'000'000};       // 0.476 s
  r.elapsed_time = DurNs{2'000'000'000};   // 2.0 s
  r.degraded_stall_ns = DurNs{1'000'000};  // 0.001 s
  r.avg_fetch_ms = 12.3456;
  r.avg_response_ms = 20.5;
  r.avg_disk_util = 0.25;
  const std::string expected =
      "trace,policy,disks,fetches,demand_fetches,write_refs,flushes,dirty_at_end,"
      "compute_sec,driver_sec,stall_sec,elapsed_sec,avg_fetch_ms,avg_response_ms,"
      "avg_disk_util,retries,failed_requests,degraded_stall_sec\n"
      "unit,probe,3,101,7,0,0,0,1.500000,0.024000,0.476000,2.000000,12.3456,"
      "20.5000,0.2500,0,0,0.001000\n";
  EXPECT_EQ(ResultsCsvString({r}), expected);
}

TEST(StrongTypes, StreamOutputPrintsRawRepresentation) {
  // PFC_CHECK_* failure messages stream operands; they must print the raw
  // number (no unit suffix, no formatting drift).
  std::ostringstream os;
  os << DurNs{42} << " " << TimeNs{-7} << " " << BlockId{9} << " " << DiskId{1};
  EXPECT_EQ(os.str(), "42 -7 9 1");
}

}  // namespace
}  // namespace pfc
