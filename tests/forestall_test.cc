#include <gtest/gtest.h>

#include "core/policies/aggressive.h"
#include "core/policies/fixed_horizon.h"
#include "core/policies/forestall.h"
#include "core/simulator.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace pfc {
namespace {

Trace LoopTrace(int64_t blocks, int64_t reads, DurNs compute) {
  Trace t("loop");
  for (int64_t i = 0; i < reads; ++i) {
    t.Append(BlockId{i % blocks}, compute);
  }
  return t;
}

Trace RandomTrace(int64_t blocks, int64_t reads, DurNs compute, uint64_t seed) {
  Trace t("random");
  Rng rng(seed);
  for (int64_t i = 0; i < reads; ++i) {
    t.Append(BlockId{rng.UniformInt(0, blocks - 1)}, compute);
  }
  return t;
}

SimConfig Cfg(int cache, int disks) {
  SimConfig c;
  c.cache_blocks = cache;
  c.num_disks = disks;
  return c;
}

TEST(Forestall, FixedFOverridesDynamicEstimation) {
  ForestallPolicy::Params params;
  params.fixed_f = 30.0;
  ForestallPolicy p(params);
  Trace t = LoopTrace(10, 20, MsToNs(1));
  SimConfig c = Cfg(8, 2);
  Simulator sim(t, c, &p);
  EXPECT_DOUBLE_EQ(p.FetchTimeRatio(DiskId{0}), 30.0);
  EXPECT_DOUBLE_EQ(p.FetchTimeRatio(DiskId{1}), 30.0);
}

TEST(Forestall, ConservativeWhenComputeBound) {
  // Long compute times: no stall risk, so forestall should fetch as lazily
  // as fixed horizon does (equal fetch counts), while aggressive overfetches
  // in loops that exceed the cache. 150 ms of compute per 8 KB read keeps
  // even the 4x-inflated fetch-time ratio below the stall threshold.
  Trace t = LoopTrace(60, 600, MsToNs(150));
  SimConfig c = Cfg(40, 2);
  RunResult forestall;
  RunResult fixed;
  RunResult agg;
  {
    ForestallPolicy p;
    forestall = Simulator(t, c, &p).Run();
  }
  {
    FixedHorizonPolicy p;
    fixed = Simulator(t, c, &p).Run();
  }
  {
    AggressivePolicy p;
    agg = Simulator(t, c, &p).Run();
  }
  EXPECT_LE(forestall.fetches, agg.fetches);
  // Within a whisker of fixed horizon's fetch count and elapsed time.
  EXPECT_NEAR(static_cast<double>(forestall.fetches), static_cast<double>(fixed.fetches),
              0.1 * static_cast<double>(fixed.fetches));
  // Only the compulsory cold-start misses may stall (~60 fetches x ~10 ms).
  EXPECT_LT(forestall.stall_sec(), 1.0);
}

TEST(Forestall, AggressiveWhenIoBound) {
  // Tiny compute times against random reads: forestall must prefetch deeply
  // like aggressive and leave fixed horizon's stalls behind.
  Trace t = RandomTrace(4000, 3000, UsToNs(300), 3);
  SimConfig c = Cfg(1280, 4);
  RunResult forestall;
  RunResult fixed;
  RunResult agg;
  {
    ForestallPolicy p;
    forestall = Simulator(t, c, &p).Run();
  }
  {
    FixedHorizonPolicy p;
    fixed = Simulator(t, c, &p).Run();
  }
  {
    AggressivePolicy p;
    agg = Simulator(t, c, &p).Run();
  }
  EXPECT_LT(forestall.elapsed_time, fixed.elapsed_time);
  // Within 15% of aggressive.
  EXPECT_LT(static_cast<double>(forestall.elapsed_time.ns()),
            1.15 * static_cast<double>(agg.elapsed_time.ns()));
}

TEST(Forestall, DynamicFTracksDiskSpeed) {
  // Feed the estimator via a real run over sequential (fast) blocks, then
  // check the ratio reflects fast accesses (below the 5 ms threshold no 4x
  // inflation applies).
  Trace t = LoopTrace(2000, 4000, MsToNs(4));
  SimConfig c = Cfg(1280, 1);
  ForestallPolicy p;
  Simulator sim(t, c, &p);
  sim.Run();
  double f = p.FetchTimeRatio(DiskId{0});
  // Sequential accesses ~3.6 ms against ~4 ms compute: F' ~ 1, certainly
  // below the inflated regime.
  EXPECT_GT(f, 0.2);
  EXPECT_LT(f, 4.0);
}

TEST(Forestall, FixedHorizonBackstopPreventsNearMisses) {
  // Even with an absurdly low fixed F' (never "constrained"), the H-window
  // rule must still prefetch imminent blocks, so stalls stay bounded in a
  // compute-bound trace.
  ForestallPolicy::Params params;
  params.fixed_f = 0.001;
  Trace t = LoopTrace(50, 500, MsToNs(30));
  SimConfig c = Cfg(64, 1);
  ForestallPolicy p(params);
  RunResult r = Simulator(t, c, &p).Run();
  EXPECT_LT(r.stall_sec(), 0.5);
}

TEST(Forestall, UtilizationBetweenFixedHorizonAndAggressive) {
  // Table 8's qualitative claim, on a mixed trace.
  Trace t = RandomTrace(3000, 2500, MsToNs(2), 17);
  SimConfig c = Cfg(1280, 6);
  RunResult forestall;
  RunResult fixed;
  RunResult agg;
  {
    ForestallPolicy p;
    forestall = Simulator(t, c, &p).Run();
  }
  {
    FixedHorizonPolicy p;
    fixed = Simulator(t, c, &p).Run();
  }
  {
    AggressivePolicy p;
    agg = Simulator(t, c, &p).Run();
  }
  EXPECT_GE(forestall.avg_disk_util, 0.8 * fixed.avg_disk_util);
  EXPECT_LE(forestall.avg_disk_util, 1.2 * agg.avg_disk_util);
}

}  // namespace
}  // namespace pfc
