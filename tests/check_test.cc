// Differential regression corpus: seeded scenarios replayed through both the
// optimized Simulator and the naive RefSim (src/check), asserting *exact*
// agreement — every counter equal, every double bit-for-bit — plus
// consistency with the theory lower bound. Covers all six policies, all four
// scheduling disciplines, 1-10 disks, both disk models, all placements,
// write-behind and write-through, partial hints, and every fault mechanism.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diff.h"
#include "check/fuzz.h"
#include "theory/lower_bound.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace pfc {
namespace {

// Small deterministic mixed-pattern trace: sequential runs with random
// jumps, optional writes, compute in [0, 3) ms.
Trace CorpusTrace(int64_t n, int64_t universe, double seq_prob, double write_frac,
                  uint64_t seed) {
  Rng rng(SplitMix64(seed));
  Trace t("corpus");
  int64_t block = rng.UniformInt(0, universe - 1);
  for (int64_t i = 0; i < n; ++i) {
    if (rng.UniformDouble() < seq_prob) {
      block = (block + 1) % universe;
    } else {
      block = rng.UniformInt(0, universe - 1);
    }
    const DurNs compute{rng.UniformInt(0, 2) == 0 ? 0 : rng.UniformInt(1, 3'000'000)};
    if (write_frac > 0.0 && rng.UniformDouble() < write_frac) {
      t.AppendWrite(BlockId{block}, compute);
    } else {
      t.Append(BlockId{block}, compute);
    }
  }
  return t;
}

FaultConfig MediaErrors() {
  FaultConfig f;
  f.media_error_rate = 0.1;
  f.seed = 7;
  return f;
}

FaultConfig LatencyTail() {
  FaultConfig f;
  f.tail_rate = 0.1;
  f.tail_multiplier = 10.0;
  f.seed = 11;
  return f;
}

FaultConfig SlowDisk(int disk) {
  FaultConfig f;
  f.slow_disk = DiskId{disk};
  f.slow_factor = 4.0;
  f.slow_after = TimeNs{0} + MsToNs(20);
  return f;
}

FaultConfig FailStop(int disk) {
  FaultConfig f;
  f.fail_disk = DiskId{disk};
  f.fail_after = TimeNs{0} + MsToNs(30);
  return f;
}

struct CorpusScenario {
  const char* name;
  PolicyKind policy;
  SchedDiscipline discipline;
  int disks;
  DiskModelKind model;
  PlacementKind placement;
  int cache_blocks;
  double write_frac;     // 0 for read-only
  double hint_coverage;  // 1.0 = full hints
  bool write_through;
  FaultConfig faults;    // default = healthy
};

std::vector<CorpusScenario> Corpus() {
  using PK = PolicyKind;
  using SD = SchedDiscipline;
  using DM = DiskModelKind;
  using PL = PlacementKind;
  return {
      {"demand_fcfs_d1", PK::kDemand, SD::kFcfs, 1, DM::kSimple, PL::kStriped, 16, 0.0, 1.0,
       false, {}},
      {"demand_cscan_d4_media", PK::kDemand, SD::kCscan, 4, DM::kDetailed, PL::kStriped, 24,
       0.0, 1.0, false, MediaErrors()},
      {"demand_scan_d2_tail_wt", PK::kDemand, SD::kScan, 2, DM::kDetailed, PL::kContiguous, 12,
       0.2, 1.0, true, LatencyTail()},
      {"lru_sstf_d2_writes", PK::kDemandLru, SD::kSstf, 2, DM::kSimple, PL::kContiguous, 16,
       0.3, 1.0, false, {}},
      {"lru_scan_d10_tail", PK::kDemandLru, SD::kScan, 10, DM::kDetailed, PL::kGroupHash, 32,
       0.0, 1.0, false, LatencyTail()},
      {"lru_cscan_d6_hints_media", PK::kDemandLru, SD::kCscan, 6, DM::kSimple, PL::kStriped, 20,
       0.1, 0.7, false, MediaErrors()},
      {"horizon_cscan_d3", PK::kFixedHorizon, SD::kCscan, 3, DM::kDetailed, PL::kStriped, 24,
       0.0, 1.0, false, {}},
      {"horizon_fcfs_d1_wt", PK::kFixedHorizon, SD::kFcfs, 1, DM::kSimple, PL::kStriped, 8,
       0.3, 1.0, true, {}},
      {"horizon_sstf_d6_hints", PK::kFixedHorizon, SD::kSstf, 6, DM::kDetailed, PL::kGroupHash,
       24, 0.0, 0.7, false, {}},
      {"agg_cscan_d2_writes", PK::kAggressive, SD::kCscan, 2, DM::kSimple, PL::kStriped, 12,
       0.1, 1.0, false, {}},
      {"agg_scan_d4_failstop", PK::kAggressive, SD::kScan, 4, DM::kDetailed, PL::kStriped, 24,
       0.0, 1.0, false, FailStop(1)},
      {"agg_sstf_d10", PK::kAggressive, SD::kSstf, 10, DM::kDetailed, PL::kGroupHash, 48, 0.0,
       1.0, false, {}},
      {"agg_fcfs_d3_wt_hints", PK::kAggressive, SD::kFcfs, 3, DM::kSimple, PL::kContiguous, 10,
       0.2, 0.8, true, {}},
      {"revagg_cscan_d2", PK::kReverseAggressive, SD::kCscan, 2, DM::kSimple, PL::kStriped, 16,
       0.0, 1.0, false, {}},
      {"revagg_fcfs_d4", PK::kReverseAggressive, SD::kFcfs, 4, DM::kDetailed, PL::kStriped, 24,
       0.0, 1.0, false, {}},
      {"revagg_sstf_d10_media", PK::kReverseAggressive, SD::kSstf, 10, DM::kDetailed,
       PL::kGroupHash, 32, 0.0, 1.0, false, MediaErrors()},
      {"forestall_cscan_d3", PK::kForestall, SD::kCscan, 3, DM::kDetailed, PL::kStriped, 24,
       0.0, 1.0, false, {}},
      {"forestall_scan_d1_writes", PK::kForestall, SD::kScan, 1, DM::kSimple, PL::kStriped, 8,
       0.3, 1.0, false, {}},
      {"forestall_sstf_d6_slow", PK::kForestall, SD::kSstf, 6, DM::kDetailed, PL::kGroupHash,
       24, 0.0, 1.0, false, SlowDisk(0)},
      {"forestall_fcfs_d10_failstop_media", PK::kForestall, SD::kFcfs, 10, DM::kDetailed,
       PL::kStriped, 40, 0.0, 1.0, false, [] {
         FaultConfig f = FailStop(2);
         f.media_error_rate = 0.05;
         f.seed = 13;
         return f;
       }()},
  };
}

SimConfig CorpusConfig(const CorpusScenario& s) {
  SimConfig c;
  c.cache_blocks = s.cache_blocks;
  c.num_disks = s.disks;
  c.disk_model = s.model;
  c.discipline = s.discipline;
  c.placement = s.placement;
  c.hint_coverage = s.hint_coverage;
  c.hint_seed = 42;
  c.write_through = s.write_through;
  c.faults = s.faults;
  return c;
}

TEST(DifferentialCorpus, TwentyScenariosAgreeExactly) {
  const std::vector<CorpusScenario> corpus = Corpus();
  ASSERT_EQ(corpus.size(), 20u);
  uint64_t trace_seed = 1000;
  for (const CorpusScenario& s : corpus) {
    SCOPED_TRACE(s.name);
    Trace trace = CorpusTrace(/*n=*/250, /*universe=*/80, /*seq_prob=*/0.6, s.write_frac,
                              ++trace_seed);
    DiffReport report = RunDifferential(trace, CorpusConfig(s), s.policy);
    EXPECT_TRUE(report.consistent) << report.ToString();
    EXPECT_FALSE(report.sim_threw);
    EXPECT_FALSE(report.ref_threw);
    // The report's consistency already implies exact equality; spell out the
    // headline fields so a regression names them directly.
    EXPECT_EQ(report.sim_result.elapsed_time, report.ref_result.elapsed_time);
    EXPECT_EQ(report.sim_result.stall_time, report.ref_result.stall_time);
    EXPECT_EQ(report.sim_result.fetches, report.ref_result.fetches);
    EXPECT_EQ(report.sim_result.per_disk_util, report.ref_result.per_disk_util);
    EXPECT_GE(report.sim_result.elapsed_time, report.lower_bound_ns);
  }
}

// The corpus above uses synthetic mixed traces; also pin two real paper
// workload prefixes through the differential gate.
TEST(DifferentialCorpus, PaperTracePrefixesAgreeExactly) {
  struct Cell {
    const char* trace;
    PolicyKind policy;
    int disks;
  };
  for (const Cell& cell : std::vector<Cell>{{"cscope1", PolicyKind::kForestall, 2},
                                            {"glimpse", PolicyKind::kAggressive, 4}}) {
    SCOPED_TRACE(cell.trace);
    Trace trace = MakeTrace(cell.trace).Prefix(300);
    SimConfig config;
    config.cache_blocks = 64;
    config.num_disks = cell.disks;
    DiffReport report = RunDifferential(trace, config, cell.policy);
    EXPECT_TRUE(report.consistent) << report.ToString();
  }
}

// Both engines must agree on *rejection* too: reverse aggressive refuses
// partial hints, and both sides must throw.
TEST(DifferentialCorpus, BothEnginesRejectInvalidCells) {
  Trace trace = CorpusTrace(50, 20, 0.5, 0.0, 99);
  SimConfig config;
  config.cache_blocks = 8;
  config.num_disks = 2;
  config.hint_coverage = 0.5;
  DiffReport report = RunDifferential(trace, config, PolicyKind::kReverseAggressive);
  EXPECT_TRUE(report.consistent) << report.ToString();
  EXPECT_TRUE(report.sim_threw);
  EXPECT_TRUE(report.ref_threw);
}

// The first fuzz seeds stay green forever (cheap canary against generator or
// engine drift; the full range runs in CI via pfc_fuzz --smoke).
TEST(DifferentialCorpus, FuzzSeedsOneToForty) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FuzzOutcome outcome = RunScenario(GenScenario(seed));
    EXPECT_FALSE(outcome.diverged) << outcome.detail;
  }
}

// Round-trip: serialize -> parse -> identical scenario behavior.
TEST(FuzzFormat, ReproRoundTrips) {
  FuzzScenario scenario = GenScenario(177);
  const std::string text = SerializeScenario(scenario);
  FuzzScenario parsed;
  std::string error;
  ASSERT_TRUE(ParseScenario(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.seed, scenario.seed);
  EXPECT_EQ(parsed.policy, scenario.policy);
  EXPECT_EQ(parsed.refs.size(), scenario.refs.size());
  EXPECT_EQ(SerializeScenario(parsed), text);
  // Both the original and the round-tripped scenario must agree with the
  // optimized engine (and with each other, transitively).
  EXPECT_FALSE(RunScenario(parsed).diverged);
}

TEST(FuzzFormat, ParseRejectsGarbage) {
  FuzzScenario parsed;
  std::string error;
  EXPECT_FALSE(ParseScenario("not a repro", &parsed, &error));
  EXPECT_FALSE(ParseScenario("pfc-fuzz-repro v1\nrefs 2\nr 1 0\n", &parsed, &error));
  EXPECT_FALSE(ParseScenario("pfc-fuzz-repro v1\npolicy bogus\nrefs 0\nend\n", &parsed, &error));
}

// The theory lower bound must hold with slack for every corpus scenario (it
// is checked inside RunDifferential) and be nontrivial: positive whenever
// the trace demands at least one fetch.
TEST(TheoryBound, PositiveAndDominatedByElapsed) {
  Trace trace = CorpusTrace(100, 40, 0.7, 0.0, 5);
  SimConfig config;
  config.cache_blocks = 16;
  config.num_disks = 3;
  const DurNs bound = TheoryLowerBoundNs(trace, config);
  EXPECT_GT(bound, DurNs{0});
  RunResult r = RunRefSim(trace, config, PolicyKind::kAggressive);
  EXPECT_GE(r.elapsed_time, bound);
}

}  // namespace
}  // namespace pfc
