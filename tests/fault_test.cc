// Fault-injection regression gate: the fault layer is deterministic and
// seeded, a disabled layer is byte-for-byte inert, the elapsed ==
// compute + driver + stall decomposition survives retries and recovery,
// and the experiment engine contains per-job failures instead of dying.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sim_error.h"
#include "disk/fault_model.h"
#include "harness/runner.h"
#include "harness/study.h"

namespace pfc {
namespace {

Trace TestTrace(const char* name, int64_t prefix) {
  Trace t = MakeTrace(name).Prefix(prefix);
  t.set_name(name);
  return t;
}

// --------------------------------------------------------------------------
// FaultModel unit behavior
// --------------------------------------------------------------------------

TEST(FaultModel, DisabledByDefault) {
  FaultConfig config;
  EXPECT_FALSE(config.enabled());
  config.seed = 424242;  // a seed alone enables nothing
  EXPECT_FALSE(config.enabled());
  config.slow_disk = DiskId{0};  // a slow disk with factor 1 is not degraded
  EXPECT_FALSE(config.enabled());
  config.slow_factor = 2.0;
  EXPECT_TRUE(config.enabled());
}

TEST(FaultModel, DecisionStreamIsDeterministicPerDisk) {
  FaultConfig config;
  config.media_error_rate = 0.3;
  config.tail_rate = 0.2;
  config.tail_multiplier = 5.0;
  config.seed = 7;

  FaultModel a(config, DiskId{1});
  FaultModel b(config, DiskId{1});
  FaultModel other(config, DiskId{2});
  bool any_difference = false;
  for (int i = 0; i < 200; ++i) {
    FaultDecision da = a.OnAccess(TimeNs{0} + MsToNs(i), MsToNs(10));
    FaultDecision db = b.OnAccess(TimeNs{0} + MsToNs(i), MsToNs(10));
    FaultDecision dc = other.OnAccess(TimeNs{0} + MsToNs(i), MsToNs(10));
    EXPECT_EQ(da.service, db.service);
    EXPECT_EQ(da.failed, db.failed);
    any_difference = any_difference || da.failed != dc.failed || da.service != dc.service;
  }
  EXPECT_TRUE(any_difference) << "disks 1 and 2 should see different fault streams";

  // Reset rewinds the stream to the start.
  a.Reset();
  FaultModel fresh(config, DiskId{1});
  for (int i = 0; i < 50; ++i) {
    FaultDecision da = a.OnAccess(TimeNs{0} + MsToNs(i), MsToNs(10));
    FaultDecision df = fresh.OnAccess(TimeNs{0} + MsToNs(i), MsToNs(10));
    EXPECT_EQ(da.service, df.service);
    EXPECT_EQ(da.failed, df.failed);
  }
}

TEST(FaultModel, SlowDiskStretchesServiceAfterOnset) {
  FaultConfig config;
  config.slow_disk = DiskId{0};
  config.slow_factor = 2.0;
  config.slow_after = TimeNs{0} + MsToNs(100);
  FaultModel m(config, DiskId{0});
  EXPECT_EQ(m.OnAccess(TimeNs{0} + MsToNs(50), MsToNs(10)).service, MsToNs(10));
  EXPECT_EQ(m.OnAccess(TimeNs{0} + MsToNs(100), MsToNs(10)).service, MsToNs(20));
  FaultModel unaffected(config, DiskId{1});
  EXPECT_EQ(unaffected.OnAccess(TimeNs{0} + MsToNs(200), MsToNs(10)).service, MsToNs(10));
}

TEST(FaultModel, FailStopIsAThreshold) {
  FaultConfig config;
  config.fail_disk = DiskId{2};
  config.fail_after = TimeNs{0} + MsToNs(10);
  FaultModel dead(config, DiskId{2});
  EXPECT_FALSE(dead.FailStopped(TimeNs{0} + MsToNs(9)));
  EXPECT_TRUE(dead.FailStopped(TimeNs{0} + MsToNs(10)));
  FaultModel alive(config, DiskId{0});
  EXPECT_FALSE(alive.FailStopped(TimeNs{0} + MsToNs(1000)));
}

// --------------------------------------------------------------------------
// Engine accounting under faults
// --------------------------------------------------------------------------

void ExpectBalanced(const RunResult& r) {
  EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time);
  EXPECT_GE(r.degraded_stall_ns, DurNs{0});
  EXPECT_LE(r.degraded_stall_ns, r.stall_time);
}

TEST(FaultSim, ZeroRateConfigIsByteIdenticalToNoFaults) {
  Trace trace = TestTrace("cscope1", 600);
  SimConfig plain = BaselineConfig("cscope1", 3);
  SimConfig zeroed = plain;
  zeroed.faults.seed = 999777;  // differs from the default, but disabled
  for (PolicyKind kind : {PolicyKind::kDemand, PolicyKind::kAggressive, PolicyKind::kForestall}) {
    RunResult a = RunOne(trace, plain, kind);
    RunResult b = RunOne(trace, zeroed, kind);
    EXPECT_EQ(ResultsCsvString({a}), ResultsCsvString({b})) << ToString(kind);
    EXPECT_EQ(a.retries, 0);
    EXPECT_EQ(a.failed_requests, 0);
    EXPECT_EQ(a.degraded_stall_ns, DurNs{0});
    ExpectBalanced(a);
  }
}

TEST(FaultSim, MediaErrorsRetryAndStayBalanced) {
  Trace trace = TestTrace("cscope1", 600);
  SimConfig config = BaselineConfig("cscope1", 3);
  config.faults.media_error_rate = 0.2;
  config.faults.seed = 11;
  RunResult healthy = RunOne(trace, BaselineConfig("cscope1", 3), PolicyKind::kFixedHorizon);
  RunResult faulty = RunOne(trace, config, PolicyKind::kFixedHorizon);
  EXPECT_GT(faulty.retries, 0);
  EXPECT_GT(faulty.degraded_stall_ns, DurNs{0});
  EXPECT_GT(faulty.elapsed_time, healthy.elapsed_time);
  ExpectBalanced(faulty);
}

TEST(FaultSim, LatencyTailsSlowTheRunWithoutErrors) {
  Trace trace = TestTrace("cscope1", 600);
  SimConfig config = BaselineConfig("cscope1", 3);
  config.faults.tail_rate = 0.1;
  config.faults.tail_multiplier = 20.0;
  RunResult healthy = RunOne(trace, BaselineConfig("cscope1", 3), PolicyKind::kDemand);
  RunResult faulty = RunOne(trace, config, PolicyKind::kDemand);
  EXPECT_EQ(faulty.retries, 0);
  EXPECT_EQ(faulty.failed_requests, 0);
  EXPECT_GT(faulty.elapsed_time, healthy.elapsed_time);
  EXPECT_GT(faulty.degraded_stall_ns, DurNs{0});
  ExpectBalanced(faulty);
}

TEST(FaultSim, SlowDiskDegradesEveryPolicy) {
  Trace trace = TestTrace("cscope1", 600);
  for (PolicyKind kind : {PolicyKind::kDemand, PolicyKind::kFixedHorizon,
                          PolicyKind::kAggressive, PolicyKind::kForestall}) {
    RunResult healthy = RunOne(trace, BaselineConfig("cscope1", 4), kind);
    SimConfig config = BaselineConfig("cscope1", 4);
    config.faults.slow_disk = DiskId{0};
    config.faults.slow_factor = 10.0;
    RunResult slow = RunOne(trace, config, kind);
    EXPECT_GE(slow.elapsed_time, healthy.elapsed_time) << ToString(kind);
    EXPECT_GT(slow.degraded_stall_ns, DurNs{0}) << ToString(kind);
    ExpectBalanced(slow);
  }
}

TEST(FaultSim, FailStopCompletesWithPermanentFailures) {
  Trace trace = TestTrace("cscope1", 600);
  for (PolicyKind kind : {PolicyKind::kDemand, PolicyKind::kAggressive, PolicyKind::kForestall}) {
    SimConfig config = BaselineConfig("cscope1", 2);
    config.faults.fail_disk = DiskId{0};
    config.faults.fail_after = TimeNs{0} + MsToNs(50);
    RunResult r = RunOne(trace, config, kind);
    EXPECT_GT(r.failed_requests, 0) << ToString(kind);
    EXPECT_GT(r.degraded_stall_ns, DurNs{0}) << ToString(kind);
    ExpectBalanced(r);
  }
}

// Every attempt errors and the retry bound is zero: all requests fail
// permanently, demand fetches are synthesized via the recovery penalty, and
// the run still terminates with exact accounting.
TEST(FaultSim, AllRequestsFailingStillTerminates) {
  Trace trace = TestTrace("cscope1", 200);
  SimConfig config = BaselineConfig("cscope1", 2);
  config.faults.media_error_rate = 1.0;
  config.faults.max_retries = 0;
  RunResult r = RunOne(trace, config, PolicyKind::kDemand);
  EXPECT_EQ(r.retries, 0);
  EXPECT_GT(r.failed_requests, 0);
  ExpectBalanced(r);
}

TEST(FaultSim, FaultGridIsDeterministicAcrossJobCounts) {
  Trace trace = TestTrace("cscope1", 500);
  std::vector<ExperimentJob> grid;
  for (PolicyKind kind : {PolicyKind::kDemand, PolicyKind::kFixedHorizon,
                          PolicyKind::kAggressive, PolicyKind::kForestall}) {
    for (int disks : {1, 2, 4}) {
      ExperimentJob job;
      job.trace = &trace;
      job.config = BaselineConfig("cscope1", disks);
      job.config.faults.media_error_rate = 0.1;
      job.config.faults.tail_rate = 0.05;
      job.config.faults.slow_disk = DiskId{0};
      job.config.faults.slow_factor = 2.0;
      job.config.faults.seed = 1996;
      job.kind = kind;
      grid.push_back(std::move(job));
    }
  }
  std::string serial = ResultsCsvString(RunExperiments(grid, /*jobs=*/1));
  std::string parallel = ResultsCsvString(RunExperiments(grid, /*jobs=*/4));
  EXPECT_EQ(serial, parallel);
  std::string again = ResultsCsvString(RunExperiments(grid, /*jobs=*/4));
  EXPECT_EQ(parallel, again) << "same fault seed must reproduce bit-for-bit";
}

// --------------------------------------------------------------------------
// Config validation and the crash-proof runner
// --------------------------------------------------------------------------

TEST(FaultSim, InvalidConfigsThrowSimError) {
  SimConfig config = BaselineConfig("cscope1", 2);
  config.faults.media_error_rate = 1.5;
  EXPECT_THROW(ValidateSimConfig(config), SimError);
  config = BaselineConfig("cscope1", 2);
  config.faults.slow_factor = 0.5;
  EXPECT_THROW(ValidateSimConfig(config), SimError);
  config = BaselineConfig("cscope1", 2);
  config.faults.max_retries = -1;
  EXPECT_THROW(ValidateSimConfig(config), SimError);
  config = BaselineConfig("cscope1", 2);
  config.cache_blocks = 0;
  EXPECT_THROW(ValidateSimConfig(config), SimError);
  EXPECT_NO_THROW(ValidateSimConfig(BaselineConfig("cscope1", 2)));
}

TEST(Runner, CheckedRunContainsPerJobFailures) {
  Trace trace = TestTrace("cscope1", 300);
  std::vector<ExperimentJob> grid;
  for (int i = 0; i < 3; ++i) {
    ExperimentJob job;
    job.trace = &trace;
    job.config = BaselineConfig("cscope1", 2);
    job.kind = PolicyKind::kFixedHorizon;
    grid.push_back(std::move(job));
  }
  grid[1].config.faults.media_error_rate = 2.0;  // invalid: must be <= 1

  std::vector<JobOutcome> outcomes = RunExperimentsChecked(grid, /*jobs=*/2);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[2].ok());
  ASSERT_FALSE(outcomes[1].ok());
  EXPECT_NE(outcomes[1].error.find("invalid SimConfig"), std::string::npos)
      << outcomes[1].error;
  // The surviving slots are exactly what an all-healthy grid produces.
  RunResult reference = RunOne(trace, grid[0].config, PolicyKind::kFixedHorizon);
  EXPECT_EQ(ResultsCsvString({outcomes[0].result}), ResultsCsvString({reference}));
  EXPECT_EQ(ResultsCsvString({outcomes[2].result}), ResultsCsvString({reference}));
}

TEST(Runner, EventBudgetWatchdogTripsAsJobError) {
  Trace trace = TestTrace("cscope1", 300);
  ExperimentJob job;
  job.trace = &trace;
  job.config = BaselineConfig("cscope1", 2);
  job.config.max_events = 5;  // absurdly small: the watchdog must fire
  job.kind = PolicyKind::kDemand;
  std::vector<JobOutcome> outcomes = RunExperimentsChecked({job}, /*jobs=*/1);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_FALSE(outcomes[0].ok());
  EXPECT_NE(outcomes[0].error.find("event budget"), std::string::npos) << outcomes[0].error;
}

TEST(Runner, NullTraceIsAJobErrorNotACrash) {
  ExperimentJob job;
  job.trace = nullptr;
  job.config = BaselineConfig("cscope1", 2);
  std::vector<JobOutcome> outcomes = RunExperimentsChecked({job}, /*jobs=*/1);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_FALSE(outcomes[0].ok());
  EXPECT_NE(outcomes[0].error.find("trace"), std::string::npos) << outcomes[0].error;
}

using RunnerDeathTest = ::testing::Test;

TEST(RunnerDeathTest, UncheckedRunExitsNonzeroWithSummary) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Trace trace = TestTrace("cscope1", 200);
  std::vector<ExperimentJob> grid;
  for (int i = 0; i < 2; ++i) {
    ExperimentJob job;
    job.trace = &trace;
    job.config = BaselineConfig("cscope1", 2);
    job.kind = PolicyKind::kDemand;
    grid.push_back(std::move(job));
  }
  grid[1].config.cache_blocks = -4;  // invalid
  EXPECT_EXIT(RunExperiments(grid, /*jobs=*/1), ::testing::ExitedWithCode(1),
              "experiment jobs failed");
}

}  // namespace
}  // namespace pfc
