// The parallel experiment engine's hard correctness requirement: results in
// submission order, byte-identical to serial execution (PFC_JOBS=1), with
// the per-trace oracle built once and shared read-only. These tests are the
// determinism regression gate and also what the TSan configuration runs
// (scripts/check_tsan.sh).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/trace_context.h"
#include "harness/runner.h"
#include "harness/study.h"

namespace pfc {
namespace {

// Scoped PFC_JOBS override (restored on destruction).
class ScopedJobs {
 public:
  explicit ScopedJobs(const char* value) {
    const char* prev = std::getenv("PFC_JOBS");
    had_prev_ = prev != nullptr;
    if (had_prev_) {
      prev_ = prev;
    }
    if (value != nullptr) {
      ::setenv("PFC_JOBS", value, 1);
    } else {
      ::unsetenv("PFC_JOBS");
    }
  }
  ~ScopedJobs() {
    if (had_prev_) {
      ::setenv("PFC_JOBS", prev_.c_str(), 1);
    } else {
      ::unsetenv("PFC_JOBS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(Runner, DefaultJobCountHonorsEnv) {
  {
    ScopedJobs env("5");
    EXPECT_EQ(DefaultJobCount(), 5);
  }
  {
    ScopedJobs env("1");
    EXPECT_EQ(DefaultJobCount(), 1);
  }
  {
    // Invalid values fall back to hardware concurrency (>= 1).
    ScopedJobs env("zero");
    EXPECT_GE(DefaultJobCount(), 1);
  }
  {
    ScopedJobs env(nullptr);
    EXPECT_GE(DefaultJobCount(), 1);
  }
}

TEST(Runner, ResultsInSubmissionOrder) {
  Trace trace = MakeTrace("cscope1").Prefix(400);
  trace.set_name("cscope1");
  // Mixed sizes so completion order differs from submission order.
  std::vector<ExperimentJob> grid;
  for (int disks : {4, 1, 3, 2, 6, 5}) {
    ExperimentJob job;
    job.trace = &trace;
    job.config = BaselineConfig("cscope1", disks);
    job.kind = PolicyKind::kFixedHorizon;
    grid.push_back(std::move(job));
  }
  std::vector<RunResult> results = RunExperiments(grid, /*jobs=*/4);
  ASSERT_EQ(results.size(), grid.size());
  EXPECT_EQ(results[0].num_disks, 4);
  EXPECT_EQ(results[1].num_disks, 1);
  EXPECT_EQ(results[2].num_disks, 3);
  EXPECT_EQ(results[3].num_disks, 2);
  EXPECT_EQ(results[4].num_disks, 6);
  EXPECT_EQ(results[5].num_disks, 5);
}

std::string StudyCsv(const Trace& trace, const std::string& name) {
  StudySpec spec;
  spec.trace_name = name;
  spec.disks = {1, 2, 4};
  spec.policies = {PolicyKind::kDemand, PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                   PolicyKind::kReverseAggressive, PolicyKind::kForestall};
  std::vector<PolicySeries> series = RunStudy(trace, spec);
  std::vector<RunResult> flat;
  for (const PolicySeries& s : series) {
    flat.insert(flat.end(), s.results.begin(), s.results.end());
  }
  return ResultsCsvString(flat);
}

// The determinism regression test: RunStudy under a 4-worker pool must be
// byte-identical to PFC_JOBS=1, across two traces and five policies
// (including the parallel reverse-aggressive tuning grid).
TEST(Runner, StudyIsDeterministicAcrossJobCounts) {
  for (const char* name : {"cscope1", "postgres-select"}) {
    Trace trace = MakeTrace(name).Prefix(500);
    trace.set_name(name);

    ClearTunedRevAggCache();
    std::string serial;
    {
      ScopedJobs env("1");
      serial = StudyCsv(trace, name);
    }

    ClearTunedRevAggCache();  // force the tuner to re-run in parallel
    std::string parallel;
    {
      ScopedJobs env("4");
      parallel = StudyCsv(trace, name);
    }

    EXPECT_EQ(serial, parallel) << "trace " << name;
    EXPECT_NE(serial.find(name), std::string::npos);
  }
}

TEST(Runner, TunerIsMemoized) {
  Trace trace = MakeTrace("cscope1").Prefix(300);
  trace.set_name("cscope1");
  ClearTunedRevAggCache();

  TuneRequest request;
  request.config = BaselineConfig("cscope1", 2);
  request.fetch_times = {8, 32};
  request.batches = {4, 16};

  std::vector<PolicyOptions> first = TuneReverseAggressiveMany(trace, {request});
  std::vector<PolicyOptions> again = TuneReverseAggressiveMany(trace, {request});
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(first[0].revagg.fetch_time_estimate, again[0].revagg.fetch_time_estimate);
  EXPECT_EQ(first[0].revagg.batch_size, again[0].revagg.batch_size);

  // The memoized grid answers match the serial tuner.
  PolicyOptions serial =
      TuneReverseAggressive(trace, request.config, request.fetch_times, request.batches);
  EXPECT_EQ(serial.revagg.fetch_time_estimate, first[0].revagg.fetch_time_estimate);
  EXPECT_EQ(serial.revagg.batch_size, first[0].revagg.batch_size);
}

TEST(TraceContext, MemoizedByKey) {
  Trace trace = MakeTrace("cscope1").Prefix(200);
  trace.set_name("cscope1");

  auto a = SharedTraceContext(trace, 0.5, /*hint_seed=*/1);
  auto b = SharedTraceContext(trace, 0.5, /*hint_seed=*/1);
  EXPECT_EQ(a.get(), b.get()) << "same (trace, coverage, seed) must share one context";

  auto c = SharedTraceContext(trace, 0.5, /*hint_seed=*/2);
  EXPECT_NE(a.get(), c.get()) << "a different hint seed is a different oracle";

  auto d = SharedTraceContext(trace, 1.0, /*hint_seed=*/1);
  EXPECT_NE(a.get(), d.get()) << "a different coverage is a different oracle";
  // Coverage >= 1.0 normalizes: seeds are irrelevant once everything is
  // hinted, and over-unity coverages alias 1.0.
  auto e = SharedTraceContext(trace, 1.0, /*hint_seed=*/1);
  EXPECT_EQ(d.get(), e.get());
  EXPECT_TRUE(d->hinted().empty());

  // A different trace never aliases, even with identical hint parameters.
  Trace other = MakeTrace("postgres-select").Prefix(200);
  other.set_name("postgres-select");
  auto f = SharedTraceContext(other, 0.5, /*hint_seed=*/1);
  EXPECT_NE(a.get(), f.get());
}

TEST(TraceContext, MatchesPrivatelyBuiltOracle) {
  Trace trace = MakeTrace("postgres-select").Prefix(300);
  trace.set_name("postgres-select");

  auto shared = SharedTraceContext(trace, 0.6, /*hint_seed=*/7);
  TraceContext fresh(trace, 0.6, /*hint_seed=*/7);
  ASSERT_EQ(shared->hinted().size(), fresh.hinted().size());
  EXPECT_EQ(shared->hinted(), fresh.hinted());
  for (int64_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(shared->index().NextUseAfterPosition(TracePos{i}),
              fresh.index().NextUseAfterPosition(TracePos{i}));
  }
}

}  // namespace
}  // namespace pfc
