#include <gtest/gtest.h>

#include "core/policies/demand.h"
#include "core/policies/fixed_horizon.h"
#include "core/simulator.h"
#include "trace/trace.h"

namespace pfc {
namespace {

Trace SequentialTrace(int64_t blocks, int64_t reads, DurNs compute) {
  Trace t("seq");
  for (int64_t i = 0; i < reads; ++i) {
    t.Append(BlockId{i % blocks}, compute);
  }
  return t;
}

SimConfig SmallConfig(int cache_blocks, int disks) {
  SimConfig c;
  c.cache_blocks = cache_blocks;
  c.num_disks = disks;
  return c;
}

TEST(Simulator, AllHitsAfterColdStartWithBigCache) {
  // 10 distinct blocks, cache of 16: each block fetched exactly once.
  Trace t = SequentialTrace(10, 50, MsToNs(1));
  SimConfig c = SmallConfig(16, 1);
  DemandPolicy demand;
  Simulator sim(t, c, &demand);
  RunResult r = sim.Run();
  EXPECT_EQ(r.fetches, 10);
  EXPECT_EQ(r.demand_fetches, 10);
  EXPECT_EQ(r.compute_time, MsToNs(1) * 50);
  EXPECT_EQ(r.driver_time, 10 * c.driver_overhead);
  EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time);
  EXPECT_GT(r.stall_time, DurNs{0});
}

TEST(Simulator, ElapsedDecompositionHolds) {
  Trace t = SequentialTrace(100, 400, MsToNs(2));
  SimConfig c = SmallConfig(32, 2);
  FixedHorizonPolicy fh(16);
  Simulator sim(t, c, &fh);
  RunResult r = sim.Run();
  EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time);
  EXPECT_EQ(r.driver_time, r.fetches * c.driver_overhead);
}

TEST(Simulator, PrefetchingBeatsDemand) {
  Trace t = SequentialTrace(200, 1000, MsToNs(1));
  SimConfig c = SmallConfig(64, 2);
  RunResult demand_result;
  {
    DemandPolicy p;
    demand_result = Simulator(t, c, &p).Run();
  }
  RunResult fh_result;
  {
    FixedHorizonPolicy p(32);
    fh_result = Simulator(t, c, &p).Run();
  }
  EXPECT_LT(fh_result.stall_time, demand_result.stall_time);
  EXPECT_LT(fh_result.elapsed_time, demand_result.elapsed_time);
}

TEST(Simulator, DemandFetchCountsMissesExactly) {
  // Loop of 20 blocks with a cache of 5: with MIN replacement the hit rate
  // is positive but every distinct block misses at least once.
  Trace t = SequentialTrace(20, 100, MsToNs(1));
  SimConfig c = SmallConfig(5, 1);
  DemandPolicy p;
  RunResult r = Simulator(t, c, &p).Run();
  EXPECT_EQ(r.fetches, r.demand_fetches);
  EXPECT_GE(r.fetches, 20);
  EXPECT_LE(r.fetches, 100);
}

TEST(Simulator, UtilizationBounded) {
  Trace t = SequentialTrace(50, 300, MsToNs(1));
  SimConfig c = SmallConfig(16, 4);
  FixedHorizonPolicy p(16);
  RunResult r = Simulator(t, c, &p).Run();
  ASSERT_EQ(static_cast<int>(r.per_disk_util.size()), 4);
  for (double u : r.per_disk_util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

}  // namespace
}  // namespace pfc
