// MUST NOT COMPILE: a span is not an instant.
#include "util/strong_types.h"
void f(pfc::TimeNs& t, pfc::DurNs d) { t = d; }
