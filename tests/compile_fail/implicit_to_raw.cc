// MUST NOT COMPILE: leaving the unit system requires an explicit .ns()/.v().
#include "util/strong_types.h"
long long f(pfc::DurNs d) { return d; }
