// MUST NOT COMPILE: instants do not scale (only spans do).
#include "util/strong_types.h"
pfc::TimeNs f(pfc::TimeNs t) { return t * 2; }
