// MUST NOT COMPILE: time and block address spaces never mix.
#include "util/strong_types.h"
pfc::TimeNs f(pfc::TimeNs t, pfc::BlockId b) { return t + b; }
