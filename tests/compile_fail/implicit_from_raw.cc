// MUST NOT COMPILE: construction from the raw representation is explicit.
#include "util/strong_types.h"
pfc::BlockId f(long long raw) { return raw; }
