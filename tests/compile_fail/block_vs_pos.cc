// MUST NOT COMPILE: a BlockId is not a TracePos — the argument-swap bug
// class the strong types exist to kill.
#include "util/strong_types.h"
pfc::TracePos f(pfc::BlockId b) { return b; }
