// MUST NOT COMPILE: adding two instants is meaningless.
#include "util/strong_types.h"
pfc::TimeNs f(pfc::TimeNs a, pfc::TimeNs b) { return a + b; }
