// Positive control for the compile-fail harness: this file MUST compile.
// If the harness's compiler invocation is broken (bad include path, bad
// std flag), this test fails first, distinguishing harness breakage from a
// genuinely rejected expression.
#include "util/strong_types.h"
pfc::TimeNs f(pfc::TimeNs t, pfc::DurNs d) { return t + d; }
