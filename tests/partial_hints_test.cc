// Tests for the incomplete-hints extension (section 6 of the paper).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diff.h"
#include "core/sim_error.h"
#include "harness/experiment.h"
#include "util/rng.h"

namespace pfc {
namespace {

Trace LoopTrace(int64_t blocks, int64_t reads, DurNs compute) {
  Trace t("loop");
  for (int64_t i = 0; i < reads; ++i) {
    t.Append(BlockId{i % blocks}, compute);
  }
  return t;
}

TEST(PartialHints, MaskedOracleOnlySeesHintedPositions) {
  Trace t("pat");
  for (int64_t b : {1, 2, 1, 2, 1}) {
    t.Append(BlockId{b}, DurNs{0});
  }
  std::vector<bool> hinted = {true, false, false, true, true};
  NextRefIndex idx(t, hinted);
  // Block 1 occurs at 0,2,4 (hinted: 0,4); block 2 at 1,3 (hinted: 3).
  EXPECT_EQ(idx.NextUseAt(BlockId{1}, TracePos{0}), TracePos{0});
  EXPECT_EQ(idx.NextUseAt(BlockId{1}, TracePos{1}), TracePos{4});  // position 2 is undisclosed
  EXPECT_EQ(idx.NextUseAt(BlockId{2}, TracePos{0}), TracePos{3});  // position 1 is undisclosed
  EXPECT_EQ(idx.NextUseAfterPosition(TracePos{0}), TracePos{4});
  EXPECT_EQ(idx.NextUseAfterPosition(TracePos{3}), NextRefIndex::kNoRef);
  EXPECT_EQ(idx.NextUseAfterPosition(TracePos{4}), NextRefIndex::kNoRef);
}

TEST(PartialHints, FullCoverageIsIdenticalToBaseline) {
  Trace t = LoopTrace(300, 2000, MsToNs(1));
  SimConfig base;
  base.cache_blocks = 128;
  base.num_disks = 2;
  SimConfig covered = base;
  covered.hint_coverage = 1.0;
  for (PolicyKind kind : {PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                          PolicyKind::kForestall}) {
    RunResult a = RunOne(t, base, kind);
    RunResult b = RunOne(t, covered, kind);
    EXPECT_EQ(a.elapsed_time, b.elapsed_time) << ToString(kind);
    EXPECT_EQ(a.fetches, b.fetches) << ToString(kind);
  }
}

TEST(PartialHints, ZeroCoverageDegradesTowardDemand) {
  // With nothing disclosed, the prefetchers cannot prefetch: every fetch is
  // a demand fetch and elapsed time is demand-like.
  Trace t = LoopTrace(400, 2000, MsToNs(1));
  SimConfig c;
  c.cache_blocks = 128;
  c.num_disks = 2;
  c.hint_coverage = 0.0;
  RunResult demand = RunOne(t, c, PolicyKind::kDemand);
  for (PolicyKind kind : {PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                          PolicyKind::kForestall}) {
    RunResult r = RunOne(t, c, kind);
    EXPECT_EQ(r.fetches, r.demand_fetches) << ToString(kind);
    // Same fetch stream, possibly different evictions (unhinted blocks all
    // look dead, so replacement is LRU-blind); stay within 25% of demand.
    EXPECT_NEAR(static_cast<double>(r.elapsed_time.ns()),
                static_cast<double>(demand.elapsed_time.ns()),
                0.25 * static_cast<double>(demand.elapsed_time.ns()))
        << ToString(kind);
  }
}

TEST(PartialHints, FullKnowledgeBeatsPartialAndNone) {
  // Full disclosure must clearly beat both partial and zero coverage. (50%
  // versus 0% is NOT asserted: on cyclic traces half-knowledge can mislead
  // replacement — undisclosed blocks look dead — which is exactly the risk
  // the paper's section 6 flags.)
  Trace t = LoopTrace(500, 3000, MsToNs(1));
  SimConfig c;
  c.cache_blocks = 256;
  c.num_disks = 2;
  std::vector<DurNs> stalls;
  for (double coverage : {1.0, 0.5, 0.0}) {
    c.hint_coverage = coverage;
    stalls.push_back(RunOne(t, c, PolicyKind::kForestall).stall_time);
  }
  EXPECT_LT(static_cast<double>(stalls[0].ns()), 0.8 * static_cast<double>(stalls[1].ns()));
  EXPECT_LT(static_cast<double>(stalls[0].ns()), 0.8 * static_cast<double>(stalls[2].ns()));
}

TEST(PartialHints, HintMaskIsDeterministicInSeed) {
  Trace t = LoopTrace(200, 1500, MsToNs(1));
  SimConfig c;
  c.cache_blocks = 64;
  c.num_disks = 2;
  c.hint_coverage = 0.6;
  c.hint_seed = 42;
  RunResult a = RunOne(t, c, PolicyKind::kAggressive);
  RunResult b = RunOne(t, c, PolicyKind::kAggressive);
  EXPECT_EQ(a.elapsed_time, b.elapsed_time);
  c.hint_seed = 43;
  RunResult d = RunOne(t, c, PolicyKind::kAggressive);
  EXPECT_NE(a.elapsed_time, d.elapsed_time);
}

TEST(PartialHints, CoverageOneIsTheFullOracleBitForBit) {
  // coverage=1.0 must be indistinguishable from the untouched baseline for
  // all six policies — not "close", the same machine: every counter and
  // every nanosecond equal.
  Trace t = LoopTrace(300, 2000, MsToNs(1));
  SimConfig base;
  base.cache_blocks = 128;
  base.num_disks = 2;
  SimConfig covered = base;
  covered.hint_coverage = 1.0;
  for (PolicyKind kind : {PolicyKind::kDemand, PolicyKind::kDemandLru,
                          PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                          PolicyKind::kReverseAggressive, PolicyKind::kForestall}) {
    RunResult a = RunOne(t, base, kind);
    RunResult b = RunOne(t, covered, kind);
    std::vector<std::string> why;
    EXPECT_TRUE(ResultsExactlyEqual(a, b, &why)) << ToString(kind);
    for (const std::string& w : why) {
      ADD_FAILURE() << ToString(kind) << ": " << w;
    }
  }
}

TEST(PartialHints, CoverageZeroIsTheDemandPolicyBitForBit) {
  // With nothing disclosed, every furthest-next-use policy must be the
  // demand policy bit for bit (the LRU row is pinned against hintless
  // demand-lru — same eviction rule, same blindness); reverse aggressive
  // refuses to run. Also pins coverage=0 to the predictor-none hintless
  // mode: the two spellings build the same machine.
  Trace t = LoopTrace(400, 2000, MsToNs(1));
  SimConfig blind;
  blind.cache_blocks = 128;
  blind.num_disks = 2;
  blind.hint_coverage = 0.0;
  SimConfig hintless = blind;
  hintless.hint_coverage = 1.0;
  hintless.predictor.kind = PredictorKind::kNone;
  const RunResult demand = RunOne(t, blind, PolicyKind::kDemand);
  const RunResult demand_lru = RunOne(t, blind, PolicyKind::kDemandLru);
  for (PolicyKind kind : {PolicyKind::kDemand, PolicyKind::kDemandLru,
                          PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                          PolicyKind::kForestall}) {
    const RunResult& match = kind == PolicyKind::kDemandLru ? demand_lru : demand;
    RunResult r = RunOne(t, blind, kind);
    std::vector<std::string> why;
    EXPECT_TRUE(ResultsExactlyEqual(r, match, &why)) << ToString(kind);
    for (const std::string& w : why) {
      ADD_FAILURE() << ToString(kind) << " vs demand: " << w;
    }
    RunResult h = RunOne(t, hintless, kind);
    why.clear();
    EXPECT_TRUE(ResultsExactlyEqual(r, h, &why)) << ToString(kind);
    for (const std::string& w : why) {
      ADD_FAILURE() << ToString(kind) << " cov=0 vs predictor=none: " << w;
    }
  }
  EXPECT_THROW(RunOne(t, blind, PolicyKind::kReverseAggressive), SimError);
}

TEST(PartialHints, ReverseAggressiveRequiresFullHints) {
  Trace t = LoopTrace(50, 200, MsToNs(1));
  SimConfig c;
  c.cache_blocks = 32;
  c.num_disks = 1;
  c.hint_coverage = 0.5;
  try {
    RunOne(t, c, PolicyKind::kReverseAggressive);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("full advance knowledge"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace pfc
