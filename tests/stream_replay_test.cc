// Acceptance gate for streaming trace replay: a multi-window .pfct replayed
// through the bounded-memory PfctStream reader must produce bit-identical
// RunResults — every counter, every double — to the same trace fully
// materialized in memory, for all six policies. Also pins the memory bound:
// the reader's peak resident record data is governed by the window size and
// slot count, never by trace length.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/diff.h"
#include "harness/experiment.h"
#include "trace/generators.h"
#include "trace/pfct.h"
#include "trace/pfct_stream.h"
#include "trace/trace.h"

namespace pfc {
namespace {

constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kDemand,     PolicyKind::kDemandLru,
    PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
    PolicyKind::kReverseAggressive, PolicyKind::kForestall,
};

// Small windows force many cache refills during replay; 256 records per
// window over the ~8700-record cscope1 trace gives ~34 windows against 8
// cache slots.
constexpr int64_t kWindowRecords = 256;

std::string SaveStreamFixture(const Trace& trace, const std::string& tag) {
  const std::string path = testing::TempDir() + "/pfc_stream_replay_" + tag;
  Expected<bool> saved = SavePfct(trace, path, kWindowRecords);
  EXPECT_TRUE(saved.ok()) << saved.error();
  return path;
}

TEST(StreamReplay, AllPoliciesBitIdenticalToInMemory) {
  const Trace memory = MakeTrace("cscope1");
  const std::string path = SaveStreamFixture(memory, "cscope1.pfct");
  Expected<Trace> opened = Trace::OpenPfctStreaming(path);
  ASSERT_TRUE(opened.ok()) << opened.error();
  const Trace streamed = opened.take();
  ASSERT_TRUE(streamed.streaming());
  ASSERT_GT(streamed.size() / kWindowRecords, PfctStream::kCacheSlots)
      << "fixture must span more windows than the cache holds";

  for (int disks : {1, 4}) {
    const SimConfig config = BaselineConfig(memory.name(), disks);
    for (PolicyKind kind : kAllPolicies) {
      const RunResult from_memory = RunOne(memory, config, kind);
      const RunResult from_stream = RunOne(streamed, config, kind);
      std::vector<std::string> why;
      EXPECT_TRUE(ResultsExactlyEqual(from_memory, from_stream, &why))
          << ToString(kind) << " disks=" << disks << ": "
          << (why.empty() ? "?" : why.front());
    }
  }

  // The memory bound, measured after the full replay workload above: the
  // reader never held more record data than its slot budget, despite the
  // trace being many times larger.
  const PfctStream::Stats& stats = streamed.stream()->stats();
  EXPECT_GT(stats.distinct_windows, PfctStream::kCacheSlots);
  EXPECT_LE(stats.peak_resident_bytes,
            PfctStream::kCacheSlots * kWindowRecords *
                static_cast<int64_t>(sizeof(TraceEntry)));
  EXPECT_LT(stats.peak_resident_bytes,
            streamed.size() * static_cast<int64_t>(sizeof(TraceEntry)));
  std::remove(path.c_str());
}

TEST(StreamReplay, DifferentialCorpusOnStreamingTrace) {
  // Both engines replay the same streaming trace; the differential contract
  // (bitwise equality plus the theory lower bound) must hold just as it
  // does for in-memory traces.
  const Trace memory = MakeTrace("postgres-select");
  const std::string path = SaveStreamFixture(memory, "psel.pfct");
  Expected<Trace> opened = Trace::OpenPfctStreaming(path);
  ASSERT_TRUE(opened.ok()) << opened.error();
  const Trace streamed = opened.take();
  const SimConfig config = BaselineConfig(memory.name(), 3);
  for (PolicyKind kind : kAllPolicies) {
    const DiffReport report = RunDifferential(streamed, config, kind);
    EXPECT_TRUE(report.consistent) << ToString(kind) << ": " << report.ToString();
  }
  std::remove(path.c_str());
}

TEST(StreamReplay, WriteTraceBitIdenticalToInMemory) {
  // Write markers survive the binary round trip and replay identically.
  // Reverse aggressive refuses write traces, so it is exercised above only.
  const Trace memory = WithUpdates(MakeTrace("ld"), 0.25, 11);
  const std::string path = SaveStreamFixture(memory, "ld_writes.pfct");
  Expected<Trace> opened = Trace::OpenPfctStreaming(path);
  ASSERT_TRUE(opened.ok()) << opened.error();
  const Trace streamed = opened.take();
  const SimConfig config = BaselineConfig(memory.name(), 2);
  for (PolicyKind kind : kAllPolicies) {
    if (kind == PolicyKind::kReverseAggressive) continue;
    const RunResult from_memory = RunOne(memory, config, kind);
    const RunResult from_stream = RunOne(streamed, config, kind);
    std::vector<std::string> why;
    EXPECT_TRUE(ResultsExactlyEqual(from_memory, from_stream, &why))
        << ToString(kind) << ": " << (why.empty() ? "?" : why.front());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pfc
