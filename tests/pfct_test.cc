// Binary trace container (.pfct) and converter tests: round-trips across
// every synthetic generator, a byte-pinned golden fixture guarding the
// on-disk encoding, malformed-input diagnostics for the binary reader and
// both real-trace converters, and the streaming reader's window cache.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/sim_error.h"
#include "trace/convert.h"
#include "trace/generators.h"
#include "trace/pfct.h"
#include "trace/pfct_stream.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace pfc {
namespace {

std::string TempPath(const std::string& tag) {
  return testing::TempDir() + "/pfc_pfct_" + tag;
}

void ExpectTracesEqual(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.name(), b.name());
  for (TracePos i{0}; i.v() < a.size(); ++i) {
    ASSERT_EQ(a.block(i), b.block(i)) << "record " << i.v();
    ASSERT_EQ(a.compute(i), b.compute(i)) << "record " << i.v();
    ASSERT_EQ(a.is_write(i), b.is_write(i)) << "record " << i.v();
  }
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<uint8_t> bytes;
  if (f != nullptr) {
    uint8_t buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + n);
    }
    std::fclose(f);
  }
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// The fixed trace behind the committed golden fixture. Formula-generated so
// the test has no dependency on generator internals: if this test fails,
// the .pfct byte encoding itself changed.
Trace GoldenTrace() {
  Trace t("golden-fixture");
  for (int64_t i = 0; i < 300; ++i) {
    const BlockId block{(i * 37 + (i % 11) * 5) % 257};
    const DurNs compute{(i % 13) * 123'457};
    if (i % 9 == 4) {
      t.AppendWrite(block, compute);
    } else {
      t.Append(block, compute);
    }
  }
  return t;
}

// --- Round-trips -----------------------------------------------------------

TEST(PfctRoundTrip, EverySyntheticGenerator) {
  for (const TraceSpec& spec : AllTraceSpecs()) {
    const Trace trace = MakeTrace(spec.name);
    const std::string path = TempPath(spec.name + ".pfct");
    Expected<bool> saved = SavePfct(trace, path, /*window_records=*/1024);
    ASSERT_TRUE(saved.ok()) << saved.error();
    Expected<Trace> loaded = LoadPfctChecked(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error();
    ExpectTracesEqual(trace, loaded.value());
    std::remove(path.c_str());
  }
}

TEST(PfctRoundTrip, WriteTraceAndTextToBinaryToText) {
  // A write-bearing trace through text -> binary -> text: the two formats
  // must agree on every record, including the write markers.
  const Trace trace = WithUpdates(MakeTrace("postgres-join"), 0.3, 99);
  const std::string text1 = TempPath("wt1.txt");
  const std::string binary = TempPath("wt.pfct");
  const std::string text2 = TempPath("wt2.txt");
  ASSERT_TRUE(SaveTraceText(trace, text1));
  Expected<Trace> from_text = LoadTraceTextChecked(text1);
  ASSERT_TRUE(from_text.ok()) << from_text.error();
  Expected<bool> saved = SavePfct(from_text.value(), binary);
  ASSERT_TRUE(saved.ok()) << saved.error();
  Expected<Trace> from_binary = LoadPfctChecked(binary);
  ASSERT_TRUE(from_binary.ok()) << from_binary.error();
  ExpectTracesEqual(from_text.value(), from_binary.value());
  ASSERT_TRUE(SaveTraceText(from_binary.value(), text2));
  EXPECT_EQ(ReadAll(text1), ReadAll(text2));
  std::remove(text1.c_str());
  std::remove(binary.c_str());
  std::remove(text2.c_str());
}

TEST(PfctRoundTrip, UnindexedFileStreamsAndLoads) {
  const Trace trace = MakeTrace("ld");
  const std::string path = TempPath("unindexed.pfct");
  Expected<bool> saved = SavePfct(trace, path, /*window_records=*/0);
  ASSERT_TRUE(saved.ok()) << saved.error();
  Expected<Trace> loaded = LoadPfctChecked(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ExpectTracesEqual(trace, loaded.value());
  Expected<Trace> streamed = Trace::OpenPfctStreaming(path);
  ASSERT_TRUE(streamed.ok()) << streamed.error();
  ExpectTracesEqual(trace, streamed.value());
  std::remove(path.c_str());
}

TEST(PfctGolden, CommittedFixtureBytesAreStable) {
  // Regenerate the fixture and byte-compare against the committed file. A
  // mismatch means the on-disk encoding changed — which is a format break,
  // not a refactor.
  const std::string regen = TempPath("golden_regen.pfct");
  Expected<bool> saved = SavePfct(GoldenTrace(), regen, /*window_records=*/64);
  ASSERT_TRUE(saved.ok()) << saved.error();
  const std::vector<uint8_t> expected = ReadAll(PFC_TEST_DATA_DIR "/golden.pfct");
  const std::vector<uint8_t> actual = ReadAll(regen);
  ASSERT_FALSE(expected.empty()) << "committed fixture missing";
  EXPECT_EQ(actual, expected) << ".pfct byte encoding changed";
  std::remove(regen.c_str());
}

// --- Malformed inputs: binary reader ---------------------------------------

class PfctMalformed : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("malformed.pfct");
    Expected<bool> saved = SavePfct(GoldenTrace(), path_, /*window_records=*/64);
    ASSERT_TRUE(saved.ok()) << saved.error();
    image_ = ReadAll(path_);
    ASSERT_GE(image_.size(), 64u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // Writes `image` and expects both the loader and the streaming opener to
  // reject it with a diagnostic mentioning `needle`.
  void ExpectRejected(const std::vector<uint8_t>& image, const std::string& needle) {
    WriteAll(path_, image);
    Expected<Trace> loaded = LoadPfctChecked(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.error().find(path_), std::string::npos)
        << "diagnostic lacks the path: " << loaded.error();
    EXPECT_NE(loaded.error().find(needle), std::string::npos) << loaded.error();
    Expected<Trace> streamed = Trace::OpenPfctStreaming(path_);
    EXPECT_FALSE(streamed.ok());
  }

  std::string path_;
  std::vector<uint8_t> image_;
};

TEST_F(PfctMalformed, TruncatedHeader) {
  std::vector<uint8_t> img(image_.begin(), image_.begin() + 40);
  ExpectRejected(img, "truncated header");
}

TEST_F(PfctMalformed, BadMagic) {
  std::vector<uint8_t> img = image_;
  img[0] = 'X';
  ExpectRejected(img, "bad magic");
}

TEST_F(PfctMalformed, UnsupportedVersion) {
  std::vector<uint8_t> img = image_;
  img[4] = 9;
  // Version is inside the checksummed range; recompute so the version check
  // (not the checksum) fires.
  const uint64_t sum = PfctChecksum(img.data(), 48, 0);
  for (int i = 0; i < 8; ++i) {
    img[48 + static_cast<size_t>(i)] = static_cast<uint8_t>(sum >> (8 * i));
  }
  ExpectRejected(img, "unsupported pfct version");
}

TEST_F(PfctMalformed, HeaderChecksumMismatch) {
  std::vector<uint8_t> img = image_;
  img[10] ^= 0x40;  // corrupt record_count without fixing the checksum
  ExpectRejected(img, "header checksum");
}

TEST_F(PfctMalformed, ZeroRecords) {
  std::vector<uint8_t> img = image_;
  for (int i = 0; i < 8; ++i) {
    img[8 + static_cast<size_t>(i)] = 0;
  }
  const uint64_t sum = PfctChecksum(img.data(), 48, 0);
  for (int i = 0; i < 8; ++i) {
    img[48 + static_cast<size_t>(i)] = static_cast<uint8_t>(sum >> (8 * i));
  }
  ExpectRejected(img, "zero-record");
}

TEST_F(PfctMalformed, TruncatedRecords) {
  std::vector<uint8_t> img(image_.begin(), image_.end() - 24);
  ExpectRejected(img, "truncated");
}

TEST_F(PfctMalformed, TrailingGarbage) {
  std::vector<uint8_t> img = image_;
  img.push_back(0xAB);
  ExpectRejected(img, "trailing garbage");
}

TEST_F(PfctMalformed, OutOfRangeBlock) {
  // Set a reserved block bit (bit 50) in the first record and refresh the
  // window checksum so record validation, not the checksum, fires.
  std::vector<uint8_t> img = image_;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  Expected<PfctHeader> header = ReadPfctHeader(f, path_);
  std::fclose(f);
  ASSERT_TRUE(header.ok()) << header.error();
  const PfctHeader& h = header.value();
  const size_t rec0 = static_cast<size_t>(h.records_offset);
  img[rec0 + 6] |= 0x04;  // bit 50 of word0
  const size_t wbytes = static_cast<size_t>(
      std::min<int64_t>(h.window_records, h.record_count) * kPfctRecordBytes);
  const uint64_t sum = PfctChecksum(img.data() + rec0, wbytes, 0);
  for (int i = 0; i < 8; ++i) {
    img[static_cast<size_t>(h.index_offset) + static_cast<size_t>(i)] =
        static_cast<uint8_t>(sum >> (8 * i));
  }
  WriteAll(path_, img);
  Expected<Trace> loaded = LoadPfctChecked(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("record 0"), std::string::npos) << loaded.error();
  EXPECT_NE(loaded.error().find("out of range"), std::string::npos) << loaded.error();
}

TEST_F(PfctMalformed, CorruptWindowDetectedByChecksum) {
  std::vector<uint8_t> img = image_;
  // Flip a compute byte deep in the record array; the window checksum must
  // catch it even though the record still decodes.
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  Expected<PfctHeader> header = ReadPfctHeader(f, path_);
  std::fclose(f);
  ASSERT_TRUE(header.ok()) << header.error();
  const size_t off = static_cast<size_t>(header.value().records_offset) +
                     100 * static_cast<size_t>(kPfctRecordBytes) + 8;
  img[off] ^= 0x01;
  WriteAll(path_, img);
  // The eager loader rejects the file outright.
  Expected<Trace> loaded = LoadPfctChecked(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("checksum mismatch"), std::string::npos)
      << loaded.error();
  // The streaming reader verifies lazily: open succeeds (the header is
  // intact), and the corruption surfaces as a SimError when the damaged
  // window is first pulled in mid-replay.
  Expected<Trace> streamed = Trace::OpenPfctStreaming(path_);
  ASSERT_TRUE(streamed.ok()) << streamed.error();
  EXPECT_THROW(streamed.value().compute(TracePos{100}), SimError);
}

// --- Malformed inputs: converters ------------------------------------------

Expected<Trace> ConvertMsrString(const std::string& text,
                                 const ConvertOptions& options = {}) {
  std::FILE* f = fmemopen(const_cast<char*>(text.data()), text.size(), "r");
  EXPECT_NE(f, nullptr);
  Expected<Trace> result = ConvertMsrCsv(f, "<memory>", options);
  std::fclose(f);
  return result;
}

Expected<Trace> ConvertBlkString(const std::string& text,
                                 const ConvertOptions& options = {}) {
  std::FILE* f = fmemopen(const_cast<char*>(text.data()), text.size(), "r");
  EXPECT_NE(f, nullptr);
  Expected<Trace> result = ConvertBlkparse(f, "<memory>", options);
  std::fclose(f);
  return result;
}

TEST(ConvertMsr, ParsesReadsWritesAndInterArrivalGaps) {
  // Two reads 100 us apart (1000 ticks), then a 2-block write.
  const std::string csv =
      "128166372003061629,web,0,Read,8192,8192,100\n"
      "128166372003062629,web,0,Read,32768,8192,100\n"
      "128166372003064629,web,0,Write,16384,16384,100\n";
  Expected<Trace> result = ConvertMsrString(csv);
  ASSERT_TRUE(result.ok()) << result.error();
  const Trace& t = result.value();
  ASSERT_EQ(t.size(), 4);  // read, read, write x2 blocks
  EXPECT_EQ(t.block(TracePos{0}), BlockId{0});  // compact remap: first-seen
  EXPECT_EQ(t.block(TracePos{1}), BlockId{1});
  EXPECT_EQ(t.block(TracePos{2}), BlockId{2});
  EXPECT_EQ(t.block(TracePos{3}), BlockId{3});
  EXPECT_FALSE(t.is_write(TracePos{1}));
  EXPECT_TRUE(t.is_write(TracePos{2}));
  EXPECT_TRUE(t.is_write(TracePos{3}));
  // Gap after record 0 = 1000 ticks * 100 ns; within the write, 0.
  EXPECT_EQ(t.compute(TracePos{0}), DurNs{100'000});
  EXPECT_EQ(t.compute(TracePos{1}), DurNs{200'000});
  EXPECT_EQ(t.compute(TracePos{2}), DurNs{0});
  EXPECT_EQ(t.compute(TracePos{3}), DurNs{0});
}

TEST(ConvertMsr, RawAddressesWithoutCompaction) {
  ConvertOptions options;
  options.compact_blocks = false;
  Expected<Trace> result =
      ConvertMsrString("1000,web,0,Read,81920,8192,1\n", options);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().block(TracePos{0}), BlockId{10});
}

TEST(ConvertMsr, SamplingAndRecordCap) {
  std::string csv;
  for (int i = 0; i < 100; ++i) {
    csv += std::to_string(1000 + i * 10) + ",h,0,Read," +
           std::to_string(i * 8192) + ",8192,1\n";
  }
  ConvertOptions sampled;
  sampled.sample_every = 10;
  Expected<Trace> r1 = ConvertMsrString(csv, sampled);
  ASSERT_TRUE(r1.ok()) << r1.error();
  EXPECT_EQ(r1.value().size(), 10);
  ConvertOptions capped;
  capped.max_records = 7;
  Expected<Trace> r2 = ConvertMsrString(csv, capped);
  ASSERT_TRUE(r2.ok()) << r2.error();
  EXPECT_EQ(r2.value().size(), 7);
}

TEST(ConvertMsr, DiagnosticsCarryOriginAndLine) {
  const struct {
    const char* text;
    const char* needle;
  } cases[] = {
      {"not,a,number,Read,0,8192,1\n", "malformed CSV record"},
      {"1000,h,0,Erase,0,8192,1\n", "unknown Type"},
      {"1000,h,0,Read,-8192,8192,1\n", "bad extent"},
      {"1000,h,0,Read,0,0,1\n", "bad extent"},
      {"-5,h,0,Read,0,8192,1\n", "negative timestamp"},
      {"1000,h,0,Read,999999999999999999,8192,1\n", "out of range"},
      {"", "no usable records"},
      {"# only a comment\n", "no usable records"},
  };
  for (const auto& c : cases) {
    Expected<Trace> result = ConvertMsrString(c.text);
    ASSERT_FALSE(result.ok()) << c.text;
    EXPECT_NE(result.error().find("<memory>"), std::string::npos) << result.error();
    EXPECT_NE(result.error().find(c.needle), std::string::npos) << result.error();
  }
}

TEST(ConvertBlkparse, ParsesQueueActionsOnly) {
  const std::string blk =
      "8,0 1 1 0.000000000 42 Q R 2048 + 16 [prog]\n"    // read, block 128
      "8,0 1 2 0.000000000 42 G R 2048 + 16 [prog]\n"    // later lifecycle: skip
      "8,0 1 3 0.000104000 42 Q W 4096 + 32 [prog]\n"    // write, 2 blocks
      "8,0 1 4 0.000104000 42 C R 2048 + 16 [0]\n"       // completion: skip
      "CPU0 (8,0): reads queued 1\n";                    // summary: skip
  Expected<Trace> result = ConvertBlkString(blk);
  ASSERT_TRUE(result.ok()) << result.error();
  const Trace& t = result.value();
  ASSERT_EQ(t.size(), 3);
  EXPECT_FALSE(t.is_write(TracePos{0}));
  EXPECT_TRUE(t.is_write(TracePos{1}));
  EXPECT_TRUE(t.is_write(TracePos{2}));
  EXPECT_EQ(t.compute(TracePos{0}), DurNs{104'000});
}

TEST(ConvertBlkparse, MalformedQueueRecordIsRejected) {
  Expected<Trace> result = ConvertBlkString("8,0 1 1 0.0 42 Q R 2048\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("<memory>:1"), std::string::npos) << result.error();
  Expected<Trace> neg = ConvertBlkString("8,0 1 1 0.0 42 Q R -9 + 8 [p]\n");
  ASSERT_FALSE(neg.ok());
  EXPECT_NE(neg.error().find("negative sector"), std::string::npos) << neg.error();
  Expected<Trace> empty = ConvertBlkString("no requests here\n");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.error().find("no usable records"), std::string::npos);
}

// --- Streaming reader ------------------------------------------------------

TEST(PfctStream, RandomAccessMatchesAndMemoryStaysBounded) {
  const Trace trace = MakeTrace("cscope1");
  const std::string path = TempPath("stream.pfct");
  const int64_t window = 256;
  ASSERT_GT(trace.size(), window * (PfctStream::kCacheSlots + 2))
      << "trace too small to exercise eviction";
  Expected<bool> saved = SavePfct(trace, path, window);
  ASSERT_TRUE(saved.ok()) << saved.error();
  Expected<Trace> opened = Trace::OpenPfctStreaming(path);
  ASSERT_TRUE(opened.ok()) << opened.error();
  Trace streamed = opened.take();
  EXPECT_TRUE(streamed.streaming());
  EXPECT_EQ(streamed.size(), trace.size());
  EXPECT_EQ(streamed.name(), trace.name());
  // Sequential pass + a scattered backward pass.
  for (TracePos i{0}; i.v() < trace.size(); ++i) {
    ASSERT_EQ(streamed.entry(i).block, trace.entry(i).block) << i.v();
  }
  for (int64_t i = trace.size() - 1; i >= 0; i -= 37) {
    ASSERT_EQ(streamed.compute(TracePos{i}), trace.compute(TracePos{i}));
  }
  const PfctStream::Stats& stats = streamed.stream()->stats();
  EXPECT_GT(stats.distinct_windows, PfctStream::kCacheSlots);
  // The memory bound: resident data never exceeds the slot budget.
  EXPECT_LE(stats.peak_resident_bytes,
            PfctStream::kCacheSlots * window *
                static_cast<int64_t>(sizeof(TraceEntry)));
  std::remove(path.c_str());
}

TEST(PfctStream, MaterializeAndDerivedStatsAgree) {
  const Trace trace = WithUpdates(MakeTrace("postgres-select"), 0.2, 7);
  const std::string path = TempPath("materialize.pfct");
  ASSERT_TRUE(SavePfct(trace, path, 128).ok());
  Expected<Trace> opened = Trace::OpenPfctStreaming(path);
  ASSERT_TRUE(opened.ok()) << opened.error();
  const Trace& streamed = opened.value();
  EXPECT_EQ(streamed.WriteCount(), trace.WriteCount());
  EXPECT_EQ(streamed.DistinctBlocks(), trace.DistinctBlocks());
  EXPECT_EQ(streamed.MaxBlock(), trace.MaxBlock());
  EXPECT_EQ(streamed.TotalCompute(), trace.TotalCompute());
  ExpectTracesEqual(trace, streamed.Materialize());
  ExpectTracesEqual(trace.Prefix(trace.size()), streamed.Prefix(trace.size()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pfc
