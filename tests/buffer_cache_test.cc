#include <gtest/gtest.h>

#include "core/buffer_cache.h"

namespace pfc {
namespace {

TEST(BufferCache, FetchLifecycle) {
  BufferCache c(2);
  EXPECT_EQ(c.free_buffers(), 2);
  EXPECT_EQ(c.GetState(7), BufferCache::State::kAbsent);

  c.StartFetchIntoFree(7);
  EXPECT_TRUE(c.Fetching(7));
  EXPECT_FALSE(c.Present(7));
  EXPECT_EQ(c.free_buffers(), 1);

  c.CompleteFetch(7, 100);
  EXPECT_TRUE(c.Present(7));
  EXPECT_EQ(c.present_count(), 1);
  EXPECT_EQ(c.FurthestBlock().value(), 7);
  EXPECT_EQ(c.FurthestNextUse(), 100);
}

TEST(BufferCache, EvictAtIssueSemantics) {
  BufferCache c(1);
  c.StartFetchIntoFree(1);
  c.CompleteFetch(1, 10);
  // Starting a fetch evicts immediately: block 1 is gone before block 2
  // arrives, and there is never more than `capacity` buffers in use.
  c.StartFetchWithEviction(2, 1);
  EXPECT_EQ(c.GetState(1), BufferCache::State::kAbsent);
  EXPECT_TRUE(c.Fetching(2));
  EXPECT_EQ(c.present_count(), 0);
  EXPECT_EQ(c.used(), 1);
  c.CompleteFetch(2, 20);
  EXPECT_TRUE(c.Present(2));
}

TEST(BufferCache, FurthestTracksUpdates) {
  BufferCache c(3);
  for (int64_t b = 1; b <= 3; ++b) {
    c.StartFetchIntoFree(b);
    c.CompleteFetch(b, b * 10);
  }
  EXPECT_EQ(c.FurthestBlock().value(), 3);
  c.UpdateNextUse(1, 1000);  // block 1 now furthest
  EXPECT_EQ(c.FurthestBlock().value(), 1);
  EXPECT_EQ(c.FurthestNextUse(), 1000);
  c.UpdateNextUse(1, 5);  // back to near
  EXPECT_EQ(c.FurthestBlock().value(), 3);
}

TEST(BufferCache, UpdateNextUseSameKeyIsNoop) {
  BufferCache c(1);
  c.StartFetchIntoFree(1);
  c.CompleteFetch(1, 42);
  c.UpdateNextUse(1, 42);
  EXPECT_EQ(c.FurthestNextUse(), 42);
}

TEST(BufferCache, NoPresentBlocks) {
  BufferCache c(2);
  EXPECT_FALSE(c.FurthestBlock().has_value());
  EXPECT_EQ(c.FurthestNextUse(), -1);
  c.StartFetchIntoFree(9);
  EXPECT_FALSE(c.FurthestBlock().has_value());  // fetching != present
}

TEST(BufferCacheDeath, InvariantsEnforced) {
  BufferCache c(1);
  c.StartFetchIntoFree(1);
  // Double-fetching an in-flight block is a programming error.
  EXPECT_DEATH(c.StartFetchIntoFree(1), "PFC_CHECK");
  // No free buffer left.
  EXPECT_DEATH(c.StartFetchIntoFree(2), "PFC_CHECK");
  c.CompleteFetch(1, 10);
  // Evicting an absent block.
  EXPECT_DEATH(c.StartFetchWithEviction(3, 99), "PFC_CHECK");
  // Completing a fetch that was never started.
  EXPECT_DEATH(c.CompleteFetch(5, 1), "PFC_CHECK");
}

}  // namespace
}  // namespace pfc
