#include <gtest/gtest.h>

#include "core/buffer_cache.h"

namespace pfc {
namespace {

TEST(BufferCache, FetchLifecycle) {
  BufferCache c(2);
  EXPECT_EQ(c.free_buffers(), 2);
  EXPECT_EQ(c.GetState(BlockId{7}), BufferCache::State::kAbsent);

  c.StartFetchIntoFree(BlockId{7});
  EXPECT_TRUE(c.Fetching(BlockId{7}));
  EXPECT_FALSE(c.Present(BlockId{7}));
  EXPECT_EQ(c.free_buffers(), 1);

  c.CompleteFetch(BlockId{7}, TracePos{100});
  EXPECT_TRUE(c.Present(BlockId{7}));
  EXPECT_EQ(c.present_count(), 1);
  EXPECT_EQ(c.FurthestBlock().value(), BlockId{7});
  EXPECT_EQ(c.FurthestNextUse(), TracePos{100});
}

TEST(BufferCache, EvictAtIssueSemantics) {
  BufferCache c(1);
  c.StartFetchIntoFree(BlockId{1});
  c.CompleteFetch(BlockId{1}, TracePos{10});
  // Starting a fetch evicts immediately: block 1 is gone before block 2
  // arrives, and there is never more than `capacity` buffers in use.
  c.StartFetchWithEviction(BlockId{2}, BlockId{1});
  EXPECT_EQ(c.GetState(BlockId{1}), BufferCache::State::kAbsent);
  EXPECT_TRUE(c.Fetching(BlockId{2}));
  EXPECT_EQ(c.present_count(), 0);
  EXPECT_EQ(c.used(), 1);
  c.CompleteFetch(BlockId{2}, TracePos{20});
  EXPECT_TRUE(c.Present(BlockId{2}));
}

TEST(BufferCache, FurthestTracksUpdates) {
  BufferCache c(3);
  for (int64_t b = 1; b <= 3; ++b) {
    c.StartFetchIntoFree(BlockId{b});
    c.CompleteFetch(BlockId{b}, TracePos{b * 10});
  }
  EXPECT_EQ(c.FurthestBlock().value(), BlockId{3});
  c.UpdateNextUse(BlockId{1}, TracePos{1000});  // block 1 now furthest
  EXPECT_EQ(c.FurthestBlock().value(), BlockId{1});
  EXPECT_EQ(c.FurthestNextUse(), TracePos{1000});
  c.UpdateNextUse(BlockId{1}, TracePos{5});  // back to near
  EXPECT_EQ(c.FurthestBlock().value(), BlockId{3});
}

TEST(BufferCache, UpdateNextUseSameKeyIsNoop) {
  BufferCache c(1);
  c.StartFetchIntoFree(BlockId{1});
  c.CompleteFetch(BlockId{1}, TracePos{42});
  c.UpdateNextUse(BlockId{1}, TracePos{42});
  EXPECT_EQ(c.FurthestNextUse(), TracePos{42});
}

TEST(BufferCache, NoPresentBlocks) {
  BufferCache c(2);
  EXPECT_FALSE(c.FurthestBlock().has_value());
  EXPECT_EQ(c.FurthestNextUse(), TracePos{-1});
  c.StartFetchIntoFree(BlockId{9});
  EXPECT_FALSE(c.FurthestBlock().has_value());  // fetching != present
}

TEST(BufferCacheDeath, InvariantsEnforced) {
  BufferCache c(1);
  c.StartFetchIntoFree(BlockId{1});
  // Double-fetching an in-flight block is a programming error.
  EXPECT_DEATH(c.StartFetchIntoFree(BlockId{1}), "PFC_CHECK");
  // No free buffer left.
  EXPECT_DEATH(c.StartFetchIntoFree(BlockId{2}), "PFC_CHECK");
  c.CompleteFetch(BlockId{1}, TracePos{10});
  // Evicting an absent block.
  EXPECT_DEATH(c.StartFetchWithEviction(BlockId{3}, BlockId{99}), "PFC_CHECK");
  // Completing a fetch that was never started.
  EXPECT_DEATH(c.CompleteFetch(BlockId{5}, TracePos{1}), "PFC_CHECK");
}

}  // namespace
}  // namespace pfc
