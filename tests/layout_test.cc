#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "layout/placement.h"
#include "trace/file_layout.h"
#include "util/rng.h"

namespace pfc {
namespace {

TEST(Placement, StripedRoundRobin) {
  StripedPlacement p(4);
  for (int64_t b = 0; b < 100; ++b) {
    BlockLocation loc = p.Map(BlockId{b});
    EXPECT_EQ(loc.disk, DiskId{static_cast<int32_t>(b % 4)});
    EXPECT_EQ(loc.disk_block, BlockId{b / 4});
  }
}

TEST(Placement, StripedSequentialIsPerDiskSequential) {
  // Consecutive logical blocks on the same disk map to consecutive disk
  // blocks — that is why striping preserves streaming.
  StripedPlacement p(3);
  BlockLocation a = p.Map(BlockId{9});
  BlockLocation b = p.Map(BlockId{12});
  EXPECT_EQ(a.disk, b.disk);
  EXPECT_EQ(b.disk_block, a.disk_block + 1);
}

TEST(Placement, ContiguousChunks) {
  ContiguousPlacement p(2, 100);
  EXPECT_EQ(p.Map(BlockId{0}).disk, DiskId{0});
  EXPECT_EQ(p.Map(BlockId{99}).disk, DiskId{0});
  EXPECT_EQ(p.Map(BlockId{100}).disk, DiskId{1});
  EXPECT_EQ(p.Map(BlockId{199}).disk, DiskId{1});
  EXPECT_EQ(p.Map(BlockId{200}).disk, DiskId{0});
  // Within a chunk, disk blocks stay consecutive.
  EXPECT_EQ(p.Map(BlockId{1}).disk_block, p.Map(BlockId{0}).disk_block + 1);
}

TEST(Placement, GroupHashIsDeterministicAndGroupStable) {
  GroupHashPlacement p(4, 100);
  GroupHashPlacement q(4, 100);
  for (int64_t b : {0L, 99L, 100L, 5000L, 123456L}) {
    EXPECT_EQ(p.Map(BlockId{b}).disk, q.Map(BlockId{b}).disk);
  }
  // Whole groups land on one disk.
  const DiskId disk = p.Map(BlockId{500}).disk;
  for (int64_t b = 500; b < 600; ++b) {
    if (b / 100 == 5) {
      EXPECT_EQ(p.Map(BlockId{b}).disk, disk);
    }
  }
}

TEST(Placement, StripingBalancesLoad) {
  StripedPlacement p(5);
  std::vector<int> counts(5, 0);
  for (int64_t b = 0; b < 10000; ++b) {
    ++counts[static_cast<size_t>(p.Map(BlockId{b}).disk.v())];
  }
  for (int c : counts) {
    EXPECT_EQ(c, 2000);
  }
}

TEST(Placement, FactoryProducesNamedKinds) {
  auto s = MakePlacement(PlacementKind::kStriped, 3);
  auto c = MakePlacement(PlacementKind::kContiguous, 3);
  auto g = MakePlacement(PlacementKind::kGroupHash, 3);
  EXPECT_EQ(s->name(), "striped");
  EXPECT_EQ(c->name(), "contiguous");
  EXPECT_EQ(g->name(), "group-hash");
  EXPECT_EQ(s->num_disks(), 3);
}

TEST(FileLayout, FilesDoNotOverlap) {
  Rng rng(1);
  FileLayout layout(&rng);
  layout.AddFile(100);
  layout.AddFile(200);
  layout.AddFile(9000);  // spans multiple groups
  std::set<int64_t> seen;
  for (int f = 0; f < layout.num_files(); ++f) {
    for (int64_t off = 0; off < layout.FileBlocks(f); ++off) {
      EXPECT_TRUE(seen.insert(layout.BlockAddress(f, off).v()).second)
          << "overlap at file " << f << " offset " << off;
    }
  }
}

TEST(FileLayout, SmallFileFitsInOneGroup) {
  Rng rng(7);
  FileLayout layout(&rng);
  const int64_t base = layout.AddFile(50).v();
  const int64_t group = base / FileLayout::kGroupBlocks;
  EXPECT_EQ((base + 49) / FileLayout::kGroupBlocks, group);
}

TEST(FileLayout, FragmentedFileStaysInItsGroups) {
  Rng rng(3);
  FileLayout layout(&rng);
  int id = layout.AddFragmentedFile(120, 4);
  std::set<int64_t> addresses;
  for (int64_t off = 0; off < 120; ++off) {
    const int64_t a = layout.BlockAddress(id, off).v();
    EXPECT_TRUE(addresses.insert(a).second);
    EXPECT_LT(a, FileLayout::kGroupBlocks);  // first file: group 0
  }
  // Extents are contiguous runs of 4.
  EXPECT_EQ(layout.BlockAddress(id, 1), layout.BlockAddress(id, 0) + 1);
  EXPECT_EQ(layout.BlockAddress(id, 3), layout.BlockAddress(id, 0) + 3);
}

TEST(FileLayout, FragmentedAndContiguousInterleave) {
  Rng rng(9);
  FileLayout layout(&rng);
  layout.AddFile(10);
  int frag = layout.AddFragmentedFile(30, 2);
  const int64_t base2 = layout.AddFile(20).v();
  std::set<int64_t> seen;
  for (int64_t off = 0; off < 10; ++off) {
    seen.insert(layout.BlockAddress(0, off).v());
  }
  for (int64_t off = 0; off < 30; ++off) {
    EXPECT_TRUE(seen.insert(layout.BlockAddress(frag, off).v()).second);
  }
  for (int64_t off = 0; off < 20; ++off) {
    EXPECT_TRUE(seen.insert(base2 + off).second);
  }
}

}  // namespace
}  // namespace pfc
