#include <gtest/gtest.h>

#include "disk/disk.h"
#include "disk/disk_array.h"
#include "disk/disk_mechanism.h"
#include "disk/geometry.h"
#include "disk/readahead_cache.h"
#include "disk/seek_model.h"
#include "disk/simple_mechanism.h"
#include "util/stats.h"

namespace pfc {
namespace {

TEST(Geometry, Hp97560Characteristics) {
  DiskGeometry g = DiskGeometry::Hp97560();
  EXPECT_EQ(g.sector_bytes(), 512);
  EXPECT_EQ(g.sectors_per_track(), 72);
  EXPECT_EQ(g.tracks_per_cylinder(), 19);
  EXPECT_EQ(g.cylinders(), 1962);
  // 4002 rpm -> ~14.99 ms per revolution.
  EXPECT_NEAR(NsToMs(g.RotationPeriod()), 14.99, 0.02);
  // Capacity ~1.3 GB.
  EXPECT_NEAR(static_cast<double>(g.total_bytes()) / 1e9, 1.37, 0.05);
}

TEST(Geometry, SectorMapping) {
  DiskGeometry g = DiskGeometry::Hp97560();
  ChsAddress a = g.SectorToChs(SectorAddr{0});
  EXPECT_EQ(a.cylinder, Cylinder{0});
  EXPECT_EQ(a.track, 0);
  EXPECT_EQ(a.sector, 0);

  ChsAddress b = g.SectorToChs(SectorAddr{72});  // first sector of track 1
  EXPECT_EQ(b.cylinder, Cylinder{0});
  EXPECT_EQ(b.track, 1);
  EXPECT_EQ(b.sector, 0);

  ChsAddress c = g.SectorToChs(SectorAddr{g.sectors_per_cylinder()});
  EXPECT_EQ(c.cylinder, Cylinder{1});
  EXPECT_EQ(c.track, 0);

  // Addresses wrap modulo the disk.
  ChsAddress d = g.SectorToChs(SectorAddr{g.total_sectors() + 73});
  EXPECT_EQ(d.cylinder, Cylinder{0});
  EXPECT_EQ(d.track, 1);
  EXPECT_EQ(d.sector, 1);
}

TEST(Geometry, RotationalArrival) {
  DiskGeometry g = DiskGeometry::Hp97560();
  // At t=0 the head is at sector 0; reading sector 10 waits 10 sector times.
  EXPECT_EQ(g.NextArrival(10, TimeNs{0}), TimeNs{0} + 10 * g.SectorTime());
  // Just past sector 10: wait almost a full revolution.
  const TimeNs just_past = TimeNs{0} + 11 * g.SectorTime();
  const DurNs wait = g.NextArrival(10, just_past) - just_past;
  EXPECT_GT(wait, g.RotationPeriod() - 2 * g.SectorTime());
  EXPECT_LE(wait, g.RotationPeriod());
}

TEST(SeekModel, CalibrationPoints) {
  SeekModel s = SeekModel::Hp97560();
  EXPECT_EQ(s.SeekTime(0), DurNs{0});
  // Paper section 3.2: max seek within a 100-cylinder group is 7.24 ms.
  EXPECT_NEAR(NsToMs(s.SeekTime(99)), 7.24, 0.1);
  // Continuity at the crossover.
  double below = NsToMs(s.SeekTime(382));
  double above = NsToMs(s.SeekTime(383));
  EXPECT_NEAR(below, above, 0.1);
  // Full-stroke seek on the 97560 is ~23-24 ms.
  EXPECT_NEAR(NsToMs(s.SeekTime(1961)), 23.7, 1.0);
  // Symmetric in direction.
  EXPECT_EQ(s.SeekTime(-250), s.SeekTime(250));
}

TEST(SeekModel, Monotone) {
  SeekModel s = SeekModel::Hp97560();
  DurNs prev;
  for (int64_t d = 1; d < 1962; d += 7) {
    DurNs t = s.SeekTime(d);
    EXPECT_GE(t, prev) << "seek not monotone at distance " << d;
    prev = t;
  }
}

TEST(ReadaheadCache, ExtendsWhileIdle) {
  ReadaheadCache c(256, MsToNs(0.2));  // 0.2 ms per sector
  EXPECT_FALSE(c.Contains(SectorAddr{0}, 16, TimeNs{0}));
  c.NoteMediaRead(SectorAddr{0}, 16, TimeNs{0} + MsToNs(1));
  EXPECT_TRUE(c.Contains(SectorAddr{0}, 16, TimeNs{0} + MsToNs(1)));
  EXPECT_FALSE(c.Contains(SectorAddr{16}, 16, TimeNs{0} + MsToNs(1)));
  // After 3.2 ms idle, 16 more sectors are buffered.
  EXPECT_TRUE(c.Contains(SectorAddr{16}, 16, TimeNs{0} + MsToNs(1) + MsToNs(3.2)));
}

TEST(ReadaheadCache, CapacityBounded) {
  ReadaheadCache c(64, MsToNs(0.1));
  c.NoteMediaRead(SectorAddr{100}, 16, TimeNs{0});
  // However long we wait, at most 64 sectors from the segment start.
  EXPECT_EQ(c.EndSectorAt(TimeNs{0} + SecToNs(10)), SectorAddr{164});
  EXPECT_TRUE(c.Contains(SectorAddr{148}, 16, TimeNs{0} + SecToNs(10)));
  EXPECT_FALSE(c.Contains(SectorAddr{160}, 16, TimeNs{0} + SecToNs(10)));
}

TEST(ReadaheadCache, InvalidateClears) {
  ReadaheadCache c(256, MsToNs(0.2));
  c.NoteMediaRead(SectorAddr{0}, 16, TimeNs{0});
  c.Invalidate();
  EXPECT_FALSE(c.Contains(SectorAddr{0}, 16, TimeNs{0} + MsToNs(100)));
  EXPECT_FALSE(c.valid());
}

TEST(Hp97560Mechanism, RandomAccessCost) {
  auto mech = Hp97560Mechanism::MakeDefault();
  // A cold random access: controller + seek + rotation + transfer. The
  // paper's Table 1 quotes 22.8 ms average for 8 KB.
  const DurNs t = mech->Access(BlockId{500000}, TimeNs{0});
  EXPECT_GT(t, MsToNs(5));
  EXPECT_LT(t, MsToNs(45));
}

TEST(Hp97560Mechanism, SequentialStreamingIsCheap) {
  auto mech = Hp97560Mechanism::MakeDefault();
  TimeNs now;
  now += mech->Access(BlockId{1000}, now);
  RunningStat s;
  for (int i = 1; i <= 20; ++i) {
    DurNs dt = mech->Access(BlockId{1000 + i}, now);
    s.Add(NsToMs(dt));
    now += dt;
  }
  // Back-to-back sequential blocks stream at ~3-4.5 ms (media-rate transfer
  // of 16 sectors plus firmware overhead), never a rotational miss.
  EXPECT_LT(s.max(), 6.0);
  EXPECT_GT(s.mean(), 2.0);
}

TEST(Hp97560Mechanism, ReadaheadHitAfterIdle) {
  auto mech = Hp97560Mechanism::MakeDefault();
  TimeNs now;
  now += mech->Access(BlockId{2000}, now);
  now += SecToNs(1);  // long idle: the drive buffers ahead
  const DurNs hit = mech->Access(BlockId{2001}, now);
  // Controller + SCSI transfer only: ~3 ms.
  EXPECT_LT(hit, MsToNs(3.5));
}

TEST(Hp97560Mechanism, ResetRestoresColdState) {
  auto mech = Hp97560Mechanism::MakeDefault();
  TimeNs now;
  now += mech->Access(BlockId{2000}, now);
  const DurNs warm = mech->Access(BlockId{2001}, now);
  mech->Reset();
  const DurNs cold = mech->Access(BlockId{2001}, now + warm);
  EXPECT_GT(cold, warm);
  EXPECT_EQ(mech->HeadCylinder(), mech->BlockCylinder(BlockId{2001}));
}

TEST(SimpleMechanism, CostTiers) {
  auto mech = SimpleMechanism::MakeDefault();
  const DurNs first = mech->Access(BlockId{1000}, TimeNs{0});
  EXPECT_EQ(first, MsToNs(15));  // cold: random
  EXPECT_EQ(mech->Access(BlockId{1001}, TimeNs{0} + first), MsToNs(2.4));  // sequential
  const DurNs near = mech->Access(BlockId{1040}, TimeNs{0});
  EXPECT_EQ(near, MsToNs(7.0));  // within the near window
  EXPECT_EQ(mech->Access(BlockId{900000}, TimeNs{0}), MsToNs(15));  // far: random again
}

TEST(Disk, DispatchAndCompleteAccounting) {
  Disk d(DiskId{0}, SimpleMechanism::MakeDefault(), SchedDiscipline::kFcfs);
  EXPECT_TRUE(d.idle());
  d.Enqueue(BlockId{7}, BlockId{1000}, TimeNs{0}, 1);
  d.Enqueue(BlockId{8}, BlockId{1001}, TimeNs{0}, 2);
  EXPECT_FALSE(d.idle());

  auto r1 = d.TryDispatch(TimeNs{0});
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->logical_block, BlockId{7});
  EXPECT_TRUE(d.busy());
  EXPECT_FALSE(d.TryDispatch(TimeNs{0}).has_value());  // busy: one at a time

  d.CompleteCurrent(r1->complete_time);
  EXPECT_FALSE(d.busy());
  auto r2 = d.TryDispatch(r1->complete_time);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->logical_block, BlockId{8});
  d.CompleteCurrent(r2->complete_time);

  EXPECT_EQ(d.stats().requests, 2);
  EXPECT_EQ(d.stats().busy_ns, r1->service_time + r2->service_time);
  EXPECT_TRUE(d.idle());
}

TEST(DiskArray, ConstructionAndReset) {
  DiskArray a(4, DiskModelKind::kDetailed, SchedDiscipline::kCscan);
  EXPECT_EQ(a.num_disks(), 4);
  EXPECT_TRUE(a.AllIdle());
  a.disk(DiskId{2}).Enqueue(BlockId{1}, BlockId{1}, TimeNs{0}, 1);
  EXPECT_FALSE(a.AllIdle());
  a.Reset();
  EXPECT_TRUE(a.AllIdle());
  EXPECT_EQ(a.TotalRequests(), 0);
}

}  // namespace
}  // namespace pfc
