#include <gtest/gtest.h>

#include "core/next_ref.h"
#include "trace/trace.h"

namespace pfc {
namespace {

Trace PatternTrace() {
  // positions: 0  1  2  3  4  5  6
  // blocks:    A  B  A  C  B  A  D   (A=1 B=2 C=3 D=4)
  Trace t("pattern");
  for (int64_t b : {1, 2, 1, 3, 2, 1, 4}) {
    t.Append(BlockId{b}, DurNs{0});
  }
  return t;
}

TEST(NextRefIndex, NextUseAt) {
  Trace t = PatternTrace();
  NextRefIndex idx(t);
  EXPECT_EQ(idx.NextUseAt(BlockId{1}, TracePos{0}), TracePos{0});
  EXPECT_EQ(idx.NextUseAt(BlockId{1}, TracePos{1}), TracePos{2});
  EXPECT_EQ(idx.NextUseAt(BlockId{1}, TracePos{3}), TracePos{5});
  EXPECT_EQ(idx.NextUseAt(BlockId{1}, TracePos{6}), NextRefIndex::kNoRef);
  EXPECT_EQ(idx.NextUseAt(BlockId{3}, TracePos{0}), TracePos{3});
  EXPECT_EQ(idx.NextUseAt(BlockId{3}, TracePos{4}), NextRefIndex::kNoRef);
  EXPECT_EQ(idx.NextUseAt(BlockId{99}, TracePos{0}), NextRefIndex::kNoRef);  // unknown block
}

TEST(NextRefIndex, NextUseAfterPosition) {
  Trace t = PatternTrace();
  NextRefIndex idx(t);
  EXPECT_EQ(idx.NextUseAfterPosition(TracePos{0}), TracePos{2});  // A at 0 -> next A at 2
  EXPECT_EQ(idx.NextUseAfterPosition(TracePos{2}), TracePos{5});
  EXPECT_EQ(idx.NextUseAfterPosition(TracePos{5}), NextRefIndex::kNoRef);
  EXPECT_EQ(idx.NextUseAfterPosition(TracePos{1}), TracePos{4});  // B
  EXPECT_EQ(idx.NextUseAfterPosition(TracePos{3}), NextRefIndex::kNoRef);  // C
}

TEST(NextRefIndex, PrevUseAt) {
  Trace t = PatternTrace();
  NextRefIndex idx(t);
  EXPECT_EQ(idx.PrevUseAt(BlockId{1}, TracePos{6}), TracePos{5});
  EXPECT_EQ(idx.PrevUseAt(BlockId{1}, TracePos{4}), TracePos{2});
  EXPECT_EQ(idx.PrevUseAt(BlockId{1}, TracePos{1}), TracePos{0});
  EXPECT_EQ(idx.PrevUseAt(BlockId{2}, TracePos{0}), NextRefIndex::kNoPrevRef);
  EXPECT_EQ(idx.PrevUseAt(BlockId{4}, TracePos{5}), NextRefIndex::kNoPrevRef);
  EXPECT_EQ(idx.PrevUseAt(BlockId{4}, TracePos{6}), TracePos{6});
}

TEST(NextRefIndex, FirstUse) {
  Trace t = PatternTrace();
  NextRefIndex idx(t);
  EXPECT_EQ(idx.FirstUse(BlockId{1}), TracePos{0});
  EXPECT_EQ(idx.FirstUse(BlockId{4}), TracePos{6});
  EXPECT_EQ(idx.FirstUse(BlockId{1234}), NextRefIndex::kNoRef);
  EXPECT_TRUE(idx.Known(BlockId{3}));
  EXPECT_FALSE(idx.Known(BlockId{1234}));
}

TEST(NextRefIndex, ConsistencyOnLongTrace) {
  Trace t("loop");
  for (int64_t i = 0; i < 5000; ++i) {
    t.Append(BlockId{i % 37}, DurNs{0});
  }
  NextRefIndex idx(t);
  for (int64_t i = 0; i < 5000; ++i) {
    const TracePos next = idx.NextUseAfterPosition(TracePos{i});
    if (i + 37 < 5000) {
      ASSERT_EQ(next, TracePos{i + 37});
    } else {
      ASSERT_EQ(next, NextRefIndex::kNoRef);
    }
    ASSERT_EQ(idx.NextUseAt(t.block(TracePos{i}), TracePos{i}), TracePos{i});
  }
}

}  // namespace
}  // namespace pfc
