#include <gtest/gtest.h>

#include "core/next_ref.h"
#include "trace/trace.h"

namespace pfc {
namespace {

Trace PatternTrace() {
  // positions: 0  1  2  3  4  5  6
  // blocks:    A  B  A  C  B  A  D   (A=1 B=2 C=3 D=4)
  Trace t("pattern");
  for (int64_t b : {1, 2, 1, 3, 2, 1, 4}) {
    t.Append(b, 0);
  }
  return t;
}

TEST(NextRefIndex, NextUseAt) {
  Trace t = PatternTrace();
  NextRefIndex idx(t);
  EXPECT_EQ(idx.NextUseAt(1, 0), 0);
  EXPECT_EQ(idx.NextUseAt(1, 1), 2);
  EXPECT_EQ(idx.NextUseAt(1, 3), 5);
  EXPECT_EQ(idx.NextUseAt(1, 6), NextRefIndex::kNoRef);
  EXPECT_EQ(idx.NextUseAt(3, 0), 3);
  EXPECT_EQ(idx.NextUseAt(3, 4), NextRefIndex::kNoRef);
  EXPECT_EQ(idx.NextUseAt(99, 0), NextRefIndex::kNoRef);  // unknown block
}

TEST(NextRefIndex, NextUseAfterPosition) {
  Trace t = PatternTrace();
  NextRefIndex idx(t);
  EXPECT_EQ(idx.NextUseAfterPosition(0), 2);  // A at 0 -> next A at 2
  EXPECT_EQ(idx.NextUseAfterPosition(2), 5);
  EXPECT_EQ(idx.NextUseAfterPosition(5), NextRefIndex::kNoRef);
  EXPECT_EQ(idx.NextUseAfterPosition(1), 4);  // B
  EXPECT_EQ(idx.NextUseAfterPosition(3), NextRefIndex::kNoRef);  // C
}

TEST(NextRefIndex, PrevUseAt) {
  Trace t = PatternTrace();
  NextRefIndex idx(t);
  EXPECT_EQ(idx.PrevUseAt(1, 6), 5);
  EXPECT_EQ(idx.PrevUseAt(1, 4), 2);
  EXPECT_EQ(idx.PrevUseAt(1, 1), 0);
  EXPECT_EQ(idx.PrevUseAt(2, 0), -1);
  EXPECT_EQ(idx.PrevUseAt(4, 5), -1);
  EXPECT_EQ(idx.PrevUseAt(4, 6), 6);
}

TEST(NextRefIndex, FirstUse) {
  Trace t = PatternTrace();
  NextRefIndex idx(t);
  EXPECT_EQ(idx.FirstUse(1), 0);
  EXPECT_EQ(idx.FirstUse(4), 6);
  EXPECT_EQ(idx.FirstUse(1234), NextRefIndex::kNoRef);
  EXPECT_TRUE(idx.Known(3));
  EXPECT_FALSE(idx.Known(1234));
}

TEST(NextRefIndex, ConsistencyOnLongTrace) {
  Trace t("loop");
  for (int64_t i = 0; i < 5000; ++i) {
    t.Append(i % 37, 0);
  }
  NextRefIndex idx(t);
  for (int64_t i = 0; i < 5000; ++i) {
    int64_t next = idx.NextUseAfterPosition(i);
    if (i + 37 < 5000) {
      ASSERT_EQ(next, i + 37);
    } else {
      ASSERT_EQ(next, NextRefIndex::kNoRef);
    }
    ASSERT_EQ(idx.NextUseAt(t.block(i), i), i);
  }
}

}  // namespace
}  // namespace pfc
