// Fault-lifecycle gate: a disk outage window (down -> rebuilding -> healthy)
// must leave the stall accounting exactly balanced for every policy, the
// policy down/up hooks must fire symmetrically, hint corruption must be
// deterministic in its seed, and the contradictory fault-flag combinations
// must be rejected by validation with a file:line diagnostic. Everything
// here runs with the paranoid auditor on, so any internal inconsistency
// surfaces as SimError::Invariant instead of a silently wrong total.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diff.h"
#include "core/sim_error.h"
#include "core/trace_context.h"
#include "harness/runner.h"
#include "obs/obs_report.h"
#include "obs/stall_attribution.h"

namespace pfc {
namespace {

constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kDemand,          PolicyKind::kDemandLru,
    PolicyKind::kFixedHorizon,    PolicyKind::kAggressive,
    PolicyKind::kReverseAggressive, PolicyKind::kForestall,
};

Trace TestTrace(const char* name, int64_t prefix) {
  Trace t = MakeTrace(name).Prefix(prefix);
  t.set_name(name);
  return t;
}

// An outage window chosen to land well inside the run for a 600-reference
// cscope1 prefix, with a rebuild tail so the degraded (slow) phase is also
// exercised.
SimConfig OutageConfig(int num_disks) {
  SimConfig config = BaselineConfig("cscope1", num_disks);
  config.faults.outage_disk = DiskId{0};
  config.faults.outage_start = TimeNs{0} + MsToNs(30);
  config.faults.outage_end = TimeNs{0} + MsToNs(120);
  config.faults.rebuild_duration = MsToNs(60);
  config.faults.rebuild_slow_factor = 3.0;
  config.paranoid = true;
  return config;
}

// The exact balance contract across down -> up: the attribution buckets sum
// to the stall total, the kOutage bucket reproduces outage_stall_ns, and
// the kFaultRecovery bucket reproduces degraded_stall_ns.
void ExpectExactBuckets(const RunResult& r, const std::string& label) {
  EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time) << label;
  ASSERT_NE(r.obs, nullptr) << label;
  const StallAttribution& stalls = r.obs->stalls;
  EXPECT_EQ(stalls.total(), r.stall_time) << label;
  EXPECT_EQ(stalls.ns(StallCause::kOutage), r.outage_stall_ns) << label;
  EXPECT_EQ(stalls.ns(StallCause::kFaultRecovery), r.degraded_stall_ns) << label;
  DurNs sum;
  for (int c = 0; c < static_cast<int>(StallCause::kNumCauses); ++c) {
    sum = sum + stalls.ns(static_cast<StallCause>(c));
  }
  EXPECT_EQ(sum, r.stall_time) << label;
}

// --------------------------------------------------------------------------
// Outage lifecycle: down -> rebuilding -> healthy, all six policies
// --------------------------------------------------------------------------

TEST(FaultLifecycle, StallBucketsBalanceExactlyForEveryPolicy) {
  Trace trace = TestTrace("cscope1", 600);
  for (PolicyKind kind : kAllPolicies) {
    SimConfig config = OutageConfig(2);
    config.obs.collect = true;
    RunResult r = RunOne(trace, config, kind);
    const std::string label = ToString(kind);
    ExpectExactBuckets(r, label);
    // The window is inside the run, so the lifecycle must complete: one
    // down transition, one matching up transition, and the run must end
    // after the disk has recovered.
    EXPECT_EQ(r.obs->disk_downs, 1) << label;
    EXPECT_EQ(r.obs->disk_ups, 1) << label;
    EXPECT_GT(r.elapsed_time - DurNs{0}, config.faults.outage_end - TimeNs{0}) << label;
    EXPECT_GT(r.outage_stall_ns, DurNs{0}) << label;
  }
}

TEST(FaultLifecycle, OutageCostsTimeAgainstHealthyBaseline) {
  Trace trace = TestTrace("cscope1", 600);
  for (PolicyKind kind : kAllPolicies) {
    SimConfig healthy = BaselineConfig("cscope1", 2);
    healthy.paranoid = true;
    RunResult base = RunOne(trace, healthy, kind);
    RunResult out = RunOne(trace, OutageConfig(2), kind);
    EXPECT_GE(out.elapsed_time, base.elapsed_time) << ToString(kind);
    // Healthy runs must never report outage stall.
    EXPECT_EQ(base.outage_stall_ns, DurNs{0}) << ToString(kind);
  }
}

TEST(FaultLifecycle, EnginesAgreeBitForBitUnderOutage) {
  Trace trace = TestTrace("cscope1", 400);
  for (PolicyKind kind : kAllPolicies) {
    DiffReport report = RunDifferential(trace, OutageConfig(2), kind);
    EXPECT_TRUE(report.consistent) << ToString(kind) << "\n" << report.ToString();
  }
}

TEST(FaultLifecycle, RebuildPhaseIsDegradedNotDown) {
  // With no rebuild the disk snaps back to full speed; with a long slow
  // rebuild the same window must cost at least as much wall time.
  Trace trace = TestTrace("cscope1", 600);
  SimConfig snap = OutageConfig(2);
  snap.faults.rebuild_duration = DurNs{0};
  snap.faults.rebuild_slow_factor = 1.0;
  SimConfig slow = OutageConfig(2);
  slow.faults.rebuild_duration = MsToNs(200);
  slow.faults.rebuild_slow_factor = 8.0;
  // Demand fetching cannot hide slow service behind prefetch pipelining,
  // so the rebuild phase must show up as degraded stall.
  RunResult a = RunOne(trace, snap, PolicyKind::kDemand);
  RunResult b = RunOne(trace, slow, PolicyKind::kDemand);
  EXPECT_GE(b.elapsed_time, a.elapsed_time);
  EXPECT_GT(b.degraded_stall_ns, DurNs{0});
}

// --------------------------------------------------------------------------
// Hint corruption: deterministic, engine-agreed, and observable
// --------------------------------------------------------------------------

TEST(FaultLifecycle, HintCorruptionIsDeterministicInSeed) {
  Trace trace = TestTrace("cscope1", 300);
  HintFault hf;
  hf.wrong_block_rate = 0.2;
  hf.reorder_window = 4;
  hf.stale_lookahead = 32;
  TraceContext a(trace, 1.0, 7, hf);
  TraceContext b(trace, 1.0, 7, hf);
  TraceContext other(trace, 1.0, 8, hf);
  ASSERT_FALSE(a.claims().empty()) << "corruption enabled, claims must materialize";
  EXPECT_EQ(a.claims(), b.claims());
  EXPECT_NE(a.claims(), other.claims()) << "hint seeds 7 and 8 should corrupt differently";
}

TEST(FaultLifecycle, EnginesAgreeBitForBitUnderHintCorruption) {
  Trace trace = TestTrace("cscope1", 400);
  SimConfig config = BaselineConfig("cscope1", 2);
  config.hint_fault.wrong_block_rate = 0.15;
  config.hint_fault.reorder_window = 6;
  config.hint_fault.stale_lookahead = 24;
  config.paranoid = true;
  for (PolicyKind kind : {PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                          PolicyKind::kForestall}) {
    DiffReport report = RunDifferential(trace, config, kind);
    EXPECT_TRUE(report.consistent) << ToString(kind) << "\n" << report.ToString();
  }
}

TEST(FaultLifecycle, WrongHintsSurfaceAsUnusedPrefetches) {
  Trace trace = TestTrace("cscope1", 600);
  SimConfig config = BaselineConfig("cscope1", 2);
  // A small cache forces evictions: an unused prefetch is only *observed*
  // as wasted when its buffer is reclaimed unread.
  config.cache_blocks = 32;
  config.hint_fault.wrong_block_rate = 0.5;
  config.obs.collect = true;
  config.paranoid = true;
  RunResult r = RunOne(trace, config, PolicyKind::kAggressive);
  ASSERT_NE(r.obs, nullptr);
  EXPECT_GT(r.obs->prefetch_unused, 0)
      << "half the hints point at the wrong block; some prefetches must die unread";
  ExpectExactBuckets(r, "aggressive+wrong-hints");
}

// --------------------------------------------------------------------------
// Contradictory fault flags are rejected with a file:line diagnostic
// --------------------------------------------------------------------------

void ExpectRejected(const SimConfig& config, const char* needle) {
  try {
    ValidateSimConfig(config);
    FAIL() << "expected SimError mentioning '" << needle << "'";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos) << what;
    // The validator prefixes its file:line so the rejection points at the
    // rule that fired.
    EXPECT_NE(what.find("simulator.cc:"), std::string::npos) << what;
  }
}

TEST(FaultLifecycle, EmptyOutageWindowIsRejected) {
  SimConfig config = BaselineConfig("cscope1", 2);
  config.faults.outage_disk = DiskId{0};
  config.faults.outage_start = TimeNs{0} + MsToNs(100);
  config.faults.outage_end = TimeNs{0} + MsToNs(100);
  ExpectRejected(config, "outage");
}

TEST(FaultLifecycle, OutageOnFailStoppedDiskIsRejected) {
  SimConfig config = BaselineConfig("cscope1", 2);
  config.faults.fail_disk = DiskId{0};
  config.faults.fail_after = TimeNs{0} + MsToNs(10);
  config.faults.outage_disk = DiskId{0};
  config.faults.outage_start = TimeNs{0} + MsToNs(100);
  config.faults.outage_end = TimeNs{0} + MsToNs(200);
  ExpectRejected(config, "fail_disk");
}

TEST(FaultLifecycle, OutageBeyondTraceHorizonIsRejected) {
  Trace trace = TestTrace("cscope1", 100);
  SimConfig config = BaselineConfig("cscope1", 2);
  config.faults.outage_disk = DiskId{0};
  config.faults.outage_start = TimeNs{0} + MsToNs(1000000000);
  config.faults.outage_end = TimeNs{0} + MsToNs(1000001000);
  try {
    ValidateSimConfigForTrace(config, trace);
    FAIL() << "expected SimError: outage can never fire within the horizon";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("horizon"), std::string::npos) << e.what();
  }
}

// --------------------------------------------------------------------------
// Paranoid auditor plumbing
// --------------------------------------------------------------------------

TEST(FaultLifecycle, InvariantErrorsAreGrepable) {
  SimError e = SimError::Invariant("cache-occupancy", "resident 5 exceeds capacity 4");
  EXPECT_NE(std::string(e.what()).find("invariant violated [cache-occupancy]"),
            std::string::npos);
}

TEST(FaultLifecycle, ParanoidRunMatchesNonParanoidByteForByte) {
  Trace trace = TestTrace("cscope1", 400);
  for (PolicyKind kind : kAllPolicies) {
    SimConfig plain = OutageConfig(2);
    plain.paranoid = false;
    RunResult fast = RunOne(trace, plain, kind);
    RunResult audited = RunOne(trace, OutageConfig(2), kind);
    std::vector<std::string> why;
    EXPECT_TRUE(ResultsExactlyEqual(fast, audited, &why))
        << ToString(kind) << ": the auditor must observe, never perturb";
  }
}

}  // namespace
}  // namespace pfc
