// Unit tests for the pfc_analyze library (src/analyze): the comment/string
// stripper (including the raw-string-literal regression the old pfc_lint
// stripper shipped with), include extraction and cycle detection, layer
// manifest parsing and assignment, NOLINT/baseline suppression precedence,
// SARIF shape, and the enum/counter parsers — the latter run against the
// real tree (PFC_REPO_ROOT) so drift in the real headers breaks the build
// here, not just in the tree-wide ctest gate.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "analyze/accounting.h"
#include "analyze/analyzer.h"
#include "analyze/baseline.h"
#include "analyze/enum_sync.h"
#include "analyze/include_graph.h"
#include "analyze/project.h"
#include "analyze/sarif.h"
#include "analyze/source.h"
#include "gtest/gtest.h"

namespace pfc::analyze {
namespace {

bool AnyOf(const std::vector<Finding>& fs, const std::string& file) {
  for (const Finding& f : fs) {
    if (f.file == file) {
      return true;
    }
  }
  return false;
}

// --- stripper --------------------------------------------------------------

TEST(StrippedLines, CommentsAndStrings) {
  const std::vector<std::string> lines = StrippedLines(
      "int a = 1; // time(\n"
      "const char* s = \"rand()\"; /* system_clock */ int b = 2;\n"
      "char c = '\\'';\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "int a = 1; ");
  EXPECT_EQ(lines[1], "const char* s = \"\";  int b = 2;");
  EXPECT_EQ(lines[2], "char c = '';");
}

TEST(StrippedLines, RawStringWithQuoteAndSlashes) {
  // The regression: an unbalanced `"` and a `//` inside a raw string body
  // desynced the old stripper, hiding the rand() on the next line.
  const std::vector<std::string> lines = StrippedLines(
      "const char* p = R\"(x \" y // z)\";\n"
      "int f() { return rand(); }\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "const char* p = \"\";");
  EXPECT_EQ(lines[1], "int f() { return rand(); }");
}

TEST(StrippedLines, RawStringDelimiterAndPrefixes) {
  // A `)"` inside the body is not a terminator when a delimiter is used.
  const std::vector<std::string> lines =
      StrippedLines("auto p = R\"x(body )\" still body)x\"; int tail = 1;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "auto p = \"\"; int tail = 1;");

  const std::vector<std::string> u8 = StrippedLines("auto q = u8R\"(a \" b)\"; int z;\n");
  ASSERT_EQ(u8.size(), 1u);
  EXPECT_EQ(u8[0], "auto q = \"\"; int z;");

  // An identifier ending in R followed by a string is NOT a raw literal.
  const std::vector<std::string> ident = StrippedLines("int x = MACRO_R\"abc\" + f();\n");
  ASSERT_EQ(ident.size(), 1u);
  EXPECT_EQ(ident[0], "int x = MACRO_R\"\" + f();");
}

TEST(StrippedLines, MultiLineRawStringKeepsLineNumbers) {
  const std::vector<std::string> lines = StrippedLines(
      "auto p = R\"(line one\n"
      "line two \" //\n"
      "line three)\"; int after = 1;\n"
      "int last = 2;\n");
  ASSERT_EQ(lines.size(), 4u);
  // The `""` replacement lands on the opening line; the body lines are
  // blank; everything after the closing quote survives in place.
  EXPECT_EQ(lines[0], "auto p = \"\"");
  EXPECT_EQ(lines[1], "");
  EXPECT_EQ(lines[2], "; int after = 1;");
  EXPECT_EQ(lines[3], "int last = 2;");
}

// --- include graph ---------------------------------------------------------

Project TinyTree(std::vector<std::pair<std::string, std::string>> files) {
  return ProjectFromMemory(std::move(files));
}

TEST(IncludeGraph, ExtractionAndResolution) {
  const Project p = TinyTree({
      {"src/core/a.h", "#include \"core/b.h\"\n#include <vector>\n// #include \"core/fake.h\"\n"},
      {"src/core/b.h", "#include \"util/c.h\"\n"},
      {"src/util/c.h", "int c;\n"},
  });
  const std::vector<IncludeEdge> edges = ExtractIncludes(p);
  ASSERT_EQ(edges.size(), 2u);  // angle include and commented include skipped
  EXPECT_TRUE(edges[0].resolved);
  EXPECT_EQ(p.files[edges[0].to].rel, "src/core/b.h");
  EXPECT_TRUE(edges[1].resolved);
  EXPECT_EQ(p.files[edges[1].to].rel, "src/util/c.h");
}

TEST(IncludeGraph, CycleDetection) {
  const Project p = TinyTree({
      {"src/core/a.h", "#include \"core/b.h\"\n"},
      {"src/core/b.h", "#include \"core/c.h\"\n"},
      {"src/core/c.h", "#include \"core/a.h\"\n"},
      {"src/core/d.h", "#include \"core/a.h\"\n"},  // enters, not on, the cycle
  });
  const auto cycles = FindIncludeCycles(p, ExtractIncludes(p));
  ASSERT_EQ(cycles.size(), 1u);
  ASSERT_EQ(cycles[0].size(), 4u);  // a -> b -> c -> a
  EXPECT_EQ(cycles[0].front(), cycles[0].back());
}

TEST(IncludeGraph, AcyclicTreeHasNoCycles) {
  const Project p = TinyTree({
      {"src/core/a.h", "#include \"core/b.h\"\n#include \"core/c.h\"\n"},
      {"src/core/b.h", "#include \"core/c.h\"\n"},  // diamond, not a cycle
      {"src/core/c.h", "int c;\n"},
  });
  EXPECT_TRUE(FindIncludeCycles(p, ExtractIncludes(p)).empty());
}

TEST(LayerManifestTest, ParseAndLongestPrefix) {
  LayerManifest m;
  std::string error;
  ASSERT_TRUE(LayerManifest::Parse("# comment\n"
                                   "[[layer]]\n"
                                   "name = \"low\"\n"
                                   "paths = [\"src/util\", \"src/obs/event.h\"]\n"
                                   "[[layer]]\n"
                                   "name = \"high\"\n"
                                   "paths = [\"src/obs\"]\n",
                                   &m, &error))
      << error;
  ASSERT_EQ(m.layers.size(), 2u);
  EXPECT_EQ(m.AssignLayer("src/util/rng.cc"), 0);
  EXPECT_EQ(m.AssignLayer("src/obs/event.h"), 0);   // file entry beats dir prefix
  EXPECT_EQ(m.AssignLayer("src/obs/export.cc"), 1);
  EXPECT_EQ(m.AssignLayer("src/core/simulator.cc"), -1);
  EXPECT_EQ(m.AssignLayer("src/obs_other/x.cc"), -1);  // prefix match is per-component

  EXPECT_FALSE(LayerManifest::Parse("name = \"orphan\"\n", &m, &error));
  EXPECT_FALSE(LayerManifest::Parse("", &m, &error));
}

TEST(Layering, UpwardIncludeFlaggedAndNolintEscapes) {
  const Project p = TinyTree({
      {"analyze/layers.toml",
       "[[layer]]\nname = \"low\"\npaths = [\"src/util\"]\n"
       "[[layer]]\nname = \"high\"\npaths = [\"src/core\"]\n"},
      {"src/core/high.h", "int h;\n"},
      {"src/util/bad.h", "#include \"core/high.h\"\n"},
      {"src/util/ok.h", "#include \"core/high.h\"  // NOLINT(pfc-layering)\n"},
  });
  std::vector<Finding> out;
  CheckLayering(p, "analyze/layers.toml", &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].file, "src/util/bad.h");
  EXPECT_EQ(out[0].rule, "layering");
  EXPECT_NE(out[0].message.find("higher layer 'high'"), std::string::npos);
}

TEST(Layering, UncoveredFileIsAFinding) {
  const Project p = TinyTree({
      {"analyze/layers.toml", "[[layer]]\nname = \"only\"\npaths = [\"src/util\"]\n"},
      {"src/core/stray.cc", "int s;\n"},
      {"src/util/fine.cc", "int f;\n"},
  });
  std::vector<Finding> out;
  CheckLayering(p, "analyze/layers.toml", &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].file, "src/core/stray.cc");
}

// --- suppression precedence ------------------------------------------------

TEST(Suppression, NolintBeatsBaselineBeatsReport) {
  const Project p = TinyTree({
      {"analyze/layers.toml", "[[layer]]\nname = \"core\"\npaths = [\"src/core\"]\n"},
      {"src/core/nolinted.cc", "int f() { return rand(); }  // NOLINT(pfc-nondeterminism)\n"},
      {"src/core/baselined.cc", "int g() { return rand(); }\n"},
      {"src/core/reported.cc", "int h() { return rand(); }\n"},
  });
  // First pass, empty baseline: the NOLINT'd file never produces a finding
  // at all — not even a raw one — while the other two do.
  const AnalysisResult all = Analyze(p, Baseline{});
  EXPECT_FALSE(AnyOf(all.raw_findings, "src/core/nolinted.cc"));
  EXPECT_TRUE(AnyOf(all.findings, "src/core/baselined.cc"));
  EXPECT_TRUE(AnyOf(all.findings, "src/core/reported.cc"));

  // Second pass: baseline one of them. It moves out of findings but stays
  // in raw_findings; the bogus entry is stale.
  const Finding* target = nullptr;
  for (const Finding& f : all.findings) {
    if (f.file == "src/core/baselined.cc") {
      target = &f;
    }
  }
  ASSERT_NE(target, nullptr);
  const Baseline b = Baseline::Parse(Baseline::Render({*target}) +
                                     "raw-unit\tsrc/core/gone.cc\told message\n");
  const AnalysisResult filtered = Analyze(p, b);
  EXPECT_FALSE(AnyOf(filtered.findings, "src/core/baselined.cc"));
  EXPECT_TRUE(AnyOf(filtered.findings, "src/core/reported.cc"));
  EXPECT_TRUE(AnyOf(filtered.raw_findings, "src/core/baselined.cc"));
  ASSERT_EQ(filtered.stale_baseline.size(), 1u);
  EXPECT_NE(filtered.stale_baseline[0].find("gone.cc"), std::string::npos);
}

// --- SARIF -----------------------------------------------------------------

TEST(Sarif, MinimalShapeAndEscaping) {
  const std::vector<Finding> findings = {
      {"src/core/a.cc", 7, "raw-unit", "quote \" backslash \\ tab\t"},
      {"src/check/ref_sim.cc", 0, "policy-parity", "whole-file finding"},
  };
  const std::string log = SarifString(findings, {{"raw-unit", "desc"}, {"policy-parity", "d2"}});
  EXPECT_NE(log.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(log.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(log.find("\"name\": \"pfc_analyze\""), std::string::npos);
  EXPECT_NE(log.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(log.find("quote \\\" backslash \\\\ tab\\t"), std::string::npos);
  // Whole-file findings carry no region at all (startLine must be >= 1).
  EXPECT_EQ(log.find("\"startLine\": 0"), std::string::npos);
  // Both rule ids appear in driver metadata and results.
  EXPECT_NE(log.find("\"id\": \"raw-unit\""), std::string::npos);
  EXPECT_NE(log.find("\"ruleId\": \"policy-parity\""), std::string::npos);
}

// --- parsers against the real tree ----------------------------------------

TEST(RealTree, EnumParsersMatchRealHeaders) {
  const Project p = LoadProject(PFC_REPO_ROOT);
  const SourceFile* event = p.Find("src/obs/event.h");
  ASSERT_NE(event, nullptr);
  const std::vector<std::string> causes = ParseEnumerators(event->JoinedCode(), "StallCause");
  EXPECT_EQ(causes.front(), "kColdMiss");
  EXPECT_EQ(causes.back(), "kNumCauses");
  EXPECT_NE(std::find(causes.begin(), causes.end(), "kOutage"), causes.end());

  const std::vector<std::string> kinds = ParseEnumerators(event->JoinedCode(), "ObsEventKind");
  EXPECT_GE(kinds.size(), 20u);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), "kPrefetchUseful"), kinds.end());

  const SourceFile* exp = p.Find("src/harness/experiment.h");
  ASSERT_NE(exp, nullptr);
  const std::vector<std::string> policies = ParseEnumerators(exp->JoinedCode(), "PolicyKind");
  ASSERT_EQ(policies.size(), 6u);
  EXPECT_EQ(policies[0], "kDemand");
  EXPECT_EQ(policies[5], "kForestall");
}

TEST(RealTree, RunResultCounterFieldsParsed) {
  const Project p = LoadProject(PFC_REPO_ROOT);
  const SourceFile* header = p.Find("src/core/run_result.h");
  ASSERT_NE(header, nullptr);
  const std::vector<CounterField> fields = ParseCounterFields(header->code, "RunResult");
  std::vector<std::string> names;
  for (const CounterField& f : fields) {
    names.push_back(f.name);
  }
  for (const char* expected : {"fetches", "demand_fetches", "prefetch_issued", "compute_time",
                               "stall_time", "elapsed_time", "outage_stall_ns"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }
  // Non-counter members must not leak in.
  EXPECT_EQ(std::find(names.begin(), names.end(), "trace_name"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "avg_fetch_ms"), names.end());
}

TEST(RealTree, WholeTreeIsCleanWithEmptyBaseline) {
  const Project p = LoadProject(PFC_REPO_ROOT);
  const AnalysisResult result = Analyze(p, Baseline::Load(std::string(PFC_REPO_ROOT)
                                                          + "/analyze/baseline.txt"));
  for (const Finding& f : result.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.rule << ": " << f.message;
  }
  EXPECT_TRUE(result.stale_baseline.empty());
}

}  // namespace
}  // namespace pfc::analyze
