#include <gtest/gtest.h>

#include <algorithm>

#include "core/policies/demand.h"
#include "core/policies/reverse_aggressive.h"
#include "core/simulator.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace pfc {
namespace {

Trace LoopTrace(int64_t blocks, int64_t reads, DurNs compute) {
  Trace t("loop");
  for (int64_t i = 0; i < reads; ++i) {
    t.Append(BlockId{i % blocks}, compute);
  }
  return t;
}

SimConfig Cfg(int cache, int disks) {
  SimConfig c;
  c.cache_blocks = cache;
  c.num_disks = disks;
  return c;
}

TEST(ReverseAggressive, ScheduleCoversEveryDistinctBlock) {
  Trace t = LoopTrace(40, 400, MsToNs(1));
  SimConfig c = Cfg(16, 2);
  ReverseAggressivePolicy policy(ReverseAggressivePolicy::Params{8, 4});
  Simulator sim(t, c, &policy);
  RunResult r = sim.Run();
  // Every distinct block must be fetched at least once; fetches minus
  // evictions equals the cold-cache fill.
  EXPECT_GE(policy.scheduled_fetches(), 40);
  EXPECT_EQ(policy.scheduled_fetches() - policy.scheduled_evictions(), 16);
  EXPECT_GE(r.fetches, 40);
}

TEST(ReverseAggressive, SmallWorkingSetNeedsNoEvictions) {
  // Distinct blocks fit in the cache: the schedule is one cold fetch per
  // block and nothing else.
  Trace t = LoopTrace(10, 200, MsToNs(1));
  SimConfig c = Cfg(64, 2);
  ReverseAggressivePolicy policy(ReverseAggressivePolicy::Params{8, 4});
  Simulator sim(t, c, &policy);
  RunResult r = sim.Run();
  EXPECT_EQ(policy.scheduled_fetches(), 10);
  EXPECT_EQ(policy.scheduled_evictions(), 0);
  EXPECT_EQ(r.fetches, 10);
}

TEST(ReverseAggressive, BeatsDemandFetching) {
  Trace t = MakeTrace("ld").Prefix(2000);
  t.set_name("ld-prefix");
  SimConfig c = Cfg(512, 2);
  ReverseAggressivePolicy policy(ReverseAggressivePolicy::Params{16, 8});
  RunResult rev = Simulator(t, c, &policy).Run();
  DemandPolicy demand;
  RunResult dem = Simulator(t, c, &demand).Run();
  EXPECT_LT(rev.elapsed_time, dem.elapsed_time);
  EXPECT_LT(rev.stall_time, dem.stall_time);
}

TEST(ReverseAggressive, MostFetchesAreScheduledNotDemand) {
  Trace t = MakeTrace("cscope1").Prefix(4000);
  SimConfig c = Cfg(512, 2);
  ReverseAggressivePolicy policy(ReverseAggressivePolicy::Params{32, 8});
  RunResult r = Simulator(t, c, &policy).Run();
  // The offline schedule should anticipate nearly everything; demand
  // fetches only happen when real disk timings drift from the model.
  EXPECT_LT(r.demand_fetches, r.fetches / 5);
}

TEST(ReverseAggressive, SmallerFEstimateIsMoreAggressive) {
  // Section 4.3: a smaller F produces a more aggressive schedule that keeps
  // the disk busier. On an I/O-bound loop that should mean less stall than
  // a hopelessly conservative estimate.
  Trace t = LoopTrace(3000, 9000, MsToNs(1));
  SimConfig c = Cfg(1280, 1);
  RunResult aggressive_sched;
  RunResult conservative_sched;
  {
    ReverseAggressivePolicy p(ReverseAggressivePolicy::Params{4, 16});
    aggressive_sched = Simulator(t, c, &p).Run();
  }
  {
    ReverseAggressivePolicy p(ReverseAggressivePolicy::Params{512, 16});
    conservative_sched = Simulator(t, c, &p).Run();
  }
  EXPECT_LT(aggressive_sched.stall_time, conservative_sched.stall_time);
}

TEST(ReverseAggressive, DeterministicAcrossRuns) {
  Trace t = MakeTrace("postgres-select").Prefix(1500);
  SimConfig c = Cfg(1280, 3);
  ReverseAggressivePolicy p1(ReverseAggressivePolicy::Params{64, 16});
  ReverseAggressivePolicy p2(ReverseAggressivePolicy::Params{64, 16});
  RunResult a = Simulator(t, c, &p1).Run();
  RunResult b = Simulator(t, c, &p2).Run();
  EXPECT_EQ(a.elapsed_time, b.elapsed_time);
  EXPECT_EQ(a.fetches, b.fetches);
}

TEST(ReverseAggressive, HandlesSingleReferenceTrace) {
  Trace t("tiny");
  t.Append(BlockId{5}, MsToNs(1));
  SimConfig c = Cfg(4, 2);
  ReverseAggressivePolicy p(ReverseAggressivePolicy::Params{8, 4});
  RunResult r = Simulator(t, c, &p).Run();
  EXPECT_EQ(r.fetches, 1);
}

}  // namespace
}  // namespace pfc
