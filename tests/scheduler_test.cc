#include <gtest/gtest.h>

#include <vector>

#include "disk/scheduler.h"

namespace pfc {
namespace {

QueuedRequest Req(int64_t disk_block, uint64_t seq) {
  QueuedRequest r;
  r.logical_block = BlockId{disk_block};
  r.disk_block = BlockId{disk_block};
  r.enqueue_time = TimeNs{0};
  r.seq = seq;
  return r;
}

std::vector<int64_t> DrainOrder(RequestScheduler* s, int64_t head) {
  std::vector<int64_t> order;
  while (!s->empty()) {
    QueuedRequest r = s->PopNext(BlockId{head});
    order.push_back(r.disk_block.v());
    head = r.disk_block.v();
  }
  return order;
}

TEST(Scheduler, FcfsPreservesArrivalOrder) {
  RequestScheduler s(SchedDiscipline::kFcfs);
  s.Enqueue(Req(50, 1));
  s.Enqueue(Req(10, 2));
  s.Enqueue(Req(90, 3));
  EXPECT_EQ(DrainOrder(&s, 0), (std::vector<int64_t>{50, 10, 90}));
}

TEST(Scheduler, CscanAscendingWithWrap) {
  RequestScheduler s(SchedDiscipline::kCscan);
  for (int64_t b : {70, 10, 40, 90, 20}) {
    s.Enqueue(Req(b, static_cast<uint64_t>(b)));
  }
  // Head at 35: serve 40, 70, 90, then wrap to 10, 20.
  EXPECT_EQ(DrainOrder(&s, 35), (std::vector<int64_t>{40, 70, 90, 10, 20}));
}

TEST(Scheduler, CscanExactHeadPosition) {
  RequestScheduler s(SchedDiscipline::kCscan);
  s.Enqueue(Req(35, 1));
  s.Enqueue(Req(30, 2));
  // A request at the head position is "at or past" the head.
  QueuedRequest r = s.PopNext(BlockId{35});
  EXPECT_EQ(r.disk_block, BlockId{35});
}

TEST(Scheduler, ScanReversesAtEnds) {
  RequestScheduler s(SchedDiscipline::kScan);
  for (int64_t b : {70, 10, 40, 90, 20}) {
    s.Enqueue(Req(b, static_cast<uint64_t>(b)));
  }
  // Head at 35 moving up: 40, 70, 90; then down: 20, 10.
  EXPECT_EQ(DrainOrder(&s, 35), (std::vector<int64_t>{40, 70, 90, 20, 10}));
}

TEST(Scheduler, SstfPicksNearest) {
  RequestScheduler s(SchedDiscipline::kSstf);
  for (int64_t b : {100, 44, 60, 10}) {
    s.Enqueue(Req(b, static_cast<uint64_t>(b)));
  }
  // Head 50: 44 (d=6), then 60 (d=16), then 100 (d=40)... from 60: 100 is
  // 40 away, 10 is 50 away -> 100 first.
  EXPECT_EQ(DrainOrder(&s, 50), (std::vector<int64_t>{44, 60, 100, 10}));
}

TEST(Scheduler, SstfTieBreaksBySeq) {
  RequestScheduler s(SchedDiscipline::kSstf);
  s.Enqueue(Req(60, 5));
  s.Enqueue(Req(40, 2));  // same distance from 50, earlier arrival
  QueuedRequest r = s.PopNext(BlockId{50});
  EXPECT_EQ(r.disk_block, BlockId{40});
}

TEST(Scheduler, ClearEmptiesQueue) {
  RequestScheduler s(SchedDiscipline::kCscan);
  s.Enqueue(Req(1, 1));
  s.Clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(Scheduler, ToStringNames) {
  EXPECT_EQ(ToString(SchedDiscipline::kFcfs), "fcfs");
  EXPECT_EQ(ToString(SchedDiscipline::kCscan), "cscan");
  EXPECT_EQ(ToString(SchedDiscipline::kScan), "scan");
  EXPECT_EQ(ToString(SchedDiscipline::kSstf), "sstf");
}

}  // namespace
}  // namespace pfc
