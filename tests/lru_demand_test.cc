#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "util/rng.h"

namespace pfc {
namespace {

Trace LoopTrace(int64_t blocks, int64_t reads) {
  Trace t("loop");
  for (int64_t i = 0; i < reads; ++i) {
    t.Append(BlockId{i % blocks}, MsToNs(1));
  }
  return t;
}

TEST(LruDemand, CyclicLoopIsLruWorstCase) {
  // A loop one block larger than the cache: LRU misses every reference
  // after warmup (the classic pathology); MIN hits (K-1)/N of the time.
  const int64_t n = 33;
  Trace t = LoopTrace(n, n * 10);
  SimConfig c;
  c.cache_blocks = 32;
  c.num_disks = 1;
  RunResult lru = RunOne(t, c, PolicyKind::kDemandLru);
  RunResult min = RunOne(t, c, PolicyKind::kDemand);
  EXPECT_EQ(lru.fetches, t.size());  // every reference misses under LRU
  EXPECT_LT(min.fetches, t.size() / 2);
  EXPECT_LT(min.elapsed_time, lru.elapsed_time);
}

TEST(LruDemand, MatchesMinWhenWorkingSetFits) {
  Trace t = LoopTrace(20, 200);
  SimConfig c;
  c.cache_blocks = 64;
  c.num_disks = 1;
  RunResult lru = RunOne(t, c, PolicyKind::kDemandLru);
  RunResult min = RunOne(t, c, PolicyKind::kDemand);
  EXPECT_EQ(lru.fetches, 20);
  EXPECT_EQ(min.fetches, 20);
}

TEST(LruDemand, RecencyFavorsHotBlocks) {
  // 80/20 hot-cold: LRU keeps the hot set and lands close to MIN.
  Rng rng(5);
  Trace t("hotcold");
  for (int64_t i = 0; i < 4000; ++i) {
    bool hot = rng.UniformDouble() < 0.8;
    t.Append(BlockId{hot ? rng.UniformInt(0, 49) : 100 + rng.UniformInt(0, 1999)}, MsToNs(1));
  }
  SimConfig c;
  c.cache_blocks = 128;
  c.num_disks = 1;
  RunResult lru = RunOne(t, c, PolicyKind::kDemandLru);
  RunResult min = RunOne(t, c, PolicyKind::kDemand);
  EXPECT_LT(static_cast<double>(lru.fetches), 1.25 * static_cast<double>(min.fetches));
  EXPECT_GE(lru.fetches, min.fetches);  // MIN is optimal
}

TEST(LruDemand, WorksWithWrites) {
  Trace t = MakeCopyTrace(300, 1.0, 9);
  SimConfig c;
  c.cache_blocks = 64;
  c.num_disks = 2;
  RunResult r = RunOne(t, c, PolicyKind::kDemandLru);
  EXPECT_EQ(r.write_refs, 300);
  EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time);
}

}  // namespace
}  // namespace pfc
