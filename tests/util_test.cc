#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/flat_set.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/time_util.h"

namespace pfc {
namespace {

TEST(TimeUtil, Conversions) {
  EXPECT_EQ(MsToNs(1.0).ns(), 1000000);
  EXPECT_EQ(UsToNs(1.0).ns(), 1000);
  EXPECT_EQ(SecToNs(1.0).ns(), 1000000000);
  EXPECT_DOUBLE_EQ(NsToMs(DurNs{1500000}), 1.5);
  EXPECT_DOUBLE_EQ(NsToSec(DurNs{2500000000LL}), 2.5);
}

TEST(TimeUtil, FormatDuration) {
  EXPECT_EQ(FormatDuration(SecToNs(1.5)), "1.500 s");
  EXPECT_EQ(FormatDuration(MsToNs(2.25)), "2.250 ms");
  EXPECT_EQ(FormatDuration(DurNs{500}), "500 ns");
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint32_t v = rng.UniformU32(10);
    EXPECT_LT(v, 10u);
    int64_t w = rng.UniformInt(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformU32CoversRange) {
  Rng rng(11);
  std::set<uint32_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.UniformU32(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Exponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, PoissonMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(3.0));
  }
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SkewedRankInRangeAndSkewed) {
  Rng rng(13);
  int64_t low_half = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    int64_t r = rng.SkewedRank(100, 2.0);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 100);
    if (r < 50) {
      ++low_half;
    }
  }
  // Skew 2.0 concentrates well over half the mass in the low half.
  EXPECT_GT(low_half, n * 6 / 10);
}

TEST(FlatSet, InsertEraseContainsMin) {
  FlatSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(BlockId{30}));
  EXPECT_TRUE(s.insert(BlockId{10}));
  EXPECT_TRUE(s.insert(BlockId{20}));
  EXPECT_FALSE(s.insert(BlockId{20}));  // duplicate
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.min(), BlockId{10});
  EXPECT_TRUE(s.contains(BlockId{20}));
  EXPECT_FALSE(s.contains(BlockId{15}));
  EXPECT_TRUE(s.erase(BlockId{10}));
  EXPECT_FALSE(s.erase(BlockId{10}));
  EXPECT_EQ(s.min(), BlockId{20});
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(FlatSet, MatchesStdSetUnderRandomOps) {
  Rng rng(7);
  FlatSet flat;
  std::set<BlockId> ref;
  for (int i = 0; i < 2000; ++i) {
    BlockId key{rng.UniformInt(0, 63)};
    if (rng.UniformDouble() < 0.5) {
      EXPECT_EQ(flat.insert(key), ref.insert(key).second);
    } else {
      EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
    }
    ASSERT_EQ(flat.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(flat.min(), *ref.begin());
    }
  }
  EXPECT_TRUE(std::equal(flat.begin(), flat.end(), ref.begin(), ref.end()));
}

TEST(RunningStat, Basics) {
  RunningStat s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  EXPECT_NEAR(s.variance(), 1.0, 1e-12);
}

TEST(RunningStat, EmptyExtremaAreNaN) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.Add(0.0);  // a real observed zero is distinguishable from "no samples"
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, Merge) {
  RunningStat a;
  RunningStat b;
  RunningStat whole;
  for (int i = 0; i < 10; ++i) {
    double v = i * 1.5 - 3;
    (i < 5 ? a : b).Add(v);
    whole.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat filled;
  filled.Add(2.0);
  filled.Add(4.0);

  // Merging an empty accumulator in changes nothing — in particular it must
  // not drag min/max toward the empty side's sentinel state.
  RunningStat a = filled;
  a.Merge(RunningStat{});
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);

  // Merging into an empty accumulator adopts the other side wholesale.
  RunningStat b;
  b.Merge(filled);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.min(), 2.0);
  EXPECT_DOUBLE_EQ(b.max(), 4.0);

  // Empty-with-empty stays empty (and NaN-extrema'd).
  RunningStat c;
  c.Merge(RunningStat{});
  EXPECT_EQ(c.count(), 0);
  EXPECT_TRUE(std::isnan(c.min()));
  EXPECT_TRUE(std::isnan(c.max()));
}

TEST(Histogram, PercentileAndClamping) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i % 10) + 0.5);
  }
  EXPECT_EQ(h.total(), 100);
  EXPECT_NEAR(h.Percentile(0.5), 5.0, 1.1);
  h.Add(-5.0);   // clamps low
  h.Add(100.0);  // clamps high
  EXPECT_EQ(h.total(), 102);
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram empty(0.0, 10.0, 10);
  EXPECT_EQ(empty.total(), 0);
  EXPECT_DOUBLE_EQ(empty.Percentile(0.0), 0.0);   // empty pins to lo...
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(1.0), 0.0);   // ...even at fraction 1

  Histogram one(0.0, 10.0, 10);
  one.Add(3.5);
  EXPECT_DOUBLE_EQ(one.Percentile(0.5), 3.5);  // interpolates within [3, 4)
  EXPECT_DOUBLE_EQ(one.Percentile(1.0), 4.0);

  Histogram single(0.0, 8.0, 1);  // a one-bucket histogram interpolates
  single.Add(1.0);
  single.Add(7.0);
  EXPECT_DOUBLE_EQ(single.Percentile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(single.Percentile(1.0), 8.0);

  Histogram clamped(0.0, 10.0, 10);
  clamped.Add(-100.0);
  clamped.Add(1000.0);
  EXPECT_GE(clamped.Percentile(0.0), 0.0);  // clamps keep percentiles in range
  EXPECT_LE(clamped.Percentile(1.0), 10.0);
}

TEST(SlidingWindowSum, RollsOver) {
  SlidingWindowSum w(3);
  w.Add(1);
  w.Add(2);
  w.Add(3);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.sum(), 6.0);
  w.Add(10);  // evicts the 1
  EXPECT_DOUBLE_EQ(w.sum(), 15.0);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_EQ(w.size(), 3);
}

TEST(TextTable, RendersAlignedCells) {
  TextTable t;
  t.SetHeader({"name", "v1", "v2"});
  t.AddRow({"row", "1", "22"});
  t.AddSeparator();
  t.AddRow({"longer-row", "333", "4"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("longer-row"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_EQ(TextTable::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::Int(42), "42");
}

}  // namespace
}  // namespace pfc
