// Hit-run fast-forwarding (SimConfig::fast_forward, DESIGN.md §5) is a pure
// optimization: every run must produce bit-identical results with the flag
// on and off. These tests target the boundaries where the skip machinery
// could plausibly diverge — disk completions landing exactly on a reference
// boundary, injected faults mid-run, dirty write-behind buffers inside a
// would-be hit run — and then push the full differential corpus' scenario
// shapes through both settings.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/diff.h"
#include "core/sim_config.h"
#include "core/simulator.h"
#include "harness/experiment.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace pfc {
namespace {

// Runs the cell twice — fast-forwarding on, then off — and asserts exact
// equality of every RunResult field (bitwise for doubles).
void ExpectFastForwardInvariant(const Trace& trace, SimConfig config, PolicyKind kind,
                                const PolicyOptions& options = {}) {
  config.fast_forward = true;
  std::unique_ptr<Policy> on_policy = MakePolicy(kind, options);
  Simulator on(trace, config, on_policy.get());
  const RunResult with_ff = on.Run();

  config.fast_forward = false;
  std::unique_ptr<Policy> off_policy = MakePolicy(kind, options);
  Simulator off(trace, config, off_policy.get());
  const RunResult without_ff = off.Run();

  std::vector<std::string> why;
  EXPECT_TRUE(ResultsExactlyEqual(with_ff, without_ff, &why))
      << "fast_forward changed the result:\n"
      << ::testing::PrintToString(why);
}

const PolicyKind kAllPolicies[] = {
    PolicyKind::kDemand,        PolicyKind::kDemandLru, PolicyKind::kFixedHorizon,
    PolicyKind::kAggressive,    PolicyKind::kForestall, PolicyKind::kReverseAggressive,
};

// A long all-hit tail after a miss warmup: the configuration fast-forwarding
// was built for. Every policy must still agree with its non-skipping self.
TEST(FastForwardTest, HitHeavyLoopAgreesForEveryPolicy) {
  Trace trace("ff-loop");
  // Touch 12 blocks, then loop over them many times; the cache (16 blocks)
  // holds the whole working set, so after warmup every reference hits.
  for (int round = 0; round < 40; ++round) {
    for (int64_t b = 0; b < 12; ++b) {
      trace.Append(BlockId{b}, DurNs{500'000});
    }
  }
  SimConfig config;
  config.cache_blocks = 16;
  config.num_disks = 2;
  for (PolicyKind kind : kAllPolicies) {
    SCOPED_TRACE(ToString(kind));
    ExpectFastForwardInvariant(trace, config, kind);
  }
}

// Disk completions landing exactly on a reference boundary: with zero
// compute time between references, the event-time cap and the reference
// clock coincide repeatedly, exercising the strict "consume before the
// event fires" edge of the binary-search cap.
TEST(FastForwardTest, RunBoundariesAtDiskCompletionTimes) {
  for (int64_t compute_ns : {int64_t{0}, int64_t{1}, int64_t{1'000'000}}) {
    SCOPED_TRACE(compute_ns);
    Trace trace("ff-boundary");
    // Interleave a resident working set with fresh blocks so prefetches are
    // always in flight while hit runs form.
    for (int round = 0; round < 30; ++round) {
      for (int64_t b = 0; b < 6; ++b) {
        trace.Append(BlockId{b}, DurNs{compute_ns});
      }
      trace.Append(BlockId{100 + round}, DurNs{compute_ns});
    }
    SimConfig config;
    config.cache_blocks = 10;
    config.num_disks = 3;
    for (PolicyKind kind : kAllPolicies) {
      SCOPED_TRACE(ToString(kind));
      ExpectFastForwardInvariant(trace, config, kind);
    }
  }
}

// Faults inside and around hit runs: media errors retry with backoff, a
// fail-stopped disk flips DiskFailed answers mid-run. The skip path must
// never jump over a retry or recovery event.
TEST(FastForwardTest, FaultInjectedRunsAgree) {
  Trace trace("ff-faults");
  Rng rng(SplitMix64(2026));
  for (int64_t i = 0; i < 400; ++i) {
    const int64_t block = rng.UniformInt(0, 1) == 0 ? rng.UniformInt(0, 11)
                                                    : rng.UniformInt(0, 59);
    trace.Append(BlockId{block}, DurNs{rng.UniformInt(0, 2'000'000)});
  }
  SimConfig config;
  config.cache_blocks = 20;
  config.num_disks = 4;

  SimConfig media = config;
  media.faults.media_error_rate = 0.1;
  media.faults.seed = 7;

  SimConfig failstop = config;
  failstop.faults.fail_disk = DiskId{1};
  failstop.faults.fail_after = TimeNs{0} + MsToNs(30);

  SimConfig slow = config;
  slow.faults.slow_disk = DiskId{0};
  slow.faults.slow_factor = 4.0;
  slow.faults.slow_after = TimeNs{0} + MsToNs(10);

  for (const SimConfig& c : {media, failstop, slow}) {
    for (PolicyKind kind : kAllPolicies) {
      SCOPED_TRACE(ToString(kind));
      ExpectFastForwardInvariant(trace, c, kind);
    }
  }
}

// Dirty write-behind buffers inside a would-be hit run: the engine only
// attempts a skip with a clean cache, and a write reference ends the run.
// Both conditions are exercised by salting a hit-heavy loop with writes.
TEST(FastForwardTest, WriteBehindDirtyBlocksInsideRunsAgree) {
  for (bool write_through : {false, true}) {
    SCOPED_TRACE(write_through ? "write-through" : "write-behind");
    Trace trace("ff-writes");
    Rng rng(SplitMix64(99));
    for (int round = 0; round < 35; ++round) {
      for (int64_t b = 0; b < 10; ++b) {
        if (rng.UniformInt(0, 9) == 0) {
          trace.AppendWrite(BlockId{b}, DurNs{400'000});
        } else {
          trace.Append(BlockId{b}, DurNs{400'000});
        }
      }
    }
    SimConfig config;
    config.cache_blocks = 14;
    config.num_disks = 2;
    config.write_through = write_through;
    // Reverse aggressive is read-only by contract, so it sits this one out.
    for (PolicyKind kind : {PolicyKind::kDemand, PolicyKind::kDemandLru,
                            PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                            PolicyKind::kForestall}) {
      SCOPED_TRACE(ToString(kind));
      ExpectFastForwardInvariant(trace, config, kind);
    }
  }
}

// Partial hints change what the prefetchers may act on; the quiescence
// predicates must stay exact when some of the run is undisclosed.
TEST(FastForwardTest, PartialHintsAgree) {
  Trace trace("ff-hints");
  for (int round = 0; round < 40; ++round) {
    for (int64_t b = 0; b < 8; ++b) {
      trace.Append(BlockId{b}, DurNs{600'000});
    }
    trace.Append(BlockId{200 + round}, DurNs{600'000});
  }
  SimConfig config;
  config.cache_blocks = 12;
  config.num_disks = 2;
  config.hint_coverage = 0.7;
  config.hint_seed = 5;
  for (PolicyKind kind :
       {PolicyKind::kDemand, PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
        PolicyKind::kForestall}) {
    SCOPED_TRACE(ToString(kind));
    ExpectFastForwardInvariant(trace, config, kind);
  }
}

// The differential oracle is the ultimate arbiter: RefSim never
// fast-forwards, so running the optimized engine against it with the flag
// forced on proves the skip path end to end on paper-trace prefixes.
TEST(FastForwardTest, DifferentialAgainstRefSimWithFastForwardForcedOn) {
  struct Cell {
    const char* trace;
    PolicyKind policy;
    int disks;
    int cache_blocks;
  };
  for (const Cell& cell : std::vector<Cell>{{"postgres-select", PolicyKind::kDemand, 2, 64},
                                            {"dinero", PolicyKind::kFixedHorizon, 4, 128},
                                            {"cscope2", PolicyKind::kAggressive, 3, 64},
                                            {"ld", PolicyKind::kForestall, 2, 96}}) {
    SCOPED_TRACE(cell.trace);
    Trace trace = MakeTrace(cell.trace).Prefix(400);
    SimConfig config;
    config.cache_blocks = cell.cache_blocks;
    config.num_disks = cell.disks;
    for (bool ff : {true, false}) {
      SCOPED_TRACE(ff ? "ff-on" : "ff-off");
      config.fast_forward = ff;
      DiffReport report = RunDifferential(trace, config, cell.policy);
      EXPECT_TRUE(report.consistent) << report.ToString();
    }
  }
}

// Randomized sweep in the fuzz corpus' shape: mixed sequential/random
// traces across disciplines, placements, and cache pressures, each run
// asserted invariant under the flag.
TEST(FastForwardTest, RandomizedScenariosAgree) {
  Rng rng(SplitMix64(77));
  for (int scenario = 0; scenario < 24; ++scenario) {
    SCOPED_TRACE(scenario);
    Trace trace("ff-rand");
    const int64_t universe = rng.UniformInt(8, 60);
    int64_t block = 0;
    for (int64_t i = 0; i < 300; ++i) {
      block = rng.UniformInt(0, 2) == 0 ? rng.UniformInt(0, universe - 1)
                                        : (block + 1) % universe;
      const DurNs compute{rng.UniformInt(0, 2) == 0 ? 0 : rng.UniformInt(1, 2'000'000)};
      if (rng.UniformInt(0, 9) == 0) {
        trace.AppendWrite(BlockId{block}, compute);
      } else {
        trace.Append(BlockId{block}, compute);
      }
    }  // writes present, so draw from the write-capable policies below
    SimConfig config;
    config.cache_blocks = static_cast<int>(rng.UniformInt(4, 48));
    config.num_disks = static_cast<int>(rng.UniformInt(1, 6));
    config.discipline = static_cast<SchedDiscipline>(rng.UniformInt(0, 3));
    config.placement = static_cast<PlacementKind>(rng.UniformInt(0, 2));
    const PolicyKind kind = kAllPolicies[rng.UniformInt(0, 4)];
    SCOPED_TRACE(ToString(kind));
    ExpectFastForwardInvariant(trace, config, kind);
  }
}

}  // namespace
}  // namespace pfc
