// Property-based sweeps: simulator invariants that must hold for every
// (policy, array size, workload shape) combination.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/experiment.h"
#include "util/rng.h"

namespace pfc {
namespace {

enum class Workload { kSequentialLoop, kRandom, kHotCold, kZipfish };

std::string WorkloadName(Workload w) {
  switch (w) {
    case Workload::kSequentialLoop:
      return "SeqLoop";
    case Workload::kRandom:
      return "Random";
    case Workload::kHotCold:
      return "HotCold";
    case Workload::kZipfish:
      return "Zipfish";
  }
  return "?";
}

Trace MakeWorkload(Workload w, uint64_t seed) {
  const int64_t reads = 3000;
  Rng rng(seed);
  Trace t(WorkloadName(w));
  switch (w) {
    case Workload::kSequentialLoop:
      for (int64_t i = 0; i < reads; ++i) {
        t.Append(BlockId{i % 700}, UsToNs(static_cast<double>(500 + rng.UniformInt(0, 1500))));
      }
      break;
    case Workload::kRandom:
      for (int64_t i = 0; i < reads; ++i) {
        t.Append(BlockId{rng.UniformInt(0, 2999)}, UsToNs(static_cast<double>(200 + rng.UniformInt(0, 3000))));
      }
      break;
    case Workload::kHotCold:
      for (int64_t i = 0; i < reads; ++i) {
        bool hot = rng.UniformDouble() < 0.8;
        t.Append(BlockId{hot ? rng.UniformInt(0, 99) : 100 + rng.UniformInt(0, 4999)},
                 UsToNs(1000));
      }
      break;
    case Workload::kZipfish:
      for (int64_t i = 0; i < reads; ++i) {
        t.Append(BlockId{rng.SkewedRank(4000, 1.5)}, UsToNs(static_cast<double>(300 + rng.UniformInt(0, 2000))));
      }
      break;
  }
  return t;
}

using Param = std::tuple<PolicyKind, int, Workload>;

class SimInvariantTest : public testing::TestWithParam<Param> {};

TEST_P(SimInvariantTest, InvariantsHold) {
  auto [kind, disks, workload] = GetParam();
  Trace t = MakeWorkload(workload, 42);
  SimConfig c;
  c.cache_blocks = 256;
  c.num_disks = disks;
  RunResult r = RunOne(t, c, kind);

  // 1. The elapsed-time decomposition is exact.
  EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time);
  // 2. Stall cannot be negative; compute matches the trace.
  EXPECT_GE(r.stall_time, DurNs{0});
  EXPECT_EQ(r.compute_time, t.TotalCompute());
  // 3. Every referenced block is fetched at least once (cold cache).
  EXPECT_GE(r.fetches, t.DistinctBlocks());
  // 4. Driver time is bookkept per request.
  EXPECT_EQ(r.driver_time, r.fetches * c.driver_overhead);
  // 5. Utilizations are physical.
  ASSERT_EQ(static_cast<int>(r.per_disk_util.size()), disks);
  for (double u : r.per_disk_util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  // 6. Service time averages are sane for this disk model.
  EXPECT_GT(r.avg_fetch_ms, 0.1);
  EXPECT_LT(r.avg_fetch_ms, 50.0);
}

TEST_P(SimInvariantTest, DeterministicReplay) {
  auto [kind, disks, workload] = GetParam();
  Trace t = MakeWorkload(workload, 7);
  SimConfig c;
  c.cache_blocks = 256;
  c.num_disks = disks;
  RunResult a = RunOne(t, c, kind);
  RunResult b = RunOne(t, c, kind);
  EXPECT_EQ(a.elapsed_time, b.elapsed_time);
  EXPECT_EQ(a.fetches, b.fetches);
  EXPECT_EQ(a.stall_time, b.stall_time);
}

TEST_P(SimInvariantTest, NoWorseThanDoubleDemandElapsed) {
  // A loose safety net: no prefetching policy may catastrophically regress
  // against demand fetching on any shape (they may tie or add small driver
  // overhead, never blow up).
  auto [kind, disks, workload] = GetParam();
  if (kind == PolicyKind::kDemand) {
    GTEST_SKIP();
  }
  Trace t = MakeWorkload(workload, 13);
  SimConfig c;
  c.cache_blocks = 256;
  c.num_disks = disks;
  RunResult r = RunOne(t, c, kind);
  RunResult d = RunOne(t, c, PolicyKind::kDemand);
  EXPECT_LT(static_cast<double>(r.elapsed_time.ns()),
            1.6 * static_cast<double>(d.elapsed_time.ns()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimInvariantTest,
    testing::Combine(testing::Values(PolicyKind::kDemand, PolicyKind::kFixedHorizon,
                                     PolicyKind::kAggressive, PolicyKind::kReverseAggressive,
                                     PolicyKind::kForestall),
                     testing::Values(1, 3, 8),
                     testing::Values(Workload::kSequentialLoop, Workload::kRandom,
                                     Workload::kHotCold, Workload::kZipfish)),
    [](const testing::TestParamInfo<Param>& param_info) {
      std::string name = ToString(std::get<0>(param_info.param)) + "_d" +
                         std::to_string(std::get<1>(param_info.param)) + "_" +
                         WorkloadName(std::get<2>(param_info.param));
      for (char& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

// Scheduling disciplines must not lose or duplicate requests regardless of
// policy pressure.
class DisciplineTest : public testing::TestWithParam<SchedDiscipline> {};

TEST_P(DisciplineTest, AllRequestsServedExactlyOnce) {
  Trace t = MakeWorkload(Workload::kRandom, 21);
  SimConfig c;
  c.cache_blocks = 256;
  c.num_disks = 4;
  c.discipline = GetParam();
  RunResult r = RunOne(t, c, PolicyKind::kAggressive);
  EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time);
  EXPECT_GE(r.fetches, t.DistinctBlocks());
}

INSTANTIATE_TEST_SUITE_P(AllDisciplines, DisciplineTest,
                         testing::Values(SchedDiscipline::kFcfs, SchedDiscipline::kCscan,
                                         SchedDiscipline::kScan, SchedDiscipline::kSstf),
                         [](const testing::TestParamInfo<SchedDiscipline>& param_info) {
                           return ToString(param_info.param);
                         });

// Placement policies likewise.
class PlacementSweepTest : public testing::TestWithParam<PlacementKind> {};

TEST_P(PlacementSweepTest, InvariantsHoldUnderAnyLayout) {
  Trace t = MakeWorkload(Workload::kSequentialLoop, 5);
  SimConfig c;
  c.cache_blocks = 256;
  c.num_disks = 4;
  c.placement = GetParam();
  RunResult r = RunOne(t, c, PolicyKind::kForestall);
  EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time);
  EXPECT_GE(r.fetches, t.DistinctBlocks());
}

INSTANTIATE_TEST_SUITE_P(AllPlacements, PlacementSweepTest,
                         testing::Values(PlacementKind::kStriped, PlacementKind::kContiguous,
                                         PlacementKind::kGroupHash),
                         [](const testing::TestParamInfo<PlacementKind>& param_info) {
                           std::string n = ToString(param_info.param);
                           for (char& ch : n) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace pfc
