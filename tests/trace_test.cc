#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/trace.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"

namespace pfc {
namespace {

Trace SmallTrace() {
  Trace t("small");
  t.Append(5, MsToNs(1));
  t.Append(6, MsToNs(2));
  t.Append(5, MsToNs(3));
  t.Append(9, MsToNs(4));
  return t;
}

TEST(Trace, BasicsAndDistinct) {
  Trace t = SmallTrace();
  EXPECT_EQ(t.size(), 4);
  EXPECT_EQ(t.block(0), 5);
  EXPECT_EQ(t.compute(1), MsToNs(2));
  EXPECT_EQ(t.DistinctBlocks(), 3);
  EXPECT_EQ(t.MaxBlock(), 10);
  EXPECT_EQ(t.TotalCompute(), MsToNs(10));
}

TEST(Trace, RescaleComputeIsExact) {
  Trace t = SmallTrace();
  t.RescaleCompute(SecToNs(2.5));
  EXPECT_EQ(t.TotalCompute(), SecToNs(2.5));
  // Relative proportions roughly preserved.
  EXPECT_LT(t.compute(0), t.compute(3));
}

TEST(Trace, ScaleComputeHalvesForFastCpu) {
  Trace t = SmallTrace();
  t.ScaleCompute(0.5);
  EXPECT_EQ(t.compute(0), MsToNs(0.5));
  EXPECT_EQ(t.TotalCompute(), MsToNs(5));
}

TEST(Trace, ReversedReversesBlocks) {
  Trace t = SmallTrace();
  Trace r = t.Reversed();
  ASSERT_EQ(r.size(), t.size());
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(r.block(i), t.block(t.size() - 1 - i));
  }
  EXPECT_EQ(r.TotalCompute(), t.TotalCompute());
}

TEST(Trace, PrefixTruncates) {
  Trace t = SmallTrace();
  Trace p = t.Prefix(2);
  EXPECT_EQ(p.size(), 2);
  EXPECT_EQ(p.block(1), 6);
  EXPECT_EQ(t.Prefix(100).size(), 4);
  EXPECT_EQ(t.Prefix(0).size(), 0);
}

TEST(TraceIo, RoundTrip) {
  Trace t = SmallTrace();
  std::string path = testing::TempDir() + "/pfc_trace_roundtrip.txt";
  ASSERT_TRUE(SaveTraceText(t, path));
  auto loaded = LoadTraceText(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name(), "small");
  ASSERT_EQ(loaded->size(), t.size());
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(loaded->block(i), t.block(i));
    EXPECT_EQ(loaded->compute(i), t.compute(i));
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMalformed) {
  std::string path = testing::TempDir() + "/pfc_trace_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# pfc-trace v1 name=bad\n12 34\nnot-a-number\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadTraceText(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails) {
  EXPECT_FALSE(LoadTraceText("/nonexistent/path/trace.txt").has_value());
}

TEST(TraceStats, ComputesPatternDiagnostics) {
  Trace t("pattern");
  for (int64_t i = 0; i < 10; ++i) {
    t.Append(i, MsToNs(1));  // fully sequential
  }
  for (int64_t i = 0; i < 10; ++i) {
    t.Append(i, MsToNs(1));  // full reuse pass
  }
  TraceStats s = ComputeTraceStats(t);
  EXPECT_EQ(s.reads, 20);
  EXPECT_EQ(s.distinct_blocks, 10);
  EXPECT_NEAR(s.sequential_fraction, 18.0 / 20.0, 1e-9);
  EXPECT_NEAR(s.reuse_fraction, 0.5, 1e-9);
  EXPECT_NEAR(s.compute_sec, 0.02, 1e-9);
  EXPECT_FALSE(ToString(s).empty());
}

}  // namespace
}  // namespace pfc
