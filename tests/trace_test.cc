#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/trace.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"

namespace pfc {
namespace {

Trace SmallTrace() {
  Trace t("small");
  t.Append(BlockId{5}, MsToNs(1));
  t.Append(BlockId{6}, MsToNs(2));
  t.Append(BlockId{5}, MsToNs(3));
  t.Append(BlockId{9}, MsToNs(4));
  return t;
}

TEST(Trace, BasicsAndDistinct) {
  Trace t = SmallTrace();
  EXPECT_EQ(t.size(), 4);
  EXPECT_EQ(t.block(TracePos{0}), BlockId{5});
  EXPECT_EQ(t.compute(TracePos{1}), MsToNs(2));
  EXPECT_EQ(t.DistinctBlocks(), 3);
  EXPECT_EQ(t.MaxBlock(), BlockId{10});
  EXPECT_EQ(t.TotalCompute(), MsToNs(10));
}

TEST(Trace, RescaleComputeIsExact) {
  Trace t = SmallTrace();
  t.RescaleCompute(SecToNs(2.5));
  EXPECT_EQ(t.TotalCompute(), SecToNs(2.5));
  // Relative proportions roughly preserved.
  EXPECT_LT(t.compute(TracePos{0}), t.compute(TracePos{3}));
}

TEST(Trace, ScaleComputeHalvesForFastCpu) {
  Trace t = SmallTrace();
  t.ScaleCompute(0.5);
  EXPECT_EQ(t.compute(TracePos{0}), MsToNs(0.5));
  EXPECT_EQ(t.TotalCompute(), MsToNs(5));
}

TEST(Trace, ReversedReversesBlocks) {
  Trace t = SmallTrace();
  Trace r = t.Reversed();
  ASSERT_EQ(r.size(), t.size());
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(r.block(TracePos{i}), t.block(TracePos{t.size() - 1 - i}));
  }
  EXPECT_EQ(r.TotalCompute(), t.TotalCompute());
}

TEST(Trace, PrefixTruncates) {
  Trace t = SmallTrace();
  Trace p = t.Prefix(2);
  EXPECT_EQ(p.size(), 2);
  EXPECT_EQ(p.block(TracePos{1}), BlockId{6});
  EXPECT_EQ(t.Prefix(100).size(), 4);
  EXPECT_EQ(t.Prefix(0).size(), 0);
}

TEST(TraceIo, RoundTrip) {
  Trace t = SmallTrace();
  std::string path = testing::TempDir() + "/pfc_trace_roundtrip.txt";
  ASSERT_TRUE(SaveTraceText(t, path));
  auto loaded = LoadTraceText(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name(), "small");
  ASSERT_EQ(loaded->size(), t.size());
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(loaded->block(TracePos{i}), t.block(TracePos{i}));
    EXPECT_EQ(loaded->compute(TracePos{i}), t.compute(TracePos{i}));
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMalformed) {
  std::string path = testing::TempDir() + "/pfc_trace_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# pfc-trace v1 name=bad\n12 34\nnot-a-number\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadTraceText(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails) {
  EXPECT_FALSE(LoadTraceText("/nonexistent/path/trace.txt").has_value());
}

// Writes `contents` to a temp file and returns the checked-load outcome.
Expected<Trace> LoadLiteral(const std::string& tag, const std::string& contents) {
  std::string path = testing::TempDir() + "/pfc_trace_" + tag + ".txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs(contents.c_str(), f);
  std::fclose(f);
  Expected<Trace> loaded = LoadTraceTextChecked(path);
  std::remove(path.c_str());
  return loaded;
}

TEST(TraceIo, CheckedLoadReportsMissingFile) {
  Expected<Trace> loaded = LoadTraceTextChecked("/nonexistent/path/trace.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("cannot open trace file"), std::string::npos);
}

TEST(TraceIo, CheckedLoadReportsMalformedRecord) {
  Expected<Trace> loaded =
      LoadLiteral("malformed", "# pfc-trace v1 name=bad\n12 34\nnot-a-number\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("malformed record 'not-a-number'"), std::string::npos);
  EXPECT_NE(loaded.error().find(":3:"), std::string::npos) << loaded.error();
}

TEST(TraceIo, CheckedLoadReportsTruncation) {
  // Header declares 4 records; the file body has 2.
  Expected<Trace> loaded = LoadLiteral("truncated", "# pfc-trace v1 n=4 name=cut\n1 10\n2 20\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("truncated trace"), std::string::npos);
  EXPECT_NE(loaded.error().find("declares 4"), std::string::npos);
  EXPECT_NE(loaded.error().find("contains 2"), std::string::npos);
}

TEST(TraceIo, CheckedLoadReportsCorruptHeader) {
  Expected<Trace> v9 = LoadLiteral("version", "# pfc-trace v9 n=1 name=future\n1 10\n");
  ASSERT_FALSE(v9.ok());
  EXPECT_NE(v9.error().find("unsupported trace format version 9"), std::string::npos);

  Expected<Trace> neg = LoadLiteral("negcount", "# pfc-trace v1 n=-3 name=bad\n1 10\n");
  ASSERT_FALSE(neg.ok());
  EXPECT_NE(neg.error().find("negative record count"), std::string::npos);
}

TEST(TraceIo, CheckedLoadReportsOutOfRangeBlock) {
  Expected<Trace> big =
      LoadLiteral("bigblock", "# pfc-trace v1 name=big\n1099511627776 10\n");
  ASSERT_FALSE(big.ok());
  EXPECT_NE(big.error().find("out of range"), std::string::npos);

  Expected<Trace> negblock = LoadLiteral("negblock", "-5 10\n");
  ASSERT_FALSE(negblock.ok());
  EXPECT_NE(negblock.error().find("out of range"), std::string::npos);

  Expected<Trace> negcompute = LoadLiteral("negcompute", "5 -10\n");
  ASSERT_FALSE(negcompute.ok());
  EXPECT_NE(negcompute.error().find("negative compute time"), std::string::npos);
}

TEST(TraceIo, CheckedLoadAcceptsHeaderlessAndWriteRecords) {
  Expected<Trace> loaded = LoadLiteral("headerless", "1 10\n2 20 W\n\n3 30\n");
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  const Trace& t = loaded.value();
  ASSERT_EQ(t.size(), 3);
  EXPECT_FALSE(t.is_write(TracePos{0}));
  EXPECT_TRUE(t.is_write(TracePos{1}));
  EXPECT_EQ(t.block(TracePos{2}), BlockId{3});
}

TEST(TraceStats, ComputesPatternDiagnostics) {
  Trace t("pattern");
  for (int64_t i = 0; i < 10; ++i) {
    t.Append(BlockId{i}, MsToNs(1));  // fully sequential
  }
  for (int64_t i = 0; i < 10; ++i) {
    t.Append(BlockId{i}, MsToNs(1));  // full reuse pass
  }
  TraceStats s = ComputeTraceStats(t);
  EXPECT_EQ(s.reads, 20);
  EXPECT_EQ(s.distinct_blocks, 10);
  EXPECT_NEAR(s.sequential_fraction, 18.0 / 20.0, 1e-9);
  EXPECT_NEAR(s.reuse_fraction, 0.5, 1e-9);
  EXPECT_NEAR(s.compute_sec, 0.02, 1e-9);
  EXPECT_FALSE(ToString(s).empty());
}

}  // namespace
}  // namespace pfc
