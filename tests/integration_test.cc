// Cross-module integration tests: whole simulations over reconstructed
// traces, checking the paper's headline qualitative results.

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/paper_tables.h"

namespace pfc {
namespace {

RunResult RunSim(const Trace& t, const std::string& name, int disks, PolicyKind kind,
              const PolicyOptions& options = {}) {
  SimConfig config = BaselineConfig(name, disks);
  return RunOne(t, config, kind, options);
}

TEST(Integration, AllPrefetchersBeatDemandFetching) {
  // Section 4.1: "all prefetching algorithms significantly outperform
  // optimal demand fetching" — checked on an I/O-bound trace.
  Trace t = MakeTrace("postgres-select");
  for (int disks : {1, 4}) {
    RunResult demand = RunSim(t, "postgres-select", disks, PolicyKind::kDemand);
    for (PolicyKind kind : {PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
                            PolicyKind::kReverseAggressive, PolicyKind::kForestall}) {
      RunResult r = RunSim(t, "postgres-select", disks, kind);
      EXPECT_LT(r.elapsed_time, demand.elapsed_time)
          << ToString(kind) << " on " << disks << " disks";
    }
  }
}

TEST(Integration, AggressiveWinsIoBoundFixedHorizonWinsComputeBound) {
  // Section 4: aggressive prefetching pays off when stalling dominates;
  // conservative prefetching wins when it does not (driver overhead).
  Trace synth = MakeTrace("synth");
  RunResult agg1 = RunSim(synth, "synth", 1, PolicyKind::kAggressive);
  RunResult fh1 = RunSim(synth, "synth", 1, PolicyKind::kFixedHorizon);
  EXPECT_LT(agg1.elapsed_time, fh1.elapsed_time);  // I/O bound at 1 disk

  RunResult agg4 = RunSim(synth, "synth", 4, PolicyKind::kAggressive);
  RunResult fh4 = RunSim(synth, "synth", 4, PolicyKind::kFixedHorizon);
  EXPECT_LT(fh4.elapsed_time, agg4.elapsed_time);  // compute bound at 4
}

TEST(Integration, ForestallTracksTheBestOfBoth) {
  // Section 5.1: forestall within a few percent of the better of fixed
  // horizon and aggressive in every configuration.
  Trace t = MakeTrace("synth");
  for (int disks : {1, 2, 4}) {
    RunResult fh = RunSim(t, "synth", disks, PolicyKind::kFixedHorizon);
    RunResult agg = RunSim(t, "synth", disks, PolicyKind::kAggressive);
    RunResult forestall = RunSim(t, "synth", disks, PolicyKind::kForestall);
    const DurNs best = std::min(fh.elapsed_time, agg.elapsed_time);
    EXPECT_LT(static_cast<double>(forestall.elapsed_time.ns()),
              1.06 * static_cast<double>(best.ns()))
        << disks << " disks";
  }
}

TEST(Integration, MoreDisksNeverHurtFixedHorizon) {
  Trace t = MakeTrace("ld");
  DurNs prev = kDurInfinity;
  for (int disks : {1, 2, 4, 8}) {
    RunResult r = RunSim(t, "ld", disks, PolicyKind::kFixedHorizon);
    EXPECT_LE(static_cast<double>(r.elapsed_time.ns()), 1.02 * static_cast<double>(prev.ns()))
        << disks << " disks";
    prev = r.elapsed_time;
  }
}

TEST(Integration, CscanBeatsFcfsWhenIoBound) {
  // Table 5: CSCAN's reordering shortens seeks most at low array sizes.
  Trace t = MakeTrace("postgres-select");
  SimConfig cscan = BaselineConfig("postgres-select", 1);
  SimConfig fcfs = cscan;
  fcfs.discipline = SchedDiscipline::kFcfs;
  for (PolicyKind kind : {PolicyKind::kFixedHorizon, PolicyKind::kAggressive}) {
    RunResult a = RunOne(t, cscan, kind);
    RunResult b = RunOne(t, fcfs, kind);
    EXPECT_LT(a.elapsed_time, b.elapsed_time) << ToString(kind);
  }
}

TEST(Integration, BiggerCacheNeverHurtsMuch) {
  Trace t = MakeTrace("glimpse");
  SimConfig small = BaselineConfig("glimpse", 4);
  small.cache_blocks = 640;
  SimConfig big = BaselineConfig("glimpse", 4);
  big.cache_blocks = 1920;
  for (PolicyKind kind : {PolicyKind::kFixedHorizon, PolicyKind::kAggressive}) {
    RunResult s = RunOne(t, small, kind);
    RunResult b = RunOne(t, big, kind);
    EXPECT_LT(static_cast<double>(b.elapsed_time.ns()),
              1.02 * static_cast<double>(s.elapsed_time.ns()))
        << ToString(kind);
  }
}

TEST(Integration, DriverTimeIsExactlyFetchesTimesOverhead) {
  Trace t = MakeTrace("cscope1");
  for (PolicyKind kind : {PolicyKind::kDemand, PolicyKind::kFixedHorizon,
                          PolicyKind::kAggressive, PolicyKind::kForestall}) {
    SimConfig c = BaselineConfig("cscope1", 2);
    RunResult r = RunOne(t, c, kind);
    EXPECT_EQ(r.driver_time, r.fetches * c.driver_overhead) << ToString(kind);
  }
}

TEST(Integration, DoubleSpeedCpuShiftsCrossover) {
  // Section 4.4 / appendix C: halving compute time makes the same trace
  // more I/O-bound, so prefetching matters more.
  Trace t = MakeTrace("xds");
  SimConfig normal = BaselineConfig("xds", 2);
  SimConfig fast = normal;
  fast.cpu_scale = 0.5;
  PolicyOptions options;
  options.horizon = 124;  // the paper doubles H along with CPU speed
  RunResult n = RunOne(t, normal, PolicyKind::kFixedHorizon);
  RunResult f = RunOne(t, fast, PolicyKind::kFixedHorizon, options);
  EXPECT_LT(f.compute_time, n.compute_time);
  EXPECT_GT(f.stall_time, n.stall_time);
}

TEST(Integration, TuneReverseAggressivePicksNoWorseThanDefault) {
  Trace t = MakeTrace("cscope1");
  SimConfig c = BaselineConfig("cscope1", 1);
  PolicyOptions tuned = TuneReverseAggressive(t, c, {8, 64}, {8, 40});
  RunResult best = RunOne(t, c, PolicyKind::kReverseAggressive, tuned);
  RunResult def = RunOne(t, c, PolicyKind::kReverseAggressive);
  EXPECT_LE(best.elapsed_time, def.elapsed_time);
}

TEST(Integration, ResultsCsvRoundTrips) {
  Trace t = MakeTrace("cscope1").Prefix(500);
  t.set_name("cscope1-prefix");
  SimConfig c = BaselineConfig("cscope1", 1);
  std::vector<RunResult> results = {RunOne(t, c, PolicyKind::kDemand)};
  std::string path = testing::TempDir() + "/pfc_results.csv";
  EXPECT_TRUE(WriteResultsCsv(results, path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[256];
  ASSERT_NE(std::fgets(header, sizeof(header), f), nullptr);
  EXPECT_NE(std::string(header).find("elapsed_sec"), std::string::npos);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Integration, PaperTableRenderersProduceAllSections) {
  Trace t = MakeTrace("cscope1").Prefix(800);
  t.set_name("cscope1-prefix");
  SimConfig c1 = BaselineConfig("cscope1", 1);
  SimConfig c2 = BaselineConfig("cscope1", 2);
  PolicySeries series;
  series.label = "Fixed Horizon";
  series.results = {RunOne(t, c1, PolicyKind::kFixedHorizon),
                    RunOne(t, c2, PolicyKind::kFixedHorizon)};
  std::string appendix = RenderAppendixTable("T", {1, 2}, {series});
  EXPECT_NE(appendix.find("fetches"), std::string::npos);
  EXPECT_NE(appendix.find("average disk utilization"), std::string::npos);
  std::string breakdown = RenderBreakdownTable("T", {1, 2}, {series});
  EXPECT_NE(breakdown.find("stl"), std::string::npos);
  std::string util = RenderUtilizationTable("T", {1, 2}, {series});
  EXPECT_NE(util.find("Fixed Horizon"), std::string::npos);
}

}  // namespace
}  // namespace pfc
