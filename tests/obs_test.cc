// Tests for the observability subsystem (src/obs): the stall-attribution
// invariant across every policy, busy-interval utilization cross-checks,
// result identity with and without a sink, exporter byte-stability, and the
// CSV round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "pfc/pfc.h"

namespace pfc {
namespace {

const std::vector<PolicyKind>& AllPolicies() {
  static const std::vector<PolicyKind> kinds = {
      PolicyKind::kDemand,     PolicyKind::kDemandLru,
      PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
      PolicyKind::kReverseAggressive, PolicyKind::kForestall,
  };
  return kinds;
}

SimConfig SmallConfig(const std::string& trace_name, int disks) {
  SimConfig config = BaselineConfig(trace_name, disks);
  config.disk_model = DiskModelKind::kSimple;
  config.obs.collect = true;
  return config;
}

// The tentpole invariant: for every policy, the collector's per-cause
// buckets sum *exactly* (integer equality) to RunResult::stall_time, and
// the fault bucket is exactly degraded_stall_ns (zero on healthy runs).
// ObsCollector::Finish PFC_CHECKs this internally too, so a violation
// aborts before the EXPECTs even run — the assertions document the
// contract for readers.
TEST(ObsInvariant, AttributionSumsToStallTimeAcrossPolicies) {
  Trace trace = MakeTrace("cscope1").Prefix(1500);
  for (PolicyKind kind : AllPolicies()) {
    for (int disks : {1, 3}) {
      SimConfig config = SmallConfig("cscope1", disks);
      RunResult r = RunOne(trace, config, kind);
      ASSERT_NE(r.obs, nullptr) << ToString(kind) << " d=" << disks;
      EXPECT_EQ(r.obs->stalls.total(), r.stall_time) << ToString(kind);
      EXPECT_EQ(r.obs->stalls.ns(StallCause::kFaultRecovery), r.degraded_stall_ns);
      EXPECT_EQ(r.obs->stalls.ns(StallCause::kFaultRecovery), DurNs{0}) << "healthy run";
      EXPECT_GT(r.obs->total_events, 0);
      // Fetch lifecycle bookkeeping: every demand start eventually completes
      // (healthy run), and fetches the engine counted all produced events.
      EXPECT_EQ(r.obs->demand_starts, r.obs->demand_completes);
      EXPECT_EQ(r.obs->demand_starts + r.obs->prefetch_issues, r.fetches);
    }
  }
}

// Write-heavy runs exercise the kWriteFlush / kNoBuffer causes; the
// invariant must hold there too, in both write-back and write-through modes.
TEST(ObsInvariant, AttributionHoldsForWriteWorkloads) {
  Trace base = MakeTrace("postgres-select").Prefix(1200);
  Trace trace = WithUpdates(base, 0.4, /*seed=*/7);
  for (bool write_through : {false, true}) {
    for (PolicyKind kind : {PolicyKind::kForestall, PolicyKind::kAggressive}) {
      SimConfig config = SmallConfig("postgres-select", 2);
      config.write_through = write_through;
      RunResult r = RunOne(trace, config, kind);
      ASSERT_NE(r.obs, nullptr);
      EXPECT_EQ(r.obs->stalls.total(), r.stall_time)
          << ToString(kind) << (write_through ? " write-through" : " write-back");
      if (write_through) {
        EXPECT_GT(r.obs->flush_issues, 0);
      }
    }
  }
}

// Fault runs: the kFaultRecovery bucket equals degraded_stall_ns exactly,
// for every policy, under transient errors + a latency tail + a fail-stop.
TEST(ObsInvariant, FaultRunsAttributeDegradedStallExactly) {
  Trace trace = MakeTrace("cscope1").Prefix(1200);
  SimConfig base = SmallConfig("cscope1", 3);
  base.faults.media_error_rate = 0.05;
  base.faults.tail_rate = 0.05;
  base.faults.tail_multiplier = 8.0;
  base.faults.fail_disk = DiskId{1};
  base.faults.fail_after = TimeNs{0} + MsToNs(200);
  base.faults.max_retries = 2;
  for (PolicyKind kind : AllPolicies()) {
    RunResult r = RunOne(trace, base, kind);
    ASSERT_NE(r.obs, nullptr) << ToString(kind);
    EXPECT_EQ(r.obs->stalls.total(), r.stall_time) << ToString(kind);
    EXPECT_EQ(r.obs->stalls.ns(StallCause::kFaultRecovery), r.degraded_stall_ns)
        << ToString(kind);
    EXPECT_GT(r.degraded_stall_ns, DurNs{0}) << ToString(kind)
        << ": fault config produced no degraded stall; test is vacuous";
    EXPECT_GT(r.obs->fault_retries + r.obs->fault_permanent, 0) << ToString(kind);
  }
}

// Satellite cross-check: utilization recomputed from busy-interval events
// must equal the engine's DiskStats-derived figure bit-for-bit.
TEST(ObsCrossCheck, BusyIntervalsReproduceEngineUtilization) {
  Trace trace = MakeTrace("postgres-join").Prefix(1500);
  for (int disks : {2, 4}) {
    SimConfig config = SmallConfig("postgres-join", disks);
    RunResult r = RunOne(trace, config, PolicyKind::kForestall);
    ASSERT_NE(r.obs, nullptr);
    ASSERT_EQ(r.obs->disks.size(), r.per_disk_util.size());
    for (size_t d = 0; d < r.obs->disks.size(); ++d) {
      EXPECT_EQ(r.obs->disks[d].Utilization(r.elapsed_time), r.per_disk_util[d]);
      EXPECT_EQ(r.obs->disks[d].dispatches(), r.obs->disks[d].completes());
    }
  }
}

// The zero-overhead contract's semantic half: observing a run must not
// change it. Every scalar result field is identical with and without a
// collector.
TEST(ObsContract, CollectionDoesNotPerturbTheRun) {
  Trace trace = MakeTrace("dinero").Prefix(2000);
  for (PolicyKind kind : {PolicyKind::kAggressive, PolicyKind::kForestall}) {
    SimConfig off = SmallConfig("dinero", 2);
    off.obs.collect = false;
    SimConfig on = SmallConfig("dinero", 2);
    RunResult a = RunOne(trace, off, kind);
    RunResult b = RunOne(trace, on, kind);
    EXPECT_EQ(a.obs, nullptr);
    ASSERT_NE(b.obs, nullptr);
    EXPECT_EQ(a.elapsed_time, b.elapsed_time) << ToString(kind);
    EXPECT_EQ(a.stall_time, b.stall_time);
    EXPECT_EQ(a.compute_time, b.compute_time);
    EXPECT_EQ(a.driver_time, b.driver_time);
    EXPECT_EQ(a.fetches, b.fetches);
    EXPECT_EQ(a.demand_fetches, b.demand_fetches);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.per_disk_util, b.per_disk_util);
  }
}

// An external sink (SetEventSink) sees the same stream an internal
// collector would aggregate, and kStallEnd durations sum to stall_time.
TEST(ObsContract, ExternalSinkReceivesConsistentStream) {
  Trace trace = MakeTrace("cscope2").Prefix(1000);
  SimConfig config = SmallConfig("cscope2", 2);
  config.obs.collect = false;  // external sink instead
  ForestallPolicy policy;
  Simulator sim(trace, config, &policy);
  EventLog log;
  sim.SetEventSink(&log);
  RunResult r = sim.Run();
  ASSERT_FALSE(log.events().empty());
  DurNs stall_sum;
  DurNs fault_sum;
  TimeNs last_time;
  for (const ObsEvent& e : log.events()) {
    EXPECT_GE(e.time, last_time);  // simulated-time order
    last_time = e.time;
    if (e.kind == ObsEventKind::kStallEnd) {
      stall_sum += DurNs{e.a};
      fault_sum += DurNs{e.b};
    }
  }
  EXPECT_EQ(stall_sum, r.stall_time);
  EXPECT_EQ(fault_sum, r.degraded_stall_ns);
}

TEST(StallAttributionUnit, AddWindowMergeAndCheck) {
  StallAttribution a;
  a.AddWindow(StallCause::kColdMiss, DurNs{100}, DurNs{0});
  a.AddWindow(StallCause::kFetchInFlight, DurNs{60}, DurNs{25});
  EXPECT_EQ(a.total(), DurNs{160});
  EXPECT_EQ(a.ns(StallCause::kColdMiss), DurNs{100});
  EXPECT_EQ(a.ns(StallCause::kFetchInFlight), DurNs{35});
  EXPECT_EQ(a.ns(StallCause::kFaultRecovery), DurNs{25});
  EXPECT_EQ(a.windows(), 2);

  StallAttribution b;
  b.AddWindow(StallCause::kNoBuffer, DurNs{40}, DurNs{0});
  a.Merge(b);
  EXPECT_EQ(a.total(), DurNs{200});
  EXPECT_EQ(a.windows(), 3);
  a.CheckAgainst(/*stall_time=*/DurNs{200}, /*degraded_stall_ns=*/DurNs{25});  // must not abort

  std::string s = a.ToString();
  EXPECT_NE(s.find("cold-miss"), std::string::npos);
  EXPECT_NE(s.find("no-buffer"), std::string::npos);
}

// A fixed-seed run exports byte-identical Chrome trace JSON (the exporter
// uses integer arithmetic only); scripts/ci.sh additionally diffs one
// against a committed golden file.
TEST(ObsExport, ChromeTraceJsonIsByteStable) {
  Trace trace = MakeTrace("cscope1").Prefix(600);
  std::string renders[2];
  for (int i = 0; i < 2; ++i) {
    SimConfig config = SmallConfig("cscope1", 2);
    config.obs.keep_events = true;
    RunResult r = RunOne(trace, config, PolicyKind::kForestall);
    ASSERT_NE(r.obs, nullptr);
    ASSERT_FALSE(r.obs->events.empty());
    renders[i] = ChromeTraceJson(r.obs->events, trace.name(), "forestall", 2);
  }
  EXPECT_EQ(renders[0], renders[1]);
  EXPECT_EQ(renders[0].front(), '{');  // {"traceEvents": [...]} object form
  EXPECT_NE(renders[0].find("\"stall:"), std::string::npos);
  EXPECT_NE(renders[0].find("\"ph\":\"X\""), std::string::npos);
}

TEST(ObsExport, CsvRoundTripPreservesEvents) {
  Trace trace = MakeTrace("cscope1").Prefix(600);
  SimConfig config = SmallConfig("cscope1", 2);
  config.obs.keep_events = true;
  RunResult r = RunOne(trace, config, PolicyKind::kAggressive);
  ASSERT_NE(r.obs, nullptr);
  const std::vector<ObsEvent>& events = r.obs->events;
  ASSERT_FALSE(events.empty());

  std::string path = testing::TempDir() + "/obs_roundtrip.csv";
  ASSERT_TRUE(WriteEvents(events, path, trace.name(), "aggressive", 2));
  Expected<std::vector<LoadedEvent>> loaded = LoadEventsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_EQ(loaded.value().size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    const ObsEvent& want = events[i];
    const ObsEvent& got = loaded.value()[i].event;
    ASSERT_EQ(got.time, want.time) << "row " << i;
    ASSERT_EQ(got.kind, want.kind) << "row " << i;
    ASSERT_EQ(got.cause, want.cause) << "row " << i;
    ASSERT_EQ(got.disk, want.disk) << "row " << i;
    ASSERT_EQ(got.block, want.block) << "row " << i;
    ASSERT_EQ(got.a, want.a) << "row " << i;
    ASSERT_EQ(got.b, want.b) << "row " << i;
    ASSERT_EQ(got.flag, want.flag) << "row " << i;
  }
  std::remove(path.c_str());

  // The text report renders from the loaded stream.
  std::string report = RenderEventReport(loaded.value(), /*columns=*/60);
  EXPECT_NE(report.find("stall"), std::string::npos);
  EXPECT_NE(report.find("disk"), std::string::npos);
}

// Policies drop kPolicyMark breadcrumbs when batching (aggressive and
// forestall); the label survives into the collector's census.
TEST(ObsContract, PolicyMarksAreEmitted) {
  Trace trace = MakeTrace("synth").Prefix(2000);
  SimConfig config = SmallConfig("synth", 2);
  RunResult r = RunOne(trace, config, PolicyKind::kAggressive);
  ASSERT_NE(r.obs, nullptr);
  EXPECT_GT(r.obs->policy_marks, 0);
}

// RunStudy threads collect_obs through to every grid point.
TEST(ObsHarness, StudyAttachesReportsWhenAsked) {
  Trace trace = MakeTrace("cscope1").Prefix(800);
  StudySpec spec;
  spec.trace_name = "cscope1";
  spec.disks = {1, 2};
  spec.policies = {PolicyKind::kDemand, PolicyKind::kForestall};
  spec.tune_revagg = false;
  spec.disk_model = DiskModelKind::kSimple;
  spec.collect_obs = true;
  std::vector<PolicySeries> series = RunStudy(trace, spec);
  ASSERT_EQ(series.size(), 2u);
  for (const PolicySeries& s : series) {
    ASSERT_EQ(s.results.size(), 2u);
    for (const RunResult& r : s.results) {
      ASSERT_NE(r.obs, nullptr);
      EXPECT_EQ(r.obs->stalls.total(), r.stall_time);
    }
  }
}

}  // namespace
}  // namespace pfc
