// Fault-cancellation accounting: when a disk fail-stops mid-run, every
// policy's in-flight prefetches are dropped through BufferCache::CancelFetch
// + Policy::OnFetchFailed, demand fetches recover through the retry /
// recovery-penalty path, and the books stay balanced afterwards: the elapsed
// = compute + driver + stall decomposition holds, degraded stall never
// exceeds total stall, and every cache buffer is attributable (clean
// present + dirty + in-flight = used). Each cell is also cross-checked
// exactly against the reference simulator.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diff.h"
#include "core/simulator.h"
#include "core/trace_context.h"
#include "harness/experiment.h"
#include "util/rng.h"

namespace pfc {
namespace {

const std::vector<PolicyKind>& AllPolicies() {
  static const std::vector<PolicyKind> kAll = {
      PolicyKind::kDemand,     PolicyKind::kDemandLru,
      PolicyKind::kFixedHorizon, PolicyKind::kAggressive,
      PolicyKind::kReverseAggressive, PolicyKind::kForestall,
  };
  return kAll;
}

// Mostly sequential read trace over both disks of a 2-disk striped array;
// short compute keeps the run I/O-bound so prefetches are in flight when
// the disk dies.
Trace FailoverTrace(int64_t n, bool with_writes) {
  Rng rng(SplitMix64(404));
  Trace t("failover");
  int64_t block = 0;
  for (int64_t i = 0; i < n; ++i) {
    block = rng.UniformDouble() < 0.8 ? (block + 1) % 60 : rng.UniformInt(0, 59);
    const DurNs compute{rng.UniformInt(0, 200'000)};
    if (with_writes && rng.UniformDouble() < 0.2) {
      t.AppendWrite(BlockId{block}, compute);
    } else {
      t.Append(BlockId{block}, compute);
    }
  }
  return t;
}

SimConfig FailStopConfig() {
  SimConfig config;
  config.cache_blocks = 16;
  config.num_disks = 2;
  config.faults.fail_disk = DiskId{0};
  config.faults.fail_after = TimeNs{0} + MsToNs(10);
  return config;
}

TEST(FaultCancellation, BooksBalancedAfterFailStopPerPolicy) {
  Trace trace = FailoverTrace(200, /*with_writes=*/false);
  for (PolicyKind kind : AllPolicies()) {
    SCOPED_TRACE(ToString(kind));
    SimConfig config = FailStopConfig();
    TraceContext context(trace, config.hint_coverage, config.hint_seed);
    std::unique_ptr<Policy> policy = MakePolicy(kind);
    Simulator sim(context, config, policy.get());
    RunResult r = sim.Run();

    // Half the blocks live on the dead disk; their demand fetches must have
    // permanently failed (and taken the recovery penalty).
    EXPECT_GT(r.failed_requests, 0);
    EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time);
    EXPECT_LE(r.degraded_stall_ns, r.stall_time);
    EXPECT_GT(r.degraded_stall_ns, DurNs{0});

    // Cache accounting: every used buffer is clean-present, dirty, or still
    // in flight — cancelled fetches must have returned their buffers.
    const BufferCache& cache = sim.cache();
    EXPECT_EQ(r.dirty_at_end, cache.dirty_count());
    const int in_flight = cache.used() - cache.present_count() - cache.dirty_count();
    EXPECT_GE(in_flight, 0);
    EXPECT_LE(cache.used(), cache.capacity());
  }
}

TEST(FaultCancellation, RefSimAgreesOnFailStopPerPolicy) {
  Trace trace = FailoverTrace(200, /*with_writes=*/false);
  for (PolicyKind kind : AllPolicies()) {
    SCOPED_TRACE(ToString(kind));
    DiffReport report = RunDifferential(trace, FailStopConfig(), kind);
    EXPECT_TRUE(report.consistent) << report.ToString();
    EXPECT_GT(report.sim_result.failed_requests, 0);
  }
}

// Writes add the flush-abandon path: a flush to the dead disk permanently
// fails, the write-back is abandoned (simulated data loss, counted in
// failed_requests) and the buffer is marked clean so the cache drains
// instead of wedging on unfetchable dirty blocks.
TEST(FaultCancellation, WritesToDeadDiskAbandonedNotLeaked) {
  Trace trace = FailoverTrace(200, /*with_writes=*/true);
  for (PolicyKind kind : {PolicyKind::kDemand, PolicyKind::kAggressive, PolicyKind::kForestall}) {
    SCOPED_TRACE(ToString(kind));
    SimConfig config = FailStopConfig();
    TraceContext context(trace, config.hint_coverage, config.hint_seed);
    std::unique_ptr<Policy> policy = MakePolicy(kind);
    Simulator sim(context, config, policy.get());
    RunResult r = sim.Run();
    EXPECT_EQ(r.elapsed_time, r.compute_time + r.driver_time + r.stall_time);
    const BufferCache& cache = sim.cache();
    EXPECT_EQ(r.dirty_at_end, cache.dirty_count());
    // Flushes to the dead disk permanently fail; the run must complete with
    // those write-backs abandoned rather than wedging on them.
    EXPECT_GT(r.failed_requests, 0);
    EXPECT_GT(r.write_refs, 0);
    EXPECT_GE(cache.used() - cache.present_count() - cache.dirty_count(), 0);

    DiffReport report = RunDifferential(trace, config, kind);
    EXPECT_TRUE(report.consistent) << report.ToString();
  }
}

// Transient media errors: the retry path (not cancellation) absorbs bounded
// failures; retries happen and accounting still balances exactly.
TEST(FaultCancellation, MediaErrorRetriesBalanced) {
  Trace trace = FailoverTrace(200, /*with_writes=*/false);
  SimConfig config;
  config.cache_blocks = 16;
  config.num_disks = 2;
  config.faults.media_error_rate = 0.2;
  config.faults.seed = 9;
  for (PolicyKind kind : AllPolicies()) {
    SCOPED_TRACE(ToString(kind));
    DiffReport report = RunDifferential(trace, config, kind);
    EXPECT_TRUE(report.consistent) << report.ToString();
    EXPECT_GT(report.sim_result.retries, 0);
    EXPECT_EQ(report.sim_result.elapsed_time,
              report.sim_result.compute_time + report.sim_result.driver_time +
                  report.sim_result.stall_time);
  }
}

}  // namespace
}  // namespace pfc
