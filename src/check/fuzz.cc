#include "check/fuzz.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"
#include "util/time_util.h"

namespace pfc {

namespace {

// Policy names for the .repro format. Deliberately local: the repro format
// is a stable on-disk contract, independent of harness display names.
const char* PolicyToken(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kDemand:
      return "demand";
    case PolicyKind::kDemandLru:
      return "demand-lru";
    case PolicyKind::kFixedHorizon:
      return "fixed-horizon";
    case PolicyKind::kAggressive:
      return "aggressive";
    case PolicyKind::kReverseAggressive:
      return "reverse-aggressive";
    case PolicyKind::kForestall:
      return "forestall";
  }
  return "?";
}

bool PolicyFromToken(const std::string& token, PolicyKind* out) {
  for (int i = 0; i <= static_cast<int>(PolicyKind::kForestall); ++i) {
    PolicyKind kind = static_cast<PolicyKind>(i);
    if (token == PolicyToken(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

const char* ModelToken(DiskModelKind kind) {
  return kind == DiskModelKind::kSimple ? "simple" : "detailed";
}

const char* DisciplineToken(SchedDiscipline d) {
  switch (d) {
    case SchedDiscipline::kFcfs:
      return "fcfs";
    case SchedDiscipline::kCscan:
      return "cscan";
    case SchedDiscipline::kScan:
      return "scan";
    case SchedDiscipline::kSstf:
      return "sstf";
  }
  return "?";
}

const char* PlacementToken(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kStriped:
      return "striped";
    case PlacementKind::kContiguous:
      return "contiguous";
    case PlacementKind::kGroupHash:
      return "group-hash";
  }
  return "?";
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Trace FuzzScenario::BuildTrace() const {
  Trace trace("fuzz");
  trace.Reserve(static_cast<int64_t>(refs.size()));
  for (const TraceEntry& e : refs) {
    if (e.is_write) {
      trace.AppendWrite(e.block, e.compute);
    } else {
      trace.Append(e.block, e.compute);
    }
  }
  return trace;
}

FuzzScenario GenScenario(uint64_t seed) {
  Rng rng(SplitMix64(seed ^ 0x70667563686b6673ull));
  FuzzScenario s;
  s.seed = seed;
  s.policy = static_cast<PolicyKind>(rng.UniformInt(0, 5));

  // Trace: a mix of sequential runs and random jumps over a small block
  // universe, compute times in [0, 3] ms with a bias toward zero.
  const int64_t n = rng.UniformInt(20, 400);
  const int64_t universe = rng.UniformInt(4, 120);
  double write_frac = 0.0;
  if (s.policy != PolicyKind::kReverseAggressive) {
    const int64_t w = rng.UniformInt(0, 2);
    write_frac = w == 0 ? 0.0 : (w == 1 ? 0.1 : 0.3);
  }
  const double seq_prob = rng.UniformDouble();
  // Raw scalar fed to arithmetic below, wrapped at the Append boundary.
  int64_t block = rng.UniformInt(0, universe - 1);  // NOLINT(pfc-raw-unit)
  for (int64_t i = 0; i < n; ++i) {
    if (rng.UniformDouble() < seq_prob) {
      block = (block + 1) % universe;
    } else {
      block = rng.UniformInt(0, universe - 1);
    }
    TraceEntry e;
    e.block = BlockId{block};
    e.compute = DurNs{rng.UniformInt(0, 3) == 0 ? 0 : rng.UniformInt(1, 3'000'000)};
    e.is_write = write_frac > 0.0 && rng.UniformDouble() < write_frac;
    s.refs.push_back(e);
  }

  SimConfig& c = s.config;
  c.cache_blocks = static_cast<int>(rng.UniformInt(2, 64));
  c.num_disks = static_cast<int>(rng.UniformInt(1, 10));
  c.disk_model = rng.UniformInt(0, 1) == 0 ? DiskModelKind::kSimple : DiskModelKind::kDetailed;
  c.discipline = static_cast<SchedDiscipline>(rng.UniformInt(0, 3));
  c.placement = static_cast<PlacementKind>(rng.UniformInt(0, 2));
  const double scales[3] = {0.5, 1.0, 2.0};
  c.cpu_scale = scales[rng.UniformInt(0, 2)];
  c.write_through = rng.UniformInt(0, 4) == 0;
  if (s.policy == PolicyKind::kReverseAggressive || rng.UniformInt(0, 9) < 7) {
    c.hint_coverage = 1.0;  // reverse aggressive requires full hints
  } else {
    c.hint_coverage = 0.5 + 0.05 * static_cast<double>(rng.UniformInt(0, 9));
    c.hint_seed = static_cast<uint64_t>(rng.UniformInt(1, 1000));
  }

  if (rng.UniformInt(0, 9) >= 6) {
    FaultConfig& f = c.faults;
    const int64_t kinds = rng.UniformInt(1, 7);
    if ((kinds & 1) != 0) {
      f.media_error_rate = rng.UniformInt(0, 1) == 0 ? 0.05 : 0.2;
    }
    if ((kinds & 2) != 0) {
      f.tail_rate = 0.1;
      f.tail_multiplier = 10.0;
    }
    if ((kinds & 4) != 0) {
      if (rng.UniformInt(0, 1) == 0) {
        f.slow_disk = DiskId{static_cast<int32_t>(rng.UniformInt(0, c.num_disks - 1))};
        f.slow_factor = 4.0;
        f.slow_after = TimeNs{0} + MsToNs(static_cast<double>(rng.UniformInt(0, 100)));
      } else {
        f.fail_disk = DiskId{static_cast<int32_t>(rng.UniformInt(0, c.num_disks - 1))};
        f.fail_after = TimeNs{0} + MsToNs(static_cast<double>(rng.UniformInt(0, 200)));
      }
    }
    f.seed = static_cast<uint64_t>(rng.UniformInt(1, 1'000'000));
  }
  // Drawn last so pre-existing seeds keep their scenarios bit-for-bit; a
  // quarter of runs exercise the non-fast-forwarded engine path directly
  // (the differential check covers the other three quarters either way,
  // since RefSim never fast-forwards).
  c.fast_forward = rng.UniformInt(0, 3) != 0;

  // Outage & recovery, likewise appended to the draw stream. Skipped when a
  // fail-stop disk exists: ValidateSimConfig rejects a disk that is both
  // (fail-stop never recovers), and keeping the mechanisms separate gives
  // each clearer coverage.
  if (c.faults.fail_disk == kNoDisk && rng.UniformInt(0, 9) >= 7) {
    FaultConfig& f = c.faults;
    f.outage_disk = DiskId{static_cast<int32_t>(rng.UniformInt(0, c.num_disks - 1))};
    f.outage_start = TimeNs{0} + MsToNs(static_cast<double>(rng.UniformInt(0, 150)));
    f.outage_end = f.outage_start + MsToNs(static_cast<double>(rng.UniformInt(10, 250)));
    if (rng.UniformInt(0, 1) == 0) {
      f.rebuild_duration = MsToNs(static_cast<double>(rng.UniformInt(10, 100)));
      f.rebuild_slow_factor = 3.0;
    }
  }

  // Hint corruption (reverse aggressive refuses corrupted hints by design,
  // so it never draws these).
  if (s.policy != PolicyKind::kReverseAggressive && rng.UniformInt(0, 9) >= 7) {
    HintFault& h = c.hint_fault;
    const int64_t kinds = rng.UniformInt(1, 7);
    if ((kinds & 1) != 0) {
      h.wrong_block_rate = rng.UniformInt(0, 1) == 0 ? 0.05 : 0.25;
    }
    if ((kinds & 2) != 0) {
      h.reorder_window = rng.UniformInt(2, 8);
    }
    if ((kinds & 4) != 0) {
      h.stale_lookahead = rng.UniformInt(4, 64);
    }
  }

  // Online predictor, likewise appended to the draw stream so pre-existing
  // seeds keep their scenarios. The degradation axes are mutually exclusive
  // (ValidateSimConfig rejects combinations), so drawing a predictor clears
  // hint corruption and restores full coverage; reverse aggressive refuses
  // predictors by design and never draws one.
  if (s.policy != PolicyKind::kReverseAggressive && rng.UniformInt(0, 9) >= 7) {
    PredictorConfig& p = c.predictor;
    p.kind = static_cast<PredictorKind>(rng.UniformInt(1, 4));  // kNone..kTemporal
    p.lookahead = p.kind == PredictorKind::kNone ? 0 : rng.UniformInt(1, 16);
    c.hint_fault = HintFault{};
    c.hint_coverage = 1.0;
  }

  // Bounded-knowledge oracle window (SimConfig::oracle_window), appended
  // last to keep every pre-existing seed's scenario bit-for-bit. Exclusive
  // with the other hint-degradation axes (ValidateSimConfig rejects the
  // combinations), so drawing one clears them; reverse aggressive refuses
  // bounded windows by design and never draws one.
  if (s.policy != PolicyKind::kReverseAggressive && rng.UniformInt(0, 9) >= 8) {
    c.oracle_window = rng.UniformInt(0, 64);
    c.hint_fault = HintFault{};
    c.predictor = PredictorConfig{};
    c.hint_coverage = 1.0;
  }
  return s;
}

FuzzOutcome RunScenario(const FuzzScenario& scenario) {
  FuzzOutcome outcome;
  Trace trace = scenario.BuildTrace();
  DiffReport report = RunDifferential(trace, scenario.config, scenario.policy);
  outcome.diverged = !report.consistent;
  if (outcome.diverged) {
    outcome.detail = report.ToString();
  }
  return outcome;
}

namespace {

bool StillDiverges(const FuzzScenario& s, int* steps) {
  ++*steps;
  return RunScenario(s).diverged;
}

// Applies `mutate` to a copy; adopts the copy if it still diverges.
template <typename Fn>
bool TryReduce(FuzzScenario* s, int* steps, Fn mutate) {
  FuzzScenario candidate = *s;
  mutate(candidate);
  if (StillDiverges(candidate, steps)) {
    *s = std::move(candidate);
    return true;
  }
  return false;
}

void ClampFaultDisks(FuzzScenario& s) {
  FaultConfig& f = s.config.faults;
  if (f.slow_disk.v() >= s.config.num_disks) {
    f.slow_disk = DiskId{s.config.num_disks - 1};
  }
  if (f.fail_disk.v() >= s.config.num_disks) {
    f.fail_disk = DiskId{s.config.num_disks - 1};
  }
  if (f.outage_disk.v() >= s.config.num_disks) {
    f.outage_disk = DiskId{s.config.num_disks - 1};
  }
  // Clamping can collide the outage disk with the fail-stop disk, which
  // ValidateSimConfig rejects; drop the outage rather than produce a
  // candidate both engines refuse identically (a wasted shrink step).
  if (f.outage_disk != kNoDisk && f.outage_disk == f.fail_disk) {
    f.outage_disk = kNoDisk;
  }
}

}  // namespace

FuzzScenario ShrinkScenario(const FuzzScenario& scenario, int* steps_out) {
  FuzzScenario s = scenario;
  int steps = 0;
  const int kMaxSteps = 600;  // each step is two full simulations

  bool progress = true;
  while (progress && steps < kMaxSteps) {
    progress = false;

    // Trace reductions first — they shrink every later step's cost.
    while (s.refs.size() > 1 && steps < kMaxSteps) {
      const size_t half = s.refs.size() / 2;
      if (TryReduce(&s, &steps, [&](FuzzScenario& c) {
            c.refs.assign(c.refs.begin(), c.refs.begin() + static_cast<ptrdiff_t>(half));
          })) {
        progress = true;
        continue;
      }
      if (TryReduce(&s, &steps, [&](FuzzScenario& c) {
            c.refs.assign(c.refs.begin() + static_cast<ptrdiff_t>(half), c.refs.end());
          })) {
        progress = true;
        continue;
      }
      if (s.refs.size() > 2 &&
          TryReduce(&s, &steps, [](FuzzScenario& c) {
            std::vector<TraceEntry> kept;
            for (size_t i = 0; i < c.refs.size(); i += 2) {
              kept.push_back(c.refs[i]);
            }
            c.refs = std::move(kept);
          })) {
        progress = true;
        continue;
      }
      break;
    }
    if (s.refs.size() <= 48) {
      for (size_t i = 0; i < s.refs.size() && s.refs.size() > 1 && steps < kMaxSteps;) {
        if (TryReduce(&s, &steps, [&](FuzzScenario& c) {
              c.refs.erase(c.refs.begin() + static_cast<ptrdiff_t>(i));
            })) {
          progress = true;  // same index now names the next ref
        } else {
          ++i;
        }
      }
    }

    // Array and cache reductions.
    if (s.config.num_disks > 1 && TryReduce(&s, &steps, [](FuzzScenario& c) {
          c.config.num_disks = std::max(1, c.config.num_disks / 2);
          ClampFaultDisks(c);
        })) {
      progress = true;
    }
    if (s.config.num_disks > 1 && TryReduce(&s, &steps, [](FuzzScenario& c) {
          c.config.num_disks = 1;
          ClampFaultDisks(c);
        })) {
      progress = true;
    }
    if (s.config.cache_blocks > 2 && TryReduce(&s, &steps, [](FuzzScenario& c) {
          c.config.cache_blocks = std::max(2, c.config.cache_blocks / 2);
        })) {
      progress = true;
    }

    // Fault-config reductions, one mechanism at a time.
    if (s.config.faults.media_error_rate > 0.0 &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.faults.media_error_rate = 0.0; })) {
      progress = true;
    }
    if (s.config.faults.tail_rate > 0.0 &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.faults.tail_rate = 0.0; })) {
      progress = true;
    }
    if (s.config.faults.slow_disk != kNoDisk && TryReduce(&s, &steps, [](FuzzScenario& c) {
          c.config.faults.slow_disk = kNoDisk;
          c.config.faults.slow_factor = 1.0;
        })) {
      progress = true;
    }
    if (s.config.faults.fail_disk != kNoDisk &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.faults.fail_disk = kNoDisk; })) {
      progress = true;
    }
    if (s.config.faults.outage_disk != kNoDisk && s.config.faults.rebuild_slow_factor != 1.0 &&
        TryReduce(&s, &steps, [](FuzzScenario& c) {
          c.config.faults.rebuild_duration = DurNs{0};
          c.config.faults.rebuild_slow_factor = 1.0;
        })) {
      progress = true;
    }
    if (s.config.faults.outage_disk != kNoDisk && TryReduce(&s, &steps, [](FuzzScenario& c) {
          c.config.faults.outage_disk = kNoDisk;
          c.config.faults.rebuild_duration = DurNs{0};
          c.config.faults.rebuild_slow_factor = 1.0;
        })) {
      progress = true;
    }
    if (s.config.hint_fault.wrong_block_rate > 0.0 &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.hint_fault.wrong_block_rate = 0.0; })) {
      progress = true;
    }
    if (s.config.hint_fault.reorder_window > 0 &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.hint_fault.reorder_window = 0; })) {
      progress = true;
    }
    if (s.config.hint_fault.stale_lookahead > 0 &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.hint_fault.stale_lookahead = 0; })) {
      progress = true;
    }
    if (s.config.predictor.enabled() &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.predictor = PredictorConfig{}; })) {
      progress = true;
    }
    if (s.config.predictor.lookahead > 1 && TryReduce(&s, &steps, [](FuzzScenario& c) {
          c.config.predictor.lookahead = std::max<int64_t>(1, c.config.predictor.lookahead / 2);
        })) {
      progress = true;
    }
    if (s.config.oracle_window >= 0 &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.oracle_window = -1; })) {
      progress = true;
    }

    // Knob simplifications.
    if (s.config.hint_coverage < 1.0 &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.hint_coverage = 1.0; })) {
      progress = true;
    }
    bool has_writes = false;
    for (const TraceEntry& e : s.refs) {
      has_writes = has_writes || e.is_write;
    }
    if (has_writes && TryReduce(&s, &steps, [](FuzzScenario& c) {
          for (TraceEntry& e : c.refs) {
            e.is_write = false;
          }
        })) {
      progress = true;
    }
    if (s.config.write_through &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.write_through = false; })) {
      progress = true;
    }
    // If the divergence survives without fast-forwarding, the repro is not
    // about the skip path; if it does not, the surviving repro pins the bug
    // on FastForward.
    if (s.config.fast_forward &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.fast_forward = false; })) {
      progress = true;
    }
    if (s.config.discipline != SchedDiscipline::kFcfs &&
        TryReduce(&s, &steps,
                  [](FuzzScenario& c) { c.config.discipline = SchedDiscipline::kFcfs; })) {
      progress = true;
    }
    if (s.config.placement != PlacementKind::kStriped &&
        TryReduce(&s, &steps,
                  [](FuzzScenario& c) { c.config.placement = PlacementKind::kStriped; })) {
      progress = true;
    }
    if (s.config.disk_model != DiskModelKind::kSimple &&
        TryReduce(&s, &steps,
                  [](FuzzScenario& c) { c.config.disk_model = DiskModelKind::kSimple; })) {
      progress = true;
    }
    if (s.config.cpu_scale != 1.0 &&
        TryReduce(&s, &steps, [](FuzzScenario& c) { c.config.cpu_scale = 1.0; })) {
      progress = true;
    }
    bool has_compute = false;
    for (const TraceEntry& e : s.refs) {
      has_compute = has_compute || e.compute != DurNs{0};
    }
    if (has_compute && TryReduce(&s, &steps, [](FuzzScenario& c) {
          for (TraceEntry& e : c.refs) {
            e.compute = DurNs{0};
          }
        })) {
      progress = true;
    }
  }

  if (steps_out != nullptr) {
    *steps_out = steps;
  }
  return s;
}

std::string SerializeScenario(const FuzzScenario& s) {
  std::ostringstream out;
  const SimConfig& c = s.config;
  const FaultConfig& f = c.faults;
  out << "pfc-fuzz-repro v1\n";
  out << "seed " << s.seed << "\n";
  out << "policy " << PolicyToken(s.policy) << "\n";
  out << "cache_blocks " << c.cache_blocks << "\n";
  out << "num_disks " << c.num_disks << "\n";
  out << "disk_model " << ModelToken(c.disk_model) << "\n";
  out << "discipline " << DisciplineToken(c.discipline) << "\n";
  out << "placement " << PlacementToken(c.placement) << "\n";
  out << "driver_overhead " << c.driver_overhead.ns() << "\n";
  out << "cpu_scale " << FmtDouble(c.cpu_scale) << "\n";
  out << "hint_coverage " << FmtDouble(c.hint_coverage) << "\n";
  out << "hint_seed " << c.hint_seed << "\n";
  out << "write_through " << (c.write_through ? 1 : 0) << "\n";
  out << "fast_forward " << (c.fast_forward ? 1 : 0) << "\n";
  out << "max_events " << c.max_events << "\n";
  out << "faults " << FmtDouble(f.media_error_rate) << " " << FmtDouble(f.tail_rate) << " "
      << FmtDouble(f.tail_multiplier) << " " << f.slow_disk.v() << " "
      << FmtDouble(f.slow_factor) << " " << f.slow_after.ns() << " " << f.fail_disk.v() << " "
      << f.fail_after.ns() << " " << f.seed << " " << f.max_retries << " "
      << f.retry_backoff.ns() << " " << f.error_latency.ns() << " " << f.recovery_penalty.ns()
      << "\n";
  // Optional keys, omitted when inert so pre-existing repro files — which
  // predate them — round-trip unchanged.
  if (f.outage_disk != kNoDisk) {
    out << "outage " << f.outage_disk.v() << " " << f.outage_start.ns() << " "
        << f.outage_end.ns() << " " << f.rebuild_duration.ns() << " "
        << FmtDouble(f.rebuild_slow_factor) << "\n";
  }
  if (c.hint_fault.enabled()) {
    const HintFault& h = c.hint_fault;
    out << "hint_fault " << FmtDouble(h.wrong_block_rate) << " " << h.reorder_window << " "
        << h.stale_lookahead << "\n";
  }
  if (c.predictor.enabled()) {
    out << "predictor " << ToString(c.predictor.kind) << " " << c.predictor.lookahead << "\n";
  }
  if (c.oracle_window >= 0) {
    out << "oracle_window " << c.oracle_window << "\n";
  }
  out << "refs " << s.refs.size() << "\n";
  for (const TraceEntry& e : s.refs) {
    out << (e.is_write ? "w " : "r ") << e.block.v() << " " << e.compute.ns() << "\n";
  }
  out << "end\n";
  return out.str();
}

bool ParseScenario(const std::string& text, FuzzScenario* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why;
    }
    return false;
  };
  FuzzScenario s;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "pfc-fuzz-repro v1") {
    return fail("bad header (want 'pfc-fuzz-repro v1')");
  }
  SimConfig& c = s.config;
  FaultConfig& f = c.faults;
  bool saw_refs = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      if (!saw_refs) {
        return fail("'end' before 'refs'");
      }
      *out = std::move(s);
      return true;
    }
    if (key == "seed") {
      ls >> s.seed;
    } else if (key == "policy") {
      std::string token;
      ls >> token;
      if (!PolicyFromToken(token, &s.policy)) {
        return fail("unknown policy '" + token + "'");
      }
    } else if (key == "cache_blocks") {
      ls >> c.cache_blocks;
    } else if (key == "num_disks") {
      ls >> c.num_disks;
    } else if (key == "disk_model") {
      std::string token;
      ls >> token;
      if (token == "simple") {
        c.disk_model = DiskModelKind::kSimple;
      } else if (token == "detailed") {
        c.disk_model = DiskModelKind::kDetailed;
      } else {
        return fail("unknown disk_model '" + token + "'");
      }
    } else if (key == "discipline") {
      std::string token;
      ls >> token;
      if (token == "fcfs") {
        c.discipline = SchedDiscipline::kFcfs;
      } else if (token == "cscan") {
        c.discipline = SchedDiscipline::kCscan;
      } else if (token == "scan") {
        c.discipline = SchedDiscipline::kScan;
      } else if (token == "sstf") {
        c.discipline = SchedDiscipline::kSstf;
      } else {
        return fail("unknown discipline '" + token + "'");
      }
    } else if (key == "placement") {
      std::string token;
      ls >> token;
      if (token == "striped") {
        c.placement = PlacementKind::kStriped;
      } else if (token == "contiguous") {
        c.placement = PlacementKind::kContiguous;
      } else if (token == "group-hash") {
        c.placement = PlacementKind::kGroupHash;
      } else {
        return fail("unknown placement '" + token + "'");
      }
    } else if (key == "driver_overhead") {
      // Deserialization staging: istream extracts raw, wrapped right after.
      int64_t overhead_ns = 0;  // NOLINT(pfc-raw-unit)
      ls >> overhead_ns;
      c.driver_overhead = DurNs{overhead_ns};
    } else if (key == "cpu_scale") {
      ls >> c.cpu_scale;
    } else if (key == "hint_coverage") {
      ls >> c.hint_coverage;
    } else if (key == "hint_seed") {
      ls >> c.hint_seed;
    } else if (key == "write_through") {
      int v = 0;
      ls >> v;
      c.write_through = v != 0;
    } else if (key == "fast_forward") {
      // Absent in pre-fast-forward repro files; SimConfig's default (on)
      // applies there.
      int v = 0;
      ls >> v;
      c.fast_forward = v != 0;
    } else if (key == "max_events") {
      ls >> c.max_events;
    } else if (key == "faults") {
      int32_t slow_disk = 0;
      int32_t fail_disk = 0;
      int64_t slow_after_ns = 0;        // NOLINT(pfc-raw-unit)
      int64_t fail_after_ns = 0;        // NOLINT(pfc-raw-unit)
      int64_t retry_backoff_ns = 0;     // NOLINT(pfc-raw-unit)
      int64_t error_latency_ns = 0;     // NOLINT(pfc-raw-unit)
      int64_t recovery_penalty_ns = 0;  // NOLINT(pfc-raw-unit)
      ls >> f.media_error_rate >> f.tail_rate >> f.tail_multiplier >> slow_disk >>
          f.slow_factor >> slow_after_ns >> fail_disk >> fail_after_ns >> f.seed >>
          f.max_retries >> retry_backoff_ns >> error_latency_ns >> recovery_penalty_ns;
      f.slow_disk = DiskId{slow_disk};
      f.fail_disk = DiskId{fail_disk};
      f.slow_after = TimeNs{slow_after_ns};
      f.fail_after = TimeNs{fail_after_ns};
      f.retry_backoff = DurNs{retry_backoff_ns};
      f.error_latency = DurNs{error_latency_ns};
      f.recovery_penalty = DurNs{recovery_penalty_ns};
    } else if (key == "outage") {
      int32_t outage_disk = 0;
      int64_t outage_start_ns = 0;      // NOLINT(pfc-raw-unit)
      int64_t outage_end_ns = 0;        // NOLINT(pfc-raw-unit)
      int64_t rebuild_duration_ns = 0;  // NOLINT(pfc-raw-unit)
      ls >> outage_disk >> outage_start_ns >> outage_end_ns >> rebuild_duration_ns >>
          f.rebuild_slow_factor;
      f.outage_disk = DiskId{outage_disk};
      f.outage_start = TimeNs{outage_start_ns};
      f.outage_end = TimeNs{outage_end_ns};
      f.rebuild_duration = DurNs{rebuild_duration_ns};
    } else if (key == "hint_fault") {
      ls >> c.hint_fault.wrong_block_rate >> c.hint_fault.reorder_window >>
          c.hint_fault.stale_lookahead;
    } else if (key == "predictor") {
      std::string token;
      ls >> token >> c.predictor.lookahead;
      bool found = false;
      for (int i = 0; i <= static_cast<int>(PredictorKind::kTemporal); ++i) {
        if (token == ToString(static_cast<PredictorKind>(i))) {
          c.predictor.kind = static_cast<PredictorKind>(i);
          found = true;
          break;
        }
      }
      if (!found) {
        return fail("unknown predictor '" + token + "'");
      }
    } else if (key == "oracle_window") {
      // Absent in pre-oracle-window repro files; the default (-1,
      // unbounded) applies there.
      ls >> c.oracle_window;
    } else if (key == "refs") {
      size_t n = 0;
      ls >> n;
      for (size_t i = 0; i < n; ++i) {
        if (!std::getline(in, line)) {
          return fail("truncated refs section");
        }
        std::istringstream rs(line);
        std::string kind;
        TraceEntry e;
        int64_t block = 0;       // NOLINT(pfc-raw-unit)
        int64_t compute_ns = 0;  // NOLINT(pfc-raw-unit)
        rs >> kind >> block >> compute_ns;
        e.block = BlockId{block};
        e.compute = DurNs{compute_ns};
        if (rs.fail() || (kind != "r" && kind != "w")) {
          return fail("bad ref line: '" + line + "'");
        }
        e.is_write = kind == "w";
        s.refs.push_back(e);
      }
      saw_refs = true;
    } else {
      return fail("unknown key '" + key + "'");
    }
    if (ls.fail()) {
      return fail("bad value on line: '" + line + "'");
    }
  }
  return fail("missing 'end'");
}

}  // namespace pfc
