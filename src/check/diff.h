// Differential comparison between the optimized Simulator and the naive
// RefSim on one (trace, config, policy) cell.
//
// The comparison is *exact*: every integer counter must match and every
// double must match bit-for-bit (both engines accumulate floating point in
// the same order, so any divergence is a real behavioral difference, not
// rounding). Both engines throwing SimError counts as agreement — the
// watchdogs are part of the contract. On top of engine-vs-engine equality,
// the cell is checked against the theory lower bound (theory/lower_bound.h):
// no correct engine can report an elapsed time below it.

#ifndef PFC_CHECK_DIFF_H_
#define PFC_CHECK_DIFF_H_

#include <string>
#include <vector>

#include "core/run_result.h"
#include "core/sim_config.h"
#include "harness/experiment.h"
#include "trace/trace.h"

namespace pfc {

struct DiffReport {
  // True when the cell is consistent: both engines produced bitwise-equal
  // results (or both threw SimError) and neither violated the theory bound.
  bool consistent = false;

  // Human-readable description of each discrepancy, empty when consistent.
  std::vector<std::string> mismatches;

  bool sim_threw = false;
  bool ref_threw = false;
  std::string sim_error;
  std::string ref_error;

  // Valid only when the respective engine did not throw.
  RunResult sim_result;
  RunResult ref_result;

  DurNs lower_bound_ns;

  std::string ToString() const;
};

// Field-by-field exact comparison (bitwise for doubles). Appends one line
// per differing field to `why` when non-null. Ignores the obs attachment.
bool ResultsExactlyEqual(const RunResult& a, const RunResult& b,
                         std::vector<std::string>* why);

// Runs one cell through RefSim alone. Observability is forced off (RefSim
// has none). Constructs a fresh policy instance internally.
RunResult RunRefSim(const Trace& trace, const SimConfig& config, PolicyKind kind,
                    const PolicyOptions& options = {});

// Runs one cell through both engines — each with its own freshly
// constructed policy instance — and compares. Observability is forced off
// for both engines so they are byte-for-byte comparable.
DiffReport RunDifferential(const Trace& trace, const SimConfig& config, PolicyKind kind,
                           const PolicyOptions& options = {});

}  // namespace pfc

#endif  // PFC_CHECK_DIFF_H_
