// RefCache: the reference simulator's deliberately naive buffer cache.
//
// Same observable semantics as core/buffer_cache.h — evict-at-issue, dirty
// blocks pinned, furthest-next-use eviction candidate with ties broken
// toward the larger block id — implemented with none of its machinery: one
// flat vector of occupied slots, every query a linear scan, no next-use
// index. Intentional-simplicity rules (DESIGN.md section 4e): this file must
// not share code with the optimized cache; agreement between the two is
// evidence, and shared code would be a shared bug.

#ifndef PFC_CHECK_REF_CACHE_H_
#define PFC_CHECK_REF_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/cache_view.h"

namespace pfc {

class RefCache : public CacheView {
 public:
  explicit RefCache(int capacity_blocks);

  // --- CacheView queries, all linear scans --------------------------------

  int capacity() const override { return capacity_; }
  int used() const override { return static_cast<int>(slots_.size()); }
  int present_count() const override;
  State GetState(BlockId block) const override;
  bool Dirty(BlockId block) const override;
  int dirty_count() const override;
  std::optional<BlockId> FurthestBlock() const override;
  TracePos FurthestNextUse() const override;

  // --- Mutators (same contracts as BufferCache) ---------------------------

  void StartFetchIntoFree(BlockId block);
  void StartFetchWithEviction(BlockId block, BlockId evict);
  void CompleteFetch(BlockId block, TracePos next_use);
  void CancelFetch(BlockId block);
  void UpdateNextUse(BlockId block, TracePos next_use);
  void InsertWritten(BlockId block, TracePos next_use);
  void EvictClean(BlockId block);
  void MarkDirty(BlockId block);
  void MarkClean(BlockId block);

  // Paranoid auditor (naive): scans the slot vector and returns a
  // description of the first inconsistency (duplicate block, over-capacity,
  // lingering absent slot, dirty non-present block), or "" when consistent.
  std::string AuditViolation() const;

 private:
  struct Slot {
    BlockId block{0};
    State state = State::kAbsent;
    TracePos next_use{0};
    bool dirty = false;
  };

  Slot* Find(BlockId block);
  const Slot* Find(BlockId block) const;
  void Remove(BlockId block);

  int capacity_;
  std::vector<Slot> slots_;  // one entry per occupied buffer, unordered
};

}  // namespace pfc

#endif  // PFC_CHECK_REF_CACHE_H_
