// RefSim: the independently coded reference simulation engine.
//
// RefSim replays the same (trace, SimConfig, policy) cell as the optimized
// Simulator and must produce the *exact* same RunResult — every counter,
// every nanosecond, every double bit-for-bit (see check/diff.h). It is the
// "second simulator" of the paper's own validation methodology (Table 2
// cross-validated two independently written simulators), turned inward.
//
// Intentional-simplicity rules (DESIGN.md section 4e):
//   * no code shared with src/core's engine machinery — the cache, the
//     per-disk queues and all four scheduling disciplines, the event list,
//     the flush/retry/recovery paths and all accounting are re-coded here
//     with the dumbest data structures that work (flat vectors, linear
//     scans, no batching, no indexes);
//   * pure *model inputs* are shared, because they define the experiment
//     rather than implement it: the Trace, the TraceContext oracle, the
//     Placement map, the DiskMechanism service-time models, the FaultModel
//     fault stream, and the Policy objects themselves (policies program
//     against the abstract Engine interface, so one policy implementation
//     drives both engines).
//
// Observability is deliberately absent: EmitMark is a no-op and no sinks
// exist. Differential runs therefore compare against a Simulator with
// observability disabled (whose behavior is identical to a sink-less run).

#ifndef PFC_CHECK_REF_SIM_H_
#define PFC_CHECK_REF_SIM_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "check/ref_cache.h"
#include "core/engine.h"
#include "core/policy.h"
#include "core/run_result.h"
#include "core/sim_config.h"
#include "core/trace_context.h"
#include "disk/disk_mechanism.h"
#include "disk/fault_model.h"
#include "layout/placement.h"
#include "trace/trace.h"

namespace pfc {

class RefSim : public Engine {
 public:
  // Borrows `context` (same contract as Simulator); `policy` must be a
  // fresh instance, not one that already drove another engine. Throws
  // SimError if `config` is invalid.
  RefSim(const TraceContext& context, const SimConfig& config, Policy* policy);
  ~RefSim() override;

  // Runs the whole trace; callable once. Throws SimError if the run exceeds
  // its event budget.
  RunResult Run();

  // --- Engine interface ----------------------------------------------------

  TimeNs now() const override { return sim_now_; }
  int64_t cursor() const override { return cursor_; }
  const Trace& trace() const override { return trace_; }
  const NextRefIndex& index() const override { return context_.index(); }
  const CacheView& cache() const override { return cache_; }
  const SimConfig& config() const override { return config_; }
  BlockLocation Location(int64_t block) const override { return placement_->Map(block); }
  bool DiskIdle(int d) const override {
    const RefDisk& disk = disks_[static_cast<size_t>(d)];
    return !disk.busy && disk.queue.empty();
  }
  bool DiskFailed(int d) const override {
    const RefDisk& disk = disks_[static_cast<size_t>(d)];
    return disk.fault != nullptr && disk.fault->FailStopped(sim_now_);
  }
  bool Hinted(int64_t pos) const override {
    const std::vector<bool>& hinted = context_.hinted();
    return hinted.empty() || hinted[static_cast<size_t>(pos)];
  }
  bool FullyHinted() const override { return context_.hinted().empty(); }
  TimeNs ScaledCompute(int64_t pos) const override;
  bool IssueFetch(int64_t block, int64_t evict) override;
  void EmitMark(const char* label, int64_t value) override {
    (void)label;
    (void)value;
  }

 private:
  // One queued disk request.
  struct Request {
    int64_t logical_block = 0;
    int64_t disk_block = 0;
    TimeNs enqueue_time = 0;
    uint64_t seq = 0;
  };

  // One disk: unordered request vector, head position, elevator direction,
  // the in-service request, and running stats. The scheduling disciplines
  // are re-coded in PickNext/PopNext below.
  struct RefDisk {
    std::vector<Request> queue;
    bool busy = false;
    bool scan_up = true;
    int64_t head_block = 0;
    std::unique_ptr<DiskMechanism> mechanism;
    std::unique_ptr<FaultModel> fault;  // null when faults are disabled
    // In-service request.
    Request current;
    TimeNs cur_service = 0;
    TimeNs cur_nominal = 0;
    TimeNs cur_complete = 0;
    bool cur_failed = false;
    // Stats.
    int64_t requests = 0;
    int64_t errors = 0;
    TimeNs busy_ns = 0;
    double sum_service_ms = 0;
    double sum_response_ms = 0;
  };

  enum class EventKind : uint8_t { kComplete, kRetry, kRecover };

  struct Event {
    TimeNs time = 0;
    uint64_t seq = 0;
    int disk = 0;
    int64_t block = 0;
    TimeNs service = 0;
    TimeNs nominal = 0;
    bool failed = false;
    EventKind kind = EventKind::kComplete;
  };

  // Naive fault-state maps (vectors of pairs, linear scans).
  void AddFaultDelay(int64_t block, TimeNs delta);
  void EraseFaultDelay(int64_t block);
  const TimeNs* FindFaultDelay(int64_t block) const;
  int BumpRetryAttempts(int64_t block);
  void EraseRetryAttempts(int64_t block);

  size_t PickNext(const RefDisk& disk) const;
  Request PopNext(RefDisk& disk);
  void Enqueue(int disk, int64_t logical_block, int64_t disk_block, uint64_t seq);
  void TryDispatch(int disk);
  void CompleteCurrent(RefDisk& disk, TimeNs now_ns);
  bool IssueFetchInternal(int64_t block, int64_t evict, bool demand);
  void ApplyNextEvent();
  void HandleFailedRequest(const Event& ev);
  void EndStall(int64_t block, TimeNs wait_start);
  void DrainEventsUpTo(TimeNs t);
  void DemandFetch(int64_t block);
  void ServeWrite(int64_t pos, int64_t block);
  void IssueFlush(int64_t block);
  void MaybeFlush(int disk);
  bool ForceFlushForProgress();

  const TraceContext& context_;
  const Trace& trace_;
  SimConfig config_;
  Policy* policy_;

  RefCache cache_;
  std::unique_ptr<Placement> placement_;
  std::vector<RefDisk> disks_;

  std::vector<Event> events_;  // unordered; the minimum is found by scan
  uint64_t next_seq_ = 0;

  TimeNs app_time_ = 0;
  TimeNs sim_now_ = 0;
  int64_t cursor_ = 0;
  TimeNs pending_driver_ = 0;

  int64_t fetches_ = 0;
  int64_t demand_fetches_ = 0;
  int64_t write_refs_ = 0;
  int64_t flushes_ = 0;
  std::vector<std::vector<int64_t>> dirty_by_disk_;
  std::vector<int64_t> flush_in_flight_;
  std::vector<int64_t> redirty_pending_;
  std::vector<int> flush_outstanding_;
  int64_t waiting_block_ = -1;
  std::vector<std::pair<int64_t, int>> retry_attempts_;
  std::vector<std::pair<int64_t, TimeNs>> fault_delay_;
  int64_t retries_ = 0;
  int64_t failed_requests_ = 0;
  TimeNs degraded_stall_ = 0;
  int64_t events_processed_ = 0;
  int64_t event_budget_ = 0;
  TimeNs stall_total_ = 0;
  TimeNs driver_total_ = 0;
  TimeNs compute_total_ = 0;
  bool ran_ = false;
};

}  // namespace pfc

#endif  // PFC_CHECK_REF_SIM_H_
