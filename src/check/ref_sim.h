// RefSim: the independently coded reference simulation engine.
//
// RefSim replays the same (trace, SimConfig, policy) cell as the optimized
// Simulator and must produce the *exact* same RunResult — every counter,
// every nanosecond, every double bit-for-bit (see check/diff.h). It is the
// "second simulator" of the paper's own validation methodology (Table 2
// cross-validated two independently written simulators), turned inward.
//
// Intentional-simplicity rules (DESIGN.md section 4e):
//   * no code shared with src/core's engine machinery — the cache, the
//     per-disk queues and all four scheduling disciplines, the event list,
//     the flush/retry/recovery paths and all accounting are re-coded here
//     with the dumbest data structures that work (flat vectors, linear
//     scans, no batching, no indexes);
//   * pure *model inputs* are shared, because they define the experiment
//     rather than implement it: the Trace, the TraceContext oracle, the
//     Placement map, the DiskMechanism service-time models, the FaultModel
//     fault stream, and the Policy objects themselves (policies program
//     against the abstract Engine interface, so one policy implementation
//     drives both engines).
//
// Observability is deliberately absent: EmitMark is a no-op and no sinks
// exist. Differential runs therefore compare against a Simulator with
// observability disabled (whose behavior is identical to a sink-less run).

#ifndef PFC_CHECK_REF_SIM_H_
#define PFC_CHECK_REF_SIM_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "check/ref_cache.h"
#include "core/engine.h"
#include "core/policy.h"
#include "core/ref_oracle.h"
#include "core/run_result.h"
#include "core/sim_config.h"
#include "core/trace_context.h"
#include "disk/disk_mechanism.h"
#include "disk/fault_model.h"
#include "layout/placement.h"
#include "trace/trace.h"

namespace pfc {

class RefSim : public Engine {
 public:
  // Borrows `context` (same contract as Simulator); `policy` must be a
  // fresh instance, not one that already drove another engine. Throws
  // SimError if `config` is invalid.
  RefSim(const TraceContext& context, const SimConfig& config, Policy* policy);
  ~RefSim() override;

  // Runs the whole trace; callable once. Throws SimError if the run exceeds
  // its event budget.
  RunResult Run();

  // --- Engine interface ----------------------------------------------------

  TimeNs now() const override { return sim_now_; }
  TracePos cursor() const override { return cursor_; }
  const Trace& trace() const override { return trace_; }
  const RefOracle& index() const override { return oracle_; }
  const CacheView& cache() const override { return cache_; }
  const SimConfig& config() const override { return config_; }
  BlockLocation Location(BlockId block) const override { return placement_->Map(block); }
  bool DiskIdle(DiskId d) const override {
    const RefDisk& disk = disks_[static_cast<size_t>(d.v())];
    return !disk.busy && disk.queue.empty();
  }
  bool DiskFailed(DiskId d) const override {
    const RefDisk& disk = disks_[static_cast<size_t>(d.v())];
    return disk.fault != nullptr && disk.fault->FailStopped(sim_now_);
  }
  bool DiskDown(DiskId d) const override {
    const RefDisk& disk = disks_[static_cast<size_t>(d.v())];
    return disk.fault != nullptr &&
           (disk.fault->FailStopped(sim_now_) || disk.fault->Down(sim_now_));
  }
  bool Hinted(TracePos pos) const override {
    if (config_.oracle_bounded() && pos >= cursor_ + config_.oracle_window) {
      return false;  // beyond the knowledge horizon [cursor, cursor + W)
    }
    const int64_t lookahead = config_.hint_lookahead();
    if (lookahead > 0 && pos > cursor_ + lookahead) {
      return false;
    }
    const std::vector<bool>& hinted = context_.hinted();
    return hinted.empty() || hinted[static_cast<size_t>(pos.v())];
  }
  bool FullyHinted() const override {
    return context_.hinted().empty() && !config_.hint_fault.enabled() &&
           !config_.predictor.enabled() && !config_.oracle_bounded();
  }
  BlockId HintedBlock(TracePos pos) const override {
    const std::vector<BlockId>& claims = context_.claims();
    return claims.empty() ? trace_.block(pos) : claims[static_cast<size_t>(pos.v())];
  }
  DurNs ScaledCompute(TracePos pos) const override;
  bool IssueFetch(BlockId block, BlockId evict) override;
  void EmitMark(const char* label, int64_t value) override {
    (void)label;
    (void)value;
  }

 private:
  // One queued disk request.
  struct Request {
    BlockId logical_block{0};
    BlockId disk_block{0};
    TimeNs enqueue_time;
    uint64_t seq = 0;
  };

  // One disk: unordered request vector, head position, elevator direction,
  // the in-service request, and running stats. The scheduling disciplines
  // are re-coded in PickNext/PopNext below.
  struct RefDisk {
    std::vector<Request> queue;
    bool busy = false;
    bool scan_up = true;
    BlockId head_block{0};
    std::unique_ptr<DiskMechanism> mechanism;
    std::unique_ptr<FaultModel> fault;  // null when faults are disabled
    // In-service request.
    Request current;
    DurNs cur_service;
    DurNs cur_nominal;
    TimeNs cur_complete;
    bool cur_failed = false;
    // Stats.
    int64_t requests = 0;
    int64_t errors = 0;
    DurNs busy_ns;
    double sum_service_ms = 0;
    double sum_response_ms = 0;
  };

  enum class EventKind : uint8_t { kComplete, kRetry, kRecover, kDiskDown, kDiskUp };

  struct Event {
    TimeNs time;
    uint64_t seq = 0;
    DiskId disk{0};
    BlockId block{0};
    DurNs service;
    DurNs nominal;
    bool failed = false;
    EventKind kind = EventKind::kComplete;
    FaultKind fault = FaultKind::kNone;
  };

  // Naive fault-state maps (vectors of pairs, linear scans).
  void AddFaultDelay(BlockId block, DurNs delta);
  void EraseFaultDelay(BlockId block);
  const DurNs* FindFaultDelay(BlockId block) const;
  int BumpRetryAttempts(BlockId block);
  void EraseRetryAttempts(BlockId block);
  // Same shape again for the outage machinery, which is accounted apart
  // from the media-error machinery (see Simulator).
  void AddOutageDelay(BlockId block, DurNs delta);
  void EraseOutageDelay(BlockId block);
  const DurNs* FindOutageDelay(BlockId block) const;
  int BumpOutageAttempts(BlockId block);
  void EraseOutageAttempts(BlockId block);

  size_t PickNext(const RefDisk& disk) const;
  Request PopNext(RefDisk& disk);
  void Enqueue(DiskId disk, BlockId logical_block, BlockId disk_block, uint64_t seq);
  void TryDispatch(DiskId disk);
  void CompleteCurrent(RefDisk& disk, TimeNs now_ns);
  bool IssueFetchInternal(BlockId block, BlockId evict, bool demand);
  void ApplyNextEvent();
  void ApplyNextEventImpl();
  void HandleFailedRequest(const Event& ev);
  void HandleOutageFailure(const Event& ev);
  // Naive mirror of Simulator::AuditInvariants (SimConfig::paranoid).
  void AuditInvariants() const;
  void EndStall(BlockId block, TimeNs wait_start);
  void DrainEventsUpTo(TimeNs t);
  void DemandFetch(BlockId block);
  void ServeWrite(TracePos pos, BlockId block);
  void IssueFlush(BlockId block);
  void MaybeFlush(DiskId disk);
  bool ForceFlushForProgress();

  const TraceContext& context_;
  const Trace& trace_;
  SimConfig config_;
  Policy* policy_;
  // Window-bounded oracle view, wired to this engine's own cursor (the same
  // adapter class the optimized engine uses — a pure model input, like the
  // NextRefIndex it wraps).
  RefOracle oracle_{nullptr, -1, nullptr};

  RefCache cache_;
  std::unique_ptr<Placement> placement_;
  std::vector<RefDisk> disks_;

  std::vector<Event> events_;  // unordered; the minimum is found by scan
  uint64_t next_seq_ = 0;

  TimeNs app_time_;
  TimeNs sim_now_;
  TracePos cursor_{0};
  DurNs pending_driver_;

  int64_t fetches_ = 0;
  int64_t demand_fetches_ = 0;
  int64_t write_refs_ = 0;
  int64_t flushes_ = 0;
  std::vector<std::vector<BlockId>> dirty_by_disk_;
  std::vector<BlockId> flush_in_flight_;
  std::vector<BlockId> redirty_pending_;
  std::vector<int> flush_outstanding_;
  BlockId waiting_block_ = kNoBlock;
  std::vector<std::pair<BlockId, int>> retry_attempts_;
  std::vector<std::pair<BlockId, DurNs>> fault_delay_;
  std::vector<std::pair<BlockId, int>> outage_attempts_;
  std::vector<std::pair<BlockId, DurNs>> outage_delay_;
  int down_disks_ = 0;
  int64_t retries_ = 0;
  int64_t failed_requests_ = 0;
  // Prefetch-quality ledger, naive edition: the same lifecycle the optimized
  // engine tracks with FlatSets, re-coded over linear-scan block lists.
  std::vector<BlockId> prefetch_inflight_;  // issued, not yet landed/failed
  std::vector<BlockId> prefetch_pending_;   // landed, not yet referenced
  int64_t prefetch_issued_ = 0;
  int64_t prefetch_filled_ = 0;
  int64_t prefetch_failed_ = 0;
  int64_t prefetch_useful_ = 0;
  int64_t prefetch_useless_ = 0;
  int64_t prefetch_late_ = 0;
  DurNs degraded_stall_;
  DurNs outage_stall_;
  int64_t events_processed_ = 0;
  int64_t event_budget_ = 0;
  DurNs stall_total_;
  DurNs driver_total_;
  DurNs compute_total_;
  bool ran_ = false;
};

}  // namespace pfc

#endif  // PFC_CHECK_REF_SIM_H_
