#include "check/ref_sim.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string>

#include "core/sim_error.h"
#include "disk/simple_mechanism.h"
#include "util/check.h"
#include "util/time_util.h"

namespace pfc {

namespace {

// Naive membership-list helpers: plain vectors, linear everything.

bool ListContains(const std::vector<BlockId>& v, BlockId key) {
  for (BlockId x : v) {
    if (x == key) {
      return true;
    }
  }
  return false;
}

bool ListErase(std::vector<BlockId>& v, BlockId key) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == key) {
      v.erase(v.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

void ListInsert(std::vector<BlockId>& v, BlockId key) {
  if (!ListContains(v, key)) {
    v.push_back(key);
  }
}

BlockId ListMin(const std::vector<BlockId>& v) {
  PFC_CHECK(!v.empty());
  BlockId best = v[0];
  for (BlockId x : v) {
    if (x < best) {
      best = x;
    }
  }
  return best;
}

}  // namespace

RefSim::RefSim(const TraceContext& context, const SimConfig& config, Policy* policy)
    : context_(context),
      trace_(context.trace()),
      config_(config),
      policy_(policy),
      cache_((ValidateSimConfig(config), config.cache_blocks)),
      placement_(MakePlacement(config.placement, config.num_disks)) {
  PFC_CHECK(policy != nullptr);
  // Same borrowed-context contract as Simulator: the oracle must have been
  // built for this config's hint parameters.
  const double coverage = config.hint_coverage >= 1.0 ? 1.0 : config.hint_coverage;
  PFC_CHECK_MSG(context.hint_coverage() == coverage,
                "TraceContext hint_coverage does not match SimConfig");
  PFC_CHECK_MSG(coverage >= 1.0 || context.hint_seed() == config.hint_seed,
                "TraceContext hint_seed does not match SimConfig");
  PFC_CHECK_MSG(context.hint_fault() == config.hint_fault,
                "TraceContext hint_fault does not match SimConfig");
  PFC_CHECK_MSG(context.predictor() == config.predictor,
                "TraceContext predictor does not match SimConfig");
  oracle_ = RefOracle(&context_.index(), config_.oracle_window, &cursor_);
  disks_.resize(static_cast<size_t>(config.num_disks));
  for (int i = 0; i < config.num_disks; ++i) {
    RefDisk& d = disks_[static_cast<size_t>(i)];
    if (config.disk_model == DiskModelKind::kDetailed) {
      d.mechanism = Hp97560Mechanism::MakeDefault();
    } else {
      d.mechanism = SimpleMechanism::MakeDefault();
    }
    if (config.faults.enabled()) {
      d.fault = std::make_unique<FaultModel>(config.faults, DiskId{i});
    }
  }
  dirty_by_disk_.resize(static_cast<size_t>(config.num_disks));
  flush_outstanding_.assign(static_cast<size_t>(config.num_disks), 0);
  event_budget_ = config_.max_events > 0 ? config_.max_events
                                         : 64 * trace_.size() + 1'000'000;
}

RefSim::~RefSim() = default;

DurNs RefSim::ScaledCompute(TracePos pos) const {
  return DurNs(
      static_cast<int64_t>(static_cast<double>(trace_.compute(pos).ns()) * config_.cpu_scale + 0.5));
}

// --- Naive fault-state maps (vectors of pairs, linear scans) ---------------

void RefSim::AddFaultDelay(BlockId block, DurNs delta) {
  for (auto& entry : fault_delay_) {
    if (entry.first == block) {
      entry.second += delta;
      return;
    }
  }
  fault_delay_.push_back({block, delta});
}

void RefSim::EraseFaultDelay(BlockId block) {
  for (size_t i = 0; i < fault_delay_.size(); ++i) {
    if (fault_delay_[i].first == block) {
      fault_delay_.erase(fault_delay_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

const DurNs* RefSim::FindFaultDelay(BlockId block) const {
  for (const auto& entry : fault_delay_) {
    if (entry.first == block) {
      return &entry.second;
    }
  }
  return nullptr;
}

int RefSim::BumpRetryAttempts(BlockId block) {
  for (auto& entry : retry_attempts_) {
    if (entry.first == block) {
      return ++entry.second;
    }
  }
  retry_attempts_.push_back({block, 1});
  return 1;
}

void RefSim::EraseRetryAttempts(BlockId block) {
  for (size_t i = 0; i < retry_attempts_.size(); ++i) {
    if (retry_attempts_[i].first == block) {
      retry_attempts_.erase(retry_attempts_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void RefSim::AddOutageDelay(BlockId block, DurNs delta) {
  for (auto& entry : outage_delay_) {
    if (entry.first == block) {
      entry.second += delta;
      return;
    }
  }
  outage_delay_.push_back({block, delta});
}

void RefSim::EraseOutageDelay(BlockId block) {
  for (size_t i = 0; i < outage_delay_.size(); ++i) {
    if (outage_delay_[i].first == block) {
      outage_delay_.erase(outage_delay_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

const DurNs* RefSim::FindOutageDelay(BlockId block) const {
  for (const auto& entry : outage_delay_) {
    if (entry.first == block) {
      return &entry.second;
    }
  }
  return nullptr;
}

int RefSim::BumpOutageAttempts(BlockId block) {
  for (auto& entry : outage_attempts_) {
    if (entry.first == block) {
      return ++entry.second;
    }
  }
  outage_attempts_.push_back({block, 1});
  return 1;
}

void RefSim::EraseOutageAttempts(BlockId block) {
  for (size_t i = 0; i < outage_attempts_.size(); ++i) {
    if (outage_attempts_[i].first == block) {
      outage_attempts_.erase(outage_attempts_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

// --- Scheduling disciplines, re-coded -------------------------------------
//
// Observable contract (matches disk/scheduler.cc exactly, including every
// tie-break): FCFS picks the smallest seq; CSCAN the smallest disk block at
// or past the head (wrapping to the global smallest), ties to smaller seq;
// SCAN continues in the current direction picking the nearest block, first
// queue slot winning ties, and reverses at the end; SSTF the smallest
// absolute head distance, ties to smaller seq. Removal swaps the last
// element into the hole, which is also what the optimized scheduler does —
// the physical queue order is part of the observable SCAN contract.

size_t RefSim::PickNext(const RefDisk& disk) const {
  const std::vector<Request>& q = disk.queue;
  PFC_CHECK(!q.empty());
  const size_t none = q.size();
  switch (config_.discipline) {
    case SchedDiscipline::kFcfs: {
      size_t pick = 0;
      for (size_t i = 1; i < q.size(); ++i) {
        if (q[i].seq < q[pick].seq) {
          pick = i;
        }
      }
      return pick;
    }
    case SchedDiscipline::kCscan: {
      size_t fwd = none;   // best candidate at or past the head
      size_t wrap = 0;     // global best, used when nothing is ahead
      for (size_t i = 0; i < q.size(); ++i) {
        const bool wrap_better =
            q[i].disk_block < q[wrap].disk_block ||
            (q[i].disk_block == q[wrap].disk_block && q[i].seq < q[wrap].seq);
        if (wrap_better) {
          wrap = i;
        }
        if (q[i].disk_block < disk.head_block) {
          continue;
        }
        const bool fwd_better =
            fwd == none || q[i].disk_block < q[fwd].disk_block ||
            (q[i].disk_block == q[fwd].disk_block && q[i].seq < q[fwd].seq);
        if (fwd_better) {
          fwd = i;
        }
      }
      return fwd != none ? fwd : wrap;
    }
    case SchedDiscipline::kScan: {
      // Elevator. Strict comparisons keep the first queue slot on ties.
      size_t pick = none;
      if (disk.scan_up) {
        for (size_t i = 0; i < q.size(); ++i) {
          if (q[i].disk_block >= disk.head_block &&
              (pick == none || q[i].disk_block < q[pick].disk_block)) {
            pick = i;
          }
        }
        if (pick != none) {
          return pick;
        }
        for (size_t i = 0; i < q.size(); ++i) {
          if (pick == none || q[i].disk_block > q[pick].disk_block) {
            pick = i;
          }
        }
        return pick;
      }
      for (size_t i = 0; i < q.size(); ++i) {
        if (q[i].disk_block <= disk.head_block &&
            (pick == none || q[i].disk_block > q[pick].disk_block)) {
          pick = i;
        }
      }
      if (pick != none) {
        return pick;
      }
      for (size_t i = 0; i < q.size(); ++i) {
        if (pick == none || q[i].disk_block < q[pick].disk_block) {
          pick = i;
        }
      }
      return pick;
    }
    case SchedDiscipline::kSstf: {
      size_t pick = 0;
      int64_t pick_dist = std::numeric_limits<int64_t>::max();
      for (size_t i = 0; i < q.size(); ++i) {
        const int64_t dist = std::llabs(q[i].disk_block - disk.head_block);

        if (dist < pick_dist || (dist == pick_dist && q[i].seq < q[pick].seq)) {
          pick = i;
          pick_dist = dist;
        }
      }
      return pick;
    }
  }
  return 0;
}

RefSim::Request RefSim::PopNext(RefDisk& disk) {
  const size_t idx = PickNext(disk);
  Request r = disk.queue[idx];
  if (config_.discipline == SchedDiscipline::kScan) {
    if (r.disk_block > disk.head_block) {
      disk.scan_up = true;
    } else if (r.disk_block < disk.head_block) {
      disk.scan_up = false;
    }
  }
  disk.queue[idx] = disk.queue.back();
  disk.queue.pop_back();
  return r;
}

void RefSim::Enqueue(DiskId disk, BlockId logical_block, BlockId disk_block, uint64_t seq) {
  Request r;
  r.logical_block = logical_block;
  r.disk_block = disk_block;
  r.enqueue_time = sim_now_;
  r.seq = seq;
  disks_[static_cast<size_t>(disk.v())].queue.push_back(r);
}

void RefSim::TryDispatch(DiskId disk_id) {
  RefDisk& disk = disks_[static_cast<size_t>(disk_id.v())];
  if (disk.busy || disk.queue.empty()) {
    return;
  }
  Request r = PopNext(disk);
  DurNs nominal;
  DurNs service;
  bool failed = false;
  FaultKind fail_kind = FaultKind::kNone;
  if (disk.fault != nullptr && disk.fault->FailStopped(sim_now_)) {
    // A dead drive never moves the head or touches the mechanism.
    nominal = disk.fault->error_latency();
    service = nominal;
    failed = true;
    fail_kind = FaultKind::kFailStop;
  } else if (disk.fault != nullptr && disk.fault->Down(sim_now_)) {
    // Same fast rejection during the outage window; the engine may re-queue.
    nominal = disk.fault->error_latency();
    service = nominal;
    failed = true;
    fail_kind = FaultKind::kOutage;
  } else {
    nominal = disk.mechanism->Access(r.disk_block, sim_now_);
    service = nominal;
    if (disk.fault != nullptr) {
      FaultDecision d = disk.fault->OnAccess(sim_now_, nominal);
      service = d.service;
      failed = d.failed;
      fail_kind = d.kind;
    }
    disk.head_block = r.disk_block;
  }
  PFC_CHECK_GT(service, DurNs{0});
  if (config_.paranoid && !failed && DiskDown(disk_id)) {
    throw SimError::Invariant(
        "down-disk-dispatch",
        "disk " + std::to_string(disk_id.v()) + " accepted a request while unavailable at t=" +
            std::to_string(sim_now_.ns()) + " ns");
  }
  disk.busy = true;
  disk.current = r;
  disk.cur_service = service;
  disk.cur_nominal = nominal;
  disk.cur_complete = sim_now_ + service;
  disk.cur_failed = failed;
  Event ev;
  ev.time = disk.cur_complete;
  ev.seq = next_seq_++;
  ev.disk = disk_id;
  ev.block = r.logical_block;
  ev.service = service;
  ev.nominal = nominal;
  ev.failed = failed;
  ev.kind = EventKind::kComplete;
  ev.fault = fail_kind;
  events_.push_back(ev);
}

void RefSim::CompleteCurrent(RefDisk& disk, TimeNs now_ns) {
  PFC_CHECK(disk.busy);
  PFC_CHECK_EQ(now_ns, disk.cur_complete);
  disk.busy = false;
  disk.busy_ns += disk.cur_service;
  if (disk.cur_failed) {
    ++disk.errors;
    return;
  }
  ++disk.requests;
  disk.sum_service_ms += NsToMs(disk.cur_service);
  disk.sum_response_ms += NsToMs(now_ns - disk.current.enqueue_time);
}

bool RefSim::IssueFetch(BlockId block, BlockId evict) {
  return IssueFetchInternal(block, evict, /*demand=*/false);
}

bool RefSim::IssueFetchInternal(BlockId block, BlockId evict, bool demand) {
  BlockLocation loc = placement_->Map(block);
  // Prefetches to a dead or down disk are refused so policies re-plan (a
  // down disk becomes fetchable again at OnDiskUp); the demand path is
  // allowed through (it fails fast and the re-queue machinery bounds it).
  if (!demand && DiskDown(loc.disk)) {
    return false;
  }
  if (cache_.GetState(block) != CacheView::State::kAbsent) {
    return false;
  }
  if (evict == Engine::kNoEvict) {
    if (cache_.free_buffers() == 0) {
      return false;
    }
    cache_.StartFetchIntoFree(block);
  } else {
    if (!cache_.Present(evict) || evict == block) {
      return false;
    }
    cache_.StartFetchWithEviction(block, evict);
  }
  if (evict != Engine::kNoEvict && ListErase(prefetch_pending_, evict)) {
    // The evicted block was prefetched and never referenced: wasted fetch.
    ++prefetch_useless_;
  }
  if (!demand) {
    ++prefetch_issued_;
    ListInsert(prefetch_inflight_, block);
  }
  Enqueue(loc.disk, block, loc.disk_block, next_seq_++);
  ++fetches_;
  pending_driver_ += config_.driver_overhead;
  driver_total_ += config_.driver_overhead;
  TryDispatch(loc.disk);
  return true;
}

void RefSim::ApplyNextEvent() {
  ApplyNextEventImpl();
  if (config_.paranoid) {
    AuditInvariants();
  }
}

void RefSim::ApplyNextEventImpl() {
  PFC_CHECK(!events_.empty());
  if (++events_processed_ > event_budget_) {
    throw SimError("event budget exceeded: " + std::to_string(event_budget_) +
                   " events processed without finishing the trace (wedged "
                   "run? raise SimConfig::max_events)");
  }
  // The event list is an unordered vector; the next event is the minimum
  // (time, seq), found by scan.
  size_t best = 0;
  for (size_t i = 1; i < events_.size(); ++i) {
    if (events_[i].time < events_[best].time ||
        (events_[i].time == events_[best].time && events_[i].seq < events_[best].seq)) {
      best = i;
    }
  }
  Event ev = events_[best];
  events_.erase(events_.begin() + static_cast<ptrdiff_t>(best));
  PFC_CHECK_GE(ev.time, sim_now_);
  sim_now_ = ev.time;

  if (ev.kind == EventKind::kDiskDown) {
    ++down_disks_;
    policy_->OnDiskDown(*this, ev.disk);
    return;
  }
  if (ev.kind == EventKind::kDiskUp) {
    --down_disks_;
    policy_->OnDiskUp(*this, ev.disk);
    TryDispatch(ev.disk);
    RefDisk& up_disk = disks_[static_cast<size_t>(ev.disk.v())];
    if (!up_disk.busy && up_disk.queue.empty()) {
      policy_->OnDiskIdle(*this, ev.disk);
      TryDispatch(ev.disk);
    }
    if (!up_disk.busy && up_disk.queue.empty()) {
      MaybeFlush(ev.disk);
    }
    return;
  }
  if (ev.kind == EventKind::kRetry) {
    BlockLocation loc = placement_->Map(ev.block);
    pending_driver_ += config_.driver_overhead;
    driver_total_ += config_.driver_overhead;
    Enqueue(ev.disk, ev.block, loc.disk_block, next_seq_++);
    TryDispatch(ev.disk);
    return;
  }
  if (ev.kind == EventKind::kRecover) {
    const TracePos next_use = cursor_.v() < trace_.size() && trace_.block(cursor_) == ev.block
                                  ? cursor_
                                  : oracle_.NextUseAt(ev.block, cursor_);
    cache_.CompleteFetch(ev.block, next_use);
    if (ListErase(prefetch_inflight_, ev.block)) {
      // A prefetch the application ended up stalled on, synthesized after
      // the recovery penalty: it filled, but too late to hide the stall.
      ++prefetch_filled_;
      ++prefetch_late_;
    }
    policy_->OnFetchComplete(*this, ev.disk, ev.block, ev.service);
    return;
  }

  RefDisk& disk = disks_[static_cast<size_t>(ev.disk.v())];
  CompleteCurrent(disk, ev.time);
  if (ev.failed) {
    HandleFailedRequest(ev);
  } else {
    EraseRetryAttempts(ev.block);
    EraseOutageAttempts(ev.block);
    if (ev.service > ev.nominal) {
      AddFaultDelay(ev.block, ev.service - ev.nominal);
    }
    if (waiting_block_ != ev.block) {
      EraseFaultDelay(ev.block);
      EraseOutageDelay(ev.block);
    }
    if (ListErase(flush_in_flight_, ev.block)) {
      --flush_outstanding_[static_cast<size_t>(ev.disk.v())];
      if (ListErase(redirty_pending_, ev.block)) {
        ListInsert(dirty_by_disk_[static_cast<size_t>(ev.disk.v())], ev.block);
      } else {
        cache_.MarkClean(ev.block);
      }
    } else {
      // A block the application is stalled on is keyed at the cursor even
      // when that reference was never hinted (the demand request is itself
      // the disclosure).
      const TracePos next_use = cursor_.v() < trace_.size() && trace_.block(cursor_) == ev.block
                                    ? cursor_
                                    : oracle_.NextUseAt(ev.block, cursor_);
      cache_.CompleteFetch(ev.block, next_use);
      if (ListErase(prefetch_inflight_, ev.block)) {
        ++prefetch_filled_;
        if (waiting_block_ == ev.block) {
          // Landed while the application was already stalled on it: the
          // fetch was right but too late to hide the stall.
          ++prefetch_late_;
        } else {
          ListInsert(prefetch_pending_, ev.block);
        }
      }
      policy_->OnFetchComplete(*this, ev.disk, ev.block, ev.service);
    }
  }
  TryDispatch(ev.disk);
  if (!disk.busy && disk.queue.empty()) {
    policy_->OnDiskIdle(*this, ev.disk);
    TryDispatch(ev.disk);
  }
  if (!disk.busy && disk.queue.empty()) {
    MaybeFlush(ev.disk);
  }
}

void RefSim::HandleFailedRequest(const Event& ev) {
  if (ev.fault == FaultKind::kOutage) {
    HandleOutageFailure(ev);
    return;
  }
  const FaultConfig& fc = config_.faults;
  const bool is_flush = ListContains(flush_in_flight_, ev.block);
  const RefDisk& disk = disks_[static_cast<size_t>(ev.disk.v())];
  const bool dead = disk.fault != nullptr && disk.fault->FailStopped(sim_now_);
  const int attempts = BumpRetryAttempts(ev.block);
  if (!dead && attempts <= fc.max_retries) {
    const int shift = std::min(attempts - 1, 20);
    const DurNs backoff{fc.retry_backoff.ns() << shift};
    AddFaultDelay(ev.block, ev.service + backoff);
    ++retries_;
    Event retry;
    retry.time = sim_now_ + backoff;
    retry.seq = next_seq_++;
    retry.disk = ev.disk;
    retry.block = ev.block;
    retry.kind = EventKind::kRetry;
    events_.push_back(retry);
    return;
  }

  ++failed_requests_;
  EraseRetryAttempts(ev.block);
  if (is_flush) {
    ListErase(flush_in_flight_, ev.block);
    --flush_outstanding_[static_cast<size_t>(ev.disk.v())];
    ListErase(redirty_pending_, ev.block);
    cache_.MarkClean(ev.block);
    if (waiting_block_ == ev.block) {
      AddFaultDelay(ev.block, ev.service);
    } else {
      EraseFaultDelay(ev.block);
    }
  } else if (waiting_block_ == ev.block) {
    AddFaultDelay(ev.block, ev.service + fc.recovery_penalty);
    Event recover;
    recover.time = sim_now_ + fc.recovery_penalty;
    recover.seq = next_seq_++;
    recover.disk = ev.disk;
    recover.block = ev.block;
    recover.service = fc.recovery_penalty;
    recover.kind = EventKind::kRecover;
    events_.push_back(recover);
  } else {
    EraseFaultDelay(ev.block);
    cache_.CancelFetch(ev.block);
    if (ListErase(prefetch_inflight_, ev.block)) {
      ++prefetch_failed_;
    }
    policy_->OnFetchFailed(*this, ev.disk, ev.block);
  }
}

void RefSim::HandleOutageFailure(const Event& ev) {
  const FaultConfig& fc = config_.faults;
  if (ListErase(flush_in_flight_, ev.block)) {
    // The write-back never reached the platters: the buffer stays dirty and
    // is re-flushed once the disk recovers (no data loss).
    --flush_outstanding_[static_cast<size_t>(ev.disk.v())];
    ListErase(redirty_pending_, ev.block);
    ListInsert(dirty_by_disk_[static_cast<size_t>(ev.disk.v())], ev.block);
    if (waiting_block_ == ev.block) {
      AddOutageDelay(ev.block, ev.service);
    }
    return;
  }
  if (waiting_block_ == ev.block) {
    // Re-queue the stalled demand fetch across the outage with bounded
    // backoff; outage re-queues burn their own counter, not max_retries.
    const int attempts = BumpOutageAttempts(ev.block);
    const int shift = std::min(attempts - 1, 20);
    const DurNs backoff{fc.retry_backoff.ns() << shift};
    AddOutageDelay(ev.block, ev.service + backoff);
    ++retries_;
    Event retry;
    retry.time = sim_now_ + backoff;
    retry.seq = next_seq_++;
    retry.disk = ev.disk;
    retry.block = ev.block;
    retry.kind = EventKind::kRetry;
    events_.push_back(retry);
    return;
  }
  // A prefetch to a down disk: cancel and let the policy re-plan.
  ++failed_requests_;
  EraseOutageDelay(ev.block);
  EraseFaultDelay(ev.block);
  cache_.CancelFetch(ev.block);
  if (ListErase(prefetch_inflight_, ev.block)) {
    ++prefetch_failed_;
  }
  policy_->OnFetchFailed(*this, ev.disk, ev.block);
}

void RefSim::EndStall(BlockId block, TimeNs wait_start) {
  if (sim_now_ > wait_start) {
    const DurNs duration = sim_now_ - wait_start;
    stall_total_ += duration;
    app_time_ = sim_now_;
    // Outage share first, then the media-error share from what remains, so
    // the buckets partition the window exactly (same order as Simulator).
    DurNs outage_share;
    const DurNs* odelay = FindOutageDelay(block);
    if (odelay != nullptr) {
      outage_share = std::min(duration, *odelay);
      outage_stall_ += outage_share;
      EraseOutageDelay(block);
    }
    const DurNs* delay = FindFaultDelay(block);
    if (delay != nullptr) {
      degraded_stall_ += std::min(duration - outage_share, *delay);
      EraseFaultDelay(block);
    }
  } else {
    EraseFaultDelay(block);
    EraseOutageDelay(block);
  }
}

void RefSim::IssueFlush(BlockId block) {
  PFC_CHECK(cache_.Present(block) && cache_.Dirty(block));
  PFC_CHECK(!ListContains(flush_in_flight_, block));
  BlockLocation loc = placement_->Map(block);
  ListErase(dirty_by_disk_[static_cast<size_t>(loc.disk.v())], block);
  flush_in_flight_.push_back(block);
  ++flush_outstanding_[static_cast<size_t>(loc.disk.v())];
  Enqueue(loc.disk, block, loc.disk_block, next_seq_++);
  ++flushes_;
  pending_driver_ += config_.driver_overhead;
  driver_total_ += config_.driver_overhead;
  TryDispatch(loc.disk);
}

void RefSim::MaybeFlush(DiskId disk) {
  if (config_.write_through) {
    return;
  }
  std::vector<BlockId>& dirty = dirty_by_disk_[static_cast<size_t>(disk.v())];
  if (dirty.empty()) {
    return;
  }
  const RefDisk& rd = disks_[static_cast<size_t>(disk.v())];
  if (rd.fault != nullptr && rd.fault->Down(sim_now_)) {
    // Flushing a disk in its outage window only churns fast failures; the
    // dirty population waits for kDiskUp (which calls back here).
    return;
  }
  if (DiskIdle(disk)) {
    IssueFlush(ListMin(dirty));
    return;
  }
  const int64_t high_water =
      std::max<int64_t>(1, config_.cache_blocks / (4 * config_.num_disks));
  while (static_cast<int64_t>(dirty.size()) > high_water &&
         flush_outstanding_[static_cast<size_t>(disk.v())] < 8) {
    IssueFlush(ListMin(dirty));
  }
}

bool RefSim::ForceFlushForProgress() {
  if (config_.write_through) {
    return false;
  }
  for (DiskId d{0}; d.v() < config_.num_disks; ++d) {
    const RefDisk& rd = disks_[static_cast<size_t>(d.v())];
    if (rd.fault != nullptr && rd.fault->Down(sim_now_)) {
      // An outage disk's dirty blocks are unflushable until kDiskUp; that
      // pending event guarantees the waiting loops still make progress.
      continue;
    }
    std::vector<BlockId>& dirty = dirty_by_disk_[static_cast<size_t>(d.v())];
    if (!dirty.empty()) {
      IssueFlush(ListMin(dirty));
      return true;
    }
  }
  return false;
}

void RefSim::ServeWrite(TracePos pos, BlockId block) {
  ++write_refs_;
  const TimeNs wait_start = app_time_;
  waiting_block_ = block;

  while (cache_.Fetching(block)) {
    ApplyNextEvent();
  }

  // Whole-block write: dirty the cached copy if one exists, else materialize
  // a buffer (no fetch required). The block's state must be re-checked on
  // every pass — events processed while waiting for a buffer run policy
  // callbacks that may prefetch this very block.
  for (;;) {
    if (cache_.Present(block)) {
      if (ListContains(flush_in_flight_, block)) {
        ListInsert(redirty_pending_, block);
      } else if (!cache_.Dirty(block)) {
        cache_.MarkDirty(block);
        ListInsert(dirty_by_disk_[static_cast<size_t>(placement_->Map(block).disk.v())], block);
      }
      break;
    }
    if (cache_.Fetching(block)) {
      ApplyNextEvent();
      continue;
    }
    if (cache_.free_buffers() > 0) {
      cache_.InsertWritten(block, oracle_.NextUseAt(block, pos));
      ListInsert(dirty_by_disk_[static_cast<size_t>(placement_->Map(block).disk.v())], block);
      break;
    }
    if (cache_.present_count() > 0) {
      const BlockId victim = policy_->ChooseDemandEviction(*this, block);
      cache_.EvictClean(victim);
      if (ListErase(prefetch_pending_, victim)) {
        // Evicted to make room for the write buffer before its reference
        // arrived: the prefetch was wasted.
        ++prefetch_useless_;
      }
      continue;
    }
    if (flush_in_flight_.empty()) {
      ForceFlushForProgress();
    }
    PFC_CHECK_MSG(!events_.empty(), "cache wedged: all buffers dirty or in flight");
    ApplyNextEvent();
  }

  if (config_.write_through) {
    while (ListContains(flush_in_flight_, block)) {
      ApplyNextEvent();
    }
    if (cache_.Dirty(block)) {
      IssueFlush(block);
      while (ListContains(flush_in_flight_, block)) {
        ApplyNextEvent();
      }
    }
  }

  waiting_block_ = kNoBlock;
  EndStall(block, wait_start);
}

void RefSim::DrainEventsUpTo(TimeNs t) {
  for (;;) {
    if (events_.empty()) {
      break;
    }
    TimeNs min_time = events_[0].time;
    for (const Event& ev : events_) {
      if (ev.time < min_time) {
        min_time = ev.time;
      }
    }
    if (min_time > t) {
      break;
    }
    ApplyNextEvent();
  }
  sim_now_ = t;
}

void RefSim::DemandFetch(BlockId block) {
  ++demand_fetches_;
  for (;;) {
    if (cache_.GetState(block) != CacheView::State::kAbsent) {
      return;  // a policy callback fetched it while we were waiting
    }
    if (cache_.free_buffers() > 0) {
      const bool ok = IssueFetchInternal(block, Engine::kNoEvict, /*demand=*/true);
      PFC_CHECK(ok);
      policy_->OnDemandFetch(*this, block);
      return;
    }
    if (cache_.present_count() > 0) {
      const BlockId victim = policy_->ChooseDemandEviction(*this, block);
      const bool ok = IssueFetchInternal(block, victim, /*demand=*/true);
      PFC_CHECK_MSG(ok, "demand eviction choice was not a present block");
      policy_->OnDemandFetch(*this, block);
      return;
    }
    if (flush_in_flight_.empty()) {
      ForceFlushForProgress();
    }
    PFC_CHECK_MSG(!events_.empty(), "cache saturated with fetches but no disk events pending");
    ApplyNextEvent();
  }
}

RunResult RefSim::Run() {
  PFC_CHECK_MSG(!ran_, "RefSim::Run is single-shot");
  ran_ = true;

  policy_->Init(*this);

  // Outage windows are scheduled up front as first-class events, with the
  // smallest sequence numbers so at their timestamp they apply before any
  // disk completion (same ordering contract as Simulator).
  const FaultConfig& fc = config_.faults;
  if (fc.outage_disk >= DiskId{0} && fc.outage_disk.v() < config_.num_disks &&
      fc.outage_end > fc.outage_start) {
    Event down;
    down.time = fc.outage_start;
    down.seq = next_seq_++;
    down.disk = fc.outage_disk;
    down.kind = EventKind::kDiskDown;
    events_.push_back(down);
    Event up;
    up.time = fc.outage_end;
    up.seq = next_seq_++;
    up.disk = fc.outage_disk;
    up.kind = EventKind::kDiskUp;
    events_.push_back(up);
  }

  const RefOracle& index = oracle_;
  const int64_t n = trace_.size();
  for (TracePos pos{0}; pos.v() < n; ++pos) {
    cursor_ = pos;
    DrainEventsUpTo(app_time_);
    policy_->OnReference(*this, pos);
    if (cache_.dirty_count() > 0) {
      for (DiskId d{0}; d.v() < config_.num_disks; ++d) {
        MaybeFlush(d);
      }
    }

    const BlockId block = trace_.block(pos);
    if (ListErase(prefetch_pending_, block)) {
      // The reference consumes the block: the prefetch that brought it in
      // paid off (and is no longer a candidate "unused" fetch).
      ++prefetch_useful_;
    }
    if (trace_.is_write(pos)) {
      ServeWrite(pos, block);
      // Write-through only: a policy prefetch issued while ServeWrite waited
      // out the flush may have evicted the freshly cleaned buffer. The write
      // is already durable, so the buffer need not survive the reference.
      if (cache_.Present(block)) {
        cache_.UpdateNextUse(block, index.NextUseAfterPosition(pos));
      }
      const DurNs compute = ScaledCompute(pos);
      compute_total_ += compute;
      app_time_ += compute + pending_driver_;
      pending_driver_ = DurNs{0};
      continue;
    }
    if (!cache_.Present(block)) {
      waiting_block_ = block;
      if (!cache_.Fetching(block)) {
        DemandFetch(block);
      }
      const TimeNs wait_start = app_time_;
      while (!cache_.Present(block)) {
        if (cache_.GetState(block) == CacheView::State::kAbsent) {
          // A policy callback evicted the block while we waited; demand it
          // again rather than livelock.
          DemandFetch(block);
          continue;
        }
        ApplyNextEvent();
      }
      waiting_block_ = kNoBlock;
      EndStall(block, wait_start);
    }

    cache_.UpdateNextUse(block, index.NextUseAfterPosition(pos));
    const DurNs compute = ScaledCompute(pos);
    compute_total_ += compute;
    app_time_ += compute + pending_driver_;
    pending_driver_ = DurNs{0};
  }

  // Reconcile the prefetch ledger at end of trace: a fetch still in flight
  // never filled (it joins the failed bucket), and a filled block never
  // referenced was useless. After this both balances hold with the
  // in-flight/pending terms zero.
  prefetch_failed_ += static_cast<int64_t>(prefetch_inflight_.size());
  prefetch_useless_ += static_cast<int64_t>(prefetch_pending_.size());
  prefetch_inflight_.clear();
  prefetch_pending_.clear();

  RunResult result;
  result.trace_name = trace_.name();
  result.policy_name = policy_->name();
  result.num_disks = config_.num_disks;
  result.fetches = fetches_;
  result.demand_fetches = demand_fetches_;
  result.write_refs = write_refs_;
  result.flushes = flushes_;
  result.dirty_at_end = cache_.dirty_count();
  result.retries = retries_;
  result.failed_requests = failed_requests_;
  result.prefetch_issued = prefetch_issued_;
  result.prefetch_filled = prefetch_filled_;
  result.prefetch_failed = prefetch_failed_;
  result.prefetch_useful = prefetch_useful_;
  result.prefetch_useless = prefetch_useless_;
  result.prefetch_late = prefetch_late_;
  result.compute_time = compute_total_;
  result.driver_time = driver_total_;
  result.stall_time = stall_total_;
  result.elapsed_time = app_time_ - TimeNs{0};
  result.degraded_stall_ns = degraded_stall_;
  result.outage_stall_ns = outage_stall_;

  // Same floating-point accumulation order as the optimized engine: disks in
  // id order, sums before averages.
  int64_t completed = 0;
  double sum_service = 0;
  double sum_response = 0;
  double util_sum = 0;
  for (DiskId i{0}; i.v() < config_.num_disks; ++i) {
    const RefDisk& d = disks_[static_cast<size_t>(i.v())];
    completed += d.requests;
    sum_service += d.sum_service_ms;
    sum_response += d.sum_response_ms;
    const double util = app_time_ > TimeNs{0}
                            ? static_cast<double>(d.busy_ns.ns()) / static_cast<double>(app_time_.ns())
                            : 0.0;
    result.per_disk_util.push_back(util);
    util_sum += util;
  }
  if (completed > 0) {
    result.avg_fetch_ms = sum_service / static_cast<double>(completed);
    result.avg_response_ms = sum_response / static_cast<double>(completed);
  }
  result.avg_disk_util = util_sum / static_cast<double>(config_.num_disks);
  return result;
}

void RefSim::AuditInvariants() const {
  // Naive mirror of Simulator::AuditInvariants: same invariant names, same
  // SimError texts, re-derived from this engine's flat structures.
  std::string cache_violation = cache_.AuditViolation();
  if (!cache_violation.empty()) {
    throw SimError::Invariant("cache-consistency", cache_violation);
  }
  if (degraded_stall_ + outage_stall_ > stall_total_) {
    throw SimError::Invariant(
        "stall-partial-sums",
        "degraded " + std::to_string(degraded_stall_.ns()) + " ns + outage " +
            std::to_string(outage_stall_.ns()) + " ns exceed stall total " +
            std::to_string(stall_total_.ns()) + " ns");
  }
  int down = 0;
  for (const RefDisk& d : disks_) {
    if (d.fault != nullptr && d.fault->Down(sim_now_)) {
      ++down;
    }
  }
  if (down != down_disks_) {
    throw SimError::Invariant(
        "down-disk-count", "engine counts " + std::to_string(down_disks_) +
                               " down disks but the fault layer reports " + std::to_string(down) +
                               " at t=" + std::to_string(sim_now_.ns()) + " ns");
  }
  size_t flushable = 0;
  for (const std::vector<BlockId>& dirty : dirty_by_disk_) {
    flushable += dirty.size();
  }
  if (static_cast<int64_t>(flushable + flush_in_flight_.size()) !=
      static_cast<int64_t>(cache_.dirty_count())) {
    throw SimError::Invariant(
        "dirty-accounting",
        "cache reports " + std::to_string(cache_.dirty_count()) + " dirty blocks but " +
            std::to_string(flushable) + " are flushable and " +
            std::to_string(flush_in_flight_.size()) + " in flight");
  }
  int outstanding = 0;
  for (int per_disk : flush_outstanding_) {
    outstanding += per_disk;
  }
  if (outstanding != static_cast<int>(flush_in_flight_.size())) {
    throw SimError::Invariant(
        "flush-outstanding",
        "per-disk outstanding flush counters sum to " + std::to_string(outstanding) + " but " +
            std::to_string(flush_in_flight_.size()) + " flushes are in flight");
  }
  // Prefetch ledger balances: every issued prefetch is filled, failed, or
  // still in flight; every filled prefetch is useful, useless, late, or
  // still awaiting its reference.
  if (prefetch_issued_ != prefetch_filled_ + prefetch_failed_ +
                              static_cast<int64_t>(prefetch_inflight_.size()) ||
      prefetch_filled_ != prefetch_useful_ + prefetch_useless_ + prefetch_late_ +
                              static_cast<int64_t>(prefetch_pending_.size())) {
    throw SimError::Invariant(
        "prefetch-balance",
        "issued " + std::to_string(prefetch_issued_) + " != filled " +
            std::to_string(prefetch_filled_) + " + failed " + std::to_string(prefetch_failed_) +
            " + inflight " + std::to_string(prefetch_inflight_.size()) + ", or filled != useful " +
            std::to_string(prefetch_useful_) + " + useless " + std::to_string(prefetch_useless_) +
            " + late " + std::to_string(prefetch_late_) + " + pending " +
            std::to_string(prefetch_pending_.size()));
  }
}

}  // namespace pfc
