// Randomized scenario fuzzing for the differential-verification subsystem.
//
// A FuzzScenario is one fully specified cell: a generated trace plus a
// SimConfig and a policy choice. GenScenario derives everything
// deterministically from a single seed; RunScenario replays the cell through
// both engines (check/diff.h) and reports divergence; ShrinkScenario
// greedily minimizes a diverging scenario (drop references, drop disks, zero
// fault rates, simplify knobs) while preserving the divergence; the .repro
// text format round-trips a scenario so a minimized case can be committed
// under tests/repros/ and replayed forever (tools/pfc_fuzz --replay).

#ifndef PFC_CHECK_FUZZ_H_
#define PFC_CHECK_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/diff.h"
#include "core/sim_config.h"
#include "harness/experiment.h"
#include "trace/trace.h"

namespace pfc {

struct FuzzScenario {
  uint64_t seed = 0;  // provenance only; replay does not redraw from it
  PolicyKind policy = PolicyKind::kDemand;
  SimConfig config;
  std::vector<TraceEntry> refs;

  Trace BuildTrace() const;
};

// Deterministically generates a scenario from a seed. Reverse aggressive
// cells are constrained to full hints and read-only traces (the policy
// rejects anything else by design).
FuzzScenario GenScenario(uint64_t seed);

struct FuzzOutcome {
  bool diverged = false;
  std::string detail;  // DiffReport::ToString() when diverged
};

// Replays the scenario through both engines and compares exactly.
FuzzOutcome RunScenario(const FuzzScenario& scenario);

// Greedily shrinks a diverging scenario; returns the smallest still-diverging
// scenario found. `steps_out` (optional) reports how many candidate
// reductions were attempted.
FuzzScenario ShrinkScenario(const FuzzScenario& scenario, int* steps_out);

// Text round-trip for .repro files.
std::string SerializeScenario(const FuzzScenario& scenario);
bool ParseScenario(const std::string& text, FuzzScenario* out, std::string* error);

}  // namespace pfc

#endif  // PFC_CHECK_FUZZ_H_
