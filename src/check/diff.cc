#include "check/diff.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "check/ref_sim.h"
#include "core/sim_error.h"
#include "core/simulator.h"
#include "core/trace_context.h"
#include "theory/lower_bound.h"

namespace pfc {

namespace {

// Doubles are compared bit-for-bit: both engines promise the same
// floating-point accumulation order, so representation equality is the spec.
bool SameBits(double a, double b) {
  uint64_t ua;
  uint64_t ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

void Note(std::vector<std::string>* why, const char* field, const std::string& a,
          const std::string& b) {
  if (why != nullptr) {
    why->push_back(std::string(field) + ": sim=" + a + " ref=" + b);
  }
}

std::string D(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// The shared oracle must be built from a validated config: an invalid
// predictor setup has to surface as the engines' SimError (both-throw
// agreement), not as a PFC_CHECK abort inside the hint-stream builder. When
// validation rejects the config, fall back to the oracle predictor — the
// engines throw at construction before they ever compare the context's
// predictor against the config's.
PredictorConfig ContextPredictor(const SimConfig& config) {
  try {
    ValidateSimConfig(config);
  } catch (const SimError&) {
    return PredictorConfig{};
  }
  return config.predictor;
}

}  // namespace

bool ResultsExactlyEqual(const RunResult& a, const RunResult& b,
                         std::vector<std::string>* why) {
  bool equal = true;
  auto check_int = [&](const char* field, int64_t x, int64_t y) {
    if (x != y) {
      equal = false;
      Note(why, field, std::to_string(x), std::to_string(y));
    }
  };
  auto check_double = [&](const char* field, double x, double y) {
    if (!SameBits(x, y)) {
      equal = false;
      Note(why, field, D(x), D(y));
    }
  };
  check_int("num_disks", a.num_disks, b.num_disks);
  check_int("fetches", a.fetches, b.fetches);
  check_int("demand_fetches", a.demand_fetches, b.demand_fetches);
  check_int("write_refs", a.write_refs, b.write_refs);
  check_int("flushes", a.flushes, b.flushes);
  check_int("dirty_at_end", a.dirty_at_end, b.dirty_at_end);
  check_int("retries", a.retries, b.retries);
  check_int("failed_requests", a.failed_requests, b.failed_requests);
  check_int("prefetch_issued", a.prefetch_issued, b.prefetch_issued);
  check_int("prefetch_filled", a.prefetch_filled, b.prefetch_filled);
  check_int("prefetch_failed", a.prefetch_failed, b.prefetch_failed);
  check_int("prefetch_useful", a.prefetch_useful, b.prefetch_useful);
  check_int("prefetch_useless", a.prefetch_useless, b.prefetch_useless);
  check_int("prefetch_late", a.prefetch_late, b.prefetch_late);
  check_int("compute_time", a.compute_time.ns(), b.compute_time.ns());
  check_int("driver_time", a.driver_time.ns(), b.driver_time.ns());
  check_int("stall_time", a.stall_time.ns(), b.stall_time.ns());
  check_int("elapsed_time", a.elapsed_time.ns(), b.elapsed_time.ns());
  check_int("degraded_stall_ns", a.degraded_stall_ns.ns(), b.degraded_stall_ns.ns());
  check_int("outage_stall_ns", a.outage_stall_ns.ns(), b.outage_stall_ns.ns());
  check_double("avg_fetch_ms", a.avg_fetch_ms, b.avg_fetch_ms);
  check_double("avg_response_ms", a.avg_response_ms, b.avg_response_ms);
  check_double("avg_disk_util", a.avg_disk_util, b.avg_disk_util);
  check_int("per_disk_util.size", static_cast<int64_t>(a.per_disk_util.size()),
            static_cast<int64_t>(b.per_disk_util.size()));
  if (a.per_disk_util.size() == b.per_disk_util.size()) {
    for (size_t i = 0; i < a.per_disk_util.size(); ++i) {
      char field[48];
      std::snprintf(field, sizeof(field), "per_disk_util[%zu]", i);
      check_double(field, a.per_disk_util[i], b.per_disk_util[i]);
    }
  }
  return equal;
}

RunResult RunRefSim(const Trace& trace, const SimConfig& config, PolicyKind kind,
                    const PolicyOptions& options) {
  SimConfig cfg = config;
  cfg.obs = ObsOptions{};
  TraceContext context(trace, cfg.hint_coverage, cfg.hint_seed, cfg.hint_fault,
                       ContextPredictor(cfg));
  std::unique_ptr<Policy> policy = MakePolicy(kind, options);
  RefSim ref(context, cfg, policy.get());
  return ref.Run();
}

DiffReport RunDifferential(const Trace& trace, const SimConfig& config, PolicyKind kind,
                           const PolicyOptions& options) {
  DiffReport report;
  SimConfig cfg = config;
  cfg.obs = ObsOptions{};  // RefSim has no observability; compare sink-less runs
  // The paranoid auditor is free correctness signal here — any internal
  // inconsistency becomes a SimError divergence instead of a silent miscount.
  cfg.paranoid = true;

  // One shared oracle, two engines, two fresh policy instances.
  TraceContext context(trace, cfg.hint_coverage, cfg.hint_seed, cfg.hint_fault,
                       ContextPredictor(cfg));

  try {
    std::unique_ptr<Policy> policy = MakePolicy(kind, options);
    Simulator sim(context, cfg, policy.get());
    report.sim_result = sim.Run();
  } catch (const SimError& e) {
    report.sim_threw = true;
    report.sim_error = e.what();
  }
  try {
    std::unique_ptr<Policy> policy = MakePolicy(kind, options);
    RefSim ref(context, cfg, policy.get());
    report.ref_result = ref.Run();
  } catch (const SimError& e) {
    report.ref_threw = true;
    report.ref_error = e.what();
  }

  if (report.sim_threw != report.ref_threw) {
    report.mismatches.push_back(
        std::string("SimError divergence: sim ") +
        (report.sim_threw ? "threw (" + report.sim_error + ")" : "completed") + ", ref " +
        (report.ref_threw ? "threw (" + report.ref_error + ")" : "completed"));
    report.consistent = false;
    return report;
  }
  if (report.sim_threw) {
    // Both engines rejected the cell; that is agreement.
    report.consistent = true;
    return report;
  }

  bool equal = ResultsExactlyEqual(report.sim_result, report.ref_result, &report.mismatches);

  report.lower_bound_ns = TheoryLowerBoundNs(trace, cfg);
  if (report.sim_result.elapsed_time < report.lower_bound_ns) {
    equal = false;
    report.mismatches.push_back("theory bound violated by sim: elapsed " +
                                std::to_string(report.sim_result.elapsed_time.ns()) + " < bound " +
                                std::to_string(report.lower_bound_ns.ns()));
  }
  if (report.ref_result.elapsed_time < report.lower_bound_ns) {
    equal = false;
    report.mismatches.push_back("theory bound violated by ref: elapsed " +
                                std::to_string(report.ref_result.elapsed_time.ns()) + " < bound " +
                                std::to_string(report.lower_bound_ns.ns()));
  }

  report.consistent = equal;
  return report;
}

std::string DiffReport::ToString() const {
  if (consistent) {
    return "consistent";
  }
  std::string out = "DIVERGED:\n";
  for (const std::string& m : mismatches) {
    out += "  " + m + "\n";
  }
  return out;
}

}  // namespace pfc
