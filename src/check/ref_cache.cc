#include "check/ref_cache.h"

#include "util/check.h"

namespace pfc {

RefCache::RefCache(int capacity_blocks) : capacity_(capacity_blocks) {
  PFC_CHECK_GT(capacity_blocks, 0);
}

RefCache::Slot* RefCache::Find(BlockId block) {
  for (Slot& s : slots_) {
    if (s.block == block) {
      return &s;
    }
  }
  return nullptr;
}

const RefCache::Slot* RefCache::Find(BlockId block) const {
  for (const Slot& s : slots_) {
    if (s.block == block) {
      return &s;
    }
  }
  return nullptr;
}

void RefCache::Remove(BlockId block) {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].block == block) {
      slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
  PFC_CHECK_MSG(false, "RefCache::Remove: block not resident");
}

int RefCache::present_count() const {
  // Present *clean* blocks only, matching BufferCache's eviction index.
  int n = 0;
  for (const Slot& s : slots_) {
    if (s.state == State::kPresent && !s.dirty) {
      ++n;
    }
  }
  return n;
}

CacheView::State RefCache::GetState(BlockId block) const {
  const Slot* s = Find(block);
  return s == nullptr ? State::kAbsent : s->state;
}

bool RefCache::Dirty(BlockId block) const {
  const Slot* s = Find(block);
  return s != nullptr && s->dirty;
}

int RefCache::dirty_count() const {
  int n = 0;
  for (const Slot& s : slots_) {
    if (s.dirty) {
      ++n;
    }
  }
  return n;
}

std::optional<BlockId> RefCache::FurthestBlock() const {
  const Slot* best = nullptr;
  for (const Slot& s : slots_) {
    if (s.state != State::kPresent || s.dirty) {
      continue;
    }
    // Ties on next_use break toward the larger block id, matching the
    // (next_use, block) ordering of the optimized cache's index.
    if (best == nullptr || s.next_use > best->next_use ||
        (s.next_use == best->next_use && s.block > best->block)) {
      best = &s;
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  return best->block;
}

TracePos RefCache::FurthestNextUse() const {
  std::optional<BlockId> block = FurthestBlock();
  if (!block.has_value()) {
    return kNoCandidate;
  }
  return Find(*block)->next_use;
}

void RefCache::StartFetchIntoFree(BlockId block) {
  PFC_CHECK_GT(free_buffers(), 0);
  PFC_CHECK(GetState(block) == State::kAbsent);
  slots_.push_back(Slot{block, State::kFetching, TracePos{0}, false});
}

void RefCache::StartFetchWithEviction(BlockId block, BlockId evict) {
  PFC_CHECK(block != evict);
  const Slot* victim = Find(evict);
  PFC_CHECK(victim != nullptr && victim->state == State::kPresent);
  PFC_CHECK(!victim->dirty);
  PFC_CHECK(GetState(block) == State::kAbsent);
  Remove(evict);
  slots_.push_back(Slot{block, State::kFetching, TracePos{0}, false});
}

void RefCache::CompleteFetch(BlockId block, TracePos next_use) {
  Slot* s = Find(block);
  PFC_CHECK(s != nullptr && s->state == State::kFetching);
  s->state = State::kPresent;
  s->next_use = next_use;
}

void RefCache::CancelFetch(BlockId block) {
  Slot* s = Find(block);
  PFC_CHECK(s != nullptr && s->state == State::kFetching);
  Remove(block);
}

void RefCache::UpdateNextUse(BlockId block, TracePos next_use) {
  Slot* s = Find(block);
  PFC_CHECK(s != nullptr && s->state == State::kPresent);
  s->next_use = next_use;
}

void RefCache::InsertWritten(BlockId block, TracePos next_use) {
  PFC_CHECK_GT(free_buffers(), 0);
  PFC_CHECK(GetState(block) == State::kAbsent);
  slots_.push_back(Slot{block, State::kPresent, next_use, true});
}

void RefCache::EvictClean(BlockId block) {
  Slot* s = Find(block);
  PFC_CHECK(s != nullptr && s->state == State::kPresent);
  PFC_CHECK(!s->dirty);
  Remove(block);
}

void RefCache::MarkDirty(BlockId block) {
  Slot* s = Find(block);
  PFC_CHECK(s != nullptr && s->state == State::kPresent);
  s->dirty = true;
}

void RefCache::MarkClean(BlockId block) {
  Slot* s = Find(block);
  PFC_CHECK(s != nullptr && s->state == State::kPresent);
  PFC_CHECK(s->dirty);
  s->dirty = false;
}

std::string RefCache::AuditViolation() const {
  if (static_cast<int>(slots_.size()) > capacity_) {
    return "occupied slots " + std::to_string(slots_.size()) + " exceed capacity " +
           std::to_string(capacity_);
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.state == State::kAbsent) {
      return "absent slot lingers for block " + std::to_string(s.block.v());
    }
    if (s.dirty && s.state != State::kPresent) {
      return "dirty block " + std::to_string(s.block.v()) + " is not present";
    }
    for (size_t j = i + 1; j < slots_.size(); ++j) {
      if (slots_[j].block == s.block) {
        return "duplicate slots for block " + std::to_string(s.block.v());
      }
    }
  }
  return {};
}

}  // namespace pfc
