#include "disk/seek_model.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace pfc {

SeekModel::SeekModel(double short_base_ms, double short_sqrt_ms, double long_base_ms,
                     double long_linear_ms, int64_t crossover_cylinders)
    : short_base_ms_(short_base_ms),
      short_sqrt_ms_(short_sqrt_ms),
      long_base_ms_(long_base_ms),
      long_linear_ms_(long_linear_ms),
      crossover_(crossover_cylinders) {
  PFC_CHECK(crossover_cylinders > 0);
}

SeekModel SeekModel::Hp97560() { return SeekModel(3.24, 0.400, 8.00, 0.008, 383); }

DurNs SeekModel::SeekTime(int64_t distance) const {
  distance = std::llabs(distance);
  if (distance == 0) {
    return DurNs{0};
  }
  double ms;
  if (distance < crossover_) {
    ms = short_base_ms_ + short_sqrt_ms_ * std::sqrt(static_cast<double>(distance));
  } else {
    ms = long_base_ms_ + long_linear_ms_ * static_cast<double>(distance);
  }
  return MsToNs(ms);
}

}  // namespace pfc
