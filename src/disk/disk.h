// One disk: a request queue, a scheduling discipline, and a mechanism.
//
// Fetches to a single disk are serialized (one in service at a time); the
// queue is reordered by the discipline at each dispatch. The simulation
// engine drives the disk: Enqueue -> TryDispatch -> (event fires) ->
// CompleteCurrent -> TryDispatch.
//
// An optional FaultModel sits between the queue and the mechanism: it can
// fail a dispatched request (transient media error), stretch its service
// time (latency tail / slow disk), or fail-stop the whole drive. The engine
// owns the retry policy; the disk only reports what happened.

#ifndef PFC_DISK_DISK_H_
#define PFC_DISK_DISK_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "disk/disk_mechanism.h"
#include "disk/fault_model.h"
#include "disk/scheduler.h"
#include "obs/event_sink.h"
#include "util/stats.h"
#include "util/time_util.h"

namespace pfc {

struct DispatchResult {
  BlockId logical_block;
  BlockId disk_block;
  TimeNs complete_time;
  DurNs service_time;      // actual (fault-adjusted) service time
  DurNs nominal_service;   // what the mechanism alone would have taken
  TimeNs enqueue_time;
  bool failed = false;  // request errors at complete_time instead of finishing
  FaultKind fail_kind = FaultKind::kNone;  // why, when failed
};

struct DiskStats {
  int64_t requests = 0;        // successfully completed requests
  int64_t errors = 0;          // failed attempts (each retry counts again)
  DurNs busy_ns;               // total time in service, including failures
  double sum_service_ms = 0;   // for average fetch time (successes only)
  double sum_response_ms = 0;  // queueing + service (successes only)
};

class Disk {
 public:
  Disk(DiskId id, std::unique_ptr<DiskMechanism> mechanism, SchedDiscipline discipline,
       std::unique_ptr<FaultModel> fault = nullptr);

  DiskId id() const { return id_; }

  void Enqueue(BlockId logical_block, BlockId disk_block, TimeNs now, uint64_t seq);

  bool busy() const { return busy_; }
  size_t queue_len() const { return scheduler_.size(); }
  // Idle = not servicing anything and nothing queued. Policies key off this.
  bool idle() const { return !busy_ && scheduler_.empty(); }

  // True once the fault model has fail-stopped this disk.
  bool FailStopped(TimeNs now) const {
    return fault_ != nullptr && fault_->FailStopped(now);
  }

  // True while the fault model's outage window holds this disk down.
  bool Down(TimeNs now) const { return fault_ != nullptr && fault_->Down(now); }

  // If the disk is free and has queued work, begins servicing the next
  // request and returns its completion record (the engine schedules the
  // event). Returns nullopt otherwise. A fail-stopped or down disk still
  // accepts dispatches but every one fails fast after error_latency — the
  // queue must drain somewhere, and the engine decides whether to retry.
  std::optional<DispatchResult> TryDispatch(TimeNs now);

  // Marks the in-service request finished. Must match the last dispatch.
  void CompleteCurrent(TimeNs now);

  const DiskStats& stats() const { return stats_; }
  DiskMechanism& mechanism() { return *mechanism_; }
  const DiskMechanism& mechanism() const { return *mechanism_; }

  // Observability: with a sink installed the disk emits kDiskBusyBegin at
  // each dispatch (planned service, post-pop queue depth) and kDiskBusyEnd
  // at each completion (actual service, response, failed flag). Null (the
  // default) costs one branch per dispatch/completion.
  void SetEventSink(EventSink* sink) { sink_ = sink; }

  void Reset();

 private:
  DiskId id_;
  std::unique_ptr<DiskMechanism> mechanism_;
  RequestScheduler scheduler_;
  std::unique_ptr<FaultModel> fault_;  // nullptr when faults are disabled
  bool busy_ = false;
  BlockId head_block_;      // last block the head touched
  DispatchResult current_;
  DiskStats stats_;
  EventSink* sink_ = nullptr;  // null = observability disabled
};

}  // namespace pfc

#endif  // PFC_DISK_DISK_H_
