// A parallel array of independently accessible disks.

#ifndef PFC_DISK_DISK_ARRAY_H_
#define PFC_DISK_DISK_ARRAY_H_

#include <memory>
#include <vector>

#include "disk/disk.h"
#include "disk/fault_model.h"
#include "disk/scheduler.h"

namespace pfc {

enum class DiskModelKind {
  kDetailed,  // HP 97560-class geometric model (UW-simulator analogue)
  kSimple,    // fixed-cost model (cross-validation analogue)
};

std::string ToString(DiskModelKind kind);

class DiskArray {
 public:
  // `faults` configures the optional per-disk fault layer; a disabled
  // config (the default) installs no FaultModel at all, so healthy arrays
  // behave bit-for-bit as before.
  DiskArray(int num_disks, DiskModelKind kind, SchedDiscipline discipline,
            const FaultConfig& faults = FaultConfig{});

  int num_disks() const { return static_cast<int>(disks_.size()); }
  Disk& disk(DiskId i) { return *disks_[static_cast<size_t>(i.v())]; }
  const Disk& disk(DiskId i) const { return *disks_[static_cast<size_t>(i.v())]; }

  // Installs `sink` on every disk (see Disk::SetEventSink); nullptr detaches.
  void SetEventSink(EventSink* sink);

  // True if every disk is idle with an empty queue.
  bool AllIdle() const;

  // Sum of per-disk request counts.
  int64_t TotalRequests() const;

  void Reset();

 private:
  std::vector<std::unique_ptr<Disk>> disks_;
};

}  // namespace pfc

#endif  // PFC_DISK_DISK_ARRAY_H_
