#include "disk/disk_mechanism.h"

#include <cmath>

#include "util/check.h"

namespace pfc {

Hp97560Mechanism::Hp97560Mechanism(DiskGeometry geometry, SeekModel seek, MechanismParams params)
    : geometry_(geometry),
      seek_(seek),
      params_(params),
      sectors_per_block_(params.block_bytes / geometry.sector_bytes()),
      bus_transfer_time_(SecToNs(static_cast<double>(params.block_bytes) /
                                 (params.bus_mb_per_sec * 1024.0 * 1024.0))),
      readahead_(params.readahead_capacity_bytes / geometry.sector_bytes(),
                 geometry.SectorTime()) {
  PFC_CHECK(params.block_bytes % geometry.sector_bytes() == 0);
  PFC_CHECK(sectors_per_block_ > 0);
}

std::unique_ptr<Hp97560Mechanism> Hp97560Mechanism::MakeDefault() {
  return std::make_unique<Hp97560Mechanism>(DiskGeometry::Hp97560(), SeekModel::Hp97560(),
                                            MechanismParams{});
}

Cylinder Hp97560Mechanism::BlockCylinder(BlockId disk_block) const {
  return geometry_.SectorToChs(SectorAddr{disk_block.v() * sectors_per_block_}).cylinder;
}

DurNs Hp97560Mechanism::Access(BlockId disk_block, TimeNs start) {
  PFC_CHECK(disk_block >= BlockId{0});
  SectorAddr first_sector{disk_block.v() * sectors_per_block_};
  const SectorAddr last_sector = first_sector + (sectors_per_block_ - 1);

  // Buffered by readahead: controller + bus transfer only.
  if (readahead_.Contains(first_sector, sectors_per_block_, start)) {
    return params_.controller_overhead + bus_transfer_time_;
  }

  // Streaming continuation: the media read has reached (or nearly reached)
  // the requested sectors; keep the head reading rather than stopping and
  // eating a rotational miss. Covers back-to-back queued sequential
  // prefetches, the dominant pattern under CSCAN.
  if (readahead_.valid()) {
    SectorAddr end_now = readahead_.EndSectorAt(start);
    if (first_sector >= readahead_.StartSector() && last_sector >= end_now &&
        first_sector - end_now <= params_.max_stream_gap_sectors) {
      int64_t sectors_to_read = (last_sector + 1) - end_now;
      int64_t spt = geometry_.sectors_per_track();
      int64_t crossings = last_sector.v() / spt - (end_now - 1).v() / spt;
      DurNs duration = params_.streaming_overhead + sectors_to_read * geometry_.SectorTime() +
                       crossings * params_.head_switch;
      head_cylinder_ = geometry_.SectorToChs(last_sector).cylinder;
      readahead_.NoteMediaRead(first_sector, sectors_per_block_, start + duration);
      return duration;
    }
  }

  ChsAddress chs = geometry_.SectorToChs(first_sector);

  // Arm movement.
  TimeNs t = start + params_.controller_overhead;
  t += seek_.SeekTime(chs.cylinder - head_cylinder_);
  head_cylinder_ = chs.cylinder;

  // Rotational positioning: wait for the first sector of the block. Blocks
  // that straddle a track boundary pay a head switch and keep streaming (in
  // phase: sector k+1 follows sector k with no extra rotation).
  t = geometry_.NextArrival(chs.sector, t);

  // Media transfer, sector by sector, counting track crossings.
  int64_t spt = geometry_.sectors_per_track();
  int64_t sectors_left = sectors_per_block_;
  int64_t sector_in_track = chs.sector;
  while (sectors_left > 0) {
    int64_t run = std::min<int64_t>(sectors_left, spt - sector_in_track);
    t += run * geometry_.SectorTime();
    sectors_left -= run;
    sector_in_track = 0;
    if (sectors_left > 0) {
      t += params_.head_switch;
    }
  }

  // The drive keeps reading ahead from here while idle.
  readahead_.NoteMediaRead(first_sector, sectors_per_block_, t);

  // Bus transfer overlaps media read except for the tail; charge the larger
  // of (media completion) and (media start + bus time), approximated here by
  // adding the residual bus time for the final sector.
  t += bus_transfer_time_ / sectors_per_block_;

  return t - start;
}

void Hp97560Mechanism::Reset() {
  head_cylinder_ = Cylinder{0};
  readahead_.Invalidate();
}

}  // namespace pfc
