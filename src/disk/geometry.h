// Disk geometry for the detailed drive model.
//
// The defaults describe the HP 97560 as reported in Table 1 of the paper
// (512-byte sectors, 72 sectors per track, 19 tracks per cylinder, 1962
// cylinders, 4002 rpm, 128 KB on-drive cache, SCSI-II at 10 MB/s). The model
// ignores track/cylinder skew and zoning (the 97560 has a single zone).

#ifndef PFC_DISK_GEOMETRY_H_
#define PFC_DISK_GEOMETRY_H_

#include <cstdint>

#include "util/time_util.h"

namespace pfc {

struct ChsAddress {
  Cylinder cylinder;
  int64_t track = 0;   // surface within the cylinder
  int64_t sector = 0;  // sector within the track
};

class DiskGeometry {
 public:
  DiskGeometry(int sector_bytes, int sectors_per_track, int tracks_per_cylinder,
               int64_t cylinders, double rpm);

  // HP 97560 per Table 1 of the paper.
  static DiskGeometry Hp97560();

  int sector_bytes() const { return sector_bytes_; }
  int sectors_per_track() const { return sectors_per_track_; }
  int tracks_per_cylinder() const { return tracks_per_cylinder_; }
  int64_t cylinders() const { return cylinders_; }
  double rpm() const { return rpm_; }

  int64_t sectors_per_cylinder() const {
    return static_cast<int64_t>(sectors_per_track_) * tracks_per_cylinder_;
  }
  int64_t total_sectors() const { return sectors_per_cylinder() * cylinders_; }
  int64_t total_bytes() const { return total_sectors() * sector_bytes_; }

  // One full revolution.
  DurNs RotationPeriod() const { return rotation_period_; }
  // Time for one sector to pass under the head.
  DurNs SectorTime() const { return sector_time_; }

  // Maps an absolute sector number to cylinder/track/sector. Sectors are
  // laid out track-major within a cylinder, cylinder-major across the disk.
  ChsAddress SectorToChs(SectorAddr sector) const;

  // Angular position (in sectors, [0, sectors_per_track)) under the head at
  // absolute time `t`, assuming all surfaces rotate in phase and sector k of
  // every track passes the head during [k*SectorTime, (k+1)*SectorTime) of
  // each revolution.
  int64_t AngleAt(TimeNs t) const;

  // Time >= t at which the head can begin reading sector-in-track `sector`.
  TimeNs NextArrival(int64_t sector, TimeNs t) const;

 private:
  int sector_bytes_;
  int sectors_per_track_;
  int tracks_per_cylinder_;
  int64_t cylinders_;
  double rpm_;
  DurNs rotation_period_;
  DurNs sector_time_;
};

}  // namespace pfc

#endif  // PFC_DISK_GEOMETRY_H_
