#include "disk/disk_array.h"

#include "disk/simple_mechanism.h"
#include "util/check.h"

namespace pfc {

std::string ToString(DiskModelKind kind) {
  switch (kind) {
    case DiskModelKind::kDetailed:
      return "detailed";
    case DiskModelKind::kSimple:
      return "simple";
  }
  return "?";
}

DiskArray::DiskArray(int num_disks, DiskModelKind kind, SchedDiscipline discipline,
                     const FaultConfig& faults) {
  PFC_CHECK_GT(num_disks, 0);
  disks_.reserve(static_cast<size_t>(num_disks));
  for (int i = 0; i < num_disks; ++i) {
    std::unique_ptr<DiskMechanism> mech;
    if (kind == DiskModelKind::kDetailed) {
      mech = Hp97560Mechanism::MakeDefault();
    } else {
      mech = SimpleMechanism::MakeDefault();
    }
    std::unique_ptr<FaultModel> fault;
    if (faults.enabled()) {
      fault = std::make_unique<FaultModel>(faults, DiskId{i});
    }
    disks_.push_back(
        std::make_unique<Disk>(DiskId{i}, std::move(mech), discipline, std::move(fault)));
  }
}

void DiskArray::SetEventSink(EventSink* sink) {
  for (auto& d : disks_) {
    d->SetEventSink(sink);
  }
}

bool DiskArray::AllIdle() const {
  for (const auto& d : disks_) {
    if (!d->idle()) {
      return false;
    }
  }
  return true;
}

int64_t DiskArray::TotalRequests() const {
  int64_t total = 0;
  for (const auto& d : disks_) {
    total += d->stats().requests;
  }
  return total;
}

void DiskArray::Reset() {
  for (auto& d : disks_) {
    d->Reset();
  }
}

}  // namespace pfc
