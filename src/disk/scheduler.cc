#include "disk/scheduler.h"

#include <cstdlib>
#include <limits>

#include "util/check.h"

namespace pfc {

std::string ToString(SchedDiscipline d) {
  switch (d) {
    case SchedDiscipline::kFcfs:
      return "fcfs";
    case SchedDiscipline::kCscan:
      return "cscan";
    case SchedDiscipline::kScan:
      return "scan";
    case SchedDiscipline::kSstf:
      return "sstf";
  }
  return "?";
}

RequestScheduler::RequestScheduler(SchedDiscipline discipline) : discipline_(discipline) {}

void RequestScheduler::Enqueue(QueuedRequest request) { queue_.push_back(request); }

void RequestScheduler::Clear() { queue_.clear(); }

size_t RequestScheduler::PickIndex(BlockId head_block) const {
  PFC_CHECK(!queue_.empty());
  switch (discipline_) {
    case SchedDiscipline::kFcfs: {
      size_t best = 0;
      for (size_t i = 1; i < queue_.size(); ++i) {
        if (queue_[i].seq < queue_[best].seq) {
          best = i;
        }
      }
      return best;
    }
    case SchedDiscipline::kCscan: {
      // Smallest block at or past the head; wrap to the global smallest.
      size_t best_fwd = queue_.size();
      size_t best_any = 0;
      for (size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i].disk_block < queue_[best_any].disk_block ||
            (queue_[i].disk_block == queue_[best_any].disk_block &&
             queue_[i].seq < queue_[best_any].seq)) {
          best_any = i;
        }
        if (queue_[i].disk_block >= head_block) {
          if (best_fwd == queue_.size() || queue_[i].disk_block < queue_[best_fwd].disk_block ||
              (queue_[i].disk_block == queue_[best_fwd].disk_block &&
               queue_[i].seq < queue_[best_fwd].seq)) {
            best_fwd = i;
          }
        }
      }
      return best_fwd != queue_.size() ? best_fwd : best_any;
    }
    case SchedDiscipline::kScan: {
      // Elevator: continue in the current direction; reverse at the end.
      size_t best = queue_.size();
      if (scan_up_) {
        for (size_t i = 0; i < queue_.size(); ++i) {
          if (queue_[i].disk_block >= head_block &&
              (best == queue_.size() || queue_[i].disk_block < queue_[best].disk_block)) {
            best = i;
          }
        }
        if (best != queue_.size()) {
          return best;
        }
        for (size_t i = 0; i < queue_.size(); ++i) {
          if (best == queue_.size() || queue_[i].disk_block > queue_[best].disk_block) {
            best = i;
          }
        }
        return best;
      }
      for (size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i].disk_block <= head_block &&
            (best == queue_.size() || queue_[i].disk_block > queue_[best].disk_block)) {
          best = i;
        }
      }
      if (best != queue_.size()) {
        return best;
      }
      for (size_t i = 0; i < queue_.size(); ++i) {
        if (best == queue_.size() || queue_[i].disk_block < queue_[best].disk_block) {
          best = i;
        }
      }
      return best;
    }
    case SchedDiscipline::kSstf: {
      size_t best = 0;
      int64_t best_dist = std::numeric_limits<int64_t>::max();
      for (size_t i = 0; i < queue_.size(); ++i) {
        int64_t dist = std::llabs(queue_[i].disk_block - head_block);
        if (dist < best_dist || (dist == best_dist && queue_[i].seq < queue_[best].seq)) {
          best = i;
          best_dist = dist;
        }
      }
      return best;
    }
  }
  return 0;
}

QueuedRequest RequestScheduler::PopNext(BlockId head_block) {
  size_t idx = PickIndex(head_block);
  QueuedRequest r = queue_[idx];
  if (discipline_ == SchedDiscipline::kScan) {
    if (r.disk_block > head_block) {
      scan_up_ = true;
    } else if (r.disk_block < head_block) {
      scan_up_ = false;
    }
  }
  queue_[idx] = queue_.back();
  queue_.pop_back();
  return r;
}

}  // namespace pfc
