// Drive mechanism interface: turns a (disk block, start time) into a service
// duration while maintaining whatever head/buffer state the model needs.
//
// Two implementations exist:
//   * Hp97560Mechanism (this header) — the detailed geometric model with
//     seek curve, rotational position and an on-drive readahead cache. This
//     is pfc's analogue of the Kotz/Ruemmler-Wilkes simulator used by the
//     paper's UW simulator.
//   * SimpleMechanism (disk/simple_mechanism.h) — a fixed-cost model with
//     sequential-run detection, used to cross-validate the detailed model in
//     the spirit of the paper's Table 2 (UW vs CMU simulators).

#ifndef PFC_DISK_DISK_MECHANISM_H_
#define PFC_DISK_DISK_MECHANISM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "disk/geometry.h"
#include "disk/readahead_cache.h"
#include "disk/seek_model.h"
#include "util/time_util.h"

namespace pfc {

class DiskMechanism {
 public:
  virtual ~DiskMechanism() = default;

  // Services a read of one block starting at `start`; returns the service
  // duration and updates internal state (head position, readahead buffer).
  virtual DurNs Access(BlockId disk_block, TimeNs start) = 0;

  // Cylinder the head currently sits on (for SSTF/SCAN scheduling).
  virtual Cylinder HeadCylinder() const = 0;

  // Cylinder that holds a given block (for scheduling distance estimates).
  virtual Cylinder BlockCylinder(BlockId disk_block) const = 0;

  virtual void Reset() = 0;
  virtual std::string name() const = 0;
};

// Tunables for the detailed model beyond geometry and seek curve.
struct MechanismParams {
  int block_bytes = 8192;                    // request size: one cache block
  DurNs controller_overhead = MsToNs(2.2);   // fixed per-request drive/controller time
  double bus_mb_per_sec = 10.0;              // SCSI-II transfer rate
  int64_t readahead_capacity_bytes = 128 * 1024;
  DurNs head_switch = MsToNs(0.5);           // track crossing during transfer
  // Streaming continuation: a queued request that starts at (or just past)
  // the sector the media read has reached is served by letting the head keep
  // reading, with only this much extra firmware time — no seek, no
  // rotational miss. This is how the 97560's readahead makes back-to-back
  // sequential reads cost ~a block transfer each.
  DurNs streaming_overhead = MsToNs(0.3);
  int64_t max_stream_gap_sectors = 48;       // read through gaps up to 3 blocks
};

class Hp97560Mechanism : public DiskMechanism {
 public:
  Hp97560Mechanism(DiskGeometry geometry, SeekModel seek, MechanismParams params);

  // The configuration the paper simulated.
  static std::unique_ptr<Hp97560Mechanism> MakeDefault();

  DurNs Access(BlockId disk_block, TimeNs start) override;
  Cylinder HeadCylinder() const override { return head_cylinder_; }
  Cylinder BlockCylinder(BlockId disk_block) const override;
  void Reset() override;
  std::string name() const override { return "hp97560"; }

  int sectors_per_block() const { return sectors_per_block_; }
  const DiskGeometry& geometry() const { return geometry_; }

 private:
  DiskGeometry geometry_;
  SeekModel seek_;
  MechanismParams params_;
  int sectors_per_block_;
  DurNs bus_transfer_time_;

  Cylinder head_cylinder_;
  ReadaheadCache readahead_;
};

}  // namespace pfc

#endif  // PFC_DISK_DISK_MECHANISM_H_
