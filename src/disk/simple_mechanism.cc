#include "disk/simple_mechanism.h"

#include <cstdlib>

namespace pfc {

SimpleMechanism::SimpleMechanism(SimpleMechanismParams params) : params_(params) {}

std::unique_ptr<SimpleMechanism> SimpleMechanism::MakeDefault() {
  return std::make_unique<SimpleMechanism>(SimpleMechanismParams{});
}

DurNs SimpleMechanism::Access(BlockId disk_block, TimeNs start) {
  (void)start;
  DurNs cost;
  if (last_block_ >= BlockId{0} && disk_block == last_block_ + 1) {
    cost = params_.sequential_access;
  } else if (last_block_ >= BlockId{0} && std::llabs(disk_block - last_block_) <= params_.near_window) {
    cost = params_.near_access;
  } else {
    cost = params_.random_access;
  }
  last_block_ = disk_block;
  return cost;
}

Cylinder SimpleMechanism::HeadCylinder() const {
  return Cylinder{last_block_ < BlockId{0} ? 0 : last_block_.v() / params_.blocks_per_cylinder_equiv};
}

Cylinder SimpleMechanism::BlockCylinder(BlockId disk_block) const {
  return Cylinder{disk_block.v() / params_.blocks_per_cylinder_equiv};
}

void SimpleMechanism::Reset() { last_block_ = BlockId{-1}; }

}  // namespace pfc
