#include "disk/simple_mechanism.h"

#include <cstdlib>

namespace pfc {

SimpleMechanism::SimpleMechanism(SimpleMechanismParams params) : params_(params) {}

std::unique_ptr<SimpleMechanism> SimpleMechanism::MakeDefault() {
  return std::make_unique<SimpleMechanism>(SimpleMechanismParams{});
}

TimeNs SimpleMechanism::Access(int64_t disk_block, TimeNs start) {
  (void)start;
  TimeNs cost;
  if (last_block_ >= 0 && disk_block == last_block_ + 1) {
    cost = params_.sequential_access;
  } else if (last_block_ >= 0 && std::llabs(disk_block - last_block_) <= params_.near_window) {
    cost = params_.near_access;
  } else {
    cost = params_.random_access;
  }
  last_block_ = disk_block;
  return cost;
}

int64_t SimpleMechanism::HeadCylinder() const {
  return last_block_ < 0 ? 0 : last_block_ / params_.blocks_per_cylinder_equiv;
}

int64_t SimpleMechanism::BlockCylinder(int64_t disk_block) const {
  return disk_block / params_.blocks_per_cylinder_equiv;
}

void SimpleMechanism::Reset() { last_block_ = -1; }

}  // namespace pfc
