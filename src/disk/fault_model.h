// Seeded, deterministic fault injection for the disk array.
//
// The paper measures prefetching policies on perfectly healthy disks; this
// layer lets a run degrade one or more drives the way real arrays do:
//
//   - transient media errors: a request occupies the drive for error_latency
//     and then fails, forcing the engine to retry it (bounded, with
//     exponential backoff);
//   - latency-tail outliers: a request's service time is multiplied by
//     tail_multiplier (firmware recalibration, thermal retries, ...);
//   - slow-disk degradation: from slow_after onward, one disk's service
//     times are multiplied by slow_factor;
//   - fail-stop: from fail_after onward, one disk completes nothing — every
//     dispatch fails fast after error_latency;
//   - outage & recovery: one disk is down over [outage_start, outage_end) —
//     new dispatches fail fast, a request in service when the window opens
//     is cut short at outage_start — and after recovery an optional rebuild
//     phase multiplies its service times by rebuild_slow_factor for
//     rebuild_duration (RAID reconstruction stand-in).
//
// Every stochastic choice flows through a per-disk Rng seeded from
// (seed, disk id), so a fault configuration reproduces bit-for-bit
// regardless of how many worker threads run the experiment grid. A config
// with all rates at zero and no degraded disk draws no random numbers and
// installs no model at all, so the healthy path is byte-identical to a run
// with no fault layer.

#ifndef PFC_DISK_FAULT_MODEL_H_
#define PFC_DISK_FAULT_MODEL_H_

#include <cstdint>

#include "util/rng.h"
#include "util/time_util.h"

namespace pfc {

struct FaultConfig {
  // Probability that a dispatched request fails with a transient media
  // error (retryable). In [0, 1].
  double media_error_rate = 0.0;

  // Probability that a request's service time lands in the latency tail,
  // and the multiplier applied when it does. rate in [0, 1], multiplier >= 1.
  double tail_rate = 0.0;
  double tail_multiplier = 10.0;

  // Slow-disk degradation: disk `slow_disk` (or kNoDisk) has service
  // times multiplied by slow_factor (>= 1) from simulated time slow_after.
  DiskId slow_disk = kNoDisk;
  double slow_factor = 1.0;
  TimeNs slow_after;

  // Fail-stop: disk `fail_disk` (or kNoDisk) stops completing requests
  // at simulated time fail_after. Dispatches to a dead disk fail fast after
  // error_latency; demand fetches exhaust their retries and take the
  // recovery penalty, prefetches are dropped.
  DiskId fail_disk = kNoDisk;
  TimeNs fail_after;

  // Outage & recovery: disk `outage_disk` (or kNoDisk) is down over
  // [outage_start, outage_end). While down it rejects dispatches (fail fast
  // after error_latency) and a request in service when the window opens is
  // cut short at outage_start; the engine re-queues demand fetches across
  // the window with bounded backoff and charges the wait to
  // StallCause::kOutage. From outage_end the disk serves again, with service
  // times multiplied by rebuild_slow_factor (>= 1) until
  // outage_end + rebuild_duration (post-recovery rebuild).
  DiskId outage_disk = kNoDisk;
  TimeNs outage_start;
  TimeNs outage_end;
  DurNs rebuild_duration;
  double rebuild_slow_factor = 1.0;

  // Seed for the per-disk fault streams.
  uint64_t seed = 1;

  // Retry policy, charged to the simulated clock by the engine: a failed
  // request is retried up to max_retries times, the k-th retry issued
  // retry_backoff << (k-1) after the failure. A request that exhausts its
  // retries is permanently failed; if the application is stalled on it, the
  // engine synthesizes the block after recovery_penalty (sector remap /
  // read-from-redundancy stand-in).
  int max_retries = 4;
  DurNs retry_backoff = MsToNs(1);

  // Time a failed attempt occupies the drive before reporting the error.
  DurNs error_latency = MsToNs(5);

  // Penalty charged when a demand-fetched block permanently fails.
  DurNs recovery_penalty = MsToNs(50);

  // True if any fault mechanism can actually fire. Disabled configs install
  // no FaultModel and perturb nothing.
  bool enabled() const {
    return media_error_rate > 0.0 || tail_rate > 0.0 ||
           (slow_disk >= DiskId{0} && slow_factor != 1.0) || fail_disk >= DiskId{0} ||
           (outage_disk >= DiskId{0} && outage_end > outage_start);
  }

  bool operator==(const FaultConfig&) const = default;
};

// Why the fault layer failed a request. The engine branches on this:
// media errors burn the bounded retry budget, fail-stop is permanent, and
// outage failures are re-queued (without consuming retries) until the disk
// recovers.
enum class FaultKind : uint8_t {
  kNone = 0,
  kMediaError,  // transient; retry on the same disk
  kFailStop,    // permanent; the disk never comes back
  kOutage,      // the disk is down but recovers at outage_end
};

// Outcome of one dispatch through the fault layer.
struct FaultDecision {
  DurNs service;        // actual time the request occupies the drive
  bool failed = false;  // true: the request errors after `service`
  FaultKind kind = FaultKind::kNone;  // set when failed
};

// Per-disk fault state. Owned by Disk; consulted once per dispatch.
class FaultModel {
 public:
  FaultModel(const FaultConfig& config, DiskId disk_id);

  // True once this disk has fail-stopped.
  bool FailStopped(TimeNs now) const {
    return config_.fail_disk == disk_id_ && now >= config_.fail_after;
  }

  // True while this disk's outage window is open (it will recover).
  bool Down(TimeNs now) const {
    return config_.outage_disk == disk_id_ && now >= config_.outage_start &&
           now < config_.outage_end;
  }

  // Decides the fate of a request dispatched at `start` whose nominal
  // (mechanism) service time is `nominal`. Draws from the per-disk stream
  // only for mechanisms whose rate is nonzero, so zero-rate configs are
  // inert. Callers must check FailStopped() and Down() first; a dead or
  // down disk never reaches the mechanism. A request accepted before the
  // outage window opens is cut short at outage_start (the draws still
  // happen, keeping the fault streams aligned across scenarios).
  FaultDecision OnAccess(TimeNs start, DurNs nominal);

  DurNs error_latency() const { return config_.error_latency; }

  // Re-seeds the stream, for Disk::Reset().
  void Reset();

 private:
  FaultConfig config_;
  DiskId disk_id_;
  Rng rng_;
};

}  // namespace pfc

#endif  // PFC_DISK_FAULT_MODEL_H_
