// On-drive readahead segment cache.
//
// The HP 97560 carries a 128 KB buffer that the drive fills by continuing to
// read sectors sequentially past the last serviced request whenever it is
// otherwise idle. A later request whose sectors are already buffered is
// served at SCSI bus speed with no mechanical delay. This is why the paper's
// sequential traces see 3-4 ms average response times against a drive whose
// random 8 KB access costs ~23 ms, and why CSCAN (which preserves ascending
// order) beats FCFS on those traces.
//
// The model is a single contiguous sector segment [start, end): the segment
// restarts after every media read and extends during idle time at media
// rate, capped at the buffer capacity.

#ifndef PFC_DISK_READAHEAD_CACHE_H_
#define PFC_DISK_READAHEAD_CACHE_H_

#include <cstdint>

#include "util/time_util.h"

namespace pfc {

class ReadaheadCache {
 public:
  // capacity_sectors: buffer size in sectors (128 KB / 512 B = 256).
  // sector_time: media rate at which idle readahead extends the segment.
  ReadaheadCache(int64_t capacity_sectors, DurNs sector_time);

  // True if [first, first+count) is fully buffered once the segment has been
  // extended up to time `now`.
  bool Contains(SectorAddr first_sector, int64_t count, TimeNs now);

  // Called when the drive finishes a media read of [first, first+count) at
  // time `now`: the buffer now holds exactly that span and keeps extending
  // from its end while idle.
  void NoteMediaRead(SectorAddr first_sector, int64_t count, TimeNs now);

  // Invalidates the buffer (e.g. after a write or a reset).
  void Invalidate();

  int64_t capacity_sectors() const { return capacity_; }

  bool valid() const { return valid_; }

  // Extent visible at `now` (for tests and the streaming path); {start, end}.
  SectorAddr StartSector() const { return start_; }
  SectorAddr EndSectorAt(TimeNs now);

 private:
  void ExtendTo(TimeNs now);

  int64_t capacity_;
  DurNs sector_time_;
  bool valid_ = false;
  SectorAddr start_;
  SectorAddr end_;           // one past last buffered sector as of last_update_
  TimeNs last_update_;       // time at which `end_` was accurate
};

}  // namespace pfc

#endif  // PFC_DISK_READAHEAD_CACHE_H_
