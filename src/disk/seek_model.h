// Two-piece seek-time curve in the Ruemmler & Wilkes style.
//
// For the HP 97560 the published fit is
//     seek(d) = 3.24 + 0.400 * sqrt(d)  ms   for 0 < d < 383 cylinders
//     seek(d) = 8.00 + 0.008 * d        ms   for d >= 383
// (continuous at the break). This matches the paper's calibration point: the
// maximum seek inside a 100-cylinder allocation group is 7.24 ms (section
// 3.2: 3.24 + 0.400 * sqrt(99) = 7.22 ms).

#ifndef PFC_DISK_SEEK_MODEL_H_
#define PFC_DISK_SEEK_MODEL_H_

#include <cstdint>

#include "util/time_util.h"

namespace pfc {

class SeekModel {
 public:
  SeekModel(double short_base_ms, double short_sqrt_ms, double long_base_ms,
            double long_linear_ms, int64_t crossover_cylinders);

  static SeekModel Hp97560();

  // Seek time to move the arm `distance` cylinders (0 => 0).
  DurNs SeekTime(int64_t distance) const;

  int64_t crossover() const { return crossover_; }

 private:
  double short_base_ms_;
  double short_sqrt_ms_;
  double long_base_ms_;
  double long_linear_ms_;
  int64_t crossover_;
};

}  // namespace pfc

#endif  // PFC_DISK_SEEK_MODEL_H_
