#include "disk/disk.h"

#include "util/check.h"

namespace pfc {

Disk::Disk(int id, std::unique_ptr<DiskMechanism> mechanism, SchedDiscipline discipline)
    : id_(id), mechanism_(std::move(mechanism)), scheduler_(discipline) {
  PFC_CHECK(mechanism_ != nullptr);
}

void Disk::Enqueue(int64_t logical_block, int64_t disk_block, TimeNs now, uint64_t seq) {
  QueuedRequest r;
  r.logical_block = logical_block;
  r.disk_block = disk_block;
  r.enqueue_time = now;
  r.seq = seq;
  scheduler_.Enqueue(r);
}

std::optional<DispatchResult> Disk::TryDispatch(TimeNs now) {
  if (busy_ || scheduler_.empty()) {
    return std::nullopt;
  }
  QueuedRequest r = scheduler_.PopNext(head_block_);
  TimeNs service = mechanism_->Access(r.disk_block, now);
  PFC_CHECK(service > 0);
  busy_ = true;
  head_block_ = r.disk_block;
  current_.logical_block = r.logical_block;
  current_.disk_block = r.disk_block;
  current_.enqueue_time = r.enqueue_time;
  current_.service_time = service;
  current_.complete_time = now + service;
  return current_;
}

void Disk::CompleteCurrent(TimeNs now) {
  PFC_CHECK(busy_);
  PFC_CHECK(now == current_.complete_time);
  busy_ = false;
  ++stats_.requests;
  stats_.busy_ns += current_.service_time;
  stats_.sum_service_ms += NsToMs(current_.service_time);
  stats_.sum_response_ms += NsToMs(now - current_.enqueue_time);
}

void Disk::Reset() {
  scheduler_.Clear();
  busy_ = false;
  head_block_ = 0;
  stats_ = DiskStats{};
  mechanism_->Reset();
}

}  // namespace pfc
