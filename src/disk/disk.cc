#include "disk/disk.h"

#include "util/check.h"

namespace pfc {

Disk::Disk(DiskId id, std::unique_ptr<DiskMechanism> mechanism, SchedDiscipline discipline,
           std::unique_ptr<FaultModel> fault)
    : id_(id),
      mechanism_(std::move(mechanism)),
      scheduler_(discipline),
      fault_(std::move(fault)) {
  PFC_CHECK(mechanism_ != nullptr);
}

void Disk::Enqueue(BlockId logical_block, BlockId disk_block, TimeNs now, uint64_t seq) {
  QueuedRequest r;
  r.logical_block = logical_block;
  r.disk_block = disk_block;
  r.enqueue_time = now;
  r.seq = seq;
  scheduler_.Enqueue(r);
}

std::optional<DispatchResult> Disk::TryDispatch(TimeNs now) {
  if (busy_ || scheduler_.empty()) {
    return std::nullopt;
  }
  QueuedRequest r = scheduler_.PopNext(head_block_);
  DurNs nominal;
  DurNs service;
  bool failed = false;
  FaultKind fail_kind = FaultKind::kNone;
  if (fault_ != nullptr && fault_->FailStopped(now)) {
    // A dead drive never moves the head or touches the mechanism; it just
    // times out the request.
    nominal = fault_->error_latency();
    service = nominal;
    failed = true;
    fail_kind = FaultKind::kFailStop;
  } else if (fault_ != nullptr && fault_->Down(now)) {
    // Same fast rejection while the outage window is open, but the engine
    // may re-queue the request: the disk comes back at outage_end.
    nominal = fault_->error_latency();
    service = nominal;
    failed = true;
    fail_kind = FaultKind::kOutage;
  } else {
    nominal = mechanism_->Access(r.disk_block, now);
    service = nominal;
    if (fault_ != nullptr) {
      FaultDecision d = fault_->OnAccess(now, nominal);
      service = d.service;
      failed = d.failed;
      fail_kind = d.kind;
    }
    head_block_ = r.disk_block;
  }
  PFC_CHECK_GT(service, DurNs{0});
  busy_ = true;
  current_.logical_block = r.logical_block;
  current_.disk_block = r.disk_block;
  current_.enqueue_time = r.enqueue_time;
  current_.service_time = service;
  current_.nominal_service = nominal;
  current_.complete_time = now + service;
  current_.failed = failed;
  current_.fail_kind = fail_kind;
  if (sink_ != nullptr) {
    ObsEvent e;
    e.time = now;
    e.kind = ObsEventKind::kDiskBusyBegin;
    e.disk = id_;
    e.block = r.logical_block;
    e.a = service.ns();
    e.b = static_cast<int64_t>(scheduler_.size());
    sink_->OnEvent(e);
  }
  return current_;
}

void Disk::CompleteCurrent(TimeNs now) {
  PFC_CHECK(busy_);
  PFC_CHECK_EQ(now, current_.complete_time);
  busy_ = false;
  stats_.busy_ns += current_.service_time;
  if (sink_ != nullptr) {
    ObsEvent e;
    e.time = now;
    e.kind = ObsEventKind::kDiskBusyEnd;
    e.disk = id_;
    e.block = current_.logical_block;
    e.a = current_.service_time.ns();
    e.b = (now - current_.enqueue_time).ns();
    e.flag = current_.failed;
    sink_->OnEvent(e);
  }
  if (current_.failed) {
    ++stats_.errors;
    return;
  }
  ++stats_.requests;
  stats_.sum_service_ms += NsToMs(current_.service_time);
  stats_.sum_response_ms += NsToMs(now - current_.enqueue_time);
}

void Disk::Reset() {
  scheduler_.Clear();
  busy_ = false;
  head_block_ = BlockId{0};
  stats_ = DiskStats{};
  mechanism_->Reset();
  if (fault_ != nullptr) {
    fault_->Reset();
  }
}

}  // namespace pfc
