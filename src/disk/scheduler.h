// Disk-head scheduling disciplines over a per-disk request queue.
//
// The paper's driver submits prefetch batches and lets the disk (driver)
// reorder them; it evaluates CSCAN against FCFS (Table 5, appendix B). SCAN
// and SSTF are included as ablations beyond the paper. CSCAN scans in
// ascending block order — the same direction the drive reads — which keeps
// the readahead buffer hot (section 4.4).

#ifndef PFC_DISK_SCHEDULER_H_
#define PFC_DISK_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/time_util.h"

namespace pfc {

enum class SchedDiscipline {
  kFcfs,
  kCscan,
  kScan,
  kSstf,
};

std::string ToString(SchedDiscipline d);

struct QueuedRequest {
  BlockId logical_block;   // block id in the trace's address space
  BlockId disk_block;      // block within this disk
  TimeNs enqueue_time;
  uint64_t seq = 0;        // global arrival order, used as tiebreak
};

// Holds pending requests for one disk and picks the next to service.
class RequestScheduler {
 public:
  explicit RequestScheduler(SchedDiscipline discipline);

  void Enqueue(QueuedRequest request);

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }

  // Removes and returns the next request to service, given the disk block
  // the head last touched. Requires !empty().
  QueuedRequest PopNext(BlockId head_block);

  SchedDiscipline discipline() const { return discipline_; }

  void Clear();

 private:
  size_t PickIndex(BlockId head_block) const;

  SchedDiscipline discipline_;
  std::vector<QueuedRequest> queue_;
  bool scan_up_ = true;  // SCAN elevator direction
};

}  // namespace pfc

#endif  // PFC_DISK_SCHEDULER_H_
