#include "disk/fault_model.h"

#include <algorithm>

#include "util/check.h"

namespace pfc {

namespace {

uint64_t StreamSeed(uint64_t seed, DiskId disk_id) {
  return SplitMix64(seed ^ SplitMix64(0x9e3779b97f4a7c15ULL +
                                      static_cast<uint64_t>(disk_id.v())));
}

}  // namespace

FaultModel::FaultModel(const FaultConfig& config, DiskId disk_id)
    : config_(config), disk_id_(disk_id), rng_(StreamSeed(config.seed, disk_id)) {
  PFC_CHECK_GE(disk_id, DiskId{0});
  PFC_CHECK_GT(config_.error_latency, DurNs{0});
}

FaultDecision FaultModel::OnAccess(TimeNs start, DurNs nominal) {
  PFC_CHECK_GT(nominal, DurNs{0});
  FaultDecision d{nominal, false};

  // Media error first: a failed request never sees the tail draw, so the
  // two mechanisms stay independent streams under composition.
  if (config_.media_error_rate > 0.0 &&
      rng_.UniformDouble() < config_.media_error_rate) {
    d.failed = true;
    d.kind = FaultKind::kMediaError;
    d.service = config_.error_latency;
  } else {
    double mult = 1.0;
    if (config_.tail_rate > 0.0 && rng_.UniformDouble() < config_.tail_rate) {
      mult *= config_.tail_multiplier;
    }
    if (disk_id_ == config_.slow_disk && start >= config_.slow_after) {
      mult *= config_.slow_factor;
    }
    if (disk_id_ == config_.outage_disk && config_.rebuild_slow_factor != 1.0 &&
        start >= config_.outage_end && start < config_.outage_end + config_.rebuild_duration) {
      mult *= config_.rebuild_slow_factor;
    }
    if (mult != 1.0) {
      d.service = std::max(
          DurNs{1}, DurNs(static_cast<int64_t>(static_cast<double>(nominal.ns()) * mult + 0.5)));
    }
  }

  // In-flight cut: a request accepted while healthy whose service crosses
  // the outage window's opening fails at outage_start, whatever the draws
  // above decided (they still happened, so the streams stay aligned).
  if (disk_id_ == config_.outage_disk && config_.outage_end > config_.outage_start &&
      start < config_.outage_start && start + d.service > config_.outage_start) {
    d.failed = true;
    d.kind = FaultKind::kOutage;
    d.service = config_.outage_start - start;
  }
  return d;
}

void FaultModel::Reset() { rng_ = Rng(StreamSeed(config_.seed, disk_id_)); }

}  // namespace pfc
