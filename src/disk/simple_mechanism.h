// Fixed-cost disk model used to cross-validate the detailed model.
//
// The paper validated two independently written simulators (UW's Kotz-based
// HP 97560 model and CMU's RaidSim-based IBM 0661 model) against each other
// on common traces (Table 2). We reproduce the methodology with a second,
// structurally different model: constant positioning cost for non-sequential
// accesses, cheap streaming for sequential runs, and a small LRU-less
// lookahead window standing in for the drive buffer.

#ifndef PFC_DISK_SIMPLE_MECHANISM_H_
#define PFC_DISK_SIMPLE_MECHANISM_H_

#include <memory>
#include <string>

#include "disk/disk_mechanism.h"

namespace pfc {

struct SimpleMechanismParams {
  DurNs random_access = MsToNs(15.0);       // positioning + transfer, non-sequential
  DurNs sequential_access = MsToNs(2.4);    // next block of a detected run
  DurNs near_access = MsToNs(7.0);          // within `near_window` blocks
  int64_t near_window = 64;
  int64_t blocks_per_cylinder_equiv = 8;    // granularity for "near" distance
};

class SimpleMechanism : public DiskMechanism {
 public:
  explicit SimpleMechanism(SimpleMechanismParams params);

  static std::unique_ptr<SimpleMechanism> MakeDefault();

  DurNs Access(BlockId disk_block, TimeNs start) override;
  Cylinder HeadCylinder() const override;
  Cylinder BlockCylinder(BlockId disk_block) const override;
  void Reset() override;
  std::string name() const override { return "simple"; }

 private:
  SimpleMechanismParams params_;
  BlockId last_block_{-1};
};

}  // namespace pfc

#endif  // PFC_DISK_SIMPLE_MECHANISM_H_
