#include "disk/readahead_cache.h"

#include <algorithm>

#include "util/check.h"

namespace pfc {

ReadaheadCache::ReadaheadCache(int64_t capacity_sectors, DurNs sector_time)
    : capacity_(capacity_sectors), sector_time_(sector_time) {
  PFC_CHECK(capacity_sectors > 0);
  PFC_CHECK(sector_time > DurNs{0});
}

void ReadaheadCache::ExtendTo(TimeNs now) {
  if (!valid_ || now <= last_update_) {
    return;
  }
  int64_t new_sectors = (now - last_update_) / sector_time_;
  int64_t room = capacity_ - (end_ - start_);
  end_ += std::min(new_sectors, std::max<int64_t>(room, 0));
  last_update_ = now;
}

bool ReadaheadCache::Contains(SectorAddr first_sector, int64_t count, TimeNs now) {
  if (!valid_) {
    return false;
  }
  ExtendTo(now);
  return first_sector >= start_ && first_sector + count <= end_;
}

void ReadaheadCache::NoteMediaRead(SectorAddr first_sector, int64_t count, TimeNs now) {
  PFC_CHECK(count > 0);
  valid_ = true;
  start_ = first_sector;
  end_ = first_sector + count;
  last_update_ = now;
}

void ReadaheadCache::Invalidate() { valid_ = false; }

SectorAddr ReadaheadCache::EndSectorAt(TimeNs now) {
  if (!valid_) {
    return SectorAddr{0};
  }
  ExtendTo(now);
  return end_;
}

}  // namespace pfc
