#include "disk/geometry.h"

#include "util/check.h"

namespace pfc {

DiskGeometry::DiskGeometry(int sector_bytes, int sectors_per_track, int tracks_per_cylinder,
                           int64_t cylinders, double rpm)
    : sector_bytes_(sector_bytes),
      sectors_per_track_(sectors_per_track),
      tracks_per_cylinder_(tracks_per_cylinder),
      cylinders_(cylinders),
      rpm_(rpm) {
  PFC_CHECK(sector_bytes > 0 && sectors_per_track > 0 && tracks_per_cylinder > 0);
  PFC_CHECK(cylinders > 0 && rpm > 0.0);
  rotation_period_ = SecToNs(60.0 / rpm);
  sector_time_ = rotation_period_ / sectors_per_track_;
}

DiskGeometry DiskGeometry::Hp97560() { return DiskGeometry(512, 72, 19, 1962, 4002.0); }

ChsAddress DiskGeometry::SectorToChs(SectorAddr sector) const {
  PFC_CHECK(sector >= SectorAddr{0});
  // Addresses beyond the physical end wrap; simulated arrays are allowed to
  // be "as large as needed" since capacity is not what the study measures.
  const int64_t wrapped = sector.v() % total_sectors();
  ChsAddress chs;
  chs.cylinder = Cylinder{wrapped / sectors_per_cylinder()};
  int64_t within = wrapped % sectors_per_cylinder();
  chs.track = within / sectors_per_track_;
  chs.sector = within % sectors_per_track_;
  return chs;
}

int64_t DiskGeometry::AngleAt(TimeNs t) const {
  PFC_CHECK(t >= TimeNs{0});
  return ((t - TimeNs{0}) % rotation_period_) / sector_time_;
}

TimeNs DiskGeometry::NextArrival(int64_t sector, TimeNs t) const {
  PFC_CHECK(sector >= 0 && sector < sectors_per_track_);
  DurNs in_rev = (t - TimeNs{0}) % rotation_period_;
  DurNs target = sector * sector_time_;
  DurNs wait = target - in_rev;
  if (wait < DurNs{0}) {
    wait += rotation_period_;
  }
  return t + wait;
}

}  // namespace pfc
