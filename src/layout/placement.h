// Data placement: trace block id -> (disk, block-within-disk).
//
// Trace block ids are logical filesystem block addresses (the trace
// generators assign file base addresses; see trace/file_layout.h). The paper
// stripes data across the array with a one-block stripe unit (section 3.2);
// contiguous and file-hash layouts are provided as ablations, since striping
// is precisely what keeps the per-disk loads balanced and is why reverse
// aggressive never wins big (section 6).

#ifndef PFC_LAYOUT_PLACEMENT_H_
#define PFC_LAYOUT_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/strong_types.h"

namespace pfc {

struct BlockLocation {
  DiskId disk;
  BlockId disk_block;
};

class Placement {
 public:
  virtual ~Placement() = default;
  virtual BlockLocation Map(BlockId logical_block) const = 0;
  virtual int num_disks() const = 0;
  virtual std::string name() const = 0;
};

// Round-robin striping with a one-block stripe unit (the paper's layout).
class StripedPlacement : public Placement {
 public:
  explicit StripedPlacement(int num_disks);
  BlockLocation Map(BlockId logical_block) const override;
  int num_disks() const override { return num_disks_; }
  std::string name() const override { return "striped"; }

 private:
  int num_disks_;
};

// Contiguous ranges: blocks [k*span, (k+1)*span) live on disk k (mod d).
// Pathological for sequential workloads — the whole scan hits one disk.
class ContiguousPlacement : public Placement {
 public:
  ContiguousPlacement(int num_disks, int64_t span_blocks);
  BlockLocation Map(BlockId logical_block) const override;
  int num_disks() const override { return num_disks_; }
  std::string name() const override { return "contiguous"; }

 private:
  int num_disks_;
  int64_t span_;
};

// Hash of the allocation group to a disk: whole 8550-block groups (one
// file-system cylinder group) land on one disk. Models file-per-disk
// placement without striping.
class GroupHashPlacement : public Placement {
 public:
  GroupHashPlacement(int num_disks, int64_t group_blocks);
  BlockLocation Map(BlockId logical_block) const override;
  int num_disks() const override { return num_disks_; }
  std::string name() const override { return "group-hash"; }

 private:
  int num_disks_;
  int64_t group_blocks_;
};

enum class PlacementKind { kStriped, kContiguous, kGroupHash };

std::string ToString(PlacementKind kind);
std::unique_ptr<Placement> MakePlacement(PlacementKind kind, int num_disks);

}  // namespace pfc

#endif  // PFC_LAYOUT_PLACEMENT_H_
