#include "layout/placement.h"

#include "util/check.h"
#include "util/rng.h"

namespace pfc {

namespace {
// One file-system allocation group: 8550 8-KB blocks = 100 HP 97560
// cylinders (section 3.2 of the paper).
constexpr int64_t kDefaultGroupBlocks = 8550;
}  // namespace

StripedPlacement::StripedPlacement(int num_disks) : num_disks_(num_disks) {
  PFC_CHECK(num_disks > 0);
}

BlockLocation StripedPlacement::Map(BlockId logical_block) const {
  const int64_t raw = logical_block.v();
  PFC_CHECK(raw >= 0);
  return BlockLocation{DiskId{static_cast<int32_t>(raw % num_disks_)},
                       BlockId{raw / num_disks_}};
}

ContiguousPlacement::ContiguousPlacement(int num_disks, int64_t span_blocks)
    : num_disks_(num_disks), span_(span_blocks) {
  PFC_CHECK(num_disks > 0);
  PFC_CHECK(span_blocks > 0);
}

BlockLocation ContiguousPlacement::Map(BlockId logical_block) const {
  const int64_t raw = logical_block.v();
  PFC_CHECK(raw >= 0);
  int64_t chunk = raw / span_;
  return BlockLocation{DiskId{static_cast<int32_t>(chunk % num_disks_)},
                       BlockId{(chunk / num_disks_) * span_ + raw % span_}};
}

GroupHashPlacement::GroupHashPlacement(int num_disks, int64_t group_blocks)
    : num_disks_(num_disks), group_blocks_(group_blocks) {
  PFC_CHECK(num_disks > 0);
  PFC_CHECK(group_blocks > 0);
}

BlockLocation GroupHashPlacement::Map(BlockId logical_block) const {
  const int64_t raw = logical_block.v();
  PFC_CHECK(raw >= 0);
  int64_t group = raw / group_blocks_;
  auto disk = static_cast<int32_t>(SplitMix64(static_cast<uint64_t>(group)) %
                                   static_cast<uint64_t>(num_disks_));
  // Keep the within-group offset so sequential runs inside a group stay
  // sequential on the owning disk.
  return BlockLocation{DiskId{disk},
                       BlockId{(group / num_disks_) * group_blocks_ + raw % group_blocks_}};
}

std::string ToString(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kStriped:
      return "striped";
    case PlacementKind::kContiguous:
      return "contiguous";
    case PlacementKind::kGroupHash:
      return "group-hash";
  }
  return "?";
}

std::unique_ptr<Placement> MakePlacement(PlacementKind kind, int num_disks) {
  switch (kind) {
    case PlacementKind::kStriped:
      return std::make_unique<StripedPlacement>(num_disks);
    case PlacementKind::kContiguous:
      return std::make_unique<ContiguousPlacement>(num_disks, kDefaultGroupBlocks);
    case PlacementKind::kGroupHash:
      return std::make_unique<GroupHashPlacement>(num_disks, kDefaultGroupBlocks);
  }
  return nullptr;
}

}  // namespace pfc
