// Suppression baseline: a checked-in ledger of findings that are known and
// deliberately tolerated. Each entry is `rule<TAB>file<TAB>message` — no
// line number, so unrelated edits that shift a finding up or down do not
// churn the file. A finding is suppressed when its (rule, file, message)
// triple matches an entry exactly.
//
// Precedence: `NOLINT(pfc-<rule>)` markers are honored first, inside the
// rules themselves (a NOLINT'd site never produces a finding at all); the
// baseline then filters whatever findings remain. Entries that no longer
// match any finding are reported as stale on stderr — they should be
// deleted, but they do not fail the run.

#ifndef PFC_ANALYZE_BASELINE_H_
#define PFC_ANALYZE_BASELINE_H_

#include <string>
#include <vector>

#include "analyze/finding.h"

namespace pfc::analyze {

class Baseline {
 public:
  // Parses baseline text. Blank lines and lines starting with '#' are
  // comments. Malformed lines (fewer than two tabs) are ignored.
  static Baseline Parse(const std::string& text);

  // Loads from a file; a missing file is an empty baseline.
  static Baseline Load(const std::string& path);

  bool Suppresses(const Finding& f) const;

  // Splits `all` into kept findings (returned) and suppressed ones; after
  // the call, `stale` holds the entries that suppressed nothing.
  std::vector<Finding> Apply(const std::vector<Finding>& all,
                             std::vector<std::string>* stale) const;

  // Serializes `findings` in baseline format (sorted, deduplicated).
  static std::string Render(const std::vector<Finding>& findings);

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string rule;
    std::string file;
    std::string message;
  };
  std::vector<Entry> entries_;
};

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_BASELINE_H_
