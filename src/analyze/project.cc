#include "analyze/project.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iterator>
#include <thread>

namespace pfc::analyze {

namespace fs = std::filesystem;

namespace {

std::string ReadFileText(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

bool IsCodeFile(const std::string& rel) {
  return rel.size() >= 3 &&
         (rel.compare(rel.size() - 3, 3, ".cc") == 0 || rel.compare(rel.size() - 2, 2, ".h") == 0);
}

// Text files loaded whole, without stripping: documentation checked by the
// enum-sync pass and the layer manifest consumed by the layering pass.
const char* const kExtraFiles[] = {"DESIGN.md", "README.md", "analyze/layers.toml"};

}  // namespace

const std::vector<std::string>& ScanRoots() {
  static const std::vector<std::string> kRoots = {"src", "tools", "bench", "examples", "tests"};
  return kRoots;
}

const SourceFile* Project::Find(const std::string& rel) const {
  auto it = std::lower_bound(files.begin(), files.end(), rel,
                             [](const SourceFile& f, const std::string& r) { return f.rel < r; });
  if (it != files.end() && it->rel == rel) {
    return &*it;
  }
  return nullptr;
}

std::vector<size_t> Project::Under(const std::string& prefix) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < files.size(); ++i) {
    if (files[i].rel.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(i);
    }
  }
  return out;
}

Project LoadProject(const fs::path& root) {
  Project project;
  project.root = root;

  std::vector<std::string> rels;
  for (const std::string& top : ScanRoots()) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::string rel = fs::relative(entry.path(), root).generic_string();
      if (IsCodeFile(rel)) {
        rels.push_back(std::move(rel));
      }
    }
  }
  for (const char* extra : kExtraFiles) {
    if (fs::is_regular_file(root / extra)) {
      rels.emplace_back(extra);
    }
  }
  std::sort(rels.begin(), rels.end());
  rels.erase(std::unique(rels.begin(), rels.end()), rels.end());

  project.files.resize(rels.size());
  std::atomic<size_t> cursor{0};
  const size_t workers =
      std::min<size_t>(std::max(1u, std::thread::hardware_concurrency()), rels.size());
  auto load_slot = [&](size_t i) {
    SourceFile& f = project.files[i];
    f.rel = rels[i];
    f.text = ReadFileText(root / rels[i]);
    f.raw = SplitLines(f.text);
    f.code = IsCodeFile(f.rel) ? StrippedLines(f.text) : f.raw;
  };
  if (workers <= 1) {
    for (size_t i = 0; i < rels.size(); ++i) {
      load_slot(i);
    }
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (size_t i = cursor.fetch_add(1); i < project.files.size();
             i = cursor.fetch_add(1)) {
          load_slot(i);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  return project;
}

Project ProjectFromMemory(std::vector<std::pair<std::string, std::string>> files) {
  Project project;
  std::sort(files.begin(), files.end());
  for (auto& [rel, text] : files) {
    SourceFile f;
    f.rel = rel;
    f.text = std::move(text);
    f.raw = SplitLines(f.text);
    f.code = IsCodeFile(f.rel) ? StrippedLines(f.text) : f.raw;
    project.files.push_back(std::move(f));
  }
  return project;
}

}  // namespace pfc::analyze
