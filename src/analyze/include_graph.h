// Include-graph extraction and the layering pass.
//
// The project's architecture is a layer order declared in
// `analyze/layers.toml`: every scanned file belongs to exactly one layer
// (longest-prefix match over the manifest's path lists), and a file may
// only include files in its own or a lower layer. The pass extracts the
// quoted-include DAG, resolves each edge to a project file, and reports:
//
//   * `layering`       — an include that points *up* the layer order, with
//                        both layers named (NOLINT(pfc-layering) escapes a
//                        deliberate edge), and files the manifest does not
//                        cover at all (the manifest must stay total).
//   * `include-cycle`  — any cycle in the file-level include graph, with
//                        the full offending path a -> b -> ... -> a.
//
// Cycles are checked on the whole graph regardless of layer assignment —
// an in-layer cycle is just as fatal to incremental builds.

#ifndef PFC_ANALYZE_INCLUDE_GRAPH_H_
#define PFC_ANALYZE_INCLUDE_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/finding.h"
#include "analyze/project.h"

namespace pfc::analyze {

struct IncludeEdge {
  size_t from = 0;      // index into project.files
  size_t line = 0;      // 1-based line of the #include
  std::string target;   // include path as written
  size_t to = 0;        // resolved index into project.files (valid if resolved)
  bool resolved = false;
  bool nolint = false;  // the include line carries NOLINT(pfc-layering)
};

// Extracts every quoted #include from stripped code and resolves it
// against the project: relative to the includer's directory first, then
// relative to src/, then relative to the root. Unresolvable includes
// (system headers in quotes, generated files) are returned unresolved and
// ignored by the checks.
std::vector<IncludeEdge> ExtractIncludes(const Project& project);

// One layer of the manifest, in declaration order (index 0 is the bottom).
struct Layer {
  std::string name;
  std::vector<std::string> paths;  // file or directory prefixes, root-relative
};

struct LayerManifest {
  std::vector<Layer> layers;

  // Longest-prefix layer assignment; -1 when no path covers `rel`.
  int AssignLayer(const std::string& rel) const;

  // Parses the TOML subset the manifest uses: `[[layer]]` table arrays with
  // `name = "..."` and single-line `paths = ["...", ...]`. Returns false on
  // malformed input with a diagnostic in `error`.
  static bool Parse(const std::string& text, LayerManifest* out, std::string* error);
};

// Runs both checks and appends findings. `manifest_rel` names the manifest
// file inside the project (normally "analyze/layers.toml").
void CheckLayering(const Project& project, const std::string& manifest_rel,
                   std::vector<Finding>* out);

// Cycle detection alone (used by CheckLayering and unit tests): returns
// each distinct cycle as the sequence of file indices along the cycle,
// first node repeated at the end.
std::vector<std::vector<size_t>> FindIncludeCycles(const Project& project,
                                                   const std::vector<IncludeEdge>& edges);

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_INCLUDE_GRAPH_H_
