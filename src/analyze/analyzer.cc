#include "analyze/analyzer.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "analyze/accounting.h"
#include "analyze/enum_sync.h"
#include "analyze/include_graph.h"
#include "analyze/legacy_rules.h"

namespace pfc::analyze {

namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  const size_t n = std::char_traits<char>::length(prefix);
  return s.size() >= n && s.compare(0, n, prefix) == 0;
}

bool IsCodeFile(const SourceFile& f) {
  return (f.rel.size() >= 2 && f.rel.compare(f.rel.size() - 2, 2, ".h") == 0) ||
         (f.rel.size() >= 3 && f.rel.compare(f.rel.size() - 3, 3, ".cc") == 0);
}

bool InSrc(const SourceFile& f) { return IsCodeFile(f) && StartsWith(f.rel, "src/"); }

}  // namespace

const std::vector<Rule>& AllRules() {
  static const std::vector<Rule>* kRules = [] {
    auto* rules = new std::vector<Rule>;
    rules->push_back({"no-nondeterminism", "pfc-nondeterminism",
                      "no ambient randomness or wall-clock sources in src/",
                      CheckNondeterminism, nullptr, InSrc});
    rules->push_back({"raw-unit", "pfc-raw-unit",
                      "time quantities and block addresses use strong types, not raw int64_t",
                      CheckRawUnits, nullptr, [](const SourceFile& f) {
                        // src/theory models dimensionless reference/tick units
                        // and src/util defines the wrappers themselves; both
                        // legitimately hold raw int64.
                        return InSrc(f) && !StartsWith(f.rel, "src/theory/") &&
                               !StartsWith(f.rel, "src/util/");
                      }});
    rules->push_back({"sink-guard", "",
                      "direct sink_->OnEvent emission sits behind one null test or a helper",
                      CheckSinkGuard, nullptr, InSrc});
    rules->push_back({"hot-structure", "pfc-hot-structure",
                      "no node-based std::set/std::map in the src/core hot path",
                      CheckHotStructure, nullptr,
                      [](const SourceFile& f) { return InSrc(f) && StartsWith(f.rel, "src/core/"); }});
    rules->push_back({"policy-parity", "pfc-policy-parity",
                      "Simulator and RefSim invoke the same set of Policy::On* hooks", nullptr,
                      CheckPolicyParity, nullptr});
    rules->push_back({"layering", "pfc-layering",
                      "the include graph respects the layer order declared in analyze/layers.toml",
                      nullptr,
                      [](const Project& p, std::vector<Finding>* out) {
                        CheckLayering(p, "analyze/layers.toml", out);
                      },
                      nullptr});
    rules->push_back({"include-cycle", "",
                      "the project include graph is acyclic", nullptr, nullptr, nullptr});
    rules->push_back({"enum-sync", "",
                      "every StallCause/ObsEventKind/PolicyKind enumerator appears at its "
                      "required code and doc sites",
                      nullptr, CheckAllEnumSync, nullptr});
    rules->push_back({"accounting-coverage", "pfc-accounting",
                      "every RunResult counter is compared by the differential gate and pinned "
                      "by a balance check",
                      nullptr, CheckAccountingCoverage, nullptr});
    return rules;
  }();
  return *kRules;
}

AnalysisResult Analyze(const Project& project, const Baseline& baseline) {
  const std::vector<Rule>& rules = AllRules();

  // Per-file rules fan out across a thread pool: each worker claims file
  // indices from an atomic cursor and writes into that file's slot, so the
  // merge order is the (sorted) file order regardless of scheduling.
  std::vector<std::vector<Finding>> slots(project.files.size());
  std::atomic<size_t> cursor{0};
  auto worker = [&] {
    for (size_t i = cursor.fetch_add(1); i < project.files.size(); i = cursor.fetch_add(1)) {
      const SourceFile& f = project.files[i];
      for (const Rule& rule : rules) {
        if (rule.per_file && (!rule.applies || rule.applies(f))) {
          rule.per_file(f, &slots[i]);
        }
      }
    }
  };
  unsigned hw = std::thread::hardware_concurrency();
  const size_t n_threads = std::min<size_t>(hw == 0 ? 1 : hw, 8);
  if (n_threads <= 1 || project.files.size() < 4) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (size_t t = 0; t < n_threads; ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  AnalysisResult result;
  for (std::vector<Finding>& slot : slots) {
    result.raw_findings.insert(result.raw_findings.end(),
                               std::make_move_iterator(slot.begin()),
                               std::make_move_iterator(slot.end()));
  }
  for (const Rule& rule : rules) {
    if (rule.project) {
      rule.project(project, &result.raw_findings);
    }
  }
  std::sort(result.raw_findings.begin(), result.raw_findings.end());
  result.findings = baseline.Apply(result.raw_findings, &result.stale_baseline);
  return result;
}

}  // namespace pfc::analyze
