// Source-text model shared by every pfc_analyze pass.
//
// The analyzer never compiles anything: every rule works on text. To keep
// the rules honest, each file is held twice — `raw` (the bytes, split into
// lines, used for NOLINT markers and messages) and `code` (the same lines
// with comments and string-literal *contents* stripped, so prose like
// "elapsed time (sec)" in a comment or a string can never trip a rule).
//
// The stripper is a small state machine over the C++ lexical grammar:
// line comments, block comments, ordinary string/char literals with
// backslash escapes, and — the part the old pfc_lint stripper got wrong —
// raw string literals `R"delim(...)delim"` (with the optional u8/u/U/L
// encoding prefixes), whose bodies may contain unbalanced `"` and `//`
// without ending the literal. Line structure is preserved throughout so
// finding line numbers stay meaningful.

#ifndef PFC_ANALYZE_SOURCE_H_
#define PFC_ANALYZE_SOURCE_H_

#include <string>
#include <vector>

namespace pfc::analyze {

// Splits text into lines (without terminators). A trailing newline does not
// produce an empty final line.
std::vector<std::string> SplitLines(const std::string& text);

// Comment/string stripper, preserving line structure. String and char
// literals keep their delimiters but lose their contents; raw string
// literals are reduced to `""` regardless of how many lines they span.
std::vector<std::string> StrippedLines(const std::string& text);

// True when `raw_line` carries a `NOLINT(<tag>)` marker for this rule tag.
bool HasNolint(const std::string& raw_line, const std::string& tag);

// One scanned file. `rel` is the path relative to the analysis root with
// '/' separators — the spelling used in findings, baselines, and SARIF.
struct SourceFile {
  std::string rel;
  std::string text;
  std::vector<std::string> raw;
  std::vector<std::string> code;

  // Convenience for whole-file searches on stripped code.
  std::string JoinedCode() const;
};

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_SOURCE_H_
