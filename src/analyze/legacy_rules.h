// The five original pfc_lint rules, migrated into the pfc_analyze
// framework with identical semantics (see tools/pfc_lint.cc history and
// DESIGN.md §4f/§4g):
//
//   no-nondeterminism  — no rand()/srand()/time()/random_device/
//                        system_clock in src/ (NOLINT(pfc-nondeterminism))
//   raw-unit           — no raw int64_t time/block declarations outside
//                        src/util + src/theory (NOLINT(pfc-raw-unit))
//   sink-guard         — sink_->OnEvent only behind a null test or inside
//                        an emission helper
//   policy-parity      — Simulator and RefSim must invoke the same set of
//                        Policy::On* hooks (NOLINT(pfc-policy-parity))
//   hot-structure      — no std::set/std::map in src/core
//                        (NOLINT(pfc-hot-structure))

#ifndef PFC_ANALYZE_LEGACY_RULES_H_
#define PFC_ANALYZE_LEGACY_RULES_H_

#include <vector>

#include "analyze/finding.h"
#include "analyze/project.h"

namespace pfc::analyze {

// Per-file rules; `file` must be a src/ code file (the analyzer's scan
// filter enforces this).
void CheckNondeterminism(const SourceFile& file, std::vector<Finding>* out);
void CheckRawUnits(const SourceFile& file, std::vector<Finding>* out);
void CheckSinkGuard(const SourceFile& file, std::vector<Finding>* out);
void CheckHotStructure(const SourceFile& file, std::vector<Finding>* out);

// Project-scope rule.
void CheckPolicyParity(const Project& project, std::vector<Finding>* out);

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_LEGACY_RULES_H_
