// A single analyzer finding. `file` is root-relative; `line` is 1-based
// (0 = whole-file / cross-file finding). Rendered as
// `file:line: rule: message` by the CLI and as a SARIF result for CI.

#ifndef PFC_ANALYZE_FINDING_H_
#define PFC_ANALYZE_FINDING_H_

#include <cstddef>
#include <string>
#include <tuple>
#include <vector>

namespace pfc::analyze {

struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  }
  friend bool operator==(const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) ==
           std::tie(b.file, b.line, b.rule, b.message);
  }
};

inline bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      return true;
    }
  }
  return false;
}

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_FINDING_H_
