#include "analyze/self_test.h"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/baseline.h"
#include "analyze/finding.h"
#include "analyze/project.h"

namespace pfc::analyze {

namespace {

// The synthetic tree: one seeded violation per registered rule, plus clean
// files that must stay clean. Everything lives in memory.
Project SeededTree() {
  std::vector<std::pair<std::string, std::string>> files = {
      {"analyze/layers.toml",
                     "# synthetic manifest for --self-test\n"
                     "[[layer]]\n"
                     "name = \"util\"\n"
                     "paths = [\"src/util\"]\n"
                     "[[layer]]\n"
                     "name = \"obs\"\n"
                     "paths = [\"src/obs\"]\n"
                     "[[layer]]\n"
                     "name = \"core\"\n"
                     "paths = [\"src/core\"]\n"
                     "[[layer]]\n"
                     "name = \"check\"\n"
                     "paths = [\"src/check\"]\n"
                     "[[layer]]\n"
                     "name = \"harness\"\n"
                     "paths = [\"src/harness\"]\n"
                     "[[layer]]\n"
                     "name = \"apps\"\n"
                     "paths = [\"tools\"]\n"},

  // --- the five migrated pfc_lint rules, one seed each -------------------
      {"src/core/bad_rand.cc", "int f() { return rand(); }\n"},
      {"src/core/bad_unit.cc",
                     "#include <cstdint>\n"
                     "void g() { int64_t stall_ns = 0; (void)stall_ns; }\n"},
      {"src/core/bad_sink.cc",
                     "struct S { void* sink_; void E();\n};\n"
                     "void bad() { S s; s.sink_->OnEvent(0); }\n"},
      {"src/core/bad_structure.cc", "#include <set>\nstd::set<long> index_;\n"},

  // policy-parity: the NOLINT'd OnFastForward call must be excused; the
  // bare OnFetchComplete and OnDiskDown hooks must be flagged. The same
  // file carries the AuditInvariants body the accounting pass reads.
      {"src/core/simulator.cc",
                     "void run() { policy_->OnReference(0); policy_->OnFetchComplete(0);\n"
                     "  policy_->OnDiskDown(0);\n"
                     "  policy_->OnFastForward(0, 1);  // NOLINT(pfc-policy-parity)\n}\n"
                     "void Simulator::AuditInvariants() { (void)fetches_; }\n"},
      {"src/check/ref_sim.cc", "void run() { policy->OnReference(0); }\n"},

  // --- raw-string stripper regression ------------------------------------
  // The body of a raw string may contain `"` and `//`; the old stripper
  // desynced on the quote and silently swallowed everything after it. The
  // rand() on the next line must still be caught...
      {"src/core/raw_string_bad.cc",
                     "const char* kPattern = R\"(x \" y // not a comment)\";\n"
                     "int seeded() { return rand(); }\n"},
  // ...and banned tokens *inside* a raw string body must not be.
      {"src/core/clean_raw_string.cc",
                     "const char* kBanned = R\"(rand( srand( time( \" // )\";\n"
                     "const char* kMore = \"fine\";\n"},

  // --- clean files (from the original pfc_lint self-test) ----------------
      {"src/core/clean.cc",
                     "// calls time() and rand() in prose only\n"
                     "const char* kMsg = \"elapsed time (sec)\";\n"
                     "void ok() { if (sink_ != nullptr) { sink_->OnEvent(e); } }\n"
                     "std::map<int, int> cold_;  // NOLINT(pfc-hot-structure)\n"},
      {"src/harness/clean_harness.cc", "#include <map>\nstd::map<int, int> registry_;\n"},

  // --- layering + include-cycle seeds ------------------------------------
      {"src/core/high_api.h", "struct HighApi {};\n"},
      {"src/util/bad_layer.h", "#include \"core/high_api.h\"\n"},
      {"src/util/clean_layer.h",
                     "#include \"core/high_api.h\"  // NOLINT(pfc-layering)\n"},
      {"src/core/cyc_a.h", "#include \"core/cyc_b.h\"\n"},
      {"src/core/cyc_b.h", "#include \"core/cyc_a.h\"\n"},

  // --- enum-sync seed: fake StallCause::kTest, wired nowhere -------------
      {"src/obs/event.h",
                     "enum class StallCause {\n"
                     "  kColdMiss = 0,\n"
                     "  kTest,\n"
                     "  kNumCauses,\n"
                     "};\n"
                     "enum class ObsEventKind {\n"
                     "  kEvict,\n"
                     "  kNumKinds,\n"
                     "};\n"},
      {"src/obs/stall_attribution.cc",
                     "int Label(int c);\n"
                     "int Name() { return Label(static_cast<int>(StallCause::kColdMiss)); }\n"},
      {"src/obs/obs_report.cc",
                     "int Kind() { return static_cast<int>(ObsEventKind::kEvict); }\n"},
      {"src/obs/export.cc",
                     "int Render() { return static_cast<int>(ObsEventKind::kEvict); }\n"},
      {"src/harness/experiment.h",
                     "enum class PolicyKind {\n  kDemand,\n  kNumPolicies,\n};\n"},
      {"src/harness/experiment.cc",
                     "int Make() { return static_cast<int>(PolicyKind::kDemand); }\n"},
      {"src/check/fuzz.cc",
                     "int Draw() { return static_cast<int>(PolicyKind::kDemand); }\n"},
      {"tools/pfc_sim.cc",
                     "int Lookup() { return static_cast<int>(PolicyKind::kDemand); }\n"},
      {"DESIGN.md",
                     "Vocabulary: kColdMiss, kEvict; policies: kDemand.\n"
                     "(The seeded fake enumerator is deliberately absent here.)\n"},

  // --- accounting-coverage seed ------------------------------------------
  // `fetches` is fully wired (diff + audit); `orphan_counter` is wired
  // nowhere; `scratch` is excused by NOLINT.
      {"src/core/run_result.h",
                     "#include <cstdint>\n"
                     "struct RunResult {\n"
                     "  int64_t fetches = 0;\n"
                     "  int64_t orphan_counter = 0;\n"
                     "  int64_t scratch = 0;  // NOLINT(pfc-accounting)\n"
                     "};\n"},
      {"src/check/diff.cc",
                     "void diff() { check_int(\"fetches\", a.fetches, b.fetches); }\n"},

  };
  return ProjectFromMemory(std::move(files));
}

int g_failures = 0;

void Expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "self-test: FAIL: %s\n", what);
    ++g_failures;
  }
}

bool AnyFinding(const std::vector<Finding>& fs, const std::string& rule,
                const std::string& file_substr, const std::string& msg_substr) {
  for (const Finding& f : fs) {
    if ((rule.empty() || f.rule == rule) &&
        (file_substr.empty() || f.file.find(file_substr) != std::string::npos) &&
        (msg_substr.empty() || f.message.find(msg_substr) != std::string::npos)) {
      return true;
    }
  }
  return false;
}

}  // namespace

int RunSelfTest() {
  g_failures = 0;
  const Project tree = SeededTree();
  const AnalysisResult result = Analyze(tree, Baseline{});
  const std::vector<Finding>& fs = result.findings;

  // Every rule fires on its seed.
  for (const char* rule :
       {"no-nondeterminism", "raw-unit", "sink-guard", "policy-parity", "hot-structure",
        "layering", "include-cycle", "enum-sync", "accounting-coverage"}) {
    if (!HasRule(fs, rule)) {
      std::fprintf(stderr, "self-test: seeded %s violation was NOT caught\n", rule);
      ++g_failures;
    }
  }

  // Clean files stay clean — including the raw-string one whose body is
  // full of banned tokens.
  for (const Finding& f : fs) {
    if (f.file.find("clean") != std::string::npos) {
      std::fprintf(stderr, "self-test: clean file flagged: %s: %s: %s\n", f.file.c_str(),
                   f.rule.c_str(), f.message.c_str());
      ++g_failures;
    }
    if (f.file.find("bad_sink.cc") != std::string::npos && f.rule != "sink-guard") {
      std::fprintf(stderr, "self-test: unexpected %s in bad_sink.cc\n", f.rule.c_str());
      ++g_failures;
    }
  }

  // Raw-string regression: the rand() *after* the unbalanced-quote literal
  // is still visible to the rule.
  Expect(AnyFinding(fs, "no-nondeterminism", "raw_string_bad.cc", "rand"),
         "rand() after a raw string literal must be caught (stripper desync)");

  // policy-parity details: both one-engine hooks flagged, NOLINT honored.
  Expect(AnyFinding(fs, "policy-parity", "", "OnFetchComplete"),
         "one-engine OnFetchComplete hook flagged");
  Expect(AnyFinding(fs, "policy-parity", "", "OnDiskDown"),
         "one-engine OnDiskDown hook flagged");
  Expect(!AnyFinding(fs, "policy-parity", "", "OnFastForward"),
         "NOLINT(pfc-policy-parity) honored");

  // Layering details: the bad edge names both layers; the NOLINT'd edge is
  // excused (clean_layer.h is also covered by the clean-file sweep above).
  Expect(AnyFinding(fs, "layering", "bad_layer.h", "higher layer 'core'"),
         "upward include util -> core flagged with layer names");
  Expect(AnyFinding(fs, "include-cycle", "cyc_a.h", "cyc_b.h"),
         "include cycle reported with the full path");

  // Enum-sync: the fake StallCause::kTest is reported at *every* missing
  // site — the attribution switch and the doc table.
  Expect(AnyFinding(fs, "enum-sync", "stall_attribution.cc", "StallCause::kTest"),
         "kTest missing from the attribution site");
  Expect(AnyFinding(fs, "enum-sync", "DESIGN.md", "StallCause::kTest"),
         "kTest missing from the DESIGN.md vocabulary table");
  Expect(!AnyFinding(fs, "enum-sync", "", "kNumCauses"), "sentinel enumerators skipped");
  Expect(!AnyFinding(fs, "enum-sync", "", "PolicyKind::kDemand"),
         "fully wired enumerator produces no findings");

  // Accounting: orphan_counter draws both findings (diff + audit), the
  // wired and NOLINT'd fields none.
  size_t acct = 0;
  for (const Finding& f : fs) {
    if (f.rule == "accounting-coverage") {
      ++acct;
      Expect(f.message.find("orphan_counter") != std::string::npos,
             "only orphan_counter may draw accounting findings");
    }
  }
  Expect(acct == 2, "orphan_counter draws exactly diff + audit findings");

  // Baseline precedence: a baseline built from one real finding suppresses
  // exactly that finding; a bogus entry is reported stale.
  const Finding* structure = nullptr;
  for (const Finding& f : fs) {
    if (f.rule == "hot-structure") {
      structure = &f;
    }
  }
  if (structure != nullptr) {
    const std::string text = Baseline::Render({*structure}) +
                             "no-nondeterminism\tsrc/nonexistent.cc\tbogus entry\n";
    const AnalysisResult filtered = Analyze(tree, Baseline::Parse(text));
    Expect(!HasRule(filtered.findings, "hot-structure"),
           "baseline entry suppresses its finding");
    Expect(filtered.stale_baseline.size() == 1 &&
               filtered.stale_baseline[0].find("nonexistent") != std::string::npos,
           "unmatched baseline entry reported stale");
    Expect(HasRule(filtered.raw_findings, "hot-structure"),
           "raw findings still carry the suppressed entry");
  }

  if (g_failures == 0) {
    std::printf(
        "pfc_analyze --self-test: all 9 rules fire on seeded violations, clean files pass "
        "(raw-string stripper regression included), NOLINT + baseline escapes honored\n");
    return 0;
  }
  return 1;
}

}  // namespace pfc::analyze
