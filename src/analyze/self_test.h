// Analyzer self-test: proves the checker itself works before it is trusted
// to gate CI. Builds synthetic in-memory trees (no filesystem, no temp
// dirs) seeding exactly one violation per registered rule — the five
// migrated pfc_lint rules and the layering / include-cycle / enum-sync /
// accounting-coverage passes — and verifies:
//
//   * every seeded violation is caught (the fake `StallCause::kTest`
//     enumerator must be reported at *each* missing site),
//   * clean files stay clean, including a file whose raw string literal
//     contains unbalanced `"` and `//` (the stripper bug the old pfc_lint
//     shipped with: a desynced state machine silently blinded every
//     downstream rule),
//   * NOLINT escapes and baseline suppression (with stale-entry detection)
//     are honored.
//
// Returns 0 on success; prints each failure to stderr and returns 1.

#ifndef PFC_ANALYZE_SELF_TEST_H_
#define PFC_ANALYZE_SELF_TEST_H_

namespace pfc::analyze {

int RunSelfTest();

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_SELF_TEST_H_
