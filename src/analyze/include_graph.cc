#include "analyze/include_graph.h"

#include <algorithm>
#include <regex>
#include <set>

namespace pfc::analyze {

namespace {

// Lexically normalizes "a/./b" and "a/../b" without touching the fs.
std::string NormalizePath(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  auto flush = [&] {
    if (part.empty() || part == ".") {
      // drop
    } else if (part == "..") {
      if (!parts.empty()) {
        parts.pop_back();
      }
    } else {
      parts.push_back(part);
    }
    part.clear();
  };
  for (char c : path) {
    if (c == '/') {
      flush();
    } else {
      part += c;
    }
  }
  flush();
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += '/';
    }
    out += parts[i];
  }
  return out;
}

std::string DirName(const std::string& rel) {
  const size_t slash = rel.rfind('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

int FindIndex(const Project& project, const std::string& rel) {
  const SourceFile* f = project.Find(rel);
  if (f == nullptr) {
    return -1;
  }
  return static_cast<int>(f - project.files.data());
}

}  // namespace

std::vector<IncludeEdge> ExtractIncludes(const Project& project) {
  static const std::regex kInclude(R"(^\s*#\s*include\s*"([^"]*)\")");
  std::vector<IncludeEdge> edges;
  for (size_t i = 0; i < project.files.size(); ++i) {
    const SourceFile& f = project.files[i];
    const bool is_code = (f.rel.size() >= 2 && f.rel.compare(f.rel.size() - 2, 2, ".h") == 0) ||
                         (f.rel.size() >= 3 && f.rel.compare(f.rel.size() - 3, 3, ".cc") == 0);
    if (!is_code) {
      continue;
    }
    // The stripper elides string contents, so the include target must be
    // read from the raw line; the stripped line still anchors the match
    // (an include inside a comment is not an include).
    for (size_t ln = 0; ln < f.code.size(); ++ln) {
      if (f.code[ln].find("#") == std::string::npos ||
          f.code[ln].find("include") == std::string::npos) {
        continue;
      }
      std::smatch m;
      const std::string& raw_line = ln < f.raw.size() ? f.raw[ln] : f.code[ln];
      if (!std::regex_search(raw_line, m, kInclude) ||
          !std::regex_search(f.code[ln], std::regex(R"(^\s*#\s*include\s*")"))) {
        continue;
      }
      IncludeEdge e;
      e.from = i;
      e.line = ln + 1;
      e.target = m[1].str();
      e.nolint = HasNolint(raw_line, "pfc-layering");
      for (const std::string& candidate :
           {NormalizePath(DirName(f.rel) + "/" + e.target), NormalizePath("src/" + e.target),
            NormalizePath(e.target)}) {
        const int to = FindIndex(project, candidate);
        if (to >= 0) {
          e.to = static_cast<size_t>(to);
          e.resolved = true;
          break;
        }
      }
      edges.push_back(std::move(e));
    }
  }
  return edges;
}

int LayerManifest::AssignLayer(const std::string& rel) const {
  int best_layer = -1;
  size_t best_len = 0;
  for (size_t l = 0; l < layers.size(); ++l) {
    for (const std::string& p : layers[l].paths) {
      const bool match =
          rel == p || (rel.size() > p.size() && rel.compare(0, p.size(), p) == 0 &&
                       rel[p.size()] == '/');
      if (match && p.size() + 1 > best_len) {
        best_len = p.size() + 1;
        best_layer = static_cast<int>(l);
      }
    }
  }
  return best_layer;
}

bool LayerManifest::Parse(const std::string& text, LayerManifest* out, std::string* error) {
  out->layers.clear();
  static const std::regex kName(R"raw(^\s*name\s*=\s*"([^"]*)")raw");
  static const std::regex kPathsLine(R"raw(^\s*paths\s*=\s*\[(.*)\]\s*$)raw");
  static const std::regex kQuoted(R"raw("([^"]*)")raw");
  size_t lineno = 0;
  for (const std::string& line : SplitLines(text)) {
    ++lineno;
    std::string trimmed = line;
    const size_t hash = trimmed.find('#');
    if (hash != std::string::npos) {
      trimmed = trimmed.substr(0, hash);
    }
    if (trimmed.find_first_not_of(" \t") == std::string::npos) {
      continue;
    }
    if (trimmed.find("[[layer]]") != std::string::npos) {
      out->layers.push_back({});
      continue;
    }
    std::smatch m;
    if (std::regex_search(trimmed, m, kName)) {
      if (out->layers.empty()) {
        *error = "line " + std::to_string(lineno) + ": name outside a [[layer]] table";
        return false;
      }
      out->layers.back().name = m[1].str();
      continue;
    }
    if (std::regex_search(trimmed, m, kPathsLine)) {
      if (out->layers.empty()) {
        *error = "line " + std::to_string(lineno) + ": paths outside a [[layer]] table";
        return false;
      }
      const std::string body = m[1].str();
      for (auto it = std::sregex_iterator(body.begin(), body.end(), kQuoted);
           it != std::sregex_iterator(); ++it) {
        out->layers.back().paths.push_back((*it)[1].str());
      }
      continue;
    }
    *error = "line " + std::to_string(lineno) + ": unrecognized manifest line '" + trimmed + "'";
    return false;
  }
  for (const Layer& l : out->layers) {
    if (l.name.empty()) {
      *error = "a [[layer]] table is missing its name";
      return false;
    }
  }
  if (out->layers.empty()) {
    *error = "manifest declares no layers";
    return false;
  }
  return true;
}

std::vector<std::vector<size_t>> FindIncludeCycles(const Project& project,
                                                   const std::vector<IncludeEdge>& edges) {
  const size_t n = project.files.size();
  std::vector<std::vector<size_t>> adj(n);
  for (const IncludeEdge& e : edges) {
    if (e.resolved) {
      adj[e.from].push_back(e.to);
    }
  }
  for (std::vector<size_t>& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  std::vector<std::vector<size_t>> cycles;
  std::set<std::string> seen_cycles;
  // 0 = white, 1 = on stack, 2 = done.
  std::vector<int> color(n, 0);
  std::vector<size_t> stack;

  // Iterative DFS; on a back edge, the cycle is the stack suffix from the
  // target node. Each distinct node set is reported once (canonicalized by
  // rotating the smallest index to the front).
  struct Frame {
    size_t node;
    size_t next = 0;
  };
  for (size_t start = 0; start < n; ++start) {
    if (color[start] != 0) {
      continue;
    }
    std::vector<Frame> frames{{start}};
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < adj[f.node].size()) {
        const size_t to = adj[f.node][f.next++];
        if (color[to] == 0) {
          color[to] = 1;
          stack.push_back(to);
          frames.push_back({to});
        } else if (color[to] == 1) {
          // Back edge: stack suffix starting at `to` is a cycle.
          auto it = std::find(stack.begin(), stack.end(), to);
          std::vector<size_t> cycle(it, stack.end());
          const auto min_it = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), min_it, cycle.end());
          std::string key;
          for (size_t v : cycle) {
            key += std::to_string(v) + ",";
          }
          if (seen_cycles.insert(key).second) {
            cycle.push_back(cycle.front());
            cycles.push_back(std::move(cycle));
          }
        }
      } else {
        color[f.node] = 2;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  return cycles;
}

void CheckLayering(const Project& project, const std::string& manifest_rel,
                   std::vector<Finding>* out) {
  const SourceFile* manifest_file = project.Find(manifest_rel);
  if (manifest_file == nullptr) {
    out->push_back({manifest_rel, 0, "layering",
                    "layer manifest not found — every scanned file must belong to a declared "
                    "layer"});
    return;
  }
  LayerManifest manifest;
  std::string error;
  if (!LayerManifest::Parse(manifest_file->text, &manifest, &error)) {
    out->push_back({manifest_rel, 0, "layering", "manifest parse error: " + error});
    return;
  }

  const std::vector<IncludeEdge> edges = ExtractIncludes(project);

  // Layer totality: every code file must be covered.
  std::vector<int> layer_of(project.files.size(), -1);
  for (size_t i = 0; i < project.files.size(); ++i) {
    const std::string& rel = project.files[i].rel;
    const bool is_code =
        (rel.size() >= 2 && rel.compare(rel.size() - 2, 2, ".h") == 0) ||
        (rel.size() >= 3 && rel.compare(rel.size() - 3, 3, ".cc") == 0);
    if (!is_code) {
      continue;
    }
    layer_of[i] = manifest.AssignLayer(rel);
    if (layer_of[i] < 0) {
      out->push_back({rel, 0, "layering",
                      "file is not covered by any layer in " + manifest_rel +
                          " — add it (or its directory) to a layer"});
    }
  }

  // Downward includes: from a lower layer into a strictly higher one.
  for (const IncludeEdge& e : edges) {
    if (!e.resolved || e.nolint) {
      continue;
    }
    const int from_layer = layer_of[e.from];
    const int to_layer = layer_of[e.to];
    if (from_layer < 0 || to_layer < 0 || to_layer <= from_layer) {
      continue;
    }
    out->push_back(
        {project.files[e.from].rel, e.line, "layering",
         "layer '" + manifest.layers[static_cast<size_t>(from_layer)].name + "' includes '" +
             e.target + "' from higher layer '" +
             manifest.layers[static_cast<size_t>(to_layer)].name +
             "' — dependencies must point down the layer order"});
  }

  // Cycles, with the offending path spelled out.
  for (const std::vector<size_t>& cycle : FindIncludeCycles(project, edges)) {
    std::string path;
    for (size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) {
        path += " -> ";
      }
      path += project.files[cycle[i]].rel;
    }
    out->push_back({project.files[cycle.front()].rel, 0, "include-cycle",
                    "include cycle: " + path});
  }
}

}  // namespace pfc::analyze
