#include "analyze/legacy_rules.h"

#include <regex>
#include <set>

#include "analyze/source.h"

namespace pfc::analyze {

namespace {

const std::string& RawLine(const SourceFile& file, size_t index) {
  static const std::string kEmpty;
  return index < file.raw.size() ? file.raw[index] : kEmpty;
}

}  // namespace

// --- no-nondeterminism -----------------------------------------------------

void CheckNondeterminism(const SourceFile& file, std::vector<Finding>* out) {
  static const std::regex kBanned(
      R"(\b(rand|srand|time)\s*\(|\brandom_device\b|\bsystem_clock\b)");
  for (size_t i = 0; i < file.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(file.code[i], m, kBanned) &&
        !HasNolint(RawLine(file, i), "pfc-nondeterminism")) {
      out->push_back({file.rel, i + 1, "no-nondeterminism",
                      "ambient randomness/clock source '" + m.str() +
                          "' — use util/rng.h or the simulated clock"});
    }
  }
}

// --- raw-unit --------------------------------------------------------------

void CheckRawUnits(const SourceFile& file, std::vector<Finding>* out) {
  // int64_t declarations whose name denotes a time quantity or a block
  // address. Counts (`blocks`, `num_*`, `*_count`) are legitimately raw.
  static const std::regex kRawTime(
      R"(\bint64_t\s+[A-Za-z_]*(_ns|_time|time)\s*[=;,)])");
  static const std::regex kRawAddr(R"(\bint64_t\s+(block|pos)\s*[=;,)])");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (HasNolint(RawLine(file, i), "pfc-raw-unit")) {
      continue;
    }
    std::smatch m;
    if (std::regex_search(file.code[i], m, kRawTime)) {
      out->push_back({file.rel, i + 1, "raw-unit",
                      "raw int64_t time quantity '" + m.str() +
                          "' — use TimeNs/DurNs (util/strong_types.h)"});
    } else if (std::regex_search(file.code[i], m, kRawAddr)) {
      out->push_back({file.rel, i + 1, "raw-unit",
                      "raw int64_t block/position '" + m.str() +
                          "' — use BlockId/TracePos (util/strong_types.h)"});
    }
  }
}

// --- sink-guard ------------------------------------------------------------

void CheckSinkGuard(const SourceFile& file, std::vector<Finding>* out) {
  static const std::regex kEmit(R"(sink_\s*->\s*OnEvent\s*\()");
  static const std::regex kGuard(R"(sink_\s*[!=]=\s*nullptr)");
  static const std::regex kHelper(R"(::(Emit[A-Za-z]*|BeginStallWindow)\s*\()");
  constexpr size_t kWindow = 15;
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (!std::regex_search(file.code[i], kEmit)) {
      continue;
    }
    bool guarded = false;
    for (size_t back = 0; back <= kWindow && back <= i; ++back) {
      const std::string& prev = file.code[i - back];
      if (std::regex_search(prev, kGuard) || std::regex_search(prev, kHelper)) {
        guarded = true;
        break;
      }
    }
    if (!guarded) {
      out->push_back({file.rel, i + 1, "sink-guard",
                      "sink_->OnEvent without a nearby 'sink_ != nullptr' test or "
                      "emission helper — the no-sink path must cost one branch"});
    }
  }
}

// --- hot-structure ---------------------------------------------------------

void CheckHotStructure(const SourceFile& file, std::vector<Finding>* out) {
  static const std::regex kNodeContainer(R"(\bstd\s*::\s*(multi)?(set|map)\s*<)");
  for (size_t i = 0; i < file.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(file.code[i], m, kNodeContainer) &&
        !HasNolint(RawLine(file, i), "pfc-hot-structure")) {
      out->push_back({file.rel, i + 1, "hot-structure",
                      "node-based '" + m.str() +
                          "...>' in src/core — use a flat structure (open-addressing "
                          "table, handle heap, pos_bitset, sorted vector)"});
    }
  }
}

// --- policy-parity ---------------------------------------------------------

namespace {

std::set<std::string> PolicyHooks(const SourceFile& file) {
  static const std::regex kHook(R"(policy_?\s*->\s*(On[A-Za-z]+)\s*\()");
  std::set<std::string> hooks;
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (HasNolint(i < file.raw.size() ? file.raw[i] : std::string(), "pfc-policy-parity")) {
      continue;  // a deliberate single-engine hook (fast-forward protocol)
    }
    const std::string& line = file.code[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kHook);
         it != std::sregex_iterator(); ++it) {
      hooks.insert((*it)[1].str());
    }
  }
  return hooks;
}

}  // namespace

void CheckPolicyParity(const Project& project, std::vector<Finding>* out) {
  const std::string kSim = "src/core/simulator.cc";
  const std::string kRef = "src/check/ref_sim.cc";
  const SourceFile* sim = project.Find(kSim);
  const SourceFile* ref = project.Find(kRef);
  if (sim == nullptr || ref == nullptr) {
    out->push_back({sim != nullptr ? kRef : kSim, 0, "policy-parity",
                    "engine source missing — cannot verify Simulator/RefSim hook parity"});
    return;
  }
  const std::set<std::string> sim_hooks = PolicyHooks(*sim);
  const std::set<std::string> ref_hooks = PolicyHooks(*ref);
  for (const std::string& hook : sim_hooks) {
    if (ref_hooks.find(hook) == ref_hooks.end()) {
      out->push_back({kRef, 0, "policy-parity",
                      "Simulator invokes Policy::" + hook +
                          " but RefSim never does — the differential gate would not "
                          "exercise it"});
    }
  }
  for (const std::string& hook : ref_hooks) {
    if (sim_hooks.find(hook) == sim_hooks.end()) {
      out->push_back({kSim, 0, "policy-parity",
                      "RefSim invokes Policy::" + hook + " but Simulator never does"});
    }
  }
}

}  // namespace pfc::analyze
