#include "analyze/accounting.h"

#include <cctype>
#include <regex>

#include "analyze/source.h"

namespace pfc::analyze {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ContainsToken(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) {
      return true;
    }
    pos += 1;
  }
  return false;
}

}  // namespace

std::vector<CounterField> ParseCounterFields(const std::vector<std::string>& code,
                                             const std::string& struct_name) {
  std::vector<CounterField> fields;
  const std::regex kStruct("\\bstruct\\s+" + struct_name + "\\b");
  static const std::regex kField(R"(^\s*(int64_t|DurNs)\s+([A-Za-z_][A-Za-z0-9_]*)\s*(=|;))");
  int depth = 0;
  bool inside = false;
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    if (!inside && std::regex_search(line, kStruct)) {
      inside = true;
      depth = 0;
    }
    if (!inside) {
      continue;
    }
    // Only collect fields at struct scope (depth 1), not in nested types.
    if (depth == 1) {
      std::smatch m;
      if (std::regex_search(line, m, kField)) {
        fields.push_back({m[2].str(), i + 1});
      }
    }
    for (char c : line) {
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0) {
          return fields;
        }
      }
    }
  }
  return fields;
}

std::string ExtractFunctionBody(const std::string& stripped_text,
                                const std::string& qualified_name) {
  size_t pos = 0;
  while ((pos = stripped_text.find(qualified_name, pos)) != std::string::npos) {
    const size_t after = pos + qualified_name.size();
    if ((pos > 0 && IsIdentChar(stripped_text[pos - 1])) ||
        (after < stripped_text.size() && IsIdentChar(stripped_text[after]))) {
      pos = after;
      continue;
    }
    // Must be followed by an argument list, then the body brace.
    size_t i = after;
    while (i < stripped_text.size() && std::isspace(static_cast<unsigned char>(stripped_text[i]))) {
      ++i;
    }
    if (i >= stripped_text.size() || stripped_text[i] != '(') {
      pos = after;
      continue;
    }
    int parens = 0;
    while (i < stripped_text.size()) {
      if (stripped_text[i] == '(') {
        ++parens;
      } else if (stripped_text[i] == ')') {
        --parens;
        if (parens == 0) {
          ++i;
          break;
        }
      }
      ++i;
    }
    // Skip qualifiers (const, noexcept, trailing return) up to `{` or `;`.
    while (i < stripped_text.size() && stripped_text[i] != '{' && stripped_text[i] != ';') {
      ++i;
    }
    if (i >= stripped_text.size() || stripped_text[i] == ';') {
      pos = after;  // a declaration, not a definition
      continue;
    }
    int depth = 0;
    std::string body;
    while (i < stripped_text.size()) {
      const char c = stripped_text[i];
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0) {
          return body;
        }
      }
      if (depth > 0) {
        body += c;
      }
      ++i;
    }
    return body;
  }
  return std::string();
}

void CheckAccountingCoverage(const Project& project, std::vector<Finding>* out) {
  const std::string kResultHeader = "src/core/run_result.h";
  const SourceFile* header = project.Find(kResultHeader);
  if (header == nullptr) {
    out->push_back({kResultHeader, 0, "accounting-coverage", "run_result.h not found"});
    return;
  }
  const std::vector<CounterField> fields = ParseCounterFields(header->code, "RunResult");
  if (fields.empty()) {
    out->push_back({kResultHeader, 0, "accounting-coverage",
                    "no counter fields parsed from struct RunResult"});
    return;
  }

  const SourceFile* diff = project.Find("src/check/diff.cc");
  struct AuditRegion {
    std::string name;  // for messages
    std::string body;
  };
  std::vector<AuditRegion> audits;
  if (const SourceFile* sim = project.Find("src/core/simulator.cc"); sim != nullptr) {
    const std::string joined = sim->JoinedCode();
    audits.push_back({"Simulator::AuditInvariants", ExtractFunctionBody(joined, "AuditInvariants")});
    audits.push_back({"Simulator::AuditResult", ExtractFunctionBody(joined, "AuditResult")});
  }
  if (const SourceFile* obs = project.Find("src/obs/obs_report.cc"); obs != nullptr) {
    audits.push_back({"ObsCollector::Finish", ExtractFunctionBody(obs->JoinedCode(), "Finish")});
  }
  if (const SourceFile* att = project.Find("src/obs/stall_attribution.cc"); att != nullptr) {
    audits.push_back(
        {"StallAttribution::CheckAgainst", ExtractFunctionBody(att->JoinedCode(), "CheckAgainst")});
  }

  const std::string diff_code = diff != nullptr ? diff->JoinedCode() : std::string();
  for (const CounterField& f : fields) {
    const std::string& raw_line =
        f.line > 0 && f.line <= header->raw.size() ? header->raw[f.line - 1] : header->raw.front();
    if (HasNolint(raw_line, "pfc-accounting")) {
      continue;
    }
    if (diff == nullptr || !ContainsToken(diff_code, f.name)) {
      out->push_back({kResultHeader, f.line, "accounting-coverage",
                      "RunResult::" + f.name +
                          " is not compared by the differential gate (src/check/diff.cc) — "
                          "RunDifferential must assert exact equality for every counter"});
    }
    bool audited = false;
    for (const AuditRegion& a : audits) {
      if (ContainsToken(a.body, f.name) || ContainsToken(a.body, f.name + "_")) {
        audited = true;
        break;
      }
    }
    if (!audited) {
      out->push_back({kResultHeader, f.line, "accounting-coverage",
                      "RunResult::" + f.name +
                          " has no balance check — reference it (or its `" + f.name +
                          "_` accumulator) in Simulator::AuditInvariants / AuditResult, "
                          "ObsCollector::Finish, or StallAttribution::CheckAgainst"});
    }
  }
}

}  // namespace pfc::analyze
