// SARIF 2.1.0 serialization of analyzer findings, for CI artifact upload
// (GitHub code scanning and most SARIF viewers accept exactly this shape).

#ifndef PFC_ANALYZE_SARIF_H_
#define PFC_ANALYZE_SARIF_H_

#include <string>
#include <vector>

#include "analyze/finding.h"

namespace pfc::analyze {

// A rule descriptor for the tool.driver.rules table.
struct SarifRule {
  std::string id;
  std::string description;
};

// Renders a complete SARIF 2.1.0 log: one run, one result per finding
// (level "error"), rule metadata for every registered rule whether or not
// it fired. Deterministic bytes for fixed inputs.
std::string SarifString(const std::vector<Finding>& findings, const std::vector<SarifRule>& rules);

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_SARIF_H_
