// The pfc_analyze rule framework.
//
// A Rule is either per-file (runs on every code file its `applies` filter
// admits; rule bodies never see files the filter rejects) or project-scope
// (runs once over the whole Project — include-graph, enum-sync, accounting,
// policy-parity). The driver scans per-file rules in parallel with a
// deterministic merge (findings ordered by file, then line, then rule),
// applies the suppression baseline last, and reports which baseline entries
// went stale. NOLINT escapes are honored *inside* each rule (they need the
// raw line), the baseline outside (it needs the final finding).

#ifndef PFC_ANALYZE_ANALYZER_H_
#define PFC_ANALYZE_ANALYZER_H_

#include <functional>
#include <string>
#include <vector>

#include "analyze/baseline.h"
#include "analyze/finding.h"
#include "analyze/project.h"

namespace pfc::analyze {

struct Rule {
  std::string name;         // finding rule id, e.g. "raw-unit"
  std::string nolint_tag;   // e.g. "pfc-raw-unit"; empty = no escape hatch
  std::string description;  // one line, surfaced in SARIF rule metadata
  // At most one of the two hooks is set. A rule with neither hook is
  // metadata-only: its findings are emitted by another pass (include-cycle
  // findings come out of the layering pass, which walks the graph once).
  std::function<void(const SourceFile&, std::vector<Finding>*)> per_file;
  std::function<void(const Project&, std::vector<Finding>*)> project;
  // For per-file rules: which files the rule sees (defaults to src/ code
  // files when unset).
  std::function<bool(const SourceFile&)> applies;
};

// The full registry: the five migrated pfc_lint rules plus layering,
// include-cycle, enum-sync, and accounting-coverage.
const std::vector<Rule>& AllRules();

struct AnalysisResult {
  std::vector<Finding> findings;       // post-baseline, sorted
  std::vector<Finding> raw_findings;   // pre-baseline, sorted (for --update-baseline)
  std::vector<std::string> stale_baseline;  // baseline entries that matched nothing
};

// Runs every rule over `project`. Per-file rules run in parallel across
// files; output order is deterministic regardless of thread schedule.
AnalysisResult Analyze(const Project& project, const Baseline& baseline);

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_ANALYZER_H_
