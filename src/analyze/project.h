// A loaded analysis tree: every C++ source file under the scanned roots
// plus the documentation files some cross-file passes check (DESIGN.md).
//
// Loading and stripping are the analyzer's only I/O-heavy phase, so they
// run across a small thread pool (one slice of the sorted file list per
// worker); the file order — and therefore every downstream finding order —
// is deterministic regardless of thread count.

#ifndef PFC_ANALYZE_PROJECT_H_
#define PFC_ANALYZE_PROJECT_H_

#include <filesystem>
#include <string>
#include <vector>

#include "analyze/source.h"

namespace pfc::analyze {

struct Project {
  std::filesystem::path root;
  // Sorted by `rel`. Code files carry stripped lines; .md files are loaded
  // verbatim (code == raw) so doc-site checks can match prose.
  std::vector<SourceFile> files;

  const SourceFile* Find(const std::string& rel) const;

  // Indices of files whose rel path starts with `prefix` ("src/", ...).
  std::vector<size_t> Under(const std::string& prefix) const;
};

// The directories scanned for .h/.cc files, relative to root. tests/,
// tools/, bench/, and examples/ participate in the include-graph pass;
// the per-file style rules run on src/ only (see analyzer.cc).
const std::vector<std::string>& ScanRoots();

// Loads (in parallel) every .h/.cc under ScanRoots() plus the listed doc
// files. Missing directories are skipped silently, so the loader works on
// the self-test's synthetic mini-trees too.
Project LoadProject(const std::filesystem::path& root);

// Builds a project from in-memory (rel, text) pairs — the unit-test and
// self-test entry point, bypassing the filesystem entirely.
Project ProjectFromMemory(std::vector<std::pair<std::string, std::string>> files);

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_PROJECT_H_
