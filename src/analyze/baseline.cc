#include "analyze/baseline.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <set>

#include "analyze/source.h"

namespace pfc::analyze {

Baseline Baseline::Parse(const std::string& text) {
  Baseline b;
  for (const std::string& line : SplitLines(text)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t t1 = line.find('\t');
    if (t1 == std::string::npos) {
      continue;
    }
    const size_t t2 = line.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      continue;
    }
    b.entries_.push_back(
        {line.substr(0, t1), line.substr(t1 + 1, t2 - t1 - 1), line.substr(t2 + 1)});
  }
  return b;
}

Baseline Baseline::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Baseline{};
  }
  return Parse(std::string(std::istreambuf_iterator<char>(in), {}));
}

bool Baseline::Suppresses(const Finding& f) const {
  for (const Entry& e : entries_) {
    if (e.rule == f.rule && e.file == f.file && e.message == f.message) {
      return true;
    }
  }
  return false;
}

std::vector<Finding> Baseline::Apply(const std::vector<Finding>& all,
                                     std::vector<std::string>* stale) const {
  std::vector<Finding> kept;
  std::vector<bool> used(entries_.size(), false);
  for (const Finding& f : all) {
    bool suppressed = false;
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (e.rule == f.rule && e.file == f.file && e.message == f.message) {
        used[i] = true;
        suppressed = true;
      }
    }
    if (!suppressed) {
      kept.push_back(f);
    }
  }
  if (stale != nullptr) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (!used[i]) {
        stale->push_back(entries_[i].rule + "\t" + entries_[i].file + "\t" + entries_[i].message);
      }
    }
  }
  return kept;
}

std::string Baseline::Render(const std::vector<Finding>& findings) {
  std::set<std::string> lines;  // sorted + deduplicated
  for (const Finding& f : findings) {
    lines.insert(f.rule + "\t" + f.file + "\t" + f.message);
  }
  std::string out =
      "# pfc_analyze suppression baseline: rule<TAB>file<TAB>message, one per line.\n"
      "# Regenerate with `pfc_analyze --root . --update-baseline`; entries that\n"
      "# stop matching are reported as stale and should be deleted.\n";
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace pfc::analyze
