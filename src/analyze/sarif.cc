#include "analyze/sarif.h"

#include <cstdio>

namespace pfc::analyze {

namespace {

// JSON string escaping per RFC 8259: quote, backslash, and control
// characters; everything else passes through (UTF-8 bytes are legal).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string SarifString(const std::vector<Finding>& findings,
                        const std::vector<SarifRule>& rules) {
  std::string out;
  out.reserve(512 + 256 * findings.size());
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
      "sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"pfc_analyze\",\n"
      "          \"informationUri\": \"https://example.invalid/pfc\",\n"
      "          \"version\": \"1.0.0\",\n"
      "          \"rules\": [\n";
  for (size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"" + JsonEscape(rules[i].id) +
           "\", \"shortDescription\": {\"text\": \"" + JsonEscape(rules[i].description) + "\"}}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\"ruleId\": \"" + JsonEscape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" + JsonEscape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"" +
           JsonEscape(f.file) + "\"}";
    if (f.line > 0) {
      out += ", \"region\": {\"startLine\": " + std::to_string(f.line) + "}";
    }
    out += "}}]}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace pfc::analyze
