#include "analyze/cli.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/baseline.h"
#include "analyze/sarif.h"
#include "analyze/self_test.h"

namespace pfc::analyze {

namespace fs = std::filesystem;

namespace {

bool WriteFile(const fs::path& path, const std::string& content) {
  if (path.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary);
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int RunCli(int argc, char** argv, const char* tool_name) {
  fs::path root = ".";
  fs::path baseline_path;
  fs::path sarif_path;
  bool self_test = false;
  bool update_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--root <repo-root>] [--self-test] [--baseline <file>] "
                   "[--update-baseline] [--sarif <path>]\n",
                   tool_name);
      return 2;
    }
  }
  if (self_test) {
    return RunSelfTest();
  }
  if (!fs::is_directory(root / "src")) {
    std::fprintf(stderr, "%s: src/ not found under root %s\n", tool_name,
                 root.string().c_str());
    return 2;
  }
  if (baseline_path.empty()) {
    baseline_path = root / "analyze" / "baseline.txt";
  }

  const Project project = LoadProject(root);
  const Baseline baseline = Baseline::Load(baseline_path.string());
  const AnalysisResult result = Analyze(project, baseline);

  if (update_baseline) {
    if (!WriteFile(baseline_path, Baseline::Render(result.raw_findings))) {
      std::fprintf(stderr, "%s: cannot write %s\n", tool_name, baseline_path.string().c_str());
      return 2;
    }
    std::printf("%s: baseline rewritten with %zu entr%s (%s)\n", tool_name,
                result.raw_findings.size(), result.raw_findings.size() == 1 ? "y" : "ies",
                baseline_path.string().c_str());
    return 0;
  }

  for (const std::string& stale : result.stale_baseline) {
    std::fprintf(stderr, "%s: stale baseline entry (matches nothing, delete it): %s\n",
                 tool_name, stale.c_str());
  }
  for (const Finding& f : result.findings) {
    if (f.line > 0) {
      std::fprintf(stderr, "%s:%zu: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                   f.message.c_str());
    } else {
      std::fprintf(stderr, "%s: %s: %s\n", f.file.c_str(), f.rule.c_str(), f.message.c_str());
    }
  }

  if (!sarif_path.empty()) {
    std::vector<SarifRule> rules;
    for (const Rule& r : AllRules()) {
      rules.push_back({r.name, r.description});
    }
    if (!WriteFile(sarif_path, SarifString(result.findings, rules))) {
      std::fprintf(stderr, "%s: cannot write %s\n", tool_name, sarif_path.string().c_str());
      return 2;
    }
  }

  if (result.findings.empty()) {
    std::printf("%s: clean (%zu files, %zu baseline entr%s)\n", tool_name,
                project.files.size(), baseline.size(), baseline.size() == 1 ? "y" : "ies");
    return 0;
  }
  std::fprintf(stderr, "%s: %zu finding(s)\n", tool_name, result.findings.size());
  return 1;
}

}  // namespace pfc::analyze
