// Cross-file enum-sync pass.
//
// Several enums are project vocabulary: every enumerator must be handled
// not just where the compiler can see (-Werror=switch covers those) but at
// *textual* sites the compiler never connects — name tables the CLI parses,
// the fuzzer's draw/serialize tables, and the architecture documentation.
// PR 7's `StallCause::kOutage` had to be hand-threaded through attribution,
// the events-CSV schema, the renderer, and the docs; this pass makes the
// next such addition fail tier 0 with the missing sites listed.
//
// For each tracked enum, every enumerator parsed from its defining header
// (sentinels like kNumCauses excluded) must appear:
//   * as `Enum::kFoo` in each required code site, and
//   * as the bare token `kFoo` in each required doc site (DESIGN.md keeps
//     an explicit enumerator table for exactly this purpose, §4g).
//
// A missing site is one finding per (enumerator, site), so the output is
// the complete to-do list for the addition.

#ifndef PFC_ANALYZE_ENUM_SYNC_H_
#define PFC_ANALYZE_ENUM_SYNC_H_

#include <string>
#include <vector>

#include "analyze/finding.h"
#include "analyze/project.h"

namespace pfc::analyze {

struct EnumSiteSpec {
  std::string file;  // root-relative
  std::string why;   // human description of what lives there
};

struct EnumSpec {
  std::string enum_name;
  std::string header;              // root-relative defining header
  std::string sentinel_prefix;     // enumerators starting with this are skipped
  std::vector<EnumSiteSpec> code_sites;
  std::vector<EnumSiteSpec> doc_sites;
};

// The project's tracked enums (StallCause, ObsEventKind, PolicyKind).
const std::vector<EnumSpec>& TrackedEnums();

// Parses the enumerator names of `enum class <name>` from stripped header
// text. Returns an empty vector when the enum is not found.
std::vector<std::string> ParseEnumerators(const std::string& stripped_text,
                                          const std::string& enum_name);

// Checks `spec` against the project; appends one finding per missing site.
void CheckEnumSync(const Project& project, const EnumSpec& spec, std::vector<Finding>* out);

// Runs every tracked enum.
void CheckAllEnumSync(const Project& project, std::vector<Finding>* out);

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_ENUM_SYNC_H_
