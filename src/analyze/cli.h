// Command-line driver shared by pfc_analyze and the pfc_lint compatibility
// alias.
//
// Usage: pfc_analyze [--root <repo-root>] [--self-test]
//                    [--baseline <file>] [--update-baseline]
//                    [--sarif <path>]
// Exit: 0 = clean, 1 = findings, 2 = usage/environment error.
//
// Findings print to stderr as `file:line: rule: message` (line omitted for
// whole-file findings); `--sarif` additionally writes a SARIF 2.1.0 log.
// The suppression baseline defaults to `<root>/analyze/baseline.txt`;
// `--update-baseline` rewrites it from the current raw findings instead of
// failing.

#ifndef PFC_ANALYZE_CLI_H_
#define PFC_ANALYZE_CLI_H_

namespace pfc::analyze {

// `tool_name` is used in messages ("pfc_analyze" or "pfc_lint").
int RunCli(int argc, char** argv, const char* tool_name);

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_CLI_H_
