#include "analyze/source.h"

#include <cctype>
#include <cstddef>

namespace pfc::analyze {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Decides whether the `"` at text[i] opens a raw string literal, i.e. is
// preceded by R / uR / UR / LR / u8R with no identifier character glued on
// the front (`FooR"` is an ordinary identifier followed by a string).
// Returns the prefix length (1 for R, 2 for uR/UR/LR, 3 for u8R) so the
// caller can elide the prefix along with the body, or 0 if not raw.
size_t RawPrefixLen(const std::string& text, size_t i) {
  if (i == 0 || text[i - 1] != 'R') {
    return 0;
  }
  const size_t r = i - 1;
  if (r == 0) {
    return 1;  // file starts with R"
  }
  const char p = text[r - 1];
  if (!IsIdentChar(p)) {
    return 1;  // bare R"
  }
  // Encoding prefixes: uR" UR" LR" u8R".
  if ((p == 'u' || p == 'U' || p == 'L') && (r - 1 == 0 || !IsIdentChar(text[r - 2]))) {
    return 2;
  }
  if (p == '8' && r >= 2 && text[r - 2] == 'u' && (r - 2 == 0 || !IsIdentChar(text[r - 3]))) {
    return 3;
  }
  return 0;
}

}  // namespace

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    lines.push_back(current);
  }
  return lines;
}

std::vector<std::string> StrippedLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar } st = St::kCode;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) {
        st = St::kCode;
      }
      lines.push_back(current);
      current.clear();
      continue;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          ++i;
        } else if (c == '"' && RawPrefixLen(text, i) > 0) {
          // Raw string literal: R"delim( ... )delim". The body may contain
          // quotes, backslashes, and // freely — the only terminator is the
          // exact `)delim"` sequence. The old pfc_lint stripper treated the
          // opening quote as an ordinary string and desynced on any `"`
          // inside the body; this scanner consumes the literal exactly.
          const std::string prefix = text.substr(i - RawPrefixLen(text, i), RawPrefixLen(text, i));
          current.resize(current.size() - prefix.size());
          std::string delim;
          size_t j = i + 1;
          while (j < text.size() && text[j] != '(' && delim.size() <= 16) {
            delim += text[j];
            ++j;
          }
          if (j >= text.size() || text[j] != '(') {
            // Malformed (not a real raw literal after all); put the prefix
            // back, emit the quote, and carry on — the compiler will reject
            // this file anyway.
            current += prefix;
            current += '"';
            break;
          }
          const std::string close = ")" + delim + "\"";
          size_t end = text.find(close, j + 1);
          current += "\"\"";  // the literal, contents elided
          if (end == std::string::npos) {
            end = text.size();
          } else {
            end += close.size() - 1;  // index of the closing quote
          }
          // Preserve the line structure of the elided body.
          for (size_t k = i + 1; k < end && k < text.size(); ++k) {
            if (text[k] == '\n') {
              lines.push_back(current);
              current.clear();
            }
          }
          i = end < text.size() ? end : text.size() - 1;
        } else if (c == '"') {
          st = St::kString;
          current += '"';
        } else if (c == '\'') {
          st = St::kChar;
          current += '\'';
        } else {
          current += c;
        }
        break;
      case St::kLineComment:
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          ++i;
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = St::kCode;
          current += '"';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          current += '\'';
        }
        break;
    }
  }
  if (!current.empty() || st != St::kCode) {
    lines.push_back(current);
  }
  return lines;
}

bool HasNolint(const std::string& raw_line, const std::string& tag) {
  return raw_line.find("NOLINT(" + tag + ")") != std::string::npos;
}

std::string SourceFile::JoinedCode() const {
  std::string out;
  size_t total = 0;
  for (const std::string& line : code) {
    total += line.size() + 1;
  }
  out.reserve(total);
  for (const std::string& line : code) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace pfc::analyze
