// Accounting-coverage pass.
//
// Every integer counter and duration field of `RunResult` is a promise:
// the differential gate compares it bit-for-bit between engines, and some
// balance check pins it against the rest of the accounting. A counter that
// is *not* wired into those sites is a silent hole — the fuzzer would never
// notice it drifting. This pass parses the `int64_t` / `DurNs` fields out
// of `src/core/run_result.h` and requires each (unless the field's line
// carries `NOLINT(pfc-accounting)`) to appear:
//
//   * in `src/check/diff.cc` — the RunDifferential exact-equality
//     comparator must compare it, and
//   * in at least one audit site — `Simulator::AuditInvariants` or
//     `Simulator::AuditResult` (src/core/simulator.cc, matched as the
//     field name or its `name_` accumulator spelling),
//     `ObsCollector::Finish` (src/obs/obs_report.cc), or
//     `StallAttribution::CheckAgainst` (src/obs/stall_attribution.cc).

#ifndef PFC_ANALYZE_ACCOUNTING_H_
#define PFC_ANALYZE_ACCOUNTING_H_

#include <string>
#include <vector>

#include "analyze/finding.h"
#include "analyze/project.h"

namespace pfc::analyze {

struct CounterField {
  std::string name;
  size_t line = 0;  // 1-based, in run_result.h
};

// Parses the counter fields (int64_t / DurNs members) of `struct <name>`
// from stripped header text. Function declarations are excluded.
std::vector<CounterField> ParseCounterFields(const std::vector<std::string>& code,
                                             const std::string& struct_name);

// Extracts the brace-matched body of the first `<qualified_name>(...) {...}`
// in stripped text; empty string when not found.
std::string ExtractFunctionBody(const std::string& stripped_text,
                                const std::string& qualified_name);

void CheckAccountingCoverage(const Project& project, std::vector<Finding>* out);

}  // namespace pfc::analyze

#endif  // PFC_ANALYZE_ACCOUNTING_H_
