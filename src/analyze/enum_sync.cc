#include "analyze/enum_sync.h"

#include <cctype>
#include <regex>

namespace pfc::analyze {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Word-boundary substring search (regex-free: this runs over whole files).
bool ContainsToken(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) {
      return true;
    }
    pos += 1;
  }
  return false;
}

}  // namespace

const std::vector<EnumSpec>& TrackedEnums() {
  static const std::vector<EnumSpec> kSpecs = {
      {"StallCause",
       "src/obs/event.h",
       "kNum",
       {{"src/obs/stall_attribution.cc", "the attribution/ToString switch"}},
       {{"DESIGN.md", "the stall-cause vocabulary table (§4g)"}}},
      {"ObsEventKind",
       "src/obs/event.h",
       "kNum",
       {{"src/obs/obs_report.cc", "the collector switch and event-name table"},
        {"src/obs/export.cc", "the events-CSV / Chrome-trace renderer"}},
       {{"DESIGN.md", "the event-kind vocabulary table (§4g)"}}},
      {"PolicyKind",
       "src/harness/experiment.h",
       "kNum",
       {{"src/harness/experiment.cc", "the policy factory and name table"},
        {"src/check/fuzz.cc", "the fuzzer's policy draw/serialize tables"},
        {"tools/pfc_sim.cc", "the --policy CLI lookup table"}},
       {{"DESIGN.md", "the policy vocabulary table (§4g)"}}},
  };
  return kSpecs;
}

std::vector<std::string> ParseEnumerators(const std::string& stripped_text,
                                          const std::string& enum_name) {
  std::vector<std::string> out;
  const std::regex kHead("enum\\s+class\\s+" + enum_name + "\\b[^{]*\\{");
  std::smatch m;
  if (!std::regex_search(stripped_text, m, kHead)) {
    return out;
  }
  size_t pos = static_cast<size_t>(m.position(0)) + static_cast<size_t>(m.length(0));
  int depth = 1;
  std::string body;
  while (pos < stripped_text.size() && depth > 0) {
    const char c = stripped_text[pos];
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
    }
    if (depth > 0) {
      body += c;
    }
    ++pos;
  }
  // Enumerators: the first identifier of each comma-separated item (an
  // optional `= value` initializer follows the name and is ignored).
  static const std::regex kIdent(R"([A-Za-z_][A-Za-z0-9_]*)");
  size_t start = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    if (i == body.size() || body[i] == ',') {
      const std::string chunk = body.substr(start, i - start);
      std::smatch im;
      if (std::regex_search(chunk, im, kIdent)) {
        out.push_back(im.str());
      }
      start = i + 1;
    }
  }
  return out;
}

void CheckEnumSync(const Project& project, const EnumSpec& spec, std::vector<Finding>* out) {
  const SourceFile* header = project.Find(spec.header);
  if (header == nullptr) {
    out->push_back({spec.header, 0, "enum-sync",
                    "defining header for enum " + spec.enum_name + " not found"});
    return;
  }
  const std::vector<std::string> enumerators =
      ParseEnumerators(header->JoinedCode(), spec.enum_name);
  if (enumerators.empty()) {
    out->push_back({spec.header, 0, "enum-sync",
                    "enum class " + spec.enum_name + " not found or has no enumerators"});
    return;
  }
  // Missing site files are reported once per site, not per enumerator.
  struct LoadedSite {
    const EnumSiteSpec* spec;
    std::string haystack;
    bool doc;
  };
  std::vector<LoadedSite> sites;
  for (const EnumSiteSpec& site : spec.code_sites) {
    const SourceFile* sf = project.Find(site.file);
    if (sf == nullptr) {
      out->push_back({site.file, 0, "enum-sync",
                      "required site for " + spec.enum_name + " is missing (" + site.why + ")"});
      continue;
    }
    sites.push_back({&site, sf->JoinedCode(), false});
  }
  for (const EnumSiteSpec& site : spec.doc_sites) {
    const SourceFile* sf = project.Find(site.file);
    if (sf == nullptr) {
      out->push_back({site.file, 0, "enum-sync",
                      "required doc site for " + spec.enum_name + " is missing (" + site.why +
                          ")"});
      continue;
    }
    sites.push_back({&site, sf->text, true});
  }

  for (const std::string& e : enumerators) {
    if (!spec.sentinel_prefix.empty() &&
        e.compare(0, spec.sentinel_prefix.size(), spec.sentinel_prefix) == 0) {
      continue;
    }
    for (const LoadedSite& site : sites) {
      const std::string needle = site.doc ? e : spec.enum_name + "::" + e;
      if (!ContainsToken(site.haystack, needle)) {
        out->push_back({site.spec->file, 0, "enum-sync",
                        spec.enum_name + "::" + e + (site.doc ? " is not documented here ("
                                                              : " is not handled here (") +
                            site.spec->why +
                            (site.doc ? ") — add it to the enumerator table"
                                      : ") — every enumerator must appear at this site")});
      }
    }
  }
}

void CheckAllEnumSync(const Project& project, std::vector<Finding>* out) {
  for (const EnumSpec& spec : TrackedEnums()) {
    CheckEnumSync(project, spec, out);
  }
}

}  // namespace pfc::analyze
