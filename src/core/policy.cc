#include "core/policy.h"

#include "core/engine.h"
#include "util/check.h"

namespace pfc {

BlockId Policy::ChooseDemandEviction(Engine& sim, BlockId block) {
  (void)block;
  std::optional<BlockId> victim = sim.cache().FurthestBlock();
  PFC_CHECK_MSG(victim.has_value(), "demand eviction requested with no present blocks");
  return *victim;
}

int DefaultBatchSize(int num_disks) {
  // Table 6.
  switch (num_disks) {
    case 1:
      return 80;
    case 2:
    case 3:
      return 40;
    case 4:
    case 5:
      return 16;
    case 6:
    case 7:
      return 8;
    default:
      return 4;
  }
}

}  // namespace pfc
