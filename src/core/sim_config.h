// Configuration for one simulation run.

#ifndef PFC_CORE_SIM_CONFIG_H_
#define PFC_CORE_SIM_CONFIG_H_

#include "disk/disk_array.h"
#include "disk/scheduler.h"
#include "layout/placement.h"
#include "util/time_util.h"

namespace pfc {

// Observability knobs (see src/obs). `collect` installs a private
// ObsCollector for the run and attaches the finished ObsReport to
// RunResult::obs; `keep_events` additionally retains the raw typed event
// stream inside the report for export (Chrome trace JSON / CSV). Both off
// (the default) means no sink is installed and every emission site costs a
// single never-taken branch.
struct ObsOptions {
  bool collect = false;
  bool keep_events = false;
};

// Adversarial hint corruption (the oracle lies, deterministically in
// hint_seed). Coverage only *omits* hints; these knobs make the surviving
// hints wrong. All transformations apply to what the prefetcher sees — the
// demand path always serves the true trace.
struct HintFault {
  // Each hinted reference independently claims a different block (the block
  // of a uniformly drawn trace reference) with this probability. In [0, 1].
  double wrong_block_rate = 0.0;

  // Hinted block claims are shuffled within disjoint windows of this many
  // references (0 = no reordering): the hint stream has the right blocks in
  // roughly the right place, but locally out of order.
  int64_t reorder_window = 0;

  // The hint source only sees this many references past the cursor; hints
  // beyond the lookahead are invisible until the application catches up
  // (0 = unlimited). Models a predictor with a bounded horizon.
  int64_t stale_lookahead = 0;

  bool enabled() const {
    return wrong_block_rate > 0.0 || reorder_window > 0 || stale_lookahead > 0;
  }

  bool operator==(const HintFault&) const = default;
};

// Which hint source feeds the prefetcher (src/predict). kOracle is the
// paper's setting: hints come from the trace itself (possibly thinned by
// hint_coverage or corrupted by hint_fault). Everything else replaces the
// oracle with an *online* source: the claimed-hint stream is exactly what a
// predictor that has observed references [0, cursor] would emit, while the
// replacement oracle stays truthful (the PR-7 claims-vs-truth split).
enum class PredictorKind : uint8_t {
  kOracle = 0,      // offline hints from the trace (default)
  kNone,            // hintless: no hints at all, replacement falls back to LRU
  kSequential,      // readahead: predicts block b+1 after observing b
  kMarkov,          // Pangloss-style first-order most-frequent-successor chain
  kTemporal,        // ISB/Domino-style (prev, cur) -> last-seen successor
};

// Online-prediction configuration. `lookahead` is how many one-step
// predictions are chained past the observed reference to place the claim —
// the predictor's bounded horizon (it also bounds Hinted() just like
// HintFault::stale_lookahead bounds the corrupted oracle). Mutually
// exclusive with hint_fault and with hint_coverage < 1: the degradation
// axes are oracle-thinning OR oracle-corruption OR online prediction, never
// stacked (ValidateSimConfig rejects combinations).
struct PredictorConfig {
  PredictorKind kind = PredictorKind::kOracle;
  int64_t lookahead = 0;  // required > 0 for kSequential/kMarkov/kTemporal

  bool enabled() const { return kind != PredictorKind::kOracle; }

  bool operator==(const PredictorConfig&) const = default;
};

inline const char* ToString(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kOracle: return "oracle";
    case PredictorKind::kNone: return "none";
    case PredictorKind::kSequential: return "sequential";
    case PredictorKind::kMarkov: return "markov";
    case PredictorKind::kTemporal: return "temporal";
  }
  return "?";
}

struct SimConfig {
  // Cache capacity in 8 KB blocks. The paper uses 1280 (10 MB) for most
  // traces and 512 (4 MB) for dinero and cscope1 (section 3.1).
  int cache_blocks = 1280;

  // Number of independently accessible disks.
  int num_disks = 1;

  // Drive model and head-scheduling discipline.
  DiskModelKind disk_model = DiskModelKind::kDetailed;
  SchedDiscipline discipline = SchedDiscipline::kCscan;

  // Data placement across the array. The paper stripes with a one-block
  // stripe unit.
  PlacementKind placement = PlacementKind::kStriped;

  // CPU cost charged to the application timeline per I/O request issued —
  // 0.5 ms, typical of the DECstation 5000/200 (section 3.1). This is the
  // "driver time" component of elapsed time.
  DurNs driver_overhead = UsToNs(500);

  // Multiplier applied to the trace's compute times; 0.5 models the paper's
  // double-speed-CPU experiment (section 4.4, appendix C).
  double cpu_scale = 1.0;

  // Fraction of references disclosed to the prefetcher (section 6's
  // "incomplete hints" extension). 1.0 = full advance knowledge (the
  // paper's setting). Below 1.0, each reference is hinted independently
  // with this probability (deterministic in hint_seed); undisclosed
  // references are invisible to the policies and arrive as surprise demand
  // misses. Reverse aggressive, being fully offline, requires 1.0.
  double hint_coverage = 1.0;
  uint64_t hint_seed = 1;

  // Hint corruption on top of coverage (see HintFault above). Disabled by
  // default; reverse aggressive requires truthful hints and refuses to run
  // when any knob is set.
  HintFault hint_fault;

  // Online hint prediction (see PredictorConfig above and src/predict).
  // Default kOracle keeps the paper's offline hints; any other kind swaps
  // the hint stream for a learned one and forbids hint_fault / partial
  // coverage (ValidateSimConfig enforces the exclusion).
  PredictorConfig predictor;

  // The prefetcher's visibility bound past the cursor, regardless of which
  // degradation axis imposed it: a real predictor's chained-prediction
  // horizon, or the corrupted oracle's stale_lookahead. 0 = unlimited.
  int64_t hint_lookahead() const {
    return predictor.enabled() ? predictor.lookahead : hint_fault.stale_lookahead;
  }

  // Bounded-knowledge oracle window (see core/ref_oracle.h). -1 (the
  // default) keeps the paper's full advance knowledge: every oracle query
  // forwards to the complete NextRefIndex. W >= 0 bounds the whole engine's
  // future knowledge — hints, next-use replacement keys, everything — to
  // positions in [cursor, cursor + W): an honest hint source that simply
  // hasn't been told the future yet, as with a streaming trace reader that
  // only has W references buffered. W = 0 discloses nothing and reproduces
  // the hintless oracle state bit-for-bit. Mutually exclusive with the
  // other degradation axes (hint_coverage < 1, hint_fault, predictor):
  // those study *wrong* or *thinned* knowledge, this one studies *truthful
  // but bounded* knowledge, and ValidateSimConfig rejects combinations.
  // Reverse aggressive is fully offline and refuses bounded windows (its
  // FullyHinted() precondition fails).
  int64_t oracle_window = -1;

  bool oracle_bounded() const { return oracle_window >= 0; }

  // Write extension (the paper's future-work item). false = write-behind:
  // writes complete immediately into a dirty buffer and are flushed in the
  // background whenever their disk is otherwise idle ("write behind
  // strategies can mask update latency", section 1.1). true = write-through:
  // every write stalls until it reaches the disk.
  bool write_through = false;

  // Hit-run fast-forwarding (DEW-style; see DESIGN.md §5 "Performance
  // architecture"). When a run of upcoming references is known to be all
  // cache hits — every block present, no disk event due before the run's
  // last reference is consumed, no dirty buffers, and the policy vouches it
  // would take no action (Policy::QuiescentThrough) — the engine advances
  // the clock and statistics for the whole run at once instead of
  // simulating each reference. Results are bit-identical either way (the
  // differential corpus runs with the flag both on and off); the flag
  // exists to isolate the optimization and to measure its contribution.
  // Fast-forwarding is automatically suppressed when an observability sink
  // is installed, so event streams stay reference-by-reference.
  bool fast_forward = true;

  // Fault injection (see disk/fault_model.h). The default draws nothing and
  // installs no fault layer, so healthy runs are bit-identical to a build
  // without it.
  FaultConfig faults;

  // Observability (see src/obs and ObsOptions above). Default: disabled.
  ObsOptions obs;

  // Event-budget watchdog: a run that processes more than this many engine
  // events throws SimError instead of spinning forever (a wedged policy or
  // pathological fault config must not hang the experiment pool). 0 picks a
  // generous heuristic budget from the trace length.
  int64_t max_events = 0;

  // Paranoid runtime auditing: after every engine event the simulator walks
  // its invariants — cache table/heap consistency, stall-bucket partial
  // sums, no accepted fetch targeting an unavailable disk — and throws a
  // typed SimError naming the violated invariant. Behavior-neutral (results
  // are bit-identical) but quadratic-ish in cache size per event, so it is
  // off by default and forced on in tests and the fuzzer.
  bool paranoid = false;
};

}  // namespace pfc

#endif  // PFC_CORE_SIM_CONFIG_H_
