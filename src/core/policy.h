// Policy interface: an integrated prefetching + caching strategy.
//
// The simulation engine serves the reference stream; a Policy decides when
// to fetch which block from which disk and which block to evict. Policies
// act at three hook points:
//   * OnReference — the application is about to serve reference `pos`
//     (fixed horizon and forestall key off the advancing cursor);
//   * OnDiskIdle — a disk drained its queue (aggressive-family policies
//     build their next batch here);
//   * OnFetchComplete — a request finished (forestall samples access times).
//
// Policies issue work through Simulator::IssueFetch, which enforces
// evict-at-issue cache semantics; the do-no-harm rule is each policy's own
// responsibility (demand fetches on the stall path legitimately bypass it).

#ifndef PFC_CORE_POLICY_H_
#define PFC_CORE_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/strong_types.h"
#include "util/time_util.h"

namespace pfc {

class Engine;

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  // Called once before the run; offline policies (reverse aggressive) build
  // their schedule here.
  virtual void Init(Engine& sim) { (void)sim; }

  virtual void OnReference(Engine& sim, TracePos pos) {
    (void)sim;
    (void)pos;
  }

  virtual void OnDiskIdle(Engine& sim, DiskId disk) {
    (void)sim;
    (void)disk;
  }

  virtual void OnFetchComplete(Engine& sim, DiskId disk, BlockId block, DurNs service) {
    (void)sim;
    (void)disk;
    (void)block;
    (void)service;
  }

  // The engine issued a demand fetch for `block` (the application stalled on
  // it). Policies that keep their own view of outstanding work reconcile it
  // here.
  virtual void OnDemandFetch(Engine& sim, BlockId block) {
    (void)sim;
    (void)block;
  }

  // A prefetch for `block` permanently failed (retries exhausted or the disk
  // fail-stopped); the engine dropped it from the cache. Policies that track
  // outstanding prefetches should forget the block or re-plan it on another
  // path. Demand fetches never reach this hook — the engine recovers those
  // itself.
  virtual void OnFetchFailed(Engine& sim, DiskId disk, BlockId block) {
    (void)sim;
    (void)disk;
    (void)block;
  }

  // Disk `disk` entered its outage window (Engine::DiskDown(disk) is now
  // true). Prefetches to it will be refused until OnDiskUp; policies should
  // re-target or defer that disk's work rather than stall on it.
  virtual void OnDiskDown(Engine& sim, DiskId disk) {
    (void)sim;
    (void)disk;
  }

  // Disk `disk` recovered from its outage window. Policies re-plan here —
  // the deferred positions on that disk are fetchable again and its queue
  // is empty.
  virtual void OnDiskUp(Engine& sim, DiskId disk) {
    (void)sim;
    (void)disk;
  }

  // The application stalled on `block` and no fetch is in flight for it.
  // Returns the block to evict, or Engine::kNoEvict to use a free buffer.
  // The engine only calls this when no free buffer exists; the default picks
  // the furthest-referenced present block (optimal replacement).
  virtual BlockId ChooseDemandEviction(Engine& sim, BlockId block);

  // --- Hit-run fast-forwarding (SimConfig::fast_forward) -------------------
  //
  // The engine may skip simulating a run of references [pos, run_end) it has
  // proven are all cache hits with no disk event, fault, or write in
  // between — provided the policy cooperates. A policy that opts in
  // (SupportsFastForward) receives QuiescentThrough *instead of* OnReference
  // for the run's first reference and must return the furthest position `to`
  // (pos <= to <= run_end) such that, given every reference in [pos, to) is
  // a hit and no other engine callback fires, its OnReference hooks over
  // that range would issue no fetches and leave no externally visible state
  // change. Returning `pos` declines (the engine simulates normally).
  // After skipping, the engine calls OnFastForward(pos, to) so the policy
  // can replay any internal bookkeeping its skipped OnReference calls would
  // have done (scan high-water marks, estimator samples). The contract is
  // exact: a run with fast-forwarding must be bit-identical to one without.
  virtual bool SupportsFastForward() const { return false; }
  virtual TracePos QuiescentThrough(const Engine& sim, TracePos pos, TracePos run_end) {
    (void)sim;
    (void)run_end;
    return pos;
  }
  virtual void OnFastForward(Engine& sim, TracePos from, TracePos to) {
    (void)sim;
    (void)from;
    (void)to;
  }
};

// The batch sizes the paper uses for aggressive and forestall (Table 6),
// keyed by array size: 80/40/40/16/16/8/8 for 1-7 disks, 4 beyond.
int DefaultBatchSize(int num_disks);

}  // namespace pfc

#endif  // PFC_CORE_POLICY_H_
