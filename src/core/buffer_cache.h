// The K-block buffer cache with the paper's evict-at-issue semantics.
//
// A block is kAbsent, kFetching (buffer reserved, data in flight) or
// kPresent. Starting a fetch immediately consumes a buffer: either a free
// one or the buffer of a present block, which becomes unavailable at that
// instant ("the evicted block becomes unavailable at the moment the fetch
// starts", section 1.2). Present blocks are indexed by their next reference
// position so policies can query the furthest-referenced block in O(log K).
//
// Hot-path layout: block state lives in a flat open-addressing hash table
// (power-of-two, linear probing, one contiguous allocation — block address
// spaces are sparse, some traces touch ids in the millions, so a direct
// index would zero megabytes per run and a node-based map chases pointers
// per lookup). Slots are never deleted — a vacated block's slot survives in
// the kAbsent state — so probes need no tombstones and the table only
// grows, bounded by the trace's distinct-block count. The eviction index is
// a binary max-heap of (next_use, block) whose items carry their table slot
// and whose entries carry their heap position, so erase/rekey are O(log K)
// with contiguous storage. The heap's maximum is the unique
// lexicographically greatest (next_use, block) pair — exactly the element
// std::set::rbegin() used to yield — so FurthestBlock/FurthestNextUse are
// bit-compatible with the node-based index they replace.
//
// BufferCache implements the CacheView query interface (core/cache_view.h)
// so that policies can run against either this cache or the reference
// simulator's naive one.

#ifndef PFC_CORE_BUFFER_CACHE_H_
#define PFC_CORE_BUFFER_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/cache_view.h"
#include "core/next_ref.h"
#include "obs/event_sink.h"
#include "util/arena.h"
#include "util/time_util.h"

namespace pfc {

class BufferCache final : public CacheView {
 public:
  // With an arena, the table and heap draw their storage from it (the
  // simulator passes its per-job arena); without one they use the heap, so
  // standalone construction in tests needs no ceremony. The arena must
  // outlive the cache.
  explicit BufferCache(int capacity_blocks, Arena* arena = nullptr);

  // Installs an observability sink. The cache emits kEvict whenever a
  // buffer is reclaimed (evict-at-issue and written-block eviction alike)
  // and kPrefetchCancel when an in-flight fetch is abandoned, stamped with
  // `*now` — a borrowed pointer at the simulator's clock, so the cache needs
  // no clock plumbing of its own. Both pointers must outlive the cache's
  // use; pass (nullptr, nullptr) to detach.
  void SetObserver(EventSink* sink, const TimeNs* now) {
    sink_ = sink;
    now_ = now;
  }

  int capacity() const override { return capacity_; }
  int used() const override { return used_; }
  // Number of *evictable* (present and clean) blocks.
  int present_count() const override { return static_cast<int>(heap_.size()); }

  State GetState(BlockId block) const override {
    const uint32_t si = FindIndex(block);
    return si == kNoSlot ? State::kAbsent : table_[si].entry.state;
  }

  // Reserves a free buffer for `block` and marks it in flight. Requires a
  // free buffer and `block` absent.
  void StartFetchIntoFree(BlockId block);

  // Evicts `evict` (must be present) and marks `block` (must be absent) in
  // flight in its place.
  void StartFetchWithEviction(BlockId block, BlockId evict);

  // The fetch for `block` completed; it becomes present with the given next
  // reference position as its replacement key.
  void CompleteFetch(BlockId block, TracePos next_use);

  // Abandons an in-flight fetch (the request permanently failed); the
  // reserved buffer returns to the free pool. Requires `block` fetching.
  void CancelFetch(BlockId block);

  // The application consumed `block` (must be present); reindexes it under
  // its new next reference position.
  void UpdateNextUse(BlockId block, TracePos next_use);

  // Present *clean* block with the furthest next reference, if any. Dirty
  // blocks are pinned (their buffer cannot be reused until flushed) and so
  // never appear as eviction candidates.
  std::optional<BlockId> FurthestBlock() const override {
    if (heap_.empty()) {
      return std::nullopt;
    }
    return heap_.front().block;
  }
  // Its key (NextRefIndex::kNoRef for dead blocks); kNoCandidate if none.
  TracePos FurthestNextUse() const override {
    if (heap_.empty()) {
      return kNoCandidate;
    }
    return heap_.front().key;
  }

  // --- Write extension (the paper's future-work item) ----------------------

  // A whole-block write materializes `block` without a fetch: it becomes
  // present and dirty. Requires a free buffer and `block` absent.
  void InsertWritten(BlockId block, TracePos next_use);

  // Reclaims a clean present block's buffer without starting a fetch (used
  // to make room for a written block).
  void EvictClean(BlockId block);

  // Present clean -> dirty (leaves the eviction index).
  void MarkDirty(BlockId block);

  // Dirty -> clean (re-enters the eviction index under its current key).
  void MarkClean(BlockId block);

  bool Dirty(BlockId block) const override {
    const uint32_t si = FindIndex(block);
    return si != kNoSlot && table_[si].entry.dirty;
  }
  int dirty_count() const override { return dirty_count_; }

  // Bumped whenever a present block leaves the cache (evict-at-issue or
  // clean eviction). A "block b was present" observation stays true while
  // the epoch is unchanged — the fast-forward hit-run scan keys its cached
  // high-water mark on this.
  int64_t eviction_epoch() const { return eviction_epoch_; }

  // Paranoid auditor: walks the whole table and heap and returns a
  // description of the first internal inconsistency found (back-pointer out
  // of bounds, heap/table disagreement, broken heap order, bad used/dirty
  // accounting), or an empty string when everything is consistent. O(table)
  // — for SimConfig::paranoid, not the hot path.
  std::string AuditViolation() const;

 private:
  struct Entry {
    TracePos next_use{0};   // valid only when present
    int32_t heap_idx = -1;  // slot in heap_ when present and clean, else -1
    State state = State::kAbsent;
    bool dirty = false;
  };
  struct TableSlot {
    BlockId block{kEmptyKey};  // kEmptyKey = slot never occupied
    Entry entry;
  };
  struct HeapItem {
    TracePos key;
    BlockId block;
    uint32_t table_slot;  // index into table_, kept current across rehash
  };

  static constexpr int64_t kEmptyKey = -1;  // outside the valid BlockId domain
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  size_t HashIndex(BlockId block) const {
    // Fibonacci hashing: multiply spreads dense block-id runs across the
    // table; the shift keeps the top log2(size) bits.
    return static_cast<size_t>(
        (static_cast<uint64_t>(block.v()) * UINT64_C(0x9E3779B97F4A7C15)) >> hash_shift_);
  }

  uint32_t FindIndex(BlockId block) const {
    const size_t mask = table_.size() - 1;
    for (size_t i = HashIndex(block);; i = (i + 1) & mask) {
      const BlockId key = table_[i].block;
      if (key == block) {
        return static_cast<uint32_t>(i);
      }
      if (key == BlockId{kEmptyKey}) {
        return kNoSlot;
      }
    }
  }

  // Find-or-create; may grow the table (invalidating prior slot indices
  // except those held by heap items, which Grow() fixes up).
  uint32_t ClaimIndex(BlockId block);
  void Grow();

  // (a.key, a.block) < (b.key, b.block) lexicographically; the heap is a
  // max-heap under this order, so heap_[0] matches the old set's rbegin().
  static bool HeapLess(const HeapItem& a, const HeapItem& b) {
    return a.key != b.key ? a.key < b.key : a.block < b.block;
  }
  void HeapPlace(size_t idx, HeapItem item);
  void HeapSiftUp(size_t idx, HeapItem item);
  void HeapSiftDown(size_t idx, HeapItem item);
  void HeapInsert(TracePos key, BlockId block, uint32_t table_slot);
  void HeapErase(Entry& e);
  void HeapRekey(const Entry& e, TracePos key);

  // `live` marks a reclaimed block that still had a disclosed future
  // reference (kEvict only) — the eviction will cost a re-fetch, which is
  // the cache-pollution consequence of acting on a wrong hint.
  void EmitReclaim(ObsEventKind kind, BlockId block, bool live) const;

  int capacity_;
  int used_ = 0;  // fetching + present (clean and dirty)
  // Open-addressing table; size is a power of two, grown at 3/4 load.
  // Occupied slots (block != kEmptyKey) are permanent for the run.
  std::vector<TableSlot, ArenaAllocator<TableSlot>> table_;
  size_t occupied_ = 0;
  uint32_t hash_shift_;  // 64 - log2(table_.size())
  // Max-heap of *clean* present blocks keyed (next_use, block); heap_[0] is
  // the furthest. Items carry their table slot for O(1) back-pointer updates.
  std::vector<HeapItem, ArenaAllocator<HeapItem>> heap_;
  int dirty_count_ = 0;
  int64_t eviction_epoch_ = 0;
  EventSink* sink_ = nullptr;   // null = observability disabled
  const TimeNs* now_ = nullptr; // simulator clock, borrowed
};

}  // namespace pfc

#endif  // PFC_CORE_BUFFER_CACHE_H_
