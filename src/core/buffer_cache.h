// The K-block buffer cache with the paper's evict-at-issue semantics.
//
// A block is kAbsent, kFetching (buffer reserved, data in flight) or
// kPresent. Starting a fetch immediately consumes a buffer: either a free
// one or the buffer of a present block, which becomes unavailable at that
// instant ("the evicted block becomes unavailable at the moment the fetch
// starts", section 1.2). Present blocks are indexed by their next reference
// position so policies can query the furthest-referenced block in O(log K).
//
// BufferCache implements the CacheView query interface (core/cache_view.h)
// so that policies can run against either this cache or the reference
// simulator's naive one.

#ifndef PFC_CORE_BUFFER_CACHE_H_
#define PFC_CORE_BUFFER_CACHE_H_

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "core/cache_view.h"
#include "core/next_ref.h"
#include "obs/event_sink.h"
#include "util/time_util.h"

namespace pfc {

class BufferCache : public CacheView {
 public:
  explicit BufferCache(int capacity_blocks);

  // Installs an observability sink. The cache emits kEvict whenever a
  // buffer is reclaimed (evict-at-issue and written-block eviction alike)
  // and kPrefetchCancel when an in-flight fetch is abandoned, stamped with
  // `*now` — a borrowed pointer at the simulator's clock, so the cache needs
  // no clock plumbing of its own. Both pointers must outlive the cache's
  // use; pass (nullptr, nullptr) to detach.
  void SetObserver(EventSink* sink, const TimeNs* now) {
    sink_ = sink;
    now_ = now;
  }

  int capacity() const override { return capacity_; }
  int used() const override { return static_cast<int>(entries_.size()); }
  // Number of *evictable* (present and clean) blocks.
  int present_count() const override { return static_cast<int>(by_next_use_.size()); }

  State GetState(BlockId block) const override;

  // Reserves a free buffer for `block` and marks it in flight. Requires a
  // free buffer and `block` absent.
  void StartFetchIntoFree(BlockId block);

  // Evicts `evict` (must be present) and marks `block` (must be absent) in
  // flight in its place.
  void StartFetchWithEviction(BlockId block, BlockId evict);

  // The fetch for `block` completed; it becomes present with the given next
  // reference position as its replacement key.
  void CompleteFetch(BlockId block, TracePos next_use);

  // Abandons an in-flight fetch (the request permanently failed); the
  // reserved buffer returns to the free pool. Requires `block` fetching.
  void CancelFetch(BlockId block);

  // The application consumed `block` (must be present); reindexes it under
  // its new next reference position.
  void UpdateNextUse(BlockId block, TracePos next_use);

  // Present *clean* block with the furthest next reference, if any. Dirty
  // blocks are pinned (their buffer cannot be reused until flushed) and so
  // never appear as eviction candidates.
  std::optional<BlockId> FurthestBlock() const override;
  // Its key (NextRefIndex::kNoRef for dead blocks); kNoCandidate if none.
  TracePos FurthestNextUse() const override;

  // --- Write extension (the paper's future-work item) ----------------------

  // A whole-block write materializes `block` without a fetch: it becomes
  // present and dirty. Requires a free buffer and `block` absent.
  void InsertWritten(BlockId block, TracePos next_use);

  // Reclaims a clean present block's buffer without starting a fetch (used
  // to make room for a written block).
  void EvictClean(BlockId block);

  // Present clean -> dirty (leaves the eviction index).
  void MarkDirty(BlockId block);

  // Dirty -> clean (re-enters the eviction index under its current key).
  void MarkClean(BlockId block);

  bool Dirty(BlockId block) const override;
  int dirty_count() const override { return dirty_count_; }

  // Present blocks in key order is occasionally needed (reverse model);
  // expose a read-only view.
  const std::set<std::pair<TracePos, BlockId>>& present_by_next_use() const {
    return by_next_use_;
  }

 private:
  struct Entry {
    State state = State::kAbsent;
    TracePos next_use{0};  // valid only when present
    bool dirty = false;
  };

  void EmitReclaim(ObsEventKind kind, BlockId block) const;

  int capacity_;
  std::unordered_map<BlockId, Entry> entries_;
  // (next_use, block) for *clean* present blocks; rbegin() is the furthest.
  std::set<std::pair<TracePos, BlockId>> by_next_use_;
  int dirty_count_ = 0;
  EventSink* sink_ = nullptr;   // null = observability disabled
  const TimeNs* now_ = nullptr; // simulator clock, borrowed
};

}  // namespace pfc

#endif  // PFC_CORE_BUFFER_CACHE_H_
