// Engine: the abstract simulation-engine interface policies program against.
//
// Two engines implement it:
//   * Simulator (core/simulator.h) — the optimized production engine:
//     priority-queue events, FlatSet write state, indexed cache, batched
//     dispatch.
//   * RefSim (check/ref_sim.h) — the deliberately naive reference engine of
//     the differential-verification subsystem: plain vectors, linear scans,
//     no batching, independently coded.
//
// A Policy receives an Engine& at every hook and must make its decisions
// from this interface alone. Because both engines expose identical
// observable state and accept identical actions, a deterministic policy
// drives both to the same decision sequence — which is what lets the
// differential comparators (check/diff.h) demand *exact* equality of every
// RunResult metric between the two engines.

#ifndef PFC_CORE_ENGINE_H_
#define PFC_CORE_ENGINE_H_

#include <cstdint>

#include "core/cache_view.h"
#include "core/next_ref.h"
#include "core/ref_oracle.h"
#include "core/sim_config.h"
#include "layout/placement.h"
#include "trace/trace.h"
#include "util/time_util.h"

namespace pfc {

class Engine {
 public:
  // Sentinel eviction argument for IssueFetch: take a free buffer.
  static constexpr BlockId kNoEvict{-1};

  virtual ~Engine() = default;

  // --- State queries --------------------------------------------------------

  // Instant at which actions are currently happening (simulated clock).
  virtual TimeNs now() const = 0;
  // Next reference to serve.
  virtual TracePos cursor() const = 0;
  virtual const Trace& trace() const = 0;
  // The engine's next-use oracle. With SimConfig::oracle_window unbounded
  // (the default) it forwards the full NextRefIndex; with a bounded window
  // it answers kNoRef for anything at or past cursor + window. Policies and
  // engine internals alike must route future-knowledge queries through it —
  // never through a raw NextRefIndex — so bounded-knowledge runs stay
  // honest in both engines.
  virtual const RefOracle& index() const = 0;
  virtual const CacheView& cache() const = 0;
  virtual const SimConfig& config() const = 0;
  virtual BlockLocation Location(BlockId block) const = 0;
  virtual bool DiskIdle(DiskId d) const = 0;
  // True once disk `d` has fail-stopped; prefetches to it are refused and
  // policies should plan around it.
  virtual bool DiskFailed(DiskId d) const = 0;
  // True while disk `d` is unavailable right now — fail-stopped *or* inside
  // an outage window it will recover from. Prefetches to a down disk are
  // refused; policies should skip (not abandon) its work until OnDiskUp.
  virtual bool DiskDown(DiskId d) const = 0;
  // Whether reference `pos` was disclosed to the prefetcher. Policies must
  // not act on undisclosed positions (the engine's demand path covers them).
  virtual bool Hinted(TracePos pos) const = 0;
  virtual bool FullyHinted() const = 0;
  // The block the hint source *claims* reference `pos` names. Equal to
  // trace().block(pos) unless hint corruption (SimConfig::hint_fault) is
  // active; planning paths must fetch what the hints claim — believing a
  // lying oracle is the failure mode under study — while the demand path
  // always serves the true block.
  virtual BlockId HintedBlock(TracePos pos) const = 0;
  // Inter-reference compute time after position `pos`, with cpu_scale
  // applied.
  virtual DurNs ScaledCompute(TracePos pos) const = 0;

  // --- Actions --------------------------------------------------------------

  // Issues a fetch for `block`, evicting `evict` (pass kNoEvict to take a
  // free buffer). Returns false — without side effects — if the request is
  // invalid: block not absent, eviction target not present, no free buffer
  // when one was requested, or the block's disk has fail-stopped.
  virtual bool IssueFetch(BlockId block, BlockId evict) = 0;

  // Lets policies drop custom markers (kPolicyMark) into the event stream.
  // `label` must outlive the sink's consumption of the event (string
  // literals are the intended use). No-op without an observability sink.
  virtual void EmitMark(const char* label, int64_t value = 0) = 0;
};

}  // namespace pfc

#endif  // PFC_CORE_ENGINE_H_
