#include "core/next_ref.h"

#include <algorithm>

#include "util/check.h"

namespace pfc {

NextRefIndex::NextRefIndex(const Trace& trace) : NextRefIndex(trace, std::vector<bool>()) {}

NextRefIndex::NextRefIndex(const Trace& trace, const std::vector<bool>& hinted) {
  PFC_CHECK(hinted.empty() || static_cast<int64_t>(hinted.size()) == trace.size());
  positions_.reserve(static_cast<size_t>(trace.size()));
  next_after_.assign(static_cast<size_t>(trace.size()), kNoRef);
  for (TracePos i{0}; i.v() < trace.size(); ++i) {
    if (hinted.empty() || hinted[static_cast<size_t>(i.v())]) {
      positions_[trace.block(i)].push_back(i);
    }
  }
  // next_after_[i] = next *disclosed* use of position i's block after i.
  // With partial hints this is defined for every position (hinted or not):
  // the oracle is asked "when is this block used next?" after a consume.
  for (TracePos i{0}; i.v() < trace.size(); ++i) {
    next_after_[static_cast<size_t>(i.v())] = NextUseAt(trace.block(i), i + 1);
  }
}

TracePos NextRefIndex::NextUseAt(BlockId block, TracePos p) const {
  auto it = positions_.find(block);
  if (it == positions_.end()) {
    return kNoRef;
  }
  const std::vector<TracePos>& list = it->second;
  auto pos = std::lower_bound(list.begin(), list.end(), p);
  return pos == list.end() ? kNoRef : *pos;
}

TracePos NextRefIndex::NextUseAfterPosition(TracePos i) const {
  PFC_CHECK(i.v() >= 0 && i.v() < trace_size());
  return next_after_[static_cast<size_t>(i.v())];
}

TracePos NextRefIndex::PrevUseAt(BlockId block, TracePos p) const {
  auto it = positions_.find(block);
  if (it == positions_.end()) {
    return kNoPrevRef;
  }
  const std::vector<TracePos>& list = it->second;
  auto pos = std::upper_bound(list.begin(), list.end(), p);
  return pos == list.begin() ? kNoPrevRef : *(pos - 1);
}

TracePos NextRefIndex::FirstUse(BlockId block) const {
  auto it = positions_.find(block);
  return it == positions_.end() ? kNoRef : it->second.front();
}

}  // namespace pfc
