// Recoverable simulation errors.
//
// PFC_CHECK is for internal invariants — a failure means the engine itself
// is broken, and aborting is correct. SimError is for conditions a caller
// can cause and should be able to handle: an invalid SimConfig, policy
// parameters out of range, a policy applied to a trace it cannot run on, or
// a run exceeding its event budget. The experiment runner catches these per
// job and records a structured error instead of taking down the whole grid.

#ifndef PFC_CORE_SIM_ERROR_H_
#define PFC_CORE_SIM_ERROR_H_

#include <stdexcept>
#include <string>

namespace pfc {

struct SimConfig;
class Trace;

class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& message) : std::runtime_error(message) {}

  // Typed invariant violation from the paranoid auditor (SimConfig::
  // paranoid): names the violated invariant in a grep-able bracket so tests
  // and the fuzzer can match on it.
  static SimError Invariant(const std::string& name, const std::string& detail) {
    return SimError("invariant violated [" + name + "]: " + detail);
  }
};

// Throws SimError with a field-level message — prefixed with the
// validator's file:line so a rejected config points at the rule that fired
// — if `config` is not runnable. Called by the Simulator constructor; the
// runner also calls it up front so invalid jobs fail before any shared
// state (trace oracles) is built.
void ValidateSimConfig(const SimConfig& config);

// Additional checks that need the trace: fault timings entirely outside the
// plausible simulated horizon (a fail-stop or outage that can never fire is
// almost certainly a flag typo, not a scenario). Called by pfc_sim, which is
// where humans type such timings.
void ValidateSimConfigForTrace(const SimConfig& config, const Trace& trace);

}  // namespace pfc

#endif  // PFC_CORE_SIM_ERROR_H_
