#include "core/buffer_cache.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace pfc {

namespace {
size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}
uint32_t ShiftFor(size_t pow2_size) {
  uint32_t log2 = 0;
  while ((size_t{1} << log2) < pow2_size) {
    ++log2;
  }
  return 64 - log2;
}
}  // namespace

BufferCache::BufferCache(int capacity_blocks, Arena* arena)
    : capacity_(capacity_blocks),
      table_(ArenaAllocator<TableSlot>(arena)),
      heap_(ArenaAllocator<HeapItem>(arena)) {
  PFC_CHECK_GT(capacity_blocks, 0);
  // Room for every resident block plus absent-but-seen slots before the
  // first growth; the table doubles as the trace's distinct-block count
  // overtakes it.
  const size_t initial = NextPow2(std::max<size_t>(64, static_cast<size_t>(capacity_blocks) * 4));
  table_.assign(initial, TableSlot{});
  hash_shift_ = ShiftFor(initial);
  heap_.reserve(static_cast<size_t>(capacity_blocks));
}

void BufferCache::Grow() {
  auto old = std::move(table_);
  table_.assign(old.size() * 2, TableSlot{});
  hash_shift_ = ShiftFor(table_.size());
  const size_t mask = table_.size() - 1;
  for (const TableSlot& s : old) {
    if (s.block == BlockId{kEmptyKey}) {
      continue;
    }
    size_t i = HashIndex(s.block);
    while (table_[i].block != BlockId{kEmptyKey}) {
      i = (i + 1) & mask;
    }
    table_[i] = s;
  }
  // Heap items cache their table slot; re-point them at the new table.
  for (HeapItem& item : heap_) {
    item.table_slot = FindIndex(item.block);
  }
}

uint32_t BufferCache::ClaimIndex(BlockId block) {
  if (occupied_ + occupied_ / 3 >= table_.size()) {  // load factor 3/4
    Grow();
  }
  const size_t mask = table_.size() - 1;
  for (size_t i = HashIndex(block);; i = (i + 1) & mask) {
    TableSlot& s = table_[i];
    if (s.block == block) {
      return static_cast<uint32_t>(i);
    }
    if (s.block == BlockId{kEmptyKey}) {
      s.block = block;
      ++occupied_;
      return static_cast<uint32_t>(i);
    }
  }
}

void BufferCache::HeapPlace(size_t idx, HeapItem item) {
  heap_[idx] = item;
  table_[item.table_slot].entry.heap_idx = static_cast<int32_t>(idx);
}

void BufferCache::HeapSiftUp(size_t idx, HeapItem item) {
  while (idx > 0) {
    size_t parent = (idx - 1) / 2;
    if (!HeapLess(heap_[parent], item)) {
      break;
    }
    HeapPlace(idx, heap_[parent]);
    idx = parent;
  }
  HeapPlace(idx, item);
}

void BufferCache::HeapSiftDown(size_t idx, HeapItem item) {
  size_t n = heap_.size();
  for (;;) {
    size_t child = 2 * idx + 1;
    if (child >= n) {
      break;
    }
    if (child + 1 < n && HeapLess(heap_[child], heap_[child + 1])) {
      ++child;
    }
    if (!HeapLess(item, heap_[child])) {
      break;
    }
    HeapPlace(idx, heap_[child]);
    idx = child;
  }
  HeapPlace(idx, item);
}

void BufferCache::HeapInsert(TracePos key, BlockId block, uint32_t table_slot) {
  heap_.push_back(HeapItem{key, block, table_slot});
  HeapSiftUp(heap_.size() - 1, heap_.back());
}

void BufferCache::HeapErase(Entry& e) {
  size_t idx = static_cast<size_t>(e.heap_idx);
  PFC_CHECK(idx < heap_.size());
  e.heap_idx = -1;
  HeapItem tail = heap_.back();
  heap_.pop_back();
  if (idx == heap_.size()) {
    return;  // erased the last slot
  }
  if (idx > 0 && HeapLess(heap_[(idx - 1) / 2], tail)) {
    HeapSiftUp(idx, tail);
  } else {
    HeapSiftDown(idx, tail);
  }
}

void BufferCache::HeapRekey(const Entry& e, TracePos key) {
  size_t idx = static_cast<size_t>(e.heap_idx);
  PFC_CHECK(idx < heap_.size());
  HeapItem item{key, heap_[idx].block, heap_[idx].table_slot};
  if (idx > 0 && HeapLess(heap_[(idx - 1) / 2], item)) {
    HeapSiftUp(idx, item);
  } else {
    HeapSiftDown(idx, item);
  }
}

void BufferCache::EmitReclaim(ObsEventKind kind, BlockId block, bool live) const {
  ObsEvent e;
  e.time = now_ != nullptr ? *now_ : TimeNs{0};
  e.kind = kind;
  e.block = block;
  e.flag = live;
  sink_->OnEvent(e);
}

void BufferCache::StartFetchIntoFree(BlockId block) {
  PFC_CHECK_GT(free_buffers(), 0);
  Entry& e = table_[ClaimIndex(block)].entry;
  PFC_CHECK(e.state == State::kAbsent);
  e.state = State::kFetching;
  e.next_use = TracePos{0};
  e.dirty = false;
  ++used_;
}

void BufferCache::StartFetchWithEviction(BlockId block, BlockId evict) {
  PFC_CHECK(block != evict);
  const uint32_t ei = FindIndex(evict);
  PFC_CHECK(ei != kNoSlot);
  bool live = false;
  {
    Entry& ev = table_[ei].entry;
    PFC_CHECK(ev.state == State::kPresent);
    PFC_CHECK(ev.heap_idx >= 0);  // dirty blocks are pinned, never evicted
    live = ev.next_use != NextRefIndex::kNoRef;
    HeapErase(ev);
    ev.state = State::kAbsent;
    ev.dirty = false;
    ++eviction_epoch_;
  }
  // ClaimIndex may grow the table; take it after the evict slot is done.
  Entry& e = table_[ClaimIndex(block)].entry;
  PFC_CHECK(e.state == State::kAbsent);
  e.state = State::kFetching;
  e.next_use = TracePos{0};
  e.dirty = false;
  if (sink_ != nullptr) {
    EmitReclaim(ObsEventKind::kEvict, evict, live);
  }
}

void BufferCache::CompleteFetch(BlockId block, TracePos next_use) {
  const uint32_t si = FindIndex(block);
  PFC_CHECK(si != kNoSlot);
  Entry& e = table_[si].entry;
  PFC_CHECK(e.state == State::kFetching);
  e.state = State::kPresent;
  e.next_use = next_use;
  PFC_CHECK(e.heap_idx < 0);
  HeapInsert(next_use, block, si);
}

void BufferCache::CancelFetch(BlockId block) {
  const uint32_t si = FindIndex(block);
  PFC_CHECK(si != kNoSlot);
  Entry& e = table_[si].entry;
  PFC_CHECK(e.state == State::kFetching);
  e.state = State::kAbsent;
  --used_;
  if (sink_ != nullptr) {
    EmitReclaim(ObsEventKind::kPrefetchCancel, block, /*live=*/false);
  }
}

void BufferCache::UpdateNextUse(BlockId block, TracePos next_use) {
  const uint32_t si = FindIndex(block);
  PFC_CHECK(si != kNoSlot);
  Entry& e = table_[si].entry;
  PFC_CHECK(e.state == State::kPresent);
  if (e.next_use == next_use) {
    return;
  }
  e.next_use = next_use;
  if (e.dirty) {
    return;  // dirty blocks are not indexed
  }
  HeapRekey(e, next_use);
}

void BufferCache::InsertWritten(BlockId block, TracePos next_use) {
  PFC_CHECK_GT(free_buffers(), 0);
  Entry& e = table_[ClaimIndex(block)].entry;
  PFC_CHECK(e.state == State::kAbsent);
  e.state = State::kPresent;
  e.next_use = next_use;
  e.dirty = true;
  ++used_;
  ++dirty_count_;
}

void BufferCache::EvictClean(BlockId block) {
  const uint32_t si = FindIndex(block);
  PFC_CHECK(si != kNoSlot);
  Entry& e = table_[si].entry;
  PFC_CHECK(e.state == State::kPresent);
  PFC_CHECK(!e.dirty);
  const bool live = e.next_use != NextRefIndex::kNoRef;
  HeapErase(e);
  e.state = State::kAbsent;
  --used_;
  ++eviction_epoch_;
  if (sink_ != nullptr) {
    EmitReclaim(ObsEventKind::kEvict, block, live);
  }
}

void BufferCache::MarkDirty(BlockId block) {
  const uint32_t si = FindIndex(block);
  PFC_CHECK(si != kNoSlot);
  Entry& e = table_[si].entry;
  PFC_CHECK(e.state == State::kPresent);
  if (e.dirty) {
    return;
  }
  HeapErase(e);
  e.dirty = true;
  ++dirty_count_;
}

void BufferCache::MarkClean(BlockId block) {
  const uint32_t si = FindIndex(block);
  PFC_CHECK(si != kNoSlot);
  Entry& e = table_[si].entry;
  PFC_CHECK(e.state == State::kPresent);
  PFC_CHECK(e.dirty);
  e.dirty = false;
  --dirty_count_;
  PFC_CHECK(e.heap_idx < 0);
  HeapInsert(e.next_use, block, si);
}

std::string BufferCache::AuditViolation() const {
  int resident = 0;
  int dirty = 0;
  int clean_present = 0;
  for (size_t i = 0; i < table_.size(); ++i) {
    const TableSlot& s = table_[i];
    if (s.block == BlockId{kEmptyKey}) {
      continue;
    }
    const Entry& e = s.entry;
    if (e.state != State::kAbsent) {
      ++resident;
    }
    if (e.dirty) {
      if (e.state != State::kPresent) {
        return "dirty block " + std::to_string(s.block.v()) + " is not present";
      }
      ++dirty;
    }
    if (e.state == State::kPresent && !e.dirty) {
      ++clean_present;
      if (e.heap_idx < 0 || static_cast<size_t>(e.heap_idx) >= heap_.size()) {
        return "present clean block " + std::to_string(s.block.v()) +
               " has heap back-pointer " + std::to_string(e.heap_idx) +
               " outside heap of size " + std::to_string(heap_.size());
      }
      const HeapItem& item = heap_[static_cast<size_t>(e.heap_idx)];
      if (item.block != s.block || item.table_slot != static_cast<uint32_t>(i) ||
          item.key != e.next_use) {
        return "heap item " + std::to_string(e.heap_idx) + " disagrees with table slot for block " +
               std::to_string(s.block.v());
      }
    } else if (e.heap_idx >= 0) {
      return "non-indexable block " + std::to_string(s.block.v()) + " has heap back-pointer " +
             std::to_string(e.heap_idx);
    }
  }
  if (resident != used_) {
    return "used counter " + std::to_string(used_) + " != resident slots " +
           std::to_string(resident);
  }
  if (used_ > capacity_) {
    return "used " + std::to_string(used_) + " exceeds capacity " + std::to_string(capacity_);
  }
  if (dirty != dirty_count_) {
    return "dirty counter " + std::to_string(dirty_count_) + " != dirty slots " +
           std::to_string(dirty);
  }
  if (clean_present != static_cast<int>(heap_.size())) {
    return "heap size " + std::to_string(heap_.size()) + " != clean present blocks " +
           std::to_string(clean_present);
  }
  for (size_t i = 1; i < heap_.size(); ++i) {
    if (HeapLess(heap_[(i - 1) / 2], heap_[i])) {
      return "heap order violated at index " + std::to_string(i);
    }
  }
  return {};
}

}  // namespace pfc
