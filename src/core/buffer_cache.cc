#include "core/buffer_cache.h"

#include "util/check.h"

namespace pfc {

BufferCache::BufferCache(int capacity_blocks) : capacity_(capacity_blocks) {
  PFC_CHECK_GT(capacity_blocks, 0);
  entries_.reserve(static_cast<size_t>(capacity_blocks) * 2);
}

void BufferCache::EmitReclaim(ObsEventKind kind, BlockId block) const {
  ObsEvent e;
  e.time = now_ != nullptr ? *now_ : TimeNs{0};
  e.kind = kind;
  e.block = block;
  sink_->OnEvent(e);
}

BufferCache::State BufferCache::GetState(BlockId block) const {
  auto it = entries_.find(block);
  return it == entries_.end() ? State::kAbsent : it->second.state;
}

void BufferCache::StartFetchIntoFree(BlockId block) {
  PFC_CHECK_GT(free_buffers(), 0);
  PFC_CHECK(GetState(block) == State::kAbsent);
  entries_[block] = Entry{State::kFetching, TracePos{0}};
}

void BufferCache::StartFetchWithEviction(BlockId block, BlockId evict) {
  PFC_CHECK(block != evict);
  auto it = entries_.find(evict);
  PFC_CHECK(it != entries_.end() && it->second.state == State::kPresent);
  PFC_CHECK(GetState(block) == State::kAbsent);
  size_t erased = by_next_use_.erase({it->second.next_use, evict});
  PFC_CHECK_EQ(erased, 1u);
  entries_.erase(it);
  entries_[block] = Entry{State::kFetching, TracePos{0}};
  if (sink_ != nullptr) {
    EmitReclaim(ObsEventKind::kEvict, evict);
  }
}

void BufferCache::CompleteFetch(BlockId block, TracePos next_use) {
  auto it = entries_.find(block);
  PFC_CHECK(it != entries_.end() && it->second.state == State::kFetching);
  it->second.state = State::kPresent;
  it->second.next_use = next_use;
  bool inserted = by_next_use_.insert({next_use, block}).second;
  PFC_CHECK(inserted);
}

void BufferCache::CancelFetch(BlockId block) {
  auto it = entries_.find(block);
  PFC_CHECK(it != entries_.end() && it->second.state == State::kFetching);
  entries_.erase(it);
  if (sink_ != nullptr) {
    EmitReclaim(ObsEventKind::kPrefetchCancel, block);
  }
}

void BufferCache::UpdateNextUse(BlockId block, TracePos next_use) {
  auto it = entries_.find(block);
  PFC_CHECK(it != entries_.end() && it->second.state == State::kPresent);
  if (it->second.next_use == next_use) {
    return;
  }
  if (it->second.dirty) {
    it->second.next_use = next_use;  // dirty blocks are not indexed
    return;
  }
  size_t erased = by_next_use_.erase({it->second.next_use, block});
  PFC_CHECK_EQ(erased, 1u);
  it->second.next_use = next_use;
  bool inserted = by_next_use_.insert({next_use, block}).second;
  PFC_CHECK(inserted);
}

void BufferCache::InsertWritten(BlockId block, TracePos next_use) {
  PFC_CHECK_GT(free_buffers(), 0);
  PFC_CHECK(GetState(block) == State::kAbsent);
  entries_[block] = Entry{State::kPresent, next_use, true};
  ++dirty_count_;
}

void BufferCache::EvictClean(BlockId block) {
  auto it = entries_.find(block);
  PFC_CHECK(it != entries_.end() && it->second.state == State::kPresent);
  PFC_CHECK(!it->second.dirty);
  size_t erased = by_next_use_.erase({it->second.next_use, block});
  PFC_CHECK_EQ(erased, 1u);
  entries_.erase(it);
  if (sink_ != nullptr) {
    EmitReclaim(ObsEventKind::kEvict, block);
  }
}

void BufferCache::MarkDirty(BlockId block) {
  auto it = entries_.find(block);
  PFC_CHECK(it != entries_.end() && it->second.state == State::kPresent);
  if (it->second.dirty) {
    return;
  }
  size_t erased = by_next_use_.erase({it->second.next_use, block});
  PFC_CHECK_EQ(erased, 1u);
  it->second.dirty = true;
  ++dirty_count_;
}

void BufferCache::MarkClean(BlockId block) {
  auto it = entries_.find(block);
  PFC_CHECK(it != entries_.end() && it->second.state == State::kPresent);
  PFC_CHECK(it->second.dirty);
  it->second.dirty = false;
  --dirty_count_;
  bool inserted = by_next_use_.insert({it->second.next_use, block}).second;
  PFC_CHECK(inserted);
}

bool BufferCache::Dirty(BlockId block) const {
  auto it = entries_.find(block);
  return it != entries_.end() && it->second.dirty;
}

std::optional<BlockId> BufferCache::FurthestBlock() const {
  if (by_next_use_.empty()) {
    return std::nullopt;
  }
  return by_next_use_.rbegin()->second;
}

TracePos BufferCache::FurthestNextUse() const {
  if (by_next_use_.empty()) {
    return kNoCandidate;
  }
  return by_next_use_.rbegin()->first;
}

}  // namespace pfc
