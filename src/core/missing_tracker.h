// Incremental index of "missing" references inside a lookahead window.
//
// Aggressive and forestall repeatedly ask: "in reference order, which
// upcoming positions name a block that is neither cached nor in flight —
// globally, and per disk?" Rescanning the trace on every decision point is
// O(window) per reference; this tracker maintains the answer incrementally:
//   * the window [cursor, cursor + W) slides one position per reference;
//   * issuing a fetch removes the block's tracked positions;
//   * evicting a block re-inserts its positions inside the window.
//
// Entries may go stale when a fetch is issued without the owning policy's
// knowledge (the engine's free-buffer demand path); consumers must therefore
// validate candidates against the cache before acting and call
// ErasePosition on stale ones. Staleness is one-sided: a truly absent block
// is always tracked, because every eviction is reported.

#ifndef PFC_CORE_MISSING_TRACKER_H_
#define PFC_CORE_MISSING_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include "util/strong_types.h"

namespace pfc {

class Engine;

class MissingTracker {
 public:
  // window: how far past the cursor to track, in references.
  MissingTracker(Engine& sim, int64_t window);

  // Slides the window forward to [cursor, cursor + window).
  void AdvanceTo(TracePos cursor);

  // A fetch for `block` was issued: drop its tracked positions.
  void OnIssue(BlockId block);

  // `block` was evicted: its in-window references are missing again.
  void OnEvict(BlockId block);

  // Removes one stale entry discovered during iteration.
  void ErasePosition(TracePos pos);

  // Ordered positions of missing references, all disks together.
  const std::set<TracePos>& global() const { return global_; }

  // Ordered positions of missing references whose block lives on `disk`.
  const std::set<TracePos>& per_disk(DiskId disk) const {
    return per_disk_[static_cast<size_t>(disk.v())];
  }

  int64_t window() const { return window_; }

 private:
  void Insert(TracePos pos);
  void Erase(TracePos pos);

  Engine& sim_;
  int64_t window_;
  TracePos cursor_;
  TracePos added_until_;  // positions < this have been examined
  std::set<TracePos> global_;
  std::vector<std::set<TracePos>> per_disk_;
};

}  // namespace pfc

#endif  // PFC_CORE_MISSING_TRACKER_H_
