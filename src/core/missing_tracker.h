// Incremental index of "missing" references inside a lookahead window.
//
// Aggressive and forestall repeatedly ask: "in reference order, which
// upcoming positions name a block that is neither cached nor in flight —
// globally, and per disk?" Rescanning the trace on every decision point is
// O(window) per reference; this tracker maintains the answer incrementally:
//   * the window [cursor, cursor + W) slides one position per reference;
//   * issuing a fetch removes the block's tracked positions;
//   * evicting a block re-inserts its positions inside the window.
//
// Positions live in hierarchical bitmaps (util/pos_bitset.h) — one global,
// one per disk — so membership, insert/erase, and the ordered successor
// queries the policies drive their scans with are all O(log64 n) contiguous
// memory touches instead of node-based std::set traversals.
//
// Entries may go stale when a fetch is issued without the owning policy's
// knowledge (the engine's free-buffer demand path); consumers must therefore
// validate candidates against the cache before acting and call
// ErasePosition on stale ones. Staleness is one-sided: a truly absent block
// is always tracked, because every eviction is reported.

#ifndef PFC_CORE_MISSING_TRACKER_H_
#define PFC_CORE_MISSING_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/pos_bitset.h"
#include "util/strong_types.h"

namespace pfc {

class Engine;

class MissingTracker {
 public:
  // "No such position": far beyond any trace, so window-edge comparisons
  // (p > horizon) need no separate sentinel check.
  static constexpr TracePos kNone{PosBitSet::kNone};

  // window: how far past the cursor to track, in references.
  MissingTracker(Engine& sim, int64_t window);

  // Slides the window forward to [cursor, cursor + window).
  void AdvanceTo(TracePos cursor);

  // A fetch for `block` was issued: drop its tracked positions.
  void OnIssue(BlockId block);

  // `block` was evicted: its in-window references are missing again.
  void OnEvict(BlockId block);

  // Removes one stale entry discovered during iteration.
  void ErasePosition(TracePos pos);

  // `disk` entered its outage window: drop its tracked positions and refuse
  // new ones, so global-order scans (forestall's backstop) cannot
  // head-of-line block on unfetchable work.
  void SuspendDisk(DiskId disk);

  // `disk` recovered: re-examine the admitted range and re-track its missing
  // positions (including blocks whose prefetches the outage cancelled).
  void ResumeDisk(DiskId disk);

  // Smallest tracked position >= pos across all disks, or kNone.
  // (std::set semantics: upper_bound(p) is FirstGlobalAtOrAfter(p + 1).)
  TracePos FirstGlobalAtOrAfter(TracePos pos) const {
    return TracePos{global_.FirstAtLeast(pos.v())};
  }

  // Smallest tracked position >= pos whose block lives on `disk`, or kNone.
  TracePos FirstOnDiskAtOrAfter(DiskId disk, TracePos pos) const {
    return TracePos{per_disk_[static_cast<size_t>(disk.v())].FirstAtLeast(pos.v())};
  }

  bool Contains(TracePos pos) const { return global_.Test(pos.v()); }
  bool ContainsOnDisk(DiskId disk, TracePos pos) const {
    return per_disk_[static_cast<size_t>(disk.v())].Test(pos.v());
  }

  // Number of tracked positions (all disks together).
  int64_t size() const { return global_.size(); }

  int64_t window() const { return window_; }

  // Positions below this have been examined for admission; the next
  // AdvanceTo scan starts here. Fast-forward quiescence checks use it to
  // enumerate the admissions a skipped run would perform.
  TracePos added_until() const { return added_until_; }

 private:
  void Insert(TracePos pos);
  void Erase(TracePos pos);

  Engine& sim_;
  int64_t window_;
  TracePos cursor_;
  TracePos added_until_;  // positions < this have been examined
  PosBitSet global_;
  std::vector<PosBitSet> per_disk_;
  std::vector<bool> suspended_;  // per disk; Insert refuses suspended disks
};

}  // namespace pfc

#endif  // PFC_CORE_MISSING_TRACKER_H_
