// TraceContext: the shared, immutable per-trace oracle state.
//
// Every simulation of a given (trace, hint_coverage, hint_seed) triple uses
// the same NextRefIndex and the same hint mask — both are pure functions of
// that key. Building the index is O(trace) with per-block allocations, so a
// study that sweeps 6 policies x 11 array sizes over one trace used to pay
// that cost 66 times. A TraceContext is built once and then only read, which
// also makes it safe to share across the worker threads of the parallel
// experiment runner (see harness/runner.h): after construction it is
// immutable.
//
// Lifetime: a TraceContext references the Trace it was built from; the trace
// must outlive the context (the same contract Simulator already has).

#ifndef PFC_CORE_TRACE_CONTEXT_H_
#define PFC_CORE_TRACE_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/next_ref.h"
#include "core/sim_config.h"
#include "trace/trace.h"

namespace pfc {

class TraceContext {
 public:
  // Builds the hint mask, the (possibly corrupted) hint claims, and the
  // next-reference index for the tuple. With hint_coverage >= 1.0 the mask
  // is empty ("everything hinted"), matching Simulator's historical
  // representation; with no static hint corruption the claims vector is
  // empty ("the hints tell the truth").
  //
  // With a predictor configured (src/predict), the mask and claims are the
  // predictor's materialized online hint stream instead of the oracle's:
  // learning kinds claim what the predictor would announce at each
  // position's first visibility while the index stays truthful (the
  // claims-vs-truth split — replacement keeps real future knowledge);
  // kNone hints nothing and also blinds the index, so replacement has no
  // future knowledge at all, exactly as hint_coverage == 0 would.
  TraceContext(const Trace& trace, double hint_coverage, uint64_t hint_seed,
               const HintFault& hint_fault = HintFault{},
               const PredictorConfig& predictor = PredictorConfig{});

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  const Trace& trace() const { return trace_; }
  const std::vector<bool>& hinted() const { return hinted_; }
  // What the hint source claims each reference names. Empty = truthful
  // (trace().block(pos)); otherwise claims()[pos] is the block a prefetcher
  // believing the hints would fetch for position pos. The next-reference
  // index below stays built on the *true* trace: replacement decisions use
  // real future knowledge, corruption lies only about which blocks are
  // coming (wrong-block substitution, windowed reordering).
  const std::vector<BlockId>& claims() const { return claims_; }
  const NextRefIndex& index() const { return index_; }
  double hint_coverage() const { return hint_coverage_; }
  uint64_t hint_seed() const { return hint_seed_; }
  const HintFault& hint_fault() const { return hint_fault_; }
  const PredictorConfig& predictor() const { return predictor_; }

 private:
  // Delegation target: `streams` is the already-built (hinted, claims)
  // pair, computed once whichever source (oracle, corruption, predictor)
  // produced it.
  TraceContext(const Trace& trace, double hint_coverage, uint64_t hint_seed,
               const HintFault& hint_fault, const PredictorConfig& predictor,
               std::pair<std::vector<bool>, std::vector<BlockId>>&& streams);

  const Trace& trace_;
  double hint_coverage_;
  uint64_t hint_seed_;
  HintFault hint_fault_;
  PredictorConfig predictor_;
  std::vector<bool> hinted_;      // empty = everything hinted
  std::vector<BlockId> claims_;   // empty = hints are truthful
  NextRefIndex index_;
};

// 64-bit content fingerprint of a trace (name, length, every entry). Used to
// key memoization caches so that a recycled Trace address with different
// contents can never alias a cached entry.
uint64_t TraceFingerprint(const Trace& trace);

// Process-wide memoized lookup: returns the shared context for the tuple,
// building it on first use. Thread-safe; concurrent callers for the same key
// receive the same pointer. Entries live for the life of the process (or
// until ClearTraceContextCache), so the referenced traces must outlive any
// use of the returned contexts.
std::shared_ptr<const TraceContext> SharedTraceContext(
    const Trace& trace, double hint_coverage, uint64_t hint_seed,
    const HintFault& hint_fault = HintFault{},
    const PredictorConfig& predictor = PredictorConfig{});

// Drops every memoized context (for tests and long-lived tools that churn
// through many traces).
void ClearTraceContextCache();

}  // namespace pfc

#endif  // PFC_CORE_TRACE_CONTEXT_H_
