// Read-only cache interface: the queries a Policy may ask of the buffer
// cache, abstracted from any particular implementation.
//
// Two implementations exist: BufferCache (core/buffer_cache.h), the
// optimized engine's cache with its O(log K) next-use index, and RefCache
// (check/ref_cache.h), the reference simulator's deliberately naive
// linear-scan cache. Policies program against this interface so that the
// same policy object can drive either engine — the basis of the
// differential-verification subsystem (src/check).
//
// The interface is query-only by design: all cache *mutation* flows through
// the owning engine (Engine::IssueFetch and the demand/write paths), which
// is what enforces the paper's evict-at-issue semantics.

#ifndef PFC_CORE_CACHE_VIEW_H_
#define PFC_CORE_CACHE_VIEW_H_

#include <cstdint>
#include <optional>

#include "util/strong_types.h"

namespace pfc {

class CacheView {
 public:
  enum class State { kAbsent, kFetching, kPresent };

  // FurthestNextUse() when no eviction candidate exists. Orders before
  // every real position.
  static constexpr TracePos kNoCandidate{-1};

  virtual ~CacheView() = default;

  // Capacity in blocks, buffers in use (present + in flight), and free
  // buffers.
  virtual int capacity() const = 0;
  virtual int used() const = 0;
  int free_buffers() const { return capacity() - used(); }

  // Number of *evictable* (present and clean) blocks.
  virtual int present_count() const = 0;

  virtual State GetState(BlockId block) const = 0;
  bool Present(BlockId block) const { return GetState(block) == State::kPresent; }
  bool Fetching(BlockId block) const { return GetState(block) == State::kFetching; }

  virtual bool Dirty(BlockId block) const = 0;
  virtual int dirty_count() const = 0;

  // Present *clean* block with the furthest next reference, ties broken
  // toward the larger block id; nullopt if no candidate. Dirty blocks are
  // pinned (their buffer cannot be reused until flushed) and so never
  // appear as eviction candidates.
  virtual std::optional<BlockId> FurthestBlock() const = 0;
  // Its key (NextRefIndex::kNoRef for dead blocks); kNoCandidate if none.
  virtual TracePos FurthestNextUse() const = 0;
};

}  // namespace pfc

#endif  // PFC_CORE_CACHE_VIEW_H_
