// Per-run output metrics — exactly the rows of the paper's appendix tables.

#ifndef PFC_CORE_RUN_RESULT_H_
#define PFC_CORE_RUN_RESULT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/time_util.h"

namespace pfc {

struct ObsReport;  // obs/obs_report.h

struct RunResult {
  std::string trace_name;
  std::string policy_name;
  int num_disks = 0;

  int64_t fetches = 0;         // read I/O requests issued
  int64_t demand_fetches = 0;  // subset issued on the stall path
  int64_t write_refs = 0;      // write references served (write extension)
  int64_t flushes = 0;         // write-backs issued during the run
  int64_t dirty_at_end = 0;    // dirty blocks left for post-run write-back

  // Fault-injection outcome (all zero on a healthy run).
  int64_t retries = 0;          // failed attempts that were re-issued
  int64_t failed_requests = 0;  // requests abandoned after the retry bound

  // Prefetch-quality ledger (all zero on a demand-only run). Exact balances,
  // enforced by the paranoid auditor and re-checked by ObsCollector::Finish:
  //   issued == filled + failed
  //   filled == useful + useless + late
  // `late` fetched the right block but landed only after the application had
  // already stalled on it; `useless` landed and was evicted (or the run
  // ended) before its reference arrived.
  int64_t prefetch_issued = 0;
  int64_t prefetch_filled = 0;
  int64_t prefetch_failed = 0;
  int64_t prefetch_useful = 0;
  int64_t prefetch_useless = 0;
  int64_t prefetch_late = 0;

  DurNs compute_time;  // sum of (scaled) inter-reference compute times
  DurNs driver_time;   // fetches * driver_overhead
  DurNs stall_time;    // processor idle, waiting on I/O
  DurNs elapsed_time;  // compute + driver + stall

  // Portion of stall_time attributable to injected faults (retries, tail
  // latency, slow-disk stretch, recovery penalties). Always <= stall_time;
  // the compute+driver+stall decomposition is unchanged — this is a
  // refinement of the stall bar, not a fourth bar.
  DurNs degraded_stall_ns;

  // Portion of stall_time spent waiting out a disk outage window (demand
  // fetches re-queued across the outage, including their backoff). Disjoint
  // from degraded_stall_ns; degraded + outage <= stall_time.
  DurNs outage_stall_ns;

  double avg_fetch_ms = 0;     // mean disk service time per request
  double avg_response_ms = 0;  // mean queueing + service time per request
  double avg_disk_util = 0;    // mean over disks of busy / elapsed
  std::vector<double> per_disk_util;

  // Observability report, attached when SimConfig::obs.collect was set
  // (stall attribution, per-disk timelines, optionally the raw event
  // stream); null otherwise. Shared because results are copied around by
  // the harness; the report itself is immutable once attached.
  std::shared_ptr<const ObsReport> obs;

  double elapsed_sec() const { return NsToSec(elapsed_time); }
  double stall_sec() const { return NsToSec(stall_time); }
  double driver_sec() const { return NsToSec(driver_time); }
  double compute_sec() const { return NsToSec(compute_time); }
  double degraded_stall_sec() const { return NsToSec(degraded_stall_ns); }
  double outage_stall_sec() const { return NsToSec(outage_stall_ns); }

  // Multi-line appendix-style rendering.
  std::string ToString() const;
};

}  // namespace pfc

#endif  // PFC_CORE_RUN_RESULT_H_
