#include "core/run_result.h"

#include <cstdio>

namespace pfc {

std::string RunResult::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%s/%s d=%d: fetches=%lld (demand %lld) elapsed=%.3fs "
                "(compute %.3f + driver %.3f + stall %.3f) avg fetch=%.3fms util=%.2f",
                trace_name.c_str(), policy_name.c_str(), num_disks,
                static_cast<long long>(fetches), static_cast<long long>(demand_fetches),
                elapsed_sec(), compute_sec(), driver_sec(), stall_sec(), avg_fetch_ms,
                avg_disk_util);
  std::string out = buf;
  // Only degraded runs carry fault details; healthy output is unchanged.
  if (retries != 0 || failed_requests != 0 || degraded_stall_ns != DurNs{0} ||
      outage_stall_ns != DurNs{0}) {
    std::snprintf(buf, sizeof(buf), " retries=%lld failed=%lld degraded_stall=%.3fs",
                  static_cast<long long>(retries),
                  static_cast<long long>(failed_requests), degraded_stall_sec());
    out += buf;
  }
  if (outage_stall_ns != DurNs{0}) {
    std::snprintf(buf, sizeof(buf), " outage_stall=%.3fs", outage_stall_sec());
    out += buf;
  }
  // Only prefetching runs carry the quality ledger; demand-only output is
  // unchanged.
  if (prefetch_issued != 0) {
    std::snprintf(buf, sizeof(buf),
                  " prefetch issued=%lld filled=%lld failed=%lld (useful %lld useless %lld "
                  "late %lld)",
                  static_cast<long long>(prefetch_issued), static_cast<long long>(prefetch_filled),
                  static_cast<long long>(prefetch_failed), static_cast<long long>(prefetch_useful),
                  static_cast<long long>(prefetch_useless), static_cast<long long>(prefetch_late));
    out += buf;
  }
  return out;
}

}  // namespace pfc
