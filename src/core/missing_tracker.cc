#include "core/missing_tracker.h"

#include <algorithm>

#include "core/engine.h"
#include "util/check.h"

namespace pfc {

MissingTracker::MissingTracker(Engine& sim, int64_t window) : sim_(sim), window_(window) {
  PFC_CHECK(window > 0);
  per_disk_.resize(static_cast<size_t>(sim.config().num_disks));
}

void MissingTracker::Insert(int64_t pos) {
  global_.insert(pos);
  int disk = sim_.Location(sim_.trace().block(pos)).disk;
  per_disk_[static_cast<size_t>(disk)].insert(pos);
}

void MissingTracker::Erase(int64_t pos) {
  global_.erase(pos);
  int disk = sim_.Location(sim_.trace().block(pos)).disk;
  per_disk_[static_cast<size_t>(disk)].erase(pos);
}

void MissingTracker::AdvanceTo(int64_t cursor) {
  PFC_CHECK(cursor >= cursor_);
  cursor_ = cursor;

  // Admit newly visible positions. Undisclosed references are invisible to
  // the prefetcher (partial-hints mode) and writes never need a fetch.
  int64_t end = std::min(cursor + window_, sim_.trace().size());
  for (int64_t p = std::max(added_until_, cursor); p < end; ++p) {
    if (sim_.Hinted(p) && !sim_.trace().is_write(p) &&
        sim_.cache().GetState(sim_.trace().block(p)) == CacheView::State::kAbsent) {
      Insert(p);
    }
  }
  added_until_ = std::max(added_until_, end);

  // Retire positions behind the cursor.
  while (!global_.empty() && *global_.begin() < cursor) {
    Erase(*global_.begin());
  }
}

void MissingTracker::OnIssue(int64_t block) {
  const auto& index = sim_.index();
  for (int64_t p = index.NextUseAt(block, cursor_);
       p != NextRefIndex::kNoRef && p < added_until_; p = index.NextUseAfterPosition(p)) {
    Erase(p);
  }
}

void MissingTracker::OnEvict(int64_t block) {
  const auto& index = sim_.index();
  for (int64_t p = index.NextUseAt(block, cursor_);
       p != NextRefIndex::kNoRef && p < added_until_; p = index.NextUseAfterPosition(p)) {
    Insert(p);
  }
}

void MissingTracker::ErasePosition(int64_t pos) { Erase(pos); }

}  // namespace pfc
