#include "core/missing_tracker.h"

#include <algorithm>

#include "core/engine.h"
#include "util/check.h"

namespace pfc {

MissingTracker::MissingTracker(Engine& sim, int64_t window)
    : sim_(sim), window_(window), global_(sim.trace().size()) {
  PFC_CHECK(window > 0);
  per_disk_.resize(static_cast<size_t>(sim.config().num_disks),
                   PosBitSet(sim.trace().size()));
}

void MissingTracker::Insert(TracePos pos) {
  global_.Set(pos.v());
  DiskId disk = sim_.Location(sim_.trace().block(pos)).disk;
  per_disk_[static_cast<size_t>(disk.v())].Set(pos.v());
}

void MissingTracker::Erase(TracePos pos) {
  global_.Reset(pos.v());
  DiskId disk = sim_.Location(sim_.trace().block(pos)).disk;
  per_disk_[static_cast<size_t>(disk.v())].Reset(pos.v());
}

void MissingTracker::AdvanceTo(TracePos cursor) {
  PFC_CHECK(cursor >= cursor_);
  cursor_ = cursor;

  // Admit newly visible positions. Undisclosed references are invisible to
  // the prefetcher (partial-hints mode) and writes never need a fetch.
  TracePos end = std::min(cursor + window_, TracePos{sim_.trace().size()});
  for (TracePos p = std::max(added_until_, cursor); p < end; ++p) {
    if (sim_.Hinted(p) && !sim_.trace().is_write(p) &&
        sim_.cache().GetState(sim_.trace().block(p)) == CacheView::State::kAbsent) {
      Insert(p);
    }
  }
  added_until_ = std::max(added_until_, end);

  // Retire positions behind the cursor.
  for (TracePos p = FirstGlobalAtOrAfter(TracePos{0}); p < cursor;
       p = FirstGlobalAtOrAfter(TracePos{0})) {
    Erase(p);
  }
}

void MissingTracker::OnIssue(BlockId block) {
  const auto& index = sim_.index();
  for (TracePos p = index.NextUseAt(block, cursor_);
       p != NextRefIndex::kNoRef && p < added_until_; p = index.NextUseAfterPosition(p)) {
    Erase(p);
  }
}

void MissingTracker::OnEvict(BlockId block) {
  const auto& index = sim_.index();
  for (TracePos p = index.NextUseAt(block, cursor_);
       p != NextRefIndex::kNoRef && p < added_until_; p = index.NextUseAfterPosition(p)) {
    Insert(p);
  }
}

void MissingTracker::ErasePosition(TracePos pos) { Erase(pos); }

}  // namespace pfc
