#include "core/missing_tracker.h"

#include <algorithm>

#include "core/engine.h"
#include "util/check.h"

namespace pfc {

MissingTracker::MissingTracker(Engine& sim, int64_t window)
    : sim_(sim), window_(window), global_(sim.trace().size()) {
  PFC_CHECK(window > 0);
  per_disk_.resize(static_cast<size_t>(sim.config().num_disks),
                   PosBitSet(sim.trace().size()));
  suspended_.assign(static_cast<size_t>(sim.config().num_disks), false);
}

void MissingTracker::Insert(TracePos pos) {
  // Planning works off the *claimed* block (HintedBlock): under hint
  // corruption the tracker believes the lie, and the mis-hint's cost
  // (a wasted fetch, a live eviction) lands where the paper's model says.
  const DiskId disk = sim_.Location(sim_.HintedBlock(pos)).disk;
  if (suspended_[static_cast<size_t>(disk.v())]) {
    return;  // unfetchable until ResumeDisk, which re-admits the range
  }
  global_.Set(pos.v());
  per_disk_[static_cast<size_t>(disk.v())].Set(pos.v());
}

void MissingTracker::Erase(TracePos pos) {
  global_.Reset(pos.v());
  DiskId disk = sim_.Location(sim_.HintedBlock(pos)).disk;
  per_disk_[static_cast<size_t>(disk.v())].Reset(pos.v());
}

void MissingTracker::AdvanceTo(TracePos cursor) {
  PFC_CHECK(cursor >= cursor_);
  cursor_ = cursor;

  // Admit newly visible positions. Undisclosed references are invisible to
  // the prefetcher (partial-hints mode) and writes never need a fetch.
  TracePos end = std::min(cursor + window_, TracePos{sim_.trace().size()});
  const int64_t stale = sim_.config().hint_lookahead();
  if (stale > 0) {
    // Stale hints: positions past cursor + stale are undisclosed *for now*
    // and become visible as the cursor advances, so the admission high-water
    // mark must not pass them.
    end = std::min(end, cursor + (stale + 1));
  }
  const int64_t know = sim_.config().oracle_window;
  if (know >= 0) {
    // Bounded oracle: nothing at or past cursor + know is visible yet (the
    // knowledge horizon is exclusive), so admission must stop there too —
    // keeping added_until_ <= cursor + know, which is what lets OnIssue /
    // OnEvict walk next-use chains without hitting the clamped region.
    end = std::min(end, cursor + know);
  }
  for (TracePos p = std::max(added_until_, cursor); p < end; ++p) {
    if (sim_.Hinted(p) && !sim_.trace().is_write(p) &&
        sim_.cache().GetState(sim_.HintedBlock(p)) == CacheView::State::kAbsent) {
      Insert(p);
    }
  }
  added_until_ = std::max(added_until_, end);

  // Retire positions behind the cursor.
  for (TracePos p = FirstGlobalAtOrAfter(TracePos{0}); p < cursor;
       p = FirstGlobalAtOrAfter(TracePos{0})) {
    Erase(p);
  }
}

void MissingTracker::OnIssue(BlockId block) {
  const auto& index = sim_.index();
  for (TracePos p = index.NextUseAt(block, cursor_);
       p != NextRefIndex::kNoRef && p < added_until_; p = index.NextUseAfterPosition(p)) {
    Erase(p);
  }
}

void MissingTracker::OnEvict(BlockId block) {
  const auto& index = sim_.index();
  for (TracePos p = index.NextUseAt(block, cursor_);
       p != NextRefIndex::kNoRef && p < added_until_; p = index.NextUseAfterPosition(p)) {
    Insert(p);
  }
}

void MissingTracker::ErasePosition(TracePos pos) { Erase(pos); }

void MissingTracker::SuspendDisk(DiskId disk) {
  suspended_[static_cast<size_t>(disk.v())] = true;
  PosBitSet& set = per_disk_[static_cast<size_t>(disk.v())];
  for (int64_t p = set.FirstAtLeast(0); p != PosBitSet::kNone; p = set.FirstAtLeast(0)) {
    Erase(TracePos{p});
  }
}

void MissingTracker::ResumeDisk(DiskId disk) {
  suspended_[static_cast<size_t>(disk.v())] = false;
  // Re-examine everything already admitted: positions dropped at suspension
  // plus blocks whose in-flight prefetches the outage cancelled.
  for (TracePos p = std::max(cursor_, TracePos{0}); p < added_until_; ++p) {
    if (!sim_.Hinted(p) || sim_.trace().is_write(p) || global_.Test(p.v())) {
      continue;
    }
    const BlockId block = sim_.HintedBlock(p);
    if (sim_.Location(block).disk == disk &&
        sim_.cache().GetState(block) == CacheView::State::kAbsent) {
      Insert(p);
    }
  }
}

}  // namespace pfc
