// Fixed horizon: the TIP2-derived policy (sections 2.3, 2.7).
//
// Whenever a missing block lies at most H references ahead of the cursor,
// fetch it, evicting the present block whose next reference is furthest in
// the future — provided that reference is beyond the horizon. H defaults to
// 62 = (15 ms average disk read) / (243 us to consume a cached block), the
// value the paper uses everywhere except its horizon sweeps. Up to H
// requests can be outstanding at once, which is what gives the disk
// scheduler latitude.
//
// Never looking beyond H is the policy's defining trade-off: near-optimal
// replacement and the lightest disk load, but idle disks — and stalls — when
// the trace is I/O-bound.

#ifndef PFC_CORE_POLICIES_FIXED_HORIZON_H_
#define PFC_CORE_POLICIES_FIXED_HORIZON_H_

#include <vector>

#include "core/policy.h"
#include "util/strong_types.h"

namespace pfc {

inline constexpr int kDefaultPrefetchHorizon = 62;

class FixedHorizonPolicy : public Policy {
 public:
  explicit FixedHorizonPolicy(int horizon = kDefaultPrefetchHorizon);

  std::string name() const override { return "fixed-horizon"; }
  void Init(Engine& sim) override;
  void OnReference(Engine& sim, TracePos pos) override;
  bool SupportsFastForward() const override { return true; }
  TracePos QuiescentThrough(const Engine& sim, TracePos pos, TracePos run_end) override;
  void OnFastForward(Engine& sim, TracePos from, TracePos to) override;

  int horizon() const { return horizon_; }

  // Positions whose fetch is postponed awaiting a safe eviction (exposed for
  // tests). Kept ordered: the optimal-fetching rule demands that the missing
  // block referenced soonest is fetched first.
  const std::vector<TracePos>& deferred() const { return deferred_; }

 private:
  // Attempts the fetch for the block referenced at position `pos`; returns
  // false if it must be retried later (no eviction candidate beyond the
  // horizon yet).
  bool TryFetchAt(Engine& sim, TracePos pos);

  int horizon_;
  TracePos scanned_until_{0};  // positions < this have been examined
  // Positions whose fetch was postponed, in increasing order. A flat vector:
  // retries compact it in place, and new deferrals (always >= scanned_until_,
  // hence beyond every retained entry) append at the tail, so sortedness is
  // an invariant, not a per-insert cost.
  std::vector<TracePos> deferred_;
};

}  // namespace pfc

#endif  // PFC_CORE_POLICIES_FIXED_HORIZON_H_
