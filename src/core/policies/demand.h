// Optimal demand fetching: the paper's baseline (section 4.1).
//
// No prefetching at all; on a miss the engine fetches the missed block,
// evicting the present block whose next reference is furthest in the future
// (offline MIN replacement). This makes the comparison "as favorable as
// possible to demand fetching".

#ifndef PFC_CORE_POLICIES_DEMAND_H_
#define PFC_CORE_POLICIES_DEMAND_H_

#include "core/policy.h"

namespace pfc {

class DemandPolicy : public Policy {
 public:
  std::string name() const override { return "demand"; }
  // All behaviour is the engine's demand path plus the base-class optimal
  // eviction choice — so any proven hit run is trivially quiescent.
  bool SupportsFastForward() const override { return true; }
  TracePos QuiescentThrough(const Engine& sim, TracePos pos, TracePos run_end) override {
    (void)sim;
    (void)pos;
    return run_end;
  }
};

}  // namespace pfc

#endif  // PFC_CORE_POLICIES_DEMAND_H_
