// Multi-disk aggressive (sections 2.4, 2.7), after Cao et al.'s single-disk
// aggressive.
//
// Whenever a disk is free, build a batch of up to batch-size fetches: take
// the missing blocks in reference order, fetch each from its disk (skipping
// disks that are busy or whose batch is full), evicting the present block
// whose next reference is furthest — subject to do-no-harm (never evict a
// block needed before the block being fetched). When several disks are free
// their batches fill from the same global miss order.
//
// Aggressive is within d(1+epsilon) of optimal for d disks and is the best
// performer in I/O-bound configurations; its cost is extra fetches (early
// replacement) whose driver overhead shows up in compute-bound traces.

#ifndef PFC_CORE_POLICIES_AGGRESSIVE_H_
#define PFC_CORE_POLICIES_AGGRESSIVE_H_

#include <memory>
#include <vector>

#include "core/missing_tracker.h"
#include "core/policy.h"

namespace pfc {

class AggressivePolicy : public Policy {
 public:
  // batch_size <= 0 selects the paper's per-array-size default (Table 6).
  explicit AggressivePolicy(int batch_size = 0);

  std::string name() const override { return "aggressive"; }
  void Init(Engine& sim) override;
  void OnReference(Engine& sim, TracePos pos) override;
  void OnDiskIdle(Engine& sim, DiskId disk) override;
  void OnDiskDown(Engine& sim, DiskId disk) override;
  void OnDiskUp(Engine& sim, DiskId disk) override;
  BlockId ChooseDemandEviction(Engine& sim, BlockId block) override;
  void OnDemandFetch(Engine& sim, BlockId block) override;
  bool SupportsFastForward() const override { return true; }
  TracePos QuiescentThrough(const Engine& sim, TracePos pos, TracePos run_end) override;

  int batch_size() const { return batch_size_; }

 private:
  void MaybeIssueBatches(Engine& sim);
  // One batch-building round; returns the number of fetches issued.
  int IssueBatchRound(Engine& sim);

  int requested_batch_size_;
  int batch_size_ = 0;
  std::unique_ptr<MissingTracker> tracker_;
};

}  // namespace pfc

#endif  // PFC_CORE_POLICIES_AGGRESSIVE_H_
