#include "core/policies/fixed_horizon.h"

#include <algorithm>

#include "core/engine.h"
#include "core/sim_error.h"
#include "util/check.h"

namespace pfc {

FixedHorizonPolicy::FixedHorizonPolicy(int horizon) : horizon_(horizon) {
  if (horizon < 0) {
    throw SimError("fixed horizon: horizon must be non-negative");
  }
}

void FixedHorizonPolicy::Init(Engine& sim) {
  (void)sim;
  scanned_until_ = TracePos{0};
  deferred_.clear();
}

bool FixedHorizonPolicy::TryFetchAt(Engine& sim, TracePos pos) {
  const BlockId block = sim.trace().block(pos);
  if (sim.cache().GetState(block) != CacheView::State::kAbsent) {
    return true;  // already present or on its way
  }
  if (sim.cache().free_buffers() > 0) {
    return sim.IssueFetch(block, Engine::kNoEvict);
  }
  // Evict the furthest block, provided its next reference is beyond the
  // horizon (always true when H < K, but the sweeps push H past K).
  const TracePos horizon_edge = sim.cursor() + horizon_;
  if (sim.cache().FurthestNextUse() <= horizon_edge) {
    return false;
  }
  std::optional<BlockId> victim = sim.cache().FurthestBlock();
  PFC_CHECK(victim.has_value());
  return sim.IssueFetch(block, *victim);
}

void FixedHorizonPolicy::OnReference(Engine& sim, TracePos pos) {
  // Retry postponed fetches, soonest first (optimal fetching: the missing
  // block referenced next has first claim on any safe eviction slot).
  for (auto it = deferred_.begin(); it != deferred_.end();) {
    if (*it < pos || TryFetchAt(sim, *it)) {
      it = deferred_.erase(it);
    } else {
      ++it;
    }
  }

  // Examine every position newly inside the horizon window [pos, pos + H];
  // undisclosed references are invisible and writes never need a fetch.
  const TracePos end = std::min(pos + horizon_, TracePos{sim.trace().size() - 1});
  for (TracePos p = std::max(pos, scanned_until_); p <= end; ++p) {
    if (sim.Hinted(p) && !sim.trace().is_write(p) && !TryFetchAt(sim, p)) {
      deferred_.insert(p);
    }
  }
  scanned_until_ = std::max(scanned_until_, end + 1);
}

}  // namespace pfc
