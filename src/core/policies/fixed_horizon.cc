#include "core/policies/fixed_horizon.h"

#include <algorithm>

#include "core/engine.h"
#include "core/sim_error.h"
#include "util/check.h"

namespace pfc {

FixedHorizonPolicy::FixedHorizonPolicy(int horizon) : horizon_(horizon) {
  if (horizon < 0) {
    throw SimError("fixed horizon: horizon must be non-negative");
  }
}

void FixedHorizonPolicy::Init(Engine& sim) {
  (void)sim;
  scanned_until_ = TracePos{0};
  deferred_.clear();
}

bool FixedHorizonPolicy::TryFetchAt(Engine& sim, TracePos pos) {
  // Fetch what the hint claims lives at `pos`; under hint corruption
  // (SimConfig::hint_fault) the claim may be wrong and the fetch wasted.
  const BlockId block = sim.HintedBlock(pos);
  if (sim.cache().GetState(block) != CacheView::State::kAbsent) {
    return true;  // already present or on its way
  }
  if (sim.cache().free_buffers() > 0) {
    return sim.IssueFetch(block, Engine::kNoEvict);
  }
  // Evict the furthest block, provided its next reference is beyond the
  // horizon (always true when H < K, but the sweeps push H past K).
  const TracePos horizon_edge = sim.cursor() + horizon_;
  if (sim.cache().FurthestNextUse() <= horizon_edge) {
    return false;
  }
  std::optional<BlockId> victim = sim.cache().FurthestBlock();
  PFC_CHECK(victim.has_value());
  return sim.IssueFetch(block, *victim);
}

void FixedHorizonPolicy::OnReference(Engine& sim, TracePos pos) {
  // Retry postponed fetches, soonest first (optimal fetching: the missing
  // block referenced next has first claim on any safe eviction slot).
  if (!deferred_.empty()) {
    size_t kept = 0;
    for (size_t i = 0; i < deferred_.size(); ++i) {
      const TracePos p = deferred_[i];
      if (!(p < pos || TryFetchAt(sim, p))) {
        deferred_[kept++] = p;
      }
    }
    deferred_.resize(kept);
  }

  // Examine every position newly inside the horizon window [pos, pos + H];
  // undisclosed references are invisible and writes never need a fetch.
  // Under stale hints the window is additionally capped at the disclosure
  // edge, so the scan high-water mark cannot pass positions that only
  // become visible as the cursor advances.
  TracePos end = std::min(pos + horizon_, TracePos{sim.trace().size() - 1});
  const int64_t stale = sim.config().hint_lookahead();
  if (stale > 0) {
    end = std::min(end, pos + stale);
  }
  for (TracePos p = std::max(pos, scanned_until_); p <= end; ++p) {
    if (sim.Hinted(p) && !sim.trace().is_write(p) && !TryFetchAt(sim, p)) {
      deferred_.push_back(p);  // p >= scanned_until_ > every retained entry
    }
  }
  scanned_until_ = std::max(scanned_until_, end + 1);
}

TracePos FixedHorizonPolicy::QuiescentThrough(const Engine& sim, TracePos pos, TracePos run_end) {
  // A pending deferral could be retried (and might now succeed) at every
  // reference; don't guess, simulate.
  if (!deferred_.empty()) {
    return pos;
  }
  // At reference p the window reaches p + H. While p + H < run_end the
  // window never leaves the hit run, every position in it is present, and
  // the scan is a pure no-op. If the run reaches the end of the trace the
  // window can never escape it.
  if (run_end.v() == sim.trace().size()) {
    return run_end;
  }
  return std::max(pos, run_end - horizon_);
}

void FixedHorizonPolicy::OnFastForward(Engine& sim, TracePos from, TracePos to) {
  (void)from;
  // The skipped scans touched only present blocks; the sole state change is
  // the scan high-water mark the last skipped reference would have left.
  const TracePos end = std::min((to - 1) + horizon_, TracePos{sim.trace().size() - 1});
  scanned_until_ = std::max(scanned_until_, end + 1);
}

}  // namespace pfc
