#include "core/policies/lru_demand.h"

#include "core/engine.h"
#include "util/check.h"

namespace pfc {

void LruDemandPolicy::Touch(BlockId block) {
  auto [it, inserted] = last_use_.try_emplace(block, 0);
  if (!inserted) {
    by_recency_.erase({it->second, block});
  }
  it->second = ++clock_;
  by_recency_.insert({it->second, block});
}

void LruDemandPolicy::OnReference(Engine& sim, TracePos pos) {
  Touch(sim.trace().block(pos));
}

void LruDemandPolicy::OnFetchComplete(Engine& sim, DiskId disk, BlockId block, DurNs service) {
  (void)sim;
  (void)disk;
  (void)service;
  Touch(block);  // an arrival counts as most-recently-used
}

BlockId LruDemandPolicy::ChooseDemandEviction(Engine& sim, BlockId block) {
  (void)block;
  // Oldest tracked block that is still an eviction candidate (present and
  // clean); drop stale entries as we go.
  for (auto it = by_recency_.begin(); it != by_recency_.end();) {
    BlockId candidate = it->second;
    if (sim.cache().Present(candidate) && !sim.cache().Dirty(candidate)) {
      return candidate;
    }
    if (!sim.cache().Present(candidate) && !sim.cache().Fetching(candidate)) {
      last_use_.erase(candidate);
      it = by_recency_.erase(it);
    } else {
      ++it;  // in flight or dirty: keep the stamp, skip for now
    }
  }
  // Fall back to the engine's optimal choice (should not happen: the engine
  // only calls this when a clean present block exists).
  return Policy::ChooseDemandEviction(sim, block);
}

}  // namespace pfc
