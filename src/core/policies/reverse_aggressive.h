// Reverse aggressive: the theoretically near-optimal offline benchmark
// (sections 2.5, 2.7; Kimbrel & Karlin, FOCS '96).
//
// Reverse aggressive balances the disks through its *eviction* choices. It
// constructs a schedule by running an aggressive-style greedy pass over the
// REVERSED request sequence in the theoretical model (unit compute time,
// fixed fetch time F): whenever a disk D is free, take B = the cached block
// residing on D whose next (reverse) request is furthest away, and M = the
// first missing block of the reversed sequence; if B's next request falls
// after M's, replace B with M. The twist versus forward aggressive is that
// the replacement occupies disk(B) — because under time reversal a forward
// fetch of B from disk(B) appears as the eviction of B — so greedily
// evicting to as many disks as possible in reverse is exactly performing a
// maximal set of *fetches* in parallel forward.
//
// The reverse pass's replacement pairs are then transformed: each reverse
// eviction of B becomes a forward fetch of B (from disk(B), needed at B's
// next forward use), and each reverse fetch of M becomes a forward eviction
// of M with a release time one past M's last forward use. Fetches (sorted by
// request index) are matched to evictions (sorted by release); the first K
// fetches fill the initially empty cache and need no eviction. At run time
// the pairs whose release the cursor has passed are issued to idle disks in
// batches, exactly like aggressive.
//
// Because the pass is offline it must assume one fixed fetch-time/compute-
// time ratio F; traces with bursty compute times (cscope3) defeat any single
// estimate — the effect section 4.3 documents. F and the batch size are
// per-configuration tuning parameters (appendix F).

#ifndef PFC_CORE_POLICIES_REVERSE_AGGRESSIVE_H_
#define PFC_CORE_POLICIES_REVERSE_AGGRESSIVE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/policy.h"
#include "util/strong_types.h"

namespace pfc {

class ReverseAggressivePolicy : public Policy {
 public:
  struct Params {
    // Fetch time F in reference (compute-time) units used by the reverse
    // pass. Smaller F -> a more aggressive schedule (section 4.3).
    int64_t fetch_time_estimate = 64;
    // Batch size used both when constructing the reverse schedule and when
    // issuing the forward pairs.
    int batch_size = 16;
  };

  ReverseAggressivePolicy();
  explicit ReverseAggressivePolicy(Params params);

  std::string name() const override { return "reverse-aggressive"; }
  void Init(Engine& sim) override;
  void OnReference(Engine& sim, TracePos pos) override;
  void OnDiskIdle(Engine& sim, DiskId disk) override;
  void OnDiskUp(Engine& sim, DiskId disk) override;
  void OnDemandFetch(Engine& sim, BlockId block) override;

  // Schedule introspection (for tests).
  int64_t scheduled_fetches() const { return static_cast<int64_t>(pairs_.size()); }
  int64_t scheduled_evictions() const { return scheduled_evictions_; }

 private:
  struct Pair {
    BlockId fetch_block{0};
    TracePos next_use{0};   // forward position the fetch is needed at
    DiskId disk{0};         // disk holding fetch_block
    bool has_evict = false;
    BlockId evict_block{0};
    TracePos release{0};    // earliest cursor at which the eviction is legal
    bool done = false;
  };

  void BuildSchedule(Engine& sim);
  void IssueReleased(Engine& sim);
  void MarkPairDone(BlockId block);

  Params params_;
  std::vector<Pair> pairs_;                      // sorted by next_use
  std::vector<std::vector<int>> disk_pairs_;     // pair indices per disk
  std::vector<size_t> disk_head_;                // first maybe-alive index
  std::unordered_map<BlockId, std::deque<int>> pending_by_block_;
  int64_t scheduled_evictions_ = 0;
};

}  // namespace pfc

#endif  // PFC_CORE_POLICIES_REVERSE_AGGRESSIVE_H_
