#include "core/policies/aggressive.h"

#include <algorithm>

#include "core/engine.h"
#include "util/check.h"

namespace pfc {

namespace {
// Lookahead for the missing-block index. Aggressive's reach is bounded in
// practice by the do-no-harm rule (it cannot fetch past the furthest cached
// next-reference once the cache is full), so a window of several cache
// sizes loses nothing on real traces.
int64_t TrackerWindow(int cache_blocks) { return std::max<int64_t>(16L * cache_blocks, 16384); }
}  // namespace

AggressivePolicy::AggressivePolicy(int batch_size) : requested_batch_size_(batch_size) {}

void AggressivePolicy::Init(Engine& sim) {
  batch_size_ =
      requested_batch_size_ > 0 ? requested_batch_size_ : DefaultBatchSize(sim.config().num_disks);
  tracker_ = std::make_unique<MissingTracker>(sim, TrackerWindow(sim.config().cache_blocks));
}

BlockId AggressivePolicy::ChooseDemandEviction(Engine& sim, BlockId block) {
  BlockId victim = Policy::ChooseDemandEviction(sim, block);
  tracker_->OnEvict(victim);
  return victim;
}

void AggressivePolicy::OnDemandFetch(Engine& sim, BlockId block) {
  (void)sim;
  tracker_->OnIssue(block);
}

void AggressivePolicy::OnReference(Engine& sim, TracePos pos) {
  tracker_->AdvanceTo(pos);
  MaybeIssueBatches(sim);
}

void AggressivePolicy::OnDiskIdle(Engine& sim, DiskId disk) {
  (void)disk;
  tracker_->AdvanceTo(sim.cursor());
  MaybeIssueBatches(sim);
}

void AggressivePolicy::OnDiskDown(Engine& sim, DiskId disk) {
  // Drop the unavailable disk's planned work and re-target the freed batch
  // capacity at the healthy disks.
  tracker_->SuspendDisk(disk);
  tracker_->AdvanceTo(sim.cursor());
  MaybeIssueBatches(sim);
}

void AggressivePolicy::OnDiskUp(Engine& sim, DiskId disk) {
  // The recovered disk is idle and its deferred positions (including any
  // prefetches the outage cancelled) are fetchable again.
  tracker_->ResumeDisk(disk);
  tracker_->AdvanceTo(sim.cursor());
  MaybeIssueBatches(sim);
}

TracePos AggressivePolicy::QuiescentThrough(const Engine& sim, TracePos pos, TracePos run_end) {
  // Aggressive issues whenever an idle healthy disk has a missing block in
  // the window. During a proven hit run no event fires, so no busy disk can
  // become idle and nothing leaves the cache; the only way work appears is
  // the window sliding over a new missing position.
  const int num_disks = sim.config().num_disks;
  bool any_idle = false;
  for (DiskId d{0}; d.v() < num_disks; ++d) {
    if (sim.DiskIdle(d) && !sim.DiskDown(d)) {
      if (tracker_->FirstOnDiskAtOrAfter(d, TracePos{0}) != MissingTracker::kNone) {
        return pos;  // a batch round could fire now (or lazily erase a stale
                     // entry, which is also observable); simulate normally
      }
      any_idle = true;
    }
  }
  if (!any_idle) {
    return run_end;  // busy or dead disks cannot accept a batch
  }
  // Every idle disk's tracked set is empty. Find the first position whose
  // admission (window slide) would hand an idle disk a fetchable block: a
  // hinted, non-write, absent reference at q is admitted at reference
  // q - (W - 1), so the run stays quiescent strictly before that.
  const int64_t window = tracker_->window();
  TracePos to = run_end;
  const TracePos n{sim.trace().size()};
  for (TracePos q = tracker_->added_until(); q < n && q < to + (window - 1); ++q) {
    if (!sim.Hinted(q) || sim.trace().is_write(q)) {
      continue;
    }
    const BlockId block = sim.HintedBlock(q);
    if (sim.cache().GetState(block) != CacheView::State::kAbsent) {
      continue;
    }
    const DiskId d = sim.Location(block).disk;
    if (sim.DiskIdle(d) && !sim.DiskDown(d)) {
      to = std::min(to, std::max(pos, q - (window - 1)));
      if (to == pos) {
        return pos;
      }
    }
  }
  return to;
}

void AggressivePolicy::MaybeIssueBatches(Engine& sim) {
  const int issued = IssueBatchRound(sim);
  if (issued > 0) {
    sim.EmitMark("aggressive-batch", issued);
  }
}

int AggressivePolicy::IssueBatchRound(Engine& sim) {
  const int num_disks = sim.config().num_disks;
  std::vector<int> budget(static_cast<size_t>(num_disks), -1);
  std::vector<TracePos> scan_from(static_cast<size_t>(num_disks), TracePos{-1});
  int issued = 0;
  int eligible = 0;
  for (DiskId d{0}; d.v() < num_disks; ++d) {
    // A fail-stopped or down disk gets no prefetch budget (the engine would
    // refuse the fetches anyway; a down disk earns it back at OnDiskUp).
    if (sim.DiskIdle(d) && !sim.DiskDown(d)) {
      budget[static_cast<size_t>(d.v())] = batch_size_;
      ++eligible;
    }
  }
  if (eligible == 0) {
    return issued;
  }

  // Merge the eligible disks' missing-position lists in global reference
  // order — equivalent to the paper's "consider all their missing blocks
  // together, in order of increasing request index" — without touching
  // entries that belong to busy disks.
  const CacheView& cache = sim.cache();
  while (eligible > 0) {
    DiskId best_disk = kNoDisk;
    TracePos best_p = NextRefIndex::kNoRef;
    for (DiskId d{0}; d.v() < num_disks; ++d) {
      if (budget[static_cast<size_t>(d.v())] <= 0) {
        continue;
      }
      const TracePos p =
          tracker_->FirstOnDiskAtOrAfter(d, scan_from[static_cast<size_t>(d.v())] + 1);
      if (p < best_p) {  // kNone compares far beyond any real position
        best_p = p;
        best_disk = d;
      }
    }
    if (best_disk < DiskId{0}) {
      return issued;  // nothing missing on any free disk inside the window
    }
    scan_from[static_cast<size_t>(best_disk.v())] = best_p;

    // Fetch what the hint *claims* lives at best_p; under hint corruption
    // the claim may be wrong and the fetch wasted — that is the experiment.
    const BlockId block = sim.HintedBlock(best_p);
    if (cache.GetState(block) != CacheView::State::kAbsent) {
      tracker_->ErasePosition(best_p);  // stale entry (free-buffer demand fetch)
      continue;
    }
    bool ok;
    if (cache.free_buffers() > 0) {
      ok = sim.IssueFetch(block, Engine::kNoEvict);
    } else {
      // Do no harm: the eviction victim's next reference must lie beyond the
      // fetched block's (position best_p). Violations only get worse further
      // out, so stop the whole round.
      if (cache.FurthestNextUse() <= best_p) {
        return issued;
      }
      std::optional<BlockId> victim = cache.FurthestBlock();
      PFC_CHECK(victim.has_value());
      ok = sim.IssueFetch(block, *victim);
      if (ok) {
        tracker_->OnEvict(*victim);
      }
    }
    if (!ok) {
      // The engine refused the fetch (e.g. the block's disk fail-stopped
      // since the budget was computed); degrade gracefully — stop this
      // round and let the demand path cover the block.
      return issued;
    }
    tracker_->OnIssue(block);
    ++issued;
    if (--budget[static_cast<size_t>(best_disk.v())] == 0) {
      --eligible;
    }
  }
  return issued;
}

}  // namespace pfc
