#include "core/policies/forestall.h"

#include <algorithm>

#include "core/engine.h"
#include "core/sim_error.h"
#include "util/check.h"

namespace pfc {

ForestallPolicy::ForestallPolicy() : ForestallPolicy(Params{}) {}

ForestallPolicy::ForestallPolicy(Params params) : params_(params) {
  if (params.history <= 0) {
    throw SimError("forestall: history must be positive");
  }
  if (params.horizon < 0) {
    throw SimError("forestall: horizon must be non-negative");
  }
  if (params.lookahead_cache_factor <= 0) {
    throw SimError("forestall: lookahead_cache_factor must be positive");
  }
}

void ForestallPolicy::Init(Engine& sim) {
  batch_size_ =
      params_.batch_size > 0 ? params_.batch_size : DefaultBatchSize(sim.config().num_disks);
  const int64_t lookahead =
      std::max<int64_t>(params_.lookahead_cache_factor * sim.config().cache_blocks,
                        params_.horizon + 1);
  tracker_ = std::make_unique<MissingTracker>(sim, lookahead);
  access_ms_.assign(static_cast<size_t>(sim.config().num_disks),
                    SlidingWindowSum(params_.history));
  compute_ms_ = std::make_unique<SlidingWindowSum>(params_.history);
  // Until real samples arrive, estimate the compute rate from the trace
  // average — the same information TIP2 derives from its hint stream.
  if (sim.trace().size() > 0) {
    prior_compute_ms_ = std::max(
        0.01, NsToMs(sim.trace().TotalCompute()) * sim.config().cpu_scale /
                  static_cast<double>(sim.trace().size()));
  }
}

double ForestallPolicy::FetchTimeRatio(DiskId disk) const {
  if (params_.fixed_f > 0.0) {
    return params_.fixed_f;
  }
  const SlidingWindowSum& access = access_ms_[static_cast<size_t>(disk.v())];
  double access_mean = access.size() > 0 ? access.mean() : params_.prior_access_ms;
  double compute_mean = compute_ms_->size() > 0 ? compute_ms_->mean() : prior_compute_ms_;
  compute_mean = std::max(compute_mean, 0.01);
  double f = access_mean / compute_mean;
  // Slow (non-sequential) disks get the 4x overestimate so that CSCAN
  // reordering and access-time variance cannot sneak a stall in.
  if (access_mean >= params_.slow_disk_threshold_ms) {
    f *= params_.slow_disk_multiplier;
  }
  return f;
}

void ForestallPolicy::OnFetchComplete(Engine& sim, DiskId disk, BlockId block, DurNs service) {
  (void)sim;
  (void)block;
  access_ms_[static_cast<size_t>(disk.v())].Add(NsToMs(service));
}

BlockId ForestallPolicy::ChooseDemandEviction(Engine& sim, BlockId block) {
  BlockId victim = Policy::ChooseDemandEviction(sim, block);
  tracker_->OnEvict(victim);
  return victim;
}

void ForestallPolicy::OnDemandFetch(Engine& sim, BlockId block) {
  (void)sim;
  tracker_->OnIssue(block);
}

void ForestallPolicy::OnReference(Engine& sim, TracePos pos) {
  if (pos > TracePos{0}) {
    compute_ms_->Add(NsToMs(sim.ScaledCompute(pos - 1)));
  }
  tracker_->AdvanceTo(pos);
  MaybeIssue(sim);
}

void ForestallPolicy::OnDiskIdle(Engine& sim, DiskId disk) {
  (void)disk;
  tracker_->AdvanceTo(sim.cursor());
  MaybeIssue(sim);
}

void ForestallPolicy::OnDiskDown(Engine& sim, DiskId disk) {
  // Drop the unavailable disk's planned work so the in-order backstop cannot
  // head-of-line block on it, then re-target the healthy disks.
  tracker_->SuspendDisk(disk);
  tracker_->AdvanceTo(sim.cursor());
  MaybeIssue(sim);
}

void ForestallPolicy::OnDiskUp(Engine& sim, DiskId disk) {
  // The recovered disk's deferred positions (including prefetches the outage
  // cancelled) are fetchable again; re-plan immediately.
  tracker_->ResumeDisk(disk);
  tracker_->AdvanceTo(sim.cursor());
  MaybeIssue(sim);
}

TracePos ForestallPolicy::QuiescentThrough(const Engine& sim, TracePos pos, TracePos run_end) {
  // During a proven hit run no event fires: idleness, access-time samples,
  // and the cache are all frozen, so forestall can only act when (a) an
  // idle healthy disk already has tracked missing positions (the
  // constrained rule might fire, or its scan might lazily erase a stale
  // entry), (b) the backstop edge reaches the first tracked position, or
  // (c) the sliding window admits a new missing position.
  const int num_disks = sim.config().num_disks;
  bool any_idle = false;
  for (DiskId d{0}; d.v() < num_disks; ++d) {
    if (sim.DiskIdle(d) && !sim.DiskDown(d)) {
      if (tracker_->FirstOnDiskAtOrAfter(d, TracePos{0}) != MissingTracker::kNone) {
        return pos;
      }
      any_idle = true;
    }
  }
  TracePos to = run_end;
  // (b) The backstop fetches the first tracked position q once the cursor
  // reaches q - H (even to a busy disk). Admission always precedes backstop
  // eligibility because the tracker window is at least H + 1.
  const TracePos first = tracker_->FirstGlobalAtOrAfter(TracePos{0});
  if (first != MissingTracker::kNone) {
    to = std::min(to, std::max(pos, first - params_.horizon));
    if (to == pos) {
      return pos;
    }
  }
  // (c) A hinted, non-write, absent reference at q enters the tracker at
  // reference q - (W - 1); on an idle healthy disk that set's emptiness —
  // the invariant behind (a) — breaks right there, while on a busy or dead
  // disk nothing happens until the backstop edge at q - H.
  const int64_t window = tracker_->window();
  const int64_t reach = any_idle ? window - 1 : params_.horizon;
  const TracePos n{sim.trace().size()};
  for (TracePos q = tracker_->added_until(); q < n && q < to + reach; ++q) {
    if (!sim.Hinted(q) || sim.trace().is_write(q)) {
      continue;
    }
    const BlockId block = sim.HintedBlock(q);
    if (sim.cache().GetState(block) != CacheView::State::kAbsent) {
      continue;
    }
    const DiskId d = sim.Location(block).disk;
    const bool idle = sim.DiskIdle(d) && !sim.DiskDown(d);
    const TracePos at = idle ? q - (window - 1) : q - params_.horizon;
    to = std::min(to, std::max(pos, at));
    if (to == pos) {
      return pos;
    }
  }
  return to;
}

void ForestallPolicy::OnFastForward(Engine& sim, TracePos from, TracePos to) {
  // Every skipped OnReference would have sampled the preceding
  // inter-reference compute time; replay them in order so the sliding
  // window estimator's state (and its floating-point sums) stay
  // bit-identical with an unskipped run.
  for (TracePos p = std::max(from, TracePos{1}); p < to; ++p) {
    compute_ms_->Add(NsToMs(sim.ScaledCompute(p - 1)));
  }
}

bool ForestallPolicy::FetchWithOptimalEviction(Engine& sim, BlockId block, TracePos pos) {
  const CacheView& cache = sim.cache();
  bool ok;
  if (cache.free_buffers() > 0) {
    ok = sim.IssueFetch(block, Engine::kNoEvict);
  } else {
    if (cache.FurthestNextUse() <= pos) {
      return false;  // do no harm
    }
    std::optional<BlockId> victim = cache.FurthestBlock();
    PFC_CHECK(victim.has_value());
    ok = sim.IssueFetch(block, *victim);
    if (ok) {
      tracker_->OnEvict(*victim);
    }
  }
  if (!ok) {
    // The engine refused the fetch (dead disk); let the caller stop this
    // round — the demand path covers the block when it is referenced.
    return false;
  }
  tracker_->OnIssue(block);
  return true;
}

bool ForestallPolicy::DiskConstrained(Engine& sim, DiskId disk) {
  const double f_prime = std::max(FetchTimeRatio(disk), 1e-6);
  const TracePos cursor = sim.cursor();
  int64_t i = 0;
  TracePos p{-1};
  for (;;) {
    p = tracker_->FirstOnDiskAtOrAfter(disk, p + 1);
    if (p == MissingTracker::kNone) {
      return false;
    }
    if (sim.cache().GetState(sim.HintedBlock(p)) != CacheView::State::kAbsent) {
      tracker_->ErasePosition(p);
      continue;
    }
    ++i;
    if (static_cast<double>(i) * f_prime > static_cast<double>(p - cursor)) {
      return true;
    }
  }
}

void ForestallPolicy::MaybeIssue(Engine& sim) {
  const int num_disks = sim.config().num_disks;
  const TracePos cursor = sim.cursor();
  const CacheView& cache = sim.cache();
  int backstop_issued = 0;
  int constrained_issued = 0;

  // Fixed-horizon backstop: anything missing within H is fetched now, even
  // to a busy disk (it joins the queue), so CSCAN reordering cannot stall
  // us. Like fixed horizon itself, the backstop only evicts a block whose
  // next reference lies beyond the horizon — otherwise it would thrash
  // working sets smaller than H (the demand path handles those optimally).
  const TracePos horizon_edge = cursor + params_.horizon;
  for (;;) {
    const TracePos p = tracker_->FirstGlobalAtOrAfter(TracePos{0});
    if (p > horizon_edge) {  // kNone compares far beyond the edge
      break;
    }
    const BlockId block = sim.HintedBlock(p);
    if (cache.GetState(block) != CacheView::State::kAbsent) {
      tracker_->ErasePosition(p);
      continue;
    }
    if (sim.DiskFailed(sim.Location(block).disk)) {
      // Unfetchable: the disk fail-stopped. Drop the position so it cannot
      // head-of-line block the backstop; the demand path recovers the block.
      // (An outage disk never reaches here — SuspendDisk dropped its
      // positions at kDiskDown and ResumeDisk re-admits them at kDiskUp.)
      tracker_->ErasePosition(p);
      continue;
    }
    if (cache.free_buffers() == 0 && cache.FurthestNextUse() <= horizon_edge) {
      break;  // no victim is safe to take this early
    }
    if (!FetchWithOptimalEviction(sim, block, p)) {
      break;  // do-no-harm refuses; nothing nearer will fare better
    }
    ++backstop_issued;
  }

  // Stall-prediction rule: batch-fetch from every idle disk while it stays
  // constrained. The predicate is re-evaluated after every issue — each
  // fetch removes a missing block, so a compute-bound disk clears after one
  // or two fetches while a truly starved disk fills its whole batch.
  for (DiskId d{0}; d.v() < num_disks; ++d) {
    // A fail-stopped or down disk looks permanently idle and constrained;
    // skip it (a down disk rejoins at OnDiskUp).
    if (!sim.DiskIdle(d) || sim.DiskDown(d)) {
      continue;
    }
    int budget = batch_size_;
    TracePos p{-1};
    while (budget > 0 && DiskConstrained(sim, d)) {
      p = tracker_->FirstOnDiskAtOrAfter(d, p + 1);
      if (p == MissingTracker::kNone) {
        break;
      }
      const BlockId block = sim.HintedBlock(p);
      if (cache.GetState(block) != CacheView::State::kAbsent) {
        tracker_->ErasePosition(p);
        continue;
      }
      if (!FetchWithOptimalEviction(sim, block, p)) {
        break;
      }
      ++constrained_issued;
      --budget;
    }
  }
  if (backstop_issued > 0) {
    sim.EmitMark("forestall-backstop", backstop_issued);
  }
  if (constrained_issued > 0) {
    sim.EmitMark("forestall-batch", constrained_issued);
  }
}

}  // namespace pfc
