#include "core/policies/forestall.h"

#include <algorithm>

#include "core/engine.h"
#include "core/sim_error.h"
#include "util/check.h"

namespace pfc {

ForestallPolicy::ForestallPolicy() : ForestallPolicy(Params{}) {}

ForestallPolicy::ForestallPolicy(Params params) : params_(params) {
  if (params.history <= 0) {
    throw SimError("forestall: history must be positive");
  }
  if (params.horizon < 0) {
    throw SimError("forestall: horizon must be non-negative");
  }
  if (params.lookahead_cache_factor <= 0) {
    throw SimError("forestall: lookahead_cache_factor must be positive");
  }
}

void ForestallPolicy::Init(Engine& sim) {
  batch_size_ =
      params_.batch_size > 0 ? params_.batch_size : DefaultBatchSize(sim.config().num_disks);
  const int64_t lookahead =
      std::max<int64_t>(params_.lookahead_cache_factor * sim.config().cache_blocks,
                        params_.horizon + 1);
  tracker_ = std::make_unique<MissingTracker>(sim, lookahead);
  access_ms_.assign(static_cast<size_t>(sim.config().num_disks),
                    SlidingWindowSum(params_.history));
  compute_ms_ = std::make_unique<SlidingWindowSum>(params_.history);
  // Until real samples arrive, estimate the compute rate from the trace
  // average — the same information TIP2 derives from its hint stream.
  if (sim.trace().size() > 0) {
    prior_compute_ms_ = std::max(
        0.01, NsToMs(sim.trace().TotalCompute()) * sim.config().cpu_scale /
                  static_cast<double>(sim.trace().size()));
  }
}

double ForestallPolicy::FetchTimeRatio(DiskId disk) const {
  if (params_.fixed_f > 0.0) {
    return params_.fixed_f;
  }
  const SlidingWindowSum& access = access_ms_[static_cast<size_t>(disk.v())];
  double access_mean = access.size() > 0 ? access.mean() : params_.prior_access_ms;
  double compute_mean = compute_ms_->size() > 0 ? compute_ms_->mean() : prior_compute_ms_;
  compute_mean = std::max(compute_mean, 0.01);
  double f = access_mean / compute_mean;
  // Slow (non-sequential) disks get the 4x overestimate so that CSCAN
  // reordering and access-time variance cannot sneak a stall in.
  if (access_mean >= params_.slow_disk_threshold_ms) {
    f *= params_.slow_disk_multiplier;
  }
  return f;
}

void ForestallPolicy::OnFetchComplete(Engine& sim, DiskId disk, BlockId block, DurNs service) {
  (void)sim;
  (void)block;
  access_ms_[static_cast<size_t>(disk.v())].Add(NsToMs(service));
}

BlockId ForestallPolicy::ChooseDemandEviction(Engine& sim, BlockId block) {
  BlockId victim = Policy::ChooseDemandEviction(sim, block);
  tracker_->OnEvict(victim);
  return victim;
}

void ForestallPolicy::OnDemandFetch(Engine& sim, BlockId block) {
  (void)sim;
  tracker_->OnIssue(block);
}

void ForestallPolicy::OnReference(Engine& sim, TracePos pos) {
  if (pos > TracePos{0}) {
    compute_ms_->Add(NsToMs(sim.ScaledCompute(pos - 1)));
  }
  tracker_->AdvanceTo(pos);
  MaybeIssue(sim);
}

void ForestallPolicy::OnDiskIdle(Engine& sim, DiskId disk) {
  (void)disk;
  tracker_->AdvanceTo(sim.cursor());
  MaybeIssue(sim);
}

bool ForestallPolicy::FetchWithOptimalEviction(Engine& sim, BlockId block, TracePos pos) {
  const CacheView& cache = sim.cache();
  bool ok;
  if (cache.free_buffers() > 0) {
    ok = sim.IssueFetch(block, Engine::kNoEvict);
  } else {
    if (cache.FurthestNextUse() <= pos) {
      return false;  // do no harm
    }
    std::optional<BlockId> victim = cache.FurthestBlock();
    PFC_CHECK(victim.has_value());
    ok = sim.IssueFetch(block, *victim);
    if (ok) {
      tracker_->OnEvict(*victim);
    }
  }
  if (!ok) {
    // The engine refused the fetch (dead disk); let the caller stop this
    // round — the demand path covers the block when it is referenced.
    return false;
  }
  tracker_->OnIssue(block);
  return true;
}

bool ForestallPolicy::DiskConstrained(Engine& sim, DiskId disk) {
  const double f_prime = std::max(FetchTimeRatio(disk), 1e-6);
  const TracePos cursor = sim.cursor();
  int64_t i = 0;
  TracePos p{-1};
  for (;;) {
    auto it = tracker_->per_disk(disk).upper_bound(p);
    if (it == tracker_->per_disk(disk).end()) {
      return false;
    }
    p = *it;
    if (sim.cache().GetState(sim.trace().block(p)) != CacheView::State::kAbsent) {
      tracker_->ErasePosition(p);
      continue;
    }
    ++i;
    if (static_cast<double>(i) * f_prime > static_cast<double>(p - cursor)) {
      return true;
    }
  }
}

void ForestallPolicy::MaybeIssue(Engine& sim) {
  const int num_disks = sim.config().num_disks;
  const TracePos cursor = sim.cursor();
  const CacheView& cache = sim.cache();
  int backstop_issued = 0;
  int constrained_issued = 0;

  // Fixed-horizon backstop: anything missing within H is fetched now, even
  // to a busy disk (it joins the queue), so CSCAN reordering cannot stall
  // us. Like fixed horizon itself, the backstop only evicts a block whose
  // next reference lies beyond the horizon — otherwise it would thrash
  // working sets smaller than H (the demand path handles those optimally).
  const TracePos horizon_edge = cursor + params_.horizon;
  for (;;) {
    auto it = tracker_->global().begin();
    if (it == tracker_->global().end() || *it > horizon_edge) {
      break;
    }
    const TracePos p = *it;
    const BlockId block = sim.trace().block(p);
    if (cache.GetState(block) != CacheView::State::kAbsent) {
      tracker_->ErasePosition(p);
      continue;
    }
    if (sim.DiskFailed(sim.Location(block).disk)) {
      // Unfetchable: the disk fail-stopped. Drop the position so it cannot
      // head-of-line block the backstop; the demand path recovers the block.
      tracker_->ErasePosition(p);
      continue;
    }
    if (cache.free_buffers() == 0 && cache.FurthestNextUse() <= horizon_edge) {
      break;  // no victim is safe to take this early
    }
    if (!FetchWithOptimalEviction(sim, block, p)) {
      break;  // do-no-harm refuses; nothing nearer will fare better
    }
    ++backstop_issued;
  }

  // Stall-prediction rule: batch-fetch from every idle disk while it stays
  // constrained. The predicate is re-evaluated after every issue — each
  // fetch removes a missing block, so a compute-bound disk clears after one
  // or two fetches while a truly starved disk fills its whole batch.
  for (DiskId d{0}; d.v() < num_disks; ++d) {
    // A fail-stopped disk looks permanently idle and constrained; skip it.
    if (!sim.DiskIdle(d) || sim.DiskFailed(d)) {
      continue;
    }
    int budget = batch_size_;
    TracePos p{-1};
    while (budget > 0 && DiskConstrained(sim, d)) {
      auto it = tracker_->per_disk(d).upper_bound(p);
      if (it == tracker_->per_disk(d).end()) {
        break;
      }
      p = *it;
      const BlockId block = sim.trace().block(p);
      if (cache.GetState(block) != CacheView::State::kAbsent) {
        tracker_->ErasePosition(p);
        continue;
      }
      if (!FetchWithOptimalEviction(sim, block, p)) {
        break;
      }
      ++constrained_issued;
      --budget;
    }
  }
  if (backstop_issued > 0) {
    sim.EmitMark("forestall-backstop", backstop_issued);
  }
  if (constrained_issued > 0) {
    sim.EmitMark("forestall-batch", constrained_issued);
  }
}

}  // namespace pfc
