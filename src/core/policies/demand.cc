#include "core/policies/demand.h"

// DemandPolicy is entirely inherited behaviour; this translation unit exists
// so the class has a home in the library.

namespace pfc {}  // namespace pfc
