// Forestall: the paper's new hybrid algorithm (section 5).
//
// Forestall prefetches only when not doing so would provably cause a stall,
// estimated from the current cache state: with d_i the distance (in
// references) from the cursor to the i-th missing block on a disk, and F'
// an (over)estimate of the fetch-time/compute-time ratio, the application
// must stall on that disk if i*F' > d_i for some i — it takes i*F'
// compute-units to fetch the first i missing blocks but only d_i units of
// work exist to overlap them. While a disk is "constrained" in this sense,
// forestall fetches from it exactly like aggressive (batched, furthest
// eviction, do-no-harm); otherwise it waits, like fixed horizon, to make the
// latest (best) replacement choice.
//
// Practicalities from section 5: F is tracked per disk as the ratio of the
// last 100 disk access times to the last 100 inter-reference compute times;
// F' = F when recent accesses are fast (< 5 ms, mostly sequential) and 4F
// when slow; only missing blocks within 2K references are examined; and the
// fixed-horizon rule (fetch anything missing within H) is kept as a backstop
// against CSCAN reordering. A fixed F' can be supplied instead (appendix H).

#ifndef PFC_CORE_POLICIES_FORESTALL_H_
#define PFC_CORE_POLICIES_FORESTALL_H_

#include <memory>
#include <vector>

#include "core/missing_tracker.h"
#include "core/policies/fixed_horizon.h"
#include "core/policy.h"
#include "util/stats.h"

namespace pfc {

class ForestallPolicy : public Policy {
 public:
  struct Params {
    int batch_size = 0;    // <= 0: per-array-size default (Table 6)
    int horizon = kDefaultPrefetchHorizon;
    double fixed_f = 0.0;  // > 0: static F' (appendix H); else dynamic
    int history = 100;     // samples in the access/compute windows
    double slow_disk_threshold_ms = 5.0;
    double slow_disk_multiplier = 4.0;
    int64_t lookahead_cache_factor = 2;  // examine the next 2K references
    double prior_access_ms = 15.0;       // used until real samples exist
  };

  ForestallPolicy();
  explicit ForestallPolicy(Params params);

  std::string name() const override { return "forestall"; }
  void Init(Engine& sim) override;
  void OnReference(Engine& sim, TracePos pos) override;
  void OnDiskIdle(Engine& sim, DiskId disk) override;
  void OnDiskDown(Engine& sim, DiskId disk) override;
  void OnDiskUp(Engine& sim, DiskId disk) override;
  void OnFetchComplete(Engine& sim, DiskId disk, BlockId block, DurNs service) override;
  BlockId ChooseDemandEviction(Engine& sim, BlockId block) override;
  void OnDemandFetch(Engine& sim, BlockId block) override;
  bool SupportsFastForward() const override { return true; }
  TracePos QuiescentThrough(const Engine& sim, TracePos pos, TracePos run_end) override;
  void OnFastForward(Engine& sim, TracePos from, TracePos to) override;

  // Current F' for a disk (exposed for tests).
  double FetchTimeRatio(DiskId disk) const;

 private:
  void MaybeIssue(Engine& sim);
  // True if the stall predicate i*F' > d_i holds for some missing block on
  // `disk` within the lookahead.
  bool DiskConstrained(Engine& sim, DiskId disk);
  // Fetches `block` (first use at `pos`) with furthest eviction under
  // do-no-harm; returns false if the rule forbids it.
  bool FetchWithOptimalEviction(Engine& sim, BlockId block, TracePos pos);

  Params params_;
  int batch_size_ = 0;
  std::unique_ptr<MissingTracker> tracker_;
  std::vector<SlidingWindowSum> access_ms_;  // per disk
  std::unique_ptr<SlidingWindowSum> compute_ms_;
  double prior_compute_ms_ = 1.0;
};

}  // namespace pfc

#endif  // PFC_CORE_POLICIES_FORESTALL_H_
