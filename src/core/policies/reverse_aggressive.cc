#include "core/policies/reverse_aggressive.h"

#include <algorithm>
#include <queue>
#include <set>

#include "core/engine.h"
#include "core/sim_error.h"
#include "util/check.h"

namespace pfc {

ReverseAggressivePolicy::ReverseAggressivePolicy() : ReverseAggressivePolicy(Params{}) {}

ReverseAggressivePolicy::ReverseAggressivePolicy(Params params) : params_(params) {
  if (params.fetch_time_estimate < 1) {
    throw SimError("reverse aggressive: fetch_time_estimate must be >= 1");
  }
  if (params.batch_size < 1) {
    throw SimError("reverse aggressive: batch_size must be >= 1");
  }
}

void ReverseAggressivePolicy::Init(Engine& sim) {
  if (sim.config().hint_fault.enabled()) {
    throw SimError(
        "reverse aggressive is offline and cannot run under hint corruption "
        "(SimConfig::hint_fault) — its schedule is built from the exact "
        "reference sequence");
  }
  if (sim.config().predictor.enabled()) {
    throw SimError(
        "reverse aggressive is offline and cannot run from an online "
        "predictor's claims (SimConfig::predictor) — its schedule is built "
        "from the exact reference sequence");
  }
  if (!sim.FullyHinted()) {
    throw SimError(
        "reverse aggressive is offline and requires full advance knowledge "
        "(hint_coverage = 1)");
  }
  if (sim.trace().WriteCount() != 0) {
    throw SimError(
        "reverse aggressive's schedule transform is defined for read-only traces "
        "(the paper's setting); use the online policies for write workloads");
  }
  BuildSchedule(sim);
}

// ---------------------------------------------------------------------------
// Schedule construction: an aggressive-style greedy pass over the reversed
// sequence in the theoretical model (unit compute, fetch time F), where each
// replacement (fetch M, evict B) occupies disk(B). See the header comment.
// ---------------------------------------------------------------------------
void ReverseAggressivePolicy::BuildSchedule(Engine& sim) {
  const Trace rev = sim.trace().Reversed();
  const NextRefIndex rindex(rev);
  const int64_t n = rev.size();
  const int cache_blocks = sim.config().cache_blocks;
  const int num_disks = sim.config().num_disks;
  // Model ticks (unit compute time), not nanoseconds: the reverse pass
  // runs in the paper's dimensionless cost model.
  const int64_t fetch_time = params_.fetch_time_estimate;  // NOLINT(pfc-raw-unit)
  const int batch = params_.batch_size;

  struct FetchRec {
    BlockId block;
    TracePos next_use;  // forward position
    DiskId disk;
  };
  struct EvictRec {
    BlockId block;
    TracePos release;  // forward position
  };
  std::vector<FetchRec> fetches;
  std::vector<EvictRec> evictions;

  // --- model cache ---------------------------------------------------------
  enum : int { kAbsent = 0, kFetching = 1, kPresent = 2 };
  std::unordered_map<BlockId, int> state;
  std::unordered_map<BlockId, TracePos> key_of;  // present blocks: next reverse use
  // Offline schedule construction, one pass at Init — not the per-reference
  // hot path, so node-based ordered containers are acceptable here.
  std::vector<std::set<std::pair<TracePos, BlockId>>> by_key(  // NOLINT(pfc-hot-structure)
      static_cast<size_t>(num_disks));  // (key, block) per disk

  auto get_state = [&](BlockId b) -> int {
    auto it = state.find(b);
    return it == state.end() ? kAbsent : it->second;
  };
  auto disk_of = [&](BlockId b) { return sim.Location(b).disk; };
  auto make_present = [&](BlockId b, TracePos key) {
    state[b] = kPresent;
    key_of.insert_or_assign(b, key);
    by_key[static_cast<size_t>(disk_of(b).v())].insert({key, b});
  };
  auto remove_present = [&](BlockId b) {
    by_key[static_cast<size_t>(disk_of(b).v())].erase({key_of.at(b), b});
    key_of.erase(b);
    state[b] = kAbsent;
  };

  // --- sliding window of missing reverse positions --------------------------
  const int64_t window = std::max<int64_t>(16LL * cache_blocks, 16384);
  std::set<TracePos> missing;  // NOLINT(pfc-hot-structure) — Init-time only
  TracePos added_until{0};
  TracePos rho{0};  // reverse cursor

  auto missing_add_block = [&](BlockId b) {
    for (TracePos p = rindex.NextUseAt(b, rho); p != NextRefIndex::kNoRef && p < added_until;
         p = rindex.NextUseAfterPosition(p)) {
      missing.insert(p);
    }
  };
  auto missing_remove_block = [&](BlockId b) {
    for (TracePos p = rindex.NextUseAt(b, rho); p != NextRefIndex::kNoRef && p < added_until;
         p = rindex.NextUseAfterPosition(p)) {
      missing.erase(p);
    }
  };
  auto missing_advance = [&]() {
    TracePos end = std::min(rho + window, TracePos{n});
    for (TracePos p = std::max(added_until, rho); p < end; ++p) {
      if (get_state(rev.block(p)) == kAbsent) {
        missing.insert(p);
      }
    }
    added_until = std::max(added_until, end);
    while (!missing.empty() && *missing.begin() < rho) {
      missing.erase(missing.begin());
    }
  };
  auto first_missing = [&]() -> TracePos {
    return missing.empty() ? TracePos{-1} : *missing.begin();
  };

  // --- initial cache: forward-final contents, approximated by the first K
  // distinct blocks of the reversed sequence (they would be hits anyway) ----
  {
    int inserted = 0;
    for (TracePos p{0}; p.v() < n && inserted < cache_blocks; ++p) {
      BlockId b = rev.block(p);
      if (get_state(b) == kAbsent) {
        make_present(b, p);
        ++inserted;
      }
    }
  }

  // --- model disks ----------------------------------------------------------
  struct Completion {
    int64_t time;  // NOLINT(pfc-raw-unit) model ticks, not nanoseconds
    BlockId block;
    DiskId disk;
    bool operator>(const Completion& o) const { return time > o.time; }
  };
  std::vector<int64_t> busy_until(static_cast<size_t>(num_disks), 0);
  std::priority_queue<Completion, std::vector<Completion>, std::greater<Completion>> inflight;

  // Builds a batch on `disk` if it is free at model time `at`.
  auto try_batch = [&](DiskId disk, int64_t at) {
    if (busy_until[static_cast<size_t>(disk.v())] > at) {
      return;
    }
    int issued = 0;
    while (issued < batch) {
      auto& keyset = by_key[static_cast<size_t>(disk.v())];
      if (keyset.empty()) {
        break;
      }
      auto [victim_key, victim] = *keyset.rbegin();
      TracePos miss_pos = first_missing();
      if (miss_pos < TracePos{0} || victim_key <= miss_pos) {
        break;  // nothing to fetch, or do-no-harm forbids
      }
      // Reverse eviction of `victim` == forward fetch of victim from `disk`.
      TracePos prev = rindex.PrevUseAt(victim, rho - 1);
      fetches.push_back(FetchRec{
          victim, prev < TracePos{0} ? TracePos{n} : TracePos{n - 1 - prev.v()}, disk});
      remove_present(victim);
      missing_add_block(victim);
      // Reverse fetch of the first missing block == forward eviction with a
      // release one past its last forward use.
      BlockId miss_block = rev.block(miss_pos);
      evictions.push_back(EvictRec{miss_block, TracePos{n - miss_pos.v()}});
      state[miss_block] = kFetching;
      missing_remove_block(miss_block);
      ++issued;
      inflight.push(Completion{at + static_cast<int64_t>(issued) * fetch_time, miss_block, disk});
    }
    if (issued > 0) {
      busy_until[static_cast<size_t>(disk.v())] = at + static_cast<int64_t>(issued) * fetch_time;
    }
  };
  auto try_all = [&](int64_t at) {
    for (DiskId d{0}; d.v() < num_disks; ++d) {
      try_batch(d, at);
    }
  };
  auto complete_one = [&]() -> int64_t {
    Completion c = inflight.top();
    inflight.pop();
    PFC_CHECK(get_state(c.block) == kFetching);
    make_present(c.block, rindex.NextUseAt(c.block, rho));
    if (busy_until[static_cast<size_t>(c.disk.v())] == c.time) {
      try_batch(c.disk, c.time);
    }
    return c.time;
  };

  // --- the reverse pass -----------------------------------------------------
  int64_t tau = 0;
  for (rho = TracePos{0}; rho.v() < n; ++rho) {
    while (!inflight.empty() && inflight.top().time <= tau) {
      complete_one();
    }
    missing_advance();
    try_all(tau);

    const BlockId b = rev.block(rho);
    while (get_state(b) != kPresent) {
      if (get_state(b) == kAbsent) {
        try_all(tau);  // b is the first missing block; a free disk grabs it
      }
      if (get_state(b) == kPresent) {
        break;
      }
      PFC_CHECK_MSG(!inflight.empty(), "reverse pass wedged: block unfetchable");
      tau = std::max(tau, complete_one());
    }

    // Consume: reindex under the next reverse use.
    TracePos new_key = rindex.NextUseAfterPosition(rho);
    auto& keyset = by_key[static_cast<size_t>(disk_of(b).v())];
    keyset.erase({key_of.at(b), b});
    key_of.insert_or_assign(b, new_key);
    keyset.insert({new_key, b});
    tau += 1;
  }

  // --- terminal drain: every block still cached (or landing) exits the
  // reverse cache; each exit is a forward (cold-start) fetch ----------------
  rho = TracePos{n};
  missing.clear();
  while (!inflight.empty()) {
    complete_one();
  }
  for (DiskId d{0}; d.v() < num_disks; ++d) {
    for (const auto& [key, b] : by_key[static_cast<size_t>(d.v())]) {
      (void)key;
      TracePos prev = rindex.PrevUseAt(b, TracePos{n - 1});
      PFC_CHECK(prev >= TracePos{0});
      fetches.push_back(FetchRec{b, TracePos{n - 1 - prev.v()}, d});
    }
  }

  // --- transform into the forward schedule ----------------------------------
  std::stable_sort(fetches.begin(), fetches.end(),
                   [](const FetchRec& a, const FetchRec& b) { return a.next_use < b.next_use; });
  std::stable_sort(evictions.begin(), evictions.end(),
                   [](const EvictRec& a, const EvictRec& b) { return a.release < b.release; });
  scheduled_evictions_ = static_cast<int64_t>(evictions.size());
  PFC_CHECK(fetches.size() >= evictions.size());
  const size_t offset = fetches.size() - evictions.size();  // fill the cold cache

  pairs_.clear();
  pairs_.reserve(fetches.size());
  for (size_t i = 0; i < fetches.size(); ++i) {
    Pair p;
    p.fetch_block = fetches[i].block;
    p.next_use = fetches[i].next_use;
    p.disk = fetches[i].disk;
    if (i >= offset) {
      p.has_evict = true;
      p.evict_block = evictions[i - offset].block;
      p.release = evictions[i - offset].release;
    }
    pairs_.push_back(p);
  }
  disk_pairs_.assign(static_cast<size_t>(num_disks), {});
  disk_head_.assign(static_cast<size_t>(num_disks), 0);
  pending_by_block_.clear();
  for (size_t i = 0; i < pairs_.size(); ++i) {
    disk_pairs_[static_cast<size_t>(pairs_[i].disk.v())].push_back(static_cast<int>(i));
    pending_by_block_[pairs_[i].fetch_block].push_back(static_cast<int>(i));
  }
}

void ReverseAggressivePolicy::MarkPairDone(BlockId block) {
  auto it = pending_by_block_.find(block);
  if (it == pending_by_block_.end() || it->second.empty()) {
    return;
  }
  pairs_[static_cast<size_t>(it->second.front())].done = true;
  it->second.pop_front();
}

void ReverseAggressivePolicy::OnDemandFetch(Engine& sim, BlockId block) {
  (void)sim;
  MarkPairDone(block);
}

void ReverseAggressivePolicy::OnReference(Engine& sim, TracePos pos) {
  (void)pos;
  IssueReleased(sim);
}

void ReverseAggressivePolicy::OnDiskIdle(Engine& sim, DiskId disk) {
  (void)disk;
  IssueReleased(sim);
}

void ReverseAggressivePolicy::OnDiskUp(Engine& sim, DiskId disk) {
  // The recovered disk sits idle with its schedule head parked wherever the
  // outage stopped it; resume issuing its released pairs immediately.
  (void)disk;
  IssueReleased(sim);
}

void ReverseAggressivePolicy::IssueReleased(Engine& sim) {
  const int num_disks = sim.config().num_disks;
  const CacheView& cache = sim.cache();
  const TracePos cursor = sim.cursor();

  for (DiskId disk{0}; disk.v() < num_disks; ++disk) {
    // A down disk's schedule is deferred wholesale; OnDiskUp resumes it.
    if (!sim.DiskIdle(disk) || sim.DiskDown(disk)) {
      continue;
    }
    const std::vector<int>& list = disk_pairs_[static_cast<size_t>(disk.v())];
    size_t& head = disk_head_[static_cast<size_t>(disk.v())];
    while (head < list.size() && pairs_[static_cast<size_t>(list[head])].done) {
      ++head;
    }
    int budget = params_.batch_size;
    for (size_t i = head; budget > 0 && i < list.size(); ++i) {
      Pair& pair = pairs_[static_cast<size_t>(list[i])];
      if (pair.done) {
        continue;
      }
      // Release points are monotone along each disk's pair list (the global
      // eviction list is sorted by release and matched in order), so the
      // first unreleased pair ends the batch.
      if (pair.release > cursor) {
        break;
      }
      if (cache.GetState(pair.fetch_block) != CacheView::State::kAbsent) {
        pair.done = true;  // a demand fetch beat us to it
        MarkPairDone(pair.fetch_block);
        continue;
      }
      bool ok = false;
      if (pair.has_evict && cache.Present(pair.evict_block) &&
          pair.evict_block != pair.fetch_block) {
        ok = sim.IssueFetch(pair.fetch_block, pair.evict_block);
      }
      if (!ok && cache.free_buffers() > 0) {
        ok = sim.IssueFetch(pair.fetch_block, Engine::kNoEvict);
      }
      if (!ok) {
        // The schedule drifted under real timings (the paired victim is gone
        // or still in flight); fall back to the furthest present block.
        std::optional<BlockId> victim = cache.FurthestBlock();
        if (victim.has_value() && *victim != pair.fetch_block) {
          ok = sim.IssueFetch(pair.fetch_block, *victim);
        }
      }
      if (!ok) {
        break;  // no buffer to be had right now; retry at the next hook
      }
      pair.done = true;
      MarkPairDone(pair.fetch_block);
      --budget;
    }
  }
}

}  // namespace pfc
