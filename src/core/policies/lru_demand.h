// Demand fetching with LRU replacement: the no-hints baseline.
//
// The paper's demand baseline uses *offline optimal* replacement to be "as
// favorable as possible to demand fetching" (section 4.1). Real unhinted
// systems run LRU. Comparing demand-LRU, demand-MIN and the prefetchers
// decomposes the benefit of hints into its two components (section 1.1):
// better-than-LRU cache replacement, and deep prefetching.

#ifndef PFC_CORE_POLICIES_LRU_DEMAND_H_
#define PFC_CORE_POLICIES_LRU_DEMAND_H_

#include <set>
#include <unordered_map>
#include <utility>

#include "core/policy.h"
#include "util/strong_types.h"

namespace pfc {

class LruDemandPolicy : public Policy {
 public:
  std::string name() const override { return "demand-lru"; }

  void OnReference(Engine& sim, TracePos pos) override;
  void OnFetchComplete(Engine& sim, DiskId disk, BlockId block, DurNs service) override;
  BlockId ChooseDemandEviction(Engine& sim, BlockId block) override;

 private:
  void Touch(BlockId block);

  int64_t clock_ = 0;
  std::unordered_map<BlockId, int64_t> last_use_;       // block -> recency stamp
  // Deliberately naive baseline: LRU exists to show what optimal
  // replacement buys, not to be fast, so the recency index stays a plain
  // ordered set.
  std::set<std::pair<int64_t, BlockId>> by_recency_;  // NOLINT(pfc-hot-structure)
};

}  // namespace pfc

#endif  // PFC_CORE_POLICIES_LRU_DEMAND_H_
