#include "core/simulator.h"

#include "util/check.h"

namespace pfc {

namespace {

// The borrowed-context constructors require the context to match the
// config's hint parameters — a context built for different hints would
// silently answer oracle queries for a different experiment.
void CheckContextMatches(const TraceContext& context, const SimConfig& config) {
  const double coverage = config.hint_coverage >= 1.0 ? 1.0 : config.hint_coverage;
  PFC_CHECK_MSG(context.hint_coverage() == coverage,
                "TraceContext hint_coverage does not match SimConfig");
  PFC_CHECK_MSG(coverage >= 1.0 || context.hint_seed() == config.hint_seed,
                "TraceContext hint_seed does not match SimConfig");
}

}  // namespace

Simulator::Simulator(const Trace& trace, const SimConfig& config, Policy* policy)
    : Simulator(std::make_shared<const TraceContext>(trace, config.hint_coverage,
                                                     config.hint_seed),
                config, policy) {}

Simulator::Simulator(std::shared_ptr<const TraceContext> context, const SimConfig& config,
                     Policy* policy)
    : context_owner_(std::move(context)),
      context_(*context_owner_),
      trace_(context_.trace()),
      config_(config),
      policy_(policy),
      cache_(config.cache_blocks),
      placement_(MakePlacement(config.placement, config.num_disks)),
      disks_(std::make_unique<DiskArray>(config.num_disks, config.disk_model,
                                         config.discipline)) {
  PFC_CHECK(policy != nullptr);
  CheckContextMatches(context_, config);
  dirty_by_disk_.resize(static_cast<size_t>(config.num_disks));
  flush_outstanding_.assign(static_cast<size_t>(config.num_disks), 0);
}

Simulator::Simulator(const TraceContext& context, const SimConfig& config, Policy* policy)
    : context_(context),
      trace_(context_.trace()),
      config_(config),
      policy_(policy),
      cache_(config.cache_blocks),
      placement_(MakePlacement(config.placement, config.num_disks)),
      disks_(std::make_unique<DiskArray>(config.num_disks, config.disk_model,
                                         config.discipline)) {
  PFC_CHECK(policy != nullptr);
  CheckContextMatches(context_, config);
  dirty_by_disk_.resize(static_cast<size_t>(config.num_disks));
  flush_outstanding_.assign(static_cast<size_t>(config.num_disks), 0);
}

TimeNs Simulator::ScaledCompute(int64_t pos) const {
  return static_cast<TimeNs>(static_cast<double>(trace_.compute(pos)) * config_.cpu_scale + 0.5);
}

bool Simulator::IssueFetch(int64_t block, int64_t evict) {
  if (cache_.GetState(block) != BufferCache::State::kAbsent) {
    return false;
  }
  if (evict == kNoEvict) {
    if (cache_.free_buffers() == 0) {
      return false;
    }
    cache_.StartFetchIntoFree(block);
  } else {
    if (!cache_.Present(evict) || evict == block) {
      return false;
    }
    cache_.StartFetchWithEviction(block, evict);
  }
  BlockLocation loc = placement_->Map(block);
  disks_->disk(loc.disk).Enqueue(block, loc.disk_block, sim_now_, next_seq_++);
  ++fetches_;
  pending_driver_ += config_.driver_overhead;
  driver_total_ += config_.driver_overhead;
  TryDispatch(loc.disk);
  return true;
}

void Simulator::TryDispatch(int disk) {
  std::optional<DispatchResult> res = disks_->disk(disk).TryDispatch(sim_now_);
  if (res.has_value()) {
    events_.push(Event{res->complete_time, next_seq_++, disk, res->logical_block,
                       res->service_time});
  }
}

void Simulator::ApplyNextEvent() {
  PFC_CHECK(!events_.empty());
  Event ev = events_.top();
  events_.pop();
  PFC_CHECK(ev.time >= sim_now_);
  sim_now_ = ev.time;

  Disk& d = disks_->disk(ev.disk);
  d.CompleteCurrent(ev.time);
  if (flush_in_flight_.erase(ev.block)) {
    // A write-back finished. A write that landed mid-flush re-dirties.
    --flush_outstanding_[static_cast<size_t>(ev.disk)];
    if (redirty_pending_.erase(ev.block)) {
      dirty_by_disk_[static_cast<size_t>(ev.disk)].insert(ev.block);
    } else {
      cache_.MarkClean(ev.block);
    }
  } else {
    // Key the arrival under its next disclosed use — except that a block the
    // application is waiting on right now is known to be needed at the
    // cursor even if that reference was never hinted (the outstanding demand
    // request is itself the disclosure). Without this, a policy could evict
    // the arrival before the stalled application consumes it.
    int64_t next_use = cursor_ < trace_.size() && trace_.block(cursor_) == ev.block
                           ? cursor_
                           : context_.index().NextUseAt(ev.block, cursor_);
    cache_.CompleteFetch(ev.block, next_use);
    policy_->OnFetchComplete(*this, ev.disk, ev.block, ev.service);
  }
  TryDispatch(ev.disk);
  if (d.idle()) {
    policy_->OnDiskIdle(*this, ev.disk);
    // The policy may have enqueued new work during the callback.
    TryDispatch(ev.disk);
  }
  if (d.idle()) {
    MaybeFlush(ev.disk);
  }
}

void Simulator::IssueFlush(int64_t block) {
  PFC_CHECK(cache_.Present(block) && cache_.Dirty(block));
  PFC_CHECK(!flush_in_flight_.contains(block));
  BlockLocation loc = placement_->Map(block);
  dirty_by_disk_[static_cast<size_t>(loc.disk)].erase(block);
  flush_in_flight_.insert(block);
  ++flush_outstanding_[static_cast<size_t>(loc.disk)];
  disks_->disk(loc.disk).Enqueue(block, loc.disk_block, sim_now_, next_seq_++);
  ++flushes_;
  pending_driver_ += config_.driver_overhead;
  driver_total_ += config_.driver_overhead;
  TryDispatch(loc.disk);
}

void Simulator::MaybeFlush(int disk) {
  if (config_.write_through) {
    return;  // write-through flushes synchronously at the write
  }
  FlatSet& dirty = dirty_by_disk_[static_cast<size_t>(disk)];
  if (dirty.empty()) {
    return;
  }
  // Opportunistic: an idle disk always cleans.
  if (disks_->disk(disk).idle()) {
    IssueFlush(dirty.min());
    return;
  }
  // High-water: never let dirty buffers silt up the cache just because the
  // prefetcher keeps the disk busy — inject write-backs into the queue.
  const int64_t high_water =
      std::max<int64_t>(1, config_.cache_blocks / (4 * config_.num_disks));
  while (static_cast<int64_t>(dirty.size()) > high_water &&
         flush_outstanding_[static_cast<size_t>(disk)] < 8) {
    IssueFlush(dirty.min());
  }
}

bool Simulator::ForceFlushForProgress() {
  if (config_.write_through) {
    return false;
  }
  for (int d = 0; d < config_.num_disks; ++d) {
    FlatSet& dirty = dirty_by_disk_[static_cast<size_t>(d)];
    if (!dirty.empty()) {
      IssueFlush(dirty.min());
      return true;
    }
  }
  return false;
}

void Simulator::ServeWrite(int64_t pos, int64_t block) {
  ++write_refs_;
  const TimeNs wait_start = app_time_;

  // A prefetch for the block may be in flight; the buffer is busy until it
  // lands (the new contents then overwrite it).
  while (cache_.Fetching(block)) {
    ApplyNextEvent();
  }

  if (!cache_.Present(block)) {
    // Whole-block write: materialize a buffer, no fetch required.
    for (;;) {
      if (cache_.free_buffers() > 0) {
        cache_.InsertWritten(block, context_.index().NextUseAt(block, pos));
        dirty_by_disk_[static_cast<size_t>(placement_->Map(block).disk)].insert(block);
        break;
      }
      if (cache_.present_count() > 0) {
        int64_t victim = policy_->ChooseDemandEviction(*this, block);
        cache_.EvictClean(victim);
        continue;
      }
      // Every buffer is dirty or in flight; wait for a flush or arrival.
      if (flush_in_flight_.empty()) {
        ForceFlushForProgress();
      }
      PFC_CHECK_MSG(!events_.empty(), "cache wedged: all buffers dirty or in flight");
      ApplyNextEvent();
    }
  } else if (flush_in_flight_.contains(block)) {
    redirty_pending_.insert(block);
  } else if (!cache_.Dirty(block)) {
    cache_.MarkDirty(block);
    dirty_by_disk_[static_cast<size_t>(placement_->Map(block).disk)].insert(block);
  }

  if (config_.write_through) {
    // The write stalls until the new contents are durable: wait out any
    // flush of the old contents, then flush again if still dirty.
    while (flush_in_flight_.contains(block)) {
      ApplyNextEvent();
    }
    if (cache_.Dirty(block)) {
      IssueFlush(block);
      while (flush_in_flight_.contains(block)) {
        ApplyNextEvent();
      }
    }
  }

  if (sim_now_ > wait_start) {
    stall_total_ += sim_now_ - wait_start;
    app_time_ = sim_now_;
  }
}

void Simulator::DrainEventsUpTo(TimeNs t) {
  while (!events_.empty() && events_.top().time <= t) {
    ApplyNextEvent();
  }
  sim_now_ = t;
}

void Simulator::DemandFetch(int64_t block) {
  ++demand_fetches_;
  for (;;) {
    if (cache_.GetState(block) != BufferCache::State::kAbsent) {
      return;  // a policy callback fetched it while we were waiting
    }
    if (cache_.free_buffers() > 0) {
      bool ok = IssueFetch(block, kNoEvict);
      PFC_CHECK(ok);
      policy_->OnDemandFetch(*this, block);
      return;
    }
    if (cache_.present_count() > 0) {
      int64_t victim = policy_->ChooseDemandEviction(*this, block);
      bool ok = IssueFetch(block, victim);
      PFC_CHECK_MSG(ok, "demand eviction choice was not a present block");
      policy_->OnDemandFetch(*this, block);
      return;
    }
    // Every buffer is in flight or dirty; make sure a flush is draining the
    // dirty population, then wait for the next completion.
    if (flush_in_flight_.empty()) {
      ForceFlushForProgress();
    }
    PFC_CHECK_MSG(!events_.empty(), "cache saturated with fetches but no disk events pending");
    ApplyNextEvent();
  }
}

RunResult Simulator::Run() {
  PFC_CHECK_MSG(!ran_, "Simulator::Run is single-shot");
  ran_ = true;

  policy_->Init(*this);

  const NextRefIndex& index = context_.index();
  const int64_t n = trace_.size();
  for (int64_t pos = 0; pos < n; ++pos) {
    cursor_ = pos;
    DrainEventsUpTo(app_time_);
    policy_->OnReference(*this, pos);
    // Write-behind: clean dirty buffers on idle disks, and keep the dirty
    // population below the high-water mark on busy ones.
    if (cache_.dirty_count() > 0) {
      for (int d = 0; d < config_.num_disks; ++d) {
        MaybeFlush(d);
      }
    }

    const int64_t block = trace_.block(pos);
    if (trace_.is_write(pos)) {
      ServeWrite(pos, block);
      cache_.UpdateNextUse(block, index.NextUseAfterPosition(pos));
      TimeNs compute = ScaledCompute(pos);
      compute_total_ += compute;
      app_time_ += compute + pending_driver_;
      pending_driver_ = 0;
      continue;
    }
    if (!cache_.Present(block)) {
      if (!cache_.Fetching(block)) {
        DemandFetch(block);
      }
      const TimeNs wait_start = app_time_;
      while (!cache_.Present(block)) {
        if (cache_.GetState(block) == BufferCache::State::kAbsent) {
          // A policy callback evicted the block while we waited; demand it
          // again rather than livelock.
          DemandFetch(block);
          continue;
        }
        ApplyNextEvent();
      }
      if (sim_now_ > wait_start) {
        stall_total_ += sim_now_ - wait_start;
        app_time_ = sim_now_;
      }
    }

    // Consume the reference: reindex the block under its next use and burn
    // the inter-reference compute time plus any accrued driver overhead.
    cache_.UpdateNextUse(block, index.NextUseAfterPosition(pos));
    TimeNs compute = ScaledCompute(pos);
    compute_total_ += compute;
    app_time_ += compute + pending_driver_;
    pending_driver_ = 0;
  }

  RunResult result;
  result.trace_name = trace_.name();
  result.policy_name = policy_->name();
  result.num_disks = config_.num_disks;
  result.fetches = fetches_;
  result.demand_fetches = demand_fetches_;
  result.write_refs = write_refs_;
  result.flushes = flushes_;
  result.dirty_at_end = cache_.dirty_count();
  result.compute_time = compute_total_;
  result.driver_time = driver_total_;
  result.stall_time = stall_total_;
  result.elapsed_time = app_time_;

  int64_t completed = 0;
  double sum_service = 0;
  double sum_response = 0;
  double util_sum = 0;
  for (int i = 0; i < disks_->num_disks(); ++i) {
    const DiskStats& s = disks_->disk(i).stats();
    completed += s.requests;
    sum_service += s.sum_service_ms;
    sum_response += s.sum_response_ms;
    double util =
        app_time_ > 0 ? static_cast<double>(s.busy_ns) / static_cast<double>(app_time_) : 0.0;
    result.per_disk_util.push_back(util);
    util_sum += util;
  }
  if (completed > 0) {
    result.avg_fetch_ms = sum_service / static_cast<double>(completed);
    result.avg_response_ms = sum_response / static_cast<double>(completed);
  }
  result.avg_disk_util = util_sum / static_cast<double>(disks_->num_disks());
  return result;
}

}  // namespace pfc
