#include "core/simulator.h"

#include <algorithm>
#include <string>

#include "obs/obs_report.h"
#include "util/check.h"

namespace pfc {

namespace {

// The borrowed-context constructors require the context to match the
// config's hint parameters — a context built for different hints would
// silently answer oracle queries for a different experiment.
void CheckContextMatches(const TraceContext& context, const SimConfig& config) {
  const double coverage = config.hint_coverage >= 1.0 ? 1.0 : config.hint_coverage;
  PFC_CHECK_MSG(context.hint_coverage() == coverage,
                "TraceContext hint_coverage does not match SimConfig");
  PFC_CHECK_MSG(coverage >= 1.0 || context.hint_seed() == config.hint_seed,
                "TraceContext hint_seed does not match SimConfig");
  PFC_CHECK_MSG(context.hint_fault() == config.hint_fault,
                "TraceContext hint_fault does not match SimConfig");
  PFC_CHECK_MSG(context.predictor() == config.predictor,
                "TraceContext predictor does not match SimConfig");
}

[[noreturn]] void FailConfigAt(const char* file, int line, const std::string& what) {
  throw SimError("invalid SimConfig (" + std::string(file) + ":" + std::to_string(line) +
                 "): " + what);
}

// The diagnostic carries the exact validation site (file:line) so a rejected
// flag combination reported by the tools points straight at the rule that
// fired.
#define FailConfig(what) FailConfigAt(__FILE__, __LINE__, (what))

#define RequireRate(rate, field)                                   \
  do {                                                             \
    if (!((rate) >= 0.0 && (rate) <= 1.0)) {                       \
      FailConfig(std::string(field) + " must be in [0, 1] (got " + \
                 std::to_string(rate) + ")");                      \
    }                                                              \
  } while (0)

// Validates config in the member-initializer list, before the cache and
// disk array (whose constructors abort on bad values) are built.
const SimConfig& Validated(const SimConfig& config) {
  ValidateSimConfig(config);
  return config;
}

}  // namespace

void ValidateSimConfig(const SimConfig& config) {
  if (config.cache_blocks <= 0) {
    FailConfig("cache_blocks must be positive (got " +
               std::to_string(config.cache_blocks) + ")");
  }
  if (config.num_disks <= 0) {
    FailConfig("num_disks must be positive (got " +
               std::to_string(config.num_disks) + ")");
  }
  if (!(config.cpu_scale > 0.0)) {
    FailConfig("cpu_scale must be positive (got " +
               std::to_string(config.cpu_scale) + ")");
  }
  if (config.driver_overhead < DurNs{0}) {
    FailConfig("driver_overhead must be non-negative");
  }
  if (!(config.hint_coverage >= 0.0)) {
    FailConfig("hint_coverage must be non-negative (got " +
               std::to_string(config.hint_coverage) + ")");
  }
  if (config.max_events < 0) {
    FailConfig("max_events must be non-negative");
  }
  const FaultConfig& f = config.faults;
  RequireRate(f.media_error_rate, "faults.media_error_rate");
  RequireRate(f.tail_rate, "faults.tail_rate");
  if (!(f.tail_multiplier >= 1.0)) {
    FailConfig("faults.tail_multiplier must be >= 1 (got " +
               std::to_string(f.tail_multiplier) + ")");
  }
  if (!(f.slow_factor >= 1.0)) {
    FailConfig("faults.slow_factor must be >= 1 (got " +
               std::to_string(f.slow_factor) + ")");
  }
  if (f.max_retries < 0) {
    FailConfig("faults.max_retries must be non-negative");
  }
  if (f.retry_backoff < DurNs{0} || f.slow_after < TimeNs{0} || f.fail_after < TimeNs{0}) {
    FailConfig("faults times must be non-negative");
  }
  if (f.error_latency <= DurNs{0}) {
    FailConfig("faults.error_latency must be positive");
  }
  if (f.recovery_penalty <= DurNs{0}) {
    FailConfig("faults.recovery_penalty must be positive");
  }
  if (f.outage_start < TimeNs{0} || f.outage_end < TimeNs{0}) {
    FailConfig("faults outage times must be non-negative");
  }
  if (f.rebuild_duration < DurNs{0}) {
    FailConfig("faults.rebuild_duration must be non-negative");
  }
  if (!(f.rebuild_slow_factor >= 1.0)) {
    FailConfig("faults.rebuild_slow_factor must be >= 1 (got " +
               std::to_string(f.rebuild_slow_factor) + ")");
  }
  if (f.outage_disk >= DiskId{0} && f.outage_end <= f.outage_start) {
    FailConfig("faults outage window is empty (outage_end " +
               std::to_string(f.outage_end.ns()) + " ns <= outage_start " +
               std::to_string(f.outage_start.ns()) + " ns)");
  }
  if (f.outage_disk >= DiskId{0} && f.outage_disk == f.fail_disk) {
    FailConfig("faults.outage_disk equals faults.fail_disk (disk " +
               std::to_string(f.outage_disk.v()) +
               "): a fail-stopped disk never recovers, an outage disk must");
  }
  const HintFault& h = config.hint_fault;
  RequireRate(h.wrong_block_rate, "hint_fault.wrong_block_rate");
  if (h.reorder_window < 0) {
    FailConfig("hint_fault.reorder_window must be non-negative");
  }
  if (h.stale_lookahead < 0) {
    FailConfig("hint_fault.stale_lookahead must be non-negative");
  }
  const PredictorConfig& p = config.predictor;
  if (static_cast<int>(p.kind) > static_cast<int>(PredictorKind::kTemporal)) {
    FailConfig("predictor.kind is out of range (got " +
               std::to_string(static_cast<int>(p.kind)) + ")");
  }
  if (p.lookahead < 0) {
    FailConfig("predictor.lookahead must be non-negative");
  }
  if (p.enabled()) {
    // The degradation axes are exclusive: a predictor *replaces* the hint
    // stream, so thinning or corrupting the oracle at the same time would
    // study two contradictory hint sources in one run.
    if (config.hint_fault.enabled()) {
      FailConfig("predictor (" + std::string(ToString(p.kind)) +
                 ") and hint_fault are both set: pick one hint-degradation axis");
    }
    if (config.hint_coverage < 1.0) {
      FailConfig("predictor (" + std::string(ToString(p.kind)) +
                 ") with hint_coverage < 1 (got " + std::to_string(config.hint_coverage) +
                 "): coverage thins the oracle, which a predictor replaces");
    }
    if (p.kind != PredictorKind::kNone && p.lookahead <= 0) {
      FailConfig("predictor (" + std::string(ToString(p.kind)) +
                 ") requires a positive lookahead (got " + std::to_string(p.lookahead) + ")");
    }
    if (p.kind == PredictorKind::kNone && p.lookahead != 0) {
      FailConfig("predictor none (hintless) takes no lookahead (got " +
                 std::to_string(p.lookahead) + ")");
    }
  }
  if (config.oracle_window < -1) {
    FailConfig("oracle_window must be -1 (unbounded) or >= 0 (got " +
               std::to_string(config.oracle_window) + ")");
  }
  // Keep horizon() arithmetic (cursor + window) far from the kNoRef
  // sentinel's magnitude class.
  if (config.oracle_window > INT64_MAX / 8) {
    FailConfig("oracle_window " + std::to_string(config.oracle_window) +
               " is absurdly large — use -1 for unbounded knowledge");
  }
  if (config.oracle_bounded()) {
    // Bounded knowledge is its own degradation axis: the oracle tells the
    // truth but only about the near future. Stacking it with thinning,
    // corruption, or online prediction would study two contradictory hint
    // sources in one run.
    if (config.hint_fault.enabled()) {
      FailConfig("oracle_window and hint_fault are both set: pick one "
                 "hint-degradation axis");
    }
    if (p.enabled()) {
      FailConfig("oracle_window with a predictor (" + std::string(ToString(p.kind)) +
                 "): the window bounds the truthful oracle, which a predictor replaces");
    }
    if (config.hint_coverage < 1.0) {
      FailConfig("oracle_window with hint_coverage < 1 (got " +
                 std::to_string(config.hint_coverage) +
                 "): coverage thins the oracle, the window bounds it — pick one");
    }
  }
}

void ValidateSimConfigForTrace(const SimConfig& config, const Trace& trace) {
  ValidateSimConfig(config);
  const FaultConfig& f = config.faults;
  const bool any_onset = f.fail_disk >= DiskId{0} || f.outage_disk >= DiskId{0} ||
                         (f.slow_disk >= DiskId{0} && f.slow_after > TimeNs{0});
  if (!any_onset) {
    return;
  }
  // A deliberately generous upper bound on the simulated clock: all the
  // trace's compute (scaled) plus a full second of driver + stretched
  // service per reference. Real per-reference I/O is tens of milliseconds,
  // so an onset beyond this bound can only be a units mistake (ms typed
  // where ns was meant, or vice versa) — the fault would never fire.
  double horizon_ns = 0.0;
  for (TracePos p{0}; p.v() < trace.size(); ++p) {
    horizon_ns += static_cast<double>(trace.compute(p).ns());
  }
  horizon_ns *= std::max(config.cpu_scale, 1.0);
  horizon_ns += static_cast<double>(trace.size() + 1) *
                (static_cast<double>(config.driver_overhead.ns()) + 1e9);
  const auto beyond = [horizon_ns](TimeNs t) {
    return static_cast<double>(t.ns()) > horizon_ns;
  };
  if (f.fail_disk >= DiskId{0} && beyond(f.fail_after)) {
    FailConfig("faults.fail_after (" + std::to_string(f.fail_after.ns()) +
               " ns) is beyond any possible horizon of trace '" + trace.name() +
               "' — the fail-stop would never fire");
  }
  if (f.outage_disk >= DiskId{0} && beyond(f.outage_start)) {
    FailConfig("faults.outage_start (" + std::to_string(f.outage_start.ns()) +
               " ns) is beyond any possible horizon of trace '" + trace.name() +
               "' — the outage would never fire");
  }
  if (f.slow_disk >= DiskId{0} && f.slow_after > TimeNs{0} && beyond(f.slow_after)) {
    FailConfig("faults.slow_after (" + std::to_string(f.slow_after.ns()) +
               " ns) is beyond any possible horizon of trace '" + trace.name() +
               "' — the slowdown would never fire");
  }
}

Simulator::Simulator(const Trace& trace, const SimConfig& config, Policy* policy)
    // Validated() runs before the context is built (and again, harmlessly,
    // in the delegated constructor): an invalid hint setup must throw
    // SimError here, not trip a hard check inside the predictor pipeline.
    : Simulator(std::make_shared<const TraceContext>(trace, Validated(config).hint_coverage,
                                                     config.hint_seed, config.hint_fault,
                                                     config.predictor),
                config, policy) {}

Simulator::Simulator(std::shared_ptr<const TraceContext> context, const SimConfig& config,
                     Policy* policy)
    : context_owner_(std::move(context)),
      context_(*context_owner_),
      trace_(context_.trace()),
      config_(Validated(config)),
      policy_(policy),
      cache_(config.cache_blocks, &arena_),
      placement_(MakePlacement(config.placement, config.num_disks)),
      disks_(std::make_unique<DiskArray>(config.num_disks, config.disk_model,
                                         config.discipline, config.faults)) {
  PFC_CHECK(policy != nullptr);
  CheckContextMatches(context_, config);
  oracle_ = RefOracle(&context_.index(), config_.oracle_window, &cursor_);
  dirty_by_disk_.resize(static_cast<size_t>(config.num_disks));
  flush_outstanding_.assign(static_cast<size_t>(config.num_disks), 0);
  event_budget_ = config_.max_events > 0 ? config_.max_events
                                         : 64 * trace_.size() + 1'000'000;
  InitObs();
}

Simulator::Simulator(const TraceContext& context, const SimConfig& config, Policy* policy)
    : context_(context),
      trace_(context_.trace()),
      config_(Validated(config)),
      policy_(policy),
      cache_(config.cache_blocks, &arena_),
      placement_(MakePlacement(config.placement, config.num_disks)),
      disks_(std::make_unique<DiskArray>(config.num_disks, config.disk_model,
                                         config.discipline, config.faults)) {
  PFC_CHECK(policy != nullptr);
  CheckContextMatches(context_, config);
  oracle_ = RefOracle(&context_.index(), config_.oracle_window, &cursor_);
  dirty_by_disk_.resize(static_cast<size_t>(config.num_disks));
  flush_outstanding_.assign(static_cast<size_t>(config.num_disks), 0);
  event_budget_ = config_.max_events > 0 ? config_.max_events
                                         : 64 * trace_.size() + 1'000'000;
  InitObs();
}

Simulator::~Simulator() = default;

void Simulator::InitObs() {
  if (config_.obs.collect) {
    collector_ = std::make_unique<ObsCollector>(config_.num_disks, config_.obs.keep_events);
    InstallSink(collector_.get());
  }
}

void Simulator::InstallSink(EventSink* sink) {
  sink_ = sink;
  disks_->SetEventSink(sink);
  cache_.SetObserver(sink, &sim_now_);
}

void Simulator::SetEventSink(EventSink* sink) {
  PFC_CHECK_MSG(collector_ == nullptr,
                "SetEventSink: the config's obs.collect already installed an "
                "internal collector");
  PFC_CHECK_MSG(!ran_, "SetEventSink must be called before Run");
  InstallSink(sink);
}

// Callers guard on sink_ != nullptr so that a sink-less run pays exactly one
// branch per emission site.
void Simulator::EmitInstant(ObsEventKind kind, DiskId disk, BlockId block, int64_t a, int64_t b) {
  ObsEvent e;
  e.time = sim_now_;
  e.kind = kind;
  e.disk = disk;
  e.block = block;
  e.a = a;
  e.b = b;
  sink_->OnEvent(e);
}

void Simulator::BeginStallWindow(BlockId block, StallCause cause) {
  stall_cause_ = cause;
  ObsEvent e;
  e.time = app_time_;
  e.kind = ObsEventKind::kStallBegin;
  e.cause = cause;
  e.block = block;
  sink_->OnEvent(e);
}

DurNs Simulator::ScaledCompute(TracePos pos) const {
  return DurNs(static_cast<int64_t>(
      static_cast<double>(trace_.compute(pos).ns()) * config_.cpu_scale + 0.5));
}

bool Simulator::IssueFetch(BlockId block, BlockId evict) {
  return IssueFetchInternal(block, evict, /*demand=*/false);
}

bool Simulator::IssueFetchInternal(BlockId block, BlockId evict, bool demand) {
  BlockLocation loc = placement_->Map(block);
  // Prefetches to a dead or down disk are refused so policies re-plan (a
  // down disk becomes fetchable again at OnDiskUp); the demand path is
  // allowed through (the request fails fast and the retry/re-queue
  // machinery bounds the damage).
  if (!demand && DiskDown(loc.disk)) {
    return false;
  }
  if (cache_.GetState(block) != BufferCache::State::kAbsent) {
    return false;
  }
  if (evict == kNoEvict) {
    if (cache_.free_buffers() == 0) {
      return false;
    }
    cache_.StartFetchIntoFree(block);
  } else {
    if (!cache_.Present(evict) || evict == block) {
      return false;
    }
    cache_.StartFetchWithEviction(block, evict);
  }
  if (evict != kNoEvict && prefetch_pending_.erase(evict)) {
    // The evicted block was prefetched and never referenced: the fetch
    // that brought it in was wasted (a mis-hint consequence).
    ++prefetch_useless_;
    if (sink_ != nullptr) {
      EmitInstant(ObsEventKind::kPrefetchUnused, placement_->Map(evict).disk, evict);
    }
  }
  if (!demand) {
    ++prefetch_issued_;
    prefetch_inflight_.insert(block);
  }
  if (sink_ != nullptr) {
    if (demand) {
      demand_inflight_.insert(block);
    }
    EmitInstant(demand ? ObsEventKind::kDemandFetchStart : ObsEventKind::kPrefetchIssue,
                loc.disk, block);
  }
  disks_->disk(loc.disk).Enqueue(block, loc.disk_block, sim_now_, next_seq_++);
  ++fetches_;
  pending_driver_ += config_.driver_overhead;
  driver_total_ += config_.driver_overhead;
  TryDispatch(loc.disk);
  return true;
}

void Simulator::TryDispatch(DiskId disk) {
  std::optional<DispatchResult> res = disks_->disk(disk).TryDispatch(sim_now_);
  if (res.has_value()) {
    if (config_.paranoid && !res->failed && DiskDown(disk)) {
      throw SimError::Invariant(
          "down-disk-dispatch",
          "disk " + std::to_string(disk.v()) + " accepted a request while unavailable at t=" +
              std::to_string(sim_now_.ns()) + " ns");
    }
    events_.push(Event{res->complete_time, next_seq_++, disk, res->logical_block,
                       res->service_time, res->nominal_service, res->failed,
                       EventKind::kComplete, res->fail_kind});
  }
}

void Simulator::ApplyNextEvent() {
  ApplyNextEventImpl();
  if (config_.paranoid) {
    AuditInvariants();
  }
}

void Simulator::ApplyNextEventImpl() {
  PFC_CHECK(!events_.empty());
  if (++events_processed_ > event_budget_) {
    throw SimError("event budget exceeded: " + std::to_string(event_budget_) +
                   " events processed without finishing the trace (wedged "
                   "run? raise SimConfig::max_events)");
  }
  Event ev = events_.top();
  events_.pop();
  PFC_CHECK_GE(ev.time, sim_now_);
  sim_now_ = ev.time;

  if (ev.kind == EventKind::kDiskDown) {
    // The outage window opens. In-flight work fails via the fault layer;
    // here the policy gets its chance to re-plan instead of stalling.
    ++down_disks_;
    if (sink_ != nullptr) {
      EmitInstant(ObsEventKind::kDiskDown, ev.disk, kNoBlock);
    }
    policy_->OnDiskDown(*this, ev.disk);
    return;
  }
  if (ev.kind == EventKind::kDiskUp) {
    // The outage window closes: the disk serves again (possibly through a
    // rebuild-slowed phase). Kick its queue, let the policy re-plan the
    // deferred work, and resume write-backs.
    --down_disks_;
    if (sink_ != nullptr) {
      EmitInstant(ObsEventKind::kDiskUp, ev.disk, kNoBlock);
    }
    policy_->OnDiskUp(*this, ev.disk);
    TryDispatch(ev.disk);
    if (disks_->disk(ev.disk).idle()) {
      policy_->OnDiskIdle(*this, ev.disk);
      TryDispatch(ev.disk);
    }
    if (disks_->disk(ev.disk).idle()) {
      MaybeFlush(ev.disk);
    }
    return;
  }
  if (ev.kind == EventKind::kRetry) {
    // Re-issue a failed request on its disk. Like any issue, the retry
    // costs driver CPU.
    BlockLocation loc = placement_->Map(ev.block);
    pending_driver_ += config_.driver_overhead;
    driver_total_ += config_.driver_overhead;
    disks_->disk(ev.disk).Enqueue(ev.block, loc.disk_block, sim_now_, next_seq_++);
    TryDispatch(ev.disk);
    return;
  }
  if (ev.kind == EventKind::kRecover) {
    // A permanently failed demand fetch recovered out-of-band (sector
    // remap / redundancy stand-in); materialize the block so the stalled
    // application can proceed.
    TracePos next_use = cursor_.v() < trace_.size() && trace_.block(cursor_) == ev.block
                            ? cursor_
                            : oracle_.NextUseAt(ev.block, cursor_);
    cache_.CompleteFetch(ev.block, next_use);
    if (prefetch_inflight_.erase(ev.block)) {
      // A prefetch the application ended up stalled on, synthesized after
      // the recovery penalty: it filled, but too late to hide the stall.
      ++prefetch_filled_;
      ++prefetch_late_;
    }
    if (sink_ != nullptr) {
      const bool was_demand = demand_inflight_.erase(ev.block);
      EmitInstant(ObsEventKind::kFaultRecover, ev.disk, ev.block, ev.service.ns());
      EmitInstant(was_demand ? ObsEventKind::kDemandFetchComplete : ObsEventKind::kPrefetchLand,
                  ev.disk, ev.block, ev.service.ns());
    }
    policy_->OnFetchComplete(*this, ev.disk, ev.block, ev.service);
    return;
  }

  Disk& d = disks_->disk(ev.disk);
  d.CompleteCurrent(ev.time);
  if (ev.failed) {
    HandleFailedRequest(ev);
  } else {
    if (!retry_attempts_.empty()) {
      retry_attempts_.erase(ev.block);
    }
    if (!outage_attempts_.empty()) {
      outage_attempts_.erase(ev.block);
    }
    // A stretched (tail / slow-disk / rebuild) service adds fault latency
    // even when the request ultimately succeeds.
    if (ev.service > ev.nominal) {
      fault_delay_[ev.block] += ev.service - ev.nominal;
    }
    if (waiting_block_ != ev.block) {
      // Nobody stalled on this block, so its fault latency was absorbed.
      if (!fault_delay_.empty()) {
        fault_delay_.erase(ev.block);
      }
      if (!outage_delay_.empty()) {
        outage_delay_.erase(ev.block);
      }
    }
    if (flush_in_flight_.erase(ev.block)) {
      // A write-back finished. A write that landed mid-flush re-dirties.
      --flush_outstanding_[static_cast<size_t>(ev.disk.v())];
      if (redirty_pending_.erase(ev.block)) {
        dirty_by_disk_[static_cast<size_t>(ev.disk.v())].insert(ev.block);
      } else {
        cache_.MarkClean(ev.block);
      }
      if (sink_ != nullptr) {
        EmitInstant(ObsEventKind::kFlushComplete, ev.disk, ev.block, ev.service.ns());
      }
    } else {
      // Key the arrival under its next disclosed use — except that a block the
      // application is waiting on right now is known to be needed at the
      // cursor even if that reference was never hinted (the outstanding demand
      // request is itself the disclosure). Without this, a policy could evict
      // the arrival before the stalled application consumes it.
      TracePos next_use = cursor_.v() < trace_.size() && trace_.block(cursor_) == ev.block
                              ? cursor_
                              : oracle_.NextUseAt(ev.block, cursor_);
      cache_.CompleteFetch(ev.block, next_use);
      if (prefetch_inflight_.erase(ev.block)) {
        ++prefetch_filled_;
        if (waiting_block_ == ev.block) {
          // Landed while the application was already stalled on it: the
          // fetch was right but too late to hide the stall.
          ++prefetch_late_;
        } else {
          prefetch_pending_.insert(ev.block);
        }
      }
      if (sink_ != nullptr) {
        const bool was_demand = demand_inflight_.erase(ev.block);
        EmitInstant(was_demand ? ObsEventKind::kDemandFetchComplete : ObsEventKind::kPrefetchLand,
                    ev.disk, ev.block, ev.service.ns());
      }
      policy_->OnFetchComplete(*this, ev.disk, ev.block, ev.service);
    }
  }
  TryDispatch(ev.disk);
  if (d.idle()) {
    policy_->OnDiskIdle(*this, ev.disk);
    // The policy may have enqueued new work during the callback.
    TryDispatch(ev.disk);
  }
  if (d.idle()) {
    MaybeFlush(ev.disk);
  }
}

void Simulator::HandleFailedRequest(const Event& ev) {
  if (ev.fault == FaultKind::kOutage) {
    HandleOutageFailure(ev);
    return;
  }
  const FaultConfig& fc = config_.faults;
  const bool is_flush = flush_in_flight_.contains(ev.block);
  const bool dead = disks_->disk(ev.disk).FailStopped(sim_now_);
  const int attempts = ++retry_attempts_[ev.block];
  if (!dead && attempts <= fc.max_retries) {
    // Transient error: back off exponentially and re-issue. Retrying a dead
    // disk is pointless, so fail-stop skips straight to the permanent path.
    const int shift = std::min(attempts - 1, 20);
    const DurNs backoff{fc.retry_backoff.ns() << shift};
    fault_delay_[ev.block] += ev.service + backoff;
    ++retries_;
    if (sink_ != nullptr) {
      EmitInstant(ObsEventKind::kFaultRetry, ev.disk, ev.block, backoff.ns(), attempts);
    }
    events_.push(Event{sim_now_ + backoff, next_seq_++, ev.disk, ev.block, DurNs{0},
                       DurNs{0}, false, EventKind::kRetry});
    return;
  }

  // Permanent failure: retries exhausted or the disk fail-stopped.
  ++failed_requests_;
  retry_attempts_.erase(ev.block);
  if (sink_ != nullptr) {
    ObsEvent e;
    e.time = sim_now_;
    e.kind = ObsEventKind::kFaultPermanent;
    e.disk = ev.disk;
    e.block = ev.block;
    e.a = ev.service.ns();
    e.flag = is_flush;
    sink_->OnEvent(e);
  }
  if (is_flush) {
    // The write-back is abandoned — the new contents never reach the disk
    // (simulated data loss, visible in failed_requests). Clean the buffer
    // so the cache still drains.
    flush_in_flight_.erase(ev.block);
    --flush_outstanding_[static_cast<size_t>(ev.disk.v())];
    redirty_pending_.erase(ev.block);
    cache_.MarkClean(ev.block);
    if (waiting_block_ == ev.block) {
      fault_delay_[ev.block] += ev.service;  // write-through stall on it
    } else {
      fault_delay_.erase(ev.block);
    }
  } else if (waiting_block_ == ev.block) {
    // The application is stalled on this block; synthesize it after the
    // recovery penalty so the run completes.
    fault_delay_[ev.block] += ev.service + fc.recovery_penalty;
    events_.push(Event{sim_now_ + fc.recovery_penalty, next_seq_++, ev.disk,
                       ev.block, fc.recovery_penalty, DurNs{0}, false, EventKind::kRecover});
  } else {
    // A prefetch nobody waits on: drop it and let the policy re-plan.
    fault_delay_.erase(ev.block);
    cache_.CancelFetch(ev.block);
    if (prefetch_inflight_.erase(ev.block)) {
      ++prefetch_failed_;
    }
    policy_->OnFetchFailed(*this, ev.disk, ev.block);
  }
}

void Simulator::HandleOutageFailure(const Event& ev) {
  const FaultConfig& fc = config_.faults;
  if (flush_in_flight_.erase(ev.block)) {
    // The write-back never reached the platters; the buffer stays dirty and
    // MaybeFlush re-issues it once the disk recovers — no data loss, unlike
    // the permanent-failure path.
    --flush_outstanding_[static_cast<size_t>(ev.disk.v())];
    redirty_pending_.erase(ev.block);
    dirty_by_disk_[static_cast<size_t>(ev.disk.v())].insert(ev.block);
    if (waiting_block_ == ev.block) {
      outage_delay_[ev.block] += ev.service;  // write-through stall on it
    }
    return;
  }
  if (waiting_block_ == ev.block) {
    // The application is stalled on this block: re-queue the demand fetch
    // across the outage with bounded exponential backoff. Outage re-queues
    // burn their own attempt counter, not max_retries — the disk is coming
    // back, and waiting one outage out must not exhaust the media-error
    // retry budget.
    const int attempts = ++outage_attempts_[ev.block];
    const int shift = std::min(attempts - 1, 20);
    const DurNs backoff{fc.retry_backoff.ns() << shift};
    outage_delay_[ev.block] += ev.service + backoff;
    ++retries_;
    if (sink_ != nullptr) {
      EmitInstant(ObsEventKind::kFaultRetry, ev.disk, ev.block, backoff.ns(), attempts);
    }
    events_.push(Event{sim_now_ + backoff, next_seq_++, ev.disk, ev.block, DurNs{0},
                       DurNs{0}, false, EventKind::kRetry});
    return;
  }
  // A prefetch to a down disk: cancel it and let the policy re-plan (it can
  // re-issue after OnDiskUp).
  ++failed_requests_;
  if (!outage_delay_.empty()) {
    outage_delay_.erase(ev.block);
  }
  if (!fault_delay_.empty()) {
    fault_delay_.erase(ev.block);
  }
  cache_.CancelFetch(ev.block);
  if (prefetch_inflight_.erase(ev.block)) {
    ++prefetch_failed_;
  }
  policy_->OnFetchFailed(*this, ev.disk, ev.block);
}

void Simulator::EndStall(BlockId block, TimeNs wait_start) {
  if (sim_now_ > wait_start) {
    const DurNs duration = sim_now_ - wait_start;
    stall_total_ += duration;
    app_time_ = sim_now_;
    // The outage share is carved out first, then the media-error share from
    // what remains, so the three buckets partition the window exactly.
    DurNs outage_share;
    if (!outage_delay_.empty()) {
      auto it = outage_delay_.find(block);
      if (it != outage_delay_.end()) {
        outage_share = std::min(duration, it->second);
        outage_stall_ += outage_share;
        outage_delay_.erase(it);
      }
    }
    DurNs fault_share;
    if (!fault_delay_.empty()) {
      auto it = fault_delay_.find(block);
      if (it != fault_delay_.end()) {
        // The fault-added latency is visible stall only up to the length of
        // this stall window (overlap with compute is absorbed).
        fault_share = std::min(duration - outage_share, it->second);
        degraded_stall_ += fault_share;
        fault_delay_.erase(it);
      }
    }
    if (sink_ != nullptr) {
      // This is the only place stall_total_ grows, and the emitted window
      // carries the same integers the accumulators just consumed — so a
      // collector's per-cause buckets sum *exactly* to RunResult::stall_time,
      // its fault bucket *exactly* to degraded_stall_ns, and its outage
      // bucket *exactly* to outage_stall_ns.
      ObsEvent e;
      e.time = sim_now_;
      e.kind = ObsEventKind::kStallEnd;
      e.cause = stall_cause_;
      e.block = block;
      e.a = duration.ns();
      e.b = fault_share.ns();
      e.c = outage_share.ns();
      sink_->OnEvent(e);
    }
  } else {
    if (!fault_delay_.empty()) {
      fault_delay_.erase(block);
    }
    if (!outage_delay_.empty()) {
      outage_delay_.erase(block);
    }
  }
}

void Simulator::IssueFlush(BlockId block) {
  PFC_CHECK(cache_.Present(block) && cache_.Dirty(block));
  PFC_CHECK(!flush_in_flight_.contains(block));
  BlockLocation loc = placement_->Map(block);
  dirty_by_disk_[static_cast<size_t>(loc.disk.v())].erase(block);
  flush_in_flight_.insert(block);
  ++flush_outstanding_[static_cast<size_t>(loc.disk.v())];
  if (sink_ != nullptr) {
    EmitInstant(ObsEventKind::kFlushIssue, loc.disk, block, 0,
                flush_outstanding_[static_cast<size_t>(loc.disk.v())]);
  }
  disks_->disk(loc.disk).Enqueue(block, loc.disk_block, sim_now_, next_seq_++);
  ++flushes_;
  pending_driver_ += config_.driver_overhead;
  driver_total_ += config_.driver_overhead;
  TryDispatch(loc.disk);
}

void Simulator::MaybeFlush(DiskId disk) {
  if (config_.write_through) {
    return;  // write-through flushes synchronously at the write
  }
  FlatSet& dirty = dirty_by_disk_[static_cast<size_t>(disk.v())];
  if (dirty.empty()) {
    return;
  }
  if (disks_->disk(disk).Down(sim_now_)) {
    // Flushing a disk in its outage window would only churn fast failures;
    // the dirty population waits for kDiskUp (which calls back here).
    return;
  }
  // Opportunistic: an idle disk always cleans.
  if (disks_->disk(disk).idle()) {
    IssueFlush(dirty.min());
    return;
  }
  // High-water: never let dirty buffers silt up the cache just because the
  // prefetcher keeps the disk busy — inject write-backs into the queue.
  const int64_t high_water =
      std::max<int64_t>(1, config_.cache_blocks / (4 * config_.num_disks));
  while (static_cast<int64_t>(dirty.size()) > high_water &&
         flush_outstanding_[static_cast<size_t>(disk.v())] < 8) {
    IssueFlush(dirty.min());
  }
}

bool Simulator::ForceFlushForProgress() {
  if (config_.write_through) {
    return false;
  }
  for (DiskId d{0}; d.v() < config_.num_disks; ++d) {
    if (disks_->disk(d).Down(sim_now_)) {
      // An outage disk's dirty blocks are unflushable until kDiskUp; that
      // pending event guarantees the waiting loops still make progress.
      continue;
    }
    FlatSet& dirty = dirty_by_disk_[static_cast<size_t>(d.v())];
    if (!dirty.empty()) {
      IssueFlush(dirty.min());
      return true;
    }
  }
  return false;
}

void Simulator::ServeWrite(TracePos pos, BlockId block) {
  ++write_refs_;
  const TimeNs wait_start = app_time_;
  waiting_block_ = block;
  if (sink_ != nullptr) {
    // Writes emit no kStallBegin — most writes do not stall at all, and the
    // kStallEnd record carries the whole window. The cause tracks the most
    // recent reason this write blocked.
    stall_cause_ = cache_.Fetching(block) ? StallCause::kFetchInFlight
                                          : StallCause::kWriteFlush;
  }

  // A prefetch for the block may be in flight; the buffer is busy until it
  // lands (the new contents then overwrite it).
  while (cache_.Fetching(block)) {
    ApplyNextEvent();
  }

  // Whole-block write: dirty the cached copy if one exists, else materialize
  // a buffer (no fetch required). The block's state must be re-checked on
  // every pass — events processed while waiting for a buffer run policy
  // callbacks that may prefetch this very block.
  for (;;) {
    if (cache_.Present(block)) {
      if (flush_in_flight_.contains(block)) {
        redirty_pending_.insert(block);
      } else if (!cache_.Dirty(block)) {
        cache_.MarkDirty(block);
        dirty_by_disk_[static_cast<size_t>(placement_->Map(block).disk.v())].insert(block);
      }
      break;
    }
    if (cache_.Fetching(block)) {
      ApplyNextEvent();
      continue;
    }
    if (cache_.free_buffers() > 0) {
      cache_.InsertWritten(block, oracle_.NextUseAt(block, pos));
      dirty_by_disk_[static_cast<size_t>(placement_->Map(block).disk.v())].insert(block);
      break;
    }
    if (cache_.present_count() > 0) {
      BlockId victim = policy_->ChooseDemandEviction(*this, block);
      cache_.EvictClean(victim);
      if (prefetch_pending_.erase(victim)) {
        // Evicted to make room for the write buffer before its reference
        // arrived: the prefetch was wasted.
        ++prefetch_useless_;
        if (sink_ != nullptr) {
          EmitInstant(ObsEventKind::kPrefetchUnused, placement_->Map(victim).disk, victim);
        }
      }
      continue;
    }
    // Every buffer is dirty or in flight; wait for a flush or arrival.
    if (sink_ != nullptr) {
      stall_cause_ = StallCause::kNoBuffer;
    }
    if (flush_in_flight_.empty()) {
      ForceFlushForProgress();
    }
    PFC_CHECK_MSG(!events_.empty(), "cache wedged: all buffers dirty or in flight");
    ApplyNextEvent();
  }

  if (config_.write_through) {
    // The write stalls until the new contents are durable: wait out any
    // flush of the old contents, then flush again if still dirty.
    if (sink_ != nullptr && (flush_in_flight_.contains(block) || cache_.Dirty(block))) {
      stall_cause_ = StallCause::kWriteFlush;
    }
    while (flush_in_flight_.contains(block)) {
      ApplyNextEvent();
    }
    if (cache_.Dirty(block)) {
      IssueFlush(block);
      while (flush_in_flight_.contains(block)) {
        ApplyNextEvent();
      }
    }
  }

  waiting_block_ = kNoBlock;
  EndStall(block, wait_start);
}

void Simulator::DrainEventsUpTo(TimeNs t) {
  while (!events_.empty() && events_.top().time <= t) {
    ApplyNextEvent();
  }
  sim_now_ = t;
}

void Simulator::DemandFetch(BlockId block) {
  ++demand_fetches_;
  for (;;) {
    if (cache_.GetState(block) != BufferCache::State::kAbsent) {
      return;  // a policy callback fetched it while we were waiting
    }
    if (cache_.free_buffers() > 0) {
      bool ok = IssueFetchInternal(block, kNoEvict, /*demand=*/true);
      PFC_CHECK(ok);
      policy_->OnDemandFetch(*this, block);
      return;
    }
    if (cache_.present_count() > 0) {
      BlockId victim = policy_->ChooseDemandEviction(*this, block);
      bool ok = IssueFetchInternal(block, victim, /*demand=*/true);
      PFC_CHECK_MSG(ok, "demand eviction choice was not a present block");
      policy_->OnDemandFetch(*this, block);
      return;
    }
    // Every buffer is in flight or dirty; make sure a flush is draining the
    // dirty population, then wait for the next completion.
    if (sink_ != nullptr) {
      stall_cause_ = StallCause::kNoBuffer;
    }
    if (flush_in_flight_.empty()) {
      ForceFlushForProgress();
    }
    PFC_CHECK_MSG(!events_.empty(), "cache saturated with fetches but no disk events pending");
    ApplyNextEvent();
  }
}

TracePos Simulator::FastForward(TracePos pos) {
  const int64_t n = trace_.size();
  // Cap the run at the first pending disk event: a skipped reference must
  // be consumed strictly before any event fires, because a normal iteration
  // drains events up to the app clock before serving the reference. The
  // app clock at the start of iteration p is
  //   app_time_ + pending_driver_ + (compute_prefix_[p] - compute_prefix_[pos]),
  // so the largest skippable prefix falls out of one binary search.
  int64_t cap = n;
  if (!events_.empty()) {
    if (events_.top().time <= app_time_) {
      return pos;  // an event is already due; simulate normally
    }
    const int64_t budget = (events_.top().time - app_time_).ns() - pending_driver_.ns();
    const int64_t base = compute_prefix_[static_cast<size_t>(pos.v())];
    const auto first = compute_prefix_.begin() + pos.v();
    const auto last = compute_prefix_.begin() + n;
    // Largest j in [pos, n) with compute_prefix_[j] - base < budget:
    // references pos..j all consume strictly before the event.
    const auto it = std::lower_bound(first, last, base + budget);
    const int64_t j = (it - compute_prefix_.begin()) - 1;
    if (j < pos.v()) {
      return pos;
    }
    cap = j + 1;
  }
  // A probe costs a binary search, a presence scan, and a policy
  // consultation; skipping a handful of references does not pay for that,
  // so only engage when at least kMinSkip references can go at once.
  constexpr int64_t kMinSkip = 8;
  if (cap - pos.v() < kMinSkip) {
    return pos;
  }
  // No event fires at the current instant, so the drain a normal iteration
  // would do is a pure clock advance; mirror it before consulting the
  // policy (DiskFailed reads the simulation clock).
  sim_now_ = app_time_;

  // Scan forward while references are reads of present blocks. The
  // verified prefix is cached across calls: presence can only be revoked by
  // an eviction, so the high-water mark stays valid while the cache's
  // eviction epoch is unchanged.
  if (cache_.eviction_epoch() != ff_epoch_ || ff_run_end_ < pos) {
    ff_epoch_ = cache_.eviction_epoch();
    ff_run_end_ = pos;
  }
  const TracePos cap_pos{cap};
  while (ff_run_end_ < cap_pos && !trace_.is_write(ff_run_end_) &&
         cache_.Present(trace_.block(ff_run_end_))) {
    ++ff_run_end_;
  }
  const TracePos run_end = std::min(ff_run_end_, cap_pos);
  if (run_end - pos < kMinSkip) {
    return pos;
  }

  // The policy bounds the skip to the part of the run it would sleep
  // through. The extra hooks have no reference-simulator counterpart by
  // design: the oracle must stay naive.
  TracePos to = policy_->QuiescentThrough(*this, pos, run_end);  // NOLINT(pfc-policy-parity)
  if (to > run_end) {
    to = run_end;
  }
  if (to - pos < kMinSkip) {
    return pos;
  }
  policy_->OnFastForward(*this, pos, to);  // NOLINT(pfc-policy-parity)

  // Reindex each consumed block once, under the next use its final in-run
  // reference would have left. Intermediate rekeys only permute the heap's
  // internal layout, which no query observes.
  const RefOracle& index = oracle_;
  for (TracePos p = pos; p < to; ++p) {
    if (!prefetch_pending_.empty() && prefetch_pending_.erase(trace_.block(p))) {
      // The skipped reference consumes a landed prefetch, exactly as the
      // per-reference loop would have.
      ++prefetch_useful_;
    }
    const TracePos next = index.NextUseAfterPosition(p);
    if (next >= to) {
      cache_.UpdateNextUse(trace_.block(p), next);
    }
  }
  const DurNs skipped{compute_prefix_[static_cast<size_t>(to.v())] -
                      compute_prefix_[static_cast<size_t>(pos.v())]};
  compute_total_ += skipped;
  app_time_ += skipped + pending_driver_;
  pending_driver_ = DurNs{0};
  return to;
}

RunResult Simulator::Run() {
  PFC_CHECK_MSG(!ran_, "Simulator::Run is single-shot");
  ran_ = true;

  policy_->Init(*this);

  // Outage windows are scheduled up front as first-class events: they get
  // the smallest sequence numbers, so at their timestamp they apply before
  // any disk completion, and their presence in the queue naturally caps
  // fast-forward runs at the window boundary.
  const FaultConfig& fc = config_.faults;
  if (fc.outage_disk >= DiskId{0} && fc.outage_disk.v() < config_.num_disks &&
      fc.outage_end > fc.outage_start) {
    events_.push(Event{fc.outage_start, next_seq_++, fc.outage_disk, kNoBlock, DurNs{0},
                       DurNs{0}, false, EventKind::kDiskDown});
    events_.push(Event{fc.outage_end, next_seq_++, fc.outage_disk, kNoBlock, DurNs{0},
                       DurNs{0}, false, EventKind::kDiskUp});
  }

  const RefOracle& index = oracle_;
  const int64_t n = trace_.size();
  // Hit-run fast-forwarding is off whenever a sink is installed: skipped
  // references would emit no events, and observability demands the full
  // reference-by-reference stream. It is also off under hint corruption,
  // online prediction, and a bounded oracle window — a bounded lookahead
  // makes Hinted() (and the bounded oracle's every answer)
  // cursor-dependent, so a skipped OnReference could have disclosed new
  // positions and the quiescence precomputation would no longer be exact.
  ff_enabled_ = config_.fast_forward && sink_ == nullptr && !config_.hint_fault.enabled() &&
                !config_.predictor.enabled() && !config_.oracle_bounded() &&
                policy_->SupportsFastForward();
  if (ff_enabled_) {
    compute_prefix_.resize(static_cast<size_t>(n) + 1);
    compute_prefix_[0] = 0;
    for (int64_t i = 0; i < n; ++i) {
      compute_prefix_[static_cast<size_t>(i) + 1] =
          compute_prefix_[static_cast<size_t>(i)] + ScaledCompute(TracePos{i}).ns();
    }
  }
  for (TracePos pos{0}; pos.v() < n; ++pos) {
    cursor_ = pos;
    // A declined attempt is pure overhead (the hit scan and the policy's
    // quiescence check both walk ahead of the cursor), and declines are
    // sticky — miss-heavy and event-dense phases decline every reference,
    // and aggressive-style policies decline whenever a disk has work (i.e.
    // almost always). Uncapped exponential backoff bounds a run's declined
    // attempts at O(log n) between successes, so a policy that never
    // quiesces pays for only a handful of probes; a successful skip resets
    // the schedule. Attempts never affect results, so the backoff is a pure
    // performance knob.
    if (ff_enabled_ && down_disks_ == 0 && cache_.dirty_count() == 0 && pos >= ff_next_try_) {
      const TracePos resume = FastForward(pos);
      if (resume > pos) {
        ff_backoff_ = 0;
        pos = resume - 1;  // ++pos serves `resume` as a normal reference
        continue;
      }
      ff_backoff_ = ff_backoff_ * 2 + 1;
      ff_next_try_ = pos + ff_backoff_;
    }
    DrainEventsUpTo(app_time_);
    policy_->OnReference(*this, pos);
    // Write-behind: clean dirty buffers on idle disks, and keep the dirty
    // population below the high-water mark on busy ones.
    if (cache_.dirty_count() > 0) {
      for (DiskId d{0}; d.v() < config_.num_disks; ++d) {
        MaybeFlush(d);
      }
    }

    const BlockId block = trace_.block(pos);
    if (!prefetch_pending_.empty() && prefetch_pending_.erase(block)) {
      // The reference consumes the block: the prefetch that brought it in
      // paid off (and is no longer a candidate "unused" fetch).
      ++prefetch_useful_;
      if (sink_ != nullptr) {
        EmitInstant(ObsEventKind::kPrefetchUseful, placement_->Map(block).disk, block);
      }
    }
    if (trace_.is_write(pos)) {
      ServeWrite(pos, block);
      // Write-through only: a policy prefetch issued while ServeWrite waited
      // out the flush may have evicted the freshly cleaned buffer. The write
      // is already durable, so the buffer need not survive the reference.
      if (cache_.Present(block)) {
        cache_.UpdateNextUse(block, index.NextUseAfterPosition(pos));
      }
      DurNs compute = ScaledCompute(pos);
      compute_total_ += compute;
      app_time_ += compute + pending_driver_;
      pending_driver_ = DurNs{0};
      continue;
    }
    if (!cache_.Present(block)) {
      waiting_block_ = block;
      if (sink_ != nullptr) {
        // Initial cause; DemandFetch upgrades it to kNoBuffer if the fetch
        // itself has to wait for a buffer. kStallEnd's cause is authoritative.
        BeginStallWindow(block, cache_.Fetching(block) ? StallCause::kFetchInFlight
                                                       : StallCause::kColdMiss);
      }
      if (!cache_.Fetching(block)) {
        DemandFetch(block);
      }
      const TimeNs wait_start = app_time_;
      while (!cache_.Present(block)) {
        if (cache_.GetState(block) == BufferCache::State::kAbsent) {
          // A policy callback evicted the block while we waited; demand it
          // again rather than livelock.
          DemandFetch(block);
          continue;
        }
        ApplyNextEvent();
      }
      waiting_block_ = kNoBlock;
      EndStall(block, wait_start);
    }

    // Consume the reference: reindex the block under its next use and burn
    // the inter-reference compute time plus any accrued driver overhead.
    cache_.UpdateNextUse(block, index.NextUseAfterPosition(pos));
    DurNs compute = ScaledCompute(pos);
    compute_total_ += compute;
    app_time_ += compute + pending_driver_;
    pending_driver_ = DurNs{0};
  }

  // Reconcile the prefetch ledger at end of trace: a fetch still in flight
  // never filled (it joins the failed bucket), and a filled block never
  // referenced was useless. After this both balances hold with the
  // in-flight/pending terms zero. No events are emitted here — the run is
  // over; the ObsReport cross-check accounts for the difference.
  prefetch_failed_ += static_cast<int64_t>(prefetch_inflight_.size());
  prefetch_useless_ += static_cast<int64_t>(prefetch_pending_.size());
  prefetch_inflight_.clear();
  prefetch_pending_.clear();

  RunResult result;
  result.trace_name = trace_.name();
  result.policy_name = policy_->name();
  result.num_disks = config_.num_disks;
  result.fetches = fetches_;
  result.demand_fetches = demand_fetches_;
  result.write_refs = write_refs_;
  result.flushes = flushes_;
  result.dirty_at_end = cache_.dirty_count();
  result.retries = retries_;
  result.failed_requests = failed_requests_;
  result.prefetch_issued = prefetch_issued_;
  result.prefetch_filled = prefetch_filled_;
  result.prefetch_failed = prefetch_failed_;
  result.prefetch_useful = prefetch_useful_;
  result.prefetch_useless = prefetch_useless_;
  result.prefetch_late = prefetch_late_;
  result.compute_time = compute_total_;
  result.driver_time = driver_total_;
  result.stall_time = stall_total_;
  result.elapsed_time = app_time_ - TimeNs{0};
  result.degraded_stall_ns = degraded_stall_;
  result.outage_stall_ns = outage_stall_;

  int64_t completed = 0;
  double sum_service = 0;
  double sum_response = 0;
  double util_sum = 0;
  for (DiskId i{0}; i.v() < disks_->num_disks(); ++i) {
    const DiskStats& s = disks_->disk(i).stats();
    completed += s.requests;
    sum_service += s.sum_service_ms;
    sum_response += s.sum_response_ms;
    double util = app_time_ > TimeNs{0}
                      ? static_cast<double>(s.busy_ns.ns()) / static_cast<double>(app_time_.ns())
                      : 0.0;
    result.per_disk_util.push_back(util);
    util_sum += util;
  }
  if (completed > 0) {
    result.avg_fetch_ms = sum_service / static_cast<double>(completed);
    result.avg_response_ms = sum_response / static_cast<double>(completed);
  }
  result.avg_disk_util = util_sum / static_cast<double>(disks_->num_disks());
  if (collector_ != nullptr) {
    // Finish self-checks the attribution and utilization invariants against
    // the result it is attached to.
    result.obs = collector_->Finish(result);
  }
  if (config_.paranoid) {
    AuditResult(result);
  }
  return result;
}

void Simulator::AuditInvariants() const {
  // Cache internals: table/heap cross-links, bounds, and counters.
  std::string cache_violation = cache_.AuditViolation();
  if (!cache_violation.empty()) {
    throw SimError::Invariant("cache-consistency", cache_violation);
  }
  // Stall-bucket partial sums: the attributed shares can never exceed the
  // total, and each bucket is monotone non-negative by construction.
  if (degraded_stall_ + outage_stall_ > stall_total_) {
    throw SimError::Invariant(
        "stall-partial-sums",
        "degraded " + std::to_string(degraded_stall_.ns()) + " ns + outage " +
            std::to_string(outage_stall_.ns()) + " ns exceed stall total " +
            std::to_string(stall_total_.ns()) + " ns");
  }
  // Outage bookkeeping: the down-disk counter must agree with the fault
  // layer's time-based view at every event boundary (the kDiskDown/kDiskUp
  // events carry the smallest sequence numbers, so they apply first at
  // their timestamp).
  int down = 0;
  for (DiskId d{0}; d.v() < config_.num_disks; ++d) {
    if (disks_->disk(d).Down(sim_now_)) {
      ++down;
    }
  }
  if (down != down_disks_) {
    throw SimError::Invariant(
        "down-disk-count", "engine counts " + std::to_string(down_disks_) +
                               " down disks but the fault layer reports " + std::to_string(down) +
                               " at t=" + std::to_string(sim_now_.ns()) + " ns");
  }
  // Dirty accounting: every dirty buffer is either flushable (indexed under
  // its disk) or in flight, never both, never neither.
  size_t flushable = 0;
  for (const FlatSet& dirty : dirty_by_disk_) {
    flushable += dirty.size();
  }
  if (static_cast<int64_t>(flushable + flush_in_flight_.size()) !=
      static_cast<int64_t>(cache_.dirty_count())) {
    throw SimError::Invariant(
        "dirty-accounting",
        "cache reports " + std::to_string(cache_.dirty_count()) + " dirty blocks but " +
            std::to_string(flushable) + " are flushable and " +
            std::to_string(flush_in_flight_.size()) + " in flight");
  }
  int outstanding = 0;
  for (int per_disk : flush_outstanding_) {
    outstanding += per_disk;
  }
  if (outstanding != static_cast<int>(flush_in_flight_.size())) {
    throw SimError::Invariant(
        "flush-outstanding",
        "per-disk outstanding flush counters sum to " + std::to_string(outstanding) + " but " +
            std::to_string(flush_in_flight_.size()) + " flushes are in flight");
  }
  // Prefetch ledger balances: every issued prefetch is filled, failed, or
  // still in flight; every filled prefetch is useful, useless, late, or
  // still awaiting its reference.
  if (prefetch_issued_ != prefetch_filled_ + prefetch_failed_ +
                              static_cast<int64_t>(prefetch_inflight_.size()) ||
      prefetch_filled_ != prefetch_useful_ + prefetch_useless_ + prefetch_late_ +
                              static_cast<int64_t>(prefetch_pending_.size())) {
    throw SimError::Invariant(
        "prefetch-balance",
        "issued " + std::to_string(prefetch_issued_) + " != filled " +
            std::to_string(prefetch_filled_) + " + failed " + std::to_string(prefetch_failed_) +
            " + inflight " + std::to_string(prefetch_inflight_.size()) + ", or filled != useful " +
            std::to_string(prefetch_useful_) + " + useless " + std::to_string(prefetch_useless_) +
            " + late " + std::to_string(prefetch_late_) + " + pending " +
            std::to_string(prefetch_pending_.size()));
  }
}

void Simulator::AuditResult(const RunResult& result) const {
  // Time-bar decomposition: every elapsed nanosecond is compute, driver
  // overhead, or stall. Driver overhead accrues at issue time but is only
  // charged to the app clock when the next reference consumes it, so any
  // overhead accrued by the run's final events is still pending.
  if (result.compute_time + result.driver_time + result.stall_time !=
      result.elapsed_time + pending_driver_) {
    throw SimError::Invariant(
        "time-bar-decomposition",
        "compute " + std::to_string(result.compute_time.ns()) + " ns + driver " +
            std::to_string(result.driver_time.ns()) + " ns + stall " +
            std::to_string(result.stall_time.ns()) + " ns != elapsed " +
            std::to_string(result.elapsed_time.ns()) + " ns + pending driver " +
            std::to_string(pending_driver_.ns()) + " ns");
  }
  // Fetch-count bounds: every read request is a demand fetch or a prefetch.
  // DemandFetch bumps demand_fetches_ before it can discover the block is
  // already in flight (or a buffer wait made the fetch moot), so demand
  // attempts bound issued reads from above; retries re-issue an existing
  // request and bump neither side.
  if (result.fetches < result.prefetch_issued ||
      result.fetches > result.demand_fetches + result.prefetch_issued) {
    throw SimError::Invariant(
        "fetch-split", "fetches " + std::to_string(result.fetches) + " outside [prefetch " +
                           std::to_string(result.prefetch_issued) + ", demand attempts " +
                           std::to_string(result.demand_fetches) + " + prefetch " +
                           std::to_string(result.prefetch_issued) + "]");
  }
  // Range checks on the remaining counters: monotone accumulators can never
  // go negative, and the dirty population is capped by the cache itself.
  const struct {
    const char* name;
    int64_t value;
  } non_negative[] = {
      {"write_refs", result.write_refs},   {"flushes", result.flushes},
      {"retries", result.retries},         {"failed_requests", result.failed_requests},
      {"dirty_at_end", result.dirty_at_end},
  };
  for (const auto& counter : non_negative) {
    if (counter.value < 0) {
      throw SimError::Invariant(
          "counter-range",
          std::string(counter.name) + " is negative: " + std::to_string(counter.value));
    }
  }
  if (result.dirty_at_end > config_.cache_blocks) {
    throw SimError::Invariant("counter-range",
                              "dirty_at_end " + std::to_string(result.dirty_at_end) +
                                  " exceeds cache_blocks " +
                                  std::to_string(config_.cache_blocks));
  }
}

}  // namespace pfc
