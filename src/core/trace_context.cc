#include "core/trace_context.h"

#include <map>
#include <mutex>
#include <tuple>

#include "util/check.h"
#include "util/rng.h"

namespace pfc {

namespace {

std::vector<bool> BuildHintMask(const Trace& trace, double hint_coverage, uint64_t hint_seed) {
  PFC_CHECK(hint_coverage >= 0.0 && hint_coverage <= 1.0);
  if (hint_coverage >= 1.0) {
    return {};
  }
  Rng rng(SplitMix64(hint_seed) ^ 0x4117ED5ULL);
  std::vector<bool> mask(static_cast<size_t>(trace.size()));
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng.UniformDouble() < hint_coverage;
  }
  return mask;
}

}  // namespace

TraceContext::TraceContext(const Trace& trace, double hint_coverage, uint64_t hint_seed)
    : trace_(trace),
      hint_coverage_(hint_coverage),
      hint_seed_(hint_seed),
      hinted_(BuildHintMask(trace, hint_coverage, hint_seed)),
      index_(trace, hinted_) {}

uint64_t TraceFingerprint(const Trace& trace) {
  // FNV-1a over the name, length and every entry.
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  for (char c : trace.name()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  mix(static_cast<uint64_t>(trace.size()));
  for (const TraceEntry& e : trace.entries()) {
    mix(static_cast<uint64_t>(e.block.v()));
    mix(static_cast<uint64_t>(e.compute.ns()));
    mix(e.is_write ? 0x9E3779B97F4A7C15ULL : 0x2545F4914F6CDD1DULL);
  }
  return h;
}

namespace {

// Key: trace identity (address + content fingerprint + size) plus the hint
// parameters. The fingerprint guards against a freed trace's address being
// recycled for a different trace: address and content must both match, and
// if they do, whatever lives at that address now is the same trace.
using ContextKey = std::tuple<const Trace*, uint64_t, int64_t, double, uint64_t>;

struct ContextCache {
  std::mutex mu;
  // Process-wide registry touched once per (trace, hints) pair under a
  // mutex — nowhere near the per-reference hot path.
  std::map<ContextKey, std::shared_ptr<const TraceContext>> entries;  // NOLINT(pfc-hot-structure)
};

ContextCache& GlobalContextCache() {
  static ContextCache* cache = new ContextCache();
  return *cache;
}

}  // namespace

std::shared_ptr<const TraceContext> SharedTraceContext(const Trace& trace, double hint_coverage,
                                                       uint64_t hint_seed) {
  // An empty mask is built for any coverage >= 1.0; normalize so 1.0 and
  // copies of it share an entry.
  if (hint_coverage >= 1.0) {
    hint_coverage = 1.0;
  }
  ContextKey key{&trace, TraceFingerprint(trace), trace.size(), hint_coverage, hint_seed};
  ContextCache& cache = GlobalContextCache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      return it->second;
    }
  }
  // Build outside the lock: construction is the expensive part and other
  // keys should not serialize behind it. A racing builder for the same key
  // is harmless — construction is deterministic — and the first insert wins.
  auto built = std::make_shared<const TraceContext>(trace, hint_coverage, hint_seed);
  std::lock_guard<std::mutex> lock(cache.mu);
  auto [it, inserted] = cache.entries.emplace(key, std::move(built));
  return it->second;
}

void ClearTraceContextCache() {
  ContextCache& cache = GlobalContextCache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
}

}  // namespace pfc
