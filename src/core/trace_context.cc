#include "core/trace_context.h"

#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "predict/hint_stream.h"
#include "util/check.h"
#include "util/rng.h"

namespace pfc {

namespace {

std::vector<bool> BuildHintMask(const Trace& trace, double hint_coverage, uint64_t hint_seed) {
  PFC_CHECK(hint_coverage >= 0.0 && hint_coverage <= 1.0);
  if (hint_coverage >= 1.0) {
    return {};
  }
  Rng rng(SplitMix64(hint_seed) ^ 0x4117ED5ULL);
  std::vector<bool> mask(static_cast<size_t>(trace.size()));
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng.UniformDouble() < hint_coverage;
  }
  return mask;
}

// The corrupted hint stream: per-position block claims, deterministic in
// hint_seed. Wrong-block substitution first (each position independently
// lies with probability wrong_block_rate, claiming the block of a uniformly
// drawn trace reference), then a seeded Fisher-Yates shuffle within disjoint
// reorder_window-sized windows. Stale lookahead is dynamic in the cursor and
// lives in the engines' Hinted(), not here.
std::vector<BlockId> BuildHintClaims(const Trace& trace, const HintFault& fault,
                                     uint64_t hint_seed) {
  if (fault.wrong_block_rate <= 0.0 && fault.reorder_window <= 1) {
    return {};
  }
  const int64_t n = trace.size();
  std::vector<BlockId> claims;
  claims.reserve(static_cast<size_t>(n));
  for (TracePos p{0}; p.v() < n; ++p) {
    claims.push_back(trace.block(p));
  }
  if (fault.wrong_block_rate > 0.0) {
    Rng rng(SplitMix64(hint_seed) ^ 0xB10CFA17ULL);
    for (int64_t i = 0; i < n; ++i) {
      if (rng.UniformDouble() < fault.wrong_block_rate) {
        claims[static_cast<size_t>(i)] = trace.block(TracePos{rng.UniformInt(0, n - 1)});
      }
    }
  }
  if (fault.reorder_window > 1) {
    Rng rng(SplitMix64(hint_seed) ^ 0x5EAFF1E0ULL);
    for (int64_t base = 0; base < n; base += fault.reorder_window) {
      const int64_t end = std::min(base + fault.reorder_window, n);
      for (int64_t i = end - 1; i > base; --i) {
        const int64_t j = rng.UniformInt(base, i);
        std::swap(claims[static_cast<size_t>(i)], claims[static_cast<size_t>(j)]);
      }
    }
  }
  return claims;
}

// True for the kinds that learn a claim stream online (as opposed to the
// trace-derived oracle and the claim-free hintless mode).
bool LearningKind(PredictorKind kind) {
  return kind == PredictorKind::kSequential || kind == PredictorKind::kMarkov ||
         kind == PredictorKind::kTemporal;
}

// Selects the (hinted, claims) source for the tuple: predictor stream,
// hintless blankout, or the oracle path (coverage thinning + corruption).
std::pair<std::vector<bool>, std::vector<BlockId>> BuildStreams(const Trace& trace,
                                                                double hint_coverage,
                                                                uint64_t hint_seed,
                                                                const HintFault& hint_fault,
                                                                const PredictorConfig& predictor) {
  if (predictor.kind == PredictorKind::kNone) {
    // Hintless: nothing disclosed, nothing claimed. An all-false mask (not
    // an empty one — empty means "everything hinted") so this is the same
    // representation hint_coverage == 0 builds.
    return {std::vector<bool>(static_cast<size_t>(trace.size()), false), {}};
  }
  if (LearningKind(predictor.kind)) {
    PredictedHints predicted = BuildPredictedHints(trace, predictor);
    return {std::move(predicted.hinted), std::move(predicted.claims)};
  }
  return {BuildHintMask(trace, hint_coverage, hint_seed),
          BuildHintClaims(trace, hint_fault, hint_seed)};
}

// The mask the next-reference index is built from. Learning predictors keep
// the index truthful (empty mask = full knowledge): the claims-vs-truth
// split gives replacement real future knowledge while prefetch planning
// sees only the predictor's claims. Everything else — oracle thinning and
// the hintless mode — discloses exactly the hinted positions.
const std::vector<bool>& IndexMask(const PredictorConfig& predictor,
                                   const std::vector<bool>& hinted) {
  static const std::vector<bool>* truthful = new std::vector<bool>();
  return LearningKind(predictor.kind) ? *truthful : hinted;
}

}  // namespace

TraceContext::TraceContext(const Trace& trace, double hint_coverage, uint64_t hint_seed,
                           const HintFault& hint_fault, const PredictorConfig& predictor)
    : TraceContext(trace, hint_coverage, hint_seed, hint_fault, predictor,
                   BuildStreams(trace, hint_coverage, hint_seed, hint_fault, predictor)) {}

TraceContext::TraceContext(const Trace& trace, double hint_coverage, uint64_t hint_seed,
                           const HintFault& hint_fault, const PredictorConfig& predictor,
                           std::pair<std::vector<bool>, std::vector<BlockId>>&& streams)
    : trace_(trace),
      hint_coverage_(hint_coverage),
      hint_seed_(hint_seed),
      hint_fault_(hint_fault),
      predictor_(predictor),
      hinted_(std::move(streams.first)),
      claims_(std::move(streams.second)),
      index_(trace, IndexMask(predictor_, hinted_)) {}

uint64_t TraceFingerprint(const Trace& trace) {
  // FNV-1a over the name, length and every entry.
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  for (char c : trace.name()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  mix(static_cast<uint64_t>(trace.size()));
  // Indexed access, not entries(): the fingerprint must work for streaming
  // traces too (one sequential pass — the window cache's best case).
  for (TracePos i{0}; i.v() < trace.size(); ++i) {
    const TraceEntry& e = trace.entry(i);
    mix(static_cast<uint64_t>(e.block.v()));
    mix(static_cast<uint64_t>(e.compute.ns()));
    mix(e.is_write ? 0x9E3779B97F4A7C15ULL : 0x2545F4914F6CDD1DULL);
  }
  return h;
}

namespace {

// Key: trace identity (address + content fingerprint + size) plus the hint
// parameters, including the corruption knobs. The fingerprint guards
// against a freed trace's address being recycled for a different trace:
// address and content must both match, and if they do, whatever lives at
// that address now is the same trace.
using ContextKey = std::tuple<const Trace*, uint64_t, int64_t, double, uint64_t, double, int64_t,
                              int64_t, int, int64_t>;

struct ContextCache {
  std::mutex mu;
  // Process-wide registry touched once per (trace, hints) pair under a
  // mutex — nowhere near the per-reference hot path.
  std::map<ContextKey, std::shared_ptr<const TraceContext>> entries;  // NOLINT(pfc-hot-structure)
};

ContextCache& GlobalContextCache() {
  static ContextCache* cache = new ContextCache();
  return *cache;
}

}  // namespace

std::shared_ptr<const TraceContext> SharedTraceContext(const Trace& trace, double hint_coverage,
                                                       uint64_t hint_seed,
                                                       const HintFault& hint_fault,
                                                       const PredictorConfig& predictor) {
  // An empty mask is built for any coverage >= 1.0; normalize so 1.0 and
  // copies of it share an entry.
  if (hint_coverage >= 1.0) {
    hint_coverage = 1.0;
  }
  ContextKey key{&trace,
                 TraceFingerprint(trace),
                 trace.size(),
                 hint_coverage,
                 hint_seed,
                 hint_fault.wrong_block_rate,
                 hint_fault.reorder_window,
                 hint_fault.stale_lookahead,
                 static_cast<int>(predictor.kind),
                 predictor.lookahead};
  ContextCache& cache = GlobalContextCache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      return it->second;
    }
  }
  // Build outside the lock: construction is the expensive part and other
  // keys should not serialize behind it. A racing builder for the same key
  // is harmless — construction is deterministic — and the first insert wins.
  auto built = std::make_shared<const TraceContext>(trace, hint_coverage, hint_seed, hint_fault,
                                                    predictor);
  std::lock_guard<std::mutex> lock(cache.mu);
  auto [it, inserted] = cache.entries.emplace(key, std::move(built));
  return it->second;
}

void ClearTraceContextCache() {
  ContextCache& cache = GlobalContextCache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
}

}  // namespace pfc
