// Next-reference index: the "full advance knowledge" oracle.
//
// Every studied policy assumes the application disclosed its entire read
// sequence (section 2.1). NextRefIndex answers the two queries they all
// need: "when is block b next used at or after position p?" (for optimal
// fetching and do-no-harm) and "when is position i's block referenced next?"
// (for optimal replacement bookkeeping).

#ifndef PFC_CORE_NEXT_REF_H_
#define PFC_CORE_NEXT_REF_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.h"

namespace pfc {

class NextRefIndex {
 public:
  // Position meaning "never referenced (again)". Orders after every real
  // position.
  static constexpr TracePos kNoRef{INT64_MAX / 4};
  // "No earlier use" sentinel for PrevUseAt. Orders before every position.
  static constexpr TracePos kNoPrevRef{-1};

  explicit NextRefIndex(const Trace& trace);

  // Partial-knowledge oracle: only positions with hinted[i] == true are
  // disclosed. Queries answer with respect to hinted references only, so an
  // unhinted future use is invisible — the block looks dead and its
  // reference arrives as a surprise miss. This models the paper's
  // "incomplete hints" discussion (section 6).
  NextRefIndex(const Trace& trace, const std::vector<bool>& hinted);

  // Smallest position p' >= p with trace.block(p') == block; kNoRef if none.
  TracePos NextUseAt(BlockId block, TracePos p) const;

  // Next position after i referencing the same block as position i.
  TracePos NextUseAfterPosition(TracePos i) const;

  // Largest position p' <= p with trace.block(p') == block; kNoPrevRef if
  // none. Reverse aggressive's schedule transform needs this.
  TracePos PrevUseAt(BlockId block, TracePos p) const;

  // First position at which `block` is referenced; kNoRef if never.
  TracePos FirstUse(BlockId block) const;

  bool Known(BlockId block) const { return positions_.count(block) > 0; }

  int64_t trace_size() const { return static_cast<int64_t>(next_after_.size()); }

 private:
  std::unordered_map<BlockId, std::vector<TracePos>> positions_;
  std::vector<TracePos> next_after_;
};

}  // namespace pfc

#endif  // PFC_CORE_NEXT_REF_H_
