// The discrete-event simulation engine.
//
// The engine interleaves two timelines: the application, which consumes one
// reference after another (hit => advance by the trace's inter-reference
// compute time; miss => stall until the block arrives), and the disks, which
// service their queues one request at a time. Every issued I/O charges the
// driver overhead to the application clock, so elapsed time decomposes
// exactly as compute + driver + stall — the three bars of the paper's
// figures.
//
// The engine owns the mechanics (cache semantics, disk queues, events,
// stall accounting); the Policy decides what to fetch and what to evict.
//
// Fault handling: when the fault layer (disk/fault_model.h) fails a request,
// the engine retries it with exponential backoff — each retry charged to the
// simulated clock like any issue — up to SimConfig::faults.max_retries. A
// request that exhausts its retries is permanently failed: an abandoned
// write-back is dropped (simulated data loss), an abandoned prefetch is
// cancelled and the policy notified (OnFetchFailed), and a block the
// application is stalled on is synthesized after the recovery penalty so the
// run always completes. The stall time attributable to faults is reported
// separately (RunResult::degraded_stall_ns) without changing the
// compute+driver+stall decomposition.
//
// Concurrency: a Simulator is strictly single-threaded, but its read-only
// inputs (Trace, TraceContext) may be shared by many simulators running on
// different threads — see harness/runner.h.

#ifndef PFC_CORE_SIMULATOR_H_
#define PFC_CORE_SIMULATOR_H_

#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/buffer_cache.h"
#include "core/engine.h"
#include "core/next_ref.h"
#include "core/policy.h"
#include "core/ref_oracle.h"
#include "core/run_result.h"
#include "core/sim_config.h"
#include "core/sim_error.h"
#include "core/trace_context.h"
#include "disk/disk_array.h"
#include "layout/placement.h"
#include "obs/event_sink.h"
#include "trace/trace.h"
#include "util/arena.h"
#include "util/flat_set.h"

namespace pfc {

class ObsCollector;

// `final` keeps the per-reference loop devirtualizable: every cache and
// engine query inside Run() resolves to a concrete member call.
class Simulator final : public Engine {
 public:
  // Builds a private TraceContext for this run. `trace` and `policy` must
  // outlive the simulator. Throws SimError if `config` is invalid.
  Simulator(const Trace& trace, const SimConfig& config, Policy* policy);

  // Borrows a pre-built (possibly shared) context; `context` must outlive
  // the simulator and must have been built with the same hint parameters as
  // `config`. This is the cheap constructor the experiment runner uses: the
  // oracle is built once per trace and read concurrently by every worker.
  Simulator(const TraceContext& context, const SimConfig& config, Policy* policy);

  // Same, but shares ownership of the context (see SharedTraceContext).
  Simulator(std::shared_ptr<const TraceContext> context, const SimConfig& config, Policy* policy);

  ~Simulator() override;

  // Runs the whole trace; callable once per Simulator instance. Throws
  // SimError if the run exceeds its event budget (see SimConfig::max_events).
  RunResult Run();

  // --- Observability --------------------------------------------------------
  //
  // With SimConfig::obs.collect set, the constructor installs an internal
  // ObsCollector and Run() attaches its report to RunResult::obs. A caller
  // may instead (not additionally) install an external sink before Run();
  // nullptr detaches. With no sink installed every emission site costs one
  // pointer test — the engine does no other observability work.
  void SetEventSink(EventSink* sink);

  // Lets policies drop custom markers (kPolicyMark) into the event stream.
  // `label` must outlive the sink's consumption of the event (string
  // literals are the intended use). No-op without a sink.
  void EmitMark(const char* label, int64_t value) override {
    if (sink_ != nullptr) {
      ObsEvent e;
      e.time = sim_now_;
      e.kind = ObsEventKind::kPolicyMark;
      e.a = value;
      e.label = label;
      sink_->OnEvent(e);
    }
  }

  // --- State queries for policies -----------------------------------------

  TimeNs now() const override { return sim_now_; }
  TracePos cursor() const override { return cursor_; }
  const Trace& trace() const override { return trace_; }
  const RefOracle& index() const override { return oracle_; }
  BufferCache& cache() { return cache_; }
  const BufferCache& cache() const override { return cache_; }
  const SimConfig& config() const override { return config_; }
  const DiskArray& disks() const { return *disks_; }
  BlockLocation Location(BlockId block) const override { return placement_->Map(block); }
  bool DiskIdle(DiskId d) const override { return disks_->disk(d).idle(); }
  // True once disk `d` has fail-stopped; prefetches to it are refused and
  // policies should plan around it.
  bool DiskFailed(DiskId d) const override { return disks_->disk(d).FailStopped(sim_now_); }
  // Unavailable right now: fail-stopped or inside an outage window.
  bool DiskDown(DiskId d) const override {
    const Disk& disk = disks_->disk(d);
    return disk.FailStopped(sim_now_) || disk.Down(sim_now_);
  }
  // Whether reference `pos` was disclosed to the prefetcher. Policies must
  // not act on undisclosed positions (the engine's demand path covers them).
  // With a bounded hint horizon (a stale-lookahead hint fault, an online
  // predictor, or a bounded oracle window), positions beyond it are
  // undisclosed until the cursor catches up.
  bool Hinted(TracePos pos) const override {
    if (config_.oracle_bounded() && pos >= cursor_ + config_.oracle_window) {
      return false;  // beyond the knowledge horizon [cursor, cursor + W)
    }
    const int64_t lookahead = config_.hint_lookahead();
    if (lookahead > 0 && pos > cursor_ + lookahead) {
      return false;
    }
    const std::vector<bool>& hinted = context_.hinted();
    return hinted.empty() || hinted[static_cast<size_t>(pos.v())];
  }
  bool FullyHinted() const override {
    return context_.hinted().empty() && !config_.hint_fault.enabled() &&
           !config_.predictor.enabled() && !config_.oracle_bounded();
  }
  // The block the (possibly lying) hint source claims for `pos`.
  BlockId HintedBlock(TracePos pos) const override {
    const std::vector<BlockId>& claims = context_.claims();
    return claims.empty() ? trace_.block(pos) : claims[static_cast<size_t>(pos.v())];
  }
  // Inter-reference compute time after position `pos`, with cpu_scale
  // applied.
  DurNs ScaledCompute(TracePos pos) const override;

  // --- Actions -------------------------------------------------------------

  // Issues a fetch for `block`, evicting `evict` (pass kNoEvict to take a
  // free buffer). Returns false — without side effects — if the request is
  // invalid: block not absent, eviction target not present, no free buffer
  // when one was requested, or the block's disk has fail-stopped (prefetches
  // to a dead disk are refused; only the engine's demand path may try one).
  bool IssueFetch(BlockId block, BlockId evict) override;

 private:
  enum class EventKind : uint8_t {
    kComplete,  // a disk finished (or errored) its in-service request
    kRetry,     // re-issue a failed request after its backoff
    kRecover,   // synthesize a permanently failed block the app waits on
    kDiskDown,  // a disk's outage window opens (scheduled at Run start)
    kDiskUp,    // a disk's outage window closes
  };

  struct Event {
    TimeNs time;
    uint64_t seq = 0;
    DiskId disk{0};
    BlockId block{0};
    DurNs service;  // actual service (kComplete) / penalty (kRecover)
    DurNs nominal;  // fault-free service time (kComplete only)
    bool failed = false;
    EventKind kind = EventKind::kComplete;
    // Why a kComplete failed — media error, fail-stop, or outage. The engine
    // branches on this: outage failures re-queue (the disk comes back),
    // everything else goes through the retry/abandon machinery.
    FaultKind fault = FaultKind::kNone;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  bool IssueFetchInternal(BlockId block, BlockId evict, bool demand);
  // Shared tail of the constructors: creates the internal collector when
  // config_.obs.collect is set and wires the sink into the cache and disks.
  void InitObs();
  void InstallSink(EventSink* sink);
  // Emission helpers; all are no-ops without a sink.
  void EmitInstant(ObsEventKind kind, DiskId disk, BlockId block, int64_t a = 0,
                   int64_t b = 0);
  void BeginStallWindow(BlockId block, StallCause cause);
  void TryDispatch(DiskId disk);
  // Pops and applies the next event; with SimConfig::paranoid set, audits
  // the engine invariants after every application.
  void ApplyNextEvent();
  void ApplyNextEventImpl();
  void HandleFailedRequest(const Event& ev);
  // A request failed because its disk is (or went) down: re-queue demand
  // fetches with bounded backoff, keep failed write-backs dirty, cancel
  // prefetches so the policy can re-plan after OnDiskUp.
  void HandleOutageFailure(const Event& ev);
  // Paranoid auditor (SimConfig::paranoid): walks the engine invariants and
  // throws SimError::Invariant naming the first violated one. Called after
  // every applied event.
  void AuditInvariants() const;
  // Paranoid end-of-run audit over the assembled RunResult: the time-bar
  // decomposition (compute + driver + stall == elapsed, modulo driver
  // overhead accrued but never consumed by a reference), the fetch-count
  // bounds against the demand/prefetch split, and range checks on the
  // remaining counters. Throws SimError::Invariant like AuditInvariants.
  void AuditResult(const RunResult& result) const;
  // Closes a stall window that began at `wait_start` (app clock) for
  // `block`: accounts stall time and attributes the fault-inflicted share.
  void EndStall(BlockId block, TimeNs wait_start);
  void DrainEventsUpTo(TimeNs t);
  void DemandFetch(BlockId block);
  // Hit-run fast-forwarding (SimConfig::fast_forward; DESIGN.md §5).
  // Called at the top of the per-reference loop when no dirty buffer is
  // pending. If references [pos, to) are provably all hits — present
  // blocks, no write, no disk event due before the run's last reference is
  // consumed — and the policy vouches it would take no action over the run
  // (Policy::QuiescentThrough), advances clocks, compute totals, and
  // replacement keys for the whole run at once and returns `to`; otherwise
  // returns `pos` and the loop simulates the reference normally. The
  // results are bit-identical either way.
  TracePos FastForward(TracePos pos);
  // Write extension.
  void ServeWrite(TracePos pos, BlockId block);
  void IssueFlush(BlockId block);
  void MaybeFlush(DiskId disk);
  // Issues one flush anywhere, to guarantee an all-dirty cache drains.
  bool ForceFlushForProgress();

  std::shared_ptr<const TraceContext> context_owner_;  // null when borrowed
  const TraceContext& context_;
  const Trace& trace_;
  SimConfig config_;
  Policy* policy_;
  // Window-bounded view over the shared NextRefIndex (core/ref_oracle.h);
  // reads cursor_ through a pointer so it tracks every advance. All of the
  // engine's own next-use queries go through it too, so a bounded window
  // bounds replacement knowledge exactly as it bounds hints.
  RefOracle oracle_{nullptr, -1, nullptr};

  // Per-job arena backing the run's grow-only arrays (cache table, eviction
  // heap, event queue storage, compute prefix sums). Declared before its
  // users so it outlives them; freed wholesale when the simulator dies,
  // keeping per-cell allocation churn off the global heap under the
  // experiment runner's thread pool.
  Arena arena_;
  BufferCache cache_;
  std::unique_ptr<Placement> placement_;
  std::unique_ptr<DiskArray> disks_;

  using EventVec = std::vector<Event, ArenaAllocator<Event>>;
  std::priority_queue<Event, EventVec, std::greater<Event>> events_{
      std::greater<Event>(), EventVec(ArenaAllocator<Event>(&arena_))};
  uint64_t next_seq_ = 0;

  TimeNs app_time_;          // application clock
  TimeNs sim_now_;           // instant at which actions are happening
  TracePos cursor_{0};       // next reference to serve
  DurNs pending_driver_;     // driver CPU accrued since the last consume

  int64_t fetches_ = 0;
  int64_t demand_fetches_ = 0;
  // Write extension state.
  int64_t write_refs_ = 0;
  int64_t flushes_ = 0;
  std::vector<FlatSet> dirty_by_disk_;   // flushable blocks per disk
  FlatSet flush_in_flight_;              // blocks being written back
  FlatSet redirty_pending_;              // written again mid-flush
  std::vector<int> flush_outstanding_;   // queued write-backs per disk
  // Fault state. All maps stay empty on healthy runs, so the fast path only
  // pays an emptiness test.
  BlockId waiting_block_ = kNoBlock;     // block the app is stalled on, if any
  std::unordered_map<BlockId, int> retry_attempts_;      // failures so far
  std::unordered_map<BlockId, DurNs> fault_delay_;       // fault-added latency
  // Outage state (disjoint from the media-error machinery above): outage
  // re-queues use their own attempt counter — the disk *will* come back, so
  // max_retries must not be exhausted by waiting one outage out — and their
  // added latency is banked separately so EndStall can carve the
  // StallCause::kOutage share before the media-error share.
  std::unordered_map<BlockId, int> outage_attempts_;
  std::unordered_map<BlockId, DurNs> outage_delay_;
  int down_disks_ = 0;                   // disks currently in an outage window
  int64_t retries_ = 0;
  int64_t failed_requests_ = 0;
  DurNs degraded_stall_;
  DurNs outage_stall_;
  int64_t events_processed_ = 0;
  int64_t event_budget_ = 0;             // watchdog; set in the constructor
  DurNs stall_total_;
  DurNs driver_total_;
  DurNs compute_total_;
  bool ran_ = false;
  // Fast-forward state (see FastForward above). compute_prefix_[i] is the
  // scaled compute consumed by references [0, i) in ns, so any run's compute
  // is one subtraction; built in Run() only when fast-forwarding is on.
  bool ff_enabled_ = false;
  std::vector<int64_t, ArenaAllocator<int64_t>> compute_prefix_{
      ArenaAllocator<int64_t>(&arena_)};
  // Hit-scan cache: positions in [cursor, ff_run_end_) were all verified
  // present while the cache's eviction epoch was ff_epoch_; a scan resumes
  // there instead of re-verifying the prefix on every call.
  TracePos ff_run_end_{0};
  int64_t ff_epoch_ = -1;
  // Declined-attempt backoff: after FastForward returns pos (no skip), the
  // next attempt waits ff_backoff_ references (doubling to 64); a
  // successful skip resets it. See the Run() loop comment.
  TracePos ff_next_try_{0};
  int64_t ff_backoff_ = 0;
  // Observability state. sink_ stays null for the simulator's lifetime
  // unless obs collection is configured or a sink is installed, so the hot
  // path pays exactly one branch per emission site. The remaining members
  // are only touched when sink_ is non-null.
  EventSink* sink_ = nullptr;
  std::unique_ptr<ObsCollector> collector_;  // owned internal sink, if any
  StallCause stall_cause_ = StallCause::kColdMiss;  // cause of the open window
  FlatSet demand_inflight_;  // in-flight fetches issued by the demand path
  // Prefetch-quality ledger (always on, sink or not — the counters are
  // first-class RunResult metrics). Lifecycle: issue inserts into
  // prefetch_inflight_; completion moves the block to filled (late if the
  // application was already stalled on it, else into prefetch_pending_);
  // cancellation moves it to failed. A pending block is classified useful
  // when its reference consumes it and useless when evicted first (which
  // also emits kPrefetchUnused when a sink is installed). End of run
  // reconciles: still in flight => failed, still pending => useless. The
  // paranoid auditor checks both balances after every event.
  FlatSet prefetch_inflight_;  // issued, not yet landed/failed
  FlatSet prefetch_pending_;   // landed, not yet referenced
  int64_t prefetch_issued_ = 0;
  int64_t prefetch_filled_ = 0;
  int64_t prefetch_failed_ = 0;
  int64_t prefetch_useful_ = 0;
  int64_t prefetch_useless_ = 0;
  int64_t prefetch_late_ = 0;
};

}  // namespace pfc

#endif  // PFC_CORE_SIMULATOR_H_
