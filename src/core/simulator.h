// The discrete-event simulation engine.
//
// The engine interleaves two timelines: the application, which consumes one
// reference after another (hit => advance by the trace's inter-reference
// compute time; miss => stall until the block arrives), and the disks, which
// service their queues one request at a time. Every issued I/O charges the
// driver overhead to the application clock, so elapsed time decomposes
// exactly as compute + driver + stall — the three bars of the paper's
// figures.
//
// The engine owns the mechanics (cache semantics, disk queues, events,
// stall accounting); the Policy decides what to fetch and what to evict.
//
// Concurrency: a Simulator is strictly single-threaded, but its read-only
// inputs (Trace, TraceContext) may be shared by many simulators running on
// different threads — see harness/runner.h.

#ifndef PFC_CORE_SIMULATOR_H_
#define PFC_CORE_SIMULATOR_H_

#include <memory>
#include <queue>
#include <vector>

#include "core/buffer_cache.h"
#include "core/next_ref.h"
#include "core/policy.h"
#include "core/run_result.h"
#include "core/sim_config.h"
#include "core/trace_context.h"
#include "disk/disk_array.h"
#include "layout/placement.h"
#include "trace/trace.h"
#include "util/flat_set.h"

namespace pfc {

class Simulator {
 public:
  // Builds a private TraceContext for this run. `trace` and `policy` must
  // outlive the simulator.
  Simulator(const Trace& trace, const SimConfig& config, Policy* policy);

  // Borrows a pre-built (possibly shared) context; `context` must outlive
  // the simulator and must have been built with the same hint parameters as
  // `config`. This is the cheap constructor the experiment runner uses: the
  // oracle is built once per trace and read concurrently by every worker.
  Simulator(const TraceContext& context, const SimConfig& config, Policy* policy);

  // Same, but shares ownership of the context (see SharedTraceContext).
  Simulator(std::shared_ptr<const TraceContext> context, const SimConfig& config, Policy* policy);

  // Runs the whole trace; callable once per Simulator instance.
  RunResult Run();

  // --- State queries for policies -----------------------------------------

  TimeNs now() const { return sim_now_; }
  int64_t cursor() const { return cursor_; }
  const Trace& trace() const { return trace_; }
  const NextRefIndex& index() const { return context_.index(); }
  BufferCache& cache() { return cache_; }
  const BufferCache& cache() const { return cache_; }
  const SimConfig& config() const { return config_; }
  const DiskArray& disks() const { return *disks_; }
  BlockLocation Location(int64_t block) const { return placement_->Map(block); }
  bool DiskIdle(int d) const { return disks_->disk(d).idle(); }
  // Whether reference `pos` was disclosed to the prefetcher. Policies must
  // not act on undisclosed positions (the engine's demand path covers them).
  bool Hinted(int64_t pos) const {
    const std::vector<bool>& hinted = context_.hinted();
    return hinted.empty() || hinted[static_cast<size_t>(pos)];
  }
  bool FullyHinted() const { return context_.hinted().empty(); }
  // Inter-reference compute time after position `pos`, with cpu_scale
  // applied.
  TimeNs ScaledCompute(int64_t pos) const;

  // --- Actions -------------------------------------------------------------

  // Issues a fetch for `block`, evicting `evict` (pass kNoEvict to take a
  // free buffer). Returns false — without side effects — if the request is
  // invalid: block not absent, eviction target not present, or no free
  // buffer when one was requested.
  static constexpr int64_t kNoEvict = -1;
  bool IssueFetch(int64_t block, int64_t evict);

 private:
  struct Event {
    TimeNs time = 0;
    uint64_t seq = 0;
    int disk = 0;
    int64_t block = 0;
    TimeNs service = 0;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  void TryDispatch(int disk);
  void ApplyNextEvent();
  void DrainEventsUpTo(TimeNs t);
  void DemandFetch(int64_t block);
  // Write extension.
  void ServeWrite(int64_t pos, int64_t block);
  void IssueFlush(int64_t block);
  void MaybeFlush(int disk);
  // Issues one flush anywhere, to guarantee an all-dirty cache drains.
  bool ForceFlushForProgress();

  std::shared_ptr<const TraceContext> context_owner_;  // null when borrowed
  const TraceContext& context_;
  const Trace& trace_;
  SimConfig config_;
  Policy* policy_;

  BufferCache cache_;
  std::unique_ptr<Placement> placement_;
  std::unique_ptr<DiskArray> disks_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  uint64_t next_seq_ = 0;

  TimeNs app_time_ = 0;       // application clock
  TimeNs sim_now_ = 0;        // instant at which actions are happening
  int64_t cursor_ = 0;        // next reference to serve
  TimeNs pending_driver_ = 0; // driver CPU accrued since the last consume

  int64_t fetches_ = 0;
  int64_t demand_fetches_ = 0;
  // Write extension state.
  int64_t write_refs_ = 0;
  int64_t flushes_ = 0;
  std::vector<FlatSet> dirty_by_disk_;   // flushable blocks per disk
  FlatSet flush_in_flight_;              // blocks being written back
  FlatSet redirty_pending_;              // written again mid-flush
  std::vector<int> flush_outstanding_;   // queued write-backs per disk
  TimeNs stall_total_ = 0;
  TimeNs driver_total_ = 0;
  TimeNs compute_total_ = 0;
  bool ran_ = false;
};

}  // namespace pfc

#endif  // PFC_CORE_SIMULATOR_H_
