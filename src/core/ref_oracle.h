// RefOracle: the engine's (possibly bounded) view of next-use knowledge.
//
// The paper's policies assume the application disclosed its entire read
// sequence, which NextRefIndex materializes. Real hint sources — streaming
// trace readers, online predictors, applications that disclose in batches —
// only know a bounded distance past the consumption point. RefOracle is the
// interface every engine-side consumer (Simulator, RefSim, MissingTracker,
// the policies via Engine::index()) programs against: exact answers within
// the visibility window, kNoRef beyond it.
//
// Window semantics (SimConfig::oracle_window):
//   * window < 0  — unbounded: every query forwards to the full index
//     untouched, bit-identical to the historical behavior.
//   * window = W >= 0 — positions in [cursor, cursor + W) are visible; any
//     answer at or past cursor + W is reported as kNoRef ("never referenced
//     again, as far as anyone knows"). W = 0 discloses nothing: every block
//     looks dead, reproducing the hintless oracle state exactly.
//
// The wrapper is a per-engine adapter over the shared immutable
// NextRefIndex: the index can stay memoized across runs and threads
// (TraceContext) while each engine's oracle tracks that engine's cursor.
// Answers therefore *shrink* as a query position recedes past the horizon
// and *grow* as the cursor advances — exactly how a streaming reader's
// knowledge evolves. The full index is still built today (one sequential
// pass, so a streaming trace never needs to be resident); the interface no
// longer promises whole-future knowledge, which is what lets a future
// incremental builder slot in without touching any consumer.

#ifndef PFC_CORE_REF_ORACLE_H_
#define PFC_CORE_REF_ORACLE_H_

#include <cstdint>

#include "core/next_ref.h"
#include "util/strong_types.h"

namespace pfc {

class RefOracle {
 public:
  // Shared sentinels (same values as NextRefIndex's, so policy code that
  // compares against NextRefIndex::kNoRef keeps meaning the same thing).
  static constexpr TracePos kNoRef = NextRefIndex::kNoRef;
  static constexpr TracePos kNoPrevRef = NextRefIndex::kNoPrevRef;

  // `index` must outlive the oracle. `cursor` points at the owning engine's
  // cursor (the engine is single-threaded; the oracle reads it on every
  // bounded query so a cursor advance is visible immediately, with no
  // synchronization call to forget).
  RefOracle(const NextRefIndex* index, int64_t window, const TracePos* cursor)
      : index_(index), window_(window), cursor_(cursor) {}

  bool bounded() const { return window_ >= 0; }
  int64_t window() const { return window_; }

  // One past the last visible position. Only meaningful when bounded().
  TracePos horizon() const { return *cursor_ + window_; }

  // Smallest visible position p' >= p with trace.block(p') == block;
  // kNoRef if none (or if the true answer lies beyond the horizon).
  TracePos NextUseAt(BlockId block, TracePos p) const {
    return Clamp(index_->NextUseAt(block, p));
  }

  // Next visible position after i referencing the same block as position i.
  TracePos NextUseAfterPosition(TracePos i) const {
    return Clamp(index_->NextUseAfterPosition(i));
  }

  // Largest position p' <= p with trace.block(p') == block; kNoPrevRef if
  // none. The past is always fully known (it has been observed), but a
  // bounded oracle cannot be probed past its horizon — the query point is
  // clamped to the last visible position.
  TracePos PrevUseAt(BlockId block, TracePos p) const {
    if (bounded() && p >= horizon()) {
      const TracePos last = horizon() - 1;
      if (last < TracePos{0}) {
        return kNoPrevRef;
      }
      p = last;
    }
    return index_->PrevUseAt(block, p);
  }

  // First visible position at which `block` is referenced; kNoRef if never.
  TracePos FirstUse(BlockId block) const { return Clamp(index_->FirstUse(block)); }

  // Whether the oracle knows anything about `block`: anywhere in the trace
  // when unbounded, within [cursor, horizon) when bounded.
  bool Known(BlockId block) const {
    return bounded() ? NextUseAt(block, *cursor_) != kNoRef : index_->Known(block);
  }

  int64_t trace_size() const { return index_->trace_size(); }

 private:
  TracePos Clamp(TracePos p) const {
    return bounded() && p >= horizon() ? kNoRef : p;
  }

  const NextRefIndex* index_;
  int64_t window_;
  const TracePos* cursor_;
};

}  // namespace pfc

#endif  // PFC_CORE_REF_ORACLE_H_
