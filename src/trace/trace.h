// A file-access trace: the sequence of block reads issued by a single
// process, with the measured CPU time between consecutive reads.
//
// Block ids are logical filesystem block addresses (8 KB blocks); the
// layout module maps them onto the disk array. compute(i) is the CPU time
// the application spends after consuming reference i and before issuing
// reference i+1 (the paper's "inter-reference compute time").
//
// A Trace has two backings:
//   * in-memory (the default): entries live in a vector, mutators work,
//     and access is a plain array index;
//   * streaming (OpenPfctStreaming): entries page in from a .pfct file
//     through a PfctStream window cache, peak memory bounded by the file's
//     window size rather than trace length. A streaming trace is read-only
//     and single-threaded (the window cache mutates on read) — engines
//     replay it fine, but harness fan-out must materialize first.
// Both backings answer the same accessors with the same values, so
// everything downstream — generators' stats, the NextRefIndex build, the
// engines — is backing-agnostic.

#ifndef PFC_TRACE_TRACE_H_
#define PFC_TRACE_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/expected.h"
#include "util/time_util.h"

namespace pfc {

class PfctStream;

struct TraceEntry {
  BlockId block;
  DurNs compute;
  // Write extension (the paper studies reads only and names writes as future
  // work): a write overwrites the whole block — no data need be fetched —
  // and is absorbed by the write-behind buffer unless the simulation runs
  // write-through.
  bool is_write = false;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}
  Trace(Trace&&) = default;
  Trace& operator=(Trace&&) = default;
  Trace(const Trace&) = default;
  Trace& operator=(const Trace&) = default;

  // Opens `path` as a streaming trace backed by a PfctStream window cache.
  // The returned Trace reads records from the file on demand; see the class
  // comment for the read-only / single-threaded contract.
  static Expected<Trace> OpenPfctStreaming(const std::string& path);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // True when backed by a .pfct window cache instead of an entry vector.
  bool streaming() const { return stream_ != nullptr; }
  // The streaming backend, null for in-memory traces (ingestion stats).
  const PfctStream* stream() const { return stream_.get(); }

  int64_t size() const {
    return stream_ ? stream_size_ : static_cast<int64_t>(entries_.size());
  }
  bool empty() const { return size() == 0; }
  const TraceEntry& entry(TracePos i) const {
    return stream_ ? StreamEntry(i) : entries_[static_cast<size_t>(i.v())];
  }
  BlockId block(TracePos i) const { return entry(i).block; }
  DurNs compute(TracePos i) const { return entry(i).compute; }
  bool is_write(TracePos i) const { return entry(i).is_write; }

  void Append(BlockId block, DurNs compute);
  void AppendWrite(BlockId block, DurNs compute);
  // Overwrites the compute time of reference i (converters attach each
  // request's inter-arrival gap to the previous reference once it exists).
  void SetCompute(TracePos i, DurNs value);
  void Reserve(int64_t n) { entries_.reserve(static_cast<size_t>(n)); }
  // Number of write references.
  int64_t WriteCount() const;

  // Number of distinct blocks referenced.
  int64_t DistinctBlocks() const;

  // One past the largest block id (the logical address space in use).
  BlockId MaxBlock() const;

  // Sum of inter-reference compute times.
  DurNs TotalCompute() const;

  // Uniformly rescales compute times so TotalCompute() == target (used by
  // generators to hit the paper's Table 3 totals exactly).
  void RescaleCompute(DurNs target_total);

  // Multiplies every compute time by `factor` (e.g. 0.5 models a CPU twice
  // as fast, the paper's section 4.4 experiment).
  void ScaleCompute(double factor);

  // The reversed reference sequence (compute times reversed alongside);
  // input to reverse aggressive's schedule-construction pass. Always
  // returns an in-memory trace.
  Trace Reversed() const;

  // A prefix of the first n references (for quick tests). Always returns an
  // in-memory trace.
  Trace Prefix(int64_t n) const;

  // Fully materializes a streaming trace into an in-memory one (identity
  // copy for in-memory traces) — the bridge back for code that needs
  // mutation or thread-shared access.
  Trace Materialize() const;

  // In-memory backing only (callers wanting backing-agnostic iteration use
  // the indexed accessors).
  const std::vector<TraceEntry>& entries() const;

 private:
  // Out-of-line slow path: one PfctStream::Entry call (trace.cc), kept out
  // of the header so trace.h need not see the stream's definition.
  const TraceEntry& StreamEntry(TracePos i) const;
  void CheckMutable() const;

  std::string name_;
  std::vector<TraceEntry> entries_;
  // Streaming backing; shared_ptr so Trace stays copyable (copies share the
  // window cache — fine under the single-threaded contract).
  std::shared_ptr<PfctStream> stream_;
  int64_t stream_size_ = 0;
};

}  // namespace pfc

#endif  // PFC_TRACE_TRACE_H_
