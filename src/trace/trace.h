// A file-access trace: the sequence of block reads issued by a single
// process, with the measured CPU time between consecutive reads.
//
// Block ids are logical filesystem block addresses (8 KB blocks); the
// layout module maps them onto the disk array. compute(i) is the CPU time
// the application spends after consuming reference i and before issuing
// reference i+1 (the paper's "inter-reference compute time").

#ifndef PFC_TRACE_TRACE_H_
#define PFC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/time_util.h"

namespace pfc {

struct TraceEntry {
  BlockId block;
  DurNs compute;
  // Write extension (the paper studies reads only and names writes as future
  // work): a write overwrites the whole block — no data need be fetched —
  // and is absorbed by the write-behind buffer unless the simulation runs
  // write-through.
  bool is_write = false;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  bool empty() const { return entries_.empty(); }
  const TraceEntry& entry(TracePos i) const { return entries_[static_cast<size_t>(i.v())]; }
  BlockId block(TracePos i) const { return entries_[static_cast<size_t>(i.v())].block; }
  DurNs compute(TracePos i) const { return entries_[static_cast<size_t>(i.v())].compute; }

  void Append(BlockId block, DurNs compute);
  void AppendWrite(BlockId block, DurNs compute);
  void Reserve(int64_t n) { entries_.reserve(static_cast<size_t>(n)); }
  bool is_write(TracePos i) const { return entries_[static_cast<size_t>(i.v())].is_write; }
  // Number of write references.
  int64_t WriteCount() const;

  // Number of distinct blocks referenced.
  int64_t DistinctBlocks() const;

  // One past the largest block id (the logical address space in use).
  BlockId MaxBlock() const;

  // Sum of inter-reference compute times.
  DurNs TotalCompute() const;

  // Uniformly rescales compute times so TotalCompute() == target (used by
  // generators to hit the paper's Table 3 totals exactly).
  void RescaleCompute(DurNs target_total);

  // Multiplies every compute time by `factor` (e.g. 0.5 models a CPU twice
  // as fast, the paper's section 4.4 experiment).
  void ScaleCompute(double factor);

  // The reversed reference sequence (compute times reversed alongside);
  // input to reverse aggressive's schedule-construction pass.
  Trace Reversed() const;

  // A prefix of the first n references (for quick tests).
  Trace Prefix(int64_t n) const;

  const std::vector<TraceEntry>& entries() const { return entries_; }

 private:
  std::string name_;
  std::vector<TraceEntry> entries_;
};

}  // namespace pfc

#endif  // PFC_TRACE_TRACE_H_
