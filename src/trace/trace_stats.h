// Summary statistics of a trace — the data behind the paper's Table 3,
// plus pattern diagnostics (sequentiality, reuse) used by the examples.

#ifndef PFC_TRACE_TRACE_STATS_H_
#define PFC_TRACE_TRACE_STATS_H_

#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace pfc {

struct TraceStats {
  std::string name;
  int64_t reads = 0;
  int64_t distinct_blocks = 0;
  double compute_sec = 0;
  double mean_compute_ms = 0;
  double sequential_fraction = 0;  // fraction of references to (previous block + 1)
  double reuse_fraction = 0;       // fraction of references to previously seen blocks
  int64_t max_block = 0;           // logical address space in use
};

TraceStats ComputeTraceStats(const Trace& trace);

// One-line human-readable rendering.
std::string ToString(const TraceStats& stats);

}  // namespace pfc

#endif  // PFC_TRACE_TRACE_STATS_H_
