#include "trace/file_layout.h"

#include <algorithm>

#include "util/check.h"

namespace pfc {

FileLayout::FileLayout(Rng* rng) : rng_(rng) { PFC_CHECK(rng != nullptr); }

BlockId FileLayout::AddFile(int64_t blocks) {
  PFC_CHECK(blocks > 0);
  // Start at a random offset within a fresh allocation group, leaving room
  // so a small file fits in its group; large files spill into the following
  // groups, which are reserved for this file.
  int64_t max_offset = blocks >= kGroupBlocks ? 0 : kGroupBlocks - blocks;
  int64_t offset = max_offset > 0 ? rng_->UniformInt(0, max_offset) : 0;
  int64_t base = next_group_ * kGroupBlocks + offset;
  int64_t groups_used = (offset + blocks + kGroupBlocks - 1) / kGroupBlocks;
  next_group_ += groups_used;
  base_.push_back(base);
  blocks_.push_back(blocks);
  scattered_.emplace_back();
  return BlockId{base};
}

int FileLayout::AddFragmentedFile(int64_t blocks, int64_t extent_blocks) {
  PFC_CHECK(blocks > 0);
  PFC_CHECK(extent_blocks > 0);
  const int64_t group_base = next_group_ * kGroupBlocks;
  const int64_t groups_used = (blocks + kGroupBlocks - 1) / kGroupBlocks;
  next_group_ += groups_used;
  const int64_t span = groups_used * kGroupBlocks;

  // Shuffle the extent slots of the reserved span and assign the file's
  // extents to the first however-many of them.
  const int64_t slots = span / extent_blocks;
  std::vector<int64_t> order(static_cast<size_t>(slots));
  for (int64_t i = 0; i < slots; ++i) {
    order[static_cast<size_t>(i)] = i;
  }
  for (size_t i = order.size(); i > 1; --i) {
    size_t j = rng_->UniformU32(static_cast<uint32_t>(i));
    std::swap(order[i - 1], order[j]);
  }

  std::vector<int64_t> addresses;
  addresses.reserve(static_cast<size_t>(blocks));
  int64_t emitted = 0;
  for (int64_t slot = 0; emitted < blocks; ++slot) {
    PFC_CHECK(slot < slots);
    int64_t extent_base = group_base + order[static_cast<size_t>(slot)] * extent_blocks;
    for (int64_t i = 0; i < extent_blocks && emitted < blocks; ++i, ++emitted) {
      addresses.push_back(extent_base + i);
    }
  }

  base_.push_back(-1);
  blocks_.push_back(blocks);
  scattered_.push_back(std::move(addresses));
  return num_files() - 1;
}

BlockId FileLayout::FileBase(int file_id) const {
  PFC_CHECK(file_id >= 0 && file_id < num_files());
  PFC_CHECK(base_[static_cast<size_t>(file_id)] >= 0);
  return BlockId{base_[static_cast<size_t>(file_id)]};
}

int64_t FileLayout::FileBlocks(int file_id) const {
  PFC_CHECK(file_id >= 0 && file_id < num_files());
  return blocks_[static_cast<size_t>(file_id)];
}

BlockId FileLayout::BlockAddress(int file_id, int64_t offset) const {
  PFC_CHECK(file_id >= 0 && file_id < num_files());
  PFC_CHECK(offset >= 0 && offset < blocks_[static_cast<size_t>(file_id)]);
  if (base_[static_cast<size_t>(file_id)] >= 0) {
    return BlockId{base_[static_cast<size_t>(file_id)] + offset};
  }
  return BlockId{scattered_[static_cast<size_t>(file_id)][static_cast<size_t>(offset)]};
}

}  // namespace pfc
