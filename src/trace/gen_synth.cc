// synth: the paper's synthetic trace — 50 passes through a loop of 2000
// sequential blocks, compute times Poisson-distributed with a 1 ms mean
// (section 3.1). Blocks are logical filesystem block numbers used directly
// (no per-file randomization), so striping spreads consecutive references
// perfectly across the array.

#include "trace/gen_common.h"
#include "trace/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace pfc {

Trace MakeSynth(uint64_t seed) {
  const TraceSpec& spec = *FindTraceSpec("synth");
  Rng rng(SplitMix64(seed) ^ 0x5E9717ULL);

  Trace trace(spec.name);
  trace.Reserve(spec.paper_reads);
  const int64_t loop = spec.paper_distinct;  // 2000
  for (int64_t i = 0; i < spec.paper_reads; ++i) {
    trace.Append(BlockId{i % loop}, DurNs{0});
  }
  PFC_CHECK(trace.size() == spec.paper_reads);

  FillComputeExponential(&trace, 1.0, spec.paper_compute_sec, &rng);
  return trace;
}

}  // namespace pfc
