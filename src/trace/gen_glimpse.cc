// glimpse: University of Arizona text retrieval over a 40 MB news snapshot.
// Section 3.1: "the index files are accessed repeatedly, whereas the data
// files are accessed infrequently." Four keyword queries; each re-reads the
// approximate indexes and then visits short runs in the data files.
//
// Reconstruction: a 1200-block index region (it fits in the 1280-block
// cache, so repeated index passes mostly hit — the paper's fixed horizon
// issues only 6493 fetches for 27981 reads) read sequentially several times
// per query, interleaved with short scattered runs in the data files. Some
// data runs are re-read immediately (hits); every data block is eventually
// touched. Totals match Table 3 exactly: 27981 reads, 5247 distinct
// (1200 index + 4047 data).

#include <algorithm>
#include <vector>

#include "trace/file_layout.h"
#include "trace/gen_common.h"
#include "trace/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace pfc {

Trace MakeGlimpse(uint64_t seed) {
  const TraceSpec& spec = *FindTraceSpec("glimpse");
  Rng rng(SplitMix64(seed) ^ 0x6115937EULL);

  constexpr int kQueries = 4;
  constexpr int kIndexPassesPerQuery = 4;
  // Slightly larger than the 1280-block cache: the repeated index passes
  // mostly hit but leak a steady trickle of misses, matching the paper's
  // 6493 fetches (~1250 above the distinct count). Those misses are cheap
  // sequential reads, which pulls the average fetch time down toward the
  // paper's 13.4 ms despite the expensive scattered data reads.
  constexpr int64_t kIndexBlocks = 1340;
  const int64_t data_blocks = spec.paper_distinct - kIndexBlocks;  // 3907
  const int64_t index_reads = kQueries * kIndexPassesPerQuery * kIndexBlocks;  // 21440
  const int64_t data_reads = spec.paper_reads - index_reads;  // 6541

  FileLayout layout(&rng);
  // A handful of index files followed by many data files.
  constexpr int kIndexFiles = 5;
  constexpr int kDataFiles = 220;
  std::vector<int64_t> index_sizes = RandomPartition(kIndexBlocks, kIndexFiles, 16, &rng);
  for (int64_t s : index_sizes) {
    layout.AddFile(s);
  }
  std::vector<int64_t> data_sizes = RandomPartition(data_blocks, kDataFiles, 4, &rng);
  for (int64_t s : data_sizes) {
    layout.AddFile(s);
  }

  // The data visits are single scattered blocks (glimpse jumps straight to
  // the lines its approximate index flagged), each possibly re-read a few
  // times immediately (cache hits). Scattered single-block reads are what
  // give the paper its 13.4 ms average fetch time on this trace.
  struct Run {
    int file;
    int64_t offset;
    int64_t length;
  };
  std::vector<Run> runs;
  for (int f = 0; f < kDataFiles; ++f) {
    int64_t file_blocks = layout.FileBlocks(kIndexFiles + f);
    for (int64_t off = 0; off < file_blocks; ++off) {
      runs.push_back(Run{kIndexFiles + f, off, 1});
    }
  }
  Shuffle(&runs, &rng);

  Trace trace(spec.name);
  trace.Reserve(spec.paper_reads);
  auto emit_run = [&](const Run& run, int64_t cap) {
    int64_t take = std::min(run.length, cap);
    for (int64_t i = 0; i < take; ++i) {
      trace.Append(layout.BlockAddress(run.file, run.offset + i), DurNs{0});
    }
    return take;
  };

  size_t next_fresh_run = 0;
  int64_t data_emitted = 0;
  for (int q = 0; q < kQueries; ++q) {
    for (int pass = 0; pass < kIndexPassesPerQuery; ++pass) {
      for (int f = 0; f < kIndexFiles; ++f) {
        for (int64_t off = 0; off < layout.FileBlocks(f); ++off) {
          trace.Append(layout.BlockAddress(f, off), DurNs{0});
        }
      }
    }
    int64_t query_budget = data_reads * (q + 1) / kQueries - data_emitted;
    while (query_budget > 0) {
      const Run& run = next_fresh_run < runs.size()
                           ? runs[next_fresh_run++]
                           : runs[rng.UniformU32(static_cast<uint32_t>(runs.size()))];
      int64_t took = emit_run(run, query_budget);
      query_budget -= took;
      data_emitted += took;
      // Matched blocks are re-read geometrically (display, context lines):
      // expected visits ~1.67, which makes the read/distinct budget come out
      // exactly.
      while (query_budget > 0 && rng.UniformDouble() < 0.40) {
        took = emit_run(run, query_budget);
        query_budget -= took;
        data_emitted += took;
      }
    }
  }
  PFC_CHECK(trace.size() == spec.paper_reads);

  FillComputeExponential(&trace, 1.38, spec.paper_compute_sec, &rng);
  return trace;
}

}  // namespace pfc
