#include "trace/pfct_stream.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/sim_error.h"
#include "util/check.h"

namespace pfc {

Expected<std::unique_ptr<PfctStream>> PfctStream::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Expected<std::unique_ptr<PfctStream>>::Failure(
        path + ": cannot open trace file: " + std::strerror(errno));
  }
  Expected<PfctHeader> header = ReadPfctHeader(f, path);
  if (!header.ok()) {
    std::fclose(f);
    return Expected<std::unique_ptr<PfctStream>>::Failure(header.error());
  }
  auto stream = std::unique_ptr<PfctStream>(
      new PfctStream(f, path, header.take()));
  // Pull the whole checksum index up front (8 bytes per window — a 1 TB
  // trace at default windowing carries an 8 MB index; real traces far less).
  const PfctHeader& h = stream->header_;
  if (h.window_records > 0) {
    std::vector<uint8_t> raw(static_cast<size_t>(h.WindowCount()) * 8);
    if (std::fseek(f, static_cast<long>(h.index_offset), SEEK_SET) != 0 ||  // NOLINT(runtime/int)
        std::fread(raw.data(), 1, raw.size(), f) != raw.size()) {
      return Expected<std::unique_ptr<PfctStream>>::Failure(
          path + ": cannot read window index");
    }
    stream->window_sums_.resize(static_cast<size_t>(h.WindowCount()));
    for (size_t i = 0; i < stream->window_sums_.size(); ++i) {
      uint64_t v = 0;
      for (int b = 0; b < 8; ++b) {
        v |= static_cast<uint64_t>(raw[i * 8 + static_cast<size_t>(b)]) << (8 * b);
      }
      stream->window_sums_[i] = v;
    }
    stream->window_verified_.assign(stream->window_sums_.size(), false);
  }
  return stream;
}

PfctStream::PfctStream(std::FILE* f, std::string path, PfctHeader header)
    : file_(f),
      path_(std::move(path)),
      header_(std::move(header)),
      window_records_(header_.window_records > 0 ? header_.window_records
                                                 : kPfctDefaultWindowRecords),
      slots_(static_cast<size_t>(kCacheSlots)),
      io_buf_(static_cast<size_t>(window_records_ * kPfctRecordBytes)) {}

PfctStream::~PfctStream() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

const TraceEntry& PfctStream::Entry(int64_t i) {
  PFC_CHECK(i >= 0 && i < header_.record_count);
  ++stats_.entry_reads;
  const int64_t w = i / window_records_;
  const int64_t off = i % window_records_;
  // Fast path: the window is resident.
  for (Slot& s : slots_) {
    if (s.window == w) {
      s.last_use = ++tick_;
      return s.entries[static_cast<size_t>(off)];
    }
  }
  Slot& s = LoadWindow(w);
  return s.entries[static_cast<size_t>(off)];
}

PfctStream::Slot& PfctStream::LoadWindow(int64_t w) {
  // Take the first empty slot, else evict the least recently used.
  size_t victim = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].window < 0) {
      victim = i;
      break;
    }
    if (slots_[i].last_use < slots_[victim].last_use) {
      victim = i;
    }
  }
  Slot& s = slots_[victim];
  const bool first_touch = w >= static_cast<int64_t>(loaded_once_.size()) ||
                           !loaded_once_[static_cast<size_t>(w)];

  const int64_t base = w * window_records_;
  const int64_t n = std::min(window_records_, header_.record_count - base);
  const size_t bytes = static_cast<size_t>(n * kPfctRecordBytes);
  const int64_t file_off = header_.records_offset + base * kPfctRecordBytes;
  if (std::fseek(file_, static_cast<long>(file_off), SEEK_SET) != 0 ||  // NOLINT(runtime/int)
      std::fread(io_buf_.data(), 1, bytes, file_) != bytes) {
    throw SimError(path_ + ": read error at record " + std::to_string(base) +
                   " (window " + std::to_string(w) + ")");
  }
  if (!window_sums_.empty() && !window_verified_[static_cast<size_t>(w)]) {
    const uint64_t sum = PfctChecksum(io_buf_.data(), bytes, 0);
    if (sum != window_sums_[static_cast<size_t>(w)]) {
      throw SimError(path_ + ": window " + std::to_string(w) +
                     " checksum mismatch (records " + std::to_string(base) +
                     ".." + std::to_string(base + n - 1) + " corrupt)");
    }
    window_verified_[static_cast<size_t>(w)] = true;
  }

  s.entries.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Expected<TraceEntry> e = DecodePfctRecord(io_buf_.data() + i * kPfctRecordBytes);
    if (!e.ok()) {
      s.window = -1;  // do not leave a half-decoded window resident
      throw SimError(path_ + ": record " + std::to_string(base + i) + ": " +
                     e.error());
    }
    s.entries[static_cast<size_t>(i)] = e.value();
  }
  s.window = w;
  s.last_use = ++tick_;

  ++stats_.window_loads;
  if (first_touch) {
    ++stats_.distinct_windows;
    if (w >= static_cast<int64_t>(loaded_once_.size())) {
      loaded_once_.resize(static_cast<size_t>(w) + 1, false);
    }
    loaded_once_[static_cast<size_t>(w)] = true;
  }
  int64_t resident = 0;
  for (const Slot& slot : slots_) {
    resident += static_cast<int64_t>(slot.entries.size()) *
                static_cast<int64_t>(sizeof(TraceEntry));
  }
  stats_.peak_resident_bytes = std::max(stats_.peak_resident_bytes, resident);
  return s;
}

}  // namespace pfc
