#include "trace/pfct.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <vector>

#include "trace/trace_io.h"

namespace pfc {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

// Largest representable compute time: bit 63 of the compute word is kept
// clear so a sign-flipped word is always detectable, and 2^62 ns is ~146
// years of compute between two references — unreachable by any real trace.
constexpr int64_t kMaxPfctCompute = int64_t{1} << 62;

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

int64_t PadTo16(int64_t n) { return (n + 15) & ~int64_t{15}; }

bool IsPowerOfTwo(int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

std::string Fail(const std::string& path, const std::string& msg) {
  return path + ": " + msg;
}

// File size via seek; -1 on failure. The header's field consistency is
// checked against this so a truncated file is rejected at open, before any
// record is trusted.
int64_t FileSize(std::FILE* f) {
  const long pos = std::ftell(f);  // NOLINT(runtime/int) ftell API
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    return -1;
  }
  const long end = std::ftell(f);  // NOLINT(runtime/int) ftell API
  if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) {
    return -1;
  }
  return static_cast<int64_t>(end);
}

}  // namespace

uint64_t PfctChecksum(const uint8_t* data, size_t n, uint64_t seed) {
  uint64_t h = seed == 0 ? kFnvOffset : seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

int64_t PfctHeader::WindowCount() const {
  if (window_records <= 0) {
    return 0;
  }
  return (record_count + window_records - 1) / window_records;
}

void EncodePfctRecord(const TraceEntry& e, uint8_t* out) {
  uint64_t word0 = static_cast<uint64_t>(e.block.v());
  if (e.is_write) {
    word0 |= uint64_t{1} << 63;
  }
  PutU64(out, word0);
  PutU64(out + 8, static_cast<uint64_t>(e.compute.ns()));
}

Expected<TraceEntry> DecodePfctRecord(const uint8_t* rec) {
  const uint64_t word0 = GetU64(rec);
  const uint64_t word1 = GetU64(rec + 8);
  const bool is_write = (word0 >> 63) != 0;
  const uint64_t block = word0 & ~(uint64_t{1} << 63);
  if (block >= static_cast<uint64_t>(kMaxTraceBlock)) {
    return Expected<TraceEntry>::Failure(
        "block number " + std::to_string(block) + " out of range [0, 2^40)");
  }
  if (word1 >= static_cast<uint64_t>(kMaxPfctCompute)) {
    return Expected<TraceEntry>::Failure(
        "compute time " + std::to_string(word1) + " out of range [0, 2^62)");
  }
  TraceEntry e;
  e.block = BlockId{static_cast<int64_t>(block)};
  e.compute = DurNs{static_cast<int64_t>(word1)};
  e.is_write = is_write;
  return e;
}

Expected<bool> SavePfct(const Trace& trace, const std::string& path,
                        int64_t window_records) {
  if (window_records < 0 || (window_records > 0 && !IsPowerOfTwo(window_records))) {
    return Expected<bool>::Failure(
        Fail(path, "window_records must be 0 or a power of two, got " +
                       std::to_string(window_records)));
  }
  if (trace.size() == 0) {
    return Expected<bool>::Failure(
        Fail(path, "refusing to write an empty trace (pfct requires >= 1 record)"));
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Expected<bool>::Failure(
        Fail(path, std::string("cannot open for writing: ") + std::strerror(errno)));
  }

  const int64_t name_len = static_cast<int64_t>(trace.name().size());
  const int64_t records_offset = kPfctHeaderBytes + PadTo16(name_len);
  const int64_t records_bytes = trace.size() * kPfctRecordBytes;
  const int64_t index_offset =
      window_records > 0 ? records_offset + records_bytes : 0;

  uint8_t header[kPfctHeaderBytes] = {0};
  std::memcpy(header, kPfctMagic, 4);
  PutU32(header + 4, kPfctVersion);
  PutU64(header + 8, static_cast<uint64_t>(trace.size()));
  PutU64(header + 16, static_cast<uint64_t>(records_offset));
  PutU64(header + 24, static_cast<uint64_t>(window_records));
  PutU64(header + 32, static_cast<uint64_t>(index_offset));
  PutU64(header + 40, static_cast<uint64_t>(name_len));
  PutU64(header + 48, PfctChecksum(header, 48, 0));
  // header[56..64) stays zero (reserved).

  bool ok = std::fwrite(header, 1, sizeof(header), f) == sizeof(header);
  if (ok && name_len > 0) {
    ok = std::fwrite(trace.name().data(), 1, static_cast<size_t>(name_len), f) ==
         static_cast<size_t>(name_len);
    const int64_t pad = PadTo16(name_len) - name_len;
    const uint8_t zeros[16] = {0};
    if (ok && pad > 0) {
      ok = std::fwrite(zeros, 1, static_cast<size_t>(pad), f) ==
           static_cast<size_t>(pad);
    }
  }

  // Records, buffered a window at a time; window checksums accumulate as we
  // go so the file is written in one forward pass.
  std::vector<uint64_t> window_sums;
  const int64_t chunk = window_records > 0 ? window_records : kPfctDefaultWindowRecords;
  std::vector<uint8_t> buf(static_cast<size_t>(chunk * kPfctRecordBytes));
  for (int64_t base = 0; ok && base < trace.size(); base += chunk) {
    const int64_t n = std::min(chunk, trace.size() - base);
    for (int64_t i = 0; i < n; ++i) {
      EncodePfctRecord(trace.entry(TracePos{base + i}),
                       buf.data() + i * kPfctRecordBytes);
    }
    const size_t bytes = static_cast<size_t>(n * kPfctRecordBytes);
    if (window_records > 0) {
      window_sums.push_back(PfctChecksum(buf.data(), bytes, 0));
    }
    ok = std::fwrite(buf.data(), 1, bytes, f) == bytes;
  }

  if (ok && window_records > 0) {
    std::vector<uint8_t> index(window_sums.size() * 8);
    for (size_t i = 0; i < window_sums.size(); ++i) {
      PutU64(index.data() + i * 8, window_sums[i]);
    }
    ok = std::fwrite(index.data(), 1, index.size(), f) == index.size();
  }

  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    return Expected<bool>::Failure(Fail(path, "write error (disk full?)"));
  }
  return true;
}

Expected<PfctHeader> ReadPfctHeader(std::FILE* f, const std::string& path) {
  const int64_t file_size = FileSize(f);
  if (file_size < 0) {
    return Expected<PfctHeader>::Failure(Fail(path, "cannot determine file size"));
  }
  uint8_t header[kPfctHeaderBytes];
  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    return Expected<PfctHeader>::Failure(
        Fail(path, "truncated header: file is " + std::to_string(file_size) +
                       " bytes, pfct needs at least 64"));
  }
  if (std::memcmp(header, kPfctMagic, 4) != 0) {
    return Expected<PfctHeader>::Failure(
        Fail(path, "bad magic (not a pfct file)"));
  }
  const uint32_t version = GetU32(header + 4);
  if (version != kPfctVersion) {
    return Expected<PfctHeader>::Failure(
        Fail(path, "unsupported pfct version " + std::to_string(version) +
                       " (this build reads version 1)"));
  }
  const uint64_t declared_sum = GetU64(header + 48);
  const uint64_t actual_sum = PfctChecksum(header, 48, 0);
  if (declared_sum != actual_sum) {
    return Expected<PfctHeader>::Failure(Fail(path, "header checksum mismatch"));
  }
  if (GetU64(header + 56) != 0) {
    return Expected<PfctHeader>::Failure(
        Fail(path, "reserved header field is nonzero"));
  }

  PfctHeader h;
  const uint64_t record_count = GetU64(header + 8);
  const uint64_t records_offset = GetU64(header + 16);
  const uint64_t window_records = GetU64(header + 24);
  const uint64_t index_offset = GetU64(header + 32);
  const uint64_t name_len = GetU64(header + 40);
  // Bound every field before mixing them in arithmetic, so a hostile header
  // cannot overflow the consistency checks below.
  const uint64_t kSane = uint64_t{1} << 56;
  if (record_count == 0) {
    return Expected<PfctHeader>::Failure(
        Fail(path, "zero-record trace (pfct requires >= 1 record)"));
  }
  if (record_count >= kSane || records_offset >= kSane || index_offset >= kSane ||
      name_len >= kSane || window_records >= kSane) {
    return Expected<PfctHeader>::Failure(Fail(path, "absurd header field"));
  }
  if (window_records > 0 && !IsPowerOfTwo(static_cast<int64_t>(window_records))) {
    return Expected<PfctHeader>::Failure(
        Fail(path, "window_records " + std::to_string(window_records) +
                       " is not a power of two"));
  }
  if ((window_records == 0) != (index_offset == 0)) {
    return Expected<PfctHeader>::Failure(
        Fail(path, "window_records and index_offset disagree about indexing"));
  }
  const int64_t expected_records_offset =
      kPfctHeaderBytes + PadTo16(static_cast<int64_t>(name_len));
  if (static_cast<int64_t>(records_offset) != expected_records_offset) {
    return Expected<PfctHeader>::Failure(
        Fail(path, "records_offset " + std::to_string(records_offset) +
                       " does not match header + padded name (" +
                       std::to_string(expected_records_offset) + ")"));
  }
  const int64_t records_end = static_cast<int64_t>(records_offset) +
                              static_cast<int64_t>(record_count) * kPfctRecordBytes;
  h.record_count = static_cast<int64_t>(record_count);
  h.records_offset = static_cast<int64_t>(records_offset);
  h.window_records = static_cast<int64_t>(window_records);
  h.index_offset = static_cast<int64_t>(index_offset);
  int64_t expected_size = records_end;
  if (h.window_records > 0) {
    if (h.index_offset != records_end) {
      return Expected<PfctHeader>::Failure(
          Fail(path, "index_offset does not follow the record array"));
    }
    expected_size = records_end + h.WindowCount() * 8;
  }
  if (file_size != expected_size) {
    return Expected<PfctHeader>::Failure(
        Fail(path, "file is " + std::to_string(file_size) +
                       " bytes but the header describes " +
                       std::to_string(expected_size) +
                       (file_size < expected_size ? " (truncated?)" : " (trailing garbage?)")));
  }

  if (name_len > 0) {
    std::string name(static_cast<size_t>(name_len), '\0');
    if (std::fread(name.data(), 1, name.size(), f) != name.size()) {
      return Expected<PfctHeader>::Failure(Fail(path, "truncated name field"));
    }
    h.name = std::move(name);
  }
  return h;
}

Expected<Trace> LoadPfctChecked(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Expected<Trace>::Failure(
        Fail(path, std::string("cannot open trace file: ") + std::strerror(errno)));
  }
  Expected<PfctHeader> header = ReadPfctHeader(f, path);
  if (!header.ok()) {
    std::fclose(f);
    return Expected<Trace>::Failure(header.error());
  }
  const PfctHeader& h = header.value();

  // Pull the index first (when present) so each record window can be
  // verified as it streams past.
  std::vector<uint64_t> window_sums;
  if (h.window_records > 0) {
    std::vector<uint8_t> raw(static_cast<size_t>(h.WindowCount()) * 8);
    if (std::fseek(f, static_cast<long>(h.index_offset), SEEK_SET) != 0 ||  // NOLINT(runtime/int)
        std::fread(raw.data(), 1, raw.size(), f) != raw.size()) {
      std::fclose(f);
      return Expected<Trace>::Failure(Fail(path, "cannot read window index"));
    }
    window_sums.resize(static_cast<size_t>(h.WindowCount()));
    for (size_t i = 0; i < window_sums.size(); ++i) {
      window_sums[i] = GetU64(raw.data() + i * 8);
    }
  }

  if (std::fseek(f, static_cast<long>(h.records_offset), SEEK_SET) != 0) {  // NOLINT(runtime/int)
    std::fclose(f);
    return Expected<Trace>::Failure(Fail(path, "cannot seek to records"));
  }
  Trace trace(h.name);
  trace.Reserve(h.record_count);
  const int64_t chunk = h.window_records > 0 ? h.window_records : kPfctDefaultWindowRecords;
  std::vector<uint8_t> buf(static_cast<size_t>(chunk * kPfctRecordBytes));
  for (int64_t base = 0; base < h.record_count; base += chunk) {
    const int64_t n = std::min(chunk, h.record_count - base);
    const size_t bytes = static_cast<size_t>(n * kPfctRecordBytes);
    if (std::fread(buf.data(), 1, bytes, f) != bytes) {
      std::fclose(f);
      return Expected<Trace>::Failure(
          Fail(path, "short read at record " + std::to_string(base)));
    }
    if (h.window_records > 0) {
      const uint64_t sum = PfctChecksum(buf.data(), bytes, 0);
      const size_t w = static_cast<size_t>(base / h.window_records);
      if (sum != window_sums[w]) {
        std::fclose(f);
        return Expected<Trace>::Failure(
            Fail(path, "window " + std::to_string(w) +
                           " checksum mismatch (records " + std::to_string(base) +
                           ".." + std::to_string(base + n - 1) + " corrupt)"));
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      Expected<TraceEntry> e = DecodePfctRecord(buf.data() + i * kPfctRecordBytes);
      if (!e.ok()) {
        std::fclose(f);
        return Expected<Trace>::Failure(
            Fail(path, "record " + std::to_string(base + i) + ": " + e.error()));
      }
      if (e.value().is_write) {
        trace.AppendWrite(e.value().block, e.value().compute);
      } else {
        trace.Append(e.value().block, e.value().compute);
      }
    }
  }
  std::fclose(f);
  return trace;
}

bool LooksLikePfct(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char magic[4] = {0};
  const bool got = std::fread(magic, 1, 4, f) == 4;
  std::fclose(f);
  return got && std::memcmp(magic, kPfctMagic, 4) == 0;
}

}  // namespace pfc
