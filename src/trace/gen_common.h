// Shared helpers for trace generators (internal to src/trace).

#ifndef PFC_TRACE_GEN_COMMON_H_
#define PFC_TRACE_GEN_COMMON_H_

#include <cstdint>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"

namespace pfc {

// Assigns every entry an exponential compute time, then rescales so the
// trace total equals `total_sec` exactly.
void FillComputeExponential(Trace* trace, double mean_ms, double total_sec, Rng* rng);

// Assigns every entry a truncated-normal compute time (mean, cv * mean),
// then rescales to `total_sec`.
void FillComputeNormal(Trace* trace, double mean_ms, double cv, double total_sec, Rng* rng);

// Splits `total` into `parts` positive sizes with a random spread (each at
// least `min_size`). Deterministic given the RNG state.
std::vector<int64_t> RandomPartition(int64_t total, int parts, int64_t min_size, Rng* rng);

// Fisher-Yates shuffle.
template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    size_t j = rng->UniformU32(static_cast<uint32_t>(i));
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

}  // namespace pfc

#endif  // PFC_TRACE_GEN_COMMON_H_
