// Text serialization of traces so users can supply their own recordings.
//
// Format (one record per line, '#' comments allowed):
//   # pfc-trace v1 n=<records> name=<name>
//   <block> <compute_ns>[ W]
//   ...
//
// The `n=` record count is written by SaveTraceText and, when present,
// checked by the loader so a truncated file is reported as such. Files
// without it (hand-written traces) load fine.

#ifndef PFC_TRACE_TRACE_IO_H_
#define PFC_TRACE_TRACE_IO_H_

#include <optional>
#include <string>

#include "trace/trace.h"
#include "util/expected.h"

namespace pfc {

// Blocks above this bound are rejected as corrupt rather than simulated:
// 2^40 8 KB blocks is an 8 EB volume, far beyond any real trace, and a
// garbage block number would otherwise silently become a huge seek.
inline constexpr int64_t kMaxTraceBlock = int64_t{1} << 40;

// Writes the trace; returns false on I/O failure.
bool SaveTraceText(const Trace& trace, const std::string& path);

// Reads a trace. On failure the Expected carries a descriptive message
// (file, line number, and what was wrong) instead of aborting — malformed
// user input is an error to report, not a bug.
Expected<Trace> LoadTraceTextChecked(const std::string& path);

// Compatibility wrapper: nullopt on any failure, message dropped.
std::optional<Trace> LoadTraceText(const std::string& path);

}  // namespace pfc

#endif  // PFC_TRACE_TRACE_IO_H_
