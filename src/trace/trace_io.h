// Text serialization of traces so users can supply their own recordings.
//
// Format (one record per line, '#' comments allowed):
//   # pfc-trace v1 name=<name>
//   <block> <compute_ns>
//   ...

#ifndef PFC_TRACE_TRACE_IO_H_
#define PFC_TRACE_TRACE_IO_H_

#include <optional>
#include <string>

#include "trace/trace.h"

namespace pfc {

// Writes the trace; returns false on I/O failure.
bool SaveTraceText(const Trace& trace, const std::string& path);

// Reads a trace; returns nullopt on I/O or parse failure.
std::optional<Trace> LoadTraceText(const std::string& path);

}  // namespace pfc

#endif  // PFC_TRACE_TRACE_IO_H_
