#include "trace/trace_io.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pfc {

namespace {

bool IsBlank(const char* line) {
  for (const char* p = line; *p != '\0'; ++p) {
    if (*p != ' ' && *p != '\t' && *p != '\n' && *p != '\r') {
      return false;
    }
  }
  return true;
}

std::string Where(const std::string& path, int64_t line_no) {
  return path + ":" + std::to_string(line_no) + ": ";
}

}  // namespace

bool SaveTraceText(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fprintf(f, "# pfc-trace v1 n=%" PRId64 " name=%s\n", trace.size(),
                         trace.name().c_str()) > 0;
  for (TracePos i{0}; ok && i.v() < trace.size(); ++i) {
    if (trace.is_write(i)) {
      ok = std::fprintf(f, "%" PRId64 " %" PRId64 " W\n", trace.block(i).v(),
                        trace.compute(i).ns()) > 0;
    } else {
      ok = std::fprintf(f, "%" PRId64 " %" PRId64 "\n", trace.block(i).v(),
                        trace.compute(i).ns()) > 0;
    }
  }
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

Expected<Trace> LoadTraceTextChecked(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Expected<Trace>::Failure(path + ": cannot open trace file: " +
                                    std::strerror(errno));
  }
  Trace trace;
  char line[512];
  bool first = true;
  int64_t line_no = 0;
  int64_t expected_records = -1;  // from the header's n= field, if present
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    if (line[0] == '#') {
      if (first) {
        // Header line. Check the format version if the file declares one —
        // a future-versioned file must fail loudly, not half-parse.
        const char* magic = std::strstr(line, "pfc-trace");
        if (magic != nullptr) {
          long version = 0;
          const char* vtag = std::strstr(magic, " v");
          if (vtag != nullptr) {
            version = std::strtol(vtag + 2, nullptr, 10);
          }
          if (version != 1) {
            std::fclose(f);
            return Expected<Trace>::Failure(
                Where(path, line_no) + "unsupported trace format version " +
                std::to_string(version) + " (this build reads pfc-trace v1)");
          }
        }
        const char* count_tag = std::strstr(line, " n=");
        if (count_tag != nullptr) {
          expected_records = std::strtoll(count_tag + 3, nullptr, 10);
          if (expected_records < 0) {
            std::fclose(f);
            return Expected<Trace>::Failure(Where(path, line_no) +
                                            "corrupt header: negative record count");
          }
        }
        const char* name_tag = std::strstr(line, "name=");
        if (name_tag != nullptr) {
          std::string name(name_tag + 5);
          while (!name.empty() && (name.back() == '\n' || name.back() == '\r' ||
                                   name.back() == ' ')) {
            name.pop_back();
          }
          trace.set_name(name);
        }
      }
      first = false;
      continue;
    }
    first = false;
    if (IsBlank(line)) {
      continue;
    }
    int64_t block = 0;    // NOLINT(pfc-raw-unit) sscanf staging, wrapped below
    int64_t compute = 0;
    char op[8] = {0};
    int fields = std::sscanf(line, "%" SCNd64 " %" SCNd64 " %7s", &block, &compute, op);
    if (fields < 2 || (fields == 3 && !(op[0] == 'W' && op[1] == '\0'))) {
      std::fclose(f);
      std::string text(line);
      while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
        text.pop_back();
      }
      return Expected<Trace>::Failure(Where(path, line_no) +
                                      "malformed record '" + text +
                                      "' (expected '<block> <compute_ns>[ W]')");
    }
    if (block < 0 || block >= kMaxTraceBlock) {
      std::fclose(f);
      return Expected<Trace>::Failure(Where(path, line_no) + "block number " +
                                      std::to_string(block) +
                                      " out of range [0, 2^40)");
    }
    if (compute < 0) {
      std::fclose(f);
      return Expected<Trace>::Failure(Where(path, line_no) +
                                      "negative compute time " +
                                      std::to_string(compute));
    }
    if (fields == 3) {
      trace.AppendWrite(BlockId{block}, DurNs{compute});
    } else {
      trace.Append(BlockId{block}, DurNs{compute});
    }
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Expected<Trace>::Failure(path + ": read error while loading trace");
  }
  if (expected_records >= 0 && trace.size() != expected_records) {
    return Expected<Trace>::Failure(
        path + ": truncated trace: header declares " +
        std::to_string(expected_records) + " records but file contains " +
        std::to_string(trace.size()));
  }
  return trace;
}

std::optional<Trace> LoadTraceText(const std::string& path) {
  Expected<Trace> loaded = LoadTraceTextChecked(path);
  if (!loaded.ok()) {
    return std::nullopt;
  }
  return loaded.take();
}

}  // namespace pfc
