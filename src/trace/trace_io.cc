#include "trace/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace pfc {

bool SaveTraceText(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fprintf(f, "# pfc-trace v1 name=%s\n", trace.name().c_str()) > 0;
  for (int64_t i = 0; ok && i < trace.size(); ++i) {
    if (trace.is_write(i)) {
      ok = std::fprintf(f, "%" PRId64 " %" PRId64 " W\n", trace.block(i),
                        static_cast<int64_t>(trace.compute(i))) > 0;
    } else {
      ok = std::fprintf(f, "%" PRId64 " %" PRId64 "\n", trace.block(i),
                        static_cast<int64_t>(trace.compute(i))) > 0;
    }
  }
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

std::optional<Trace> LoadTraceText(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return std::nullopt;
  }
  Trace trace;
  char line[512];
  bool first = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#') {
      if (first) {
        const char* name_tag = std::strstr(line, "name=");
        if (name_tag != nullptr) {
          std::string name(name_tag + 5);
          while (!name.empty() && (name.back() == '\n' || name.back() == '\r' ||
                                   name.back() == ' ')) {
            name.pop_back();
          }
          trace.set_name(name);
        }
      }
      first = false;
      continue;
    }
    first = false;
    int64_t block = 0;
    int64_t compute = 0;
    char op[8] = {0};
    int fields = std::sscanf(line, "%" SCNd64 " %" SCNd64 " %7s", &block, &compute, op);
    if (fields < 2 || block < 0 || compute < 0 ||
        (fields == 3 && !(op[0] == 'W' && op[1] == '\0'))) {
      // Skip blank lines; reject malformed records.
      bool blank = true;
      for (const char* p = line; *p != '\0'; ++p) {
        if (*p != ' ' && *p != '\t' && *p != '\n' && *p != '\r') {
          blank = false;
          break;
        }
      }
      if (blank) {
        continue;
      }
      std::fclose(f);
      return std::nullopt;
    }
    if (fields == 3) {
      trace.AppendWrite(block, compute);
    } else {
      trace.Append(block, compute);
    }
  }
  std::fclose(f);
  return trace;
}

}  // namespace pfc
