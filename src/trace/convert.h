// Converters from public block-trace formats to pfc traces.
//
// Two formats cover most published block traces:
//
//   * MSR-Cambridge style CSV (SNIA IOTTA): one I/O per line,
//       Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//     with Timestamp in Windows-filetime 100 ns ticks, Type "Read"/"Write",
//     Offset and Size in bytes.
//   * blkparse text output (blktrace): lines like
//       8,0  1  42  0.001923110  1234  Q  R  5013120 + 16 [postgres]
//     with the sector in 512-byte units and size in sectors. Only queue
//     ('Q') actions are taken — they are the application's request stream;
//     later lifecycle actions (G, I, D, C) describe the same I/O again.
//
// Mapping to the paper's model: byte/sector extents become 8 KB logical
// blocks (a multi-block request expands to one reference per block), and
// the inter-arrival time between consecutive requests becomes the
// inter-reference compute time — the trace-driven stand-in for "CPU time
// the application spends between reads". Negative deltas (out-of-order
// timestamps happen in real captures) clamp to zero.
//
// Converters parse from a FILE* so tests and the parser fuzzer can feed
// them in-memory buffers (fmemopen); the *File wrappers open a path.
// Malformed input is a diagnosis, not a crash: every failure returns an
// Expected error naming origin:line and what was wrong.

#ifndef PFC_TRACE_CONVERT_H_
#define PFC_TRACE_CONVERT_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "trace/trace.h"
#include "util/expected.h"

namespace pfc {

// The paper's block size: 8 KB.
inline constexpr int64_t kConvertBlockBytes = 8192;
inline constexpr int64_t kConvertBlockSectors = kConvertBlockBytes / 512;

struct ConvertOptions {
  // Keep one input record in every `sample_every` (1 = keep all). Sampling
  // happens on input records, before multi-block expansion, so a sampled
  // request still expands whole.
  int64_t sample_every = 1;
  // Stop after this many output references (0 = unlimited).
  int64_t max_records = 0;
  // Remap block ids densely in first-seen order. Real captures address
  // sparse sectors across huge volumes; the simulator's layout module wants
  // a compact logical space. On by default.
  bool compact_blocks = true;
  // Name for the converted trace ("" = derived from the origin).
  std::string name;
};

// Parses MSR-Cambridge-style CSV from `f`; `origin` labels diagnostics
// (a path, or "<memory>" in tests).
Expected<Trace> ConvertMsrCsv(std::FILE* f, const std::string& origin,
                              const ConvertOptions& options);
Expected<Trace> ConvertMsrCsvFile(const std::string& path,
                                  const ConvertOptions& options);

// Parses blkparse text output from `f`.
Expected<Trace> ConvertBlkparse(std::FILE* f, const std::string& origin,
                                const ConvertOptions& options);
Expected<Trace> ConvertBlkparseFile(const std::string& path,
                                    const ConvertOptions& options);

}  // namespace pfc

#endif  // PFC_TRACE_CONVERT_H_
