// ld: the Ultrix link-editor building a kernel from ~25 MB of object files.
// A linker processes object files one after another: it reads each file's
// symbol/header information and then reads the file again for its section
// contents before moving on, with occasional back-references to earlier
// objects (archive resolution). The working set at any instant is therefore
// small — the paper's fixed horizon issues only 2904 fetches for 5881 reads
// over 2882 distinct blocks (appendix table 14): nearly every re-read hits
// the cache. What makes ld I/O-bound is that the object files are small and
// scattered across allocation groups, so the cold misses are expensive
// (~8 ms average fetch at one disk).
//
// Reconstruction: 900 object files totalling 2882 blocks; for each file,
// read it twice back-to-back (pass structure of a linker), plus 117
// back-references to the first block of a recent file. 5881 reads exactly;
// distinct 2882 exactly.

#include <vector>

#include "trace/file_layout.h"
#include "trace/gen_common.h"
#include "trace/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace pfc {

Trace MakeLd(uint64_t seed) {
  const TraceSpec& spec = *FindTraceSpec("ld");
  Rng rng(SplitMix64(seed) ^ 0x1D1D1DULL);

  constexpr int kFiles = 900;
  FileLayout layout(&rng);
  std::vector<int64_t> sizes = RandomPartition(spec.paper_distinct, kFiles, 2, &rng);
  for (int64_t s : sizes) {
    layout.AddFile(s);
  }

  Trace trace(spec.name);
  trace.Reserve(spec.paper_reads);

  const int64_t back_refs = spec.paper_reads - 2 * spec.paper_distinct;  // 117
  PFC_CHECK(back_refs >= 0);
  int64_t back_refs_emitted = 0;
  for (int f = 0; f < kFiles; ++f) {
    for (int pass = 0; pass < 2; ++pass) {
      for (int64_t off = 0; off < layout.FileBlocks(f); ++off) {
        trace.Append(layout.BlockAddress(f, off), DurNs{0});
      }
    }
    // Spread the archive back-references evenly over the run; each touches
    // the header of a file processed a little earlier (a cache hit).
    int64_t due = back_refs * (f + 1) / kFiles;
    for (; back_refs_emitted < due; ++back_refs_emitted) {
      int past = static_cast<int>(rng.UniformInt(0, std::min(f, 40)));
      trace.Append(layout.BlockAddress(f - past, 0), DurNs{0});
    }
  }
  PFC_CHECK(trace.size() == spec.paper_reads);

  FillComputeExponential(&trace, 1.39, spec.paper_compute_sec, &rng);
  return trace;
}

}  // namespace pfc
