// cscope1/2/3: Joe Steffen's interactive C-source examination tool.
// Section 3.1: "With multiple queries, cscope will read multiple files
// sequentially multiple times." Each query scans the package's files in the
// same order, so the trace is repeated sequential passes over a fixed file
// set. cscope3's inter-reference compute times are bursty — runs near 1 ms
// interspersed with runs around 7 ms (section 4.3) — which is what defeats
// reverse aggressive's single fetch-time estimate on that trace.

#include <algorithm>

#include "trace/file_layout.h"
#include "trace/gen_common.h"
#include "trace/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace pfc {

namespace {

// Builds repeated sequential passes over `num_files` files that together
// hold `distinct` blocks, truncated to exactly `reads` references.
Trace MakeCscopePasses(const TraceSpec& spec, int num_files, Rng* rng) {
  FileLayout layout(rng);
  std::vector<int64_t> sizes = RandomPartition(spec.paper_distinct, num_files, 2, rng);
  for (int64_t s : sizes) {
    layout.AddFile(s);
  }

  Trace trace(spec.name);
  trace.Reserve(spec.paper_reads);
  int64_t emitted = 0;
  while (emitted < spec.paper_reads) {
    for (int f = 0; f < num_files && emitted < spec.paper_reads; ++f) {
      for (int64_t off = 0; off < layout.FileBlocks(f) && emitted < spec.paper_reads; ++off) {
        trace.Append(layout.BlockAddress(f, off), DurNs{0});
        ++emitted;
      }
    }
  }
  PFC_CHECK(trace.size() == spec.paper_reads);
  return trace;
}

// The text-string searches (cscope2/3) do not touch the whole package on
// every query: each pass covers a rotating window of the file list (matches
// in earlier files short-circuit parts of the scan), and files whose text
// matches are read again immediately. This is what keeps the paper's miss
// counts well below a full cyclic scan (e.g. cscope2: 5966 fetches under
// fixed horizon versus the 10736 a pure loop would take) while the reads
// stay high, and it scatters the misses across files rather than leaving
// long sequential runs.
Trace MakeCscopeWindowedPasses(const TraceSpec& spec, int num_files, int passes,
                               double window_fraction, double reread_fraction,
                               int64_t extent_blocks, Rng* rng) {
  FileLayout layout(rng);
  std::vector<int64_t> sizes = RandomPartition(spec.paper_distinct, num_files, 2, rng);
  for (int64_t s : sizes) {
    layout.AddFragmentedFile(s, extent_blocks);
  }

  Trace trace(spec.name);
  trace.Reserve(spec.paper_reads);
  auto read_file = [&](int f) {
    for (int64_t off = 0; off < layout.FileBlocks(f) && trace.size() < spec.paper_reads; ++off) {
      trace.Append(layout.BlockAddress(f, off), DurNs{0});
    }
  };

  const int window = std::max(1, static_cast<int>(window_fraction * num_files));
  int start = 0;
  // Every file appears in some window: rotate far enough per pass.
  const int rotate = std::max(1, (num_files + passes - 1) / passes);
  while (trace.size() < spec.paper_reads) {
    std::vector<int> files;
    files.reserve(static_cast<size_t>(window));
    for (int i = 0; i < window; ++i) {
      files.push_back((start + i) % num_files);
    }
    Shuffle(&files, rng);
    for (int f : files) {
      if (trace.size() >= spec.paper_reads) {
        break;
      }
      read_file(f);
      if (rng->UniformDouble() < reread_fraction) {
        read_file(f);  // matching file re-read immediately: cache hits
      }
    }
    start = (start + rotate) % num_files;
  }
  PFC_CHECK(trace.size() == spec.paper_reads);
  return trace;
}

// Two-state bursty compute assignment: geometric-length runs at `low_ms`
// alternate with geometric-length runs at `high_ms`.
void FillComputeBursty(Trace* trace, double low_ms, double high_ms, double low_run_mean,
                       double high_run_mean, double total_sec, Rng* rng) {
  Trace rebuilt(trace->name());
  rebuilt.Reserve(trace->size());
  bool low_state = true;
  int64_t run_left = 0;
  for (TracePos i{0}; i.v() < trace->size(); ++i) {
    if (run_left <= 0) {
      low_state = !low_state;
      double mean = low_state ? low_run_mean : high_run_mean;
      run_left = 1 + static_cast<int64_t>(rng->Exponential(mean));
    }
    double base = low_state ? low_ms : high_ms;
    double ms = std::max(0.1, base * (1.0 + 0.15 * rng->Normal()));
    rebuilt.Append(trace->block(i), MsToNs(ms));
    --run_left;
  }
  rebuilt.RescaleCompute(SecToNs(total_sec));
  *trace = std::move(rebuilt);
}

}  // namespace

Trace MakeCscope1(uint64_t seed) {
  const TraceSpec& spec = *FindTraceSpec("cscope1");
  Rng rng(SplitMix64(seed) ^ 0xC5C09E01ULL);
  Trace trace = MakeCscopePasses(spec, 16, &rng);
  FillComputeNormal(&trace, 2.87, 0.5, spec.paper_compute_sec, &rng);
  return trace;
}

Trace MakeCscope2(uint64_t seed) {
  const TraceSpec& spec = *FindTraceSpec("cscope2");
  Rng rng(SplitMix64(seed) ^ 0xC5C09E02ULL);
  Trace trace = MakeCscopeWindowedPasses(spec, 200, /*passes=*/8, /*window_fraction=*/0.76,
                                         /*reread_fraction=*/0.35, /*extent_blocks=*/3, &rng);
  FillComputeNormal(&trace, 1.84, 0.5, spec.paper_compute_sec, &rng);
  return trace;
}

Trace MakeCscope3(uint64_t seed) {
  const TraceSpec& spec = *FindTraceSpec("cscope3");
  Rng rng(SplitMix64(seed) ^ 0xC5C09E03ULL);
  Trace trace = MakeCscopeWindowedPasses(spec, 200, /*passes=*/8, /*window_fraction=*/0.665,
                                         /*reread_fraction=*/0.45, /*extent_blocks=*/4, &rng);
  // ~1 ms runs (mean length 300) interleaved with ~7 ms runs (mean length
  // 96): overall mean ~2.45 ms, matching Table 3's 74.1 s over 30200 reads.
  FillComputeBursty(&trace, 1.0, 7.0, 300.0, 96.0, spec.paper_compute_sec, &rng);
  return trace;
}

}  // namespace pfc
