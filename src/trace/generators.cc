#include "trace/generators.h"

#include <algorithm>
#include <cmath>

#include "trace/gen_common.h"
#include "util/check.h"

namespace pfc {

void FillComputeExponential(Trace* trace, double mean_ms, double total_sec, Rng* rng) {
  PFC_CHECK(trace != nullptr && !trace->empty());
  Trace rebuilt(trace->name());
  rebuilt.Reserve(trace->size());
  for (TracePos i{0}; i.v() < trace->size(); ++i) {
    rebuilt.Append(trace->block(i), MsToNs(rng->Exponential(mean_ms)));
  }
  rebuilt.RescaleCompute(SecToNs(total_sec));
  *trace = std::move(rebuilt);
}

void FillComputeNormal(Trace* trace, double mean_ms, double cv, double total_sec, Rng* rng) {
  PFC_CHECK(trace != nullptr && !trace->empty());
  Trace rebuilt(trace->name());
  rebuilt.Reserve(trace->size());
  for (TracePos i{0}; i.v() < trace->size(); ++i) {
    double ms = mean_ms * (1.0 + cv * rng->Normal());
    ms = std::max(ms, 0.05 * mean_ms);
    rebuilt.Append(trace->block(i), MsToNs(ms));
  }
  rebuilt.RescaleCompute(SecToNs(total_sec));
  *trace = std::move(rebuilt);
}

std::vector<int64_t> RandomPartition(int64_t total, int parts, int64_t min_size, Rng* rng) {
  PFC_CHECK(parts > 0);
  PFC_CHECK(total >= parts * min_size);
  // Draw random positive weights, scale, fix rounding on the largest part.
  std::vector<double> weights(static_cast<size_t>(parts));
  double sum = 0;
  for (double& w : weights) {
    w = 0.2 + rng->Exponential(1.0);
    sum += w;
  }
  std::vector<int64_t> sizes(static_cast<size_t>(parts));
  int64_t distributable = total - parts * min_size;
  int64_t used = 0;
  for (int i = 0; i < parts; ++i) {
    int64_t extra = static_cast<int64_t>(static_cast<double>(distributable) *
                                         weights[static_cast<size_t>(i)] / sum);
    sizes[static_cast<size_t>(i)] = min_size + extra;
    used += extra;
  }
  // Distribute the rounding remainder one block at a time.
  int64_t remainder = distributable - used;
  for (int i = 0; remainder > 0; i = (i + 1) % parts, --remainder) {
    ++sizes[static_cast<size_t>(i)];
  }
  return sizes;
}

const std::vector<TraceSpec>& AllTraceSpecs() {
  static const std::vector<TraceSpec> kSpecs = {
      {"dinero", "cache simulator; one file read sequentially multiple times", 8867, 986, 103.5,
       512},
      {"cscope1", "C-source examination, 8 symbol queries over 18MB", 8673, 1073, 24.9, 512},
      {"cscope2", "C-source examination, 4 text queries over 18MB", 20206, 2462, 37.1, 1280},
      {"cscope3", "C-source examination, 4 text queries over 10MB; bursty compute", 30200, 3910,
       74.1, 1280},
      {"glimpse", "text retrieval; hot index files plus cold data files", 27981, 5247, 38.7,
       1280},
      {"ld", "Ultrix link-editor over ~25MB of object files", 5881, 2882, 8.2, 1280},
      // NOTE: the paper's Table 3 lists compute times of 11.5s (join) and
      // 79.2s (select), but its own appendix tables 15/16, figure 2 and
      // tables 4/8 are only consistent with the values swapped: postgres-
      // join's elapsed time floors at ~81s (compute ~79.2s) and postgres-
      // select's at ~13s (compute ~11.5s). We follow the appendix, since
      // those are the results being reproduced.
      {"postgres-join", "indexed 32MB x non-indexed 3.2MB join", 8896, 3793, 79.2, 1280},
      {"postgres-select", "2% indexed selection from a 32MB relation", 5044, 3085, 11.5, 1280},
      {"xds", "3-D visualization; 25 random planar slices of a 64MB volume", 10435, 5392, 30.8,
       1280},
      {"synth", "50 passes over 2000 sequential blocks; Poisson 1ms compute", 100000, 2000, 99.9,
       1280},
  };
  return kSpecs;
}

const TraceSpec* FindTraceSpec(const std::string& name) {
  for (const TraceSpec& spec : AllTraceSpecs()) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

Trace MakeTrace(const std::string& name, uint64_t seed) {
  if (name == "dinero") {
    return MakeDinero(seed);
  }
  if (name == "cscope1") {
    return MakeCscope1(seed);
  }
  if (name == "cscope2") {
    return MakeCscope2(seed);
  }
  if (name == "cscope3") {
    return MakeCscope3(seed);
  }
  if (name == "glimpse") {
    return MakeGlimpse(seed);
  }
  if (name == "ld") {
    return MakeLd(seed);
  }
  if (name == "postgres-join") {
    return MakePostgresJoin(seed);
  }
  if (name == "postgres-select") {
    return MakePostgresSelect(seed);
  }
  if (name == "xds") {
    return MakeXds(seed);
  }
  if (name == "synth") {
    return MakeSynth(seed);
  }
  PFC_CHECK_MSG(false, ("unknown trace: " + name).c_str());
  return Trace();
}

}  // namespace pfc
