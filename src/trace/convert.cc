#include "trace/convert.h"

#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "trace/trace_io.h"
#include "util/check.h"

namespace pfc {

namespace {

std::string Where(const std::string& origin, int64_t line_no) {
  return origin + ":" + std::to_string(line_no) + ": ";
}

std::string TrimmedLine(const char* line) {
  std::string text(line);
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  if (text.size() > 80) {
    text.resize(77);
    text += "...";
  }
  return text;
}

bool IsBlank(const char* line) {
  for (const char* p = line; *p != '\0'; ++p) {
    if (*p != ' ' && *p != '\t' && *p != '\n' && *p != '\r') {
      return false;
    }
  }
  return true;
}

// Shared conversion state: sampling, the compact-block remap, the running
// clock, and the output cap. Both parsers feed parsed requests through
// EmitRequest so the expansion and accounting rules stay in one place.
class Builder {
 public:
  Builder(const ConvertOptions& options, std::string default_name)
      : options_(options),
        trace_(options.name.empty() ? std::move(default_name) : options.name) {
    PFC_CHECK(options_.sample_every >= 1);
  }

  // One parsed request: absolute time `time_ns`, first block, block count,
  // direction. Returns false once the max_records cap is hit (callers stop
  // parsing — the cap is a feature for down-sampling huge captures).
  bool EmitRequest(int64_t time_ns, int64_t first_block, int64_t nblocks,  // NOLINT(pfc-raw-unit) parser staging
                   bool is_write) {
    ++seen_;
    if ((seen_ - 1) % options_.sample_every != 0) {
      return true;
    }
    // Inter-arrival time of *sampled* requests: with sampling the surviving
    // stream is the simulated application, so its gaps are what the model
    // should see. Real captures have timestamp inversions; clamp to zero.
    int64_t delta = have_prev_ ? time_ns - prev_time_ns_ : 0;  // NOLINT(pfc-raw-unit) staging
    if (delta < 0) {
      delta = 0;
    }
    prev_time_ns_ = time_ns;
    have_prev_ = true;
    for (int64_t b = 0; b < nblocks; ++b) {
      if (options_.max_records > 0 && trace_.size() >= options_.max_records) {
        return false;
      }
      if (b == 0 && trace_.size() > 0) {
        // compute(i) is the gap *after* reference i, so the inter-arrival
        // gap before this request lands on the previous request's last
        // reference. Blocks within one request follow back-to-back (0).
        trace_.SetCompute(TracePos{trace_.size() - 1}, DurNs{delta});
      }
      const BlockId block = Remap(first_block + b);
      if (is_write) {
        trace_.AppendWrite(block, DurNs{0});
      } else {
        trace_.Append(block, DurNs{0});
      }
    }
    return true;
  }

  Trace Take() { return std::move(trace_); }
  int64_t seen() const { return seen_; }

 private:
  BlockId Remap(int64_t raw) {  // NOLINT(pfc-raw-unit) parser staging
    if (!options_.compact_blocks) {
      return BlockId{raw};
    }
    auto [it, inserted] = remap_.emplace(raw, next_compact_);
    if (inserted) {
      ++next_compact_;
    }
    return BlockId{it->second};
  }

  const ConvertOptions& options_;
  Trace trace_;
  std::unordered_map<int64_t, int64_t> remap_;
  int64_t next_compact_ = 0;  // NOLINT(pfc-raw-unit) dense remap counter
  int64_t seen_ = 0;
  int64_t prev_time_ns_ = 0;  // NOLINT(pfc-raw-unit) staging
  bool have_prev_ = false;
};

Expected<Trace> OpenAndConvert(const std::string& path,
                               const ConvertOptions& options,
                               Expected<Trace> (*convert)(std::FILE*, const std::string&,
                                                          const ConvertOptions&)) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Expected<Trace>::Failure(path + ": cannot open: " + std::strerror(errno));
  }
  Expected<Trace> result = convert(f, path, options);
  std::fclose(f);
  return result;
}

}  // namespace

Expected<Trace> ConvertMsrCsv(std::FILE* f, const std::string& origin,
                              const ConvertOptions& options) {
  if (options.sample_every < 1) {
    return Expected<Trace>::Failure(origin + ": sample_every must be >= 1");
  }
  Builder builder(options, origin + "-msr");
  char line[1024];
  int64_t line_no = 0;
  // Real MSR timestamps are Windows filetimes (100ns ticks since 1601) —
  // around 1.3e17, too large to convert to nanoseconds directly. Only the
  // inter-arrival gaps matter, so rebase everything to the first record.
  int64_t base_ticks = -1;  // NOLINT(pfc-raw-unit) staging
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    if (IsBlank(line) || line[0] == '#') {
      continue;
    }
    // Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
    int64_t ticks = 0;     // NOLINT(pfc-raw-unit) sscanf staging
    char host[128] = {0};
    int64_t disk_no = 0;   // NOLINT(pfc-raw-unit) staging
    char type[32] = {0};
    int64_t offset = 0;    // NOLINT(pfc-raw-unit) staging
    int64_t bytes = 0;     // NOLINT(pfc-raw-unit) staging
    const int fields =
        std::sscanf(line, "%" SCNd64 ",%127[^,],%" SCNd64 ",%31[^,],%" SCNd64
                          ",%" SCNd64,
                    &ticks, host, &disk_no, type, &offset, &bytes);
    if (fields < 6) {
      return Expected<Trace>::Failure(
          Where(origin, line_no) + "malformed CSV record '" + TrimmedLine(line) +
          "' (expected Timestamp,Hostname,DiskNumber,Type,Offset,Size,...)");
    }
    bool is_write = false;
    if (std::strcmp(type, "Write") == 0 || std::strcmp(type, "write") == 0) {
      is_write = true;
    } else if (std::strcmp(type, "Read") != 0 && std::strcmp(type, "read") != 0) {
      return Expected<Trace>::Failure(Where(origin, line_no) + "unknown Type '" +
                                      type + "' (expected Read or Write)");
    }
    if (ticks < 0) {
      return Expected<Trace>::Failure(Where(origin, line_no) +
                                      "negative timestamp " + std::to_string(ticks));
    }
    if (offset < 0 || bytes <= 0) {
      return Expected<Trace>::Failure(
          Where(origin, line_no) + "bad extent: offset " + std::to_string(offset) +
          ", size " + std::to_string(bytes));
    }
    const int64_t first_block = offset / kConvertBlockBytes;  // NOLINT(pfc-raw-unit) staging
    const int64_t last_block = (offset + bytes - 1) / kConvertBlockBytes;  // NOLINT(pfc-raw-unit) staging
    if (last_block >= kMaxTraceBlock) {
      return Expected<Trace>::Failure(Where(origin, line_no) + "block number " +
                                      std::to_string(last_block) +
                                      " out of range [0, 2^40)");
    }
    if (base_ticks < 0) {
      base_ticks = ticks;
    }
    // Filetime ticks are 100 ns. Guard the multiply: a corrupt timestamp
    // must not overflow into a bogus-but-positive clock even after rebasing.
    const int64_t rel_ticks = ticks >= base_ticks ? ticks - base_ticks : 0;  // NOLINT(pfc-raw-unit) staging
    if (rel_ticks > INT64_MAX / 100) {
      return Expected<Trace>::Failure(Where(origin, line_no) + "timestamp " +
                                      std::to_string(ticks) +
                                      " too large for a 100ns-tick clock");
    }
    if (!builder.EmitRequest(rel_ticks * 100, first_block, last_block - first_block + 1,
                             is_write)) {
      break;  // max_records reached
    }
  }
  if (std::ferror(f) != 0) {
    return Expected<Trace>::Failure(origin + ": read error");
  }
  Trace trace = builder.Take();
  if (trace.size() == 0) {
    return Expected<Trace>::Failure(origin + ": no usable records found");
  }
  return trace;
}

Expected<Trace> ConvertMsrCsvFile(const std::string& path,
                                  const ConvertOptions& options) {
  return OpenAndConvert(path, options, &ConvertMsrCsv);
}

Expected<Trace> ConvertBlkparse(std::FILE* f, const std::string& origin,
                                const ConvertOptions& options) {
  if (options.sample_every < 1) {
    return Expected<Trace>::Failure(origin + ": sample_every must be >= 1");
  }
  Builder builder(options, origin + "-blk");
  char line[1024];
  int64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    if (IsBlank(line)) {
      continue;
    }
    // maj,min cpu seq timestamp pid action rwbs sector + size [proc]
    int dev_maj = 0;
    int dev_min = 0;
    int cpu = 0;
    int64_t seq = 0;          // NOLINT(pfc-raw-unit) staging
    double timestamp = 0;     // seconds
    int64_t pid = 0;          // NOLINT(pfc-raw-unit) staging
    char action[16] = {0};
    char rwbs[16] = {0};
    int64_t sector = 0;       // NOLINT(pfc-raw-unit) staging
    char plus[8] = {0};
    int64_t sectors = 0;      // NOLINT(pfc-raw-unit) staging
    const int fields = std::sscanf(
        line, "%d,%d %d %" SCNd64 " %lf %" SCNd64 " %15s %15s %" SCNd64 " %7s %" SCNd64,
        &dev_maj, &dev_min, &cpu, &seq, &timestamp, &pid, action, rwbs, &sector,
        plus, &sectors);
    if (fields < 8) {
      // blkparse interleaves non-I/O lines (per-CPU summaries, plug/unplug
      // events without extents); anything that does not parse as far as an
      // action + rwbs pair is not part of the request stream.
      continue;
    }
    if (action[0] != 'Q' || action[1] != '\0') {
      continue;  // only the queue action is the request stream
    }
    const bool is_write = std::strchr(rwbs, 'W') != nullptr;
    if (!is_write && std::strchr(rwbs, 'R') == nullptr) {
      continue;  // barriers/discards/flushes carry no data block
    }
    if (timestamp < 0) {
      return Expected<Trace>::Failure(Where(origin, line_no) +
                                      "negative timestamp");
    }
    if (sector < 0) {
      return Expected<Trace>::Failure(Where(origin, line_no) + "negative sector " +
                                      std::to_string(sector));
    }
    if (fields < 11 || plus[0] != '+' || plus[1] != '\0' || sectors <= 0) {
      // A queued request without an extent ("sector + size") is malformed.
      return Expected<Trace>::Failure(Where(origin, line_no) +
                                      "queue record without '<sector> + <size>': '" +
                                      TrimmedLine(line) + "'");
    }
    const int64_t first_block = sector / kConvertBlockSectors;  // NOLINT(pfc-raw-unit) staging
    const int64_t last_block = (sector + sectors - 1) / kConvertBlockSectors;  // NOLINT(pfc-raw-unit) staging
    if (last_block >= kMaxTraceBlock) {
      return Expected<Trace>::Failure(Where(origin, line_no) + "block number " +
                                      std::to_string(last_block) +
                                      " out of range [0, 2^40)");
    }
    const int64_t time_ns = static_cast<int64_t>(timestamp * 1e9 + 0.5);  // NOLINT(pfc-raw-unit) staging
    if (!builder.EmitRequest(time_ns, first_block, last_block - first_block + 1,
                             is_write)) {
      break;  // max_records reached
    }
  }
  if (std::ferror(f) != 0) {
    return Expected<Trace>::Failure(origin + ": read error");
  }
  Trace trace = builder.Take();
  if (trace.size() == 0) {
    return Expected<Trace>::Failure(origin + ": no usable records found");
  }
  return trace;
}

Expected<Trace> ConvertBlkparseFile(const std::string& path,
                                    const ConvertOptions& options) {
  return OpenAndConvert(path, options, &ConvertBlkparse);
}

}  // namespace pfc
