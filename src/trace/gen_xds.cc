// xds: XDataSlice generating 25 planar slice images at random orientations
// through a 64 MB volume file (section 3.1).
//
// Reconstruction: a 256x256x256 volume of 4-byte voxels stored x-fastest
// (2048 voxels = 8 rows per 8 KB block, 8192 blocks total). Each slice picks
// a random plane through the volume center and rasterizes it; consecutive
// samples map to file blocks with plane-dependent strides — long sequential
// runs when the plane is x-aligned, scattered strides otherwise. Exactly
// 10435 reads (Table 3); the distinct count depends on the sampled
// orientations and lands near the paper's 5392.

#include <cmath>

#include "trace/file_layout.h"
#include "trace/gen_common.h"
#include "trace/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace pfc {

namespace {

constexpr int64_t kDim = 256;              // voxels per axis
constexpr int64_t kVoxelsPerBlock = 2048;  // 8 KB / 4 B
constexpr int64_t kVolumeBlocks = kDim * kDim * kDim / kVoxelsPerBlock;  // 8192

struct Vec3 {
  double x, y, z;
};

Vec3 Normalize(Vec3 v) {
  double n = std::sqrt(v.x * v.x + v.y * v.y + v.z * v.z);
  return Vec3{v.x / n, v.y / n, v.z / n};
}

Vec3 Cross(Vec3 a, Vec3 b) {
  return Vec3{a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

int64_t VoxelBlock(double x, double y, double z) {
  int64_t xi = static_cast<int64_t>(x);
  int64_t yi = static_cast<int64_t>(y);
  int64_t zi = static_cast<int64_t>(z);
  if (xi < 0 || xi >= kDim || yi < 0 || yi >= kDim || zi < 0 || zi >= kDim) {
    return -1;
  }
  int64_t linear = (zi * kDim + yi) * kDim + xi;
  return linear / kVoxelsPerBlock;
}

}  // namespace

Trace MakeXds(uint64_t seed) {
  const TraceSpec& spec = *FindTraceSpec("xds");
  Rng rng(SplitMix64(seed) ^ 0x3D5711CEULL);

  FileLayout layout(&rng);
  const int volume_file = 0;
  layout.AddFile(kVolumeBlocks);

  Trace trace(spec.name);
  trace.Reserve(spec.paper_reads);

  const int64_t per_slice = spec.paper_reads / 25;  // ~417 reads per slice
  int64_t last_block = -1;
  while (trace.size() < spec.paper_reads) {
    // Random plane orientation; every third slice is nearly axis-aligned
    // (users commonly slice close to the data axes), which produces the long
    // sequential runs that keep the paper's average fetch time near 10 ms.
    Vec3 normal = Normalize(Vec3{rng.Normal(), rng.Normal(), rng.Normal()});
    const bool axis_aligned = static_cast<int64_t>(trace.size() / per_slice) % 3 == 0;
    if (axis_aligned) {
      normal = Normalize(Vec3{normal.x * 0.05, normal.y, normal.z});
    }
    // For an axis-aligned slice pick the in-plane basis so the inner raster
    // loop advances along x, the storage order — long sequential block runs.
    Vec3 helper = axis_aligned ? Vec3{0, 1, 0}
                               : (std::fabs(normal.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0});
    Vec3 u = Normalize(Cross(normal, helper));
    Vec3 v = Cross(normal, u);
    // Spread the slice planes through the whole volume so different slices
    // mostly touch different blocks (the paper's 25 slices cover 5392
    // distinct blocks for 10435 reads).
    double cx = kDim / 2.0 + rng.UniformDouble() * 160.0 - 80.0;
    double cy = kDim / 2.0 + rng.UniformDouble() * 160.0 - 80.0;
    double cz = kDim / 2.0 + rng.UniformDouble() * 160.0 - 80.0;

    // Rasterize in scanline order until this slice's read budget is spent.
    int64_t emitted_this_slice = 0;
    // Step t by a full block height (8 x-rows) so consecutive scanlines land
    // in fresh blocks instead of re-reading the previous row's.
    for (double t = -kDim;
         t <= kDim && emitted_this_slice < per_slice && trace.size() < spec.paper_reads;
         t += 8.0) {
      for (double s = -kDim;
           s <= kDim && emitted_this_slice < per_slice && trace.size() < spec.paper_reads;
           s += 2.0) {
        // Raw voxel-projection scalar; wrapped at the Append boundary.
        int64_t block =  // NOLINT(pfc-raw-unit)
            VoxelBlock(cx + s * u.x + t * v.x, cy + s * u.y + t * v.y,
                       cz + s * u.z + t * v.z);
        if (block >= 0 && block != last_block) {
          trace.Append(layout.BlockAddress(volume_file, block), DurNs{0});
          last_block = block;
          ++emitted_this_slice;
        }
      }
    }
  }
  PFC_CHECK(trace.size() == spec.paper_reads);

  FillComputeExponential(&trace, 2.95, spec.paper_compute_sec, &rng);
  return trace;
}

}  // namespace pfc
