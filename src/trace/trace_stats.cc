#include "trace/trace_stats.h"

#include <cstdio>
#include <unordered_set>

namespace pfc {

TraceStats ComputeTraceStats(const Trace& trace) {
  TraceStats stats;
  stats.name = trace.name();
  stats.reads = trace.size();
  stats.compute_sec = NsToSec(trace.TotalCompute());
  stats.mean_compute_ms =
      trace.size() > 0 ? NsToMs(trace.TotalCompute()) / static_cast<double>(trace.size()) : 0;
  stats.max_block = trace.MaxBlock().v();

  std::unordered_set<BlockId> seen;
  seen.reserve(static_cast<size_t>(trace.size()));
  int64_t sequential = 0;
  int64_t reused = 0;
  for (TracePos i{0}; i.v() < trace.size(); ++i) {
    BlockId b = trace.block(i);
    if (i.v() > 0 && b == trace.block(i - 1) + 1) {
      ++sequential;
    }
    if (!seen.insert(b).second) {
      ++reused;
    }
  }
  stats.distinct_blocks = static_cast<int64_t>(seen.size());
  if (trace.size() > 0) {
    stats.sequential_fraction = static_cast<double>(sequential) / static_cast<double>(trace.size());
    stats.reuse_fraction = static_cast<double>(reused) / static_cast<double>(trace.size());
  }
  return stats;
}

std::string ToString(const TraceStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-16s reads=%-7lld distinct=%-6lld compute=%7.1fs mean=%6.2fms seq=%4.2f "
                "reuse=%4.2f",
                stats.name.c_str(), static_cast<long long>(stats.reads),
                static_cast<long long>(stats.distinct_blocks), stats.compute_sec,
                stats.mean_compute_ms, stats.sequential_fraction, stats.reuse_fraction);
  return buf;
}

}  // namespace pfc
