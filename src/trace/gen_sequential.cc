// dinero: Mark Hill's cache simulator replaying a memory-reference file.
// Section 3.1: "reads one file sequentially multiple times". Table 3:
// 8867 reads over 986 distinct blocks, 103.5 s of compute (11.7 ms per
// read — strongly compute-bound).

#include "trace/file_layout.h"
#include "trace/gen_common.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace pfc {

Trace MakeDinero(uint64_t seed) {
  const TraceSpec& spec = *FindTraceSpec("dinero");
  Rng rng(SplitMix64(seed) ^ 0xD15EB0ULL);
  FileLayout layout(&rng);
  int file = 0;
  layout.AddFile(spec.paper_distinct);

  Trace trace(spec.name);
  trace.Reserve(spec.paper_reads);
  int64_t offset = 0;
  for (int64_t i = 0; i < spec.paper_reads; ++i) {
    trace.Append(layout.BlockAddress(file, offset), DurNs{0});
    offset = (offset + 1) % spec.paper_distinct;
  }
  // The simulator does a fairly uniform amount of work per block of the
  // reference file; mild spread around the mean.
  FillComputeNormal(&trace, 11.67, 0.3, spec.paper_compute_sec, &rng);
  return trace;
}

}  // namespace pfc
