// pfct: the compact binary trace container (".pfct" files).
//
// The text format (trace_io.h) is friendly to hand-editing but parses at
// tens of MB/s and cannot be windowed: a loader must scan every byte before
// the first record's offset is known. pfct fixes both with fixed-width
// records behind a self-describing header, so a reader can seek straight to
// record i and a streaming replay (pfct_stream.h) can page windows in and
// out in bounded memory.
//
// Layout (all integers little-endian, composed byte-by-byte — the format is
// defined by bytes on disk, not by the writing machine's endianness):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     4  magic "PFCT"
//        4     4  u32 version (this build reads and writes version 1)
//        8     8  u64 record_count (must be > 0: an empty trace is not a
//                 simulation input, and rejecting it here catches truncation)
//       16     8  u64 records_offset (16-byte aligned; = 64 + padded name)
//       24     8  u64 window_records (power of two, or 0 = no window index)
//       32     8  u64 index_offset (0 when window_records == 0)
//       40     8  u64 name_len (bytes of trace name, no terminator)
//       48     8  u64 header_checksum: FNV-1a 64 over header bytes [0, 48)
//       56     8  u64 reserved (must be 0)
//       64   ...  name bytes, zero-padded to a 16-byte boundary
//   records_offset   record_count * 16-byte records
//   index_offset     ceil(record_count / window_records) u64 window checksums
//
// Record (16 bytes): u64 word0 = (is_write << 63) | block, u64 compute_ns.
// Block ids occupy bits [0, 40) (kMaxTraceBlock); bits [40, 63) must be
// zero, which gives the reader 23 spare bits of corruption detection per
// record. compute_ns must be in [0, 2^62).
//
// The optional index holds one FNV-1a 64 checksum per window of raw record
// bytes (the last window may be short). The streaming reader verifies each
// window as it pages it in, so corruption is reported at the window where
// it lies rather than as a silently wrong simulation.

#ifndef PFC_TRACE_PFCT_H_
#define PFC_TRACE_PFCT_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "trace/trace.h"
#include "util/expected.h"

namespace pfc {

inline constexpr char kPfctMagic[4] = {'P', 'F', 'C', 'T'};
inline constexpr uint32_t kPfctVersion = 1;
inline constexpr int64_t kPfctHeaderBytes = 64;
inline constexpr int64_t kPfctRecordBytes = 16;
// Default windowing for writers that do not choose one: 64 Ki records
// (1 MiB of record bytes) balances checksum granularity against index size.
inline constexpr int64_t kPfctDefaultWindowRecords = int64_t{1} << 16;

// FNV-1a 64-bit over a byte range; the checksum used throughout the format.
uint64_t PfctChecksum(const uint8_t* data, size_t n, uint64_t seed);

// Parsed header of a .pfct file, in host integers.
struct PfctHeader {
  int64_t record_count = 0;
  int64_t records_offset = 0;
  int64_t window_records = 0;  // 0 = unindexed
  int64_t index_offset = 0;    // 0 = no index
  std::string name;
  // Number of index checksums: ceil(record_count / window_records), 0 when
  // unindexed.
  int64_t WindowCount() const;
};

// Writes `trace` as a .pfct file with a checksummed window index every
// `window_records` records (power of two; 0 writes no index). Returns a
// message on I/O failure or invalid window size.
Expected<bool> SavePfct(const Trace& trace, const std::string& path,
                        int64_t window_records = kPfctDefaultWindowRecords);

// Reads and validates only the header (and name). This is the shared
// front-end of both loaders and the streaming reader: magic, version,
// checksum, field sanity, and file-size consistency are all enforced here,
// so a malformed file fails identically whichever way it is opened.
Expected<PfctHeader> ReadPfctHeader(std::FILE* f, const std::string& path);

// Fully materializes a .pfct file into an in-memory Trace, verifying every
// window checksum when an index is present. Errors carry "<path>: ..." or
// "<path>: record <i>: ..." diagnostics.
Expected<Trace> LoadPfctChecked(const std::string& path);

// Decodes one 16-byte record. Returns a descriptive message (without file
// context; callers prepend it) on out-of-range block/compute or set
// reserved bits.
Expected<TraceEntry> DecodePfctRecord(const uint8_t* rec);

// Encodes `e` into 16 bytes at `out`. Requires a valid entry (block within
// kMaxTraceBlock, non-negative compute) — writers validate before encoding.
void EncodePfctRecord(const TraceEntry& e, uint8_t* out);

// True if `path` names a readable file starting with the PFCT magic. Used
// by tools to auto-detect the format by content, not extension.
bool LooksLikePfct(const std::string& path);

}  // namespace pfc

#endif  // PFC_TRACE_PFCT_H_
