// postgres-join and postgres-select: the Postgres RDBMS running Wisconsin
// Benchmark queries (section 3.1).
//
// join: a join between an indexed 32 MB relation and a non-indexed 3.2 MB
// relation. "The index blocks are accessed much more frequently than the
// data blocks." Reconstruction: sequential scan of the 410-block outer
// relation interleaved with index-probe / data-block pairs against the inner
// relation. 8896 reads, 3793 distinct (410 outer + 400 index + 2983 inner
// data), 79.2 s compute (see the Table-3-vs-appendix note in generators.cc).
//
// select: an indexed selection of 2% of the tuples of the 32 MB relation.
// Reconstruction: a walk through the index leaves in key order, re-reading
// the current leaf between qualifying tuples, with one scattered data-block
// read per tuple at ascending random offsets. 5044 reads, 3085 distinct
// (150 leaves + 2935 data), 11.5 s compute.

#include <algorithm>
#include <vector>

#include "trace/file_layout.h"
#include "trace/gen_common.h"
#include "trace/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace pfc {

Trace MakePostgresJoin(uint64_t seed) {
  const TraceSpec& spec = *FindTraceSpec("postgres-join");
  Rng rng(SplitMix64(seed) ^ 0x90574E5ULL);

  constexpr int64_t kOuterBlocks = 410;   // 3.2 MB relation
  constexpr int64_t kIndexBlocks = 400;   // index on the 32 MB relation
  const int64_t inner_blocks = spec.paper_distinct - kOuterBlocks - kIndexBlocks;  // 2983

  FileLayout layout(&rng);
  const int outer_file = 0;
  layout.AddFile(kOuterBlocks);
  const int index_file = 1;
  layout.AddFile(kIndexBlocks);
  const int inner_file = 2;
  layout.AddFile(inner_blocks);

  const int64_t probe_reads = spec.paper_reads - kOuterBlocks;  // 8486
  PFC_CHECK(probe_reads % 2 == 0);
  const int64_t probes = probe_reads / 2;  // 4243 (index read + data read each)

  // Inner data blocks: cover every block once (a join touches all matching
  // tuples), in shuffled order. Repeat probes re-touch a *recently* probed
  // block (duplicate join keys cluster), so they hit the cache — the paper's
  // fixed horizon issues only 3856 fetches for 8896 reads.
  std::vector<int64_t> data_order(static_cast<size_t>(inner_blocks));
  for (int64_t i = 0; i < inner_blocks; ++i) {
    data_order[static_cast<size_t>(i)] = i;
  }
  Shuffle(&data_order, &rng);
  const int64_t repeats = probes - inner_blocks;
  for (int64_t i = 0; i < repeats; ++i) {
    // Insert each repeat just after the original so reuse stays inside the
    // cache's reach.
    size_t pos = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(data_order.size()) - 1));
    int64_t recent = data_order[pos - 1];
    data_order.insert(data_order.begin() + static_cast<int64_t>(pos), recent);
  }

  // Index blocks: every leaf touched at least once; the rest of the probes
  // hit a skewed hot set (upper-level pages are re-read constantly).
  std::vector<int64_t> index_order(static_cast<size_t>(probes));
  for (int64_t i = 0; i < probes; ++i) {
    if (i < kIndexBlocks) {
      index_order[static_cast<size_t>(i)] = i;
    } else {
      index_order[static_cast<size_t>(i)] = rng.SkewedRank(kIndexBlocks, 2.0);
    }
  }
  Shuffle(&index_order, &rng);

  Trace trace(spec.name);
  trace.Reserve(spec.paper_reads);
  int64_t probe_cursor = 0;
  for (int64_t o = 0; o < kOuterBlocks; ++o) {
    trace.Append(layout.BlockAddress(outer_file, o), DurNs{0});
    // Probes attributable to this outer block.
    int64_t until = probes * (o + 1) / kOuterBlocks;
    for (; probe_cursor < until; ++probe_cursor) {
      trace.Append(
          layout.BlockAddress(index_file, index_order[static_cast<size_t>(probe_cursor)]), DurNs{0});
      trace.Append(layout.BlockAddress(inner_file, data_order[static_cast<size_t>(probe_cursor)]),
                   DurNs{0});
    }
  }
  PFC_CHECK(trace.size() == spec.paper_reads);

  FillComputeNormal(&trace, 8.9, 0.4, spec.paper_compute_sec, &rng);
  return trace;
}

Trace MakePostgresSelect(uint64_t seed) {
  const TraceSpec& spec = *FindTraceSpec("postgres-select");
  Rng rng(SplitMix64(seed) ^ 0x90574E55ULL);

  constexpr int64_t kLeafBlocks = 150;    // index leaves, walked in key order
  constexpr int64_t kRelationBlocks = 4096;  // the 32 MB relation
  const int64_t data_distinct = spec.paper_distinct - kLeafBlocks;  // 2935
  const int64_t index_reads = spec.paper_reads - data_distinct;     // 2109

  FileLayout layout(&rng);
  const int index_file = 0;
  layout.AddFile(kLeafBlocks);
  const int data_file = 1;
  layout.AddFile(kRelationBlocks);

  // Qualifying tuples live in `data_distinct` distinct blocks; the index
  // scan returns them in key order, and the indexed attribute is not
  // correlated with physical placement (Wisconsin benchmark), so the block
  // offsets arrive in effectively random order — this is what makes
  // postgres-select's average fetch time ~14-15 ms in the paper.
  std::vector<int64_t> data_offsets;
  data_offsets.reserve(static_cast<size_t>(kRelationBlocks));
  for (int64_t i = 0; i < kRelationBlocks; ++i) {
    data_offsets.push_back(i);
  }
  Shuffle(&data_offsets, &rng);
  data_offsets.resize(static_cast<size_t>(data_distinct));

  Trace trace(spec.name);
  trace.Reserve(spec.paper_reads);
  int64_t index_emitted = 0;
  for (int64_t t = 0; t < data_distinct; ++t) {
    // Interleave index-leaf reads so leaves are revisited between tuples.
    int64_t until = index_reads * (t + 1) / data_distinct;
    int64_t leaf = kLeafBlocks * t / data_distinct;
    for (; index_emitted < until; ++index_emitted) {
      trace.Append(layout.BlockAddress(index_file, leaf), DurNs{0});
    }
    trace.Append(layout.BlockAddress(data_file, data_offsets[static_cast<size_t>(t)]), DurNs{0});
  }
  PFC_CHECK(trace.size() == spec.paper_reads);

  // ~2.3 ms of query processing per read: against ~14 ms scattered reads
  // this is the paper's most I/O-bound trace on one disk (utilization .98).
  FillComputeExponential(&trace, 2.28, spec.paper_compute_sec, &rng);
  return trace;
}

}  // namespace pfc
