// Assigns logical block addresses to the files a trace generator creates.
//
// The paper's traces recorded (file, offset) pairs; the simulators placed
// each file at a random starting point within an 8550-block allocation group
// (100 HP 97560 cylinders), matching typical file-system clustering, so
// intra-file seeks stay under ~7.24 ms (section 3.2). FileLayout reproduces
// that: each file occupies contiguous logical blocks beginning at a random
// offset inside its own chain of allocation groups.

#ifndef PFC_TRACE_FILE_LAYOUT_H_
#define PFC_TRACE_FILE_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/strong_types.h"

namespace pfc {

class FileLayout {
 public:
  // One allocation group = 8550 8-KB blocks (100 cylinders).
  static constexpr int64_t kGroupBlocks = 8550;

  explicit FileLayout(Rng* rng);

  // Allocates a file of `blocks` contiguous logical blocks; returns its base
  // address. Files never overlap.
  BlockId AddFile(int64_t blocks);

  // Allocates a file whose blocks are fragmented into extents of
  // `extent_blocks` placed at shuffled offsets inside the file's allocation
  // group(s) — FFS-style fragmentation of an incrementally written tree.
  // Sequential reads of such a file hop between extents with short
  // within-group seeks. Returns the file id (not an address).
  int AddFragmentedFile(int64_t blocks, int64_t extent_blocks);

  // Base address of file `id` (ids are assigned in AddFile order).
  BlockId FileBase(int file_id) const;
  int64_t FileBlocks(int file_id) const;
  int num_files() const { return static_cast<int>(base_.size()); }

  // Logical address of block `offset` within file `id`.
  BlockId BlockAddress(int file_id, int64_t offset) const;

 private:
  Rng* rng_;
  int64_t next_group_ = 0;
  std::vector<int64_t> base_;    // -1 for fragmented files
  std::vector<int64_t> blocks_;
  // For fragmented files: explicit address of every block.
  std::vector<std::vector<int64_t>> scattered_;
};

}  // namespace pfc

#endif  // PFC_TRACE_FILE_LAYOUT_H_
