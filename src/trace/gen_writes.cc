// Write-extension workload builders (the paper studies reads only; writes
// are its named future work — section 6).

#include <algorithm>

#include "trace/file_layout.h"
#include "trace/gen_common.h"
#include "trace/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace pfc {

Trace WithUpdates(const Trace& base, double update_fraction, uint64_t seed) {
  PFC_CHECK(update_fraction >= 0.0 && update_fraction <= 1.0);
  Rng rng(SplitMix64(seed) ^ 0x3217E5ULL);
  Trace out(base.name() + "+updates");
  out.Reserve(base.size() * 2);
  for (TracePos i{0}; i.v() < base.size(); ++i) {
    if (base.is_write(i)) {
      out.AppendWrite(base.block(i), base.compute(i));
      continue;
    }
    if (rng.UniformDouble() < update_fraction) {
      // Split the inter-reference compute around the write-back.
      DurNs compute = base.compute(i);
      out.Append(base.block(i), compute / 2);
      out.AppendWrite(base.block(i), compute - compute / 2);
    } else {
      out.Append(base.block(i), base.compute(i));
    }
  }
  return out;
}

Trace MakeCopyTrace(int64_t blocks, double compute_ms, uint64_t seed) {
  PFC_CHECK(blocks > 0);
  Rng rng(SplitMix64(seed) ^ 0xC0B1ULL);
  FileLayout layout(&rng);
  const int src = 0;
  layout.AddFile(blocks);
  const int dst = 1;
  layout.AddFile(blocks);

  Trace trace("copy");
  trace.Reserve(2 * blocks);
  for (int64_t i = 0; i < blocks; ++i) {
    trace.Append(layout.BlockAddress(src, i),
                 MsToNs(std::max(0.05, compute_ms * (0.5 + rng.UniformDouble()))));
    trace.AppendWrite(layout.BlockAddress(dst, i),
                      MsToNs(std::max(0.05, compute_ms * (0.5 + rng.UniformDouble()))));
  }
  return trace;
}

}  // namespace pfc
