// Reconstructions of the paper's ten file-access traces.
//
// The original DECstation 5000/200 traces are not available, so each
// generator synthesizes a deterministic trace that matches the workload's
// Table 3 summary (read count exactly, distinct-block count exactly or very
// closely, total compute time exactly) and its qualitative access pattern as
// described in section 3.1. See DESIGN.md ("Substitutions") for the mapping.
//
// All generators are pure functions of their seed.

#ifndef PFC_TRACE_GENERATORS_H_
#define PFC_TRACE_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace pfc {

struct TraceSpec {
  std::string name;
  std::string description;
  int64_t paper_reads = 0;        // Table 3 "reads"
  int64_t paper_distinct = 0;     // Table 3 "distinct blocks"
  double paper_compute_sec = 0;   // Table 3 "compute time (sec)"
  int cache_blocks = 1280;        // simulation cache size for this trace
};

// Default seed used by the bench binaries; any seed gives a valid trace.
inline constexpr uint64_t kDefaultTraceSeed = 19960901;  // TR 96-09-01

// All ten specs, in the paper's Table 3 order.
const std::vector<TraceSpec>& AllTraceSpecs();

// Spec lookup by name; nullptr if unknown.
const TraceSpec* FindTraceSpec(const std::string& name);

// Builds a trace by name ("dinero", "cscope1", ..., "synth").
Trace MakeTrace(const std::string& name, uint64_t seed = kDefaultTraceSeed);

// Individual generators.
Trace MakeDinero(uint64_t seed);
Trace MakeCscope1(uint64_t seed);
Trace MakeCscope2(uint64_t seed);
Trace MakeCscope3(uint64_t seed);
Trace MakeGlimpse(uint64_t seed);
Trace MakeLd(uint64_t seed);
Trace MakePostgresJoin(uint64_t seed);
Trace MakePostgresSelect(uint64_t seed);
Trace MakeXds(uint64_t seed);
Trace MakeSynth(uint64_t seed);

// --- Write-extension workloads (the paper's future-work item) --------------

// Read-modify-write variant of an existing trace: after each read, the
// application writes the same block back with probability `update_fraction`
// (the write inherits a small share of the read's compute time).
Trace WithUpdates(const Trace& base, double update_fraction, uint64_t seed);

// A file-copy workload: read the source sequentially, writing each block to
// the destination as it goes. Half reads, half writes.
Trace MakeCopyTrace(int64_t blocks, double compute_ms, uint64_t seed);

}  // namespace pfc

#endif  // PFC_TRACE_GENERATORS_H_
