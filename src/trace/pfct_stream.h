// PfctStream: windowed streaming reader over a .pfct file.
//
// A streaming Trace (Trace::OpenPfctStreaming) holds one of these instead
// of an in-memory entry vector. Random entry access pages 16-byte records
// in window-sized chunks through a small fixed set of cache slots, so peak
// resident memory is O(slots * window_records) — bounded by the file's
// window size, never by trace length. Replay through the simulator is
// effectively sequential (the engines walk the cursor forward and policies
// look a bounded distance ahead), so a handful of slots absorbs nearly all
// locality; a multi-GB trace replays from a few MB of resident windows.
//
// Each window's checksum (when the file carries an index) is verified the
// first time the window is paged in; a mismatch throws SimError, because by
// then the caller is mid-replay and has no Expected channel to return
// through. Open-time errors — bad magic, truncation, absurd fields — come
// back as Expected diagnostics from Open().
//
// Thread-safety: none. The window cache mutates on read, so a streaming
// Trace must not be shared across concurrently running engines; harness
// code that fans out over threads must materialize first (or clamp to one
// job). In-memory traces are unaffected.

#ifndef PFC_TRACE_PFCT_STREAM_H_
#define PFC_TRACE_PFCT_STREAM_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/pfct.h"
#include "trace/trace.h"
#include "util/expected.h"

namespace pfc {

class PfctStream {
 public:
  // How many windows stay resident. Sized for the access pattern of a
  // replay: the cursor's window, the policies' lookahead window, reverse
  // aggressive's backward pass, and slack for the index build's sequential
  // sweep. Small on purpose — the memory bound is the point.
  static constexpr int64_t kCacheSlots = 8;

  struct Stats {
    int64_t window_loads = 0;        // windows paged in, including reloads
    int64_t distinct_windows = 0;    // windows touched at least once
    int64_t entry_reads = 0;         // Entry() calls served
    int64_t peak_resident_bytes = 0; // high-water mark of cached record data
  };

  // Opens and validates `path`. Files without a window index stream too:
  // they page in kPfctDefaultWindowRecords-sized chunks, just without
  // checksum verification.
  static Expected<std::unique_ptr<PfctStream>> Open(const std::string& path);

  ~PfctStream();
  PfctStream(const PfctStream&) = delete;
  PfctStream& operator=(const PfctStream&) = delete;

  int64_t size() const { return header_.record_count; }
  const std::string& name() const { return header_.name; }
  const std::string& path() const { return path_; }
  int64_t window_records() const { return window_records_; }

  // The record at position i (0 <= i < size()). The reference is valid
  // until the next Entry() call that pages a window out — callers must copy
  // what they keep. Throws SimError on I/O failure or checksum mismatch.
  const TraceEntry& Entry(int64_t i);

  const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    int64_t window = -1;  // -1 = empty
    int64_t last_use = 0;
    std::vector<TraceEntry> entries;
  };

  PfctStream(std::FILE* f, std::string path, PfctHeader header);

  // Pages window `w` into a slot (evicting the least recently used) and
  // returns it. Verifies the window checksum when the file has an index.
  Slot& LoadWindow(int64_t w);

  std::FILE* file_;
  std::string path_;
  PfctHeader header_;
  int64_t window_records_;  // effective paging unit (header's, or default)
  std::vector<uint64_t> window_sums_;  // empty when the file has no index
  std::vector<bool> window_verified_;
  std::vector<bool> loaded_once_;  // per-window: counted in distinct_windows
  std::vector<Slot> slots_;
  std::vector<uint8_t> io_buf_;
  int64_t tick_ = 0;
  Stats stats_;
};

}  // namespace pfc

#endif  // PFC_TRACE_PFCT_STREAM_H_
