#include "trace/trace.h"

#include <algorithm>
#include <unordered_set>

#include "trace/pfct_stream.h"
#include "util/check.h"

namespace pfc {

Expected<Trace> Trace::OpenPfctStreaming(const std::string& path) {
  Expected<std::unique_ptr<PfctStream>> stream = PfctStream::Open(path);
  if (!stream.ok()) {
    return Expected<Trace>::Failure(stream.error());
  }
  Trace trace;
  trace.stream_ = std::move(stream.value());
  trace.stream_size_ = trace.stream_->size();
  trace.name_ = trace.stream_->name();
  return trace;
}

const TraceEntry& Trace::StreamEntry(TracePos i) const {
  // The window cache mutates on read; const access is part of the Trace
  // interface, the single-threaded contract makes it safe.
  return stream_->Entry(i.v());
}

void Trace::CheckMutable() const {
  PFC_CHECK_MSG(stream_ == nullptr,
                "streaming traces are read-only (Materialize() first)");
}

const std::vector<TraceEntry>& Trace::entries() const {
  PFC_CHECK_MSG(stream_ == nullptr,
                "entries() needs the in-memory backing (Materialize() first)");
  return entries_;
}

void Trace::Append(BlockId block, DurNs compute) {
  CheckMutable();
  PFC_CHECK(block >= BlockId{0});
  PFC_CHECK(compute >= DurNs{0});
  entries_.push_back(TraceEntry{block, compute, false});
}

void Trace::AppendWrite(BlockId block, DurNs compute) {
  CheckMutable();
  PFC_CHECK(block >= BlockId{0});
  PFC_CHECK(compute >= DurNs{0});
  entries_.push_back(TraceEntry{block, compute, true});
}

void Trace::SetCompute(TracePos i, DurNs value) {
  CheckMutable();
  PFC_CHECK(i >= TracePos{0} && i.v() < size());
  PFC_CHECK(value >= DurNs{0});
  entries_[static_cast<size_t>(i.v())].compute = value;
}

int64_t Trace::WriteCount() const {
  int64_t writes = 0;
  for (TracePos i{0}; i.v() < size(); ++i) {
    writes += is_write(i) ? 1 : 0;
  }
  return writes;
}

int64_t Trace::DistinctBlocks() const {
  std::unordered_set<BlockId> seen;
  seen.reserve(static_cast<size_t>(size()));
  for (TracePos i{0}; i.v() < size(); ++i) {
    seen.insert(block(i));
  }
  return static_cast<int64_t>(seen.size());
}

BlockId Trace::MaxBlock() const {
  BlockId max_block{-1};
  for (TracePos i{0}; i.v() < size(); ++i) {
    max_block = std::max(max_block, block(i));
  }
  return max_block + 1;
}

DurNs Trace::TotalCompute() const {
  DurNs total;
  for (TracePos i{0}; i.v() < size(); ++i) {
    total += compute(i);
  }
  return total;
}

void Trace::RescaleCompute(DurNs target_total) {
  CheckMutable();
  DurNs current = TotalCompute();
  PFC_CHECK(current > DurNs{0});
  double factor = static_cast<double>(target_total.ns()) / static_cast<double>(current.ns());
  ScaleCompute(factor);
  // Push rounding residue into the last entry so the total is exact.
  DurNs residue = target_total - TotalCompute();
  if (!entries_.empty()) {
    DurNs& last = entries_.back().compute;
    last = std::max(DurNs{0}, last + residue);
  }
}

void Trace::ScaleCompute(double factor) {
  CheckMutable();
  PFC_CHECK(factor > 0.0);
  for (TraceEntry& e : entries_) {
    e.compute = DurNs(static_cast<int64_t>(static_cast<double>(e.compute.ns()) * factor + 0.5));
  }
}

Trace Trace::Reversed() const {
  Trace out(name_ + "-reversed");
  out.Reserve(size());
  for (int64_t i = size() - 1; i >= 0; --i) {
    out.entries_.push_back(entry(TracePos{i}));
  }
  return out;
}

Trace Trace::Prefix(int64_t n) const {
  PFC_CHECK(n >= 0);
  n = std::min(n, size());
  Trace out(name_ + "-prefix");
  out.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    out.entries_.push_back(entry(TracePos{i}));
  }
  return out;
}

Trace Trace::Materialize() const {
  if (stream_ == nullptr) {
    return *this;
  }
  Trace out(name_);
  out.Reserve(size());
  for (int64_t i = 0; i < size(); ++i) {
    out.entries_.push_back(entry(TracePos{i}));
  }
  return out;
}

}  // namespace pfc
