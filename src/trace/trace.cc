#include "trace/trace.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace pfc {

void Trace::Append(BlockId block, DurNs compute) {
  PFC_CHECK(block >= BlockId{0});
  PFC_CHECK(compute >= DurNs{0});
  entries_.push_back(TraceEntry{block, compute, false});
}

void Trace::AppendWrite(BlockId block, DurNs compute) {
  PFC_CHECK(block >= BlockId{0});
  PFC_CHECK(compute >= DurNs{0});
  entries_.push_back(TraceEntry{block, compute, true});
}

int64_t Trace::WriteCount() const {
  int64_t writes = 0;
  for (const TraceEntry& e : entries_) {
    writes += e.is_write ? 1 : 0;
  }
  return writes;
}

int64_t Trace::DistinctBlocks() const {
  std::unordered_set<BlockId> seen;
  seen.reserve(entries_.size());
  for (const TraceEntry& e : entries_) {
    seen.insert(e.block);
  }
  return static_cast<int64_t>(seen.size());
}

BlockId Trace::MaxBlock() const {
  BlockId max_block{-1};
  for (const TraceEntry& e : entries_) {
    max_block = std::max(max_block, e.block);
  }
  return max_block + 1;
}

DurNs Trace::TotalCompute() const {
  DurNs total;
  for (const TraceEntry& e : entries_) {
    total += e.compute;
  }
  return total;
}

void Trace::RescaleCompute(DurNs target_total) {
  DurNs current = TotalCompute();
  PFC_CHECK(current > DurNs{0});
  double factor = static_cast<double>(target_total.ns()) / static_cast<double>(current.ns());
  ScaleCompute(factor);
  // Push rounding residue into the last entry so the total is exact.
  DurNs residue = target_total - TotalCompute();
  if (!entries_.empty()) {
    DurNs& last = entries_.back().compute;
    last = std::max(DurNs{0}, last + residue);
  }
}

void Trace::ScaleCompute(double factor) {
  PFC_CHECK(factor > 0.0);
  for (TraceEntry& e : entries_) {
    e.compute = DurNs(static_cast<int64_t>(static_cast<double>(e.compute.ns()) * factor + 0.5));
  }
}

Trace Trace::Reversed() const {
  Trace out(name_ + "-reversed");
  out.Reserve(size());
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    out.entries_.push_back(*it);
  }
  return out;
}

Trace Trace::Prefix(int64_t n) const {
  PFC_CHECK(n >= 0);
  n = std::min(n, size());
  Trace out(name_ + "-prefix");
  out.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    out.entries_.push_back(entries_[static_cast<size_t>(i)]);
  }
  return out;
}

}  // namespace pfc
