// Umbrella header: the pfc public API.
//
// pfc is a from-scratch reproduction of Kimbrel et al., "A Trace-Driven
// Comparison of Algorithms for Parallel Prefetching and Caching" (OSDI '96):
// a disk-accurate simulator for integrated prefetching and caching over a
// parallel disk array, the five policies the paper studies, reconstructions
// of its ten traces, and a harness that regenerates its tables and figures.
//
// Quick start:
//
//   #include "pfc/pfc.h"
//
//   pfc::Trace trace = pfc::MakeTrace("postgres-select");
//   pfc::SimConfig config = pfc::BaselineConfig("postgres-select", /*disks=*/4);
//   pfc::RunResult r = pfc::RunOne(trace, config, pfc::PolicyKind::kForestall);
//   std::puts(r.ToString().c_str());

#ifndef PFC_PFC_H_
#define PFC_PFC_H_

#include "check/diff.h"
#include "check/fuzz.h"
#include "check/ref_cache.h"
#include "check/ref_sim.h"
#include "core/buffer_cache.h"
#include "core/next_ref.h"
#include "core/policies/aggressive.h"
#include "core/policies/demand.h"
#include "core/policies/fixed_horizon.h"
#include "core/policies/lru_demand.h"
#include "core/policies/forestall.h"
#include "core/policies/reverse_aggressive.h"
#include "core/policy.h"
#include "core/run_result.h"
#include "core/sim_config.h"
#include "core/sim_error.h"
#include "core/simulator.h"
#include "core/trace_context.h"
#include "disk/disk.h"
#include "disk/disk_array.h"
#include "disk/fault_model.h"
#include "disk/disk_mechanism.h"
#include "disk/geometry.h"
#include "disk/scheduler.h"
#include "disk/seek_model.h"
#include "disk/simple_mechanism.h"
#include "harness/experiment.h"
#include "harness/paper_tables.h"
#include "harness/runner.h"
#include "harness/study.h"
#include "layout/placement.h"
#include "obs/disk_timeline.h"
#include "obs/event.h"
#include "obs/event_sink.h"
#include "obs/export.h"
#include "obs/obs_report.h"
#include "obs/stall_attribution.h"
#include "obs/text_report.h"
#include "theory/lower_bound.h"
#include "trace/convert.h"
#include "trace/file_layout.h"
#include "trace/generators.h"
#include "trace/pfct.h"
#include "trace/pfct_stream.h"
#include "trace/trace.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "util/expected.h"
#include "util/flat_set.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/time_util.h"

#endif  // PFC_PFC_H_
