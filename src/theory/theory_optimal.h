// Exhaustive search for the optimal elapsed time in the theoretical model.
//
// Explores every prefetching/caching schedule by breadth-first search over
// (cursor, cache contents, per-disk in-flight) states, one time step per
// layer. Exponential, so only tiny instances are feasible (<= ~12 distinct
// blocks, <= 3 disks, short sequences) — exactly what is needed to verify
// the policies against the paper's theorems on randomized instances and to
// confirm Figure 1's optimal schedule.

#ifndef PFC_THEORY_THEORY_OPTIMAL_H_
#define PFC_THEORY_THEORY_OPTIMAL_H_

#include <cstdint>

#include "theory/theory_sim.h"

namespace pfc {

// Minimum elapsed time over all valid schedules for the simulator's
// instance (sequence, disk layout, initial cache, K, F, d). `state_limit`
// bounds the search; the function aborts via PFC_CHECK if exceeded.
int64_t TheoryOptimalElapsed(const TheorySimulator& sim, int64_t state_limit = 4000000);

}  // namespace pfc

#endif  // PFC_THEORY_THEORY_OPTIMAL_H_
