#include "theory/theory_sim.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.h"

namespace pfc {

namespace {
constexpr int64_t kNoRef = INT64_MAX / 4;
}  // namespace

TheorySimulator::TheorySimulator(std::vector<int64_t> refs,
                                 std::unordered_map<int64_t, int> disk_of, TheoryConfig config)
    : refs_(std::move(refs)), disk_of_(std::move(disk_of)), config_(config) {
  PFC_CHECK(config_.cache_blocks > 0);
  PFC_CHECK(config_.num_disks > 0);
  PFC_CHECK(config_.fetch_time >= 1);
  for (int64_t b : refs_) {
    auto it = disk_of_.find(b);
    PFC_CHECK_MSG(it != disk_of_.end(), "referenced block has no disk assignment");
    PFC_CHECK(it->second >= 0 && it->second < config_.num_disks);
  }
}

int TheorySimulator::DiskOf(int64_t block) const {
  auto it = disk_of_.find(block);
  PFC_CHECK(it != disk_of_.end());
  return it->second;
}

void TheorySimulator::SetInitialCache(const std::vector<int64_t>& blocks) {
  PFC_CHECK(static_cast<int>(blocks.size()) <= config_.cache_blocks);
  initial_cache_ = blocks;
}

// ---------------------------------------------------------------------------
// Shared time-stepped execution core.
// ---------------------------------------------------------------------------
struct TheorySimulator::Engine {
  const TheorySimulator& sim;
  // Per-block positions for next-use queries.
  std::unordered_map<int64_t, std::vector<int64_t>> positions;

  int64_t t = 0;   // model time
  int64_t k = 0;   // next reference index
  std::map<int64_t, int64_t> key_of;               // present block -> next use
  std::set<std::pair<int64_t, int64_t>> by_key;    // (next use, block), present only
  struct InFlight {
    int64_t block = -1;
    int64_t arrival = 0;
  };
  std::vector<InFlight> disks;
  int used = 0;  // present + in-flight buffers
  int64_t fetches = 0;

  explicit Engine(const TheorySimulator& s) : sim(s) {
    for (int64_t i = 0; i < static_cast<int64_t>(s.refs_.size()); ++i) {
      positions[s.refs_[static_cast<size_t>(i)]].push_back(i);
    }
    disks.resize(static_cast<size_t>(s.config_.num_disks));
    for (int64_t b : s.initial_cache_) {
      MakePresent(b, NextUse(b, 0));
    }
  }

  int64_t NextUse(int64_t block, int64_t from) const {
    auto it = positions.find(block);
    if (it == positions.end()) {
      return kNoRef;
    }
    auto pos = std::lower_bound(it->second.begin(), it->second.end(), from);
    return pos == it->second.end() ? kNoRef : *pos;
  }

  bool Present(int64_t b) const { return key_of.count(b) > 0; }
  bool InFlightBlock(int64_t b) const {
    for (const InFlight& f : disks) {
      if (f.block == b) {
        return true;
      }
    }
    return false;
  }
  bool Absent(int64_t b) const { return !Present(b) && !InFlightBlock(b); }
  bool DiskFree(int d) const {
    const InFlight& f = disks[static_cast<size_t>(d)];
    return f.block < 0 || f.arrival <= t;
  }
  int FreeBuffers() const { return sim.config_.cache_blocks - used; }

  void MakePresent(int64_t b, int64_t key) {
    PFC_CHECK(key_of.emplace(b, key).second);
    by_key.insert({key, b});
    ++used;
  }
  void Evict(int64_t b) {
    auto it = key_of.find(b);
    PFC_CHECK(it != key_of.end());
    by_key.erase({it->second, b});
    key_of.erase(it);
    --used;
  }
  // Furthest present block, or -1.
  int64_t Furthest() const { return by_key.empty() ? -1 : by_key.rbegin()->second; }
  int64_t FurthestKey() const { return by_key.empty() ? -1 : by_key.rbegin()->first; }

  // Starts a fetch at the current time. evict < 0 takes a free buffer.
  void StartFetch(int64_t block, int64_t evict) {
    int d = sim.DiskOf(block);
    PFC_CHECK_MSG(DiskFree(d), "fetch issued to a busy disk");
    PFC_CHECK_MSG(Absent(block), "fetch for a non-absent block");
    if (evict >= 0) {
      PFC_CHECK_MSG(Present(evict), "eviction of a non-present block");
      Evict(evict);
    } else {
      PFC_CHECK_MSG(FreeBuffers() > 0, "no free buffer for fetch");
    }
    disks[static_cast<size_t>(d)] = InFlight{block, t + sim.config_.fetch_time};
    ++used;  // the in-flight block holds a buffer
    ++fetches;
  }

  void ProcessArrivals() {
    for (InFlight& f : disks) {
      if (f.block >= 0 && f.arrival <= t) {
        --used;  // transferred to the present accounting below
        MakePresent(f.block, NextUse(f.block, k));
        f.block = -1;
      }
    }
  }

  // Runs to completion; `issue` is called once per time step after arrivals
  // and may start fetches on free disks.
  template <typename IssueFn>
  TheoryResult Run(IssueFn issue) {
    const int64_t n = static_cast<int64_t>(sim.refs_.size());
    const int64_t bound = (n + 2) * (sim.config_.fetch_time + 1) + 16;
    while (k < n) {
      PFC_CHECK_MSG(t < bound, "theory model failed to make progress");
      ProcessArrivals();
      issue(*this);
      const int64_t b = sim.refs_[static_cast<size_t>(k)];
      if (Present(b)) {
        // Consume during [t, t+1).
        auto it = key_of.find(b);
        by_key.erase({it->second, b});
        it->second = NextUse(b, k + 1);
        by_key.insert({it->second, b});
        ++k;
      } else if (Absent(b) && !demand_pending) {
        // The issue hook had its chance; fetch on demand with the optimal
        // eviction unless a disk-busy wait is required.
        int d = sim.DiskOf(b);
        if (DiskFree(d)) {
          int64_t victim = FreeBuffers() > 0 ? -1 : Furthest();
          if (victim >= 0 || FreeBuffers() > 0) {
            StartFetch(b, victim);
          }
        }
      }
      ++t;
    }
    TheoryResult result;
    result.elapsed = t;
    result.stall = t - n;
    result.fetches = fetches;
    return result;
  }

  // RunSchedule sets this so scheduled fetches are not pre-empted by the
  // engine's demand path.
  bool demand_pending = false;
};

TheoryResult TheorySimulator::RunSchedule(const std::vector<TheoryFetch>& schedule) const {
  Engine engine(*this);
  size_t next = 0;
  auto issue = [&](Engine& e) {
    while (next < schedule.size() && schedule[next].issue_time <= e.t) {
      const TheoryFetch& f = schedule[next];
      if (!e.DiskFree(DiskOf(f.block))) {
        break;  // starts as soon as the disk frees
      }
      e.StartFetch(f.block, f.evict);
      ++next;
    }
    // Suppress the demand path while the schedule still plans a fetch for
    // the current reference.
    e.demand_pending = false;
    const int64_t cur = refs_[static_cast<size_t>(e.k)];
    for (size_t i = next; i < schedule.size(); ++i) {
      if (schedule[i].block == cur) {
        e.demand_pending = true;
        break;
      }
    }
  };
  return engine.Run(issue);
}

TheoryResult TheorySimulator::RunDemandOptimal() const {
  Engine engine(*this);
  return engine.Run([](Engine&) {});
}

TheoryResult TheorySimulator::RunAggressive() const {
  Engine engine(*this);
  auto issue = [this](Engine& e) {
    for (int d = 0; d < config_.num_disks; ++d) {
      if (!e.DiskFree(d)) {
        continue;
      }
      // First missing block on this disk.
      int64_t miss_pos = -1;
      for (int64_t p = e.k; p < static_cast<int64_t>(refs_.size()); ++p) {
        int64_t b = refs_[static_cast<size_t>(p)];
        if (e.Absent(b) && DiskOf(b) == d) {
          miss_pos = p;
          break;
        }
      }
      if (miss_pos < 0) {
        continue;
      }
      int64_t block = refs_[static_cast<size_t>(miss_pos)];
      if (e.FreeBuffers() > 0) {
        e.StartFetch(block, -1);
      } else if (e.FurthestKey() > miss_pos) {  // do no harm
        e.StartFetch(block, e.Furthest());
      }
    }
  };
  return engine.Run(issue);
}

TheoryResult TheorySimulator::RunFixedHorizon(int64_t horizon) const {
  Engine engine(*this);
  auto issue = [this, horizon](Engine& e) {
    const int64_t end = std::min<int64_t>(e.k + horizon, static_cast<int64_t>(refs_.size()) - 1);
    for (int64_t p = e.k; p <= end; ++p) {
      int64_t b = refs_[static_cast<size_t>(p)];
      if (!e.Absent(b) || !e.DiskFree(DiskOf(b))) {
        continue;
      }
      if (e.FreeBuffers() > 0) {
        e.StartFetch(b, -1);
      } else if (e.FurthestKey() > e.k + horizon) {
        e.StartFetch(b, e.Furthest());
      }
    }
  };
  return engine.Run(issue);
}

}  // namespace pfc
