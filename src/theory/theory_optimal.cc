#include "theory/theory_optimal.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace pfc {

namespace {

// Dense-id instance description.
struct Instance {
  std::vector<int> refs;                   // block ids per position
  std::vector<int> disk;                   // block id -> disk
  std::vector<std::vector<int>> positions; // block id -> positions
  int num_blocks = 0;
  int num_disks = 0;
  int cache_blocks = 0;
  int fetch_time = 0;

  bool UsedAgain(int block, int from) const {
    const std::vector<int>& p = positions[static_cast<size_t>(block)];
    return std::lower_bound(p.begin(), p.end(), from) != p.end();
  }
};

// Packed state: cursor (6 bits) | present mask (16 bits) | per disk
// (block+1: 5 bits, remaining: 3 bits).
struct State {
  int k = 0;
  uint32_t present = 0;
  struct Flight {
    int block = -1;   // -1 idle
    int remaining = 0;
  };
  Flight flight[3];

  uint64_t Pack(int num_disks) const {
    uint64_t v = static_cast<uint64_t>(k);
    v = (v << 16) | present;
    for (int d = 0; d < num_disks; ++d) {
      v = (v << 5) | static_cast<uint64_t>(flight[d].block + 1);
      v = (v << 3) | static_cast<uint64_t>(flight[d].remaining);
    }
    return v;
  }

  int PresentCount() const { return __builtin_popcount(present); }
  int InFlightCount(int num_disks) const {
    int c = 0;
    for (int d = 0; d < num_disks; ++d) {
      c += flight[d].block >= 0 ? 1 : 0;
    }
    return c;
  }
};

// Enumerates every combination of per-idle-disk actions (including no-op)
// and applies one time step.
void Expand(const Instance& inst, const State& s, std::vector<State>* out) {
  // Determine idle disks and the candidate (fetch, evict) actions per disk.
  struct Action {
    int fetch = -1;  // -1 = no-op
    int evict = -1;  // -1 = free buffer
  };
  std::vector<std::vector<Action>> options;
  std::vector<int> idle;
  const int buffers_used = s.PresentCount() + s.InFlightCount(inst.num_disks);
  for (int d = 0; d < inst.num_disks; ++d) {
    if (s.flight[d].block >= 0) {
      continue;
    }
    idle.push_back(d);
    std::vector<Action> acts = {Action{}};
    for (int b = 0; b < inst.num_blocks; ++b) {
      if (inst.disk[static_cast<size_t>(b)] != d) {
        continue;
      }
      bool absent = (s.present & (1u << b)) == 0;
      for (int dd = 0; dd < inst.num_disks; ++dd) {
        if (s.flight[dd].block == b) {
          absent = false;
        }
      }
      if (!absent || !inst.UsedAgain(b, s.k)) {
        continue;  // fetching a dead or resident block never helps
      }
      if (buffers_used < inst.cache_blocks) {
        acts.push_back(Action{b, -1});
      }
      for (int e = 0; e < inst.num_blocks; ++e) {
        if ((s.present & (1u << e)) != 0) {
          acts.push_back(Action{b, e});
        }
      }
    }
    options.push_back(std::move(acts));
  }

  // Cartesian product over idle disks.
  std::vector<size_t> choice(options.size(), 0);
  for (;;) {
    State next = s;
    bool valid = true;
    int used = buffers_used;
    for (size_t i = 0; i < options.size() && valid; ++i) {
      const Action& a = options[i][choice[i]];
      if (a.fetch < 0) {
        continue;
      }
      // Re-validate against the partially applied state (two disks must not
      // fetch the same block; evictions must still be present; buffers must
      // not be oversubscribed).
      bool absent = (next.present & (1u << a.fetch)) == 0;
      for (int dd = 0; dd < inst.num_disks; ++dd) {
        if (next.flight[dd].block == a.fetch) {
          absent = false;
        }
      }
      if (!absent) {
        valid = false;
        break;
      }
      if (a.evict >= 0) {
        if ((next.present & (1u << a.evict)) == 0) {
          valid = false;
          break;
        }
        next.present &= ~(1u << a.evict);
        --used;
      } else if (used >= inst.cache_blocks) {
        valid = false;
        break;
      }
      next.flight[idle[i]].block = a.fetch;
      next.flight[idle[i]].remaining = inst.fetch_time;
      ++used;
    }

    if (valid) {
      // Consume if the current reference is present.
      if (next.k < static_cast<int>(inst.refs.size()) &&
          (next.present & (1u << inst.refs[static_cast<size_t>(next.k)])) != 0) {
        ++next.k;
      }
      // Advance the in-flight fetches; arrivals become present.
      for (int d = 0; d < inst.num_disks; ++d) {
        if (next.flight[d].block >= 0 && --next.flight[d].remaining == 0) {
          next.present |= 1u << next.flight[d].block;
          next.flight[d].block = -1;
        }
      }
      out->push_back(next);
    }

    // Next combination.
    size_t i = 0;
    for (; i < choice.size(); ++i) {
      if (++choice[i] < options[i].size()) {
        break;
      }
      choice[i] = 0;
    }
    if (i == choice.size()) {
      break;  // all combinations emitted (covers the no-idle-disk case too)
    }
  }
}

}  // namespace

int64_t TheoryOptimalElapsed(const TheorySimulator& sim, int64_t state_limit) {
  const TheoryConfig& config = sim.config();
  PFC_CHECK_MSG(config.num_disks <= 3, "optimal search supports <= 3 disks");
  PFC_CHECK_MSG(config.fetch_time <= 7, "optimal search supports F <= 7");
  PFC_CHECK_MSG(sim.refs().size() <= 60, "optimal search supports short sequences");

  // Dense block ids.
  Instance inst;
  inst.num_disks = config.num_disks;
  inst.cache_blocks = config.cache_blocks;
  inst.fetch_time = static_cast<int>(config.fetch_time);
  std::unordered_map<int64_t, int> id;
  auto intern = [&](int64_t block) {
    auto [it, inserted] = id.emplace(block, static_cast<int>(id.size()));
    if (inserted) {
      inst.disk.push_back(sim.DiskOf(block));
      inst.positions.emplace_back();
    }
    return it->second;
  };
  for (size_t i = 0; i < sim.refs().size(); ++i) {
    int b = intern(sim.refs()[i]);
    inst.refs.push_back(b);
    inst.positions[static_cast<size_t>(b)].push_back(static_cast<int>(i));
  }
  for (int64_t b : sim.initial_cache()) {
    intern(b);
  }
  inst.num_blocks = static_cast<int>(id.size());
  PFC_CHECK_MSG(inst.num_blocks <= 16, "optimal search supports <= 16 distinct blocks");

  State start;
  for (int64_t b : sim.initial_cache()) {
    start.present |= 1u << id[b];
  }

  // BFS, one layer per time step.
  const int goal = static_cast<int>(inst.refs.size());
  std::vector<State> frontier = {start};
  std::unordered_set<uint64_t> visited = {start.Pack(inst.num_disks)};
  int64_t explored = 0;
  for (int64_t t = 0;; ++t) {
    PFC_CHECK_MSG(!frontier.empty(), "optimal search exhausted without reaching the goal");
    std::vector<State> next_frontier;
    for (const State& s : frontier) {
      std::vector<State> successors;
      Expand(inst, s, &successors);
      for (const State& n : successors) {
        if (n.k == goal) {
          return t + 1;  // the final consume happened during step t
        }
        uint64_t key = n.Pack(inst.num_disks);
        if (visited.insert(key).second) {
          next_frontier.push_back(n);
          PFC_CHECK_MSG(++explored < state_limit, "optimal search exceeded the state limit");
        }
      }
    }
    frontier = std::move(next_frontier);
  }
}

}  // namespace pfc
