#include "theory/lower_bound.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "disk/disk_mechanism.h"
#include "disk/simple_mechanism.h"
#include "layout/placement.h"

namespace pfc {

DurNs MinServiceFloorNs(const SimConfig& config) {
  DurNs floor;
  if (config.disk_model == DiskModelKind::kSimple) {
    // The simple model's cheapest outcome is a detected sequential
    // continuation.
    floor = SimpleMechanismParams{}.sequential_access;
  } else {
    // The detailed model's cheapest outcome is a streaming continuation,
    // which costs at least the firmware streaming overhead (plus media
    // time we conservatively ignore). A readahead-buffer hit costs
    // controller + bus time, which is strictly more.
    floor = MechanismParams{}.streaming_overhead;
  }
  if (config.faults.enabled()) {
    // A failing attempt occupies the drive for error_latency (fail-stop) or
    // a fault-adjusted mechanism time (>= the mechanism floor); the block
    // still reaches the application, so the cheapest per-required-block disk
    // occupancy is the smaller of the two.
    floor = std::min(floor, config.faults.error_latency);
  }
  return floor;
}

DurNs TheoryLowerBoundNs(const Trace& trace, const SimConfig& config) {
  DurNs compute_total;
  for (TracePos pos{0}; pos.v() < trace.size(); ++pos) {
    compute_total += DurNs(static_cast<int64_t>(
        static_cast<double>(trace.compute(pos).ns()) * config.cpu_scale + 0.5));
  }

  // Blocks whose first reference is a read must be fetched at least once
  // (a first-written block materializes in a buffer without I/O).
  std::unique_ptr<Placement> placement = MakePlacement(config.placement, config.num_disks);
  std::unordered_set<BlockId> seen;
  std::vector<int64_t> required_per_disk(static_cast<size_t>(config.num_disks), 0);
  int64_t required = 0;
  for (TracePos pos{0}; pos.v() < trace.size(); ++pos) {
    const BlockId block = trace.block(pos);
    if (!seen.insert(block).second) {
      continue;
    }
    if (!trace.is_write(pos)) {
      ++required;
      ++required_per_disk[static_cast<size_t>(placement->Map(block).disk.v())];
    }
  }

  const DurNs app_floor = compute_total + config.driver_overhead * required;

  const DurNs min_service = MinServiceFloorNs(config);
  DurNs disk_floor;
  for (int64_t count : required_per_disk) {
    disk_floor = std::max(disk_floor, count * min_service);
  }

  return std::max(app_floor, disk_floor);
}

}  // namespace pfc
