// The paper's theoretical model (section 2.1), as an executable simulator.
//
// Time advances in integer steps; serving a cached reference takes exactly
// one step; every fetch takes exactly F steps on the block's disk (one fetch
// in service per disk); starting a fetch evicts its victim immediately. The
// figures of merit are elapsed time (= n + total stall) and stall.
//
// This model is where the paper's algorithms have provable properties
// (aggressive within d(1+e) of optimal, reverse aggressive within 1+e), and
// where its Figure 1 example lives. pfc uses it to validate the policy
// logic against a brute-force optimal schedule on small instances
// (theory_optimal.h) and to reproduce Figure 1 exactly.

#ifndef PFC_THEORY_THEORY_SIM_H_
#define PFC_THEORY_THEORY_SIM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace pfc {

struct TheoryConfig {
  int cache_blocks = 4;
  int num_disks = 2;
  int64_t fetch_time = 2;  // F, in reference (time) units
};

// One prefetch of an explicit schedule. Fetches are issued in list order;
// an entry whose disk is still busy at issue_time starts when the disk
// frees. evict = kNoEvict takes a free buffer.
struct TheoryFetch {
  static constexpr int64_t kNoEvict = -1;
  int64_t issue_time = 0;
  int64_t block = 0;
  int64_t evict = kNoEvict;
};

struct TheoryResult {
  int64_t elapsed = 0;  // steps to serve the whole sequence
  int64_t stall = 0;    // elapsed - n
  int64_t fetches = 0;
};

class TheorySimulator {
 public:
  // refs: the request sequence; disk_of: block -> disk (all referenced
  // blocks must be mapped).
  TheorySimulator(std::vector<int64_t> refs, std::unordered_map<int64_t, int> disk_of,
                  TheoryConfig config);

  // Blocks resident before the first reference (at most K).
  void SetInitialCache(const std::vector<int64_t>& blocks);

  // Executes an explicit prefetching schedule; demand-fetches anything the
  // schedule missed (with furthest-future eviction), so every schedule is
  // executable.
  TheoryResult RunSchedule(const std::vector<TheoryFetch>& schedule) const;

  // The paper's algorithms in the model.
  TheoryResult RunDemandOptimal() const;                  // fetch on miss, MIN eviction
  TheoryResult RunAggressive() const;                     // section 2.4's greedy
  TheoryResult RunFixedHorizon(int64_t horizon) const;    // section 2.3

  const std::vector<int64_t>& refs() const { return refs_; }
  const TheoryConfig& config() const { return config_; }
  const std::vector<int64_t>& initial_cache() const { return initial_cache_; }
  int DiskOf(int64_t block) const;

 private:
  struct Engine;  // the shared time-stepped execution core

  std::vector<int64_t> refs_;
  std::unordered_map<int64_t, int> disk_of_;
  TheoryConfig config_;
  std::vector<int64_t> initial_cache_;
};

}  // namespace pfc

#endif  // PFC_THEORY_THEORY_SIM_H_
