// A provable lower bound on simulated elapsed time for one (trace, config)
// cell, used by the differential-verification subsystem (src/check) as an
// external consistency oracle: whatever either engine reports, elapsed time
// can never fall below this bound.
//
// The bound is the max of two terms, each valid for *any* policy:
//
//   1. Application-clock floor. Elapsed time decomposes exactly as
//      compute + driver + stall. Compute is policy-independent (the scaled
//      inter-reference compute times), and every block whose first reference
//      is a read must be fetched at least once, charging one driver overhead
//      per fetch. Stall is non-negative. Hence
//        elapsed >= total_compute + driver_overhead * required_fetches.
//
//   2. Per-disk serialization floor. Each required block's fetch occupies
//      its disk for at least the mechanism's cheapest possible service time
//      (or the fault layer's error latency, whichever is smaller, since a
//      failing attempt still delivers the block via the recovery path), all
//      requests on one disk serialize, and the application cannot consume a
//      block before its disk request completed. Hence
//        elapsed >= max over disks of (required_fetches_on_disk * min_service).
//
// Both terms are deliberately conservative (they ignore stalls, queueing and
// realistic positioning costs); the point is soundness, not tightness.

#ifndef PFC_THEORY_LOWER_BOUND_H_
#define PFC_THEORY_LOWER_BOUND_H_

#include "core/sim_config.h"
#include "trace/trace.h"
#include "util/time_util.h"

namespace pfc {

// Cheapest service time a single request can possibly take under the
// config's disk model (and fault layer, if enabled).
DurNs MinServiceFloorNs(const SimConfig& config);

// The lower bound described above. Pure function of (trace, config);
// independent of policy.
DurNs TheoryLowerBoundNs(const Trace& trace, const SimConfig& config);

}  // namespace pfc

#endif  // PFC_THEORY_LOWER_BOUND_H_
