// A minimal expected-style result: a value or a descriptive error message.
//
// pfc targets C++20, so std::expected (C++23) is not available; this is the
// small subset the I/O paths need. An Expected<T> carrying an error has no
// value — callers must test ok() before dereferencing.

#ifndef PFC_UTIL_EXPECTED_H_
#define PFC_UTIL_EXPECTED_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace pfc {

template <typename T>
class Expected {
 public:
  // Implicit from a value, so `return trace;` works.
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  static Expected Failure(std::string message) {
    Expected e;
    e.error_ = std::move(message);
    return e;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    PFC_CHECK_MSG(ok(), "Expected::value() on an error result");
    return *value_;
  }
  T& value() & {
    PFC_CHECK_MSG(ok(), "Expected::value() on an error result");
    return *value_;
  }
  T&& take() {
    PFC_CHECK_MSG(ok(), "Expected::take() on an error result");
    return std::move(*value_);
  }

  // Empty when ok().
  const std::string& error() const { return error_; }

 private:
  Expected() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace pfc

#endif  // PFC_UTIL_EXPECTED_H_
