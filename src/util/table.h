// ASCII table formatting for the paper-reproduction bench binaries.
//
// Every bench target prints tables in the style of the paper's appendix:
// a header row of disk-array sizes and one row per metric. TextTable keeps
// that formatting in one place.

#ifndef PFC_UTIL_TABLE_H_
#define PFC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace pfc {

class TextTable {
 public:
  // Sets the column headers; column 0 is the row-label column.
  void SetHeader(std::vector<std::string> header);

  // Appends a row of cells. Rows may be ragged; missing cells render empty.
  void AddRow(std::vector<std::string> row);

  // Appends a horizontal separator line.
  void AddSeparator();

  // Renders with column alignment; label column left-aligned, the rest
  // right-aligned.
  std::string ToString() const;

  // Convenience cell formatters.
  static std::string Num(double v, int precision = 3);
  static std::string Int(long long v);

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace pfc

#endif  // PFC_UTIL_TABLE_H_
