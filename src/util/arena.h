// A per-job monotonic arena: one bump pointer over chunked slabs.
//
// The experiment runner simulates thousands of independent cells; each cell
// builds, grows, and tears down the same few large flat arrays (the cache's
// hash table and eviction heap, the event queue's backing store, the
// compute prefix sums). Under a thread pool those short-lived allocations
// all contend on the global heap — per-cell allocation churn was one of the
// three causes of the parallel grid losing to serial (ISSUE 6). An Arena
// gives every job its own allocation stream: Allocate() is a pointer bump,
// Deallocate is a no-op, and the slabs return to the heap in one batch when
// the job's simulator is destroyed.
//
// The arena is strictly single-threaded, like the Simulator that owns it.
// ArenaAllocator adapts it to standard containers; with a null arena it
// falls back to the global heap, so arena use is opt-in per container and
// a default-constructed container stays valid.

#ifndef PFC_UTIL_ARENA_H_
#define PFC_UTIL_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace pfc {

class Arena {
 public:
  // First slab size; subsequent slabs double, capped at kMaxSlab. Vectors
  // that outgrow a slab simply allocate from the next one — the vacated
  // space is not reused (monotonic by design: peak memory per cell is a few
  // slabs, and the simulator's arrays grow to their final size early).
  static constexpr size_t kFirstSlab = size_t{64} * 1024;
  static constexpr size_t kMaxSlab = size_t{8} * 1024 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(size_t bytes, size_t align) {
    uintptr_t p = (cur_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > end_) {
      return AllocateSlow(bytes, align);
    }
    cur_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  // Total bytes handed out (diagnostic; includes alignment padding).
  size_t bytes_used() const { return used_; }

 private:
  void* AllocateSlow(size_t bytes, size_t align) {
    // Oversized requests get a dedicated slab so they never strand most of
    // a fresh slab behind the bump pointer.
    size_t slab = next_slab_;
    if (bytes + align > slab) {
      slab = bytes + align;
    } else {
      next_slab_ = std::min(next_slab_ * 2, kMaxSlab);
    }
    slabs_.push_back(std::make_unique<unsigned char[]>(slab));
    uintptr_t base = reinterpret_cast<uintptr_t>(slabs_.back().get());
    uintptr_t p = (base + (align - 1)) & ~(uintptr_t{align} - 1);
    cur_ = p + bytes;
    end_ = base + slab;
    used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  uintptr_t cur_ = 0;
  uintptr_t end_ = 0;
  size_t next_slab_ = kFirstSlab;
  size_t used_ = 0;
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
};

// Standard-allocator adapter. Copyable, compares equal iff same arena; a
// null arena delegates to the global heap. Deallocation via an arena is a
// no-op (memory is reclaimed when the arena dies), which is exactly right
// for the simulator's grow-only arrays.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // The adapter is stateful: containers must carry it on move/copy rather
  // than default-constructing a heap-backed one.
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, size_t) noexcept {
    if (arena_ == nullptr) {
      ::operator delete(p);
    }
  }

  Arena* arena() const { return arena_; }
  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace pfc

#endif  // PFC_UTIL_ARENA_H_
