// FlatSet: a sorted-vector set of BlockId keys.
//
// The simulator's write path touches small per-disk sets (dirty blocks,
// in-flight flushes) on every reference; node-based std::set/unordered_set
// pay an allocation per insert and chase pointers per lookup. A sorted
// vector keeps the same ordered semantics (min() is the smallest element,
// as *set::begin() was) with contiguous storage. Populations here are
// bounded by the cache's dirty high-water mark, so the O(n) insert/erase
// shifts are a handful of cache lines.

#ifndef PFC_UTIL_FLAT_SET_H_
#define PFC_UTIL_FLAT_SET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/strong_types.h"

namespace pfc {

class FlatSet {
 public:
  bool empty() const { return keys_.empty(); }
  size_t size() const { return keys_.size(); }

  bool contains(BlockId key) const {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    return it != keys_.end() && *it == key;
  }

  // Inserts `key`; returns false if already present.
  bool insert(BlockId key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) {
      return false;
    }
    keys_.insert(it, key);
    return true;
  }

  // Removes `key`; returns true if it was present.
  bool erase(BlockId key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) {
      return false;
    }
    keys_.erase(it);
    return true;
  }

  // Smallest element; undefined on an empty set.
  BlockId min() const { return keys_.front(); }

  void clear() { keys_.clear(); }

  std::vector<BlockId>::const_iterator begin() const { return keys_.begin(); }
  std::vector<BlockId>::const_iterator end() const { return keys_.end(); }

 private:
  std::vector<BlockId> keys_;
};

}  // namespace pfc

#endif  // PFC_UTIL_FLAT_SET_H_
