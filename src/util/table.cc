#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace pfc {

void TextTable::SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{false, std::move(row)});
}

void TextTable::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::ToString() const {
  size_t cols = header_.size();
  for (const Row& r : rows_) {
    cols = std::max(cols, r.cells.size());
  }
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  widen(header_);
  for (const Row& r : rows_) {
    if (!r.separator) {
      widen(r.cells);
    }
  }

  size_t total = 1;
  for (size_t w : width) {
    total += w + 3;
  }

  std::string out;
  auto emit_sep = [&]() {
    out.append(total, '-');
    out += '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out += "|";
    for (size_t i = 0; i < cols; ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      size_t pad = width[i] - cell.size();
      out += ' ';
      if (i == 0) {
        out += cell;
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += cell;
      }
      out += " |";
    }
    out += "\n";
  };

  if (!header_.empty()) {
    emit_sep();
    emit_row(header_);
    emit_sep();
  }
  for (const Row& r : rows_) {
    if (r.separator) {
      emit_sep();
    } else {
      emit_row(r.cells);
    }
  }
  emit_sep();
  return out;
}

}  // namespace pfc
