#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace pfc {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  state_ = SplitMix64(seed);
  inc_ = SplitMix64(seed + 0xDA3E39CB94B95BDBULL) | 1ULL;
  // Warm up per PCG convention.
  Next();
}

uint32_t Rng::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
  uint32_t rot = static_cast<uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint32_t Rng::UniformU32(uint32_t bound) {
  PFC_CHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    uint32_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PFC_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit span.
    uint64_t r = (static_cast<uint64_t>(Next()) << 32) | Next();
    return static_cast<int64_t>(r);
  }
  if (span <= UINT32_MAX) {
    return lo + UniformU32(static_cast<uint32_t>(span));
  }
  // Rare in practice; rejection over 64 bits.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  for (;;) {
    uint64_t r = (static_cast<uint64_t>(Next()) << 32) | Next();
    if (r < limit) {
      return lo + static_cast<int64_t>(r % span);
    }
  }
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  uint64_t r = (static_cast<uint64_t>(Next()) << 32) | Next();
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Exponential(double mean) {
  PFC_CHECK(mean > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

int64_t Rng::Poisson(double mean) {
  PFC_CHECK(mean >= 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    double v = mean + std::sqrt(mean) * Normal();
    return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  double limit = std::exp(-mean);
  double prod = UniformDouble();
  int64_t n = 0;
  while (prod > limit) {
    prod *= UniformDouble();
    ++n;
  }
  return n;
}

double Rng::Normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

int64_t Rng::SkewedRank(int64_t n, double s) {
  PFC_CHECK(n > 0);
  if (s <= 0.0) {
    return UniformInt(0, n - 1);
  }
  // Inverse-CDF of a power-law density f(x) ~ (1-x)^s over [0,1): cheap,
  // deterministic, and monotone in the underlying uniform draw.
  double u = UniformDouble();
  double x = 1.0 - std::pow(1.0 - u, 1.0 / (s + 1.0));
  int64_t rank = static_cast<int64_t>(x * static_cast<double>(n));
  return rank >= n ? n - 1 : rank;
}

}  // namespace pfc
