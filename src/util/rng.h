// Deterministic random number generation for trace synthesis.
//
// Every stochastic choice in pfc flows through Rng so that a (generator,
// seed) pair reproduces a trace bit-for-bit. The core generator is PCG32
// (O'Neill), seeded through SplitMix64 so that small consecutive seeds give
// uncorrelated streams.

#ifndef PFC_UTIL_RNG_H_
#define PFC_UTIL_RNG_H_

#include <cstdint>

namespace pfc {

// Stateless 64-bit mixer; used for seeding and hashing.
uint64_t SplitMix64(uint64_t x);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 32-bit value.
  uint32_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint32_t UniformU32(uint32_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Exponentially distributed double with the given mean (> 0).
  double Exponential(double mean);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  int64_t Poisson(double mean);

  // Standard normal via Box-Muller.
  double Normal();

  // Geometric-like "zipf-ish" rank in [0, n) with skew s >= 0; s == 0 is
  // uniform, larger s concentrates mass on low ranks. Used to model hot/cold
  // block popularity (glimpse index blocks, postgres index pages).
  int64_t SkewedRank(int64_t n, double s);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace pfc

#endif  // PFC_UTIL_RNG_H_
