// Lightweight runtime assertion macros used throughout pfc.
//
// PFC_CHECK(cond) aborts with a message if `cond` is false, in all build
// types. Simulator invariants are cheap relative to the work they guard, so
// there is no debug-only variant; a broken invariant in a discrete-event
// simulation silently corrupts every downstream statistic.

#ifndef PFC_UTIL_CHECK_H_
#define PFC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define PFC_CHECK(cond)                                                              \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "PFC_CHECK failed: %s at %s:%d\n", #cond, __FILE__,       \
                   __LINE__);                                                        \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#define PFC_CHECK_MSG(cond, msg)                                                    \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      std::fprintf(stderr, "PFC_CHECK failed: %s (%s) at %s:%d\n", #cond, msg,      \
                   __FILE__, __LINE__);                                             \
      std::abort();                                                                 \
    }                                                                               \
  } while (0)

#endif  // PFC_UTIL_CHECK_H_
