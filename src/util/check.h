// Lightweight runtime assertion macros used throughout pfc.
//
// PFC_CHECK(cond) aborts with a message if `cond` is false, in all build
// types. Simulator invariants are cheap relative to the work they guard, so
// there is no debug-only variant; a broken invariant in a discrete-event
// simulation silently corrupts every downstream statistic.
//
// The comparison variants (PFC_CHECK_EQ/NE/LT/LE/GT/GE) print both operand
// values on failure, which turns "PFC_CHECK failed: now == complete_time"
// into an actionable message with the two clocks in it.

#ifndef PFC_UTIL_CHECK_H_
#define PFC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>

#define PFC_CHECK(cond)                                                              \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "PFC_CHECK failed: %s at %s:%d\n", #cond, __FILE__,       \
                   __LINE__);                                                        \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#define PFC_CHECK_MSG(cond, msg)                                                    \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      std::fprintf(stderr, "PFC_CHECK failed: %s (%s) at %s:%d\n", #cond, msg,      \
                   __FILE__, __LINE__);                                             \
      std::abort();                                                                 \
    }                                                                               \
  } while (0)

namespace pfc {
namespace check_internal {

// Out-of-line failure reporter so the macros stay cheap at the call site.
// Streams both operands, so any type with operator<< works.
template <typename A, typename B>
[[noreturn]] void FailOp(const char* macro, const char* a_expr, const char* b_expr,
                         const A& a, const B& b, const char* file, int line) {
  std::ostringstream os;
  os << a << " vs " << b;
  std::fprintf(stderr, "%s failed: %s vs %s (%s) at %s:%d\n", macro, a_expr, b_expr,
               os.str().c_str(), file, line);
  std::abort();
}

}  // namespace check_internal
}  // namespace pfc

#define PFC_CHECK_OP_IMPL(macro, op, a, b)                                          \
  do {                                                                              \
    auto&& pfc_check_a = (a);                                                       \
    auto&& pfc_check_b = (b);                                                       \
    if (!(pfc_check_a op pfc_check_b)) {                                            \
      ::pfc::check_internal::FailOp(macro, #a, #b, pfc_check_a, pfc_check_b,        \
                                    __FILE__, __LINE__);                            \
    }                                                                               \
  } while (0)

#define PFC_CHECK_EQ(a, b) PFC_CHECK_OP_IMPL("PFC_CHECK_EQ", ==, a, b)
#define PFC_CHECK_NE(a, b) PFC_CHECK_OP_IMPL("PFC_CHECK_NE", !=, a, b)
#define PFC_CHECK_LT(a, b) PFC_CHECK_OP_IMPL("PFC_CHECK_LT", <, a, b)
#define PFC_CHECK_LE(a, b) PFC_CHECK_OP_IMPL("PFC_CHECK_LE", <=, a, b)
#define PFC_CHECK_GT(a, b) PFC_CHECK_OP_IMPL("PFC_CHECK_GT", >, a, b)
#define PFC_CHECK_GE(a, b) PFC_CHECK_OP_IMPL("PFC_CHECK_GE", >=, a, b)

#endif  // PFC_UTIL_CHECK_H_
