// Simulation time representation.
//
// All simulator clocks are 64-bit integer nanoseconds. Integer time keeps
// event ordering exact and runs bit-identical across platforms; the disk
// model computes physical latencies in double milliseconds and converts at
// the boundary.

#ifndef PFC_UTIL_TIME_UTIL_H_
#define PFC_UTIL_TIME_UTIL_H_

#include <cstdint>
#include <string>

namespace pfc {

// Nanoseconds of simulated time.
using TimeNs = int64_t;

inline constexpr TimeNs kNsPerUs = 1000;
inline constexpr TimeNs kNsPerMs = 1000 * 1000;
inline constexpr TimeNs kNsPerSec = 1000 * 1000 * 1000;

// "No such time" sentinel, larger than any reachable simulation time.
inline constexpr TimeNs kTimeInfinity = INT64_MAX / 4;

constexpr TimeNs MsToNs(double ms) { return static_cast<TimeNs>(ms * 1e6 + 0.5); }
constexpr TimeNs UsToNs(double us) { return static_cast<TimeNs>(us * 1e3 + 0.5); }
constexpr TimeNs SecToNs(double sec) { return static_cast<TimeNs>(sec * 1e9 + 0.5); }

constexpr double NsToMs(TimeNs ns) { return static_cast<double>(ns) / 1e6; }
constexpr double NsToSec(TimeNs ns) { return static_cast<double>(ns) / 1e9; }

// Formats a duration as a human-readable string ("12.345 ms", "1.234 s").
std::string FormatDuration(TimeNs ns);

}  // namespace pfc

#endif  // PFC_UTIL_TIME_UTIL_H_
