// Simulation time representation.
//
// All simulator clocks are 64-bit integer nanoseconds, wrapped in the strong
// TimeNs (instant) / DurNs (span) types from util/strong_types.h. Integer
// time keeps event ordering exact and runs bit-identical across platforms;
// the disk model computes physical latencies in double milliseconds and
// converts at the boundary.

#ifndef PFC_UTIL_TIME_UTIL_H_
#define PFC_UTIL_TIME_UTIL_H_

#include <cstdint>
#include <string>

#include "util/strong_types.h"

namespace pfc {

inline constexpr DurNs kNsPerUs{1000};
inline constexpr DurNs kNsPerMs{1000 * 1000};
inline constexpr DurNs kNsPerSec{1000 * 1000 * 1000};

// "No such time" sentinel, later than any reachable simulation instant.
inline constexpr TimeNs kTimeInfinity{INT64_MAX / 4};
// Its span counterpart, longer than any reachable duration.
inline constexpr DurNs kDurInfinity{INT64_MAX / 4};

constexpr DurNs MsToNs(double ms) { return DurNs(static_cast<int64_t>(ms * 1e6 + 0.5)); }
constexpr DurNs UsToNs(double us) { return DurNs(static_cast<int64_t>(us * 1e3 + 0.5)); }
constexpr DurNs SecToNs(double sec) { return DurNs(static_cast<int64_t>(sec * 1e9 + 0.5)); }

constexpr double NsToMs(DurNs d) { return static_cast<double>(d.ns()) / 1e6; }
constexpr double NsToSec(DurNs d) { return static_cast<double>(d.ns()) / 1e9; }
// Instants convert too (a timestamp is a span since run start).
constexpr double NsToMs(TimeNs t) { return static_cast<double>(t.ns()) / 1e6; }
constexpr double NsToSec(TimeNs t) { return static_cast<double>(t.ns()) / 1e9; }

// Formats a duration as a human-readable string ("12.345 ms", "1.234 s").
std::string FormatDuration(DurNs d);

}  // namespace pfc

#endif  // PFC_UTIL_TIME_UTIL_H_
