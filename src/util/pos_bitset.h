// PosBitSet: a hierarchical bitmap over trace positions [0, n).
//
// MissingTracker's per-reference work is dominated by ordered-set
// operations on positions: insert, erase, and "smallest element >= p".
// A node-based std::set pays an allocation per insert and a pointer chase
// per query; this bitmap stores one bit per position with a summary word
// per 64 positions (recursively, until one word covers everything), so all
// three operations are O(levels) ~ O(log64 n) touches of contiguous memory.
//
// The successor query FirstAtLeast(p) is the workhorse: std::set's
// upper_bound(p) is exactly FirstAtLeast(p + 1), and *begin() is
// FirstAtLeast(0). Absence is reported as kNone, chosen equal to
// NextRefIndex::kNoRef's magnitude class (far beyond any trace) so callers
// can compare against window edges without a separate sentinel check.

#ifndef PFC_UTIL_POS_BITSET_H_
#define PFC_UTIL_POS_BITSET_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "util/strong_types.h"

namespace pfc {

class PosBitSet {
 public:
  // No position set; far beyond any valid trace position.
  static constexpr int64_t kNone = INT64_MAX / 4;

  explicit PosBitSet(int64_t n) : n_(n) {
    int64_t words = WordsFor(n);
    for (;;) {
      levels_.emplace_back(static_cast<size_t>(words), uint64_t{0});
      if (words <= 1) {
        break;
      }
      words = WordsFor(words);  // one summary bit per word below
    }
  }

  int64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  bool Test(int64_t i) const {
    return (levels_[0][static_cast<size_t>(i >> 6)] >> (i & 63)) & 1u;
  }

  void Set(int64_t i) {
    if (Test(i)) {
      return;
    }
    ++count_;
    for (size_t level = 0; level < levels_.size(); ++level) {
      uint64_t& word = levels_[level][static_cast<size_t>(i >> 6)];
      const uint64_t bit = uint64_t{1} << (i & 63);
      const bool was_zero = word == 0;
      word |= bit;
      if (!was_zero) {
        break;  // summary bit above is already set
      }
      i >>= 6;
    }
  }

  void Reset(int64_t i) {
    if (!Test(i)) {
      return;
    }
    --count_;
    for (size_t level = 0; level < levels_.size(); ++level) {
      uint64_t& word = levels_[level][static_cast<size_t>(i >> 6)];
      word &= ~(uint64_t{1} << (i & 63));
      if (word != 0) {
        break;  // word still non-empty; summaries above stay set
      }
      i >>= 6;
    }
  }

  // Smallest set position >= i, or kNone.
  int64_t FirstAtLeast(int64_t i) const {
    if (i < 0) {
      i = 0;
    }
    if (count_ == 0 || i >= n_) {
      return kNone;
    }
    int64_t idx = i;
    size_t level = 0;
    for (;;) {
      const int64_t w = idx >> 6;
      if (w < static_cast<int64_t>(levels_[level].size())) {
        const uint64_t word = levels_[level][static_cast<size_t>(w)] >> (idx & 63);
        if (word != 0) {
          idx += std::countr_zero(word);
          // Descend: a set summary bit marks a non-empty word below.
          while (level > 0) {
            --level;
            idx = (idx << 6) +
                  std::countr_zero(levels_[level][static_cast<size_t>(idx)]);
          }
          return idx;
        }
      }
      // This word is exhausted; resume at the next summary bit above.
      idx = w + 1;
      if (++level == levels_.size()) {
        return kNone;
      }
    }
  }

 private:
  static int64_t WordsFor(int64_t bits) { return bits <= 0 ? 1 : (bits + 63) / 64; }

  int64_t n_;
  int64_t count_ = 0;
  // levels_[0] is one bit per position; levels_[k][w] bit b summarizes
  // whether levels_[k-1][w * 64 + b] is non-zero. The top level is one word.
  std::vector<std::vector<uint64_t>> levels_;
};

}  // namespace pfc

#endif  // PFC_UTIL_POS_BITSET_H_
