// Strong domain types: zero-overhead wrappers that make unit confusion a
// compile error.
//
// The simulator's correctness hinges on exact unit discipline — nanosecond
// clocks, logical block addresses, trace positions, disk/sector coordinates.
// Each wrapper here holds one 64-bit (or 32-bit, for DiskId) integer and
// exposes only the operations its unit legitimately supports:
//
//   TimeNs  — an instant on the simulated clock. Points support ordering and
//             point +/- span arithmetic; TimeNs - TimeNs yields a DurNs.
//             TimeNs + TimeNs (or TimeNs + BlockId) does not compile.
//   DurNs   — a signed span of simulated time. Full additive group, integer
//             scaling, and ratio (DurNs / DurNs -> int64_t).
//   BlockId — a logical filesystem block address. Ordinal: ordered, offsets
//             by raw integers (block + 1 is the next block), differences
//             yield raw counts. No time arithmetic.
//   TracePos — an index into the reference stream. Same ordinal shape as
//             BlockId but a distinct type: swapping a (block, pos) argument
//             pair is a compile error.
//   DiskId  — an index into the disk array (32-bit, matching the historical
//             `int disk` layout in BlockLocation and ObsEvent).
//   SectorAddr / Cylinder — physical disk coordinates for the geometric
//             drive model; distinct from each other and from block ids.
//
// All wrappers are trivially copyable, default-initialize to zero, and are
// exactly the size of their representation (static_asserted below), so
// replacing a raw field with a wrapper changes neither struct layout nor
// serialized bytes. Construction from and extraction to the raw
// representation are explicit (`BlockId{7}`, `b.v()`): every boundary where
// unit discipline is entered or deliberately left is visible in the source,
// which is what tools/pfc_lint keys on.

#ifndef PFC_UTIL_STRONG_TYPES_H_
#define PFC_UTIL_STRONG_TYPES_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>
#include <type_traits>

namespace pfc {

// A signed span of simulated time, in nanoseconds.
class DurNs {
 public:
  constexpr DurNs() = default;
  constexpr explicit DurNs(int64_t ns) : ns_(ns) {}

  constexpr int64_t ns() const { return ns_; }

  friend constexpr DurNs operator+(DurNs a, DurNs b) { return DurNs(a.ns_ + b.ns_); }
  friend constexpr DurNs operator-(DurNs a, DurNs b) { return DurNs(a.ns_ - b.ns_); }
  constexpr DurNs operator-() const { return DurNs(-ns_); }
  friend constexpr DurNs operator*(DurNs a, int64_t k) { return DurNs(a.ns_ * k); }
  friend constexpr DurNs operator*(int64_t k, DurNs a) { return DurNs(k * a.ns_); }
  friend constexpr DurNs operator/(DurNs a, int64_t k) { return DurNs(a.ns_ / k); }
  // Ratio of two spans is a dimensionless count.
  friend constexpr int64_t operator/(DurNs a, DurNs b) { return a.ns_ / b.ns_; }
  friend constexpr DurNs operator%(DurNs a, DurNs b) { return DurNs(a.ns_ % b.ns_); }
  constexpr DurNs& operator+=(DurNs o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr DurNs& operator-=(DurNs o) {
    ns_ -= o.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(DurNs, DurNs) = default;

 private:
  int64_t ns_ = 0;
};

// An instant on the simulated clock, in nanoseconds since run start.
class TimeNs {
 public:
  constexpr TimeNs() = default;
  constexpr explicit TimeNs(int64_t ns) : ns_(ns) {}

  constexpr int64_t ns() const { return ns_; }

  friend constexpr TimeNs operator+(TimeNs t, DurNs d) { return TimeNs(t.ns_ + d.ns()); }
  friend constexpr TimeNs operator+(DurNs d, TimeNs t) { return TimeNs(d.ns() + t.ns_); }
  friend constexpr TimeNs operator-(TimeNs t, DurNs d) { return TimeNs(t.ns_ - d.ns()); }
  friend constexpr DurNs operator-(TimeNs a, TimeNs b) { return DurNs(a.ns_ - b.ns_); }
  constexpr TimeNs& operator+=(DurNs d) {
    ns_ += d.ns();
    return *this;
  }
  constexpr TimeNs& operator-=(DurNs d) {
    ns_ -= d.ns();
    return *this;
  }
  friend constexpr auto operator<=>(TimeNs, TimeNs) = default;

 private:
  int64_t ns_ = 0;
};

// Ordinal id: an integer-like position in some address space. Ordered,
// offsettable by raw integers, and subtractable (yielding a raw count), but
// distinct from every other ordinal space — BlockId + TracePos, or passing
// one where the other is expected, does not compile.
template <typename Tag, typename Rep>
class Ordinal {
 public:
  using rep = Rep;

  constexpr Ordinal() = default;
  constexpr explicit Ordinal(Rep v) : v_(v) {}

  constexpr Rep v() const { return v_; }

  friend constexpr Ordinal operator+(Ordinal a, Rep k) { return Ordinal(static_cast<Rep>(a.v_ + k)); }
  friend constexpr Ordinal operator-(Ordinal a, Rep k) { return Ordinal(static_cast<Rep>(a.v_ - k)); }
  // Distance between two positions in the same space.
  friend constexpr Rep operator-(Ordinal a, Ordinal b) { return static_cast<Rep>(a.v_ - b.v_); }
  constexpr Ordinal& operator+=(Rep k) {
    v_ = static_cast<Rep>(v_ + k);
    return *this;
  }
  constexpr Ordinal& operator-=(Rep k) {
    v_ = static_cast<Rep>(v_ - k);
    return *this;
  }
  constexpr Ordinal& operator++() {
    ++v_;
    return *this;
  }
  constexpr Ordinal operator++(int) {
    Ordinal old = *this;
    ++v_;
    return old;
  }
  constexpr Ordinal& operator--() {
    --v_;
    return *this;
  }
  friend constexpr auto operator<=>(Ordinal, Ordinal) = default;

 private:
  Rep v_ = 0;
};

// Logical filesystem block address (8 KB blocks), the trace's address space.
using BlockId = Ordinal<struct BlockIdTag, int64_t>;
// Index into the reference stream (the trace).
using TracePos = Ordinal<struct TracePosTag, int64_t>;
// Index into the disk array. 32-bit to preserve the layout of structs that
// historically held `int disk`.
using DiskId = Ordinal<struct DiskIdTag, int32_t>;
// Absolute sector number on one disk (the geometric model's address space).
using SectorAddr = Ordinal<struct SectorAddrTag, int64_t>;
// Cylinder coordinate on one disk (seek distances are cylinder differences).
using Cylinder = Ordinal<struct CylinderTag, int64_t>;

// Diagnostic stream output (PFC_CHECK_* failure messages, test logs). Prints
// the raw representation; production formatting goes through `.ns()`/`.v()`
// so the printf boundaries stay explicit.
inline std::ostream& operator<<(std::ostream& os, DurNs d) { return os << d.ns(); }
inline std::ostream& operator<<(std::ostream& os, TimeNs t) { return os << t.ns(); }
template <typename Tag, typename Rep>
std::ostream& operator<<(std::ostream& os, Ordinal<Tag, Rep> id) {
  return os << id.v();
}

// "No block" sentinel (eviction target meaning "take a free buffer",
// block field of non-block events, ...). Orders before every real block.
inline constexpr BlockId kNoBlock{-1};
// "No disk" sentinel for events not tied to a disk.
inline constexpr DiskId kNoDisk{-1};

// Every wrapper must be layout-identical to its representation: swapping a
// raw field for a wrapper must change neither struct layout nor golden CSV
// bytes, and passing wrappers by value must cost exactly a register.
static_assert(std::is_trivially_copyable_v<TimeNs> && sizeof(TimeNs) == sizeof(int64_t));
static_assert(std::is_trivially_copyable_v<DurNs> && sizeof(DurNs) == sizeof(int64_t));
static_assert(std::is_trivially_copyable_v<BlockId> && sizeof(BlockId) == sizeof(int64_t));
static_assert(std::is_trivially_copyable_v<TracePos> && sizeof(TracePos) == sizeof(int64_t));
static_assert(std::is_trivially_copyable_v<DiskId> && sizeof(DiskId) == sizeof(int32_t));
static_assert(std::is_trivially_copyable_v<SectorAddr> && sizeof(SectorAddr) == sizeof(int64_t));
static_assert(std::is_trivially_copyable_v<Cylinder> && sizeof(Cylinder) == sizeof(int64_t));

}  // namespace pfc

// Hash support so ids can key unordered containers. Delegates to the raw
// representation's hash, so bucket placement (and therefore iteration order,
// given identical insertion order) matches the pre-wrapper containers.
template <typename Tag, typename Rep>
struct std::hash<pfc::Ordinal<Tag, Rep>> {
  size_t operator()(pfc::Ordinal<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.v());
  }
};

#endif  // PFC_UTIL_STRONG_TYPES_H_
