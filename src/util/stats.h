// Streaming statistics accumulators used by the simulator and the harness.

#ifndef PFC_UTIL_STATS_H_
#define PFC_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pfc {

// Single-pass mean/variance/min/max accumulator (Welford).
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  // An empty accumulator has no extrema: min/max return NaN (0.0 would be
  // indistinguishable from a real observed zero).
  double min() const {
    return count_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return count_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  double sum() const { return sum_; }

  void Merge(const RunningStat& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
// end buckets. Used for disk response time distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  int64_t total() const { return total_; }
  // Value below which `fraction` of samples fall (linear interpolation
  // within the bucket). fraction in [0, 1].
  double Percentile(double fraction) const;
  std::string ToString(int max_rows = 16) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

// Sliding window over the most recent `capacity` samples, with O(1) sum.
// Forestall uses two of these (disk access times, inter-reference compute
// times) to estimate its fetch-time/compute-time ratio F.
class SlidingWindowSum {
 public:
  explicit SlidingWindowSum(int capacity);

  void Add(double x);
  double sum() const { return sum_; }
  double mean() const;
  int size() const { return static_cast<int>(window_.size()); }
  bool full() const { return static_cast<int>(window_.size()) == capacity_; }

 private:
  int capacity_;
  int next_ = 0;
  double sum_ = 0.0;
  std::vector<double> window_;
};

}  // namespace pfc

#endif  // PFC_UTIL_STATS_H_
