#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace pfc {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double new_mean = mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / static_cast<double>(n);
  mean_ = new_mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  PFC_CHECK(hi > lo);
  PFC_CHECK(buckets > 0);
  width_ = (hi - lo) / buckets;
  counts_.assign(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double x) {
  int idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = static_cast<int>(counts_.size()) - 1;
  } else {
    idx = static_cast<int>((x - lo_) / width_);
    idx = std::min(idx, static_cast<int>(counts_.size()) - 1);
  }
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::Percentile(double fraction) const {
  PFC_CHECK(fraction >= 0.0 && fraction <= 1.0);
  if (total_ == 0) {
    return lo_;
  }
  double target = fraction * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      double within = counts_[i] > 0 ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return lo_ + (static_cast<double>(i) + within) * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToString(int max_rows) const {
  std::string out;
  int64_t peak = 1;
  for (int64_t c : counts_) {
    peak = std::max(peak, c);
  }
  int step = std::max(1, static_cast<int>(counts_.size()) / std::max(1, max_rows));
  char line[160];
  for (size_t i = 0; i < counts_.size(); i += static_cast<size_t>(step)) {
    int64_t c = 0;
    for (size_t j = i; j < std::min(counts_.size(), i + static_cast<size_t>(step)); ++j) {
      c += counts_[j];
    }
    int bars = static_cast<int>(40.0 * static_cast<double>(c) / static_cast<double>(peak * step));
    std::snprintf(line, sizeof(line), "[%8.2f, %8.2f) %8lld %s\n",
                  lo_ + width_ * static_cast<double>(i),
                  lo_ + width_ * static_cast<double>(i + static_cast<size_t>(step)),
                  static_cast<long long>(c),
                  std::string(static_cast<size_t>(std::max(0, bars)), '#').c_str());
    out += line;
  }
  return out;
}

SlidingWindowSum::SlidingWindowSum(int capacity) : capacity_(capacity) {
  PFC_CHECK(capacity > 0);
  window_.reserve(static_cast<size_t>(capacity));
}

void SlidingWindowSum::Add(double x) {
  if (static_cast<int>(window_.size()) < capacity_) {
    window_.push_back(x);
    sum_ += x;
  } else {
    sum_ += x - window_[static_cast<size_t>(next_)];
    window_[static_cast<size_t>(next_)] = x;
  }
  next_ = (next_ + 1) % capacity_;
}

double SlidingWindowSum::mean() const {
  return window_.empty() ? 0.0 : sum_ / static_cast<double>(window_.size());
}

}  // namespace pfc
