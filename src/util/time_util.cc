#include "util/time_util.h"

#include <cmath>
#include <cstdio>

namespace pfc {

std::string FormatDuration(TimeNs ns) {
  char buf[64];
  double abs_ns = std::fabs(static_cast<double>(ns));
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f s", NsToSec(ns));
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", NsToMs(ns));
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f us", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace pfc
