#include "util/time_util.h"

#include <cmath>
#include <cstdio>

namespace pfc {

std::string FormatDuration(DurNs d) {
  char buf[64];
  double abs_ns = std::fabs(static_cast<double>(d.ns()));
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f s", NsToSec(d));
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", NsToMs(d));
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f us", static_cast<double>(d.ns()) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d.ns()));
  }
  return buf;
}

}  // namespace pfc
