// Online hint predictors: learned stand-ins for the paper's perfect oracle.
//
// Every studied policy consumes hints through the claims-vs-truth split
// (TraceContext::claims() + the engines' Hinted()/HintedBlock()); the paper
// feeds that interface from the trace itself — a perfect offline oracle. A
// Predictor instead emits the claimed-hint stream a real system could have
// produced *online*: it observes each reference as the application serves
// it and offers one-step next-block predictions which are chained
// `PredictorConfig::lookahead` deep to place a claim that far past the
// cursor (see hint_stream.h for the materialization).
//
// Three implementations, in increasing sophistication:
//   * kSequential — readahead: after block b, predict b+1. The classic
//     hintless prefetch heuristic; exact on sequential scans, useless on
//     pointer-chasing.
//   * kMarkov — Pangloss-style first-order Markov chain: count observed
//     successors of each block, predict the most frequent one (ties toward
//     the smaller block id, so the choice is independent of hash order).
//   * kTemporal — ISB/Domino-style temporal streaming: remember the last
//     successor of each (prev, cur) context pair, falling back to the last
//     successor of cur alone when the pair is novel.
//
// Predictors are deterministic pure functions of the observed prefix, which
// is what lets both engines (Simulator and RefSim) consume the same
// materialized claim stream and stay bit-identical.

#ifndef PFC_PREDICT_PREDICTOR_H_
#define PFC_PREDICT_PREDICTOR_H_

#include <memory>

#include "core/sim_config.h"
#include "util/strong_types.h"

namespace pfc {

class Predictor {
 public:
  virtual ~Predictor() = default;

  virtual const char* name() const = 0;

  // The application just consumed `block`. Learners update their tables
  // with the transition out of the previously observed reference(s);
  // history tracking is the predictor's own responsibility.
  virtual void Observe(BlockId block) = 0;

  // One-step prediction: the block expected to follow `cur`, where `prev`
  // is the block observed immediately before `cur` (kNoBlock at the stream
  // head). Returns kNoBlock when the tables give no basis for a claim.
  // Must be deterministic and must not learn — chained claims are
  // materialized once and replayed identically by both engines.
  virtual BlockId PredictAfter(BlockId prev, BlockId cur) const = 0;
};

// Factory for the learning kinds. kOracle and kNone have no predictor
// object (the oracle is the trace; hintless has no hints) and are rejected.
std::unique_ptr<Predictor> MakePredictor(PredictorKind kind);

}  // namespace pfc

#endif  // PFC_PREDICT_PREDICTOR_H_
