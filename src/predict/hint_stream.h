// Materialization of a predictor's claimed-hint stream over one trace.
//
// A claim for position p is what the predictor would announce at the moment
// p first becomes visible — when the cursor reaches p - lookahead — by
// chaining `lookahead` one-step predictions from the reference history
// observed so far. The result is a static per-position (hinted, claim)
// pair: the *visibility* of a claim is still dynamic in the cursor (the
// engines' Hinted() enforces pos - cursor <= lookahead, exactly as it does
// for HintFault::stale_lookahead), but the claim's content is a pure
// function of the trace prefix, so it can be computed once at TraceContext
// construction and shared read-only across engines and worker threads.
//
// Positions with no basis for a claim — the first `lookahead` references,
// and any position whose prediction chain hits a block the predictor has
// never seen — are simply unhinted: the policies treat them like
// undisclosed references and the demand path covers them.

#ifndef PFC_PREDICT_HINT_STREAM_H_
#define PFC_PREDICT_HINT_STREAM_H_

#include <vector>

#include "core/sim_config.h"
#include "trace/trace.h"
#include "util/strong_types.h"

namespace pfc {

struct PredictedHints {
  // Both sized trace.size(). Positions with hinted[p] == false are
  // invisible to prefetch planning, but their claims still carry the true
  // block: HintedBlock() is total (bookkeeping paths map any position's
  // claim to a disk without re-checking visibility), so no entry is ever
  // kNoBlock.
  std::vector<bool> hinted;
  std::vector<BlockId> claims;
};

// Runs the configured predictor over the trace once and returns the
// materialized hint stream. config.kind must be a learning kind
// (kSequential / kMarkov / kTemporal) with lookahead > 0; kNone needs no
// stream (nothing is hinted) and kOracle's hints come from the trace.
PredictedHints BuildPredictedHints(const Trace& trace, const PredictorConfig& config);

}  // namespace pfc

#endif  // PFC_PREDICT_HINT_STREAM_H_
