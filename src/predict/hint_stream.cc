#include "predict/hint_stream.h"

#include <memory>

#include "predict/predictor.h"
#include "util/check.h"

namespace pfc {

PredictedHints BuildPredictedHints(const Trace& trace, const PredictorConfig& config) {
  PFC_CHECK_MSG(config.kind != PredictorKind::kOracle && config.kind != PredictorKind::kNone,
                "BuildPredictedHints: no stream to build for oracle/hintless kinds");
  PFC_CHECK_MSG(config.lookahead > 0, "BuildPredictedHints: lookahead must be positive");

  const int64_t n = trace.size();
  PredictedHints out;
  out.hinted.assign(static_cast<size_t>(n), false);
  // Unhinted positions are invisible to planning (Hinted() is false), but
  // HintedBlock() must stay total — bookkeeping paths such as
  // MissingTracker::Erase map any position's claim to a disk without
  // re-checking visibility — so they carry the true block, never kNoBlock.
  out.claims.resize(static_cast<size_t>(n));
  for (TracePos p{0}; p.v() < n; ++p) {
    out.claims[static_cast<size_t>(p.v())] = trace.block(p);
  }

  std::unique_ptr<Predictor> predictor = MakePredictor(config.kind);
  BlockId prev = kNoBlock;  // block observed before `cur`
  BlockId cur = kNoBlock;   // block at the cursor
  for (TracePos c{0}; c.v() < n; ++c) {
    const BlockId b = trace.block(c);
    predictor->Observe(b);
    prev = cur;
    cur = b;
    const int64_t target = c.v() + config.lookahead;
    if (target >= n) {
      continue;  // claim would land past the end of the trace
    }
    // Chain lookahead one-step predictions from the state at the cursor;
    // the final link is the claim for position c + lookahead.
    BlockId walk_prev = prev;
    BlockId walk_cur = cur;
    bool complete = true;
    for (int64_t step = 0; step < config.lookahead; ++step) {
      const BlockId next = predictor->PredictAfter(walk_prev, walk_cur);
      if (next == kNoBlock) {
        complete = false;
        break;
      }
      walk_prev = walk_cur;
      walk_cur = next;
    }
    if (complete) {
      out.hinted[static_cast<size_t>(target)] = true;
      out.claims[static_cast<size_t>(target)] = walk_cur;
    }
  }
  return out;
}

}  // namespace pfc
