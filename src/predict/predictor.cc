#include "predict/predictor.h"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace pfc {

namespace {

// Readahead: the successor of block b is block b+1, unconditionally. No
// state to learn; the prediction is wrong exactly where the trace is not
// sequential.
class SequentialPredictor final : public Predictor {
 public:
  const char* name() const override { return "sequential"; }

  void Observe(BlockId block) override { (void)block; }

  BlockId PredictAfter(BlockId prev, BlockId cur) const override {
    (void)prev;
    if (cur == kNoBlock) {
      return kNoBlock;
    }
    return cur + 1;
  }
};

// Pangloss-style first-order Markov chain: per-block successor counts,
// predict the most frequent successor seen so far. Ties break toward the
// smaller block id so the answer never depends on container iteration
// order.
class MarkovPredictor final : public Predictor {
 public:
  const char* name() const override { return "markov"; }

  void Observe(BlockId block) override {
    if (last_ != kNoBlock) {
      std::vector<std::pair<BlockId, int64_t>>& succ = counts_[last_];
      bool found = false;
      for (auto& [b, count] : succ) {
        if (b == block) {
          ++count;
          found = true;
          break;
        }
      }
      if (!found) {
        succ.emplace_back(block, 1);
      }
    }
    last_ = block;
  }

  BlockId PredictAfter(BlockId prev, BlockId cur) const override {
    (void)prev;
    auto it = counts_.find(cur);
    if (it == counts_.end()) {
      return kNoBlock;
    }
    BlockId best = kNoBlock;
    int64_t best_count = 0;
    for (const auto& [b, count] : it->second) {
      if (count > best_count || (count == best_count && b < best)) {
        best = b;
        best_count = count;
      }
    }
    return best;
  }

 private:
  BlockId last_ = kNoBlock;
  // Successor lists are tiny (a block usually has a handful of observed
  // successors); a flat vector scan beats a nested map and is
  // iteration-order independent.
  std::unordered_map<BlockId, std::vector<std::pair<BlockId, int64_t>>> counts_;
};

// ISB/Domino-style temporal streaming: the last successor of the context
// pair (prev, cur) wins; a novel pair falls back to the last successor of
// cur alone. Captures repeated multi-block access sequences that a
// first-order chain blurs together.
class TemporalPredictor final : public Predictor {
 public:
  const char* name() const override { return "temporal"; }

  void Observe(BlockId block) override {
    if (last_ != kNoBlock) {
      first_order_[last_] = block;
      if (prev_ != kNoBlock) {
        pair_[PairKey(prev_, last_)] = block;
      }
    }
    prev_ = last_;
    last_ = block;
  }

  BlockId PredictAfter(BlockId prev, BlockId cur) const override {
    if (prev != kNoBlock) {
      auto it = pair_.find(PairKey(prev, cur));
      if (it != pair_.end()) {
        return it->second;
      }
    }
    auto it = first_order_.find(cur);
    return it != first_order_.end() ? it->second : kNoBlock;
  }

 private:
  static uint64_t PairKey(BlockId a, BlockId b) {
    // Blocks are logical filesystem addresses, far below 2^32 in every
    // studied trace; fold the pair into one 64-bit key.
    return (static_cast<uint64_t>(a.v()) << 32) ^ static_cast<uint64_t>(b.v());
  }

  BlockId prev_ = kNoBlock;
  BlockId last_ = kNoBlock;
  std::unordered_map<BlockId, BlockId> first_order_;
  std::unordered_map<uint64_t, BlockId> pair_;
};

}  // namespace

std::unique_ptr<Predictor> MakePredictor(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kSequential:
      return std::make_unique<SequentialPredictor>();
    case PredictorKind::kMarkov:
      return std::make_unique<MarkovPredictor>();
    case PredictorKind::kTemporal:
      return std::make_unique<TemporalPredictor>();
    case PredictorKind::kOracle:
    case PredictorKind::kNone:
      break;
  }
  PFC_CHECK_MSG(false, "MakePredictor: kind has no learning predictor");
  return nullptr;
}

}  // namespace pfc
