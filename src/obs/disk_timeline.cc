#include "obs/disk_timeline.h"

namespace pfc {

void DiskTimeline::OnDispatch(const ObsEvent& event) {
  ++dispatches_;
  queue_depth_.Add(static_cast<double>(event.b));
}

void DiskTimeline::OnComplete(const ObsEvent& event) {
  busy_ns_ += DurNs{event.a};
  if (event.flag) {
    ++failures_;
  } else {
    ++completes_;
  }
  const double service = NsToMs(DurNs{event.a});
  service_ms_.Add(service);
  service_hist_.Add(service);
  response_ms_.Add(NsToMs(DurNs{event.b}));
}

}  // namespace pfc
