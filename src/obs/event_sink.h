// EventSink: the observability subsystem's injection point.
//
// A sink is installed on a Simulator (directly via SetEventSink for custom
// consumers, or implicitly via SimConfig::obs.collect, which installs an
// ObsCollector). The engine, the buffer cache, and every disk then deliver
// typed events to it as the run unfolds. The sink is borrowed, not owned,
// and must outlive the run; a Simulator is single-threaded, so sinks need no
// locking — each run gets its own.
//
// Overhead contract: with no sink installed, every emission site costs one
// branch on a pointer that is null for the run's whole lifetime, and nothing
// else. bench_throughput tracks this (see BENCH_throughput.json's
// obs_overhead fields).

#ifndef PFC_OBS_EVENT_SINK_H_
#define PFC_OBS_EVENT_SINK_H_

#include <vector>

#include "obs/event.h"

namespace pfc {

class EventSink {
 public:
  virtual ~EventSink() = default;

  // Delivered in simulated-time order (the engine is a discrete-event loop;
  // events at equal times arrive in deterministic cause order).
  virtual void OnEvent(const ObsEvent& event) = 0;
};

// The trivial sink: append every event to a vector. Useful for tests and
// for tools that post-process the raw stream.
class EventLog : public EventSink {
 public:
  void OnEvent(const ObsEvent& event) override { events_.push_back(event); }

  const std::vector<ObsEvent>& events() const { return events_; }
  std::vector<ObsEvent> Take() { return std::move(events_); }

 private:
  std::vector<ObsEvent> events_;
};

}  // namespace pfc

#endif  // PFC_OBS_EVENT_SINK_H_
