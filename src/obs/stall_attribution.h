// StallAttribution: splits RunResult::stall_time exactly by cause.
//
// Every stall window the engine closes produces one kStallEnd event carrying
// the window's integer duration, its base cause, the fault-inflicted share
// (the same quantity RunResult::degraded_stall_ns accumulates), and the
// outage-inflicted share (RunResult::outage_stall_ns). The accumulator banks
// `duration - fault_share - outage_share` under the base cause,
// `fault_share` under kFaultRecovery and `outage_share` under kOutage, so
// the buckets sum to stall_time *exactly* — an integer identity, not an
// approximation — with the kFaultRecovery bucket equal to degraded_stall_ns
// and the kOutage bucket equal to outage_stall_ns. CheckAgainst() asserts
// all three; ObsCollector calls it at the end of every collecting run.

#ifndef PFC_OBS_STALL_ATTRIBUTION_H_
#define PFC_OBS_STALL_ATTRIBUTION_H_

#include <array>
#include <cstdint>
#include <string>

#include "obs/event.h"
#include "util/time_util.h"

namespace pfc {

class StallAttribution {
 public:
  static constexpr int kNumCauses = static_cast<int>(StallCause::kNumCauses);

  // Banks one closed stall window. `fault_share + outage_share` must be
  // <= `duration`; `base` must not itself be kFaultRecovery or kOutage (the
  // inflicted shares are carved out of the window, never the whole window's
  // identity).
  void AddWindow(StallCause base, DurNs duration, DurNs fault_share,
                 DurNs outage_share = DurNs{0});

  DurNs ns(StallCause cause) const {
    return buckets_[static_cast<size_t>(cause)];
  }
  DurNs total() const;
  int64_t windows() const { return windows_; }
  int64_t windows(StallCause cause) const {
    return window_counts_[static_cast<size_t>(cause)];
  }

  // Asserts the exact decomposition: sum of buckets == stall_time, the
  // kFaultRecovery bucket == degraded_stall_ns, and the kOutage bucket ==
  // outage_stall_ns. Aborts (PFC_CHECK) on violation — a broken attribution
  // means the engine double- or under-counted a window, which would silently
  // corrupt every downstream timeline.
  void CheckAgainst(DurNs stall_time, DurNs degraded_stall_ns,
                    DurNs outage_stall_ns = DurNs{0}) const;

  void Merge(const StallAttribution& other);

  // One line per non-empty cause: "cold-miss 1.234s (12 windows, 61.7%)".
  std::string ToString() const;

 private:
  std::array<DurNs, kNumCauses> buckets_{};
  std::array<int64_t, kNumCauses> window_counts_{};
  int64_t windows_ = 0;
};

}  // namespace pfc

#endif  // PFC_OBS_STALL_ATTRIBUTION_H_
