// Event-stream exporters: Chrome trace_event JSON and CSV.
//
// Both formats are rendered with pure integer arithmetic from the event
// stream, so a fixed-seed run exports byte-identical files on every run —
// scripts/ci.sh holds a golden Chrome trace to that promise.
//
// Chrome trace layout (loads in chrome://tracing and Perfetto):
//   pid 0 / tid 0        the application thread; every stall window is a
//                        complete ("X") slice named by its cause, with the
//                        fault share in args
//   pid 0 / tid 1+d      disk d; every busy interval is an "X" slice named
//                        by the block it serviced ("!" prefix = failed)
//   instant events ("i") prefetch issues/cancels, evictions, retries,
//                        permanent faults, flushes, and policy marks
//
// The CSV is one row per event (see kEventsCsvHeader) and is what
// pfc_trace_report consumes.

#ifndef PFC_OBS_EXPORT_H_
#define PFC_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/event.h"
#include "util/expected.h"

namespace pfc {

inline constexpr const char* kEventsCsvHeader =
    "time_ns,kind,cause,disk,block,a,b,c,flag,label";

// Chrome trace_event JSON for the stream. `trace_name`/`policy_name` label
// the process metadata row.
std::string ChromeTraceJson(const std::vector<ObsEvent>& events, const std::string& trace_name,
                            const std::string& policy_name, int num_disks);

// CSV (header + one row per event).
std::string EventsCsvString(const std::vector<ObsEvent>& events);

// Writes `events` to `path`; the format is chosen by extension (".csv" ->
// CSV, anything else -> Chrome trace JSON). Returns false on I/O failure.
bool WriteEvents(const std::vector<ObsEvent>& events, const std::string& path,
                 const std::string& trace_name, const std::string& policy_name, int num_disks);

// A parsed CSV row: the POD event plus the owning copy of its label (the
// in-memory ObsEvent::label field only ever points at static strings, so
// loaded events leave it null).
struct LoadedEvent {
  ObsEvent event;
  std::string label;
};

// Loads an events CSV written by EventsCsvString / WriteEvents. Diagnoses
// malformed files with file:line context.
Expected<std::vector<LoadedEvent>> LoadEventsCsv(const std::string& path);

}  // namespace pfc

#endif  // PFC_OBS_EXPORT_H_
