#include "obs/text_report.h"

#include <algorithm>
#include <cstdio>

#include "obs/disk_timeline.h"
#include "obs/obs_report.h"
#include "obs/stall_attribution.h"
#include "util/check.h"
#include "util/stats.h"

namespace pfc {

namespace {

// Adds interval [begin, end) into per-bucket occupancy over [0, span).
void AddInterval(std::vector<double>* occupancy, TimeNs begin, TimeNs end, TimeNs span) {
  if (span <= TimeNs{0} || end <= begin) {
    return;
  }
  const double width = static_cast<double>(span.ns()) / static_cast<double>(occupancy->size());
  begin = std::max(begin, TimeNs{0});
  end = std::min(end, span);
  int lo = static_cast<int>(static_cast<double>(begin.ns()) / width);
  int hi = static_cast<int>(static_cast<double>(end.ns()) / width);
  lo = std::min(lo, static_cast<int>(occupancy->size()) - 1);
  hi = std::min(hi, static_cast<int>(occupancy->size()) - 1);
  for (int i = lo; i <= hi; ++i) {
    const double bucket_lo = width * i;
    const double bucket_hi = bucket_lo + width;
    const double overlap = std::min(static_cast<double>(end.ns()), bucket_hi) -
                           std::max(static_cast<double>(begin.ns()), bucket_lo);
    if (overlap > 0) {
      (*occupancy)[static_cast<size_t>(i)] += overlap / width;
    }
  }
}

char DensityChar(double f) {
  if (f <= 0.0) {
    return ' ';
  }
  if (f < 0.25) {
    return '.';
  }
  if (f < 0.5) {
    return ':';
  }
  if (f < 0.75) {
    return '#';
  }
  return '@';
}

std::string LaneString(const std::vector<double>& occupancy) {
  std::string s;
  s.reserve(occupancy.size());
  for (double f : occupancy) {
    s += DensityChar(f);
  }
  return s;
}

}  // namespace

std::string RenderTimeline(const std::vector<LoadedEvent>& events, int columns) {
  PFC_CHECK_GT(columns, 0);
  TimeNs span;
  int num_disks = 0;
  for (const LoadedEvent& le : events) {
    span = std::max(span, le.event.time);
    num_disks = std::max(num_disks, le.event.disk.v() + 1);
  }
  std::string out;
  if (span == TimeNs{0}) {
    return "  (empty event stream)\n";
  }

  char line[64];
  std::snprintf(line, sizeof(line), "timeline: 0 .. %.3fs, %d columns\n", NsToSec(span), columns);
  out += line;

  std::vector<double> stall_lane(static_cast<size_t>(columns), 0.0);
  std::vector<std::vector<double>> disk_lanes(
      static_cast<size_t>(num_disks), std::vector<double>(static_cast<size_t>(columns), 0.0));
  for (const LoadedEvent& le : events) {
    const ObsEvent& e = le.event;
    if (e.kind == ObsEventKind::kStallEnd) {
      AddInterval(&stall_lane, e.time - DurNs{e.a}, e.time, span);
    } else if (e.kind == ObsEventKind::kDiskBusyEnd && e.disk.v() >= 0) {
      AddInterval(&disk_lanes[static_cast<size_t>(e.disk.v())], e.time - DurNs{e.a}, e.time, span);
    }
  }

  out += "  stall |" + LaneString(stall_lane) + "|\n";
  for (int d = 0; d < num_disks; ++d) {
    std::snprintf(line, sizeof(line), "  disk%-2d|", d);
    out += line;
    out += LaneString(disk_lanes[static_cast<size_t>(d)]) + "|\n";
  }
  return out;
}

std::string RenderEventReport(const std::vector<LoadedEvent>& events, int columns) {
  std::string out;
  char line[256];

  // Census.
  std::vector<int64_t> counts(static_cast<size_t>(ObsEventKind::kNumKinds), 0);
  TimeNs span;
  int num_disks = 0;
  for (const LoadedEvent& le : events) {
    ++counts[static_cast<size_t>(le.event.kind)];
    span = std::max(span, le.event.time);
    num_disks = std::max(num_disks, le.event.disk.v() + 1);
  }
  std::snprintf(line, sizeof(line), "%zu events over %.3fs, %d disks\n", events.size(),
                NsToSec(span), num_disks);
  out += line;
  for (int k = 0; k < static_cast<int>(ObsEventKind::kNumKinds); ++k) {
    if (counts[static_cast<size_t>(k)] > 0) {
      std::snprintf(line, sizeof(line), "  %-18s %10lld\n",
                    ToString(static_cast<ObsEventKind>(k)),
                    static_cast<long long>(counts[static_cast<size_t>(k)]));
      out += line;
    }
  }

  // Stall attribution, rebuilt from the stream.
  StallAttribution stalls;
  for (const LoadedEvent& le : events) {
    if (le.event.kind == ObsEventKind::kStallEnd) {
      stalls.AddWindow(le.event.cause, DurNs{le.event.a}, DurNs{le.event.b},
                       DurNs{le.event.c});
    }
  }
  out += "\nstall attribution:\n";
  out += stalls.ToString();

  // Per-disk timelines and percentiles.
  if (num_disks > 0) {
    std::vector<DiskTimeline> disks(static_cast<size_t>(num_disks));
    for (const LoadedEvent& le : events) {
      if (le.event.kind == ObsEventKind::kDiskBusyBegin) {
        disks[static_cast<size_t>(le.event.disk.v())].OnDispatch(le.event);
      } else if (le.event.kind == ObsEventKind::kDiskBusyEnd) {
        disks[static_cast<size_t>(le.event.disk.v())].OnComplete(le.event);
      }
    }
    out += "\nper-disk service times (ms):\n";
    std::snprintf(line, sizeof(line), "  %-5s %9s %6s %9s %8s %8s %8s %8s %8s\n", "disk",
                  "dispatch", "util", "q-mean", "mean", "p50", "p90", "p95", "p99");
    out += line;
    for (int d = 0; d < num_disks; ++d) {
      const DiskTimeline& t = disks[static_cast<size_t>(d)];
      const Histogram& h = t.service_hist();
      std::snprintf(line, sizeof(line),
                    "  %-5d %9lld %5.1f%% %9.2f %8.3f %8.3f %8.3f %8.3f %8.3f\n", d,
                    static_cast<long long>(t.dispatches()), 100.0 * t.Utilization(span - TimeNs{0}),
                    t.queue_depth().mean(), t.service_ms().mean(), h.Percentile(0.5),
                    h.Percentile(0.9), h.Percentile(0.95), h.Percentile(0.99));
      out += line;
    }
  }

  out += "\n";
  out += RenderTimeline(events, columns);
  return out;
}

}  // namespace pfc
