#include "obs/obs_report.h"

#include <cstdio>

#include "util/check.h"

namespace pfc {

const char* ToString(ObsEventKind kind) {
  switch (kind) {
    case ObsEventKind::kDemandFetchStart:
      return "demand-start";
    case ObsEventKind::kDemandFetchComplete:
      return "demand-complete";
    case ObsEventKind::kPrefetchIssue:
      return "prefetch-issue";
    case ObsEventKind::kPrefetchLand:
      return "prefetch-land";
    case ObsEventKind::kPrefetchCancel:
      return "prefetch-cancel";
    case ObsEventKind::kEvict:
      return "evict";
    case ObsEventKind::kStallBegin:
      return "stall-begin";
    case ObsEventKind::kStallEnd:
      return "stall-end";
    case ObsEventKind::kFaultRetry:
      return "fault-retry";
    case ObsEventKind::kFaultPermanent:
      return "fault-permanent";
    case ObsEventKind::kFaultRecover:
      return "fault-recover";
    case ObsEventKind::kDiskBusyBegin:
      return "disk-busy-begin";
    case ObsEventKind::kDiskBusyEnd:
      return "disk-busy-end";
    case ObsEventKind::kFlushIssue:
      return "flush-issue";
    case ObsEventKind::kFlushComplete:
      return "flush-complete";
    case ObsEventKind::kPolicyMark:
      return "policy-mark";
    case ObsEventKind::kDiskDown:
      return "disk-down";
    case ObsEventKind::kDiskUp:
      return "disk-up";
    case ObsEventKind::kPrefetchUnused:
      return "prefetch-unused";
    case ObsEventKind::kPrefetchUseful:
      return "prefetch-useful";
    case ObsEventKind::kNumKinds:
      break;
  }
  return "?";
}

ObsCollector::ObsCollector(int num_disks, bool keep_events) : keep_events_(keep_events) {
  PFC_CHECK_GT(num_disks, 0);
  report_.disks.resize(static_cast<size_t>(num_disks));
}

void ObsCollector::OnEvent(const ObsEvent& event) {
  ++report_.total_events;
  switch (event.kind) {
    case ObsEventKind::kDemandFetchStart:
      ++report_.demand_starts;
      break;
    case ObsEventKind::kDemandFetchComplete:
      ++report_.demand_completes;
      break;
    case ObsEventKind::kPrefetchIssue:
      ++report_.prefetch_issues;
      break;
    case ObsEventKind::kPrefetchLand:
      ++report_.prefetch_lands;
      break;
    case ObsEventKind::kPrefetchCancel:
      ++report_.prefetch_cancels;
      break;
    case ObsEventKind::kEvict:
      ++report_.evictions;
      if (event.flag) {
        ++report_.live_evictions;
      }
      break;
    case ObsEventKind::kStallEnd:
      report_.stalls.AddWindow(event.cause, DurNs{event.a}, DurNs{event.b}, DurNs{event.c});
      break;
    case ObsEventKind::kFaultRetry:
      ++report_.fault_retries;
      break;
    case ObsEventKind::kFaultPermanent:
      ++report_.fault_permanent;
      break;
    case ObsEventKind::kFaultRecover:
      ++report_.fault_recoveries;
      break;
    case ObsEventKind::kDiskBusyBegin:
      PFC_CHECK_GE(event.disk.v(), 0);
      report_.disks[static_cast<size_t>(event.disk.v())].OnDispatch(event);
      break;
    case ObsEventKind::kDiskBusyEnd:
      PFC_CHECK_GE(event.disk.v(), 0);
      report_.disks[static_cast<size_t>(event.disk.v())].OnComplete(event);
      break;
    case ObsEventKind::kFlushIssue:
      ++report_.flush_issues;
      break;
    case ObsEventKind::kFlushComplete:
      ++report_.flush_completes;
      break;
    case ObsEventKind::kPolicyMark:
      ++report_.policy_marks;
      break;
    case ObsEventKind::kDiskDown:
      ++report_.disk_downs;
      break;
    case ObsEventKind::kDiskUp:
      ++report_.disk_ups;
      break;
    case ObsEventKind::kPrefetchUnused:
      ++report_.prefetch_unused;
      break;
    case ObsEventKind::kPrefetchUseful:
      ++report_.prefetch_useful;
      break;
    case ObsEventKind::kStallBegin:
    case ObsEventKind::kNumKinds:
      break;
  }
  if (keep_events_) {
    report_.events.push_back(event);
  }
}

std::shared_ptr<const ObsReport> ObsCollector::Finish(const RunResult& result) {
  PFC_CHECK_MSG(!finished_, "ObsCollector::Finish is single-shot");
  finished_ = true;
  report_.elapsed_ns = result.elapsed_time;
  report_.stall_ns = result.stall_time;
  report_.degraded_stall_ns = result.degraded_stall_ns;
  report_.outage_stall_ns = result.outage_stall_ns;

  // The attribution invariant: causes sum exactly to the stall bar, the
  // fault bucket is exactly the degraded share, and the outage bucket is
  // exactly the outage share.
  report_.stalls.CheckAgainst(result.stall_time, result.degraded_stall_ns,
                              result.outage_stall_ns);

  // The busy-interval timeline must reproduce the engine's own utilization
  // figures bit-for-bit (both are busy_ns / elapsed over the same sums).
  PFC_CHECK_EQ(static_cast<int64_t>(report_.disks.size()),
               static_cast<int64_t>(result.per_disk_util.size()));
  for (size_t d = 0; d < report_.disks.size(); ++d) {
    const double from_events = report_.disks[d].Utilization(result.elapsed_time);
    PFC_CHECK_EQ(from_events, result.per_disk_util[d]);
  }

  // The event stream must agree with the engine's prefetch-quality ledger.
  // Issue, land, and useful events mirror the counters one-for-one; cancel
  // and unused may undercount their buckets because the end-of-trace
  // reconcile (in-flight -> failed, pending -> useless) emits no events.
  PFC_CHECK_EQ(report_.prefetch_issues, result.prefetch_issued);
  PFC_CHECK_EQ(report_.prefetch_lands, result.prefetch_filled);
  PFC_CHECK_EQ(report_.prefetch_useful, result.prefetch_useful);
  PFC_CHECK_LE(report_.prefetch_cancels, result.prefetch_failed);
  PFC_CHECK_LE(report_.prefetch_unused, result.prefetch_useless);

  return std::make_shared<const ObsReport>(std::move(report_));
}

std::string ObsReport::Summary() const {
  std::string out;
  char line[256];

  out += "stall attribution (sums exactly to the stall bar):\n";
  out += stalls.ToString();
  std::snprintf(line, sizeof(line),
                "  total stall %.4fs of %.4fs elapsed (degraded %.4fs, outage %.4fs)\n",
                NsToSec(stall_ns), NsToSec(elapsed_ns), NsToSec(degraded_stall_ns),
                NsToSec(outage_stall_ns));
  out += line;

  out += "per-disk timelines:\n";
  std::snprintf(line, sizeof(line), "  %-5s %10s %6s %9s %7s %9s %9s %9s %9s\n", "disk",
                "busy(s)", "util", "dispatch", "fail", "q-mean", "svc-ms", "p95-ms", "resp-ms");
  out += line;
  for (size_t d = 0; d < disks.size(); ++d) {
    const DiskTimeline& t = disks[d];
    std::snprintf(line, sizeof(line), "  %-5zu %10.4f %5.1f%% %9lld %7lld %9.2f %9.3f %9.3f %9.3f\n",
                  d, NsToSec(t.busy_ns()), 100.0 * t.Utilization(elapsed_ns),
                  static_cast<long long>(t.dispatches()), static_cast<long long>(t.failures()),
                  t.queue_depth().mean(), t.service_ms().mean(), t.service_hist().Percentile(0.95),
                  t.response_ms().mean());
    out += line;
  }

  std::snprintf(line, sizeof(line),
                "events: %lld total | demand %lld/%lld | prefetch %lld issued, %lld landed, "
                "%lld cancelled, %lld useful, %lld unused | evictions %lld (%lld live) | "
                "flushes %lld/%lld | "
                "faults: %lld retries, %lld permanent, %lld recoveries | outages %lld/%lld | "
                "marks %lld\n",
                static_cast<long long>(total_events), static_cast<long long>(demand_starts),
                static_cast<long long>(demand_completes), static_cast<long long>(prefetch_issues),
                static_cast<long long>(prefetch_lands), static_cast<long long>(prefetch_cancels),
                static_cast<long long>(prefetch_useful),
                static_cast<long long>(prefetch_unused), static_cast<long long>(evictions),
                static_cast<long long>(live_evictions), static_cast<long long>(flush_issues),
                static_cast<long long>(flush_completes), static_cast<long long>(fault_retries),
                static_cast<long long>(fault_permanent), static_cast<long long>(fault_recoveries),
                static_cast<long long>(disk_downs), static_cast<long long>(disk_ups),
                static_cast<long long>(policy_marks));
  out += line;
  return out;
}

}  // namespace pfc
