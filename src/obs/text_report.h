// Text rendering of an exported event stream: an ASCII timeline (per-disk
// busy density plus an application stall row), rebuilt stall attribution,
// and service-time percentile tables. This is what pfc_trace_report prints.

#ifndef PFC_OBS_TEXT_REPORT_H_
#define PFC_OBS_TEXT_REPORT_H_

#include <string>
#include <vector>

#include "obs/export.h"

namespace pfc {

// Full report: event census, stall attribution, per-disk utilization +
// percentile tables, and the timeline. `columns` is the timeline width in
// buckets (each bucket shows the fraction of its time span the lane was
// busy/stalled, as ' ', '.', ':', '#', '@' for 0 / <25% / <50% / <75% / more).
std::string RenderEventReport(const std::vector<LoadedEvent>& events, int columns = 100);

// Just the timeline block (exposed for tests).
std::string RenderTimeline(const std::vector<LoadedEvent>& events, int columns);

}  // namespace pfc

#endif  // PFC_OBS_TEXT_REPORT_H_
