#include "obs/stall_attribution.h"

#include <cstdio>

#include "util/check.h"

namespace pfc {

const char* ToString(StallCause cause) {
  switch (cause) {
    case StallCause::kColdMiss:
      return "cold-miss";
    case StallCause::kFetchInFlight:
      return "fetch-in-flight";
    case StallCause::kNoBuffer:
      return "no-buffer";
    case StallCause::kWriteFlush:
      return "write-flush";
    case StallCause::kFaultRecovery:
      return "fault-recovery";
    case StallCause::kOutage:
      return "outage";
    case StallCause::kNumCauses:
      break;
  }
  return "?";
}

void StallAttribution::AddWindow(StallCause base, DurNs duration, DurNs fault_share,
                                 DurNs outage_share) {
  PFC_CHECK(base != StallCause::kFaultRecovery);
  PFC_CHECK(base != StallCause::kOutage);
  PFC_CHECK_GT(duration, DurNs{0});
  PFC_CHECK_GE(fault_share, DurNs{0});
  PFC_CHECK_GE(outage_share, DurNs{0});
  PFC_CHECK_LE(fault_share + outage_share, duration);
  buckets_[static_cast<size_t>(base)] += duration - fault_share - outage_share;
  buckets_[static_cast<size_t>(StallCause::kFaultRecovery)] += fault_share;
  buckets_[static_cast<size_t>(StallCause::kOutage)] += outage_share;
  ++window_counts_[static_cast<size_t>(base)];
  ++windows_;
}

DurNs StallAttribution::total() const {
  DurNs sum;
  for (DurNs b : buckets_) {
    sum += b;
  }
  return sum;
}

void StallAttribution::CheckAgainst(DurNs stall_time, DurNs degraded_stall_ns,
                                    DurNs outage_stall_ns) const {
  PFC_CHECK_EQ(total(), stall_time);
  PFC_CHECK_EQ(ns(StallCause::kFaultRecovery), degraded_stall_ns);
  PFC_CHECK_EQ(ns(StallCause::kOutage), outage_stall_ns);
}

void StallAttribution::Merge(const StallAttribution& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
    window_counts_[i] += other.window_counts_[i];
  }
  windows_ += other.windows_;
}

std::string StallAttribution::ToString() const {
  const DurNs sum = total();
  std::string out;
  char line[160];
  for (int c = 0; c < kNumCauses; ++c) {
    const DurNs ns = buckets_[static_cast<size_t>(c)];
    if (ns == DurNs{0} && window_counts_[static_cast<size_t>(c)] == 0) {
      continue;
    }
    const double pct =
        sum > DurNs{0} ? 100.0 * static_cast<double>(ns.ns()) / static_cast<double>(sum.ns()) : 0.0;
    std::snprintf(line, sizeof(line), "  %-16s %10.4fs  (%lld windows, %5.1f%%)\n",
                  pfc::ToString(static_cast<StallCause>(c)), NsToSec(ns),
                  static_cast<long long>(window_counts_[static_cast<size_t>(c)]), pct);
    out += line;
  }
  if (out.empty()) {
    out = "  (no stalls)\n";
  }
  return out;
}

}  // namespace pfc
