// ObsReport: the per-run observability summary, and ObsCollector, the
// EventSink that builds one incrementally.
//
// A Simulator whose SimConfig sets obs.collect installs a private
// ObsCollector for the run and attaches the finished report to
// RunResult::obs. The collector aggregates as events arrive (stall
// attribution, per-disk timelines, lifecycle counters) and — only when
// obs.keep_events is also set — retains the raw event stream for export
// (Chrome trace JSON / CSV; see obs/export.h).
//
// Finish() seals the report against the RunResult: it computes per-disk
// utilization from the busy intervals, checks it agrees exactly with the
// engine's own per_disk_util, and checks the stall-cause buckets sum exactly
// to stall_time (with the fault bucket equal to degraded_stall_ns). Every
// collecting run therefore self-verifies the attribution invariant.

#ifndef PFC_OBS_OBS_REPORT_H_
#define PFC_OBS_OBS_REPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/run_result.h"
#include "obs/disk_timeline.h"
#include "obs/event_sink.h"
#include "obs/stall_attribution.h"

namespace pfc {

struct ObsReport {
  StallAttribution stalls;
  std::vector<DiskTimeline> disks;  // one per array disk

  // Lifecycle counters.
  int64_t demand_starts = 0;
  int64_t demand_completes = 0;
  int64_t prefetch_issues = 0;
  int64_t prefetch_lands = 0;
  int64_t prefetch_cancels = 0;
  int64_t prefetch_unused = 0;  // landed but reclaimed without a reference
  int64_t prefetch_useful = 0;  // landed ahead of time and consumed by a ref
  int64_t evictions = 0;
  int64_t live_evictions = 0;   // evicted blocks that had a future reference
  int64_t flush_issues = 0;
  int64_t flush_completes = 0;
  int64_t fault_retries = 0;
  int64_t fault_permanent = 0;
  int64_t fault_recoveries = 0;
  int64_t disk_downs = 0;
  int64_t disk_ups = 0;
  int64_t policy_marks = 0;
  int64_t total_events = 0;

  // Copied from the RunResult at Finish() so the report is self-contained.
  DurNs elapsed_ns;
  DurNs stall_ns;
  DurNs degraded_stall_ns;
  DurNs outage_stall_ns;

  // The raw stream; empty unless SimConfig::obs.keep_events was set.
  std::vector<ObsEvent> events;

  // Multi-section text rendering (stall attribution + per-disk table +
  // lifecycle counters). What `pfc_sim --events-out` prints after the run.
  std::string Summary() const;
};

class ObsCollector : public EventSink {
 public:
  ObsCollector(int num_disks, bool keep_events);

  void OnEvent(const ObsEvent& event) override;

  // Seals and returns the report; the collector is spent afterwards.
  // Checks the attribution and utilization invariants against `result`.
  std::shared_ptr<const ObsReport> Finish(const RunResult& result);

 private:
  bool keep_events_;
  bool finished_ = false;
  ObsReport report_;
};

}  // namespace pfc

#endif  // PFC_OBS_OBS_REPORT_H_
