#include "obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/obs_report.h"  // ToString(ObsEventKind)
#include "obs/stall_attribution.h"

namespace pfc {

namespace {

// Timestamps are rendered as exact decimal microseconds ("123.456") from the
// integer nanosecond clock — no floating point anywhere near the exporter,
// so the output is byte-stable across runs and platforms.
void AppendUs(std::string* out, int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  *out += buf;
}

void AppendChromeEvent(std::string* out, const char* name, const char* ph, int tid, TimeNs ts,
                       DurNs dur, const std::string& args) {
  *out += "{\"name\":\"";
  *out += name;
  *out += "\",\"ph\":\"";
  *out += ph;
  *out += "\",\"pid\":0,\"tid\":";
  *out += std::to_string(tid);
  *out += ",\"ts\":";
  AppendUs(out, ts.ns());
  if (std::strcmp(ph, "X") == 0) {
    *out += ",\"dur\":";
    AppendUs(out, dur.ns());
  }
  if (std::strcmp(ph, "i") == 0) {
    *out += ",\"s\":\"t\"";
  }
  if (!args.empty()) {
    *out += ",\"args\":{";
    *out += args;
    *out += "}";
  }
  *out += "},\n";
}

void AppendMetadata(std::string* out, const char* what, int tid, const std::string& name) {
  *out += "{\"name\":\"";
  *out += what;
  *out += "\",\"ph\":\"M\",\"pid\":0,\"tid\":";
  *out += std::to_string(tid);
  *out += ",\"args\":{\"name\":\"";
  *out += name;
  *out += "\"}},\n";
}

constexpr int kAppTid = 0;
int DiskTid(DiskId disk) { return 1 + disk.v(); }

}  // namespace

std::string ChromeTraceJson(const std::vector<ObsEvent>& events, const std::string& trace_name,
                            const std::string& policy_name, int num_disks) {
  std::string out;
  out.reserve(128 * events.size() + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  AppendMetadata(&out, "process_name", kAppTid, "pfc " + trace_name + " / " + policy_name);
  AppendMetadata(&out, "thread_name", kAppTid, "app (stalls)");
  for (DiskId d{0}; d.v() < num_disks; ++d) {
    AppendMetadata(&out, "thread_name", DiskTid(d), "disk " + std::to_string(d.v()));
  }

  char name[96];
  for (const ObsEvent& e : events) {
    switch (e.kind) {
      case ObsEventKind::kStallEnd: {
        std::snprintf(name, sizeof(name), "stall:%s", ToString(e.cause));
        std::string args = "\"block\":" + std::to_string(e.block.v()) +
                           ",\"fault_ns\":" + std::to_string(e.b);
        if (e.c != 0) {
          args += ",\"outage_ns\":" + std::to_string(e.c);
        }
        AppendChromeEvent(&out, name, "X", kAppTid, e.time - DurNs{e.a}, DurNs{e.a}, args);
        break;
      }
      case ObsEventKind::kDiskBusyEnd: {
        std::snprintf(name, sizeof(name), "%sio b%lld", e.flag ? "!" : "",
                      static_cast<long long>(e.block.v()));
        std::string args = "\"service_ns\":" + std::to_string(e.a) +
                           ",\"response_ns\":" + std::to_string(e.b);
        AppendChromeEvent(&out, name, "X", DiskTid(e.disk), e.time - DurNs{e.a}, DurNs{e.a}, args);
        break;
      }
      case ObsEventKind::kPrefetchIssue:
      case ObsEventKind::kDemandFetchStart:
      case ObsEventKind::kPrefetchCancel:
      case ObsEventKind::kFaultRetry:
      case ObsEventKind::kFaultPermanent:
      case ObsEventKind::kFaultRecover:
      case ObsEventKind::kFlushIssue: {
        std::snprintf(name, sizeof(name), "%s b%lld", ToString(e.kind),
                      static_cast<long long>(e.block.v()));
        const int tid = e.disk >= DiskId{0} ? DiskTid(e.disk) : kAppTid;
        AppendChromeEvent(&out, name, "i", tid, e.time, DurNs{0}, "");
        break;
      }
      case ObsEventKind::kEvict: {
        std::snprintf(name, sizeof(name), "evict b%lld", static_cast<long long>(e.block.v()));
        AppendChromeEvent(&out, name, "i", kAppTid, e.time, DurNs{0}, "");
        break;
      }
      case ObsEventKind::kDiskDown:
      case ObsEventKind::kDiskUp: {
        AppendChromeEvent(&out, ToString(e.kind), "i", DiskTid(e.disk), e.time, DurNs{0}, "");
        break;
      }
      case ObsEventKind::kPrefetchUnused:
      case ObsEventKind::kPrefetchUseful: {
        std::snprintf(name, sizeof(name), "%s b%lld", ToString(e.kind),
                      static_cast<long long>(e.block.v()));
        AppendChromeEvent(&out, name, "i", kAppTid, e.time, DurNs{0}, "");
        break;
      }
      case ObsEventKind::kPolicyMark: {
        std::snprintf(name, sizeof(name), "%s=%lld", e.label != nullptr ? e.label : "mark",
                      static_cast<long long>(e.a));
        AppendChromeEvent(&out, name, "i", kAppTid, e.time, DurNs{0}, "");
        break;
      }
      // Begin markers and completion counters are implied by the "X" slices.
      case ObsEventKind::kStallBegin:
      case ObsEventKind::kDiskBusyBegin:
      case ObsEventKind::kDemandFetchComplete:
      case ObsEventKind::kPrefetchLand:
      case ObsEventKind::kFlushComplete:
      case ObsEventKind::kNumKinds:
        break;
    }
  }

  // Trailing dummy event sidesteps JSON's no-trailing-comma rule without
  // making the emitters order-aware.
  out += "{\"name\":\"end\",\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":0,\"s\":\"t\"}\n";
  out += "]}\n";
  return out;
}

std::string EventsCsvString(const std::vector<ObsEvent>& events) {
  std::string out;
  out.reserve(64 * events.size() + 64);
  out += kEventsCsvHeader;
  out += "\n";
  char line[256];
  for (const ObsEvent& e : events) {
    const bool stall = e.kind == ObsEventKind::kStallBegin || e.kind == ObsEventKind::kStallEnd;
    std::snprintf(line, sizeof(line), "%lld,%s,%s,%d,%lld,%lld,%lld,%lld,%d,%s\n",
                  static_cast<long long>(e.time.ns()), ToString(e.kind),
                  stall ? ToString(e.cause) : "", e.disk.v(), static_cast<long long>(e.block.v()),
                  static_cast<long long>(e.a), static_cast<long long>(e.b),
                  static_cast<long long>(e.c), e.flag ? 1 : 0, e.label != nullptr ? e.label : "");
    out += line;
  }
  return out;
}

bool WriteEvents(const std::vector<ObsEvent>& events, const std::string& path,
                 const std::string& trace_name, const std::string& policy_name, int num_disks) {
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const std::string body = csv ? EventsCsvString(events)
                               : ChromeTraceJson(events, trace_name, policy_name, num_disks);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = written == body.size() && std::fclose(f) == 0;
  if (!ok && written != body.size()) {
    std::fclose(f);
  }
  return ok;
}

namespace {

bool ParseKind(const std::string& token, ObsEventKind* kind) {
  for (int k = 0; k < static_cast<int>(ObsEventKind::kNumKinds); ++k) {
    if (token == ToString(static_cast<ObsEventKind>(k))) {
      *kind = static_cast<ObsEventKind>(k);
      return true;
    }
  }
  return false;
}

bool ParseCause(const std::string& token, StallCause* cause) {
  for (int c = 0; c < static_cast<int>(StallCause::kNumCauses); ++c) {
    if (token == ToString(static_cast<StallCause>(c))) {
      *cause = static_cast<StallCause>(c);
      return true;
    }
  }
  return false;
}

Expected<std::vector<LoadedEvent>> Fail(const std::string& path, int line,
                                        const std::string& what) {
  return Expected<std::vector<LoadedEvent>>::Failure(path + ":" + std::to_string(line) + ": " +
                                                     what);
}

}  // namespace

Expected<std::vector<LoadedEvent>> LoadEventsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Expected<std::vector<LoadedEvent>>::Failure(path + ": cannot open");
  }
  std::string line;
  int lineno = 0;
  if (!std::getline(in, line) || line != kEventsCsvHeader) {
    return Fail(path, 1, "missing or unrecognized events CSV header");
  }
  lineno = 1;
  std::vector<LoadedEvent> events;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      fields.push_back(field);
    }
    // The trailing label field may be empty (getline drops it).
    if (fields.size() == 9) {
      fields.push_back("");
    }
    if (fields.size() != 10) {
      return Fail(path, lineno, "expected 10 fields, got " + std::to_string(fields.size()));
    }
    LoadedEvent le;
    char* end = nullptr;
    le.event.time = TimeNs{std::strtoll(fields[0].c_str(), &end, 10)};
    if (end == fields[0].c_str() || *end != '\0') {
      return Fail(path, lineno, "bad time_ns '" + fields[0] + "'");
    }
    if (!ParseKind(fields[1], &le.event.kind)) {
      return Fail(path, lineno, "unknown event kind '" + fields[1] + "'");
    }
    if (!fields[2].empty() && !ParseCause(fields[2], &le.event.cause)) {
      return Fail(path, lineno, "unknown stall cause '" + fields[2] + "'");
    }
    le.event.disk = DiskId{std::atoi(fields[3].c_str())};
    le.event.block = BlockId{std::strtoll(fields[4].c_str(), nullptr, 10)};
    le.event.a = std::strtoll(fields[5].c_str(), nullptr, 10);
    le.event.b = std::strtoll(fields[6].c_str(), nullptr, 10);
    le.event.c = std::strtoll(fields[7].c_str(), nullptr, 10);
    le.event.flag = fields[8] == "1";
    le.label = fields[9];
    events.push_back(std::move(le));
  }
  return events;
}

}  // namespace pfc
