// Typed simulation events — the vocabulary of the observability subsystem.
//
// The engine, the buffer cache, and the disks emit ObsEvents into an
// EventSink (see event_sink.h) when one is installed. Every event is a flat
// POD stamped with the simulated time at which it happened; the `a`/`b`
// payload fields are kind-specific (documented per kind below) so the event
// stream stays a single fixed-size record type that can be logged, exported,
// and replayed without any allocation on the hot path.
//
// Emission sites cost exactly one predicted-not-taken branch when no sink is
// installed — the overhead contract bench_throughput enforces.

#ifndef PFC_OBS_EVENT_H_
#define PFC_OBS_EVENT_H_

#include <cstdint>

#include "util/time_util.h"

namespace pfc {

// Why the application processor was stalled. kStallEnd events carry the
// authoritative cause of the window just closed; StallAttribution splits
// RunResult::stall_time exactly across these buckets.
enum class StallCause : uint8_t {
  kColdMiss = 0,       // demand fetch for a block with no request in flight
  kFetchInFlight = 1,  // a prefetch was already in flight; it landed too late
  kNoBuffer = 2,       // every buffer dirty or in flight; waited for a drain
  kWriteFlush = 3,     // write stalled on durability (write-through flush)
  kFaultRecovery = 4,  // share inflicted by faults: retries, tails, recovery
  kOutage = 5,         // share spent waiting out a disk's outage window
  kNumCauses = 6,
};

const char* ToString(StallCause cause);

enum class ObsEventKind : uint8_t {
  // Application-side fetch lifecycle.
  kDemandFetchStart = 0,  // a=0, b=0; the app stalled and issued a fetch
  kDemandFetchComplete,   // a=service ns
  kPrefetchIssue,         // a=0; policy-issued fetch
  kPrefetchLand,          // a=service ns
  kPrefetchCancel,        // in-flight fetch abandoned (permanent fault)
  kEvict,                 // a block's buffer was reclaimed (evict-at-issue);
                          // flag=true when the block had a future reference
                          // (a "live" eviction — the mis-hint failure mode)
  // Stall windows (cause carries the attribution).
  kStallBegin,  // cause=initial guess (kStallEnd is authoritative)
  kStallEnd,    // a=duration ns, b=fault-inflicted share ns,
                // c=outage-inflicted share ns, cause=base cause
  // Fault machinery (disk/fault_model.h + the engine's retry loop).
  kFaultRetry,      // a=backoff ns, b=attempt number
  kFaultPermanent,  // flag=true when the victim was a write-back flush
  kFaultRecover,    // a=recovery penalty ns; block synthesized out-of-band
  // Per-disk busy intervals (emitted by Disk itself).
  kDiskBusyBegin,  // a=planned service ns, b=queue length after dispatch
  kDiskBusyEnd,    // a=actual service ns, b=response ns; flag=failed
  // Write-behind machinery.
  kFlushIssue,
  kFlushComplete,
  // Policy annotations (label is a static string; a=policy-defined value).
  kPolicyMark,
  // Fault lifecycle (outage windows; emitted by the engine).
  kDiskDown,  // disk entered its outage window
  kDiskUp,    // disk recovered (rebuild phase, if any, starts here)
  // Mis-hint consequences: a prefetched block was reclaimed without ever
  // being referenced (useless prefetch — wasted bandwidth and a stolen
  // buffer).
  kPrefetchUnused,
  // Prefetch payoff: the application's reference consumed a block a
  // prefetch had landed ahead of time (the "useful" bucket of the
  // prefetch-quality ledger).
  kPrefetchUseful,
  kNumKinds,
};

const char* ToString(ObsEventKind kind);

struct ObsEvent {
  TimeNs time;
  ObsEventKind kind = ObsEventKind::kPolicyMark;
  StallCause cause = StallCause::kColdMiss;  // meaningful for stall kinds only
  bool flag = false;                         // kind-specific (see enum docs)
  DiskId disk = kNoDisk;                     // kNoDisk = not disk-specific
  BlockId block = kNoBlock;                  // kNoBlock = not block-specific
  int64_t a = 0;                             // kind-specific payload
  int64_t b = 0;                             // kind-specific payload
  int64_t c = 0;                             // kind-specific payload
  const char* label = nullptr;               // static string; kPolicyMark only
};

}  // namespace pfc

#endif  // PFC_OBS_EVENT_H_
