// Per-disk utilization and queue-depth timelines, built from the
// kDiskBusyBegin / kDiskBusyEnd events each Disk emits.
//
// busy_ns is the exact sum of service intervals (successes and failed
// attempts alike), so `busy_ns / elapsed` reproduces DiskStats-derived
// utilization bit-for-bit — the Table 4 / Table 8 benches recompute their
// utilization columns from this and ObsCollector::Finish checks the two
// paths agree on every collecting run.

#ifndef PFC_OBS_DISK_TIMELINE_H_
#define PFC_OBS_DISK_TIMELINE_H_

#include <cstdint>
#include <string>

#include "obs/event.h"
#include "util/stats.h"
#include "util/time_util.h"

namespace pfc {

class DiskTimeline {
 public:
  // Feed the disk's busy-interval events (other kinds are ignored).
  void OnDispatch(const ObsEvent& event);  // kDiskBusyBegin
  void OnComplete(const ObsEvent& event);  // kDiskBusyEnd

  DurNs busy_ns() const { return busy_ns_; }
  int64_t dispatches() const { return dispatches_; }
  int64_t completes() const { return completes_; }
  int64_t failures() const { return failures_; }

  // Queue length sampled at each dispatch (after the request left the queue).
  const RunningStat& queue_depth() const { return queue_depth_; }
  // Actual (fault-adjusted) service time of every attempt, in ms.
  const RunningStat& service_ms() const { return service_ms_; }
  // Queueing + service time of every attempt, in ms.
  const RunningStat& response_ms() const { return response_ms_; }
  // Service-time distribution for percentile queries, in ms.
  const Histogram& service_hist() const { return service_hist_; }

  // Fraction of `elapsed` this disk spent in service.
  double Utilization(DurNs elapsed) const {
    return elapsed > DurNs{0}
               ? static_cast<double>(busy_ns_.ns()) / static_cast<double>(elapsed.ns())
               : 0.0;
  }

 private:
  DurNs busy_ns_;
  int64_t dispatches_ = 0;
  int64_t completes_ = 0;
  int64_t failures_ = 0;
  RunningStat queue_depth_;
  RunningStat service_ms_;
  RunningStat response_ms_;
  Histogram service_hist_{0.0, 64.0, 128};
};

}  // namespace pfc

#endif  // PFC_OBS_DISK_TIMELINE_H_
