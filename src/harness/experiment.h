// Experiment harness shared by the bench binaries and examples: policy
// construction by name, single-run and sweep drivers, reverse-aggressive
// parameter tuning, and CSV output.

#ifndef PFC_HARNESS_EXPERIMENT_H_
#define PFC_HARNESS_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/policies/aggressive.h"
#include "core/policies/demand.h"
#include "core/policies/lru_demand.h"
#include "core/policies/fixed_horizon.h"
#include "core/policies/forestall.h"
#include "core/policies/reverse_aggressive.h"
#include "core/run_result.h"
#include "core/sim_config.h"
#include "core/simulator.h"
#include "trace/generators.h"
#include "trace/trace.h"

namespace pfc {

enum class PolicyKind {
  kDemand,
  kDemandLru,
  kFixedHorizon,
  kAggressive,
  kReverseAggressive,
  kForestall,
};

std::string ToString(PolicyKind kind);

// Per-policy knobs; fields are ignored by policies they do not apply to.
struct PolicyOptions {
  int horizon = kDefaultPrefetchHorizon;            // fixed horizon
  int aggressive_batch = 0;                         // 0 = Table 6 default
  ReverseAggressivePolicy::Params revagg;           // reverse aggressive
  ForestallPolicy::Params forestall;                // forestall
};

std::unique_ptr<Policy> MakePolicy(PolicyKind kind, const PolicyOptions& options = {});

// Runs one (trace, config, policy) combination.
RunResult RunOne(const Trace& trace, const SimConfig& config, PolicyKind kind,
                 const PolicyOptions& options = {});

// A SimConfig preset matching the paper's baseline for a named trace
// (cache size per Table 3 footnote, CSCAN, striping, detailed disks).
SimConfig BaselineConfig(const std::string& trace_name, int num_disks);

// Sweeps reverse aggressive's (F, batch) grid and returns the options that
// minimize elapsed time — the paper's per-configuration tuning. The grids
// default to a compact subset of appendix F's.
PolicyOptions TuneReverseAggressive(const Trace& trace, const SimConfig& config,
                                    const std::vector<int64_t>& fetch_times = {16, 64, 128},
                                    const std::vector<int>& batches = {8, 40});

// Results as CSV (one row per result, with a header). Every collected
// RunResult metric is emitted, including the write-extension counters
// (write_refs, flushes, dirty_at_end).
std::string ResultsCsvString(const std::vector<RunResult>& results);
bool WriteResultsCsv(const std::vector<RunResult>& results, const std::string& path);

// The disk-array sizes the paper simulates (section 3).
const std::vector<int>& PaperDiskCounts();      // 1-8, 10, 12, 16
const std::vector<int>& SmallPaperDiskCounts(); // 1-6

}  // namespace pfc

#endif  // PFC_HARNESS_EXPERIMENT_H_
