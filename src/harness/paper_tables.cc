#include "harness/paper_tables.h"

#include "util/check.h"
#include "util/table.h"

namespace pfc {

namespace {

std::vector<std::string> HeaderRow(const std::vector<int>& disks) {
  std::vector<std::string> header = {"Disks"};
  for (int d : disks) {
    header.push_back(TextTable::Int(d));
  }
  return header;
}

}  // namespace

std::string RenderAppendixTable(const std::string& title, const std::vector<int>& disks,
                                const std::vector<PolicySeries>& series) {
  TextTable table;
  table.SetHeader(HeaderRow(disks));
  for (const PolicySeries& s : series) {
    PFC_CHECK(s.results.size() == disks.size());
    table.AddSeparator();
    table.AddRow({s.label});
    std::vector<std::string> fetches = {"fetches"};
    std::vector<std::string> driver = {"driver time (sec)"};
    std::vector<std::string> stall = {"stall time (sec)"};
    std::vector<std::string> elapsed = {"elapsed time (sec)"};
    std::vector<std::string> avg_fetch = {"average fetch time (msec)"};
    std::vector<std::string> util = {"average disk utilization"};
    for (const RunResult& r : s.results) {
      fetches.push_back(TextTable::Int(r.fetches));
      driver.push_back(TextTable::Num(r.driver_sec(), 4));
      stall.push_back(TextTable::Num(r.stall_sec(), 3));
      elapsed.push_back(TextTable::Num(r.elapsed_sec(), 3));
      avg_fetch.push_back(TextTable::Num(r.avg_fetch_ms, 3));
      util.push_back(TextTable::Num(r.avg_disk_util, 2));
    }
    table.AddRow(fetches);
    table.AddRow(driver);
    table.AddRow(stall);
    table.AddRow(elapsed);
    table.AddRow(avg_fetch);
    table.AddRow(util);
  }
  return title + "\n" + table.ToString();
}

std::string RenderBreakdownTable(const std::string& title, const std::vector<int>& disks,
                                 const std::vector<PolicySeries>& series) {
  TextTable table;
  std::vector<std::string> header = {"disks"};
  for (const PolicySeries& s : series) {
    header.push_back(s.label + " cpu");
    header.push_back(s.label + " drv");
    header.push_back(s.label + " stl");
    header.push_back(s.label + " tot");
  }
  table.SetHeader(header);
  for (size_t i = 0; i < disks.size(); ++i) {
    std::vector<std::string> row = {TextTable::Int(disks[i])};
    for (const PolicySeries& s : series) {
      PFC_CHECK(s.results.size() == disks.size());
      const RunResult& r = s.results[i];
      row.push_back(TextTable::Num(r.compute_sec(), 2));
      row.push_back(TextTable::Num(r.driver_sec(), 2));
      row.push_back(TextTable::Num(r.stall_sec(), 2));
      row.push_back(TextTable::Num(r.elapsed_sec(), 2));
    }
    table.AddRow(row);
  }
  return title + "\n" + table.ToString();
}

std::string RenderUtilizationTable(const std::string& title, const std::vector<int>& disks,
                                   const std::vector<PolicySeries>& series) {
  TextTable table;
  table.SetHeader(HeaderRow(disks));
  for (const PolicySeries& s : series) {
    PFC_CHECK(s.results.size() == disks.size());
    std::vector<std::string> row = {s.label};
    for (const RunResult& r : s.results) {
      row.push_back(TextTable::Num(r.avg_disk_util, 2));
    }
    table.AddRow(row);
  }
  return title + "\n" + table.ToString();
}

double PercentImprovement(const RunResult& a, const RunResult& b) {
  if (b.elapsed_time == DurNs{0}) {
    return 0.0;
  }
  return 100.0 * static_cast<double>((b.elapsed_time - a.elapsed_time).ns()) /
         static_cast<double>(b.elapsed_time.ns());
}

}  // namespace pfc
