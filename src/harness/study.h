// Study driver: runs one trace across array sizes and policies, producing
// the PolicySeries the table renderers consume. This is the engine behind
// most bench binaries.

#ifndef PFC_HARNESS_STUDY_H_
#define PFC_HARNESS_STUDY_H_

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/paper_tables.h"

namespace pfc {

struct StudySpec {
  std::string trace_name;
  std::vector<int> disks;
  std::vector<PolicyKind> policies;
  // Reverse aggressive is tuned per configuration (the paper's baseline).
  // When false, defaults (F=64, batch=16) are used.
  bool tune_revagg = true;
  // Base options applied to every run; per-policy fields are picked up by
  // the policy they belong to.
  PolicyOptions options;
  // Overrides applied to BaselineConfig.
  SchedDiscipline discipline = SchedDiscipline::kCscan;
  PlacementKind placement = PlacementKind::kStriped;
  DiskModelKind disk_model = DiskModelKind::kDetailed;
  double cpu_scale = 1.0;
  int cache_blocks_override = 0;  // 0 = per-trace baseline
  // Fault injection applied to every point of the study (degraded-mode
  // studies; see disk/fault_model.h). Default: healthy disks.
  FaultConfig faults;
  // Attach an ObsReport (stall attribution, per-disk busy timelines) to
  // every result — see obs/obs_report.h. Off by default: collection is
  // cheap but not free, and most table renderers never look at it.
  bool collect_obs = false;
};

// True when the PFC_FULL environment variable asks for exhaustive sweeps.
bool FullSweepsRequested();

// The reverse-aggressive tuning grid: compact by default, appendix-F sized
// under PFC_FULL=1.
std::vector<int64_t> RevAggTuningFetchTimes();
std::vector<int> RevAggTuningBatches(int num_disks);

// Builds the SimConfig for one point of the study.
SimConfig StudyConfig(const StudySpec& spec, int num_disks);

// Runs the full grid; one PolicySeries per policy, in `spec.policies` order.
std::vector<PolicySeries> RunStudy(const Trace& trace, const StudySpec& spec);

// Human label for a policy ("Fixed Horizon", ...).
std::string PolicyLabel(PolicyKind kind);

}  // namespace pfc

#endif  // PFC_HARNESS_STUDY_H_
