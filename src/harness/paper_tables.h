// Renderers that lay results out the way the paper does: appendix-style
// per-trace tables (one metric row per policy block, one column per array
// size) and figure-style stacked elapsed-time breakdowns.

#ifndef PFC_HARNESS_PAPER_TABLES_H_
#define PFC_HARNESS_PAPER_TABLES_H_

#include <string>
#include <vector>

#include "core/run_result.h"

namespace pfc {

// One policy's results across array sizes.
struct PolicySeries {
  std::string label;
  std::vector<RunResult> results;  // parallel to the disks vector
};

// Appendix A-style table: for each policy a block of rows (fetches, driver
// time, stall time, elapsed time, average fetch time, average utilization),
// one column per array size.
std::string RenderAppendixTable(const std::string& title, const std::vector<int>& disks,
                                const std::vector<PolicySeries>& series);

// Figure 2-style table: per array size, each policy's elapsed time split
// into cpu / driver / stall (the paper's stacked bars, as numbers).
std::string RenderBreakdownTable(const std::string& title, const std::vector<int>& disks,
                                 const std::vector<PolicySeries>& series);

// Utilization table (Tables 4 and 8).
std::string RenderUtilizationTable(const std::string& title, const std::vector<int>& disks,
                                   const std::vector<PolicySeries>& series);

// Percentage change of `a` relative to `b` ((b - a) / b * 100; positive
// means `a` is faster).
double PercentImprovement(const RunResult& a, const RunResult& b);

}  // namespace pfc

#endif  // PFC_HARNESS_PAPER_TABLES_H_
