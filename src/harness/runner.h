// The parallel experiment engine.
//
// The paper's results are a large grid of independent simulations — traces x
// policies x array sizes, plus parameter sweeps. Every grid point is a pure
// function of its (trace, config, policy, options) inputs, so the engine
// runs them on a fixed-size worker pool while sharing the read-only per-
// trace oracle (TraceContext) across workers. Results come back in
// submission order regardless of completion order, so parallel output is
// byte-identical to serial: `PFC_JOBS=1` is the reference ordering and any
// other worker count must (and does) reproduce it exactly.
//
// Concurrency model (see DESIGN.md "Concurrency model"):
//   shared-immutable: Trace, TraceContext (hint mask + NextRefIndex)
//   per-run:          Simulator, Policy, BufferCache, DiskArray
// Workers never share mutable state; each writes only its own result slot.

#ifndef PFC_HARNESS_RUNNER_H_
#define PFC_HARNESS_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/run_result.h"
#include "core/sim_config.h"
#include "core/trace_context.h"
#include "harness/experiment.h"
#include "trace/trace.h"

namespace pfc {

// One grid point: run `kind` with `options` over `trace` on the machine
// described by `config`. The trace must outlive the RunExperiments call.
struct ExperimentJob {
  const Trace* trace = nullptr;
  SimConfig config;
  PolicyKind kind = PolicyKind::kDemand;
  PolicyOptions options;
};

// Worker-pool size: the PFC_JOBS environment variable when set to a positive
// integer, otherwise std::thread::hardware_concurrency() (at least 1).
int DefaultJobCount();

// Outcome of one grid point: either a RunResult or a structured per-job
// error (SimError / any exception text). `result` is meaningful only when
// ok().
struct JobOutcome {
  RunResult result;
  std::string error;  // empty on success
  bool ok() const { return error.empty(); }
};

// Crash-proof variant of RunExperiments: every job runs under a catch-all
// (plus the engine's own event-budget watchdog), and a failing job records
// its error in its submission-order slot without disturbing the other jobs
// or the pool. Never exits; callers inspect the outcomes.
std::vector<JobOutcome> RunExperimentsChecked(const std::vector<ExperimentJob>& grid,
                                              int jobs = 0);

// Runs every job, `jobs` at a time (0 = DefaultJobCount()), and returns the
// results in submission order. With jobs == 1 everything runs inline on the
// calling thread — no pool is created — which is the determinism reference.
// Each distinct (trace, hint_coverage, hint_seed) triple's TraceContext is
// built exactly once, up front, and shared read-only by all workers.
// If any job fails, prints a per-job error summary to stderr and exits 1 —
// studies must not silently drop grid points. Use RunExperimentsChecked to
// handle failures programmatically.
std::vector<RunResult> RunExperiments(const std::vector<ExperimentJob>& grid, int jobs = 0);

// A reverse-aggressive tuning request: sweep the (fetch_time x batch) grid
// on `config` and keep the elapsed-time argmin (first in grid order wins
// ties, exactly as the serial tuner did).
struct TuneRequest {
  SimConfig config;
  std::vector<int64_t> fetch_times;
  std::vector<int> batches;
};

// Tunes every request concurrently — the full (request x F x batch) grid is
// one flat parallel batch — and memoizes per (trace, config, grid) so
// repeated studies of the same configuration never re-run identical grids.
std::vector<PolicyOptions> TuneReverseAggressiveMany(const Trace& trace,
                                                     const std::vector<TuneRequest>& requests,
                                                     int jobs = 0);

// Drops the memoized tuning results (for tests).
void ClearTunedRevAggCache();

}  // namespace pfc

#endif  // PFC_HARNESS_RUNNER_H_
